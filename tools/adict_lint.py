#!/usr/bin/env python3
"""adict_lint: repo-invariant checker for the adaptive-dictionary codebase.

The 18 dictionary formats, the metric names, the trace-span names, and the
HTTP exporter's routes each live in several independent places (dispatch
switches, docs tables, the committed benchmark baseline). Nothing ties
those surfaces together at compile time, so additions drift: a 19th format
lands in the enum but not in the size model, a new counter or endpoint
never reaches docs/observability.md, a query-server metric never reaches
docs/serving.md. This lint parses the sources and docs directly (plain
text, no libclang) and fails CI the moment any surface disagrees with the
others.

Usage:
    tools/adict_lint.py [--root DIR] [--list-checks] [CHECK ...]

Exit codes: 0 clean, 1 violations found, 2 the lint itself could not run
(missing file, unparseable table). Every violation prints one pointed
`file:line: [check] message` line.

The enforced invariants, how to register a new format/metric/span so the
lint stays green, and the seeded-violation test live in
docs/static_analysis.md and tests/lint_test.cc.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Small helpers


class LintError(Exception):
    """The lint itself cannot run (exit 2), distinct from violations."""


class Reporter:
    def __init__(self) -> None:
        self.violations: list[str] = []

    def report(self, path, line: int | None, check: str, message: str) -> None:
        where = f"{path}:{line}" if line else str(path)
        self.violations.append(f"{where}: [{check}] {message}")


def read_text(path: Path) -> str:
    try:
        return path.read_text(encoding="utf-8")
    except OSError as err:
        raise LintError(f"cannot read {path}: {err}") from err


def strip_comments(code: str) -> str:
    """Removes // and /* */ comments, preserving line numbers and string
    literals (so names quoted in commentary don't count as uses)."""
    out: list[str] = []
    i, n = 0, len(code)
    while i < n:
        ch = code[i]
        if ch == '"':
            j = i + 1
            while j < n and code[j] != '"':
                j += 2 if code[j] == "\\" else 1
            out.append(code[i : min(j + 1, n)])
            i = j + 1
        elif ch == "'":
            j = i + 1
            while j < n and code[j] != "'":
                j += 2 if code[j] == "\\" else 1
            out.append(code[i : min(j + 1, n)])
            i = j + 1
        elif code.startswith("//", i):
            j = code.find("\n", i)
            i = n if j == -1 else j
        elif code.startswith("/*", i):
            j = code.find("*/", i + 2)
            segment = code[i : n if j == -1 else j + 2]
            out.append("\n" * segment.count("\n"))
            i = n if j == -1 else j + 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# ---------------------------------------------------------------------------
# Source-of-truth parsers


def parse_format_enum(root: Path) -> list[str]:
    """Enum members of DictFormat, in declaration (== serde tag) order."""
    path = root / "src/dict/dictionary.h"
    text = read_text(path)
    match = re.search(r"enum class DictFormat \{(.*?)\};", text, re.S)
    if not match:
        raise LintError(f"{path}: cannot find `enum class DictFormat`")
    members = re.findall(r"^\s*(k\w+)\s*,", strip_comments(match.group(1)), re.M)
    if not members:
        raise LintError(f"{path}: DictFormat enum parsed to zero members")
    return members


def parse_declared_format_count(root: Path) -> int:
    path = root / "src/dict/dictionary.h"
    match = re.search(r"kNumDictFormats\s*=\s*(\d+)", read_text(path))
    if not match:
        raise LintError(f"{path}: cannot find kNumDictFormats")
    return int(match.group(1))


def parse_format_names(root: Path) -> dict[str, str]:
    """Enum member -> paper name, from the DictFormatName switch."""
    path = root / "src/dict/dictionary.cc"
    text = read_text(path)
    match = re.search(
        r"DictFormatName\(DictFormat format\) \{.*?\n\}", text, re.S
    )
    if not match:
        raise LintError(f"{path}: cannot find DictFormatName definition")
    pairs = re.findall(
        r"case DictFormat::(k\w+):\s*return \"([^\"]+)\";", match.group(0)
    )
    return dict(pairs)


def flatten(paper_name: str) -> str:
    """Paper name -> metric suffix, e.g. "fc block rp 12" -> fc_block_rp_12
    (mirrors ChosenFormatCounterName in compression_manager.cc)."""
    return paper_name.replace(" ", "_")


# ---------------------------------------------------------------------------
# Format checks: every surface lists exactly the enum's formats


def case_labels(text: str) -> set[str]:
    return set(re.findall(r"case DictFormat::(k\w+)\s*:", text))


def check_formats(root: Path, rep: Reporter) -> None:
    check = "formats"
    members = parse_format_enum(root)
    declared = parse_declared_format_count(root)
    if declared != len(members):
        rep.report(
            root / "src/dict/dictionary.h", None, check,
            f"kNumDictFormats is {declared} but the DictFormat enum has "
            f"{len(members)} members — update the constant with the enum",
        )

    # Dispatch surfaces that must name every format explicitly.
    for rel, what in [
        ("src/core/size_model.cc", "the SizeModel per-format switch"),
        ("src/dict/serialization.cc", "the serde payload dispatch"),
        ("src/dict/dictionary.cc", "the DictFormatName table"),
    ]:
        text = strip_comments(read_text(root / rel))
        missing = [m for m in members if m not in case_labels(text)]
        for m in missing:
            rep.report(
                root / rel, None, check,
                f"DictFormat::{m} is in the enum but missing from {what} — "
                f"add a `case DictFormat::{m}:` arm",
            )

    names = parse_format_names(root)
    unnamed = [m for m in members if m not in names]
    # Members without a paper name were already reported against the
    # DictFormatName table above; downstream name checks use what exists.
    paper_names = {names[m] for m in members if m in names}
    if len(paper_names) != len(names):
        rep.report(
            root / "src/dict/dictionary.cc", None, check,
            "DictFormatName returns duplicate paper names",
        )

    # The guarded-build degradation chain must reference live enum members.
    guard_path = root / "src/core/build_guard.cc"
    guard = strip_comments(read_text(guard_path))
    chain = re.search(
        r"std::array<DictFormat,\s*\d+>\s*chain\s*=\s*\{(.*?)\}", guard, re.S
    )
    if not chain:
        rep.report(
            guard_path, None, check,
            "cannot find the degradation chain "
            "(`std::array<DictFormat, N> chain = {...}`)",
        )
    else:
        chain_members = re.findall(r"DictFormat::(k\w+)", chain.group(1))
        for m in chain_members:
            if m not in members:
                rep.report(
                    guard_path, None, check,
                    f"degradation chain references DictFormat::{m}, which is "
                    f"not in the enum",
                )
        if chain_members and chain_members[-1] != "kArray":
            rep.report(
                guard_path, None, check,
                "degradation chain must terminate in DictFormat::kArray, the "
                "format that cannot fail on valid input",
            )

    # The perf harness sweeps AllDictFormats(), so it follows the enum by
    # construction — but the committed baseline it is compared against does
    # not. A format missing from BENCH_core.json would make every run of
    # `perf_regression --baseline` silently skip it.
    bench_path = root / "BENCH_core.json"
    try:
        rows = json.loads(read_text(bench_path))
    except json.JSONDecodeError as err:
        raise LintError(f"{bench_path}: not valid JSON: {err}") from err
    bench_formats = {row.get("format") for row in rows}
    for m in members:
        if m in unnamed:
            continue
        if names[m] not in bench_formats:
            rep.report(
                bench_path, None, check,
                f"format \"{names[m]}\" (DictFormat::{m}) has no rows in the "
                f"committed perf baseline — regenerate it with "
                f"bench/perf_regression",
            )
    for f in sorted(x for x in bench_formats if x not in paper_names):
        rep.report(
            bench_path, None, check,
            f"perf baseline contains unknown format \"{f}\" — stale after a "
            f"rename? regenerate with bench/perf_regression",
        )

    # docs/format_layouts.md: the canonical format table must mirror the
    # enum exactly — member, serde tag (== enum value), and paper name.
    doc_path = root / "docs/format_layouts.md"
    doc = read_text(doc_path)
    rows_re = re.findall(
        r"^\|\s*(\d+)\s*\|\s*`(k\w+)`\s*\|\s*`([^`]+)`\s*\|", doc, re.M
    )
    if not rows_re:
        rep.report(
            doc_path, None, check,
            "cannot find the format table (rows of `| tag | `kEnum` | "
            "`paper name` | ... |`) — see docs/static_analysis.md",
        )
    else:
        doc_by_member = {m: (int(tag), name) for tag, m, name in rows_re}
        for value, m in enumerate(members):
            if m not in doc_by_member:
                rep.report(
                    doc_path, None, check,
                    f"DictFormat::{m} is missing from the format table",
                )
                continue
            tag, name = doc_by_member[m]
            if tag != value:
                rep.report(
                    doc_path, None, check,
                    f"format table lists serde tag {tag} for {m}, but its "
                    f"enum value (the tag actually serialized) is {value}",
                )
            if m not in unnamed and name != names[m]:
                rep.report(
                    doc_path, None, check,
                    f"format table names {m} \"{name}\" but DictFormatName "
                    f"says \"{names[m]}\"",
                )
        for m in doc_by_member:
            if m not in members:
                rep.report(
                    doc_path, None, check,
                    f"format table lists `{m}`, which is not in the enum",
                )

    # docs/observability.md documents one manager.chosen.* counter per
    # format (flattened paper name).
    obs_doc = read_text(root / "docs/observability.md")
    for m in members:
        if m in unnamed:
            continue
        counter = f"manager.chosen.{flatten(names[m])}"
        if counter not in obs_doc:
            rep.report(
                root / "docs/observability.md", None, check,
                f"`{counter}` (the per-format decision counter for "
                f"\"{names[m]}\") is not documented in the manager.chosen "
                f"list",
            )


# ---------------------------------------------------------------------------
# Metric checks: code <-> docs/observability.md


METRIC_CALL_RE = re.compile(
    r"Get(?:Counter|Gauge|Histogram)\(\s*\"([^\"]+)\"", re.S
)
# Event-counter helpers (CountServerEvent, CountCacheEvent, ...) forward a
# literal name to GetCounter; the call sites carry the names the registry
# actually sees.
METRIC_HELPER_RE = re.compile(r"Count\w*Event\(\s*\"([^\"]+)\"", re.S)


def code_metric_names(root: Path) -> dict[str, tuple[Path, int]]:
    """Literal metric names registered anywhere under src/."""
    names: dict[str, tuple[Path, int]] = {}
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        text = strip_comments(read_text(path))
        for regex in (METRIC_CALL_RE, METRIC_HELPER_RE):
            for match in regex.finditer(text):
                names.setdefault(
                    match.group(1), (path, line_of(text, match.start()))
                )
    return names


def doc_metric_names(root: Path) -> dict[str, int]:
    """Metric names from the `## Metric reference` tables."""
    path = root / "docs/observability.md"
    doc = read_text(path)
    match = re.search(r"## Metric reference(.*?)\n## ", doc, re.S)
    if not match:
        raise LintError(f"{path}: cannot find the `## Metric reference` section")
    names: dict[str, int] = {}
    base = line_of(doc, match.start(1))
    for i, line in enumerate(match.group(1).splitlines()):
        row = re.match(r"\|\s*`([^`]+)`\s*\|", line)
        if row:
            names.setdefault(row.group(1), base + i)
    if not names:
        raise LintError(f"{path}: metric reference tables parsed to zero rows")
    return names


def check_metrics(root: Path, rep: Reporter) -> None:
    check = "metrics"
    code = code_metric_names(root)
    doc = doc_metric_names(root)
    doc_path = root / "docs/observability.md"

    exact_doc = {n for n in doc if "<" not in n}
    prefix_doc = {n.split("<", 1)[0] for n in doc if "<" in n}

    for name, (path, line) in sorted(code.items()):
        if name in exact_doc:
            continue
        if any(name.startswith(p) for p in prefix_doc):
            continue
        rep.report(
            path, line, check,
            f"metric \"{name}\" is registered here but not documented in "
            f"docs/observability.md — add it to the metric reference",
        )

    # Reverse direction: documented names must exist in code. Parameterized
    # rows (`x.<y>`) are satisfied by a literal `"x.` prefix anywhere.
    all_code_text = None
    for name, line in sorted(doc.items()):
        if "<" in name:
            prefix = name.split("<", 1)[0]
            if all_code_text is None:
                all_code_text = "\n".join(
                    strip_comments(read_text(p))
                    for p in sorted((root / "src").rglob("*"))
                    if p.suffix in (".h", ".cc")
                )
            if f'"{prefix}' not in all_code_text:
                rep.report(
                    doc_path, line, check,
                    f"documented metric family \"{name}\" has no "
                    f"\"{prefix}...\" registration in src/",
                )
        elif name not in code:
            rep.report(
                doc_path, line, check,
                f"documented metric \"{name}\" is not registered anywhere "
                f"in src/ — stale doc row?",
            )


# ---------------------------------------------------------------------------
# Span checks: code <-> the span catalog


SPAN_MACRO_RE = re.compile(r"ADICT_TRACE_SPAN\(\s*\"([^\"]+)\"")
# Direct ScopedSpan construction with a literal first argument, e.g.
#   obs::ScopedSpan span("x");  std::optional<obs::ScopedSpan> s("x");
SPAN_CTOR_RE = re.compile(r"ScopedSpan>?\s+\w+\s*\(\s*\"([^\"]+)\"")
SPAN_BLOCK_BEGIN = "adict-lint: span-names-begin"
SPAN_BLOCK_END = "adict-lint: span-names-end"


def code_span_names(root: Path) -> dict[str, tuple[Path, int]]:
    names: dict[str, tuple[Path, int]] = {}
    for base in ("src", "examples", "bench"):
        for path in sorted((root / base).rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            raw = read_text(path)
            text = strip_comments(raw)
            for regex in (SPAN_MACRO_RE, SPAN_CTOR_RE):
                for match in regex.finditer(text):
                    names.setdefault(
                        match.group(1), (path, line_of(text, match.start()))
                    )
            # Registered span-name arrays (dynamic dispatch like the TPC-H
            # per-query spans) are declared with marker comments; the raw
            # text is scanned because the markers themselves are comments.
            pos = 0
            while True:
                begin = raw.find(SPAN_BLOCK_BEGIN, pos)
                if begin == -1:
                    break
                end = raw.find(SPAN_BLOCK_END, begin)
                if end == -1:
                    raise LintError(
                        f"{path}: unterminated {SPAN_BLOCK_BEGIN} block"
                    )
                for match in re.finditer(r"\"([^\"]+)\"", raw[begin:end]):
                    names.setdefault(
                        match.group(1),
                        (path, line_of(raw, begin + match.start())),
                    )
                pos = end
    return names


def doc_span_names(root: Path) -> dict[str, int]:
    """Span names from the catalog table, expanding `a01` … `a22` ranges."""
    path = root / "docs/observability.md"
    doc = read_text(path)
    match = re.search(r"### Span catalog(.*?)(\n## |\Z)", doc, re.S)
    if not match:
        raise LintError(f"{path}: cannot find the `### Span catalog` section")
    names: dict[str, int] = {}
    base = line_of(doc, match.start(1))
    range_re = re.compile(
        r"`(?P<prefix>[\w.]*?)(?P<lo>\d+)`\s*(?:…|\.\.\.)\s*"
        r"`(?P=prefix)(?P<hi>\d+)`"
    )
    for i, line in enumerate(match.group(1).splitlines()):
        if not line.startswith("|"):
            continue
        cell = line.split("|")[1]
        expanded = range_re.search(cell)
        if expanded:
            lo, hi = expanded.group("lo"), expanded.group("hi")
            for v in range(int(lo), int(hi) + 1):
                names.setdefault(
                    f"{expanded.group('prefix')}{v:0{len(lo)}d}", base + i
                )
        else:
            for span in re.findall(r"`([^`]+)`", cell):
                names.setdefault(span, base + i)
    if not names:
        raise LintError(f"{path}: span catalog parsed to zero rows")
    return names


def check_spans(root: Path, rep: Reporter) -> None:
    check = "spans"
    code = code_span_names(root)
    doc = doc_span_names(root)
    for name, (path, line) in sorted(code.items()):
        if name not in doc:
            rep.report(
                path, line, check,
                f"span \"{name}\" is opened here but missing from the span "
                f"catalog in docs/observability.md",
            )
    for name, line in sorted(doc.items()):
        if name not in code:
            rep.report(
                root / "docs/observability.md", line, check,
                f"catalogued span \"{name}\" is never opened in "
                f"src/, examples/, or bench/ — stale catalog row?",
            )


# ---------------------------------------------------------------------------
# nodiscard audit: Status results must not be silently dropped


STATUS_FN_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+|static\s+|inline\s+)*"
    r"Status(?:Or<[^;{}()]*?>)?\s+(?:\w+::)?(\w+)\s*\(",
    re.M,
)
DISCARD_OK_RE = re.compile(
    r"=|\breturn\b|\bco_return\b|ADICT_RETURN_IF_ERROR|\(void\)|"
    r"EXPECT_|ASSERT_|\bif\b|\bwhile\b|\bfor\b"
)


def status_function_names(root: Path) -> set[str]:
    names: set[str] = set()
    void_names: set[str] = set()
    void_re = re.compile(
        r"^\s*(?:virtual\s+|static\s+|inline\s+)*"
        r"void\s+(?:\w+::)?(\w+)\s*\(",
        re.M,
    )
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        text = strip_comments(read_text(path))
        for match in STATUS_FN_DECL_RE.finditer(text):
            names.add(match.group(1))
        for match in void_re.finditer(text):
            void_names.add(match.group(1))
    # Constructors / factories named like the type itself are not calls.
    names.discard("Status")
    names.discard("StatusOr")
    # A name that is also declared void-returning somewhere (e.g. Start on
    # both HttpExporter -> Status and MemorySampler -> void) is ambiguous
    # to a text-level audit: skip it rather than flag void calls.
    return names - void_names


def check_nodiscard(root: Path, rep: Reporter) -> None:
    check = "nodiscard"
    status_h = strip_comments(read_text(root / "src/util/status.h"))
    for cls in ("Status", "StatusOr"):
        if not re.search(rf"class \[\[nodiscard\]\] {cls}\b", status_h):
            rep.report(
                root / "src/util/status.h", None, check,
                f"class {cls} must be declared `class [[nodiscard]] {cls}` "
                f"so the compiler flags discarded results",
            )

    fn_names = status_function_names(root)
    if not fn_names:
        raise LintError("nodiscard audit found no Status-returning functions")
    call_re = re.compile(
        r"^\s*(?:[\w:]+(?:\.|->))?("
        + "|".join(sorted(re.escape(n) for n in fn_names))
        + r")\s*\(.*\);\s*$"
    )
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        text = strip_comments(read_text(path))
        # A flagged line must start its own statement: when the previous
        # non-blank line ends mid-expression (`=`, `(`, `,`, ...), the call
        # is a continuation whose result the earlier line consumes.
        prev_ends_statement = True
        for i, logical in enumerate(text.splitlines()):
            starts_statement = prev_ends_statement
            stripped = logical.strip()
            if stripped:
                prev_ends_statement = stripped[-1] in ";{}:" or stripped.startswith("#")
            match = call_re.match(logical)
            if match and starts_statement and not DISCARD_OK_RE.search(logical):
                rep.report(
                    path, i + 1, check,
                    f"result of Status-returning `{match.group(1)}(...)` is "
                    f"silently discarded — handle it, propagate it, or cast "
                    f"to (void) with a comment",
                )


# ---------------------------------------------------------------------------
# Endpoint checks: the HTTP exporter's route table <-> docs/observability.md


ROUTE_BLOCK_BEGIN = "adict-lint: http-routes-begin"
ROUTE_BLOCK_END = "adict-lint: http-routes-end"
ROUTE_ENTRY_RE = re.compile(r"\{\s*\"(/[^\"]*)\",\s*\"(GET|POST)\"\s*\}")
DOC_ENDPOINT_RE = re.compile(r"\|\s*`(GET|POST)\s+(/\S+)`\s*\|")


def code_endpoints(root: Path) -> dict[str, tuple[Path, int]]:
    """`METHOD /path` routes from the exporter's marked route table."""
    path = root / "src/obs/http_exporter.cc"
    raw = read_text(path)
    begin = raw.find(ROUTE_BLOCK_BEGIN)
    end = raw.find(ROUTE_BLOCK_END, begin)
    if begin == -1 or end == -1:
        raise LintError(f"{path}: cannot find the {ROUTE_BLOCK_BEGIN} block")
    routes: dict[str, tuple[Path, int]] = {}
    for match in ROUTE_ENTRY_RE.finditer(raw, begin, end):
        routes.setdefault(
            f"{match.group(2)} {match.group(1)}",
            (path, line_of(raw, match.start())),
        )
    if not routes:
        raise LintError(f"{path}: route table parsed to zero routes")
    return routes


def doc_endpoints(root: Path) -> dict[str, int]:
    """`METHOD /path` rows from the `## HTTP endpoints` table."""
    path = root / "docs/observability.md"
    doc = read_text(path)
    match = re.search(r"## HTTP endpoints(.*?)\n## ", doc, re.S)
    if not match:
        raise LintError(f"{path}: cannot find the `## HTTP endpoints` section")
    endpoints: dict[str, int] = {}
    base = line_of(doc, match.start(1))
    for i, line in enumerate(match.group(1).splitlines()):
        row = DOC_ENDPOINT_RE.match(line)
        if row:
            endpoints.setdefault(f"{row.group(1)} {row.group(2)}", base + i)
    if not endpoints:
        raise LintError(f"{path}: HTTP endpoints table parsed to zero rows")
    return endpoints


def check_endpoints(root: Path, rep: Reporter) -> None:
    check = "endpoints"
    code = code_endpoints(root)
    doc = doc_endpoints(root)
    doc_path = root / "docs/observability.md"
    for route, (path, line) in sorted(code.items()):
        if route not in doc:
            rep.report(
                path, line, check,
                f"HTTP route \"{route}\" is served here but not documented "
                f"in docs/observability.md — add it to the HTTP endpoints "
                f"table",
            )
    for route, line in sorted(doc.items()):
        if route not in code:
            rep.report(
                doc_path, line, check,
                f"documented HTTP endpoint \"{route}\" is not in the "
                f"exporter's route table — stale doc row?",
            )


# ---------------------------------------------------------------------------
# Serving checks: src/server metrics and spans <-> docs/serving.md
#
# docs/serving.md owns the operator-facing tables for the query server (the
# `## Metrics` and `## Spans` sections). They duplicate rows from
# docs/observability.md on purpose — serving.md is the self-contained page —
# so they drift independently and need their own sync check.


def doc_table_names(path: Path, doc: str, section: str) -> dict[str, int]:
    """Backticked first-column names from one `## section` table."""
    match = re.search(rf"## {section}\b(.*?)(\n## |\Z)", doc, re.S)
    if not match:
        raise LintError(f"{path}: cannot find the `## {section}` section")
    names: dict[str, int] = {}
    base = line_of(doc, match.start(1))
    for i, line in enumerate(match.group(1).splitlines()):
        row = re.match(r"\|\s*`([^`]+)`\s*\|", line)
        if row:
            names.setdefault(row.group(1), base + i)
    if not names:
        raise LintError(f"{path}: `## {section}` table parsed to zero rows")
    return names


def check_serving(root: Path, rep: Reporter) -> None:
    check = "serving"
    server_dir = root / "src/server"
    if not server_dir.is_dir():
        raise LintError(f"{server_dir}: missing — the serving check needs it")

    code_metrics: dict[str, tuple[Path, int]] = {}
    code_spans: dict[str, tuple[Path, int]] = {}
    for path in sorted(server_dir.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        text = strip_comments(read_text(path))
        for regex in (METRIC_CALL_RE, METRIC_HELPER_RE):
            for match in regex.finditer(text):
                code_metrics.setdefault(
                    match.group(1), (path, line_of(text, match.start()))
                )
        for regex in (SPAN_MACRO_RE, SPAN_CTOR_RE):
            for match in regex.finditer(text):
                code_spans.setdefault(
                    match.group(1), (path, line_of(text, match.start()))
                )

    doc_path = root / "docs/serving.md"
    doc = read_text(doc_path)
    doc_metrics = doc_table_names(doc_path, doc, "Metrics")
    doc_spans = doc_table_names(doc_path, doc, "Spans")

    for name, (path, line) in sorted(code_metrics.items()):
        if name not in doc_metrics:
            rep.report(
                path, line, check,
                f"server metric \"{name}\" is registered here but missing "
                f"from the `## Metrics` table in docs/serving.md",
            )
    for name, line in sorted(doc_metrics.items()):
        if name not in code_metrics:
            rep.report(
                doc_path, line, check,
                f"docs/serving.md documents server metric \"{name}\", which "
                f"is not registered in src/server — stale row?",
            )
    for name, (path, line) in sorted(code_spans.items()):
        if name not in doc_spans:
            rep.report(
                path, line, check,
                f"server span \"{name}\" is opened here but missing from "
                f"the `## Spans` table in docs/serving.md",
            )
    for name, line in sorted(doc_spans.items()):
        if name not in code_spans:
            rep.report(
                doc_path, line, check,
                f"docs/serving.md documents server span \"{name}\", which "
                f"is never opened in src/server — stale row?",
            )


# ---------------------------------------------------------------------------
# locks: ranked mutexes <-> lock-rank enum <-> docs/lock_hierarchy.md
#
# The lock hierarchy (util/lock_rank.h, enforced at runtime by the debug
# deadlock detector) only works if every mutex in the tree participates.
# This check keeps the three surfaces in lockstep:
#   - every Mutex/MutexCv declaration in src/ carries a LockRank and a name,
#     and no raw std::mutex & friends exist outside thread_annotations.h /
#     lock_rank.* (an unranked lock is invisible to the detector);
#   - every rank a declaration uses exists in the enum, every enum rank is
#     used by some declaration, and rank values sit in the stratum band
#     matching the declaring file's src/<subsystem>/ directory;
#   - the docs/lock_hierarchy.md rank table has exactly one row per declared
#     mutex, with the rank, value, and stratum the code declares (and no
#     stale rows);
#   - every enum member has a case in LockRankName() (lock_rank.cc).


_RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"recursive_timed_mutex|condition_variable(?:_any)?|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock)\b"
)

# A Mutex/MutexCv variable declaration, with its optional brace initializer.
# `Mutex\s+\w+` cannot match MutexLock (no whitespace mid-word) or pointer /
# reference parameters (`Mutex*`, `Mutex&`).
_MUTEX_DECL_RE = re.compile(
    r"\b(?:mutable\s+)?(Mutex|MutexCv)\s+(\w+)\s*(\{[^}]*\})?\s*;"
)

_LOCKS_EXEMPT = {
    "src/util/thread_annotations.h",
    "src/util/lock_rank.h",
    "src/util/lock_rank.cc",
}


def parse_lock_ranks(root: Path) -> tuple[dict[str, int], dict[int, str], int]:
    """(rank name -> value, stratum band -> name, stratum width)."""
    path = root / "src/util/lock_rank.h"
    text = read_text(path)
    match = re.search(r"enum class LockRank : int \{(.*?)\};", text, re.S)
    if not match:
        raise LintError(f"{path}: cannot find `enum class LockRank`")
    ranks = {
        name: int(value)
        for name, value in re.findall(
            r"(k\w+)\s*=\s*(\d+)", strip_comments(match.group(1))
        )
    }
    if not ranks:
        raise LintError(f"{path}: LockRank enum parsed to zero members")
    match = re.search(r"enum class LockStratum : int \{(.*?)\};", text, re.S)
    if not match:
        raise LintError(f"{path}: cannot find `enum class LockStratum`")
    strata = {
        int(value): name.lower()
        for name, value in re.findall(
            r"k(\w+)\s*=\s*(\d+)", strip_comments(match.group(1))
        )
    }
    if not strata:
        raise LintError(f"{path}: LockStratum enum parsed to zero members")
    match = re.search(r"kLockStratumWidth\s*=\s*(\d+)", text)
    if not match:
        raise LintError(f"{path}: cannot find kLockStratumWidth")
    return ranks, strata, int(match.group(1))


def parse_lock_table(root: Path) -> dict[str, tuple[int, str, int, str]]:
    """docs/lock_hierarchy.md rank-table rows:
    mutex name -> (line, rank name, rank value, stratum)."""
    path = root / "docs/lock_hierarchy.md"
    text = read_text(path)
    rows: dict[str, tuple[int, str, int, str]] = {}
    row_re = re.compile(
        r"^\|\s*`([^`]+)`\s*\|\s*`(k\w+)`\s*\|\s*(\d+)\s*\|\s*(\w+)\s*\|",
        re.M,
    )
    for match in row_re.finditer(text):
        name = match.group(1)
        if name in rows:
            raise LintError(
                f"{path}: duplicate rank-table row for mutex \"{name}\""
            )
        rows[name] = (
            line_of(text, match.start()),
            match.group(2),
            int(match.group(3)),
            match.group(4).lower(),
        )
    if not rows:
        raise LintError(f"{path}: cannot parse any rank-table rows")
    return rows


def check_locks(root: Path, rep: Reporter) -> None:
    check = "locks"
    ranks, strata, width = parse_lock_ranks(root)
    doc_path = root / "docs/lock_hierarchy.md"
    doc_rows = parse_lock_table(root)

    def stratum_of(value: int) -> str:
        return strata.get(value // width, f"(no stratum band {value // width})")

    # One entry per declared mutex: quoted name -> (path, line, rank name).
    declared: dict[str, tuple[Path, int, str]] = {}
    used_ranks: set[str] = set()

    sources = sorted((root / "src").rglob("*.h")) + sorted(
        (root / "src").rglob("*.cc")
    )
    for path in sources:
        rel = path.relative_to(root).as_posix()
        if rel in _LOCKS_EXEMPT:
            continue
        text = strip_comments(read_text(path))

        for match in _RAW_MUTEX_RE.finditer(text):
            rep.report(
                path, line_of(text, match.start()), check,
                f"raw {match.group(0)} — only thread_annotations.h and "
                f"lock_rank.* may use unranked primitives; use the ranked "
                f"Mutex/MutexCv wrappers (docs/lock_hierarchy.md)",
            )

        for match in _MUTEX_DECL_RE.finditer(text):
            kind, var, init = match.group(1), match.group(2), match.group(3)
            line = line_of(text, match.start())
            rank_match = re.search(r"LockRank::(k\w+)", init or "")
            name_match = re.search(r"\"([^\"]+)\"", init or "")
            if not rank_match:
                rep.report(
                    path, line, check,
                    f"{kind} member \"{var}\" declares no rank — construct "
                    f"it as {kind} {var}{{LockRank::<rank>, \"<Class>."
                    f"{var}\"}} and add a docs/lock_hierarchy.md row",
                )
                continue
            rank_name = rank_match.group(1)
            if rank_name not in ranks:
                rep.report(
                    path, line, check,
                    f"{kind} member \"{var}\" uses LockRank::{rank_name}, "
                    f"which is not in the LockRank enum",
                )
                continue
            if not name_match:
                rep.report(
                    path, line, check,
                    f"{kind} member \"{var}\" has a rank but no quoted "
                    f"name; the detector and the doc table key on the name",
                )
                continue
            used_ranks.add(rank_name)
            qname = name_match.group(1)
            if qname in declared:
                other_path, other_line, _ = declared[qname]
                rep.report(
                    path, line, check,
                    f"mutex name \"{qname}\" is also declared at "
                    f"{other_path}:{other_line}; names must be unique",
                )
                continue
            declared[qname] = (path, line, rank_name)

            # Stratum discipline: the rank's value band must match the
            # declaring subsystem directory.
            parts = path.relative_to(root).parts
            subsystem = parts[1] if len(parts) > 2 else None
            value = ranks[rank_name]
            band = stratum_of(value)
            if subsystem is not None and subsystem in strata.values():
                if band != subsystem:
                    lo = next(
                        k for k, v in strata.items() if v == subsystem
                    ) * width
                    rep.report(
                        path, line, check,
                        f"mutex \"{qname}\" has rank {rank_name} (value "
                        f"{value}, stratum {band}) but is declared in "
                        f"src/{subsystem}/ — {subsystem}-stratum locks must "
                        f"use a rank in [{lo}, {lo + width})",
                    )
            elif subsystem is not None:
                rep.report(
                    path, line, check,
                    f"mutex \"{qname}\" is declared in src/{subsystem}/, "
                    f"which has no stratum band — extend LockStratum and "
                    f"docs/lock_hierarchy.md first",
                )

    # Enum <-> declarations: a rank nobody uses is dead weight (or a typo'd
    # migration).
    for rank_name in sorted(ranks):
        if rank_name not in used_ranks:
            rep.report(
                root / "src/util/lock_rank.h", None, check,
                f"LockRank::{rank_name} is in the enum but no Mutex/MutexCv "
                f"declaration uses it — remove it or rank the lock it was "
                f"meant for",
            )

    # Declarations <-> doc table, both directions, with rank agreement.
    for qname, (path, line, rank_name) in sorted(declared.items()):
        if qname not in doc_rows:
            rep.report(
                path, line, check,
                f"mutex \"{qname}\" (rank {rank_name}) has no row in the "
                f"docs/lock_hierarchy.md rank table — every lock must be "
                f"documented with what it guards and what it may call",
            )
            continue
        doc_line, doc_rank, doc_value, doc_stratum = doc_rows[qname]
        if doc_rank != rank_name:
            rep.report(
                doc_path, doc_line, check,
                f"rank table says mutex \"{qname}\" has rank {doc_rank}, "
                f"but the declaration at {path}:{line} says {rank_name}",
            )
        elif doc_value != ranks[rank_name]:
            rep.report(
                doc_path, doc_line, check,
                f"rank table says {doc_rank} = {doc_value}, but the enum "
                f"says {ranks[rank_name]}",
            )
        elif doc_stratum != stratum_of(ranks[rank_name]):
            rep.report(
                doc_path, doc_line, check,
                f"rank table puts mutex \"{qname}\" in stratum "
                f"\"{doc_stratum}\", but rank {rank_name} is in "
                f"\"{stratum_of(ranks[rank_name])}\"",
            )
    for qname, (doc_line, _, _, _) in sorted(doc_rows.items()):
        if qname not in declared:
            rep.report(
                doc_path, doc_line, check,
                f"rank table documents mutex \"{qname}\", which is not "
                f"declared anywhere in src/ — stale row?",
            )

    # LockRankName() must name every rank (the detector's reports depend on
    # it; -Wswitch would catch this too, but only in builds that compile the
    # detector).
    name_impl = read_text(root / "src/util/lock_rank.cc")
    cases = set(re.findall(r"case LockRank::(k\w+):", name_impl))
    for rank_name in sorted(ranks):
        if rank_name not in cases:
            rep.report(
                root / "src/util/lock_rank.cc", None, check,
                f"LockRank::{rank_name} has no case in LockRankName() — "
                f"detector reports would print \"(unknown rank)\"",
            )


# ---------------------------------------------------------------------------
# Driver


CHECKS = {
    "formats": check_formats,
    "metrics": check_metrics,
    "spans": check_spans,
    "endpoints": check_endpoints,
    "nodiscard": check_nodiscard,
    "serving": check_serving,
    "locks": check_locks,
}


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root to lint (default: this script's repo)",
    )
    parser.add_argument(
        "--list-checks", action="store_true", help="list check names and exit"
    )
    parser.add_argument(
        "checks", nargs="*", default=[], help="subset of checks to run"
    )
    args = parser.parse_args(argv)

    if args.list_checks:
        print("\n".join(CHECKS))
        return 0

    selected = args.checks or list(CHECKS)
    unknown = [c for c in selected if c not in CHECKS]
    if unknown:
        print(f"adict_lint: unknown check(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    rep = Reporter()
    try:
        for name in selected:
            CHECKS[name](args.root, rep)
    except LintError as err:
        print(f"adict_lint: error: {err}", file=sys.stderr)
        return 2

    for violation in rep.violations:
        print(violation)
    if rep.violations:
        print(f"adict_lint: {len(rep.violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"adict_lint: OK ({', '.join(selected)})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
