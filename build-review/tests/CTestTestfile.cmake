# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build-review/tests/core_test[1]_include.cmake")
include("/root/repo/build-review/tests/corruption_fuzz_test[1]_include.cmake")
include("/root/repo/build-review/tests/dict_test[1]_include.cmake")
include("/root/repo/build-review/tests/engine_test[1]_include.cmake")
include("/root/repo/build-review/tests/failpoint_test[1]_include.cmake")
include("/root/repo/build-review/tests/hash_index_test[1]_include.cmake")
include("/root/repo/build-review/tests/integration_test[1]_include.cmake")
include("/root/repo/build-review/tests/lint_test[1]_include.cmake")
include("/root/repo/build-review/tests/memory_pressure_test[1]_include.cmake")
include("/root/repo/build-review/tests/obs_test[1]_include.cmake")
include("/root/repo/build-review/tests/parallel_engine_test[1]_include.cmake")
include("/root/repo/build-review/tests/property_test[1]_include.cmake")
include("/root/repo/build-review/tests/robustness_test[1]_include.cmake")
include("/root/repo/build-review/tests/scan_select_test[1]_include.cmake")
include("/root/repo/build-review/tests/scan_test[1]_include.cmake")
include("/root/repo/build-review/tests/serde_test[1]_include.cmake")
include("/root/repo/build-review/tests/serialization_test[1]_include.cmake")
include("/root/repo/build-review/tests/status_test[1]_include.cmake")
include("/root/repo/build-review/tests/size_model_edge_test[1]_include.cmake")
include("/root/repo/build-review/tests/store_test[1]_include.cmake")
include("/root/repo/build-review/tests/text_codec_test[1]_include.cmake")
include("/root/repo/build-review/tests/trace_test[1]_include.cmake")
include("/root/repo/build-review/tests/tpch_query_validation_test[1]_include.cmake")
include("/root/repo/build-review/tests/tpch_test[1]_include.cmake")
include("/root/repo/build-review/tests/util_test[1]_include.cmake")
