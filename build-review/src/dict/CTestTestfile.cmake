# CMake generated Testfile for 
# Source directory: /root/repo/src/dict
# Build directory: /root/repo/build-review/src/dict
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
