// Quickstart: build compressed string dictionaries, look values up, compare
// formats, and let the compression manager pick one automatically.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "core/compression_manager.h"
#include "datasets/generators.h"
#include "dict/dictionary.h"

using namespace adict;

int main() {
  // A dictionary is built from the sorted distinct values of a column.
  std::vector<std::string> values = {
      "AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY",
  };

  // 1. Build a dictionary in a specific format and use it.
  auto dict = BuildDictionary(DictFormat::kFcBlock, values);
  std::printf("extract(2)            -> %s\n", dict->Extract(2).c_str());
  const LocateResult hit = dict->Locate("HOUSEHOLD");
  std::printf("locate(\"HOUSEHOLD\")   -> id %u (found=%d)\n", hit.id, hit.found);
  const LocateResult miss = dict->Locate("CLOTHING");
  std::printf("locate(\"CLOTHING\")    -> id %u (found=%d)  "
              "// id of first greater string\n",
              miss.id, miss.found);
  std::printf("memory                -> %zu bytes\n\n", dict->MemoryBytes());

  // 2. Compare all 18 formats on a larger, realistic column.
  const std::vector<std::string> urls = GenerateSurveyDataset("url", 20000);
  const uint64_t raw = RawDataBytes(urls);
  std::printf("20000 URLs, %.1f KB raw. Sizes per format:\n",
              static_cast<double>(raw) / 1024);
  for (DictFormat format : AllDictFormats()) {
    auto candidate = BuildDictionary(format, urls);
    std::printf("  %-16s %8.1f KB  (compression rate %.2f)\n",
                std::string(DictFormatName(format)).c_str(),
                static_cast<double>(candidate->MemoryBytes()) / 1024,
                static_cast<double>(raw) / candidate->MemoryBytes());
  }

  // 3. Or let the compression manager decide from the column's usage.
  CompressionManager manager;
  ColumnUsage usage;
  usage.num_extracts = 50000;     // traced by the store
  usage.num_locates = 200;
  usage.lifetime_seconds = 600;   // merge interval
  usage.column_vector_bytes = 40000;

  manager.set_c(0.05);  // memory-pressure leaning
  auto adaptive = manager.BuildAdaptiveDictionary(urls, usage);
  std::printf("\ncompression manager (c=%.2f) picked: %s (%zu bytes)\n",
              manager.c(),
              std::string(DictFormatName(adaptive->format())).c_str(),
              adaptive->MemoryBytes());

  manager.set_c(5.0);  // plenty of head-room
  adaptive = manager.BuildAdaptiveDictionary(urls, usage);
  std::printf("compression manager (c=%.2f) picked: %s (%zu bytes)\n",
              manager.c(),
              std::string(DictFormatName(adaptive->format())).c_str(),
              adaptive->MemoryBytes());
  return 0;
}
