// Compression advisor: the "tuning advisor" use of the prediction framework
// (paper §4.3) — estimate, from a small sample, how large every dictionary
// format would be for a column, and recommend formats for different usage
// patterns, all WITHOUT building any dictionary.
//
//   $ ./build/examples/compression_advisor [file-with-one-value-per-line]
//
// Without an argument, a synthetic material-number column is analyzed.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/compression_manager.h"
#include "core/size_model.h"
#include "datasets/generators.h"

using namespace adict;

int main(int argc, char** argv) {
  // Load or synthesize the column.
  std::vector<std::string> values;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) values.push_back(line);
    std::printf("analyzing %zu values from %s\n", values.size(), argv[1]);
  } else {
    values = GenerateSurveyDataset("mat", 100000);
    std::printf("analyzing a synthetic column of %zu material numbers\n",
                values.size());
  }
  const std::vector<std::string> sorted = SortedUnique(std::move(values));
  std::printf("%zu distinct values, %.1f KB raw\n\n", sorted.size(),
              static_cast<double>(RawDataBytes(sorted)) / 1024);

  // Sample the properties with the paper's max(1%, 5000) policy and predict
  // the size of every format. Only ~1% of the column is inspected.
  const DictionaryProperties props =
      SampleProperties(sorted, SamplingConfig::Default());
  std::printf("sampled %.1f%% of the entries; predicted sizes:\n",
              100.0 * props.sampled_fraction);
  std::printf("  %-16s %12s %10s\n", "format", "size[KB]", "compr");
  for (DictFormat format : AllDictFormats()) {
    const double predicted = PredictDictionarySize(format, props);
    std::printf("  %-16s %12.1f %10.2f\n",
                std::string(DictFormatName(format)).c_str(), predicted / 1024,
                props.raw_chars / predicted);
  }

  // Recommendations for three usage patterns.
  const CostModel costs = CostModel::Default();
  struct Pattern {
    const char* label;
    ColumnUsage usage;
  };
  ColumnUsage archive;  // almost never touched
  archive.num_extracts = 100;
  archive.lifetime_seconds = 86400;
  ColumnUsage mixed;
  mixed.num_extracts = 500000;
  mixed.num_locates = 5000;
  mixed.lifetime_seconds = 3600;
  ColumnUsage hot;  // dominated by point accesses
  hot.num_extracts = 2000000000;
  hot.lifetime_seconds = 600;
  const Pattern patterns[] = {
      {"archive (rarely read)", archive},
      {"mixed OLAP", mixed},
      {"hot OLTP-ish", hot},
  };

  std::printf("\nrecommendations (strategy: tilt, c = 0.1):\n");
  for (const Pattern& pattern : patterns) {
    const std::vector<Candidate> candidates =
        EvaluateCandidates(props, pattern.usage, costs);
    const DictFormat pick = SelectFormat(candidates, 0.1, TradeoffStrategy::kTilt);
    std::printf("  %-24s -> %s\n", pattern.label,
                std::string(DictFormatName(pick)).c_str());
  }
  return 0;
}
