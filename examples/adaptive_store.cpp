// Adaptive store: the full lifecycle of the paper end to end.
//
// A small column store runs a read workload while inserts accumulate in a
// write-optimized delta. At every periodic delta merge the dictionary is
// rebuilt anyway, so the compression manager re-decides its format from the
// traced usage — steered by a global trade-off parameter c that a feedback
// controller adjusts from (simulated) memory pressure.
//
//   $ ./build/examples/adaptive_store
//   $ ./build/examples/adaptive_store --trace /tmp/adict.trace.json
//   $ ./build/examples/adaptive_store --mem-pressure
//   $ ./build/examples/adaptive_store --metrics-port 9464 --serve 60
//
// With --trace, span tracing is enabled for the run and the file receives
// Chrome trace_event JSON — open it in https://ui.perfetto.dev or
// chrome://tracing to see where the time inside each merge went (sampling,
// model evaluation, candidate build, validation). A per-span summary is
// printed at the end of the run.
//
// With --mem-pressure, the example instead demos the other half of the
// feedback story (docs/memory_pressure.md): a live RecompressionScheduler
// polling a simulated memory budget on a real background sampler thread,
// rebuilding the store's columns into cheaper formats as the budget
// shrinks — no merges needed, scans never blocked.
//
// With --metrics-port N (or ADICT_METRICS_PORT=N in the environment), an
// HTTP exposition server runs on 127.0.0.1:N for the life of the process:
// curl /metrics, /profile.json, /decisions.json while the demo runs
// (docs/observability.md#http-endpoints). --serve SECONDS additionally
// loops the 22 TPC-H queries over a small generated database for that many
// seconds, so there is a live workload to scrape: per-column heat, latency
// quantiles, and per-query attribution stay in motion the whole time.
//
// With --serve-port N (or ADICT_SERVE_PORT=N), the binary query server
// (docs/serving.md) listens on 127.0.0.1:N over the same TPC-H database:
// network clients issue counts, selects, and full TPC-H queries through the
// length-prefixed protocol, with repeated queries answered from the
// epoch-invalidated result cache. Combine with --serve SECONDS to bound
// the run, or run without it to serve until killed.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/compression_manager.h"
#include "core/recompression_scheduler.h"
#include "datasets/generators.h"
#include "obs/export.h"
#include "obs/http_exporter.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "obs/workload_profiler.h"
#include "server/query_server.h"
#include "store/delta.h"
#include "store/string_column.h"
#include "store/table.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "util/memory_pressure.h"
#include "util/rng.h"

using namespace adict;

namespace {

// Three columns with very different content and heat.
struct ManagedColumn {
  const char* name;
  const char* dataset;     // content generator
  uint64_t reads_per_tick; // workload heat
  StringColumn column;
  DeltaColumn delta;
};

void PrintState(const std::vector<ManagedColumn*>& columns, double c) {
  std::printf("    c = %-8.4f", c);
  for (const ManagedColumn* col : columns) {
    std::printf("  %s=%s (%zu KB)", col->name,
                std::string(DictFormatName(col->column.format())).c_str(),
                col->column.MemoryBytes() / 1024);
  }
  std::printf("\n");
}

// --mem-pressure: a table under a live, shrinking memory budget. The
// scheduler owns a background MemorySampler over a SimulatedProvider; the
// main thread only moves the budget and keeps scanning — every rebuild
// happens behind its back via snapshot-swap publishes.
int RunMemPressureDemo() {
  constexpr uint64_t kRows = 12000;
  Table table("demo");
  table.AddStringColumn("hot_mat",
                        StringColumn::FromValues(
                            GenerateSurveyDataset("mat", kRows),
                            DictFormat::kArray));
  table.AddStringColumn("warm_url",
                        StringColumn::FromValues(
                            GenerateSurveyDataset("url", kRows),
                            DictFormat::kArray));
  table.AddStringColumn("cold_src",
                        StringColumn::FromValues(
                            GenerateSurveyDataset("src", kRows),
                            DictFormat::kArray));
  // Heat the columns unevenly so the ranking has something to rank: the
  // scheduler rebuilds big, cold dictionaries before hot ones.
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    (void)table.strings("hot_mat").GetValue(rng.Uniform(kRows));
  }
  for (int i = 0; i < 500; ++i) {
    (void)table.strings("warm_url").GetValue(rng.Uniform(kRows));
  }

  const uint64_t store_bytes = table.MemoryBytes();
  std::printf("store starts all-array: %.2f MB of dictionaries\n\n",
              store_bytes / 1e6);

  // Demo pacing: a lower sampling floor keeps each rebuild decision at
  // milliseconds on these small columns (the Re-Pair trial dominates
  // sampling; see docs/tuning_guide.md), so the live loop stays visibly
  // responsive even on a single-core box where pool rebuilds run inline.
  CompressionManager::Options manager_options;
  manager_options.sampling.min_entries = 512;
  CompressionManager manager(CostModel::Default(), manager_options);
  RecompressionScheduler::Options options;
  options.cooldown_ticks = 2;
  options.advisory_period_ticks = 2;
  RecompressionScheduler scheduler(&table, &manager, options);

  auto provider = std::make_unique<SimulatedProvider>(
      /*used_bytes=*/store_bytes, /*total_bytes=*/store_bytes * 2);
  SimulatedProvider* budget = provider.get();
  scheduler.AttachSampler(std::move(provider), /*period_millis=*/20);

  // The budget shrinks toward the store's own footprint and recovers.
  const double budget_steps[] = {2.0, 1.3, 1.05, 0.9, 0.9, 1.5, 2.0};
  for (double step : budget_steps) {
    budget->set_total_bytes(static_cast<uint64_t>(store_bytes * step));
    // Used memory tracks the store as rebuilds reclaim dictionaries, and
    // scans keep running while the sampler thread triggers rebuilds.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
    uint64_t scanned = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      const auto snapshot = table.SnapshotStrings("hot_mat");
      for (int i = 0; i < 1000; ++i) {
        scanned += snapshot->GetValue(rng.Uniform(kRows)).size();
      }
      budget->set_used_bytes(table.MemoryBytes());
    }
    const RecompressionScheduler::Stats stats = scheduler.stats();
    std::printf("budget %4.2fx store: level=%-8s rebuilds=%-3llu %5.1f MB |",
                step, std::string(PressureLevelName(stats.level)).c_str(),
                static_cast<unsigned long long>(stats.rebuilds),
                table.MemoryBytes() / 1e6);
    for (size_t i = 0; i < table.num_string_columns(); ++i) {
      const auto snapshot = table.string_column(i).Snapshot();
      std::printf(" %s=%s", table.string_column_name(i).c_str(),
                  std::string(DictFormatName(snapshot->format())).c_str());
    }
    std::printf("  (scanned %llu bytes)\n",
                static_cast<unsigned long long>(scanned));
  }

  // Let the sampler see the recovered budget (a slow in-flight rebuild can
  // hold it up for a moment on a single-core box) and show the tier clear.
  const auto settle_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while (scheduler.level() != PressureLevel::kNone &&
         std::chrono::steady_clock::now() < settle_deadline) {
    budget->set_used_bytes(table.MemoryBytes());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::printf("budget recovered:   level=%-8s %5.1f MB\n",
              std::string(PressureLevelName(scheduler.level())).c_str(),
              table.MemoryBytes() / 1e6);
  scheduler.Stop();

  std::printf(
      "\nExpected behaviour: as the budget shrinks toward the store's own\n"
      "footprint the pressure tier rises and the scheduler rebuilds the\n"
      "coldest, fattest dictionaries into compressed formats; when the\n"
      "budget recovers, the pressure clears and rebuilds stop. The scans\n"
      "above ran against pinned snapshots the whole time.\n");
  std::printf("\n--- observability report ---\n");
  std::printf("%s", obs::DecisionLogToText(obs::Decisions(),
                                           /*max_entries=*/6).c_str());
  std::printf("%s", obs::MetricsToText(obs::Metrics()).c_str());
  return 0;
}

// --serve SECONDS / --serve-port N: a generated SF 0.01 TPC-H database,
// optionally looped by the 22 queries in-process (so the HTTP endpoints
// have a live workload) and optionally exposed to network clients through
// the binary query server. With --serve-port but no --serve, blocks until
// killed.
int RunServeLoop(double seconds, int serve_port) {
  TpchOptions options;
  TpchDatabase db = GenerateTpch(options);
  std::printf("TPC-H database ready (%zu MB)\n",
              db.MemoryBytes() / (1024 * 1024));

  QueryServer server([&] {
    QueryServer::Options server_options = QueryServer::OptionsFromEnv();
    server_options.port = serve_port;
    return server_options;
  }());
  if (serve_port >= 0) {
    server.ServeTpch(&db);
    const Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "query server failed to start: %s\n",
                   std::string(started.message()).c_str());
      return 2;
    }
    std::printf("query server: 127.0.0.1:%d (binary protocol, "
                "docs/serving.md; cache %zu KB)\n",
                server.port(), server.options().cache_bytes / 1024);
  }

  if (seconds < 0) {
    // Serve-only mode: park the main thread while the server runs.
    std::printf("serving until killed\n");
    while (true) std::this_thread::sleep_for(std::chrono::seconds(1));
  }

  std::printf("running TPC-H workload for %.0f s\n", seconds);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000));
  uint64_t runs = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int query = 1; query <= kNumTpchQueries; ++query) {
      (void)RunTpchQuery(db, query);
      ++runs;
      if (std::chrono::steady_clock::now() >= deadline) break;
    }
  }
  std::printf("ran %llu queries\n", static_cast<unsigned long long>(runs));
  server.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  bool mem_pressure = false;
  int metrics_port = -1;
  int serve_port = -1;
  double serve_seconds = -1;
  if (const char* env = std::getenv("ADICT_METRICS_PORT")) {
    metrics_port = std::atoi(env);
  }
  if (const char* env = std::getenv("ADICT_SERVE_PORT")) {
    serve_port = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--mem-pressure") == 0) {
      mem_pressure = true;
    } else if (std::strcmp(argv[i], "--metrics-port") == 0 && i + 1 < argc) {
      metrics_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      serve_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--serve-port") == 0 && i + 1 < argc) {
      serve_port = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: adaptive_store [--trace FILE] [--mem-pressure] "
                   "[--metrics-port N] [--serve SECONDS] [--serve-port N]\n");
      return 2;
    }
  }

  obs::RegisterProcessMetrics(kNumDictFormats);
  obs::HttpExporter exporter([&] {
    obs::HttpExporter::Options options;
    options.port = metrics_port < 0 ? 0 : metrics_port;
    return options;
  }());
  if (metrics_port >= 0) {
    const Status started = exporter.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "metrics server failed to start: %s\n",
                   std::string(started.message()).c_str());
      return 2;
    }
    std::printf("metrics: http://127.0.0.1:%d/metrics (also /profile.json, "
                "/decisions.json, /spans.json, /healthz)\n",
                exporter.port());
  }

  if (serve_seconds >= 0 || serve_port >= 0) {
    return RunServeLoop(serve_seconds, serve_port);
  }
  if (mem_pressure) return RunMemPressureDemo();
  if (trace_path != nullptr) obs::SetTraceEnabled(true);

  Rng rng(7);
  std::vector<ManagedColumn> columns;
  columns.push_back({"hot_mat", "mat", 200000, StringColumn(), DeltaColumn()});
  columns.push_back({"warm_url", "url", 5000, StringColumn(), DeltaColumn()});
  columns.push_back({"cold_src", "src", 50, StringColumn(), DeltaColumn()});
  std::vector<ManagedColumn*> column_ptrs;
  for (ManagedColumn& col : columns) {
    col.column = StringColumn::FromValues(
        GenerateSurveyDataset(col.dataset, 20000), DictFormat::kFcInline);
    column_ptrs.push_back(&col);
  }

  CompressionManager::Options manager_options;
  manager_options.controller.smoothing = 0.5;  // responsive demo pacing
  CompressionManager manager(CostModel::Default(), manager_options);
  std::printf("initial state (everything fc inline):\n");
  PrintState(column_ptrs, manager.c());

  // Simulated memory environment: the store's own footprint plus a phase-
  // dependent external load eats into a fixed budget. The middle phase
  // pushes free memory well below the controller's target.
  const double total_memory = 16.0 * 1024 * 1024;  // 16 MB budget
  const double external_load[] = {2e6,  8e6,  14e6, 14.5e6, 14.5e6, 14.5e6,
                                  14e6, 8e6,  2e6,  1e6,    1e6,    1e6};
  const int num_ticks = static_cast<int>(std::size(external_load));

  for (int tick = 0; tick < num_ticks; ++tick) {
    // 1. Run the read workload (traced by the columns themselves).
    for (ManagedColumn& col : columns) {
      for (uint64_t i = 0; i < col.reads_per_tick / 100; ++i) {
        (void)col.column.GetValue(rng.Uniform(col.column.num_rows()));
      }
      (void)col.column.Locate("probe");
    }

    // 2. Inserts accumulate in the deltas.
    for (ManagedColumn& col : columns) {
      for (int i = 0; i < 50; ++i) {
        col.delta.Append("new-" + std::to_string(tick) + "-" +
                         std::to_string(rng.Uniform(1000)));
      }
    }

    // 3. The controller observes memory pressure and adjusts c.
    double used = external_load[tick];
    for (ManagedColumn& col : columns) used += col.column.MemoryBytes();
    const double c = manager.controller().Observe(total_memory - used,
                                                  total_memory);

    // 4. Periodic delta merge: dictionaries are rebuilt anyway, so the
    //    manager re-decides each format (scaling the traced counts to the
    //    full tick gives the per-lifetime usage).
    for (ManagedColumn& col : columns) {
      StringColumn merged = MergeDeltaAdaptive(
          col.column, col.delta, manager, /*lifetime_seconds=*/60.0,
          col.name);
      col.column = std::move(merged);
      col.delta = DeltaColumn();
    }

    std::printf("tick %d: external load %4.1f MB, free %5.1f%%\n", tick,
                external_load[tick] / 1e6,
                100.0 * manager.controller().smoothed_free_fraction());
    PrintState(column_ptrs, c);
  }

  std::printf(
      "\nExpected behaviour: as the external load peaks, c drops and merges\n"
      "move the columns into heavier compression (the cold column first);\n"
      "when the pressure recedes, c recovers and the hot column gets a fast\n"
      "format back. Rows survive every merge:\n");
  for (const ManagedColumn& col : columns) {
    std::printf("  %s: %llu rows, %u distinct, format %s\n", col.name,
                static_cast<unsigned long long>(col.column.num_rows()),
                col.column.num_distinct(),
                std::string(DictFormatName(col.column.format())).c_str());
  }

  // The observability layer saw every decision and rebuild: per merged
  // column the chosen format, predicted vs actual dictionary bytes, the
  // relative prediction error, and c at decision time — plus the global
  // metric counters/timers behind the run (docs/observability.md).
  std::printf("\n--- observability report ---\n");
  std::printf("%s", obs::DecisionLogToText(obs::Decisions(),
                                           /*max_entries=*/9).c_str());
  std::printf("%s", obs::MetricsToText(obs::Metrics()).c_str());

  if (trace_path != nullptr) {
    const std::vector<obs::TraceEvent> events = obs::Trace().Snapshot();
    const std::string json = obs::TraceToChromeJson(events);
    if (std::FILE* f = std::fopen(trace_path, "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("\nwrote %zu spans to %s (open in ui.perfetto.dev)\n",
                  events.size(), trace_path);
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path);
      return 2;
    }
    std::printf("%s",
                obs::TraceSummaryToText(events, obs::Trace().dropped())
                    .c_str());
  }
  return 0;
}
