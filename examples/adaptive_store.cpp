// Adaptive store: the full lifecycle of the paper end to end.
//
// A small column store runs a read workload while inserts accumulate in a
// write-optimized delta. At every periodic delta merge the dictionary is
// rebuilt anyway, so the compression manager re-decides its format from the
// traced usage — steered by a global trade-off parameter c that a feedback
// controller adjusts from (simulated) memory pressure.
//
//   $ ./build/examples/adaptive_store
//   $ ./build/examples/adaptive_store --trace /tmp/adict.trace.json
//
// With --trace, span tracing is enabled for the run and the file receives
// Chrome trace_event JSON — open it in https://ui.perfetto.dev or
// chrome://tracing to see where the time inside each merge went (sampling,
// model evaluation, candidate build, validation). A per-span summary is
// printed at the end of the run.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/compression_manager.h"
#include "datasets/generators.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "store/delta.h"
#include "store/string_column.h"
#include "util/rng.h"

using namespace adict;

namespace {

// Three columns with very different content and heat.
struct ManagedColumn {
  const char* name;
  const char* dataset;     // content generator
  uint64_t reads_per_tick; // workload heat
  StringColumn column;
  DeltaColumn delta;
};

void PrintState(const std::vector<ManagedColumn*>& columns, double c) {
  std::printf("    c = %-8.4f", c);
  for (const ManagedColumn* col : columns) {
    std::printf("  %s=%s (%zu KB)", col->name,
                std::string(DictFormatName(col->column.format())).c_str(),
                col->column.MemoryBytes() / 1024);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: adaptive_store [--trace FILE]\n");
      return 2;
    }
  }
  if (trace_path != nullptr) obs::SetTraceEnabled(true);

  Rng rng(7);
  std::vector<ManagedColumn> columns;
  columns.push_back({"hot_mat", "mat", 200000, StringColumn(), DeltaColumn()});
  columns.push_back({"warm_url", "url", 5000, StringColumn(), DeltaColumn()});
  columns.push_back({"cold_src", "src", 50, StringColumn(), DeltaColumn()});
  std::vector<ManagedColumn*> column_ptrs;
  for (ManagedColumn& col : columns) {
    col.column = StringColumn::FromValues(
        GenerateSurveyDataset(col.dataset, 20000), DictFormat::kFcInline);
    column_ptrs.push_back(&col);
  }

  CompressionManager::Options manager_options;
  manager_options.controller.smoothing = 0.5;  // responsive demo pacing
  CompressionManager manager(CostModel::Default(), manager_options);
  std::printf("initial state (everything fc inline):\n");
  PrintState(column_ptrs, manager.c());

  // Simulated memory environment: the store's own footprint plus a phase-
  // dependent external load eats into a fixed budget. The middle phase
  // pushes free memory well below the controller's target.
  const double total_memory = 16.0 * 1024 * 1024;  // 16 MB budget
  const double external_load[] = {2e6,  8e6,  14e6, 14.5e6, 14.5e6, 14.5e6,
                                  14e6, 8e6,  2e6,  1e6,    1e6,    1e6};
  const int num_ticks = static_cast<int>(std::size(external_load));

  for (int tick = 0; tick < num_ticks; ++tick) {
    // 1. Run the read workload (traced by the columns themselves).
    for (ManagedColumn& col : columns) {
      for (uint64_t i = 0; i < col.reads_per_tick / 100; ++i) {
        (void)col.column.GetValue(rng.Uniform(col.column.num_rows()));
      }
      (void)col.column.Locate("probe");
    }

    // 2. Inserts accumulate in the deltas.
    for (ManagedColumn& col : columns) {
      for (int i = 0; i < 50; ++i) {
        col.delta.Append("new-" + std::to_string(tick) + "-" +
                         std::to_string(rng.Uniform(1000)));
      }
    }

    // 3. The controller observes memory pressure and adjusts c.
    double used = external_load[tick];
    for (ManagedColumn& col : columns) used += col.column.MemoryBytes();
    const double c = manager.controller().Observe(total_memory - used,
                                                  total_memory);

    // 4. Periodic delta merge: dictionaries are rebuilt anyway, so the
    //    manager re-decides each format (scaling the traced counts to the
    //    full tick gives the per-lifetime usage).
    for (ManagedColumn& col : columns) {
      StringColumn merged = MergeDeltaAdaptive(
          col.column, col.delta, manager, /*lifetime_seconds=*/60.0,
          col.name);
      col.column = std::move(merged);
      col.delta = DeltaColumn();
    }

    std::printf("tick %d: external load %4.1f MB, free %5.1f%%\n", tick,
                external_load[tick] / 1e6,
                100.0 * manager.controller().smoothed_free_fraction());
    PrintState(column_ptrs, c);
  }

  std::printf(
      "\nExpected behaviour: as the external load peaks, c drops and merges\n"
      "move the columns into heavier compression (the cold column first);\n"
      "when the pressure recedes, c recovers and the hot column gets a fast\n"
      "format back. Rows survive every merge:\n");
  for (const ManagedColumn& col : columns) {
    std::printf("  %s: %llu rows, %u distinct, format %s\n", col.name,
                static_cast<unsigned long long>(col.column.num_rows()),
                col.column.num_distinct(),
                std::string(DictFormatName(col.column.format())).c_str());
  }

  // The observability layer saw every decision and rebuild: per merged
  // column the chosen format, predicted vs actual dictionary bytes, the
  // relative prediction error, and c at decision time — plus the global
  // metric counters/timers behind the run (docs/observability.md).
  std::printf("\n--- observability report ---\n");
  std::printf("%s", obs::DecisionLogToText(obs::Decisions(),
                                           /*max_entries=*/9).c_str());
  std::printf("%s", obs::MetricsToText(obs::Metrics()).c_str());

  if (trace_path != nullptr) {
    const std::vector<obs::TraceEvent> events = obs::Trace().Snapshot();
    const std::string json = obs::TraceToChromeJson(events);
    if (std::FILE* f = std::fopen(trace_path, "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("\nwrote %zu spans to %s (open in ui.perfetto.dev)\n",
                  events.size(), trace_path);
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path);
      return 2;
    }
    std::printf("%s",
                obs::TraceSummaryToText(events, obs::Trace().dropped())
                    .c_str());
  }
  return 0;
}
