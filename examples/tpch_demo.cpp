// TPC-H demo: generate the modified benchmark database (*KEY columns as
// VARCHAR(10)), run queries on it, and show that swapping dictionary
// formats — manually or via the compression manager — changes memory, not
// results.
//
//   $ ./build/examples/tpch_demo [scale_factor]
#include <cstdio>
#include <cstdlib>

#include "core/compression_manager.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "util/stopwatch.h"

using namespace adict;

int main(int argc, char** argv) {
  TpchOptions options;
  options.scale_factor = argc > 1 ? std::atof(argv[1]) : 0.01;

  Stopwatch watch;
  TpchDatabase db = GenerateTpch(options);
  std::printf("generated TPC-H SF %.3f in %.2f s: %llu orders, %llu lineitems, "
              "%.1f MB\n\n",
              options.scale_factor, watch.ElapsedSeconds(),
              static_cast<unsigned long long>(db.orders.num_rows()),
              static_cast<unsigned long long>(db.lineitem.num_rows()),
              static_cast<double>(db.MemoryBytes()) / 1e6);

  // A flavor of the workload: pricing summary, shipping priority, promo share.
  for (int q : {1, 3, 14}) {
    watch.Restart();
    const QueryResult result = RunTpchQuery(db, q);
    std::printf("--- Q%d (%.1f ms)\n%s\n", q, watch.ElapsedMicros() / 1000.0,
                result.ToString(5).c_str());
  }

  // Same queries, heavily compressed dictionaries: identical rows.
  const QueryResult before = RunTpchQuery(db, 1);
  const size_t memory_before = db.StringColumnBytes();
  db.ApplyFormat(DictFormat::kFcBlockRp12);
  const QueryResult after = RunTpchQuery(db, 1);
  std::printf("all string dictionaries -> fc block rp 12: %.1f -> %.1f MB, "
              "Q1 results identical: %s\n\n",
              static_cast<double>(memory_before) / 1e6,
              static_cast<double>(db.StringColumnBytes()) / 1e6,
              before.rows == after.rows ? "yes" : "NO (bug!)");

  // Let the compression manager configure every column from a traced
  // workload, as the paper's offline prototype does.
  db.ApplyFormat(DictFormat::kFcInline);
  db.ResetUsage();
  watch.Restart();
  for (int q = 1; q <= kNumTpchQueries; ++q) (void)RunTpchQuery(db, q);
  const double lifetime = watch.ElapsedSeconds() * 100;  // ~100 repetitions

  CompressionManager manager;
  manager.set_c(0.1);
  std::printf("workload-driven configuration (c = %.1f):\n", manager.c());
  for (Table* table : db.tables()) {
    for (size_t i = 0; i < table->num_string_columns(); ++i) {
      StringColumn& column = table->string_column(i).current();
      ColumnUsage usage = column.TracedUsage(lifetime);
      usage.num_extracts *= 100;
      usage.num_locates *= 100;
      const DictFormat pick =
          manager.ChooseFormat(column.MaterializeDictionary(), usage);
      if (pick != column.format()) {
        std::printf("  %s.%s: %s -> %s\n", table->name().c_str(),
                    table->string_column_name(i).c_str(),
                    std::string(DictFormatName(column.format())).c_str(),
                    std::string(DictFormatName(pick)).c_str());
        column.ChangeFormat(pick);
      }
    }
  }
  std::printf("total string-column memory now: %.1f MB\n",
              static_cast<double>(db.StringColumnBytes()) / 1e6);
  return 0;
}
