// google-benchmark microbenchmarks of the dictionary operations (extract,
// locate, construct) across all formats — the raw measurements behind the
// time axis of Figure 3 and the cost-model constants of §4.1.
#include <benchmark/benchmark.h>

#include <array>
#include <memory>

#include "datasets/generators.h"
#include "dict/dictionary.h"
#include "util/rng.h"

namespace adict {
namespace {

constexpr uint64_t kNumStrings = 20000;

const std::vector<std::string>& Dataset() {
  static const std::vector<std::string>* data =
      new std::vector<std::string>(GenerateSurveyDataset("src", kNumStrings));
  return *data;
}

const Dictionary& CachedDictionary(DictFormat format) {
  static std::array<std::unique_ptr<Dictionary>, kNumDictFormats> cache;
  auto& slot = cache[static_cast<int>(format)];
  if (!slot) slot = BuildDictionary(format, Dataset());
  return *slot;
}

void BM_Extract(benchmark::State& state) {
  const DictFormat format = static_cast<DictFormat>(state.range(0));
  const Dictionary& dict = CachedDictionary(format);
  Rng rng(1);
  std::string scratch;
  for (auto _ : state) {
    scratch.clear();
    dict.ExtractInto(static_cast<uint32_t>(rng.Uniform(dict.size())), &scratch);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetLabel(std::string(DictFormatName(format)));
}

void BM_Locate(benchmark::State& state) {
  const DictFormat format = static_cast<DictFormat>(state.range(0));
  const Dictionary& dict = CachedDictionary(format);
  const std::vector<std::string>& data = Dataset();
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.Locate(data[rng.Uniform(data.size())]));
  }
  state.SetLabel(std::string(DictFormatName(format)));
}

void BM_Construct(benchmark::State& state) {
  const DictFormat format = static_cast<DictFormat>(state.range(0));
  const std::vector<std::string>& data = Dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildDictionary(format, data));
  }
  state.SetItemsProcessed(state.iterations() * data.size());
  state.SetLabel(std::string(DictFormatName(format)));
}

void RegisterAll() {
  for (int f = 0; f < kNumDictFormats; ++f) {
    benchmark::RegisterBenchmark("BM_Extract", BM_Extract)->Arg(f);
    benchmark::RegisterBenchmark("BM_Locate", BM_Locate)->Arg(f);
  }
  // Construction is expensive for the grammar-based formats; keep the list
  // representative rather than exhaustive.
  for (DictFormat format :
       {DictFormat::kArray, DictFormat::kArrayBc, DictFormat::kArrayHu,
        DictFormat::kFcBlock, DictFormat::kFcBlockRp12, DictFormat::kColumnBc}) {
    benchmark::RegisterBenchmark("BM_Construct", BM_Construct)
        ->Arg(static_cast<int>(format))
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.02);
  }
}

}  // namespace
}  // namespace adict

int main(int argc, char** argv) {
  adict::RegisterAll();
  if (argc == 1) {
    // Keep the default full-suite run short; pass flags to override.
    static char arg0[] = "dict_ops_benchmark";
    static char arg1[] = "--benchmark_min_time=0.05s";
    static char* default_argv[] = {arg0, arg1, nullptr};
    int default_argc = 2;
    benchmark::Initialize(&default_argc, default_argv);
  } else {
    benchmark::Initialize(&argc, argv);
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
