// Figure 6: prediction error of the compression models at sampling ratios
// 100%, 10%, 1%, and max(1%, 5000 entries), as box-plot statistics over all
// (dictionary variant x data set) combinations.
//
// Paper shape: at 100% more than 75% of predictions are within 2% and
// everything except outliers within 5%; at 1% a quarter of the estimations
// exceed 10% with extreme outliers from tiny samples; the max(1%, 5000)
// floor pulls >75% of predictions below 8%.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/survey_harness.h"
#include "core/properties.h"
#include "core/size_model.h"

using namespace adict;

namespace {

struct BoxStats {
  double median, q1, q3, whisker_low, whisker_high, max;
  int outliers;
};

BoxStats Summarize(std::vector<double> errors) {
  std::sort(errors.begin(), errors.end());
  const auto quantile = [&errors](double q) {
    const double pos = q * (errors.size() - 1);
    const size_t i = static_cast<size_t>(pos);
    const double frac = pos - i;
    return i + 1 < errors.size() ? errors[i] * (1 - frac) + errors[i + 1] * frac
                                 : errors[i];
  };
  BoxStats stats{};
  stats.median = quantile(0.5);
  stats.q1 = quantile(0.25);
  stats.q3 = quantile(0.75);
  const double iqr = stats.q3 - stats.q1;
  stats.whisker_low = stats.q1;
  stats.whisker_high = stats.q3;
  stats.outliers = 0;
  for (double e : errors) {
    if (e >= stats.q1 - 1.5 * iqr && e <= stats.q3 + 1.5 * iqr) {
      stats.whisker_low = std::min(stats.whisker_low, e);
      stats.whisker_high = std::max(stats.whisker_high, e);
    } else {
      ++stats.outliers;
    }
  }
  stats.max = errors.back();
  return stats;
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  const uint64_t n = bench::EnvOr("ADICT_DATASET_N", 15000);
  std::printf("Figure 6: prediction error of the compression models\n");
  std::printf("(18 variants x 9 data sets, %llu strings each)\n\n",
              static_cast<unsigned long long>(n));

  // Real sizes, built once per (data set, variant).
  std::vector<std::vector<double>> real(9);
  std::vector<std::vector<std::string>> datasets;
  for (std::string_view name : SurveyDatasetNames()) {
    datasets.push_back(GenerateSurveyDataset(name, n));
  }
  for (size_t d = 0; d < datasets.size(); ++d) {
    for (DictFormat format : AllDictFormats()) {
      real[d].push_back(static_cast<double>(
          BuildDictionary(format, datasets[d])->MemoryBytes()));
    }
  }

  const struct {
    const char* label;
    SamplingConfig config;
  } kRatios[] = {
      {"100%", {1.0, 0}},
      {"10%", {0.10, 0}},
      {"1%", {0.01, 0}},
      {"max(1%, 5000)", {0.01, 5000}},
  };

  std::printf("%-15s %8s %8s %8s %10s %10s %9s %8s\n", "sampling", "q1",
              "median", "q3", "whisk_lo", "whisk_hi", "outliers", "max");
  for (const auto& ratio : kRatios) {
    std::vector<double> errors;
    for (size_t d = 0; d < datasets.size(); ++d) {
      const DictionaryProperties props =
          SampleProperties(datasets[d], ratio.config);
      int f = 0;
      for (DictFormat format : AllDictFormats()) {
        errors.push_back(
            PredictionError(real[d][f++], PredictDictionarySize(format, props)));
      }
    }
    const BoxStats stats = Summarize(std::move(errors));
    std::printf("%-15s %7.2f%% %7.2f%% %7.2f%% %9.2f%% %9.2f%% %9d %7.1f%%\n",
                ratio.label, 100 * stats.q1, 100 * stats.median, 100 * stats.q3,
                100 * stats.whisker_low, 100 * stats.whisker_high,
                stats.outliers, 100 * stats.max);
  }
  std::printf(
      "\nTable 1 properties sampled per column: #strings, pointers (known);\n"
      "raw chars, #chars, entropy0, ng2/ng3 coverage, Re-Pair rate, max\n"
      "string length (string sample); fc suffix variants of the same plus\n"
      "inline header size (block sample); column-bc avg block size (block\n"
      "sample).\n"
      "\nExpected shape: errors grow as the sample shrinks; the max(1%%, 5000)\n"
      "floor removes the extreme small-dictionary outliers of the plain 1%%\n"
      "column and keeps >75%% of predictions within ~8%%.\n");
  return 0;
}
