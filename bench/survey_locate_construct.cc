// Supplementary survey table: locate and construction runtimes of all 18
// variants on all 9 data sets.
//
// The paper measures these trade-offs too but defers the detailed numbers
// to the companion thesis [Ratsch 2013] for space; this binary regenerates
// the full picture (extract is covered by Figures 3 and 5).
#include <cstdio>

#include "bench/survey_harness.h"

using namespace adict;

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  const uint64_t n = bench::EnvOr("ADICT_DATASET_N", 10000);
  const uint64_t probes = bench::EnvOr("ADICT_PROBES", 8000);

  std::printf(
      "Supplementary: locate [us] / construct [us per string] per variant "
      "and data set (%llu strings)\n\n",
      static_cast<unsigned long long>(n));
  std::printf("%-16s", "variant");
  for (std::string_view name : SurveyDatasetNames()) {
    std::printf(" %13s", std::string(name).c_str());
  }
  std::printf("\n");

  // One pass per data set; cache the measurements per format.
  std::vector<std::vector<bench::VariantMeasurement>> all;
  for (std::string_view name : SurveyDatasetNames()) {
    all.push_back(
        bench::MeasureAllVariants(GenerateSurveyDataset(name, n), probes));
  }
  int f = 0;
  for (DictFormat format : AllDictFormats()) {
    std::printf("%-16s", std::string(DictFormatName(format)).c_str());
    for (const auto& per_dataset : all) {
      std::printf(" %6.2f/%6.2f", per_dataset[f].locate_us,
                  per_dataset[f].construct_us);
    }
    std::printf("\n");
    ++f;
  }
  std::printf(
      "\nExpected shape: locate tracks extract cost plus log2(n) decode-and-\n"
      "compare probes; construction is dominated by codec training, with\n"
      "Re-Pair an order of magnitude above everything else.\n");
  return 0;
}
