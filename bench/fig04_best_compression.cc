// Figure 4: compression rate of the smallest dictionary implementation on
// each data set, compared with two generally attractive variants
// (fc block rp 12 and column bc).
//
// Paper shape: fc block rp 12 is most often the best; column bc wins
// clearly on the three constant-length data sets (asc, hash, mat) and is
// worse than uncompressed elsewhere; on rand1/rand2 nothing compresses.
#include <cstdio>

#include "bench/survey_harness.h"

using namespace adict;

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  const uint64_t n = bench::EnvOr("ADICT_DATASET_N", 15000);
  const uint64_t probes = 2000;  // rates only; few probes needed

  std::printf("Figure 4: compression rate of the smallest variant per data set\n\n");
  std::printf("%-8s %10s %-16s %14s %12s\n", "dataset", "best", "(variant)",
              "fc_block_rp12", "column_bc");
  for (std::string_view name : SurveyDatasetNames()) {
    const std::vector<std::string> sorted =
        GenerateSurveyDataset(name, n);
    double best = 0;
    DictFormat best_format = DictFormat::kArray;
    double rp12 = 0, colbc = 0;
    for (DictFormat format : AllDictFormats()) {
      const bench::VariantMeasurement m =
          bench::MeasureVariant(format, sorted, probes);
      if (m.compression_rate > best) {
        best = m.compression_rate;
        best_format = format;
      }
      if (format == DictFormat::kFcBlockRp12) rp12 = m.compression_rate;
      if (format == DictFormat::kColumnBc) colbc = m.compression_rate;
    }
    std::printf("%-8s %10.3f %-16s %14.3f %12.3f\n",
                std::string(name).c_str(), best,
                std::string(DictFormatName(best_format)).c_str(), rp12, colbc);
  }
  std::printf(
      "\nExpected shape: fc block rp 12 best or near-best on redundant text\n"
      "(src, url, engl, 1gram); column bc best on the constant-length sets\n"
      "(asc, hash, mat) and below 1.0 elsewhere; rates near or below 1.0 on\n"
      "the random data sets.\n");
  return 0;
}
