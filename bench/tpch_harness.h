// Shared helpers for the TPC-H evaluation benchmarks (Figures 10 and 11):
// tracing the workload's dictionary usage, applying workload-driven
// configurations, and timing the 22 queries.
#ifndef ADICT_BENCH_TPCH_HARNESS_H_
#define ADICT_BENCH_TPCH_HARNESS_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/survey_harness.h"
#include "core/compression_manager.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "util/stopwatch.h"

namespace adict {
namespace bench {

/// One string column with its traced workload and materialized dictionary.
struct TracedColumn {
  Table* table;
  size_t column_index;
  std::string name;
  std::vector<std::string> dict_values;
  ColumnUsage usage;
};

/// Runs the 22 queries once on `db`, then snapshots every string column's
/// usage as if the workload had run `multiplier` times (the paper uses 100
/// repetitions to make construction costs negligible).
inline std::vector<TracedColumn> TraceTpchWorkload(TpchDatabase* db,
                                                   int multiplier) {
  db->ResetUsage();
  Stopwatch watch;
  for (int q = 1; q <= kNumTpchQueries; ++q) {
    (void)RunTpchQuery(*db, q);
  }
  const double lifetime = watch.ElapsedSeconds() * multiplier;

  std::vector<TracedColumn> traced;
  for (Table* table : db->tables()) {
    for (size_t i = 0; i < table->num_string_columns(); ++i) {
      StringColumn& column = table->string_column(i).current();
      ColumnUsage usage = column.TracedUsage(lifetime);
      usage.num_extracts *= multiplier;
      usage.num_locates *= multiplier;
      traced.push_back({table, i, table->string_column_name(i),
                        column.MaterializeDictionary(), usage});
    }
  }
  return traced;
}

/// Per-column format selection for one value of the global parameter c.
/// Each selection is logged to obs::Decisions() under the column's name.
inline std::vector<DictFormat> SelectConfiguration(
    const std::vector<TracedColumn>& traced, const CompressionManager& manager,
    double c) {
  std::vector<DictFormat> formats;
  formats.reserve(traced.size());
  for (const TracedColumn& column : traced) {
    const DictionaryProperties props =
        SampleProperties(column.dict_values, manager.options().sampling);
    const std::vector<Candidate> candidates =
        EvaluateCandidates(props, column.usage, manager.cost_model());
    const SelectionDetails details =
        SelectFormatDetailed(candidates, c, manager.options().strategy);
    LogFormatDecision(column.name, props, column.usage, candidates, details,
                      c, manager.options().strategy);
    formats.push_back(details.selected);
  }
  return formats;
}

/// Rebuilds the traced columns' dictionaries in the given formats and
/// records each rebuilt dictionary's actual size against its logged
/// prediction.
inline void ApplyConfiguration(const std::vector<TracedColumn>& traced,
                               const std::vector<DictFormat>& formats) {
  for (size_t i = 0; i < traced.size(); ++i) {
    StringColumn& column =
        traced[i].table->string_column(traced[i].column_index).current();
    column.ChangeFormat(formats[i]);
    obs::Decisions().RecordActualForColumn(
        traced[i].name, static_cast<double>(column.DictionaryBytes()));
  }
}

/// Dumps the metrics registry and the tail of the decision log to `out`
/// (benchmarks call this after the run to make the telemetry inspectable).
inline void ReportObservability(std::FILE* out,
                                size_t max_decisions = 24) {
  std::fputs(obs::MetricsToText(obs::Metrics()).c_str(), out);
  std::fputs(obs::DecisionLogToText(obs::Decisions(), max_decisions).c_str(),
             out);
}

/// Sum over the 22 queries of the median runtime of `reps` executions
/// (paper: sum of the medians of 100 executions), in seconds.
inline double MeasureWorkloadSeconds(const TpchDatabase& db, int reps) {
  double total = 0;
  std::vector<double> times(reps);
  for (int q = 1; q <= kNumTpchQueries; ++q) {
    for (int r = 0; r < reps; ++r) {
      Stopwatch watch;
      (void)RunTpchQuery(db, q);
      times[r] = watch.ElapsedSeconds();
    }
    std::sort(times.begin(), times.end());
    total += times[reps / 2];
  }
  return total;
}

}  // namespace bench
}  // namespace adict

#endif  // ADICT_BENCH_TPCH_HARNESS_H_
