// Shared helpers for the TPC-H evaluation benchmarks (Figures 10 and 11):
// tracing the workload's dictionary usage, applying workload-driven
// configurations, and timing the 22 queries.
#ifndef ADICT_BENCH_TPCH_HARNESS_H_
#define ADICT_BENCH_TPCH_HARNESS_H_

#include <algorithm>
#include <string>
#include <vector>

#include "bench/survey_harness.h"
#include "core/compression_manager.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "util/stopwatch.h"

namespace adict {
namespace bench {

/// One string column with its traced workload and materialized dictionary.
struct TracedColumn {
  Table* table;
  size_t column_index;
  std::string name;
  std::vector<std::string> dict_values;
  ColumnUsage usage;
};

/// Runs the 22 queries once on `db`, then snapshots every string column's
/// usage as if the workload had run `multiplier` times (the paper uses 100
/// repetitions to make construction costs negligible).
inline std::vector<TracedColumn> TraceTpchWorkload(TpchDatabase* db,
                                                   int multiplier) {
  db->ResetUsage();
  Stopwatch watch;
  for (int q = 1; q <= kNumTpchQueries; ++q) {
    (void)RunTpchQuery(*db, q);
  }
  const double lifetime = watch.ElapsedSeconds() * multiplier;

  std::vector<TracedColumn> traced;
  for (Table* table : db->tables()) {
    for (size_t i = 0; i < table->string_columns().size(); ++i) {
      StringColumn& column = table->string_columns()[i];
      ColumnUsage usage = column.TracedUsage(lifetime);
      usage.num_extracts *= multiplier;
      usage.num_locates *= multiplier;
      traced.push_back({table, i, table->string_column_name(i),
                        column.MaterializeDictionary(), usage});
    }
  }
  return traced;
}

/// Per-column format selection for one value of the global parameter c.
inline std::vector<DictFormat> SelectConfiguration(
    const std::vector<TracedColumn>& traced, const CompressionManager& manager,
    double c) {
  std::vector<DictFormat> formats;
  formats.reserve(traced.size());
  for (const TracedColumn& column : traced) {
    const std::vector<Candidate> candidates =
        manager.Evaluate(column.dict_values, column.usage);
    formats.push_back(
        SelectFormat(candidates, c, manager.options().strategy));
  }
  return formats;
}

/// Rebuilds the traced columns' dictionaries in the given formats.
inline void ApplyConfiguration(const std::vector<TracedColumn>& traced,
                               const std::vector<DictFormat>& formats) {
  for (size_t i = 0; i < traced.size(); ++i) {
    traced[i].table->string_columns()[traced[i].column_index].ChangeFormat(
        formats[i]);
  }
}

/// Sum over the 22 queries of the median runtime of `reps` executions
/// (paper: sum of the medians of 100 executions), in seconds.
inline double MeasureWorkloadSeconds(const TpchDatabase& db, int reps) {
  double total = 0;
  std::vector<double> times(reps);
  for (int q = 1; q <= kNumTpchQueries; ++q) {
    for (int r = 0; r < reps; ++r) {
      Stopwatch watch;
      (void)RunTpchQuery(db, q);
      times[r] = watch.ElapsedSeconds();
    }
    std::sort(times.begin(), times.end());
    total += times[reps / 2];
  }
  return total;
}

}  // namespace bench
}  // namespace adict

#endif  // ADICT_BENCH_TPCH_HARNESS_H_
