// Ablation: equality locate via the dictionary's binary search vs the
// hash accelerator, across formats.
//
// Quantifies the survey's remark (paper §3.2) that hashing has very good
// locate performance: as a side index it makes equality probes nearly
// format-independent, at ~8-16 bytes per entry.
#include <cstdio>

#include "bench/survey_harness.h"
#include "dict/hash_index.h"
#include "util/stopwatch.h"

using namespace adict;

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  const uint64_t n = bench::EnvOr("ADICT_DATASET_N", 50000);
  const uint64_t probes = bench::EnvOr("ADICT_PROBES", 50000);
  const std::vector<std::string> sorted = GenerateSurveyDataset("mat", n);

  std::printf("Ablation: equality locate, %llu material numbers, %llu probes\n\n",
              static_cast<unsigned long long>(sorted.size()),
              static_cast<unsigned long long>(probes));
  std::printf("%-16s %14s %12s %16s\n", "variant", "locate[us]", "hash[us]",
              "index[KB]");
  for (DictFormat format :
       {DictFormat::kArray, DictFormat::kArrayFixed, DictFormat::kFcBlock,
        DictFormat::kFcBlockHu, DictFormat::kFcBlockRp12,
        DictFormat::kColumnBc}) {
    auto dict = BuildDictionary(format, sorted);
    const HashLocateIndex index(*dict);

    Rng rng(1);
    Stopwatch watch;
    uint64_t hits = 0;
    for (uint64_t i = 0; i < probes; ++i) {
      hits += dict->Locate(sorted[rng.Uniform(sorted.size())]).found;
    }
    const double locate_us = watch.ElapsedMicros() / probes;

    Rng rng2(1);
    watch.Restart();
    uint64_t hash_hits = 0;
    for (uint64_t i = 0; i < probes; ++i) {
      hash_hits +=
          index.Lookup(sorted[rng2.Uniform(sorted.size())]) !=
          HashLocateIndex::kNotFound;
    }
    const double hash_us = watch.ElapsedMicros() / probes;
    ADICT_CHECK(hits == probes && hash_hits == probes);

    std::printf("%-16s %14.3f %12.3f %16.1f\n",
                std::string(DictFormatName(format)).c_str(), locate_us, hash_us,
                static_cast<double>(index.MemoryBytes()) / 1024.0);
  }
  std::printf(
      "\nExpected shape: binary-search locate degrades with decode cost\n"
      "(hu, rp, column bc); the hash index holds equality probes near the\n"
      "cost of one extract regardless of format.\n");
  return 0;
}
