// Figure 5: extract runtime of the fastest dictionary implementation on
// each data set, compared with array and array fixed.
//
// Paper shape: the uncompressed variants array and array fixed share the
// fastest extract almost everywhere; array fixed is clearly better on the
// constant-length data sets and worse where one long string blows up the
// slot width.
#include <cstdio>

#include "bench/survey_harness.h"

using namespace adict;

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  const uint64_t n = bench::EnvOr("ADICT_DATASET_N", 15000);
  const uint64_t probes = bench::EnvOr("ADICT_PROBES", 20000);

  std::printf("Figure 5: extract runtime of the fastest variant per data set\n\n");
  std::printf("%-8s %12s %-16s %12s %14s\n", "dataset", "best[us]", "(variant)",
              "array[us]", "array_fixed[us]");
  for (std::string_view name : SurveyDatasetNames()) {
    const std::vector<std::string> sorted = GenerateSurveyDataset(name, n);
    double best = 1e18;
    DictFormat best_format = DictFormat::kArray;
    double array_us = 0, fixed_us = 0;
    for (DictFormat format : AllDictFormats()) {
      const bench::VariantMeasurement m =
          bench::MeasureVariant(format, sorted, probes);
      if (m.extract_us < best) {
        best = m.extract_us;
        best_format = format;
      }
      if (format == DictFormat::kArray) array_us = m.extract_us;
      if (format == DictFormat::kArrayFixed) fixed_us = m.extract_us;
    }
    std::printf("%-8s %12.3f %-16s %12.3f %14.3f\n",
                std::string(name).c_str(), best,
                std::string(DictFormatName(best_format)).c_str(), array_us,
                fixed_us);
  }
  std::printf(
      "\nExpected shape: array or array fixed is the fastest everywhere;\n"
      "their gap is small except on constant-length data (array fixed\n"
      "saves the pointer dereference) and on data with one very long\n"
      "string (padding hurts array fixed).\n");
  return 0;
}
