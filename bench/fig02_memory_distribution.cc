// Figure 2: distribution of the memory consumption of all dictionaries
// depending on their number of entries.
//
// Paper finding: the few largest dictionaries dominate memory — in ERP
// System 1, 87% of dictionary memory sits in dictionaries with more than
// 1e5 entries, which are only 0.1% of all dictionaries.
#include <cmath>
#include <cstdio>
#include <vector>

#include "datasets/generators.h"
#include "bench/survey_harness.h"

using namespace adict;

int main() {
  const size_t columns = bench::EnvOr("ADICT_SYSTEM_COLUMNS", 200000);
  std::printf("Figure 2: share of dictionary memory per size decade\n");
  std::printf("(uncompressed array dictionaries: data + 4-byte pointers)\n\n");
  std::printf("%-22s", "distinct values");
  for (int d = 0; d <= 7; ++d) std::printf("  10^%d    ", d);
  std::printf("  share>=1e5 (columns)\n");

  const struct {
    const char* name;
    SystemKind kind;
  } kSystems[] = {{"ERP System 1", SystemKind::kErp1},
                  {"ERP System 2", SystemKind::kErp2},
                  {"BW System", SystemKind::kBw}};
  for (const auto& system : kSystems) {
    const std::vector<ColumnProfile> population =
        GenerateSystemPopulation(system.kind, columns);
    std::vector<double> decade_memory(9, 0.0);
    double total = 0;
    double big_memory = 0;
    uint64_t big_columns = 0;
    for (const ColumnProfile& col : population) {
      const double memory =
          static_cast<double>(col.distinct_values) * (col.avg_string_length + 4);
      const int decade =
          static_cast<int>(std::log10(static_cast<double>(col.distinct_values)));
      decade_memory[std::min(decade, 8)] += memory;
      total += memory;
      if (col.distinct_values > 100000) {
        big_memory += memory;
        ++big_columns;
      }
    }
    std::printf("%-22s", system.name);
    for (int d = 0; d <= 7; ++d) {
      std::printf("  %6.2f%% ", 100.0 * decade_memory[d] / total);
    }
    std::printf("  %5.1f%% (%0.3f%% of columns)\n", 100.0 * big_memory / total,
                100.0 * static_cast<double>(big_columns) / columns);
  }
  std::printf(
      "\nExpected shape: memory share grows with the decade even though the\n"
      "column share shrinks; dictionaries with >1e5 entries hold the large\n"
      "majority of all dictionary memory.\n");
  return 0;
}
