// Closed-loop throughput of the network query server: N client threads,
// each with its own connection, issue requests back-to-back from a fixed
// 16-query pool against TPC-H tables, swept over clients {1, 2, 4, 8} and
// result cache {on, off}. The pool is smaller than the request count, so
// with the cache on most requests after warmup are digest hits — the sweep
// shows what the epoch-validated cache buys on a read-heavy workload and
// what the full execute path costs without it.
//
// Results are JSON rows ({bench, mode, clients, metric, value, unit,
// rss_bytes, git_sha}) written to BENCH_server.json. metric is one of
// p50_us | p95_us | p99_us | queries_per_sec | cache_hit_rate. Absolute
// numbers are machine-dependent; CI runs --quick, validates the schema,
// and uploads the artifact without gating on timings.
//
//   $ ./build/bench/server_throughput            # SF 0.1, full sweep
//   $ ./build/bench/server_throughput --quick    # CI smoke scale
//   $ ./build/bench/server_throughput --sf 0.5 --out /tmp/s.json
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.h"
#include "server/query_server.h"
#include "tpch/dbgen.h"
#include "util/net.h"
#include "util/stopwatch.h"

using namespace adict;

namespace {

struct Config {
  double scale_factor = 0.1;
  int requests_per_client = 400;
  std::vector<size_t> sweep = {1, 2, 4, 8};
  std::string out_path = "BENCH_server.json";
};

struct Row {
  std::string bench;  // server
  std::string mode;   // cache_on | cache_off
  size_t clients = 1;
  std::string metric;  // p50_us | p95_us | p99_us | queries_per_sec | cache_hit_rate
  double value = 0;
  std::string unit;  // us | qps | ratio
};

uint64_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t rss_kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %" SCNu64 " kB", &rss_kb) == 1) break;
  }
  std::fclose(f);
  return rss_kb * 1024;
}

std::string GitSha() {
  if (const char* env = std::getenv("GITHUB_SHA"); env != nullptr) return env;
  std::string sha;
  if (std::FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) sha = buf;
    pclose(pipe);
  }
  while (!sha.empty() && std::isspace(static_cast<unsigned char>(sha.back()))) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out->push_back('\\');
    out->push_back(ch);
  }
  out->push_back('"');
}

/// Flat JSON array, one object per row: the BENCH_server.json schema.
std::string RowsToJson(const std::vector<Row>& rows, uint64_t rss_bytes,
                       const std::string& git_sha) {
  std::string out = "[\n";
  char buf[64];
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out.append("  {\"bench\":");
    AppendJsonString(&out, row.bench);
    out.append(",\"mode\":");
    AppendJsonString(&out, row.mode);
    std::snprintf(buf, sizeof(buf), ",\"clients\":%zu", row.clients);
    out.append(buf);
    out.append(",\"metric\":");
    AppendJsonString(&out, row.metric);
    std::snprintf(buf, sizeof(buf), ",\"value\":%.6g", row.value);
    out.append(buf);
    out.append(",\"unit\":");
    AppendJsonString(&out, row.unit);
    std::snprintf(buf, sizeof(buf), ",\"rss_bytes\":%llu",
                  static_cast<unsigned long long>(rss_bytes));
    out.append(buf);
    out.append(",\"git_sha\":");
    AppendJsonString(&out, git_sha);
    out.push_back('}');
    if (i + 1 < rows.size()) out.push_back(',');
    out.push_back('\n');
  }
  out.append("]\n");
  return out;
}

/// Sixteen distinct requests over the TPC-H string columns: counts and
/// point lookups of varying selectivity. Distinct digests, so the cache
/// holds 16 entries after warmup.
std::vector<Request> QueryPool() {
  std::vector<Request> pool;
  auto count = [&pool](const std::string& table, const std::string& column,
                       PredicateOp op, const std::string& value,
                       const std::string& value2 = "") {
    Request r;
    r.kind = QueryKind::kCount;
    r.table = table;
    r.column = column;
    r.op = op;
    r.value = value;
    r.value2 = value2;
    pool.push_back(r);
  };
  count("lineitem", "L_RETURNFLAG", PredicateOp::kEq, "A");
  count("lineitem", "L_RETURNFLAG", PredicateOp::kEq, "N");
  count("lineitem", "L_RETURNFLAG", PredicateOp::kEq, "R");
  count("lineitem", "L_LINESTATUS", PredicateOp::kEq, "F");
  count("lineitem", "L_SHIPMODE", PredicateOp::kEq, "TRUCK");
  count("lineitem", "L_SHIPMODE", PredicateOp::kEq, "MAIL");
  count("lineitem", "L_SHIPINSTRUCT", PredicateOp::kPrefix, "DELIVER");
  count("lineitem", "L_COMMENT", PredicateOp::kContains, "final");
  count("orders", "O_ORDERPRIORITY", PredicateOp::kEq, "1-URGENT");
  count("orders", "O_ORDERPRIORITY", PredicateOp::kPrefix, "2");
  count("orders", "O_ORDERSTATUS", PredicateOp::kEq, "O");
  count("customer", "C_MKTSEGMENT", PredicateOp::kEq, "BUILDING");
  count("part", "P_BRAND", PredicateOp::kEq, "Brand#13");
  count("part", "P_CONTAINER", PredicateOp::kPrefix, "LG");
  count("supplier", "S_COMMENT", PredicateOp::kContains, "Customer");
  count("nation", "N_NAME", PredicateOp::kBetween, "E", "K");
  return pool;
}

/// Minimal blocking loopback client for the length-prefixed protocol.
class BenchClient {
 public:
  explicit BenchClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (fd_ >= 0 &&
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return fd_ >= 0; }

  /// Sends one request and reads one response; false on any error.
  bool Roundtrip(const Request& request) {
    const std::vector<uint8_t> frame = EncodeRequest(request);
    if (!SendAll(fd_, std::string_view(
                          reinterpret_cast<const char*>(frame.data()),
                          frame.size()))) {
      return false;
    }
    uint8_t prefix[sizeof(uint32_t)];
    if (!RecvAll(prefix, sizeof(prefix))) return false;
    uint32_t length = 0;
    std::memcpy(&length, prefix, sizeof(length));
    if (length > kMaxFrameBytes) return false;
    body_.resize(length);
    if (length > 0 && !RecvAll(body_.data(), body_.size())) return false;
    const StatusOr<Response> response = DecodeResponseBody(body_);
    return response.ok() && response->status == StatusCode::kOk;
  }

 private:
  bool RecvAll(void* buf, size_t size) {
    size_t got = 0;
    while (got < size) {
      const ssize_t n =
          ::recv(fd_, static_cast<char*>(buf) + got, size - got, 0);
      if (n <= 0) return false;
      got += static_cast<size_t>(n);
    }
    return true;
  }

  int fd_ = -1;
  std::vector<uint8_t> body_;
};

double Percentile(std::vector<double>* sorted_us, double p) {
  if (sorted_us->empty()) return 0;
  const size_t index = std::min(
      sorted_us->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_us->size() - 1)));
  return (*sorted_us)[index];
}

/// One sweep cell: a fresh server (fresh cache), `clients` closed-loop
/// connections, every latency recorded.
void RunCell(const TpchDatabase& db, const Config& config, bool cache_on,
             size_t clients, std::vector<Row>* rows) {
  QueryServer::Options options;
  options.max_inflight = 64;
  options.max_connections = 64;
  options.cache_bytes = cache_on ? (8u << 20) : 0;
  QueryServer server(options);
  server.ServeTpch(&db);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server failed to start\n");
    std::exit(1);
  }

  const std::vector<Request> pool = QueryPool();
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> workers;
  workers.reserve(clients);
  Stopwatch watch;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      BenchClient client(server.port());
      if (!client.connected()) return;
      std::vector<double>& out = latencies[c];
      out.reserve(static_cast<size_t>(config.requests_per_client));
      for (int i = 0; i < config.requests_per_client; ++i) {
        Request request = pool[(c + static_cast<size_t>(i)) % pool.size()];
        request.request_id = c * 1000000 + static_cast<uint64_t>(i);
        Stopwatch request_watch;
        if (!client.Roundtrip(request)) return;
        out.push_back(request_watch.ElapsedSeconds() * 1e6);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double seconds = watch.ElapsedSeconds();

  std::vector<double> all_us;
  for (const std::vector<double>& per_client : latencies) {
    all_us.insert(all_us.end(), per_client.begin(), per_client.end());
  }
  std::sort(all_us.begin(), all_us.end());
  const double qps = static_cast<double>(all_us.size()) / seconds;
  const ResultCache::Stats cache_stats = server.cache().stats();
  const uint64_t lookups = cache_stats.hits + cache_stats.misses;
  const double hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(cache_stats.hits) /
                         static_cast<double>(lookups);
  server.Stop();

  const std::string mode = cache_on ? "cache_on" : "cache_off";
  rows->push_back({"server", mode, clients, "p50_us",
                   Percentile(&all_us, 0.50), "us"});
  rows->push_back({"server", mode, clients, "p95_us",
                   Percentile(&all_us, 0.95), "us"});
  rows->push_back({"server", mode, clients, "p99_us",
                   Percentile(&all_us, 0.99), "us"});
  rows->push_back({"server", mode, clients, "queries_per_sec", qps, "qps"});
  rows->push_back(
      {"server", mode, clients, "cache_hit_rate", hit_rate, "ratio"});
  std::fprintf(stderr,
               "%s clients=%zu  p50 %.0f us  p99 %.0f us  %.0f qps  "
               "hit rate %.2f\n",
               mode.c_str(), clients, Percentile(&all_us, 0.50),
               Percentile(&all_us, 0.99), qps, hit_rate);
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      config.scale_factor = 0.01;
      config.requests_per_client = 60;
      config.sweep = {1, 2};
    } else if (arg == "--sf" && i + 1 < argc) {
      config.scale_factor = std::strtod(argv[++i], nullptr);
    } else if (arg == "--requests" && i + 1 < argc) {
      config.requests_per_client = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      config.out_path = argv[++i];
    } else {
      std::fprintf(
          stderr, "usage: %s [--quick] [--sf N] [--requests N] [--out PATH]\n",
          argv[0]);
      return 2;
    }
  }

  TpchOptions options;
  options.scale_factor = config.scale_factor;
  std::fprintf(stderr, "generating TPC-H at SF %.3g...\n",
               config.scale_factor);
  const TpchDatabase db = GenerateTpch(options);

  std::vector<Row> rows;
  for (const bool cache_on : {true, false}) {
    for (const size_t clients : config.sweep) {
      RunCell(db, config, cache_on, clients, &rows);
    }
  }

  const std::string json = RowsToJson(rows, CurrentRssBytes(), GitSha());
  std::FILE* out = std::fopen(config.out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::fprintf(stderr, "wrote %zu rows to %s\n", rows.size(),
               config.out_path.c_str());
  return 0;
}
