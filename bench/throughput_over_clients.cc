// Throughput scaling of the morsel-parallel TPC-H engine, along two axes:
//
//   scale_threads — one client, pool parallelism swept over 1, 2, 4, 8
//     (SetPoolParallelism between quiescent phases). Measures how far a
//     single query's morsels spread over cores: Q1/Q6 latency and the
//     combined queries/sec at each width.
//   scale_clients — pool fixed at the ADICT_THREADS default, concurrent
//     client threads swept over 1, 2, 4, 8, each running the Q1+Q6 loop
//     against the same tables. Measures aggregate throughput when many
//     queries contend for the same lanes (and the same columns — reads are
//     snapshot-safe, see docs/parallelism.md).
//
// Results are JSON rows ({bench, mode, threads, clients, metric, value,
// unit, rss_bytes, git_sha}) written to BENCH_threads.json — the threads
// sibling of BENCH_core.json. Absolute numbers are machine-dependent; CI
// runs --quick, validates the schema, and uploads the artifact without
// gating on timings (a 2-core runner cannot show an 8-way speedup).
//
//   $ ./build/bench/throughput_over_clients            # SF 0.1, full sweep
//   $ ./build/bench/throughput_over_clients --quick    # CI smoke scale
//   $ ./build/bench/throughput_over_clients --sf 0.5 --out /tmp/t.json
#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace adict;

namespace {

struct Config {
  double scale_factor = 0.1;
  int reps = 20;  // Q1+Q6 pairs per measurement
  std::vector<size_t> sweep = {1, 2, 4, 8};
  std::string out_path = "BENCH_threads.json";
};

struct Row {
  std::string bench;   // tpch_q1 | tpch_q6 | tpch_q1q6
  std::string mode;    // scale_threads | scale_clients
  size_t threads = 1;  // pool parallelism (workers + caller)
  size_t clients = 1;  // concurrent query threads
  std::string metric;  // mean_ms | queries_per_sec
  double value = 0;
  std::string unit;  // ms | qps
};

uint64_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t rss_kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %" SCNu64 " kB", &rss_kb) == 1) break;
  }
  std::fclose(f);
  return rss_kb * 1024;
}

std::string GitSha() {
  if (const char* env = std::getenv("GITHUB_SHA"); env != nullptr) return env;
  std::string sha;
  if (std::FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) sha = buf;
    pclose(pipe);
  }
  while (!sha.empty() && std::isspace(static_cast<unsigned char>(sha.back()))) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out->push_back('\\');
    out->push_back(ch);
  }
  out->push_back('"');
}

/// Flat JSON array, one object per row: the BENCH_threads.json schema.
std::string RowsToJson(const std::vector<Row>& rows, uint64_t rss_bytes,
                       const std::string& git_sha) {
  std::string out = "[\n";
  char buf[64];
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out.append("  {\"bench\":");
    AppendJsonString(&out, row.bench);
    out.append(",\"mode\":");
    AppendJsonString(&out, row.mode);
    std::snprintf(buf, sizeof(buf), ",\"threads\":%zu", row.threads);
    out.append(buf);
    std::snprintf(buf, sizeof(buf), ",\"clients\":%zu", row.clients);
    out.append(buf);
    out.append(",\"metric\":");
    AppendJsonString(&out, row.metric);
    std::snprintf(buf, sizeof(buf), ",\"value\":%.6g", row.value);
    out.append(buf);
    out.append(",\"unit\":");
    AppendJsonString(&out, row.unit);
    std::snprintf(buf, sizeof(buf), ",\"rss_bytes\":%llu",
                  static_cast<unsigned long long>(rss_bytes));
    out.append(buf);
    out.append(",\"git_sha\":");
    AppendJsonString(&out, git_sha);
    out.push_back('}');
    if (i + 1 < rows.size()) out.push_back(',');
    out.push_back('\n');
  }
  out.append("]\n");
  return out;
}

/// Mean latency in ms of `reps` runs of query `q`.
double MeanQueryMs(const TpchDatabase& db, int q, int reps) {
  Stopwatch watch;
  for (int r = 0; r < reps; ++r) (void)RunTpchQuery(db, q);
  return watch.ElapsedSeconds() * 1e3 / reps;
}

/// One-client sweep over pool parallelism. The pool resize happens while no
/// query is running (quiescence contract of SetPoolParallelism).
void RunThreadSweep(const TpchDatabase& db, const Config& config,
                    std::vector<Row>* rows) {
  for (size_t threads : config.sweep) {
    SetPoolParallelism(threads);
    (void)RunTpchQuery(db, 1);  // warm caches before timing
    (void)RunTpchQuery(db, 6);
    const double q1_ms = MeanQueryMs(db, 1, config.reps);
    const double q6_ms = MeanQueryMs(db, 6, config.reps);
    const double pair_qps = 2e3 / (q1_ms + q6_ms);
    rows->push_back(
        {"tpch_q1", "scale_threads", threads, 1, "mean_ms", q1_ms, "ms"});
    rows->push_back(
        {"tpch_q6", "scale_threads", threads, 1, "mean_ms", q6_ms, "ms"});
    rows->push_back({"tpch_q1q6", "scale_threads", threads, 1,
                     "queries_per_sec", pair_qps, "qps"});
    std::fprintf(stderr,
                 "threads=%zu  q1 %.2f ms  q6 %.2f ms  %.1f queries/s\n",
                 threads, q1_ms, q6_ms, pair_qps);
  }
}

/// Concurrent-client sweep at a fixed pool width: every client runs the
/// full Q1+Q6 loop, all clients share the pool and the columns.
void RunClientSweep(const TpchDatabase& db, const Config& config,
                    std::vector<Row>* rows) {
  SetPoolParallelism(DefaultPoolParallelism());
  const size_t pool_threads = PoolParallelism();
  for (size_t clients : config.sweep) {
    Stopwatch watch;
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&db, &config] {
        for (int r = 0; r < config.reps; ++r) {
          (void)RunTpchQuery(db, 1);
          (void)RunTpchQuery(db, 6);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double seconds = watch.ElapsedSeconds();
    const double qps = 2.0 * config.reps * clients / seconds;
    rows->push_back({"tpch_q1q6", "scale_clients", pool_threads, clients,
                     "queries_per_sec", qps, "qps"});
    std::fprintf(stderr, "clients=%zu (pool %zu)  %.1f queries/s\n", clients,
                 pool_threads, qps);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      config.scale_factor = 0.01;
      config.reps = 3;
      config.sweep = {1, 2};
    } else if (arg == "--sf" && i + 1 < argc) {
      config.scale_factor = std::strtod(argv[++i], nullptr);
    } else if (arg == "--reps" && i + 1 < argc) {
      config.reps = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      config.out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--sf N] [--reps N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  TpchOptions options;
  options.scale_factor = config.scale_factor;
  std::fprintf(stderr, "generating TPC-H at SF %.3g...\n",
               config.scale_factor);
  const TpchDatabase db = GenerateTpch(options);

  std::vector<Row> rows;
  RunThreadSweep(db, config, &rows);
  RunClientSweep(db, config, &rows);

  const std::string json = RowsToJson(rows, CurrentRssBytes(), GitSha());
  std::FILE* out = std::fopen(config.out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::fprintf(stderr, "wrote %zu rows to %s\n", rows.size(),
               config.out_path.c_str());
  return 0;
}
