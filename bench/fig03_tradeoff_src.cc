// Figure 3: trade-off between compression rate and extract runtime for all
// 18 dictionary variants on the src data set.
//
// Paper shape: most variants lie near a pareto curve from fast-but-big
// (array, array fixed) over balanced (ng/bc/hu, front coding) to
// small-but-slow (rp 12/16); array fixed and column bc are far off the
// curve on this variable-length data (about 2x and 3.5x the raw data).
#include <cstdio>

#include "bench/survey_harness.h"

using namespace adict;

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  const uint64_t n = bench::EnvOr("ADICT_DATASET_N", 50000);
  const uint64_t probes = bench::EnvOr("ADICT_PROBES", 30000);
  const std::vector<std::string> sorted = GenerateSurveyDataset("src", n);
  const uint64_t raw = RawDataBytes(sorted);

  std::printf("Figure 3: compression rate vs extract runtime, src data set\n");
  std::printf("(%llu strings, %.1f MB raw, %llu random extracts per variant)\n\n",
              static_cast<unsigned long long>(sorted.size()),
              static_cast<double>(raw) / 1e6,
              static_cast<unsigned long long>(probes));
  std::printf("%-16s %12s %10s %12s %12s %12s\n", "variant", "memory[KB]",
              "compr", "extract[us]", "locate[us]", "constr[us]");
  for (DictFormat format : AllDictFormats()) {
    const bench::VariantMeasurement m =
        bench::MeasureVariant(format, sorted, probes);
    std::printf("%-16s %12.1f %10.3f %12.3f %12.3f %12.3f\n",
                std::string(DictFormatName(format)).c_str(),
                static_cast<double>(m.memory_bytes) / 1024.0,
                m.compression_rate, m.extract_us, m.locate_us, m.construct_us);
  }
  std::printf(
      "\nExpected shape: array/array fixed fastest; ng/bc faster than hu\n"
      "(fixed-width codes); rp 12/16 smallest but slowest; front coding\n"
      "variants smaller and slower than their array equivalents; array fixed\n"
      "and column bc larger than the raw data on this data set.\n");
  return 0;
}
