// Ablation: closed-loop behaviour of the trade-off controller (paper §5.3,
// Figure 8) in a simulated memory environment.
//
// The store's footprint reacts to c with a lag of one merge cycle; an
// external load follows a step profile. The controller must pull the free
// memory back toward the target without oscillating out of bounds.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/survey_harness.h"
#include "core/controller.h"

using namespace adict;

namespace {

/// Simulated store: dictionary footprint shrinks/grows monotonically with c
/// (calibrated endpoints from Figure 10: ~0.64x .. ~1.73x of the balanced
/// configuration).
double StoreFootprint(double c, double balanced_bytes) {
  const double lo = 0.64, hi = 1.73;
  // Logistic response over log10(c) in [-3, 1].
  const double x = std::clamp((std::log10(c) + 1.0), -2.0, 2.0);
  const double w = 1.0 / (1.0 + std::exp(-2.0 * x));
  return balanced_bytes * (lo + (hi - lo) * w);
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  const double total = 64e6;          // memory budget
  const double balanced = 24e6;       // store at fc-inline-like footprint

  TradeoffController::Options options;
  options.target_free_fraction = 0.25;
  // Demo pacing: a larger step per adjustment shortens the transient after
  // the load step (production would trade reaction time for smoothness).
  options.adjust_factor = 2.0;
  TradeoffController controller(options);

  std::printf("Ablation: feedback loop on a simulated step load\n");
  std::printf("(budget %.0f MB, store %.0f MB balanced, target %.0f%% free)\n\n",
              total / 1e6, balanced / 1e6, options.target_free_fraction * 100);
  std::printf("%5s %10s %10s %12s %10s\n", "tick", "load[MB]", "c",
              "store[MB]", "free[%]");

  double store = StoreFootprint(controller.c(), balanced);
  int violations = 0;
  for (int tick = 0; tick < 60; ++tick) {
    // Step profile: calm, heavy external load, calm again.
    const double load = (tick < 15) ? 8e6 : (tick < 40) ? 36e6 : 8e6;
    const double free_bytes = total - load - store;
    const double c = controller.Observe(free_bytes, total);
    // The store adapts at the next merge cycle (one-tick lag).
    store = StoreFootprint(c, balanced);
    if (free_bytes < 0) ++violations;
    if (tick % 4 == 0 || tick == 15 || tick == 40) {
      std::printf("%5d %10.1f %10.4f %12.1f %10.1f\n", tick, load / 1e6, c,
                  store / 1e6, 100.0 * free_bytes / total);
    }
  }
  std::printf("\ntransient over-commit ticks after the load step: %d\n",
              violations);
  std::printf(
      "\nExpected shape: under the load step, c decays and the store\n"
      "compresses down near its floor; when the load recedes, c recovers\n"
      "and the store trades the head-room back for speed, settling inside\n"
      "the dead band without oscillation. The over-commit window is the\n"
      "controller's reaction lag (one adjustment per merge cycle) and is\n"
      "bounded by the adjust factor.\n");
  return 0;
}
