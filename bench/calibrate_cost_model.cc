// Runtime-constant calibration (paper §4.1): measures the per-method cost
// constants of every dictionary format as the average over the survey data
// sets, i.e. the microbenchmarks the paper runs at installation time.
//
// The output can be pasted into CostModel::Default() for this machine.
#include <cstdio>

#include "bench/survey_harness.h"
#include "core/cost_model.h"

using namespace adict;

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  CalibrationOptions options;
  options.strings_per_dataset = bench::EnvOr("ADICT_CALIB_N", 6000);
  options.probes = bench::EnvOr("ADICT_CALIB_PROBES", 6000);

  std::printf("Cost-model calibration (%llu strings/data set, %llu probes)\n\n",
              static_cast<unsigned long long>(options.strings_per_dataset),
              static_cast<unsigned long long>(options.probes));
  const CostModel model = CalibrateCostModel(options);
  std::printf("%-16s %12s %12s %14s\n", "variant", "extract[us]", "locate[us]",
              "construct[us]");
  for (DictFormat format : AllDictFormats()) {
    const MethodCosts& costs = model.costs(format);
    std::printf("%-16s %12.3f %12.3f %14.3f\n",
                std::string(DictFormatName(format)).c_str(), costs.extract_us,
                costs.locate_us, costs.construct_us);
  }
  std::printf(
      "\nExpected shape: uncompressed array variants fastest; fixed-width\n"
      "codes (bc, ng) faster than variable-width (hu); rp slowest to build\n"
      "and decode; front coding adds a block-local scan to every access.\n");
  return 0;
}
