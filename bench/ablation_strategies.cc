// Ablation: the three dividing-line strategies of §5.4 (const, rel, tilt)
// compared on the TPC-H column population.
//
// The paper motivates rel and tilt by a shortcoming of const (the admitted
// set ignores how hot a column is) and evaluates tilt; this ablation makes
// the difference measurable. For each strategy and c, the per-column
// selections are aggregated with the prediction models: total predicted
// dictionary memory and total predicted time spent in dictionaries per
// lifetime. Model-based (no query re-execution), so it runs in seconds.
#include <cstdio>
#include <vector>

#include "bench/tpch_harness.h"

using namespace adict;

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  const double sf = bench::EnvOrDouble("ADICT_TPCH_SF", 0.02);
  TpchOptions options;
  options.scale_factor = sf;
  TpchDatabase db = GenerateTpch(options);
  const std::vector<bench::TracedColumn> traced =
      bench::TraceTpchWorkload(&db, /*multiplier=*/100);

  // Evaluate candidates once per column; selection is then instant.
  const CompressionManager manager;
  std::vector<std::vector<Candidate>> candidates;
  candidates.reserve(traced.size());
  for (const bench::TracedColumn& column : traced) {
    candidates.push_back(manager.Evaluate(column.dict_values, column.usage));
  }

  std::printf("Ablation: selection strategies on %zu TPC-H string columns\n",
              traced.size());
  std::printf("(predicted dictionary memory [MB] / predicted dictionary time\n"
              " per lifetime [s], lower-left is better)\n\n");
  std::printf("%8s | %10s %10s | %10s %10s | %10s %10s\n", "c", "const[MB]",
              "time[s]", "rel[MB]", "time[s]", "tilt[MB]", "time[s]");
  for (double c : {0.001, 0.01, 0.1, 0.3, 1.0, 3.0, 10.0}) {
    std::printf("%8g |", c);
    for (TradeoffStrategy strategy :
         {TradeoffStrategy::kConst, TradeoffStrategy::kRel,
          TradeoffStrategy::kTilt}) {
      double memory = 0, time = 0;
      for (size_t i = 0; i < traced.size(); ++i) {
        const DictFormat pick = SelectFormat(candidates[i], c, strategy);
        for (const Candidate& cand : candidates[i]) {
          if (cand.format != pick) continue;
          // size_bytes includes the column vector; subtract it to report
          // the dictionary alone.
          memory += cand.size_bytes - static_cast<double>(
                                          traced[i].usage.column_vector_bytes);
          time += cand.rel_time * traced[i].usage.lifetime_seconds;
        }
      }
      std::printf(" %10.2f %10.2f |", memory / 1e6, time);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: at equal c, tilt trades a little memory for a\n"
      "disproportionate time win on the hot columns (const cannot, since\n"
      "its admitted set ignores access frequency); all three converge at\n"
      "the extremes of c.\n");
  return 0;
}
