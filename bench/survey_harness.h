// Shared helpers for the survey benchmarks (Figures 3-5): building every
// dictionary variant over a data set and measuring compression rate and
// extract runtime the way the paper does.
#ifndef ADICT_BENCH_SURVEY_HARNESS_H_
#define ADICT_BENCH_SURVEY_HARNESS_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "datasets/generators.h"
#include "dict/dictionary.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace adict {
namespace bench {

/// Reads a positive environment override, else returns the default.
inline uint64_t EnvOr(const char* name, uint64_t def) {
  const char* value = std::getenv(name);
  if (value == nullptr) return def;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<uint64_t>(parsed) : def;
}

inline double EnvOrDouble(const char* name, double def) {
  const char* value = std::getenv(name);
  if (value == nullptr) return def;
  const double parsed = std::atof(value);
  return parsed > 0 ? parsed : def;
}

struct VariantMeasurement {
  DictFormat format;
  size_t memory_bytes;
  double compression_rate;  // raw bytes / memory (paper Definition 2)
  double extract_us;        // average random extract
  double locate_us;         // average random locate (hit)
  double construct_us;      // per string
};

/// Builds `format` over `sorted` and measures it.
inline VariantMeasurement MeasureVariant(DictFormat format,
                                         const std::vector<std::string>& sorted,
                                         uint64_t probes, uint64_t seed = 7) {
  Stopwatch watch;
  const std::unique_ptr<Dictionary> dict = BuildDictionary(format, sorted);
  const double construct_us = watch.ElapsedMicros() / sorted.size();

  const uint64_t raw = RawDataBytes(sorted);
  Rng rng(seed);
  std::string scratch;
  watch.Restart();
  for (uint64_t i = 0; i < probes; ++i) {
    scratch.clear();
    dict->ExtractInto(static_cast<uint32_t>(rng.Uniform(dict->size())),
                      &scratch);
  }
  const double extract_us = watch.ElapsedMicros() / probes;

  const uint64_t locate_probes = probes / 4 + 1;
  watch.Restart();
  for (uint64_t i = 0; i < locate_probes; ++i) {
    dict->Locate(sorted[rng.Uniform(sorted.size())]);
  }
  const double locate_us = watch.ElapsedMicros() / locate_probes;

  return {format,
          dict->MemoryBytes(),
          static_cast<double>(raw) / static_cast<double>(dict->MemoryBytes()),
          extract_us,
          locate_us,
          construct_us};
}

/// Measures all 18 variants over a data set.
inline std::vector<VariantMeasurement> MeasureAllVariants(
    const std::vector<std::string>& sorted, uint64_t probes) {
  std::vector<VariantMeasurement> all;
  for (DictFormat format : AllDictFormats()) {
    all.push_back(MeasureVariant(format, sorted, probes));
  }
  return all;
}

}  // namespace bench
}  // namespace adict

#endif  // ADICT_BENCH_SURVEY_HARNESS_H_
