// Machine-readable perf-regression harness: the repo's continuous record of
// the *time* axis of the paper's (size, time) trade-off.
//
// Times the five hot operations — extract, locate, scan, build, merge —
// across all 18 dictionary formats on a fixed, seeded dataset, extracts
// p50/p95/p99 from obs::Histogram via Histogram::Quantile, and writes the
// results as JSON rows ({bench, format, metric, value, unit, rss_bytes,
// git_sha}) to BENCH_core.json. A later run can compare itself against a
// committed baseline and exit non-zero on regression:
//
//   $ ./build/bench/perf_regression                         # measure + write
//   $ ./build/bench/perf_regression --quick                 # CI smoke scale
//   $ ./build/bench/perf_regression --baseline BENCH_core.json --tolerance 0.15
//   $ ./build/bench/perf_regression --selftest              # compare-mode check
//
// The baseline is read and parsed up front, before any measurement and
// before the fresh results are written to --out. Pointing --baseline at the
// same file as --out (the rolling-baseline workflow above) therefore
// compares the current run against the committed values and only then
// advances the file.
//
// Absolute timings are machine-dependent; the JSON is the interchange format
// and the tolerance check is meant for same-machine comparisons (CI uploads
// the artifact but does not gate on timings).
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "datasets/generators.h"
#include "dict/dictionary.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "store/delta.h"
#include "store/string_column.h"
#include "util/rng.h"

using namespace adict;

namespace {

// ---------------------------------------------------------------------------
// Measurement scaffolding
// ---------------------------------------------------------------------------

struct Config {
  size_t num_strings = 10000;
  size_t extract_ops = 20000;
  size_t locate_ops = 5000;
  int scan_reps = 3;
  int build_reps = 2;
  size_t delta_rows = 500;
  std::string out_path = "BENCH_core.json";
  std::string baseline_path;
  double tolerance = 0.15;
  bool selftest = false;
};

struct Row {
  std::string bench;   // extract | locate | scan | build | merge
  std::string format;  // paper-style name, e.g. "fc block rp 12"
  std::string metric;  // p50_ns, p95_ns, p99_ns, total_us, ns_per_entry
  double value = 0;
  std::string unit;  // ns | us
};

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// 1-2-5 ladder from 10 ns to 1 s: per-operation latencies of every format
/// class land well inside it.
std::span<const double> NanosecondBuckets() {
  static const std::vector<double>* bounds = [] {
    auto* b = new std::vector<double>();
    for (double decade = 10; decade < 1e9; decade *= 10) {
      b->push_back(decade);
      b->push_back(2 * decade);
      b->push_back(5 * decade);
    }
    b->push_back(1e9);
    return b;
  }();
  return *bounds;
}

double MedianUs(std::vector<double> samples_us) {
  std::sort(samples_us.begin(), samples_us.end());
  return samples_us.empty() ? 0 : samples_us[samples_us.size() / 2];
}

void PushQuantiles(std::vector<Row>* rows, const std::string& bench,
                   const std::string& format, const obs::Histogram& hist) {
  rows->push_back({bench, format, "p50_ns", hist.Quantile(0.50), "ns"});
  rows->push_back({bench, format, "p95_ns", hist.Quantile(0.95), "ns"});
  rows->push_back({bench, format, "p99_ns", hist.Quantile(0.99), "ns"});
}

std::vector<Row> RunBenchmarks(const Config& config) {
  // Seeded generator + seeded op sequences: two runs of the same binary
  // measure exactly the same work.
  const std::vector<std::string> dataset =
      GenerateSurveyDataset("src", config.num_strings, /*seed=*/42);

  // Row IDs of the merge-bench main column, reused across formats.
  Rng id_rng(7);
  std::vector<uint32_t> main_ids(config.num_strings);
  for (uint32_t& id : main_ids) {
    id = static_cast<uint32_t>(id_rng.Uniform(dataset.size()));
  }

  std::vector<Row> rows;
  for (DictFormat format : AllDictFormats()) {
    const std::string name(DictFormatName(format));

    // build: full construction, median over a few reps.
    std::vector<double> build_us;
    std::unique_ptr<Dictionary> dict;
    for (int rep = 0; rep < config.build_reps; ++rep) {
      const uint64_t t0 = NowNs();
      dict = BuildDictionary(format, dataset);
      build_us.push_back(static_cast<double>(NowNs() - t0) / 1e3);
    }
    rows.push_back({"build", name, "total_us", MedianUs(build_us), "us"});

    // extract: random single-tuple access, per-op latency distribution.
    {
      obs::Histogram hist(NanosecondBuckets());
      Rng rng(1);
      std::string scratch;
      for (size_t i = 0; i < config.extract_ops; ++i) {
        const uint32_t id = static_cast<uint32_t>(rng.Uniform(dict->size()));
        scratch.clear();
        const uint64_t t0 = NowNs();
        dict->ExtractInto(id, &scratch);
        hist.Observe(static_cast<double>(NowNs() - t0));
      }
      PushQuantiles(&rows, "extract", name, hist);
    }

    // locate: lookups of existing strings.
    {
      obs::Histogram hist(NanosecondBuckets());
      Rng rng(2);
      for (size_t i = 0; i < config.locate_ops; ++i) {
        const std::string& probe = dataset[rng.Uniform(dataset.size())];
        const uint64_t t0 = NowNs();
        const LocateResult result = dict->Locate(probe);
        hist.Observe(static_cast<double>(NowNs() - t0));
        if (!result.found) std::abort();  // would invalidate the measurement
      }
      PushQuantiles(&rows, "locate", name, hist);
    }

    // scan: sequential decode of the whole dictionary, ns per entry.
    {
      std::vector<double> per_entry_ns;
      for (int rep = 0; rep < config.scan_reps; ++rep) {
        uint64_t checksum = 0;
        const uint64_t t0 = NowNs();
        dict->Scan(0, dict->size(),
                   [&checksum](uint32_t, std::string_view s) {
                     checksum += s.size();
                   });
        per_entry_ns.push_back(static_cast<double>(NowNs() - t0) /
                               static_cast<double>(dict->size()));
        if (checksum == 0) std::abort();
      }
      rows.push_back({"scan", name, "ns_per_entry", MedianUs(per_entry_ns),
                      "ns"});
    }

    // merge: delta merge into a main column of this format, including the
    // dictionary rebuild (the paper's re-decision moment).
    {
      DomainEncoded encoded;
      encoded.dictionary = dataset;
      encoded.ids = main_ids;
      StringColumn main = StringColumn::FromEncoded(encoded, format);
      DeltaColumn delta;
      Rng rng(3);
      for (size_t i = 0; i < config.delta_rows; ++i) {
        delta.Append("zz-merge-" + std::to_string(rng.Uniform(1000)));
      }
      const uint64_t t0 = NowNs();
      StringColumn merged = MergeDelta(main, delta, format);
      const double us = static_cast<double>(NowNs() - t0) / 1e3;
      if (merged.num_rows() != main.num_rows() + delta.num_rows()) {
        std::abort();
      }
      rows.push_back({"merge", name, "total_us", us, "us"});
    }

    std::fprintf(stderr, "measured %-14s build %8.0f us\n", name.c_str(),
                 build_us.empty() ? 0 : build_us.back());
  }
  return rows;
}

// ---------------------------------------------------------------------------
// JSON output
// ---------------------------------------------------------------------------

uint64_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t rss_kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %" SCNu64 " kB", &rss_kb) == 1) break;
  }
  std::fclose(f);
  return rss_kb * 1024;
}

std::string GitSha() {
  if (const char* env = std::getenv("GITHUB_SHA"); env != nullptr) return env;
  std::string sha;
  if (std::FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) sha = buf;
    pclose(pipe);
  }
  while (!sha.empty() && std::isspace(static_cast<unsigned char>(sha.back()))) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out->push_back('\\');
    out->push_back(ch);
  }
  out->push_back('"');
}

/// Flat JSON array, one object per row: the BENCH_core.json schema.
std::string RowsToJson(const std::vector<Row>& rows, uint64_t rss_bytes,
                       const std::string& git_sha) {
  std::string out = "[\n";
  char buf[64];
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out.append("  {\"bench\":");
    AppendJsonString(&out, row.bench);
    out.append(",\"format\":");
    AppendJsonString(&out, row.format);
    out.append(",\"metric\":");
    AppendJsonString(&out, row.metric);
    std::snprintf(buf, sizeof(buf), ",\"value\":%.6g", row.value);
    out.append(buf);
    out.append(",\"unit\":");
    AppendJsonString(&out, row.unit);
    std::snprintf(buf, sizeof(buf), ",\"rss_bytes\":%llu",
                  static_cast<unsigned long long>(rss_bytes));
    out.append(buf);
    out.append(",\"git_sha\":");
    AppendJsonString(&out, git_sha);
    out.push_back('}');
    if (i + 1 < rows.size()) out.push_back(',');
    out.push_back('\n');
  }
  out.append("]\n");
  return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for the baseline (exactly the subset RowsToJson emits:
// an array of flat objects with string and number values).
// ---------------------------------------------------------------------------

struct JsonCursor {
  const char* p;
  const char* end;
  bool ok = true;

  void SkipSpace() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
  bool Consume(char ch) {
    SkipSpace();
    if (p < end && *p == ch) {
      ++p;
      return true;
    }
    ok = false;
    return false;
  }
  bool ParseString(std::string* out) {
    SkipSpace();
    if (p >= end || *p != '"') {
      ok = false;
      return false;
    }
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\' && p + 1 < end) ++p;
      out->push_back(*p++);
    }
    if (p >= end) {
      ok = false;
      return false;
    }
    ++p;  // closing quote
    return true;
  }
  bool ParseNumber(double* out) {
    SkipSpace();
    char* after = nullptr;
    *out = std::strtod(p, &after);
    if (after == p || after > end) {
      ok = false;
      return false;
    }
    p = after;
    return true;
  }
};

/// Parses RowsToJson output. Returns false on any structural mismatch.
bool ParseRows(const std::string& json, std::vector<Row>* rows) {
  rows->clear();
  JsonCursor cursor{json.data(), json.data() + json.size()};
  if (!cursor.Consume('[')) return false;
  cursor.SkipSpace();
  if (cursor.p < cursor.end && *cursor.p == ']') {
    ++cursor.p;
    return true;
  }
  while (cursor.ok) {
    if (!cursor.Consume('{')) return false;
    Row row;
    while (cursor.ok) {
      std::string key;
      if (!cursor.ParseString(&key) || !cursor.Consume(':')) return false;
      if (key == "value" || key == "rss_bytes") {
        double value = 0;
        if (!cursor.ParseNumber(&value)) return false;
        if (key == "value") row.value = value;
      } else {
        std::string value;
        if (!cursor.ParseString(&value)) return false;
        if (key == "bench") row.bench = value;
        if (key == "format") row.format = value;
        if (key == "metric") row.metric = value;
        if (key == "unit") row.unit = value;
      }
      cursor.SkipSpace();
      if (cursor.p < cursor.end && *cursor.p == ',') {
        ++cursor.p;
        continue;
      }
      break;
    }
    if (!cursor.Consume('}')) return false;
    if (row.bench.empty() || row.format.empty() || row.metric.empty()) {
      return false;
    }
    rows->push_back(std::move(row));
    cursor.SkipSpace();
    if (cursor.p < cursor.end && *cursor.p == ',') {
      ++cursor.p;
      continue;
    }
    break;
  }
  return cursor.Consume(']') && cursor.ok;
}

bool WriteStringToFile(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return true;
}

/// Reads and parses a BENCH_core.json file; the --baseline loader. Returns
/// false (with a diagnostic) if the file is unreadable or malformed.
bool LoadRowsFile(const std::string& path, std::vector<Row>* rows) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    return false;
  }
  std::string json;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) json.append(buf, n);
  std::fclose(f);
  if (!ParseRows(json, rows)) {
    std::fprintf(stderr, "malformed baseline %s\n", path.c_str());
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Baseline comparison
// ---------------------------------------------------------------------------

std::string RowKey(const Row& row) {
  return row.bench + "|" + row.format + "|" + row.metric;
}

/// Returns the number of regressions: current value above baseline by more
/// than `tolerance` (relative), with a 150 ns absolute floor so quantized
/// nanosecond readings near zero don't flap (cheap-op quantiles sit on a
/// 1-2-5 bucket ladder, so one bucket of jitter can read as +100%).
int CompareAgainstBaseline(const std::vector<Row>& current,
                           const std::vector<Row>& baseline, double tolerance,
                           bool verbose) {
  std::map<std::string, const Row*> current_by_key;
  for (const Row& row : current) current_by_key[RowKey(row)] = &row;

  int regressions = 0;
  for (const Row& base : baseline) {
    const auto it = current_by_key.find(RowKey(base));
    if (it == current_by_key.end()) {
      std::fprintf(stderr, "MISSING  %s (present in baseline, not measured)\n",
                   RowKey(base).c_str());
      ++regressions;
      continue;
    }
    const double floor_ns = base.unit == "ns" ? 150.0 : 0.0;
    const double bound =
        std::max(base.value * (1.0 + tolerance), base.value + floor_ns);
    if (it->second->value > bound) {
      std::fprintf(stderr, "REGRESSION  %-40s %10.4g -> %10.4g (+%.0f%%)\n",
                   RowKey(base).c_str(), base.value, it->second->value,
                   100.0 * (it->second->value / base.value - 1.0));
      ++regressions;
    } else if (verbose) {
      std::fprintf(stderr, "ok  %-40s %10.4g -> %10.4g\n",
                   RowKey(base).c_str(), base.value, it->second->value);
    }
  }
  return regressions;
}

/// Exercises the compare machinery without trusting wall-clock stability:
/// rows must round-trip through the JSON writer/reader, match themselves,
/// and an injected 2x slowdown (baseline halved) must be flagged on every
/// time row.
int SelfTest(const std::vector<Row>& rows) {
  const std::string json = RowsToJson(rows, CurrentRssBytes(), "selftest");
  std::vector<Row> parsed;
  if (!ParseRows(json, &parsed) || parsed.size() != rows.size()) {
    std::fprintf(stderr, "selftest FAIL: JSON round-trip lost rows\n");
    return 1;
  }
  if (CompareAgainstBaseline(parsed, rows, 0.15, /*verbose=*/false) != 0) {
    std::fprintf(stderr, "selftest FAIL: self-comparison flagged rows\n");
    return 1;
  }
  std::vector<Row> halved = rows;
  int expected = 0;
  for (Row& row : halved) {
    row.value /= 2.0;
    // Below the 150 ns absolute floor a doubling is within tolerance by
    // design; count only rows the checker is supposed to flag.
    if (row.value * 2.0 > std::max(row.value * 1.15, row.value + 150.0) ||
        row.unit != "ns") {
      ++expected;
    }
  }
  const int flagged =
      CompareAgainstBaseline(parsed, halved, 0.15, /*verbose=*/false);
  if (flagged < expected) {
    std::fprintf(stderr,
                 "selftest FAIL: injected 2x slowdown flagged %d of %d rows\n",
                 flagged, expected);
    return 1;
  }

  // The file-based compare path, including the documented out==baseline
  // flow: write the halved baseline to disk, load it the way --baseline
  // does, overwrite the same file with the current results (as main does
  // after loading), and check the comparison still flags against the *old*
  // on-disk values.
  const std::string path = "perf_regression_selftest.tmp.json";
  std::vector<Row> from_file;
  const bool file_ok =
      WriteStringToFile(path, RowsToJson(halved, 0, "selftest")) &&
      LoadRowsFile(path, &from_file) &&
      WriteStringToFile(path, json) &&
      CompareAgainstBaseline(parsed, from_file, 0.15, /*verbose=*/false) >=
          expected;
  std::remove(path.c_str());
  if (!file_ok) {
    std::fprintf(stderr,
                 "selftest FAIL: file-based baseline compare missed the "
                 "injected slowdown\n");
    return 1;
  }

  std::fprintf(stderr, "selftest ok: %zu rows, %d/%d injected regressions "
                       "detected (in-memory and via baseline file)\n",
               rows.size(), flagged, expected);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out") {
      config.out_path = next();
    } else if (arg == "--baseline") {
      config.baseline_path = next();
    } else if (arg == "--tolerance") {
      config.tolerance = std::atof(next());
    } else if (arg == "--n") {
      config.num_strings = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--selftest") {
      config.selftest = true;
    } else {
      std::fprintf(stderr,
                   "usage: perf_regression [--quick] [--n N] [--out FILE]\n"
                   "         [--baseline FILE] [--tolerance X] [--selftest]\n");
      return 2;
    }
  }
  if (quick) {
    config.num_strings = 3000;
    config.extract_ops = 6000;
    config.locate_ops = 2000;
    config.scan_reps = 2;
    config.build_reps = 1;
    config.delta_rows = 200;
  }

  // The baseline must be read BEFORE the fresh results are written: with
  // --baseline and --out pointing at the same file (the documented rolling
  // workflow) a write-first ordering would clobber the committed values and
  // compare the run against itself, never failing. Loading up front also
  // rejects a missing/malformed baseline before minutes of measurement.
  std::vector<Row> baseline;
  if (!config.baseline_path.empty() && !config.selftest &&
      !LoadRowsFile(config.baseline_path, &baseline)) {
    return 2;
  }

  // Steady timings: the metrics layer would add its own (tiny) overhead and
  // the paths under test are instrumented; measure them bare.
  obs::SetEnabled(false);

  const std::vector<Row> rows = RunBenchmarks(config);

  if (config.selftest) return SelfTest(rows);

  const std::string json = RowsToJson(rows, CurrentRssBytes(), GitSha());
  std::vector<Row> reparsed;
  if (!ParseRows(json, &reparsed) || reparsed.size() != rows.size()) {
    std::fprintf(stderr, "internal error: produced malformed JSON\n");
    return 2;
  }
  if (!WriteStringToFile(config.out_path, json)) return 2;
  std::fprintf(stderr, "wrote %zu rows to %s\n", rows.size(),
               config.out_path.c_str());

  if (!config.baseline_path.empty()) {
    const int regressions = CompareAgainstBaseline(
        rows, baseline, config.tolerance, /*verbose=*/false);
    std::fprintf(stderr, "%d regression(s) vs %s at tolerance %.0f%%\n",
                 regressions, config.baseline_path.c_str(),
                 100.0 * config.tolerance);
    if (regressions > 0) return 1;
  }
  return 0;
}
