// Query performance over available memory: the hyrise-style sweep that
// shows what the pressure feedback actually buys.
//
// The database starts in the fastest (and fattest) configuration — every
// dictionary a raw pointer array — against a generous simulated budget.
// The budget then shrinks stepwise; a SimulatedProvider reports
// (used = live footprint, total = budget) and one synchronous
// RecompressionScheduler per table reacts: as the used fraction climbs
// through the advisory/urgent/critical tiers, dictionaries are rebuilt into
// ever cheaper formats, which in turn lowers the used fraction. At every
// step the sweep records Q1/Q6 latency, the total dictionary footprint, the
// pressure level, and every column's format — the trade-off curve of
// docs/memory_pressure.md.
//
// Results are JSON rows ({bench, step, budget_bytes, metric, value, unit,
// detail, rss_bytes, git_sha}) written to BENCH_memory.json. Absolute
// timings are machine-dependent; CI runs --quick, validates the schema, and
// uploads the artifact without gating on timings.
//
//   $ ./build/bench/memory_pressure_curve            # SF 0.1, full sweep
//   $ ./build/bench/memory_pressure_curve --quick    # CI smoke scale
//   $ ./build/bench/memory_pressure_curve --sf 0.5 --out /tmp/m.json
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/compression_manager.h"
#include "core/recompression_scheduler.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "util/memory_pressure.h"
#include "util/stopwatch.h"

using namespace adict;

namespace {

struct Config {
  double scale_factor = 0.1;
  int reps = 10;  // query repetitions per measurement
  int ticks_per_step = 12;
  // Budget steps as multiples of the initial (array-format) footprint.
  std::vector<double> budget_steps = {2.0, 1.5, 1.2, 1.0,
                                      0.9, 0.8, 0.7, 0.6};
  std::string out_path = "BENCH_memory.json";
};

struct Row {
  int step = 0;
  uint64_t budget_bytes = 0;
  std::string metric;  // q1_mean_ms | q6_mean_ms | dict_bytes | used_bytes |
                       // pressure_level | rebuilds_total |
                       // reclaimed_bytes_total | format
  double value = 0;
  std::string unit;    // ms | bytes | level | rebuilds | format_id
  std::string detail;  // format rows: "table.column=format name", else ""
};

uint64_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t rss_kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %" SCNu64 " kB", &rss_kb) == 1) break;
  }
  std::fclose(f);
  return rss_kb * 1024;
}

std::string GitSha() {
  if (const char* env = std::getenv("GITHUB_SHA"); env != nullptr) return env;
  std::string sha;
  if (std::FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) sha = buf;
    pclose(pipe);
  }
  while (!sha.empty() && std::isspace(static_cast<unsigned char>(sha.back()))) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out->push_back('\\');
    out->push_back(ch);
  }
  out->push_back('"');
}

/// Flat JSON array, one object per row: the BENCH_memory.json schema.
std::string RowsToJson(const std::vector<Row>& rows, uint64_t rss_bytes,
                       const std::string& git_sha) {
  std::string out = "[\n";
  char buf[64];
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out.append("  {\"bench\":\"pressure_curve\"");
    std::snprintf(buf, sizeof(buf), ",\"step\":%d", row.step);
    out.append(buf);
    std::snprintf(buf, sizeof(buf), ",\"budget_bytes\":%llu",
                  static_cast<unsigned long long>(row.budget_bytes));
    out.append(buf);
    out.append(",\"metric\":");
    AppendJsonString(&out, row.metric);
    std::snprintf(buf, sizeof(buf), ",\"value\":%.6g", row.value);
    out.append(buf);
    out.append(",\"unit\":");
    AppendJsonString(&out, row.unit);
    out.append(",\"detail\":");
    AppendJsonString(&out, row.detail);
    std::snprintf(buf, sizeof(buf), ",\"rss_bytes\":%llu",
                  static_cast<unsigned long long>(rss_bytes));
    out.append(buf);
    out.append(",\"git_sha\":");
    AppendJsonString(&out, git_sha);
    out.push_back('}');
    if (i + 1 < rows.size()) out.push_back(',');
    out.push_back('\n');
  }
  out.append("]\n");
  return out;
}

double MeanQueryMs(const TpchDatabase& db, int q, int reps) {
  Stopwatch watch;
  for (int r = 0; r < reps; ++r) (void)RunTpchQuery(db, q);
  return watch.ElapsedSeconds() * 1e3 / reps;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      config.scale_factor = 0.01;
      config.reps = 2;
      config.ticks_per_step = 8;
      config.budget_steps = {1.5, 1.0, 0.7};
    } else if (arg == "--sf" && i + 1 < argc) {
      config.scale_factor = std::strtod(argv[++i], nullptr);
    } else if (arg == "--reps" && i + 1 < argc) {
      config.reps = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      config.out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--sf N] [--reps N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  TpchOptions options;
  options.scale_factor = config.scale_factor;
  std::fprintf(stderr, "generating TPC-H at SF %.3g...\n",
               config.scale_factor);
  TpchDatabase db = GenerateTpch(options);

  // Fastest/fattest starting configuration: the scheduler has to earn every
  // byte back as the budget shrinks.
  db.ApplyFormat(DictFormat::kArray);
  // Prime the usage traces so the ranking and the time model see a
  // scan-heavy workload, not idle columns.
  (void)RunTpchQuery(db, 1);
  (void)RunTpchQuery(db, 6);

  const uint64_t initial_used = db.MemoryBytes();
  const uint64_t other_bytes = initial_used - db.StringColumnBytes();

  CompressionManager manager;
  SimulatedProvider provider(initial_used, initial_used * 2);

  // One synchronous scheduler per table, sharing the manager. Only the
  // controller feed is centralized (one Observe per tick, not eight).
  RecompressionScheduler::Options sched_options;
  sched_options.synchronous = true;
  sched_options.feed_controller = false;
  sched_options.smoothing = 0.5;
  sched_options.cooldown_ticks = 2;
  sched_options.advisory_period_ticks = 2;
  sched_options.max_rebuilds_per_tick = 2;
  sched_options.critical_max_rebuilds_per_tick = 4;
  std::vector<std::unique_ptr<RecompressionScheduler>> schedulers;
  for (Table* table : db.tables()) {
    schedulers.push_back(std::make_unique<RecompressionScheduler>(
        table, &manager, sched_options));
  }

  std::vector<Row> rows;
  for (size_t step = 0; step < config.budget_steps.size(); ++step) {
    const uint64_t budget = static_cast<uint64_t>(
        config.budget_steps[step] * static_cast<double>(initial_used));
    provider.set_total_bytes(budget);

    // Let the feedback settle: each tick re-measures the live footprint
    // (rebuilds lower it), feeds the controller, and drives the schedulers.
    for (int tick = 0; tick < config.ticks_per_step; ++tick) {
      const uint64_t used = other_bytes + db.StringColumnBytes();
      provider.set_used_bytes(used);
      const StatusOr<MemorySample> sample = provider.Sample();
      if (!sample.ok()) continue;
      manager.controller().Observe(static_cast<double>(sample->free_bytes()),
                                   static_cast<double>(sample->total_bytes));
      for (auto& scheduler : schedulers) scheduler->OnSample(sample);
    }

    const double q1_ms = MeanQueryMs(db, 1, config.reps);
    const double q6_ms = MeanQueryMs(db, 6, config.reps);
    const uint64_t dict_bytes = db.StringColumnBytes();
    const uint64_t used = other_bytes + dict_bytes;
    uint64_t rebuilds = 0, reclaimed = 0;
    PressureLevel level = PressureLevel::kNone;
    for (const auto& scheduler : schedulers) {
      const RecompressionScheduler::Stats stats = scheduler->stats();
      rebuilds += stats.rebuilds;
      reclaimed += stats.reclaimed_bytes;
      level = std::max(level, stats.level);
    }

    const int step_id = static_cast<int>(step);
    rows.push_back({step_id, budget, "q1_mean_ms", q1_ms, "ms", ""});
    rows.push_back({step_id, budget, "q6_mean_ms", q6_ms, "ms", ""});
    rows.push_back({step_id, budget, "dict_bytes",
                    static_cast<double>(dict_bytes), "bytes", ""});
    rows.push_back({step_id, budget, "used_bytes", static_cast<double>(used),
                    "bytes", ""});
    rows.push_back({step_id, budget, "pressure_level",
                    static_cast<double>(level), "level",
                    std::string(PressureLevelName(level))});
    rows.push_back({step_id, budget, "rebuilds_total",
                    static_cast<double>(rebuilds), "rebuilds", ""});
    rows.push_back({step_id, budget, "reclaimed_bytes_total",
                    static_cast<double>(reclaimed), "bytes", ""});
    for (const Table* table : db.tables()) {
      for (size_t i = 0; i < table->num_string_columns(); ++i) {
        const DictFormat format = table->string_column(i).Snapshot()->format();
        rows.push_back({step_id, budget, "format",
                        static_cast<double>(static_cast<int>(format)),
                        "format_id",
                        table->name() + "." + table->string_column_name(i) +
                            "=" + std::string(DictFormatName(format))});
      }
    }
    std::fprintf(stderr,
                 "step=%zu budget=%.2fx  q1 %.2f ms  q6 %.2f ms  dict %.1f MB"
                 "  level=%s  rebuilds=%llu\n",
                 step, config.budget_steps[step], q1_ms, q6_ms,
                 static_cast<double>(dict_bytes) / (1024.0 * 1024.0),
                 std::string(PressureLevelName(level)).c_str(),
                 static_cast<unsigned long long>(rebuilds));
  }

  for (auto& scheduler : schedulers) scheduler->Stop();

  const std::string json = RowsToJson(rows, CurrentRssBytes(), GitSha());
  std::FILE* out = std::fopen(config.out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::fprintf(stderr, "wrote %zu rows to %s\n", rows.size(),
               config.out_path.c_str());
  return 0;
}
