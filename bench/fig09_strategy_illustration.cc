// Figure 9: possible distribution of dictionary performances (src data,
// chosen extract/locate frequencies and merge interval) with the dividing
// line of the trade-off strategy, the smallest and the selected variant.
#include <cstdio>

#include "bench/survey_harness.h"
#include "core/compression_manager.h"

using namespace adict;

int main() {
  const uint64_t n = bench::EnvOr("ADICT_DATASET_N", 20000);
  const std::vector<std::string> sorted = GenerateSurveyDataset("src", n);
  const DictionaryProperties props =
      SampleProperties(sorted, SamplingConfig::Default());

  // A hot column: the smallest variant would spend a substantial part of
  // the merge interval answering extracts, so the tilted line visibly
  // favors faster variants.
  ColumnUsage usage;
  usage.num_extracts = 100000000;
  usage.num_locates = 200000;
  usage.lifetime_seconds = 600;
  usage.column_vector_bytes = 250000;

  const CostModel costs = CostModel::Default();
  const std::vector<Candidate> candidates =
      EvaluateCandidates(props, usage, costs);

  std::printf("Figure 9: dictionary performance distribution and dividing line\n");
  std::printf("(src data set, 2M extracts / 20k locates per 600s lifetime)\n\n");
  for (double c : {0.1, 0.5}) {
    const SelectionDetails details =
        SelectFormatDetailed(candidates, c, TradeoffStrategy::kTilt);
    std::printf("c = %.2f  strategy = tilt  alpha = %.1f\n", c, details.alpha);
    std::printf("%-16s %14s %14s %14s %-10s\n", "variant", "rel_time",
                "size[KB]", "line f(t)[KB]", "status");
    for (size_t i = 0; i < candidates.size(); ++i) {
      const Candidate& cand = candidates[i];
      const bool included = cand.size_bytes <= details.threshold[i];
      const char* status = cand.format == details.selected ? "SELECTED"
                           : cand.format == details.smallest ? "smallest"
                           : included ? "included"
                                      : "excluded";
      std::printf("%-16s %14.6f %14.1f %14.1f %-10s\n",
                  std::string(DictFormatName(cand.format)).c_str(),
                  cand.rel_time, cand.size_bytes / 1024.0,
                  details.threshold[i] / 1024.0, status);
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape: all variants below the dividing line are included;\n"
      "the selected variant is the fastest included one; raising c moves the\n"
      "line up and the selection towards faster, larger variants.\n");
  return 0;
}
