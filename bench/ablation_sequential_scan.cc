// Ablation: sequential dictionary access — per-ID extraction vs the Scan
// API — across the formats with different block layouts.
//
// This quantifies the design rationale the paper gives for fc inline
// ("in order to improve sequential access"): with per-ID access a
// front-coded block is re-decoded for every member, while a sequential scan
// decodes it once.
#include <cstdio>

#include "bench/survey_harness.h"
#include "util/stopwatch.h"

using namespace adict;

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  const uint64_t n = bench::EnvOr("ADICT_DATASET_N", 50000);
  const std::vector<std::string> sorted = GenerateSurveyDataset("url", n);

  std::printf("Ablation: sequential access, %llu URLs\n\n",
              static_cast<unsigned long long>(sorted.size()));
  std::printf("%-16s %16s %14s %9s\n", "variant", "per-id[ms]", "scan[ms]",
              "speedup");
  for (DictFormat format :
       {DictFormat::kArray, DictFormat::kArrayHu, DictFormat::kFcBlock,
        DictFormat::kFcBlockDf, DictFormat::kFcBlockRp12, DictFormat::kFcInline,
        DictFormat::kColumnBc}) {
    auto dict = BuildDictionary(format, sorted);

    Stopwatch watch;
    std::string scratch;
    uint64_t checksum_a = 0;
    for (uint32_t id = 0; id < dict->size(); ++id) {
      scratch.clear();
      dict->ExtractInto(id, &scratch);
      checksum_a += scratch.size();
    }
    const double per_id_ms = watch.ElapsedMicros() / 1000.0;

    watch.Restart();
    uint64_t checksum_b = 0;
    dict->Scan(0, dict->size(), [&checksum_b](uint32_t, std::string_view v) {
      checksum_b += v.size();
    });
    const double scan_ms = watch.ElapsedMicros() / 1000.0;
    ADICT_CHECK(checksum_a == checksum_b);

    std::printf("%-16s %16.2f %14.2f %8.1fx\n",
                std::string(DictFormatName(format)).c_str(), per_id_ms, scan_ms,
                per_id_ms / scan_ms);
  }
  std::printf(
      "\nExpected shape: per-id front coding pays half a block decode per\n"
      "access; Scan brings fc block and fc inline close to plain array\n"
      "speed (the fc inline layout exists for exactly this pattern).\n");
  return 0;
}
