// Figure 11: dictionary formats selected by the compression manager for the
// TPC-H columns depending on the value of c.
//
// Paper shape: at very small c the pointer-free array fixed dominates (it
// is genuinely the smallest for the many low-cardinality columns) next to a
// wide mix of heavily compressing, specialized formats; as c grows, rp and
// column bc give way to balanced formats; at the largest c everything is
// array fixed / the fastest format.
#include <cstdio>
#include <map>

#include "bench/tpch_harness.h"

using namespace adict;

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  const double sf = bench::EnvOrDouble("ADICT_TPCH_SF", 0.02);
  const int trace_mult = 100;

  TpchOptions options;
  options.scale_factor = sf;
  TpchDatabase db = GenerateTpch(options);
  const std::vector<bench::TracedColumn> traced =
      bench::TraceTpchWorkload(&db, trace_mult);

  std::printf("Figure 11: formats selected per c (TPC-H, %zu string columns)\n\n",
              traced.size());
  std::printf("%-16s", "variant \\ c");
  const double cs[] = {0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0};
  for (double c : cs) std::printf(" %7g", c);
  std::printf("\n");

  CompressionManager manager;
  std::map<DictFormat, std::vector<double>> share;
  for (size_t ci = 0; ci < std::size(cs); ++ci) {
    const std::vector<DictFormat> formats =
        bench::SelectConfiguration(traced, manager, cs[ci]);
    std::map<DictFormat, int> counts;
    for (DictFormat f : formats) ++counts[f];
    for (const auto& [format, count] : counts) {
      auto& row = share[format];
      row.resize(std::size(cs), 0.0);
      row[ci] = 100.0 * count / static_cast<double>(formats.size());
    }
  }
  for (DictFormat format : AllDictFormats()) {
    const auto it = share.find(format);
    if (it == share.end()) continue;
    std::printf("%-16s", std::string(DictFormatName(format)).c_str());
    for (size_t ci = 0; ci < std::size(cs); ++ci) {
      const double value =
          it->second.size() > ci ? it->second[ci] : 0.0;
      if (value > 0) {
        std::printf(" %6.1f%%", value);
      } else {
        std::printf("      . ");
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: largest format diversity at small c; heavy\n"
      "compressors (rp, column bc) fade as c grows; the largest c hands\n"
      "every column to the fastest format.\n\n");
  bench::ReportObservability(stdout, /*max_decisions=*/8);
  return 0;
}
