# Benchmark executables, one per paper figure plus calibration and
# microbenchmarks. Included from the top-level CMakeLists so that
# ${CMAKE_BINARY_DIR}/bench contains nothing but the binaries (the harness
# executes every file in that directory).
set(ADICT_BENCH_SOURCES
  bench/fig01_dictionary_size_distribution.cc
  bench/fig02_memory_distribution.cc
  bench/fig03_tradeoff_src.cc
  bench/fig04_best_compression.cc
  bench/fig05_fastest_extract.cc
  bench/fig06_prediction_error.cc
  bench/fig09_strategy_illustration.cc
  bench/fig10_tpch_tradeoff.cc
  bench/fig11_format_distribution.cc
  bench/ablation_feedback_loop.cc
  bench/ablation_hash_locate.cc
  bench/ablation_sequential_scan.cc
  bench/ablation_strategies.cc
  bench/calibrate_cost_model.cc
  bench/survey_locate_construct.cc
  bench/dict_ops_benchmark.cc
  bench/memory_pressure_curve.cc
  bench/perf_regression.cc
  bench/server_throughput.cc
  bench/throughput_over_clients.cc
)

foreach(bench_source ${ADICT_BENCH_SOURCES})
  get_filename_component(bench_name ${bench_source} NAME_WE)
  add_executable(${bench_name} ${bench_source})
  target_include_directories(${bench_name} PRIVATE ${CMAKE_SOURCE_DIR})
  target_link_libraries(${bench_name}
    adict_server adict_tpch adict_engine adict_store adict_core adict_dict
    adict_datasets adict_text adict_obs adict_util
    benchmark::benchmark)
  set_target_properties(${bench_name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()
