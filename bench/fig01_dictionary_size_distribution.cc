// Figure 1: distribution of the number of distinct values per string column
// in three (simulated) enterprise systems.
//
// Paper finding: dictionary sizes roughly follow a Zipf law — "for every
// order of magnitude of smaller size, there is half an order of magnitude
// less dictionaries of that size".
#include <cmath>
#include <cstdio>
#include <vector>

#include "datasets/generators.h"
#include "bench/survey_harness.h"

using namespace adict;

int main() {
  const size_t columns = bench::EnvOr("ADICT_SYSTEM_COLUMNS", 200000);
  std::printf("Figure 1: share of columns per dictionary-size decade\n");
  std::printf("(simulated ERP/BW column populations, %zu columns each)\n\n",
              columns);
  std::printf("%-22s", "distinct values");
  for (int d = 0; d <= 7; ++d) std::printf("  10^%d    ", d);
  std::printf("\n");

  const struct {
    const char* name;
    SystemKind kind;
  } kSystems[] = {{"ERP System 1", SystemKind::kErp1},
                  {"ERP System 2", SystemKind::kErp2},
                  {"BW System", SystemKind::kBw}};
  for (const auto& system : kSystems) {
    const std::vector<ColumnProfile> population =
        GenerateSystemPopulation(system.kind, columns);
    std::vector<uint64_t> decade_count(9, 0);
    for (const ColumnProfile& col : population) {
      const int decade =
          static_cast<int>(std::log10(static_cast<double>(col.distinct_values)));
      ++decade_count[std::min(decade, 8)];
    }
    std::printf("%-22s", system.name);
    for (int d = 0; d <= 7; ++d) {
      std::printf("  %6.3f%% ",
                  100.0 * static_cast<double>(decade_count[d]) / columns);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: each decade has roughly half an order of magnitude\n"
      "fewer columns than the previous one (Zipf), with a long tail of very\n"
      "large dictionaries.\n");
  return 0;
}
