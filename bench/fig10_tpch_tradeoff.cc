// Figure 10: space / time trade-off of dictionary format selection
// strategies on the queries of the (modified) TPC-H benchmark.
//
// Every fixed-format configuration and every workload-driven configuration
// (compression manager with trade-off parameter c) is applied to the
// database; the workload is the 22 TPC-H queries; both axes are normalized
// against the fc inline configuration, as in the paper.
//
// Paper shape: the fixed formats span ~25% end-to-end runtime difference
// and ~3.5x memory; the workload-driven configurations dominate them —
// e.g. same speed as fc block at two thirds of its space, or ~10% faster
// at equal size — and c moves smoothly along the trade-off.
#include <cstdio>

#include "bench/tpch_harness.h"

using namespace adict;

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  const double sf = bench::EnvOrDouble("ADICT_TPCH_SF", 0.02);
  const int reps = static_cast<int>(bench::EnvOr("ADICT_QUERY_REPS", 3));
  const int trace_mult = 100;

  std::printf("Figure 10: space/time trade-off on TPC-H (*KEY as VARCHAR(10))\n");
  std::printf("scale factor %.3f, %d reps per query, usage multiplier %d\n\n",
              sf, reps, trace_mult);

  TpchOptions options;
  options.scale_factor = sf;
  TpchDatabase db = GenerateTpch(options);
  std::printf("generated: %llu lineitems, %.1f MB total\n\n",
              static_cast<unsigned long long>(db.lineitem.num_rows()),
              static_cast<double>(db.MemoryBytes()) / 1e6);

  // Trace the workload once on the default configuration.
  const std::vector<bench::TracedColumn> traced =
      bench::TraceTpchWorkload(&db, trace_mult);

  // Baseline: fc inline (both axes are normalized to it).
  db.ApplyFormat(DictFormat::kFcInline);
  const double base_time = bench::MeasureWorkloadSeconds(db, reps);
  const double base_memory = static_cast<double>(db.MemoryBytes());
  std::printf("fc inline baseline: %.3f s workload, %.1f MB\n\n", base_time,
              base_memory / 1e6);
  std::printf("%-28s %12s %12s\n", "configuration", "rel_memory", "rel_runtime");

  // Fixed-format configurations.
  for (DictFormat format : AllDictFormats()) {
    db.ApplyFormat(format);
    const double time = bench::MeasureWorkloadSeconds(db, reps);
    const double memory = static_cast<double>(db.MemoryBytes());
    std::printf("%-28s %12.3f %12.3f\n",
                ("fixed: " + std::string(DictFormatName(format))).c_str(),
                memory / base_memory, time / base_time);
  }

  // Workload-driven configurations over a logarithmic range of c.
  CompressionManager manager;
  for (double c : {0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0}) {
    const std::vector<DictFormat> formats =
        bench::SelectConfiguration(traced, manager, c);
    bench::ApplyConfiguration(traced, formats);
    const double time = bench::MeasureWorkloadSeconds(db, reps);
    const double memory = static_cast<double>(db.MemoryBytes());
    char label[64];
    std::snprintf(label, sizeof(label), "workload-driven: c=%g", c);
    std::printf("%-28s %12.3f %12.3f\n", label, memory / base_memory,
                time / base_time);
  }

  std::printf(
      "\nExpected shape: fixed formats form a pareto-ish curve from fast/big\n"
      "(array fixed, array) to small/slow (fc block rp 12/16), column bc far\n"
      "outside; every workload-driven point lies on or below that curve,\n"
      "and increasing c moves it from small/slow towards fast/big.\n");
  return 0;
}
