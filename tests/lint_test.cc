// Tests for tools/adict_lint.py, the repo-invariant checker.
//
// The lint's job is to catch cross-surface drift that the compiler cannot:
// a 19th format added to the enum but not the size model, a metric that
// never reaches docs/observability.md, a span missing from the catalog, a
// silently discarded Status. Each test here seeds exactly that violation
// into a synthetic mini-repo and asserts the lint fails with a pointed
// message; one test runs the lint over the real tree, which must be clean.
//
// The mini-repo mirrors only the files the lint reads (see adict_lint.py's
// parsers); it uses two formats instead of eighteen to keep the fixtures
// readable.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#ifndef ADICT_SOURCE_DIR
#error "tests/CMakeLists.txt must define ADICT_SOURCE_DIR"
#endif

namespace adict {
namespace {

namespace fs = std::filesystem;

struct LintResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

LintResult RunLint(const fs::path& root) {
  const std::string command = std::string("python3 '") + ADICT_SOURCE_DIR +
                              "/tools/adict_lint.py' --root '" +
                              root.string() + "' 2>&1";
  LintResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  size_t n;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  if (status >= 0 && WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  }
  return result;
}

class LintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::system("python3 --version > /dev/null 2>&1") != 0) {
      GTEST_SKIP() << "python3 not available";
    }
    root_ = fs::temp_directory_path() /
            ("adict_lint_test_" + std::to_string(::getpid()));
    fs::remove_all(root_);
    WriteCleanTree();
  }

  void TearDown() override {
    if (!root_.empty()) fs::remove_all(root_);
  }

  void Write(const std::string& relative, const std::string& content) {
    const fs::path path = root_ / relative;
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::trunc);
    out << content;
    ASSERT_TRUE(out.good()) << "writing " << path;
  }

  void Append(const std::string& relative, const std::string& content) {
    std::ofstream out(root_ / relative, std::ios::app);
    out << content;
    ASSERT_TRUE(out.good()) << "appending to " << (root_ / relative);
  }

  // A minimal tree on which every check passes: two formats, one metric,
  // one span, one Status-returning function.
  void WriteCleanTree() {
    Write("src/dict/dictionary.h", R"lint(
enum class DictFormat {
  kArray,
  kFcBlock,
};
inline constexpr int kNumDictFormats = 2;
)lint");
    Write("src/dict/dictionary.cc", R"lint(
const char* DictFormatName(DictFormat format) {
  switch (format) {
    case DictFormat::kArray: return "array";
    case DictFormat::kFcBlock: return "fc block";
  }
  return "";
}
)lint");
    Write("src/core/size_model.cc", R"lint(
double PredictSize(DictFormat format) {
  switch (format) {
    case DictFormat::kArray: return 1;
    case DictFormat::kFcBlock: return 2;
  }
  return 0;
}
)lint");
    Write("src/dict/serialization.cc", R"lint(
void SerializePayload(DictFormat format) {
  switch (format) {
    case DictFormat::kArray: break;
    case DictFormat::kFcBlock: break;
  }
}
)lint");
    Write("src/core/build_guard.cc", R"lint(
void Degrade() {
  std::array<DictFormat, 2> chain = {DictFormat::kFcBlock,
                                     DictFormat::kArray};
}
)lint");
    Write("src/util/status.h", R"lint(
class [[nodiscard]] Status {};
template <typename T>
class [[nodiscard]] StatusOr {};
)lint");
    Write("src/obs/instrumented.cc", R"lint(
Status DoThing();

void Touch() {
  Metrics().GetCounter("mini.counter")->Increment();
  ADICT_TRACE_SPAN("mini.span");
}

Status Caller() {
  return DoThing();
}
)lint");
    Write("BENCH_core.json",
          R"lint([{"format": "array"}, {"format": "fc block"}])lint");
    Write("docs/format_layouts.md", R"lint(# Layouts

| Tag | Enum | Paper name |
|---|---|---|
| 0 | `kArray` | `array` |
| 1 | `kFcBlock` | `fc block` |
)lint");
    Write("src/obs/http_exporter.cc", R"lint(
// adict-lint: http-routes-begin
constexpr Route kRoutes[] = {
    {"/mini", "GET"},
};
// adict-lint: http-routes-end
)lint");
    // The serving check syncs src/server metrics and spans with
    // docs/serving.md; one literal registration, one through an event
    // helper (the lint must see both), one span.
    Write("src/server/query_server.cc", R"lint(
void CountServerEvent(const char* name, const char* help) {
  Metrics().GetCounter(name, "events", help)->Increment();
}

void Serve() {
  Metrics().GetGauge("server.mini.active")->Set(1);
  CountServerEvent("server.mini.events", "mini events");
  ADICT_TRACE_SPAN("server.mini.span");
}
)lint");
    Write("docs/serving.md", R"lint(# Serving

## Metrics

| Name | Unit |
|---|---|
| `server.mini.active` | connections |
| `server.mini.events` | events |

## Spans

| Name | Around |
|---|---|
| `server.mini.span` | the mini request |
)lint");
    Write("docs/observability.md", R"lint(# Observability

## HTTP endpoints

| Endpoint | Returns |
|---|---|
| `GET /mini` | the one route |

## Metric reference

| Name | Unit |
|---|---|
| `mini.counter` | calls |
| `server.mini.active` | connections |
| `server.mini.events` | events |

Per-format counters: `manager.chosen.array` and `manager.chosen.fc_block`.

## Tracing

### Span catalog

| Span | What |
|---|---|
| `mini.span` | the one span |
| `server.mini.span` | the mini request |
)lint");
    // The lint also scans examples/ and bench/ for spans.
    Write("examples/README.md", "placeholder\n");
    Write("bench/README.md", "placeholder\n");
    // The locks check: a two-rank hierarchy (core and server strata), one
    // ranked mutex per stratum, and the doc table that mirrors them.
    Write("src/util/lock_rank.h", R"lint(
enum class LockStratum : int {
  kUtil = 0,
  kCore = 2,
  kServer = 4,
};
inline constexpr int kLockStratumWidth = 100;
enum class LockRank : int {
  kMiniCore = 210,
  kMiniServer = 410,
};
)lint");
    Write("src/util/lock_rank.cc", R"lint(
const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kMiniCore: return "kMiniCore";
    case LockRank::kMiniServer: return "kMiniServer";
  }
  return "";
}
)lint");
    Write("src/core/mini_locks.h", R"lint(
class MiniScheduler {
 private:
  mutable Mutex mutex_{LockRank::kMiniCore, "MiniScheduler.mutex_"};
};
)lint");
    Append("src/server/query_server.cc", R"lint(
MutexCv drain_mutex_{LockRank::kMiniServer, "MiniServer.drain_mutex_"};
)lint");
    Write("docs/lock_hierarchy.md", R"lint(# Lock hierarchy

| Mutex | Rank | Value | Stratum | File | Guards | May call while held |
|---|---|---|---|---|---|---|
| `MiniServer.drain_mutex_` | `kMiniServer` | 410 | server | `src/server/query_server.cc` | drain count | nothing |
| `MiniScheduler.mutex_` | `kMiniCore` | 210 | core | `src/core/mini_locks.h` | scheduler state | core and below |
)lint");
  }

  fs::path root_;
};

TEST_F(LintTest, CleanMiniTreePasses) {
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("adict_lint: OK"), std::string::npos)
      << result.output;
}

// The committed tree must satisfy its own lint.
TEST_F(LintTest, RealTreeIsClean) {
  const LintResult result = RunLint(fs::path(ADICT_SOURCE_DIR));
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

// A 19th (here: 3rd) format added to the enum alone must be flagged on
// every surface it is missing from.
TEST_F(LintTest, FormatAddedOnlyToEnum) {
  Write("src/dict/dictionary.h", R"lint(
enum class DictFormat {
  kArray,
  kFcBlock,
  kExtra,
};
inline constexpr int kNumDictFormats = 2;
)lint");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("kNumDictFormats is 2"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find(
                "DictFormat::kExtra is in the enum but missing from the "
                "SizeModel per-format switch"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("serde payload dispatch"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find(
                "DictFormat::kExtra is missing from the format table"),
            std::string::npos)
      << result.output;
}

TEST_F(LintTest, UndocumentedMetric) {
  Append("src/obs/instrumented.cc", R"lint(
void TouchMore() {
  Metrics().GetCounter("mini.undocumented")->Increment();
}
)lint");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("metric \"mini.undocumented\" is registered "
                               "here but not documented"),
            std::string::npos)
      << result.output;
}

TEST_F(LintTest, StaleMetricDocRow) {
  Write("docs/observability.md", R"lint(# Observability

## HTTP endpoints

| Endpoint | Returns |
|---|---|
| `GET /mini` | the one route |

## Metric reference

| Name | Unit |
|---|---|
| `mini.counter` | calls |
| `mini.ghost` | calls |

Per-format counters: `manager.chosen.array` and `manager.chosen.fc_block`.

## Tracing

### Span catalog

| Span | What |
|---|---|
| `mini.span` | the one span |
)lint");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("documented metric \"mini.ghost\" is not "
                               "registered anywhere"),
            std::string::npos)
      << result.output;
}

TEST_F(LintTest, UncataloguedSpan) {
  Append("src/obs/instrumented.cc", R"lint(
void TraceMore() {
  ADICT_TRACE_SPAN("mini.rogue");
}
)lint");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("span \"mini.rogue\" is opened here but "
                               "missing from the span catalog"),
            std::string::npos)
      << result.output;
}

TEST_F(LintTest, UndocumentedHttpRoute) {
  Write("src/obs/http_exporter.cc", R"lint(
// adict-lint: http-routes-begin
constexpr Route kRoutes[] = {
    {"/mini", "GET"},
    {"/rogue", "POST"},
};
// adict-lint: http-routes-end
)lint");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("HTTP route \"POST /rogue\" is served here "
                               "but not documented"),
            std::string::npos)
      << result.output;
}

TEST_F(LintTest, StaleEndpointDocRow) {
  Write("docs/observability.md", R"lint(# Observability

## HTTP endpoints

| Endpoint | Returns |
|---|---|
| `GET /mini` | the one route |
| `GET /ghost` | a route the exporter never served |

## Metric reference

| Name | Unit |
|---|---|
| `mini.counter` | calls |

Per-format counters: `manager.chosen.array` and `manager.chosen.fc_block`.

## Tracing

### Span catalog

| Span | What |
|---|---|
| `mini.span` | the one span |
)lint");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("documented HTTP endpoint \"GET /ghost\" is "
                               "not in the exporter's route table"),
            std::string::npos)
      << result.output;
}

TEST_F(LintTest, ServingMetricMissingFromServingDoc) {
  // Registered in src/server but absent from the serving.md table (the
  // general metrics check fires too — the assertion is on the serving
  // message).
  Append("src/server/query_server.cc", R"lint(
void ServeMore() {
  CountServerEvent("server.mini.extra", "x");
}
)lint");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find(
                "server metric \"server.mini.extra\" is registered here but "
                "missing from the `## Metrics` table in docs/serving.md"),
            std::string::npos)
      << result.output;
}

TEST_F(LintTest, StaleServingMetricRow) {
  Write("docs/serving.md", R"lint(# Serving

## Metrics

| Name | Unit |
|---|---|
| `server.mini.active` | connections |
| `server.mini.events` | events |
| `server.mini.ghost` | events |

## Spans

| Name | Around |
|---|---|
| `server.mini.span` | the mini request |
)lint");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find(
                "docs/serving.md documents server metric "
                "\"server.mini.ghost\", which is not registered in "
                "src/server"),
            std::string::npos)
      << result.output;
}

TEST_F(LintTest, ServingSpanMissingFromServingDoc) {
  Append("src/server/query_server.cc", R"lint(
void TraceServe() {
  ADICT_TRACE_SPAN("server.mini.rogue");
}
)lint");
  // Catalogued in observability.md so only the serving check fires.
  Append("docs/observability.md", "| `server.mini.rogue` | rogue span |\n");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find(
                "server span \"server.mini.rogue\" is opened here but "
                "missing from the `## Spans` table in docs/serving.md"),
            std::string::npos)
      << result.output;
}

TEST_F(LintTest, EventHelperMetricsAreSeenByTheMetricsCheck) {
  // A name that only ever passes through CountServerEvent must still be
  // held against docs/observability.md.
  Append("src/server/query_server.cc", R"lint(
void ServeQuietly() {
  CountServerEvent("server.mini.unlisted", "x");
}
)lint");
  Append("docs/serving.md", "| `server.mini.unlisted` | events |\n");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find(
                "metric \"server.mini.unlisted\" is registered here but not "
                "documented"),
            std::string::npos)
      << result.output;
}

TEST_F(LintTest, DiscardedStatus) {
  Append("src/obs/instrumented.cc", R"lint(
void Sloppy() {
  DoThing();
}
)lint");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("result of Status-returning `DoThing(...)` "
                               "is silently discarded"),
            std::string::npos)
      << result.output;
}

TEST_F(LintTest, GuardChainMustEndInArray) {
  Write("src/core/build_guard.cc", R"lint(
void Degrade() {
  std::array<DictFormat, 2> chain = {DictFormat::kArray,
                                     DictFormat::kFcBlock};
}
)lint");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(
      result.output.find("degradation chain must terminate in "
                         "DictFormat::kArray"),
      std::string::npos)
      << result.output;
}

TEST_F(LintTest, BaselineMissingFormatRows) {
  Write("BENCH_core.json", R"lint([{"format": "array"}])lint");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("format \"fc block\" (DictFormat::kFcBlock) "
                               "has no rows in the committed perf baseline"),
            std::string::npos)
      << result.output;
}

// --- locks: the lock-hierarchy consistency pass ------------------------

// A Mutex member without a {LockRank::..., "name"} initializer is
// invisible to the deadlock detector and must be flagged at its
// declaration.
TEST_F(LintTest, LocksUnrankedMutex) {
  Append("src/core/mini_locks.h", R"lint(
class Sloppy {
  Mutex naked_;
};
)lint");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("Mutex member \"naked_\" declares no rank"),
            std::string::npos)
      << result.output;
}

// Raw standard-library primitives bypass the hierarchy entirely; only
// thread_annotations.h and lock_rank.* may use them.
TEST_F(LintTest, LocksRawStdMutexInSrc) {
  Append("src/core/mini_locks.h", R"lint(
class Rogue {
  std::mutex raw_;
};
)lint");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("raw std::mutex"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("ranked Mutex/MutexCv"), std::string::npos)
      << result.output;
}

// A server-stratum rank on a mutex declared in src/core/ violates the
// strata bands: the rank's value must match the subsystem directory.
TEST_F(LintTest, LocksMisrankedMutex) {
  Write("src/core/mini_locks.h", R"lint(
class MiniScheduler {
 private:
  mutable Mutex mutex_{LockRank::kMiniServer, "MiniScheduler.mutex_"};
};
)lint");
  // Keep both surfaces of kMiniCore consistent so only the stratum
  // violation (and the doc-rank mismatch) fires.
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("has rank kMiniServer (value 410, stratum "
                               "server) but is declared in src/core/"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find(
                "core-stratum locks must use a rank in [200, 300)"),
            std::string::npos)
      << result.output;
}

// Every ranked mutex needs a row in the docs/lock_hierarchy.md table.
TEST_F(LintTest, LocksUndocumentedMutex) {
  Write("src/util/lock_rank.h", R"lint(
enum class LockStratum : int {
  kUtil = 0,
  kCore = 2,
  kServer = 4,
};
inline constexpr int kLockStratumWidth = 100;
enum class LockRank : int {
  kMiniCore = 210,
  kMiniExtra = 220,
  kMiniServer = 410,
};
)lint");
  Append("src/util/lock_rank.cc", R"lint(
const char* AlsoName(LockRank rank) {
  switch (rank) {
    case LockRank::kMiniExtra: return "kMiniExtra";
  }
  return "";
}
)lint");
  Append("src/core/mini_locks.h", R"lint(
class Undocumented {
  Mutex extra_{LockRank::kMiniExtra, "Undocumented.extra_"};
};
)lint");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find(
                "mutex \"Undocumented.extra_\" (rank kMiniExtra) has no row "
                "in the docs/lock_hierarchy.md rank table"),
            std::string::npos)
      << result.output;
}

// And the reverse: a table row for a mutex that no longer exists is stale.
TEST_F(LintTest, LocksStaleDocRow) {
  Append("docs/lock_hierarchy.md",
         "| `Ghost.mutex_` | `kMiniCore` | 210 | core | `src/core/g.h` | "
         "nothing | nothing |\n");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("rank table documents mutex \"Ghost.mutex_\", "
                               "which is not declared anywhere in src/"),
            std::string::npos)
      << result.output;
}

// A rank in the enum that no declaration uses is dead weight (or a typo'd
// migration) and must be flagged.
TEST_F(LintTest, LocksDeadRankInEnum) {
  Write("src/util/lock_rank.h", R"lint(
enum class LockStratum : int {
  kUtil = 0,
  kCore = 2,
  kServer = 4,
};
inline constexpr int kLockStratumWidth = 100;
enum class LockRank : int {
  kMiniCore = 210,
  kMiniServer = 410,
  kMiniUnused = 420,
};
)lint");
  Append("src/util/lock_rank.cc", R"lint(
const char* AlsoName(LockRank rank) {
  switch (rank) {
    case LockRank::kMiniUnused: return "kMiniUnused";
  }
  return "";
}
)lint");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("LockRank::kMiniUnused is in the enum but no "
                               "Mutex/MutexCv declaration uses it"),
            std::string::npos)
      << result.output;
}

// Structural breakage (a missing file) is exit 2, distinct from violations
// — CI must not mistake "the lint could not run" for "the lint passed".
TEST_F(LintTest, MissingFileIsAnError) {
  fs::remove(root_ / "src/core/size_model.cc");
  const LintResult result = RunLint(root_);
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("adict_lint: error"), std::string::npos)
      << result.output;
}

}  // namespace
}  // namespace adict
