// Tests for the binary serialization primitives.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.h"
#include "util/serde.h"

namespace adict {
namespace {

TEST(Serde, PodRoundtrip) {
  std::vector<uint8_t> buffer;
  ByteWriter writer(&buffer);
  writer.Write<uint8_t>(0xab);
  writer.Write<uint16_t>(0x1234);
  writer.Write<uint32_t>(0xdeadbeef);
  writer.Write<uint64_t>(0x0123456789abcdefull);
  writer.Write<int32_t>(-42);
  writer.Write<double>(3.25);

  ByteReader reader(buffer.data(), buffer.size());
  EXPECT_EQ(reader.Read<uint8_t>(), 0xab);
  EXPECT_EQ(reader.Read<uint16_t>(), 0x1234);
  EXPECT_EQ(reader.Read<uint32_t>(), 0xdeadbeefu);
  EXPECT_EQ(reader.Read<uint64_t>(), 0x0123456789abcdefull);
  EXPECT_EQ(reader.Read<int32_t>(), -42);
  EXPECT_DOUBLE_EQ(reader.Read<double>(), 3.25);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serde, VectorRoundtrip) {
  std::vector<uint8_t> buffer;
  ByteWriter writer(&buffer);
  const std::vector<uint32_t> values = {1, 2, 3, 0xffffffff};
  writer.WriteVector(values);
  writer.WriteVector(std::vector<uint8_t>{});

  ByteReader reader(buffer.data(), buffer.size());
  EXPECT_EQ(reader.ReadVector<uint32_t>(), values);
  EXPECT_TRUE(reader.ReadVector<uint8_t>().empty());
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serde, StringRoundtripWithEmbeddedNuls) {
  std::vector<uint8_t> buffer;
  ByteWriter writer(&buffer);
  const std::string s("a\0b\0c", 5);
  writer.WriteString(s);
  writer.WriteString("");

  ByteReader reader(buffer.data(), buffer.size());
  EXPECT_EQ(reader.ReadString(), s);
  EXPECT_EQ(reader.ReadString(), "");
}

TEST(Serde, TruncatedReadAborts) {
  std::vector<uint8_t> buffer;
  ByteWriter writer(&buffer);
  writer.Write<uint32_t>(7);
  ByteReader reader(buffer.data(), 2);  // cut short
  EXPECT_DEATH(reader.Read<uint32_t>(), "truncated");
}

TEST(Serde, TruncatedVectorAborts) {
  std::vector<uint8_t> buffer;
  ByteWriter writer(&buffer);
  writer.Write<uint64_t>(1000);  // claims 1000 elements, provides none
  ByteReader reader(buffer.data(), buffer.size());
  EXPECT_DEATH(reader.ReadVector<uint32_t>(), "truncated");
}

TEST(Serde, RecordingReaderSurvivesTruncatedRead) {
  // In kRecord mode an overrun is recorded, not fatal: reads return zeroes
  // and the reader fails fast to the end of the buffer.
  std::vector<uint8_t> buffer;
  ByteWriter writer(&buffer);
  writer.Write<uint32_t>(7);
  ByteReader reader(buffer.data(), 2, ByteReader::OnError::kRecord);
  EXPECT_EQ(reader.Read<uint32_t>(), 0u);
  EXPECT_TRUE(reader.failed());
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_EQ(reader.Read<uint64_t>(), 0u);  // still safe after failure
}

TEST(Serde, RecordingReaderSurvivesOversizedVector) {
  std::vector<uint8_t> buffer;
  ByteWriter writer(&buffer);
  writer.Write<uint64_t>(1000);  // claims 1000 elements, provides none
  ByteReader reader(buffer.data(), buffer.size(), ByteReader::OnError::kRecord);
  EXPECT_TRUE(reader.ReadVector<uint32_t>().empty());
  EXPECT_TRUE(reader.failed());
}

TEST(Serde, RecordingReaderSurvivesOverflowingVectorCount) {
  // A count chosen so that count * sizeof(T) wraps uint64 must not pass the
  // bounds check.
  std::vector<uint8_t> buffer;
  ByteWriter writer(&buffer);
  writer.Write<uint64_t>(0x4000000000000001ull);
  ByteReader reader(buffer.data(), buffer.size(), ByteReader::OnError::kRecord);
  EXPECT_TRUE(reader.ReadVector<uint32_t>().empty());
  EXPECT_TRUE(reader.failed());
}

TEST(Serde, RecordingReaderCleanPathMatchesAbortMode) {
  std::vector<uint8_t> buffer;
  ByteWriter writer(&buffer);
  writer.Write<uint32_t>(0xdeadbeef);
  writer.WriteString("hello");
  ByteReader reader(buffer.data(), buffer.size(), ByteReader::OnError::kRecord);
  EXPECT_EQ(reader.Read<uint32_t>(), 0xdeadbeefu);
  EXPECT_EQ(reader.ReadString(), "hello");
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serde, RandomizedMixedRoundtrip) {
  Rng rng(9);
  for (int round = 0; round < 20; ++round) {
    std::vector<uint8_t> buffer;
    ByteWriter writer(&buffer);
    std::vector<bool> is_pod;
    std::vector<uint64_t> pods;
    std::vector<std::vector<uint16_t>> vectors;
    for (int i = 0; i < 50; ++i) {
      if (rng.NextDouble() < 0.5) {
        is_pod.push_back(true);
        pods.push_back(rng.Next());
        vectors.emplace_back();
        writer.Write<uint64_t>(pods.back());
      } else {
        is_pod.push_back(false);
        pods.push_back(0);
        std::vector<uint16_t> v(rng.Uniform(20));
        for (auto& x : v) x = static_cast<uint16_t>(rng.Next());
        writer.WriteVector(v);
        vectors.push_back(std::move(v));
      }
    }
    ByteReader reader(buffer.data(), buffer.size());
    for (size_t i = 0; i < is_pod.size(); ++i) {
      if (is_pod[i]) {
        ASSERT_EQ(reader.Read<uint64_t>(), pods[i]);
      } else {
        ASSERT_EQ(reader.ReadVector<uint16_t>(), vectors[i]);
      }
    }
    ASSERT_TRUE(reader.exhausted());
  }
}

}  // namespace
}  // namespace adict
