// Memory-pressure feedback tests: providers and parsers, the background
// sampler, the hardened controller input path, and the recompression
// scheduler — including the chaos cases (`mem.sample.fail`,
// `sched.rebuild.fail`) and the rebuild-vs-scan race this file pins down
// for TSan (the tsan CI job builds with -fsanitize=thread and runs this
// binary).
//
// Determinism: almost every scheduler test runs the scheduler in
// synchronous mode and drives it by calling OnSample directly with
// hand-built samples — no sampler thread, no pool, no timing. The race
// tests are the deliberate exceptions.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/compression_manager.h"
#include "core/controller.h"
#include "core/recompression_scheduler.h"
#include "obs/obs.h"
#include "obs/workload_profiler.h"
#include "store/string_column.h"
#include "store/table.h"
#include "util/failpoint.h"
#include "util/memory_pressure.h"

namespace adict {
namespace {

using failpoint::Spec;

class MemoryPressureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DisableAll();
    obs::SetEnabled(true);
    obs::ResetForTest();
  }
  void TearDown() override { failpoint::DisableAll(); }
};

// ---------------------------------------------------------------------------
// Parsers (pure, no filesystem).

TEST_F(MemoryPressureTest, ParseCgroupBytesParsesPlainNumber) {
  StatusOr<uint64_t> bytes = ParseCgroupBytes("123456789\n");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, 123456789u);
}

TEST_F(MemoryPressureTest, ParseCgroupBytesRejectsMaxAndGarbage) {
  EXPECT_FALSE(ParseCgroupBytes("max\n").ok());
  EXPECT_FALSE(ParseCgroupBytes("").ok());
  EXPECT_FALSE(ParseCgroupBytes("12a3").ok());
  EXPECT_FALSE(ParseCgroupBytes("99999999999999999999999999").ok());
}

TEST_F(MemoryPressureTest, ParseCgroupSelfPathFindsV2Line) {
  StatusOr<std::string> path = ParseCgroupSelfPath(
      "12:cpuset:/legacy\n0::/user.slice/session.scope\n");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/user.slice/session.scope");
  EXPECT_FALSE(ParseCgroupSelfPath("12:cpuset:/legacy\n").ok());
}

TEST_F(MemoryPressureTest, ParseStatmRssBytesReadsSecondField) {
  StatusOr<uint64_t> rss = ParseStatmRssBytes("12345 678 90 1 0 2 0\n", 4096);
  ASSERT_TRUE(rss.ok());
  EXPECT_EQ(*rss, 678u * 4096u);
  EXPECT_FALSE(ParseStatmRssBytes("12345", 4096).ok());
}

TEST_F(MemoryPressureTest, ParseMemInfoTotalBytesFindsMemTotal) {
  StatusOr<uint64_t> total = ParseMemInfoTotalBytes(
      "MemTotal:       16319840 kB\nMemFree:         1234 kB\n");
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, uint64_t{16319840} * 1024);
  EXPECT_FALSE(ParseMemInfoTotalBytes("MemFree: 1 kB\n").ok());
}

// ---------------------------------------------------------------------------
// Providers and sampler.

TEST_F(MemoryPressureTest, SimulatedProviderReportsWhatWasSet) {
  SimulatedProvider provider(40, 100);
  StatusOr<MemorySample> sample = provider.Sample();
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->used_bytes, 40u);
  EXPECT_EQ(sample->total_bytes, 100u);
  EXPECT_DOUBLE_EQ(sample->used_fraction(), 0.4);
  EXPECT_EQ(sample->free_bytes(), 60u);

  provider.set_used_bytes(150);  // over budget: free saturates at 0
  sample = provider.Sample();
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->free_bytes(), 0u);

  provider.set_total_bytes(0);
  EXPECT_FALSE(provider.Sample().ok());
}

TEST_F(MemoryPressureTest, DetectMemoryProviderNeverReturnsNull) {
  std::unique_ptr<MemoryProvider> provider = DetectMemoryProvider();
  ASSERT_NE(provider, nullptr);
  // On any Linux at least the /proc provider produces a usable sample.
  StatusOr<MemorySample> sample = provider->Sample();
  ASSERT_TRUE(sample.ok()) << sample.status().ToString();
  EXPECT_GT(sample->total_bytes, 0u);
}

TEST_F(MemoryPressureTest, SampleNowDrivesDeterministicTicks) {
  std::vector<MemorySample> seen;
  MemorySampler sampler(
      std::make_unique<SimulatedProvider>(10, 100),
      [&](const StatusOr<MemorySample>& sample) {
        ASSERT_TRUE(sample.ok());
        seen.push_back(*sample);
      });
  sampler.SampleNow();
  sampler.SampleNow();
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(sampler.num_samples(), 2u);
  EXPECT_EQ(sampler.num_errors(), 0u);
  EXPECT_EQ(sampler.provider_name(), "simulated");
}

TEST_F(MemoryPressureTest, SamplerThreadDeliversSamplesAndStops) {
  std::atomic<uint64_t> delivered{0};
  MemorySampler::Options options;
  options.period_millis = 10;
  MemorySampler sampler(
      std::make_unique<SimulatedProvider>(10, 100),
      [&](const StatusOr<MemorySample>&) {
        delivered.fetch_add(1, std::memory_order_relaxed);
      },
      options);
  sampler.Start();
  EXPECT_TRUE(sampler.running());
  // Start() samples once synchronously, so at least one delivery already
  // happened regardless of scheduling.
  EXPECT_GE(delivered.load(), 1u);
  sampler.Stop();
  sampler.Stop();  // idempotent
  EXPECT_FALSE(sampler.running());
  const uint64_t after_stop = delivered.load();
  EXPECT_EQ(delivered.load(), after_stop);  // no late ticks
}

TEST_F(MemoryPressureTest, SamplerRidesThroughInjectedFailures) {
  failpoint::Enable("mem.sample.fail", Spec::First(2));
  uint64_t errors = 0, good = 0;
  MemorySampler sampler(std::make_unique<SimulatedProvider>(10, 100),
                        [&](const StatusOr<MemorySample>& sample) {
                          (sample.ok() ? good : errors)++;
                        });
  sampler.SampleNow();
  sampler.SampleNow();
  sampler.SampleNow();
  EXPECT_EQ(errors, 2u);
  EXPECT_EQ(good, 1u);
  EXPECT_EQ(sampler.num_errors(), 2u);
  EXPECT_EQ(sampler.num_samples(), 3u);
}

// ---------------------------------------------------------------------------
// Controller input hardening.

TEST_F(MemoryPressureTest, ObserveRejectsMalformedMeasurements) {
  TradeoffController controller;
  const double c_before = controller.c();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(controller.Observe(nan, 100.0), c_before);
  EXPECT_DOUBLE_EQ(controller.Observe(10.0, nan), c_before);
  EXPECT_DOUBLE_EQ(controller.Observe(10.0, 0.0), c_before);
  EXPECT_DOUBLE_EQ(controller.Observe(10.0, -5.0), c_before);
  EXPECT_DOUBLE_EQ(controller.Observe(-1.0, 100.0), c_before);
  EXPECT_DOUBLE_EQ(controller.Observe(200.0, 100.0), c_before);
  EXPECT_DOUBLE_EQ(controller.Observe(inf, inf), c_before);
  // The EMA was never primed: the first *good* observation primes it now.
  EXPECT_LT(controller.smoothed_free_fraction(), 0);
  controller.Observe(50.0, 100.0);
  EXPECT_DOUBLE_EQ(controller.smoothed_free_fraction(), 0.5);

  const double rejected =
      obs::Metrics().GetCounter("controller.observe.rejected")->value();
  EXPECT_EQ(rejected, 7);
}

// ---------------------------------------------------------------------------
// Scheduler fixtures.

std::vector<std::string> MakeStrings(int distinct, int rows,
                                     const std::string& prefix) {
  std::vector<std::string> values;
  values.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    values.push_back(prefix + "_common_stem_" + std::to_string(i % distinct));
  }
  return values;
}

/// A table with two string columns in a deliberately fat format (kArray,
/// raw strings) so a pressure rebuild has bytes to reclaim.
Table MakeFatTable() {
  Table table("pressure");
  table.AddStringColumn(
      "alpha", StringColumn::FromValues(MakeStrings(512, 4096, "alpha"),
                                        DictFormat::kArray));
  table.AddStringColumn(
      "beta", StringColumn::FromValues(MakeStrings(256, 4096, "beta"),
                                       DictFormat::kArray));
  return table;
}

MemorySample Sample(uint64_t used, uint64_t total = 100) {
  MemorySample sample;
  sample.used_bytes = used;
  sample.total_bytes = total;
  return sample;
}

RecompressionScheduler::Options FastOptions() {
  RecompressionScheduler::Options options;
  options.synchronous = true;
  options.smoothing = 1.0;  // level == raw sample, no EMA lag in tests
  options.cooldown_ticks = 2;
  options.advisory_period_ticks = 1;
  options.backoff_after_stalls = 2;
  options.backoff_ticks = 3;
  return options;
}

// ---------------------------------------------------------------------------
// Pressure classification.

TEST_F(MemoryPressureTest, LevelsEscalateWithPressure) {
  Table table = MakeFatTable();
  CompressionManager manager;
  RecompressionScheduler scheduler(&table, &manager, FastOptions());

  scheduler.OnSample(Sample(10));
  EXPECT_EQ(scheduler.level(), PressureLevel::kNone);
  scheduler.OnSample(Sample(75));
  EXPECT_EQ(scheduler.level(), PressureLevel::kAdvisory);
  scheduler.OnSample(Sample(90));
  EXPECT_EQ(scheduler.level(), PressureLevel::kUrgent);
  scheduler.OnSample(Sample(97));
  EXPECT_EQ(scheduler.level(), PressureLevel::kCritical);
  scheduler.Stop();
}

TEST_F(MemoryPressureTest, HysteresisPreventsOscillation) {
  Table table = MakeFatTable();
  CompressionManager manager;
  RecompressionScheduler scheduler(&table, &manager, FastOptions());

  scheduler.OnSample(Sample(86));  // above urgent (0.85)
  EXPECT_EQ(scheduler.level(), PressureLevel::kUrgent);
  // Dips into the hysteresis band (0.82..0.85) hold the level.
  scheduler.OnSample(Sample(84));
  EXPECT_EQ(scheduler.level(), PressureLevel::kUrgent);
  scheduler.OnSample(Sample(83));
  EXPECT_EQ(scheduler.level(), PressureLevel::kUrgent);
  // Clearing the band by the margin drops it.
  scheduler.OnSample(Sample(81));
  EXPECT_EQ(scheduler.level(), PressureLevel::kAdvisory);
  scheduler.OnSample(Sample(10));
  EXPECT_EQ(scheduler.level(), PressureLevel::kNone);
  scheduler.Stop();
}

// ---------------------------------------------------------------------------
// Rebuild behavior.

TEST_F(MemoryPressureTest, CriticalPressureShrinksDictionaries) {
  Table table = MakeFatTable();
  const size_t bytes_before = table.string_column(0).Snapshot()->DictionaryBytes() +
                              table.string_column(1).Snapshot()->DictionaryBytes();
  CompressionManager manager;
  RecompressionScheduler scheduler(&table, &manager, FastOptions());

  // Critical pressure, enough ticks to cycle through both columns.
  for (int i = 0; i < 6; ++i) scheduler.OnSample(Sample(98));

  const RecompressionScheduler::Stats stats = scheduler.stats();
  EXPECT_GE(stats.rebuilds, 2u);
  EXPECT_GT(stats.reclaimed_bytes, 0u);
  const size_t bytes_after = table.string_column(0).Snapshot()->DictionaryBytes() +
                             table.string_column(1).Snapshot()->DictionaryBytes();
  EXPECT_LT(bytes_after, bytes_before);
  // Critical rebuilds force a format change away from the fat array.
  EXPECT_NE(table.string_column(0).Snapshot()->format(), DictFormat::kArray);
  // Every pressure rebuild is decision-logged.
  EXPECT_GE(obs::Decisions().total_pushed(), stats.rebuilds);
  scheduler.Stop();
}

TEST_F(MemoryPressureTest, RebuildPreservesColumnContents) {
  Table table = MakeFatTable();
  const std::vector<std::string> before = [&] {
    std::vector<std::string> rows;
    const std::shared_ptr<const StringColumn> snapshot =
        table.SnapshotStrings("alpha");
    for (uint64_t row = 0; row < snapshot->num_rows(); ++row) {
      rows.push_back(snapshot->GetValue(row));
    }
    return rows;
  }();

  CompressionManager manager;
  RecompressionScheduler scheduler(&table, &manager, FastOptions());
  for (int i = 0; i < 4; ++i) scheduler.OnSample(Sample(98));
  ASSERT_GE(scheduler.stats().rebuilds, 1u);

  const std::shared_ptr<const StringColumn> snapshot =
      table.SnapshotStrings("alpha");
  ASSERT_EQ(snapshot->num_rows(), before.size());
  for (uint64_t row = 0; row < before.size(); ++row) {
    ASSERT_EQ(snapshot->GetValue(row), before[row]) << "row " << row;
  }
  scheduler.Stop();
}

TEST_F(MemoryPressureTest, CooldownStopsBackToBackRebuilds) {
  Table table("single");
  table.AddStringColumn(
      "only", StringColumn::FromValues(MakeStrings(512, 2048, "only"),
                                       DictFormat::kArray));
  CompressionManager manager;
  RecompressionScheduler::Options options = FastOptions();
  options.cooldown_ticks = 100;  // effectively one rebuild ever
  RecompressionScheduler scheduler(&table, &manager, options);

  for (int i = 0; i < 5; ++i) scheduler.OnSample(Sample(90));
  const RecompressionScheduler::Stats stats = scheduler.stats();
  EXPECT_LE(stats.rebuilds + stats.noop_decisions, 1u);
  EXPECT_GE(stats.skipped_cooldown, 1u);
  scheduler.Stop();
}

TEST_F(MemoryPressureTest, EvictsColdestColumnByDecayedHeat) {
  // Two same-shaped columns (equal-length prefixes -> near-identical
  // dictionary bytes), so the ranking is decided by traffic alone.
  Table table("evict");
  table.AddStringColumn(
      "was_hot", StringColumn::FromValues(MakeStrings(512, 4096, "aaaa"),
                                          DictFormat::kArray));
  table.AddStringColumn(
      "is_hot", StringColumn::FromValues(MakeStrings(512, 4096, "bbbb"),
                                         DictFormat::kArray));

  // was_hot saw an order of magnitude more lifetime traffic than is_hot —
  // but long ago. Under the paper's raw lifetime counters it would rank as
  // the hotter column and survive; the decayed heat says otherwise.
  for (int i = 0; i < 5000; ++i) {
    (void)table.strings("was_hot").GetValue(i % 512);
  }
  for (int i = 0; i < 400; ++i) {
    (void)table.strings("is_hot").GetValue(i % 512);
  }
  obs::ColumnHeat* was_hot = table.strings("was_hot").heat();
  ASSERT_NE(was_hot, nullptr);
  was_hot->DecayForTest(600.0);  // 20 half-lives: heat 5000 -> ~0.005
  EXPECT_LT(was_hot->DecayedHeat(), 1.0);
  EXPECT_GT(table.strings("is_hot").heat()->DecayedHeat(), 100.0);

  CompressionManager manager;
  RecompressionScheduler::Options options = FastOptions();
  options.cooldown_ticks = 100;  // one eviction decision, no second pick
  RecompressionScheduler scheduler(&table, &manager, options);

  // One advisory tick: budget for exactly one rebuild.
  scheduler.OnSample(Sample(75));
  scheduler.Stop();

  // The stale column was rebuilt out of the fat array; the currently hot
  // one was left alone.
  EXPECT_NE(table.string_column(0).Snapshot()->format(), DictFormat::kArray);
  EXPECT_EQ(table.string_column(1).Snapshot()->format(), DictFormat::kArray);

  // The decision is visible: the profiler holds the ranking that drove it,
  // coldest first, with the decayed heat it divided by.
  const std::vector<obs::SchedulerRankEntry> ranking =
      obs::Profiler().LatestSchedulerRanking();
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].column, "was_hot");
  EXPECT_EQ(ranking[1].column, "is_hot");
  EXPECT_LT(ranking[0].decayed_heat, 1.0);
  EXPECT_GT(ranking[1].decayed_heat, 100.0);
  EXPECT_GT(ranking[0].score, ranking[1].score);
}

TEST_F(MemoryPressureTest, RebuiltColumnKeepsItsHeatSlot) {
  Table table("keepheat");
  table.AddStringColumn(
      "col", StringColumn::FromValues(MakeStrings(512, 2048, "keep"),
                                      DictFormat::kArray));
  obs::ColumnHeat* slot = table.strings("col").heat();
  ASSERT_NE(slot, nullptr);

  CompressionManager manager;
  RecompressionScheduler scheduler(&table, &manager, FastOptions());
  scheduler.OnSample(Sample(98));
  scheduler.Stop();
  ASSERT_GE(scheduler.stats().rebuilds, 1u);

  // The published rebuild inherited the same slot, so heat keeps
  // accumulating across format changes.
  EXPECT_EQ(table.string_column(0).Snapshot()->heat(), slot);
  const uint64_t before = slot->Totals(obs::ColumnOp::kExtract).count;
  (void)table.strings("col").GetValue(0);
  EXPECT_EQ(slot->Totals(obs::ColumnOp::kExtract).count, before + 1);
}

TEST_F(MemoryPressureTest, StallingRebuildsTriggerBackoff) {
  Table table("minimal");
  // Already-minimal column: tiny dictionary, heavy usage — decisions keep
  // the format (noop) or reclaim nothing, which must back the scheduler
  // off instead of re-deciding every tick.
  table.AddStringColumn("tiny",
                        StringColumn::FromValues(MakeStrings(4, 64, "t")));
  CompressionManager manager;
  RecompressionScheduler::Options options = FastOptions();
  options.cooldown_ticks = 0;
  RecompressionScheduler scheduler(&table, &manager, options);

  for (int i = 0; i < 12; ++i) scheduler.OnSample(Sample(90));
  const RecompressionScheduler::Stats stats = scheduler.stats();
  EXPECT_GE(stats.backoffs, 1u);
  // Backoff means far fewer attempts than ticks.
  EXPECT_LT(stats.rebuilds + stats.noop_decisions + stats.failed_rebuilds,
            stats.ticks);
  scheduler.Stop();
}

TEST_F(MemoryPressureTest, SampleErrorsHoldLastLevelAndSkipEma) {
  Table table = MakeFatTable();
  CompressionManager manager;
  RecompressionScheduler scheduler(&table, &manager, FastOptions());

  scheduler.OnSample(Sample(90));
  EXPECT_EQ(scheduler.level(), PressureLevel::kUrgent);
  const double smoothed_before = scheduler.stats().smoothed_used_fraction;
  scheduler.OnSample(Status::IoError("injected"));
  scheduler.OnSample(Status::IoError("injected"));
  const RecompressionScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.sample_errors, 2u);
  EXPECT_EQ(stats.level, PressureLevel::kUrgent);
  EXPECT_DOUBLE_EQ(stats.smoothed_used_fraction, smoothed_before);
  scheduler.Stop();
}

TEST_F(MemoryPressureTest, InjectedSamplerFailuresLeaveColumnsReadable) {
  Table table = MakeFatTable();
  CompressionManager manager;
  RecompressionScheduler scheduler(&table, &manager, FastOptions());
  failpoint::Enable("mem.sample.fail", Spec::Always());

  MemorySampler sampler(
      std::make_unique<SimulatedProvider>(98, 100),
      [&](const StatusOr<MemorySample>& sample) { scheduler.OnSample(sample); });
  for (int i = 0; i < 3; ++i) sampler.SampleNow();

  EXPECT_EQ(scheduler.stats().sample_errors, 3u);
  EXPECT_EQ(scheduler.stats().rebuilds, 0u);
  // Columns never went anywhere.
  EXPECT_EQ(table.SnapshotStrings("alpha")->num_rows(), 4096u);
  scheduler.Stop();
}

TEST_F(MemoryPressureTest, InjectedRebuildFailuresAreLoggedAndSurvivable) {
  Table table = MakeFatTable();
  CompressionManager manager;
  RecompressionScheduler scheduler(&table, &manager, FastOptions());
  failpoint::Enable("sched.rebuild.fail", Spec::Always());

  for (int i = 0; i < 4; ++i) scheduler.OnSample(Sample(98));

  const RecompressionScheduler::Stats stats = scheduler.stats();
  EXPECT_GE(stats.failed_rebuilds, 1u);
  EXPECT_EQ(stats.rebuilds, 0u);
  EXPECT_GE(failpoint::HitCount("sched.rebuild.fail"), 1u);
  // The failure is attributable in the decision log: the aborted record
  // carries a fallback entry naming the injected failure.
  bool found = false;
  for (const obs::DecisionRecord& record : obs::Decisions().Snapshot()) {
    for (const obs::FallbackEvent& event : record.fallbacks) {
      if (event.reason.find("sched.rebuild.fail") != std::string::npos) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
  // Every column still serves reads, in its original format.
  EXPECT_EQ(table.SnapshotStrings("alpha")->format(), DictFormat::kArray);
  EXPECT_FALSE(table.SnapshotStrings("alpha")->GetValue(0).empty());
  scheduler.Stop();
}

TEST_F(MemoryPressureTest, GuardedBuildFailureDegradesInsteadOfAborting) {
  Table table = MakeFatTable();
  CompressionManager manager;
  RecompressionScheduler scheduler(&table, &manager, FastOptions());
  // Critical pressure forces the smallest (compressed) candidate; failing
  // every compressed build makes the guard walk its chain down to a raw
  // format instead of erroring out.
  failpoint::Enable("repair.build", Spec::Always());
  failpoint::Enable("fc.build", Spec::Always());

  for (int i = 0; i < 4; ++i) scheduler.OnSample(Sample(98));

  const RecompressionScheduler::Stats stats = scheduler.stats();
  EXPECT_GE(stats.rebuilds, 1u);  // degraded, but committed
  EXPECT_FALSE(table.SnapshotStrings("alpha")->GetValue(0).empty());
  scheduler.Stop();
}

TEST_F(MemoryPressureTest, StopTokenHaltsRebuildsAndSampler) {
  Table table = MakeFatTable();
  CompressionManager manager;
  auto provider = std::make_unique<SimulatedProvider>(98, 100);
  RecompressionScheduler scheduler(&table, &manager, FastOptions());
  scheduler.AttachSampler(std::move(provider), 10);

  scheduler.Stop();
  EXPECT_TRUE(scheduler.stopped());
  const RecompressionScheduler::Stats stats = scheduler.stats();
  scheduler.OnSample(Sample(98));  // ignored after stop
  EXPECT_EQ(scheduler.stats().ticks, stats.ticks);
  scheduler.Stop();  // idempotent
}

TEST_F(MemoryPressureTest, PauseSkipsRebuildsButTracksLevel) {
  Table table = MakeFatTable();
  CompressionManager manager;
  RecompressionScheduler scheduler(&table, &manager, FastOptions());
  scheduler.Pause();
  for (int i = 0; i < 4; ++i) scheduler.OnSample(Sample(98));
  EXPECT_EQ(scheduler.level(), PressureLevel::kCritical);
  EXPECT_EQ(scheduler.stats().rebuilds, 0u);
  scheduler.Resume();
  for (int i = 0; i < 4; ++i) scheduler.OnSample(Sample(98));
  EXPECT_GE(scheduler.stats().rebuilds, 1u);
  scheduler.Stop();
}

// ---------------------------------------------------------------------------
// The optimistic-publish primitive.

TEST_F(MemoryPressureTest, PublishIfEpochRefusesStaleWriters) {
  VersionedStringColumn column(
      StringColumn::FromValues(MakeStrings(16, 128, "v")));
  const uint64_t epoch = column.epoch();
  // A competing writer (delta merge) publishes first.
  column.Publish(StringColumn::FromValues(MakeStrings(16, 128, "w")));
  // The stale writer must lose: its input predates the merge.
  EXPECT_FALSE(column.PublishIfEpoch(
      StringColumn::FromValues(MakeStrings(16, 128, "v")), epoch));
  EXPECT_EQ(column.Snapshot()->GetValue(0).rfind("w", 0), 0u);
  // With the current epoch it wins.
  EXPECT_TRUE(column.PublishIfEpoch(
      StringColumn::FromValues(MakeStrings(16, 128, "x")), column.epoch()));
  EXPECT_EQ(column.Snapshot()->GetValue(0).rfind("x", 0), 0u);
}

// ---------------------------------------------------------------------------
// Races, for TSan: rebuilds vs concurrent snapshot scans, and a threaded
// sampler feeding a pool-backed scheduler.

TEST_F(MemoryPressureTest, RebuildsRaceSnapshotScans) {
  Table table = MakeFatTable();
  CompressionManager manager;
  RecompressionScheduler scheduler(&table, &manager, FastOptions());

  // Reference row values, computed before any rebuild.
  std::vector<std::string> expected;
  {
    const std::shared_ptr<const StringColumn> snapshot =
        table.SnapshotStrings("alpha");
    for (uint64_t row = 0; row < snapshot->num_rows(); ++row) {
      expected.push_back(snapshot->GetValue(row));
    }
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> scanners;
  for (int t = 0; t < 4; ++t) {
    scanners.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::shared_ptr<const StringColumn> snapshot =
            table.SnapshotStrings("alpha");
        for (uint64_t row = 0; row < snapshot->num_rows(); row += 97) {
          ASSERT_EQ(snapshot->GetValue(row), expected[row]);
        }
      }
    });
  }

  // Pressure swings drive repeated rebuilds while the scanners run.
  for (int i = 0; i < 20; ++i) {
    scheduler.OnSample(Sample(i % 2 ? 98 : 90));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : scanners) thread.join();

  EXPECT_GE(scheduler.stats().rebuilds, 1u);
  scheduler.Stop();
}

TEST_F(MemoryPressureTest, ThreadedSamplerAsyncRebuildsAreSafe) {
  Table table = MakeFatTable();
  CompressionManager manager;
  RecompressionScheduler::Options options;  // async: rebuilds on the pool
  options.smoothing = 1.0;
  options.cooldown_ticks = 0;
  RecompressionScheduler scheduler(&table, &manager, options);
  auto provider = std::make_unique<SimulatedProvider>(98, 100);
  SimulatedProvider* raw_provider = provider.get();
  scheduler.AttachSampler(std::move(provider), 5);

  std::atomic<bool> stop{false};
  std::thread scanner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::shared_ptr<const StringColumn> snapshot =
          table.SnapshotStrings("beta");
      ASSERT_FALSE(snapshot->GetValue(0).empty());
    }
  });

  // Let the sampler thread drive a few periods, wobbling the budget.
  for (int i = 0; i < 10; ++i) {
    raw_provider->set_used_bytes(i % 2 ? 98 : 60);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  scheduler.Stop();
  stop.store(true, std::memory_order_relaxed);
  scanner.join();
  EXPECT_GE(scheduler.stats().ticks, 1u);
}

}  // namespace
}  // namespace adict
