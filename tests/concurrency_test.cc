// Concurrency regression tests, meant to run under ThreadSanitizer (the
// tsan CI job builds with -fsanitize=thread and runs this binary).
//
// Two of these are regressions for data races fixed when the tree was
// annotated for -Wthread-safety:
//   - StringColumn's usage counters were plain mutable ints mutated from
//     const accessors; a read-only column shared across scan threads raced.
//     They are relaxed atomics now.
//   - TradeoffController's c_ / smoothed state was written by Observe()
//     while merge paths read c() through a shared const CompressionManager.
//     Both are mutex-guarded now.
// The rest pin down the documented thread-safety contracts of the
// observability layer (metrics, decision log, tracer) and fail points so
// TSan exercises every lock and every release/acquire pair in one binary.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/controller.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/string_column.h"
#include "util/failpoint.h"

namespace adict {
namespace {

constexpr int kThreads = 4;
constexpr int kIterations = 500;

std::vector<std::string> MakeValues(int distinct, int rows) {
  std::vector<std::string> values;
  values.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    values.push_back("value_" + std::to_string(i % distinct) + "_payload");
  }
  return values;
}

// Regression: concurrent const accessors of one shared column raced on the
// usage counters before they became atomics. The counts are also asserted:
// relaxed increments must not lose updates.
TEST(ConcurrencyTest, StringColumnSharedReaders) {
  const std::vector<std::string> values = MakeValues(64, 512);
  const StringColumn column = StringColumn::FromValues(values);
  const uint32_t distinct = column.num_distinct();

  std::atomic<bool> stop{false};
  std::thread observer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ColumnUsage usage = column.TracedUsage(1.0);
      ASSERT_LE(usage.num_locates, usage.num_extracts + usage.num_locates);
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&column, &values, distinct, t] {
      uint64_t scanned = 0;
      for (int i = 0; i < kIterations; ++i) {
        const uint64_t row = (t * kIterations + i) % column.num_rows();
        EXPECT_EQ(column.GetValue(row), values[row]);
        EXPECT_TRUE(column.Locate(values[row]).found);
        column.ScanDictionary(0, 4, [&scanned](uint32_t, std::string_view sv) {
          scanned += sv.size();
        });
      }
      EXPECT_GT(scanned, 0u);
      (void)distinct;
    });
  }
  for (std::thread& reader : readers) reader.join();
  stop.store(true, std::memory_order_relaxed);
  observer.join();

  // GetValue = 1 extract, ScanDictionary(0, 4) = 4 extracts, Locate = 1
  // locate; nothing may be lost.
  const ColumnUsage usage = column.TracedUsage(1.0);
  EXPECT_EQ(usage.num_extracts,
            static_cast<uint64_t>(kThreads) * kIterations * (1 + 4));
  EXPECT_EQ(usage.num_locates, static_cast<uint64_t>(kThreads) * kIterations);
}

// Regression: Observe() used to write c_ / smoothed_free_fraction_ with no
// synchronization against concurrent c() readers.
TEST(ConcurrencyTest, TradeoffControllerObserveVsReaders) {
  TradeoffController::Options options;
  options.min_c = 1e-3;
  options.max_c = 10.0;
  TradeoffController controller(options);

  std::vector<std::thread> observers;
  for (int t = 0; t < 2; ++t) {
    observers.emplace_back([&controller, t] {
      for (int i = 0; i < kIterations; ++i) {
        // Alternate pressure and head-room so c actually moves both ways.
        const double free_bytes = ((i + t) % 2 == 0) ? 10.0 : 90.0;
        const double c = controller.Observe(free_bytes, 100.0);
        EXPECT_GE(c, 1e-3);
        EXPECT_LE(c, 10.0);
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&controller] {
      for (int i = 0; i < kIterations; ++i) {
        const double c = controller.c();
        EXPECT_GE(c, 1e-3);
        EXPECT_LE(c, 10.0);
        const double smoothed = controller.smoothed_free_fraction();
        EXPECT_LE(smoothed, 1.0);
      }
    });
  }
  for (std::thread& thread : observers) thread.join();
  for (std::thread& thread : readers) thread.join();

  EXPECT_GE(controller.c(), 1e-3);
  EXPECT_LE(controller.c(), 10.0);
}

TEST(ConcurrencyTest, MetricsRegistryRegisterRecordSnapshot) {
  obs::MetricsRegistry registry;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      // Every thread resolves the same names, racing registration on the
      // first iteration, then increments through the stable pointers.
      const std::string counter_name =
          "test.concurrency.counter." + std::to_string(t % 2);
      for (int i = 0; i < kIterations; ++i) {
        registry.GetCounter(counter_name)->Increment();
        registry.GetGauge("test.concurrency.gauge")->Set(i);
        registry.GetHistogram("test.concurrency.latency")->Observe(i % 100);
      }
    });
  }
  std::thread snapshotter([&registry] {
    for (int i = 0; i < 50; ++i) {
      for (const obs::MetricsRegistry::Entry* entry : registry.Entries()) {
        ASSERT_NE(entry, nullptr);
        if (entry->histogram != nullptr) {
          EXPECT_GE(entry->histogram->Quantile(0.5), 0.0);
        }
      }
    }
  });
  for (std::thread& writer : writers) writer.join();
  snapshotter.join();

  uint64_t total = 0;
  for (const obs::MetricsRegistry::Entry* entry : registry.Entries()) {
    if (entry->counter != nullptr) total += entry->counter->value();
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kIterations);
  const obs::Histogram* histogram =
      registry.GetHistogram("test.concurrency.latency");
  EXPECT_EQ(histogram->count(),
            static_cast<uint64_t>(kThreads) * kIterations);
}

TEST(ConcurrencyTest, DecisionLogPushRecordSnapshot) {
  obs::DecisionLog log(/*capacity=*/64);
  std::atomic<uint64_t> recorded{0};

  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&log, &recorded, t] {
      const std::string column_id = "col-" + std::to_string(t);
      for (int i = 0; i < kIterations; ++i) {
        obs::DecisionRecord record;
        record.column_id = column_id;
        record.predicted_dict_bytes = 1000.0;
        const uint64_t sequence = log.Push(std::move(record));
        log.RecordFallback(sequence, obs::FallbackEvent{});
        // May legitimately fail if the ring evicted the record already.
        if (log.RecordActual(sequence, 1050.0)) {
          recorded.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread snapshotter([&log] {
    for (int i = 0; i < 50; ++i) {
      const std::vector<obs::DecisionRecord> snapshot = log.Snapshot();
      EXPECT_LE(snapshot.size(), log.capacity());
      (void)log.accuracy();
      (void)log.size();
      (void)log.evicted();
    }
  });
  for (std::thread& producer : producers) producer.join();
  snapshotter.join();

  EXPECT_EQ(log.total_pushed(), static_cast<uint64_t>(kThreads) * kIterations);
  const obs::PredictionAccuracy accuracy = log.accuracy();
  EXPECT_EQ(accuracy.num_predictions, recorded.load());
  EXPECT_GT(accuracy.num_predictions, 0u);
  EXPECT_NEAR(accuracy.mean_abs_rel_error(), 50.0 / 1050.0, 1e-9);
}

TEST(ConcurrencyTest, TracerSpansVsSnapshot) {
  obs::SetTraceEnabled(true);
  obs::Trace().Clear();

  std::vector<std::thread> spanners;
  for (int t = 0; t < kThreads; ++t) {
    spanners.emplace_back([] {
      for (int i = 0; i < kIterations; ++i) {
        ADICT_TRACE_SPAN("test.concurrency.outer");
        { ADICT_TRACE_SPAN("test.concurrency.inner"); }
      }
    });
  }
  std::thread snapshotter([] {
    for (int i = 0; i < 50; ++i) {
      const std::vector<obs::TraceEvent> events = obs::Trace().Snapshot();
      for (const obs::TraceEvent& event : events) {
        ASSERT_NE(event.name, nullptr);  // a torn event would be garbage
      }
    }
  });
  for (std::thread& spanner : spanners) spanner.join();
  snapshotter.join();
  obs::SetTraceEnabled(false);

  const std::vector<obs::TraceEvent> events = obs::Trace().Snapshot();
  // Buffers are bounded, so allow drops; everything recorded must be one of
  // our two span names and properly nested (inner at depth outer+1).
  EXPECT_GT(events.size(), 0u);
  for (const obs::TraceEvent& event : events) {
    const std::string_view name = event.name;
    EXPECT_TRUE(name == "test.concurrency.outer" ||
                name == "test.concurrency.inner")
        << name;
    EXPECT_LE(event.depth, 1u);
  }
  obs::Trace().Clear();
}

TEST(ConcurrencyTest, FailpointHitsVsControlPlane) {
  failpoint::DisableAll();
  // first:N with a fixed total hit count: exactly N hits fire, no matter
  // how the threads interleave.
  constexpr uint64_t kFires = 100;
  failpoint::Enable("test.concurrency.fp", failpoint::Spec::First(kFires));

  std::atomic<uint64_t> fired{0};
  std::vector<std::thread> hitters;
  for (int t = 0; t < kThreads; ++t) {
    hitters.emplace_back([&fired] {
      for (int i = 0; i < kIterations; ++i) {
        if (ADICT_FAIL_POINT("test.concurrency.fp")) {
          fired.fetch_add(1, std::memory_order_relaxed);
        }
        // A second point whose spec the main thread flips concurrently;
        // only the absence of races matters, not whether it fires.
        (void)ADICT_FAIL_POINT("test.concurrency.toggled");
      }
    });
  }
  std::thread toggler([] {
    for (int i = 0; i < 50; ++i) {
      failpoint::Enable("test.concurrency.toggled",
                        failpoint::Spec::Prob(0.5));
      (void)failpoint::HitCount("test.concurrency.toggled");
      (void)failpoint::ActiveNames();
      failpoint::Disable("test.concurrency.toggled");
    }
  });
  for (std::thread& hitter : hitters) hitter.join();
  toggler.join();

  EXPECT_EQ(failpoint::HitCount("test.concurrency.fp"),
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(fired.load(), kFires);
  failpoint::DisableAll();
}

}  // namespace
}  // namespace adict
