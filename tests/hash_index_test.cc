// Tests for the hash-based equality-locate accelerator.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datasets/generators.h"
#include "dict/hash_index.h"
#include "util/rng.h"

namespace adict {
namespace {

class HashIndexFormatTest : public ::testing::TestWithParam<DictFormat> {};

TEST_P(HashIndexFormatTest, AgreesWithLocateOnHitsAndMisses) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("mat", 2000, 1);
  auto dict = BuildDictionary(GetParam(), sorted);
  const HashLocateIndex index(*dict);

  for (uint32_t id = 0; id < dict->size(); ++id) {
    ASSERT_EQ(index.Lookup(sorted[id]), id);
  }
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    std::string probe = sorted[rng.Uniform(sorted.size())];
    probe.push_back('!');  // not in the dictionary
    ASSERT_EQ(index.Lookup(probe), HashLocateIndex::kNotFound);
  }
  EXPECT_EQ(index.Lookup(""), HashLocateIndex::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(
    SomeFormats, HashIndexFormatTest,
    ::testing::Values(DictFormat::kArray, DictFormat::kArrayFixed,
                      DictFormat::kFcBlockRp12, DictFormat::kColumnBc),
    [](const ::testing::TestParamInfo<DictFormat>& info) {
      std::string name(DictFormatName(info.param));
      std::replace(name.begin(), name.end(), ' ', '_');
      return name;
    });

TEST(HashIndex, HandlesSimilarStringsWithoutFalsePositives) {
  // Near-identical strings stress the fingerprint path.
  std::vector<std::string> sorted;
  for (int i = 0; i < 5000; ++i) sorted.push_back("key-" + std::to_string(i));
  sorted = SortedUnique(std::move(sorted));
  auto dict = BuildDictionary(DictFormat::kFcBlock, sorted);
  const HashLocateIndex index(*dict);
  for (uint32_t id = 0; id < dict->size(); id += 13) {
    ASSERT_EQ(index.Lookup(sorted[id]), id);
  }
  EXPECT_EQ(index.Lookup("key-99999"), HashLocateIndex::kNotFound);
  EXPECT_EQ(index.Lookup("key-"), HashLocateIndex::kNotFound);
}

TEST(HashIndex, MemoryIsEightishBytesPerEntry) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("engl", 4000, 3);
  auto dict = BuildDictionary(DictFormat::kArray, sorted);
  const HashLocateIndex index(*dict);
  // Power-of-two capacity at load factor <= 0.5: between 8 and 32 bytes per
  // entry.
  EXPECT_GE(index.MemoryBytes(), sorted.size() * 8u);
  EXPECT_LE(index.MemoryBytes(), sorted.size() * 32u + sizeof(index));
}

TEST(HashIndex, TinyDictionary) {
  const std::vector<std::string> sorted = {"only"};
  auto dict = BuildDictionary(DictFormat::kArray, sorted);
  const HashLocateIndex index(*dict);
  EXPECT_EQ(index.Lookup("only"), 0u);
  EXPECT_EQ(index.Lookup("other"), HashLocateIndex::kNotFound);
}

}  // namespace
}  // namespace adict
