// Corruption sweep over the persistence envelope: for every dictionary
// format, every single-byte flip and every truncation point of a serialized
// image must yield a non-OK Status or a working dictionary — never an abort
// and never an out-of-bounds read. (Replaces the former death-test coverage
// of truncated images with an exhaustive non-fatal sweep.)
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "datasets/generators.h"
#include "dict/serialization.h"
#include "util/serde.h"

namespace adict {
namespace {

std::vector<std::string> FuzzInput() {
  // Small but structured enough to exercise every codec's tables.
  return GenerateSurveyDataset("mat", 80, 11);
}

class CorruptionFuzzTest : public ::testing::TestWithParam<DictFormat> {};

TEST_P(CorruptionFuzzTest, EveryByteFlipIsRejectedOrHarmless) {
  const std::vector<std::string> sorted = FuzzInput();
  auto dict = BuildDictionary(GetParam(), sorted);
  std::vector<uint8_t> buffer;
  SaveDictionary(*dict, &buffer);

  for (size_t pos = 0; pos < buffer.size(); ++pos) {
    buffer[pos] ^= 0xff;
    const StatusOr<std::unique_ptr<Dictionary>> loaded =
        LoadDictionary(buffer);
    // The v2 checksum covers format tag, length, and payload; the magic,
    // version, and CRC fields are self-checking. A flipped byte anywhere
    // must therefore be detected.
    EXPECT_FALSE(loaded.ok()) << "byte " << pos << " of " << buffer.size();
    buffer[pos] ^= 0xff;
  }
}

TEST_P(CorruptionFuzzTest, EveryTruncationIsRejected) {
  const std::vector<std::string> sorted = FuzzInput();
  auto dict = BuildDictionary(GetParam(), sorted);
  std::vector<uint8_t> full;
  SaveDictionary(*dict, &full);

  for (size_t len = 0; len < full.size(); ++len) {
    const std::vector<uint8_t> prefix(full.begin(), full.begin() + len);
    const StatusOr<std::unique_ptr<Dictionary>> loaded =
        LoadDictionary(prefix);
    ASSERT_FALSE(loaded.ok()) << "length " << len << " of " << full.size();
    const StatusCode code = loaded.status().code();
    EXPECT_TRUE(code == StatusCode::kTruncated ||
                code == StatusCode::kCorruption)
        << "length " << len << ": " << loaded.status().ToString();
  }
}

TEST_P(CorruptionFuzzTest, LegacyV1FlipsNeverAbort) {
  // v1 images carry no checksum, so corruption reaches the deserializers;
  // the bounded recording reader plus structural checks must contain it.
  // Loads may succeed (flips the structure checks cannot see), but must
  // never abort or overrun the buffer.
  const std::vector<std::string> sorted = FuzzInput();
  auto dict = BuildDictionary(GetParam(), sorted);
  std::vector<uint8_t> buffer;
  ByteWriter writer(&buffer);
  writer.Write<uint32_t>(0x43494441u);  // magic
  writer.Write<uint16_t>(1);            // legacy version
  writer.Write<uint16_t>(static_cast<uint16_t>(dict->format()));
  dict->Serialize(&writer);

  for (size_t pos = 0; pos < buffer.size(); ++pos) {
    for (uint8_t flip : {uint8_t{0x01}, uint8_t{0xff}}) {
      buffer[pos] ^= flip;
      const StatusOr<std::unique_ptr<Dictionary>> loaded =
          LoadDictionary(buffer);
      if (loaded.ok()) {
        // Whatever loaded must at least be self-consistent enough to
        // report its shape without touching out-of-bounds memory.
        (void)(*loaded)->size();
        (void)(*loaded)->format();
        (void)(*loaded)->MemoryBytes();
      }
      buffer[pos] ^= flip;
    }
  }
}

TEST_P(CorruptionFuzzTest, LegacyV1TruncationsNeverAbort) {
  const std::vector<std::string> sorted = FuzzInput();
  auto dict = BuildDictionary(GetParam(), sorted);
  std::vector<uint8_t> full;
  ByteWriter writer(&full);
  writer.Write<uint32_t>(0x43494441u);
  writer.Write<uint16_t>(1);
  writer.Write<uint16_t>(static_cast<uint16_t>(dict->format()));
  dict->Serialize(&writer);

  for (size_t len = 0; len < full.size(); ++len) {
    const std::vector<uint8_t> prefix(full.begin(), full.begin() + len);
    const StatusOr<std::unique_ptr<Dictionary>> loaded =
        LoadDictionary(prefix);
    if (loaded.ok()) {
      (void)(*loaded)->size();
      (void)(*loaded)->MemoryBytes();
    }
  }
}

TEST_P(CorruptionFuzzTest, IntactImageStillLoadsAfterSweep) {
  // Sanity: the sweep above must be rejecting corruption, not all input.
  const std::vector<std::string> sorted = FuzzInput();
  auto dict = BuildDictionary(GetParam(), sorted);
  std::vector<uint8_t> buffer;
  SaveDictionary(*dict, &buffer);
  const StatusOr<std::unique_ptr<Dictionary>> loaded = LoadDictionary(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (uint32_t id = 0; id < (*loaded)->size(); ++id) {
    ASSERT_EQ((*loaded)->Extract(id), sorted[id]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, CorruptionFuzzTest,
    ::testing::ValuesIn(AllDictFormats().begin(), AllDictFormats().end()),
    [](const ::testing::TestParamInfo<DictFormat>& info) {
      std::string name(DictFormatName(info.param));
      std::replace(name.begin(), name.end(), ' ', '_');
      return name;
    });

}  // namespace
}  // namespace adict
