// Tests for the named fail-point registry (fault injection).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/failpoint.h"

namespace adict {
namespace {

using failpoint::Spec;

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisableAll(); }
};

TEST_F(FailpointTest, InertByDefaultButCounted) {
  EXPECT_FALSE(ADICT_FAIL_POINT("test.inert"));
  EXPECT_FALSE(ADICT_FAIL_POINT("test.inert"));
  EXPECT_EQ(failpoint::HitCount("test.inert"), 2u);
  EXPECT_EQ(failpoint::HitCount("test.never_hit"), 0u);
}

TEST_F(FailpointTest, AlwaysFiresEveryHit) {
  failpoint::Enable("test.always", Spec::Always());
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(ADICT_FAIL_POINT("test.always"));
  EXPECT_EQ(failpoint::HitCount("test.always"), 3u);
}

TEST_F(FailpointTest, NthFiresExactlyOnce) {
  failpoint::Enable("test.nth", Spec::Nth(3));
  EXPECT_FALSE(ADICT_FAIL_POINT("test.nth"));
  EXPECT_FALSE(ADICT_FAIL_POINT("test.nth"));
  EXPECT_TRUE(ADICT_FAIL_POINT("test.nth"));
  EXPECT_FALSE(ADICT_FAIL_POINT("test.nth"));
}

TEST_F(FailpointTest, FirstFiresLeadingHits) {
  failpoint::Enable("test.first", Spec::First(2));
  EXPECT_TRUE(ADICT_FAIL_POINT("test.first"));
  EXPECT_TRUE(ADICT_FAIL_POINT("test.first"));
  EXPECT_FALSE(ADICT_FAIL_POINT("test.first"));
}

TEST_F(FailpointTest, ProbZeroNeverFiresProbOneAlwaysFires) {
  failpoint::SetSeed(7);
  failpoint::Enable("test.p0", Spec::Prob(0.0));
  failpoint::Enable("test.p1", Spec::Prob(1.0));
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(ADICT_FAIL_POINT("test.p0"));
    EXPECT_TRUE(ADICT_FAIL_POINT("test.p1"));
  }
}

TEST_F(FailpointTest, ProbHalfFiresSometimes) {
  failpoint::SetSeed(42);
  failpoint::Enable("test.p50", Spec::Prob(0.5));
  int fired = 0;
  for (int i = 0; i < 200; ++i) fired += ADICT_FAIL_POINT("test.p50");
  EXPECT_GT(fired, 50);
  EXPECT_LT(fired, 150);
}

TEST_F(FailpointTest, DisableStopsFiringKeepsCounting) {
  failpoint::Enable("test.dis", Spec::Always());
  EXPECT_TRUE(ADICT_FAIL_POINT("test.dis"));
  failpoint::Disable("test.dis");
  EXPECT_FALSE(ADICT_FAIL_POINT("test.dis"));
  EXPECT_GE(failpoint::HitCount("test.dis"), 1u);
}

TEST_F(FailpointTest, EnableResetsHitCount) {
  (void)ADICT_FAIL_POINT("test.reset");
  (void)ADICT_FAIL_POINT("test.reset");
  failpoint::Enable("test.reset", Spec::Nth(1));
  EXPECT_EQ(failpoint::HitCount("test.reset"), 0u);
  EXPECT_TRUE(ADICT_FAIL_POINT("test.reset"));  // hit 1 after the reset
}

TEST_F(FailpointTest, ParseSpecAcceptsCatalog) {
  Spec spec;
  ASSERT_TRUE(failpoint::ParseSpec("off", &spec));
  EXPECT_EQ(spec.mode, Spec::Mode::kOff);
  ASSERT_TRUE(failpoint::ParseSpec("always", &spec));
  EXPECT_EQ(spec.mode, Spec::Mode::kAlways);
  ASSERT_TRUE(failpoint::ParseSpec("nth:4", &spec));
  EXPECT_EQ(spec.mode, Spec::Mode::kNth);
  EXPECT_EQ(spec.n, 4u);
  ASSERT_TRUE(failpoint::ParseSpec("first:2", &spec));
  EXPECT_EQ(spec.mode, Spec::Mode::kFirst);
  EXPECT_EQ(spec.n, 2u);
  ASSERT_TRUE(failpoint::ParseSpec("prob:0.25", &spec));
  EXPECT_EQ(spec.mode, Spec::Mode::kProb);
  EXPECT_DOUBLE_EQ(spec.probability, 0.25);
}

TEST_F(FailpointTest, ParseSpecRejectsGarbage) {
  Spec spec;
  EXPECT_FALSE(failpoint::ParseSpec("", &spec));
  EXPECT_FALSE(failpoint::ParseSpec("sometimes", &spec));
  EXPECT_FALSE(failpoint::ParseSpec("nth:", &spec));
  EXPECT_FALSE(failpoint::ParseSpec("nth:x", &spec));
  EXPECT_FALSE(failpoint::ParseSpec("prob:2", &spec));
  EXPECT_FALSE(failpoint::ParseSpec("prob:-0.5", &spec));
}

TEST_F(FailpointTest, EnableFromStringAndActiveNames) {
  EXPECT_TRUE(failpoint::EnableFromString("test.env=first:1"));
  EXPECT_FALSE(failpoint::EnableFromString("missing-equals"));
  EXPECT_FALSE(failpoint::EnableFromString("test.bad=banana"));
  const std::vector<std::string> active = failpoint::ActiveNames();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], "test.env");
  EXPECT_TRUE(ADICT_FAIL_POINT("test.env"));
  EXPECT_FALSE(ADICT_FAIL_POINT("test.env"));
}

TEST_F(FailpointTest, DisableAllClearsEverything) {
  failpoint::Enable("test.a", Spec::Always());
  failpoint::Enable("test.b", Spec::Always());
  failpoint::DisableAll();
  EXPECT_TRUE(failpoint::ActiveNames().empty());
  EXPECT_FALSE(ADICT_FAIL_POINT("test.a"));
  EXPECT_EQ(failpoint::HitCount("test.b"), 0u);
}

}  // namespace
}  // namespace adict
