// Tests for all 18 dictionary formats: extract/locate correctness against a
// reference implementation, edge cases, and format-specific behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "datasets/generators.h"
#include "dict/array_dict.h"
#include "dict/column_bc.h"
#include "dict/dictionary.h"
#include "dict/front_coding.h"
#include "util/rng.h"

namespace adict {
namespace {

/// Reference locate: std::lower_bound semantics per paper Definition 1.
LocateResult ReferenceLocate(const std::vector<std::string>& sorted,
                             std::string_view str) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), str);
  const uint32_t id = static_cast<uint32_t>(it - sorted.begin());
  return {id, it != sorted.end() && *it == str};
}

void ExpectDictionaryMatches(const Dictionary& dict,
                             const std::vector<std::string>& sorted,
                             Rng* rng) {
  ASSERT_EQ(dict.size(), sorted.size());

  // Every entry extracts exactly.
  for (uint32_t id = 0; id < dict.size(); ++id) {
    ASSERT_EQ(dict.Extract(id), sorted[id]) << "id " << id;
  }

  // ExtractInto appends (does not clear).
  if (!sorted.empty()) {
    std::string buf = "prefix:";
    dict.ExtractInto(0, &buf);
    EXPECT_EQ(buf, "prefix:" + sorted[0]);
  }

  // Locate finds every entry.
  for (uint32_t id = 0; id < dict.size(); ++id) {
    const LocateResult r = dict.Locate(sorted[id]);
    ASSERT_TRUE(r.found) << sorted[id];
    ASSERT_EQ(r.id, id) << sorted[id];
  }

  // Locate agrees with the reference on probes that are mostly misses:
  // mutations of existing strings, plus boundary probes.
  std::vector<std::string> probes = {"", "\x01", "zzzzzzzzzzz",
                                     std::string(1, '\x7f')};
  for (int i = 0; i < 200 && !sorted.empty(); ++i) {
    std::string probe = sorted[rng->Uniform(sorted.size())];
    switch (rng->Uniform(4)) {
      case 0:
        probe += static_cast<char>('a' + rng->Uniform(26));
        break;
      case 1:
        if (!probe.empty()) probe.pop_back();
        break;
      case 2:
        if (!probe.empty()) {
          probe[rng->Uniform(probe.size())] =
              static_cast<char>('!' + rng->Uniform(90));
        }
        break;
      default:
        probe = probe.substr(probe.size() / 2);
        break;
    }
    probes.push_back(std::move(probe));
  }
  for (const std::string& probe : probes) {
    const LocateResult expected = ReferenceLocate(sorted, probe);
    const LocateResult actual = dict.Locate(probe);
    ASSERT_EQ(actual.id, expected.id) << "probe '" << probe << "'";
    ASSERT_EQ(actual.found, expected.found) << "probe '" << probe << "'";
  }
}

class DictFormatTest : public ::testing::TestWithParam<DictFormat> {};

TEST_P(DictFormatTest, MaterialNumbers) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("mat", 2000, 1);
  auto dict = BuildDictionary(GetParam(), sorted);
  Rng rng(1);
  ExpectDictionaryMatches(*dict, sorted, &rng);
}

TEST_P(DictFormatTest, SourceLines) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("src", 1500, 2);
  auto dict = BuildDictionary(GetParam(), sorted);
  Rng rng(2);
  ExpectDictionaryMatches(*dict, sorted, &rng);
}

TEST_P(DictFormatTest, VariableLengthRandomStrings) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("rand2", 800, 3);
  auto dict = BuildDictionary(GetParam(), sorted);
  Rng rng(3);
  ExpectDictionaryMatches(*dict, sorted, &rng);
}

TEST_P(DictFormatTest, TinyDictionary) {
  const std::vector<std::string> sorted = {"AUTOMOBILE", "BUILDING",
                                           "FURNITURE", "HOUSEHOLD",
                                           "MACHINERY"};
  auto dict = BuildDictionary(GetParam(), sorted);
  Rng rng(4);
  ExpectDictionaryMatches(*dict, sorted, &rng);
}

TEST_P(DictFormatTest, SingleEntry) {
  const std::vector<std::string> sorted = {"only"};
  auto dict = BuildDictionary(GetParam(), sorted);
  EXPECT_EQ(dict->size(), 1u);
  EXPECT_EQ(dict->Extract(0), "only");
  EXPECT_EQ(dict->Locate("only"), (LocateResult{0, true}));
  EXPECT_EQ(dict->Locate("a"), (LocateResult{0, false}));
  EXPECT_EQ(dict->Locate("z"), (LocateResult{1, false}));
}

TEST_P(DictFormatTest, SharedPrefixHeavyData) {
  // Long runs of shared prefixes exercise front coding; sorted URLs.
  const std::vector<std::string> sorted = GenerateSurveyDataset("url", 1200, 5);
  auto dict = BuildDictionary(GetParam(), sorted);
  Rng rng(5);
  ExpectDictionaryMatches(*dict, sorted, &rng);
}

TEST_P(DictFormatTest, BlockBoundarySizes) {
  // Sizes around the fc (16) and column bc (64) block sizes.
  for (size_t n : {15u, 16u, 17u, 63u, 64u, 65u, 128u}) {
    const std::vector<std::string> sorted = GenerateSurveyDataset("engl", n, n);
    auto dict = BuildDictionary(GetParam(), sorted);
    Rng rng(n);
    ExpectDictionaryMatches(*dict, sorted, &rng);
  }
}

TEST_P(DictFormatTest, MemoryBytesIsPositiveAndPlausible) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("mat", 1000, 7);
  auto dict = BuildDictionary(GetParam(), sorted);
  const size_t memory = dict->MemoryBytes();
  EXPECT_GT(memory, 0u);
  // No format should need more than ~30x the raw data on this input.
  EXPECT_LT(memory, 30 * RawDataBytes(sorted) + (1 << 16));
}

TEST_P(DictFormatTest, FormatAccessorRoundtrips) {
  const std::vector<std::string> sorted = {"a", "b", "c"};
  auto dict = BuildDictionary(GetParam(), sorted);
  EXPECT_EQ(dict->format(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, DictFormatTest,
    ::testing::ValuesIn(AllDictFormats().begin(), AllDictFormats().end()),
    [](const ::testing::TestParamInfo<DictFormat>& info) {
      std::string name(DictFormatName(info.param));
      std::replace(name.begin(), name.end(), ' ', '_');
      return name;
    });

// -- Format-specific behaviour ------------------------------------------------

TEST(RawArrayDict, ViewIsZeroCopy) {
  const std::vector<std::string> sorted = {"alpha", "beta", "gamma"};
  auto dict = RawArrayDict::Build(sorted);
  EXPECT_EQ(dict->View(1), "beta");
}

TEST(FixedArrayDict, SlotWidthIsLongestString) {
  const std::vector<std::string> sorted = {"ab", "abcdef", "b"};
  auto dict = FixedArrayDict::Build(sorted);
  EXPECT_EQ(dict->slot_width(), 6u);
  // Memory is #strings * width plus the object header.
  EXPECT_GE(dict->MemoryBytes(), 3u * 6u);
  EXPECT_LE(dict->MemoryBytes(), 3u * 6u + sizeof(FixedArrayDict));
}

TEST(FixedArrayDict, SmallestForTinyLowCardinalityColumns) {
  // The paper notes array fixed wins for the numerous tiny dictionaries
  // (e.g. C_MKTSEGMENT) thanks to its zero pointer overhead.
  const std::vector<std::string> sorted = {"AUTOMOBILE", "BUILDING",
                                           "FURNITURE", "HOUSEHOLD",
                                           "MACHINERY"};
  auto fixed = BuildDictionary(DictFormat::kArrayFixed, sorted);
  auto array = BuildDictionary(DictFormat::kArray, sorted);
  EXPECT_LT(fixed->MemoryBytes(), array->MemoryBytes());
}

TEST(ColumnBc, WinsOnFixedLengthStructuredData) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("hash", 3000, 8);
  auto column_bc = BuildDictionary(DictFormat::kColumnBc, sorted);
  auto array = BuildDictionary(DictFormat::kArray, sorted);
  // Hex payload is 4 bits per char; column bc must clearly beat the raw
  // array (paper Figure 4).
  EXPECT_LT(column_bc->MemoryBytes(), array->MemoryBytes() * 2 / 3);
}

TEST(ColumnBc, DegeneratesOnVariableLengthData) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("src", 1500, 9);
  auto column_bc = BuildDictionary(DictFormat::kColumnBc, sorted);
  // Larger than the raw data itself (paper Figure 3: ~3.5x on src).
  EXPECT_GT(column_bc->MemoryBytes(), RawDataBytes(sorted));
}

TEST(FcBlock, SmallerThanArrayOnPrefixHeavyData) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("url", 4000, 10);
  auto fc = BuildDictionary(DictFormat::kFcBlock, sorted);
  auto array = BuildDictionary(DictFormat::kArray, sorted);
  EXPECT_LT(fc->MemoryBytes(), array->MemoryBytes());
}

TEST(FcBlockDf, LargerButComparableToFcBlock) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("url", 4000, 11);
  auto fc = BuildDictionary(DictFormat::kFcBlock, sorted);
  auto df = BuildDictionary(DictFormat::kFcBlockDf, sorted);
  // Difference-to-first stores longer suffixes: bigger, but not wildly so.
  EXPECT_GE(df->MemoryBytes(), fc->MemoryBytes());
  EXPECT_LT(df->MemoryBytes(), fc->MemoryBytes() * 2);
}

TEST(FcBlock, HandlesPrefixesBeyondHeaderLimit) {
  // Common prefixes longer than 255 must be truncated losslessly.
  std::vector<std::string> sorted;
  const std::string base(400, 'p');
  for (int i = 0; i < 40; ++i) {
    sorted.push_back(base + "x" + std::to_string(100 + i));
  }
  sorted = SortedUnique(std::move(sorted));
  for (DictFormat format : {DictFormat::kFcBlock, DictFormat::kFcBlockDf,
                            DictFormat::kFcBlockHu}) {
    auto dict = BuildDictionary(format, sorted);
    Rng rng(12);
    ExpectDictionaryMatches(*dict, sorted, &rng);
  }
}

TEST(RePairDicts, SmallestOnRedundantText) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("src", 2000, 13);
  auto rp = BuildDictionary(DictFormat::kFcBlockRp16, sorted);
  auto array = BuildDictionary(DictFormat::kArray, sorted);
  EXPECT_LT(rp->MemoryBytes(), array->MemoryBytes() / 2);
}

TEST(Dictionary, IsSortedUniqueDetectsViolations) {
  EXPECT_TRUE(IsSortedUnique(std::vector<std::string>{}));
  EXPECT_TRUE(IsSortedUnique(std::vector<std::string>{"a"}));
  EXPECT_TRUE(IsSortedUnique(std::vector<std::string>{"a", "b"}));
  EXPECT_FALSE(IsSortedUnique(std::vector<std::string>{"b", "a"}));
  EXPECT_FALSE(IsSortedUnique(std::vector<std::string>{"a", "a"}));
}

TEST(Dictionary, FormatTaxonomy) {
  int array_count = 0, fc_count = 0;
  for (DictFormat f : AllDictFormats()) {
    EXPECT_NE(IsArrayClass(f), IsFrontCodingClass(f) || f == DictFormat::kColumnBc)
        << DictFormatName(f);
    array_count += IsArrayClass(f);
    fc_count += IsFrontCodingClass(f);
  }
  EXPECT_EQ(array_count, 8);
  EXPECT_EQ(fc_count, 9);
  EXPECT_EQ(array_count + fc_count + 1, kNumDictFormats);
}

TEST(Dictionary, CommonPrefixLength) {
  EXPECT_EQ(CommonPrefixLength("", ""), 0u);
  EXPECT_EQ(CommonPrefixLength("abc", "abd"), 2u);
  EXPECT_EQ(CommonPrefixLength("abc", "abc"), 3u);
  EXPECT_EQ(CommonPrefixLength("abc", "abcdef"), 3u);
  EXPECT_EQ(CommonPrefixLength("xyz", "abc"), 0u);
}

}  // namespace
}  // namespace adict
