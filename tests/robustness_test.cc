// End-to-end robustness: guarded dictionary builds degrading through the
// format chain under injected faults, decision-log fallback records, and
// fail-point-driven persistence errors.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/build_guard.h"
#include "core/compression_manager.h"
#include "datasets/generators.h"
#include "dict/serialization.h"
#include "obs/obs.h"
#include "store/delta.h"
#include "store/string_column.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace adict {
namespace {

using failpoint::Spec;

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DisableAll();
    obs::SetEnabled(true);
    obs::ResetForTest();
  }
  void TearDown() override { failpoint::DisableAll(); }

  static uint64_t CounterValue(const char* name) {
    return obs::Metrics().GetCounter(name)->value();
  }
};

std::vector<std::string> Strings() {
  return GenerateSurveyDataset("mat", 600, 21);
}

// ---------------------------------------------------------------------------
// BuildDictionaryGuarded: the degradation chain.

TEST_F(RobustnessTest, CleanBuildTakesNoFallback) {
  const std::vector<std::string> sorted = Strings();
  StatusOr<GuardedBuildResult> built =
      BuildDictionaryGuarded(DictFormat::kFcBlockRp12, sorted);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->format, DictFormat::kFcBlockRp12);
  EXPECT_EQ(built->num_fallbacks, 0);
  EXPECT_EQ(CounterValue("dict.build.fallback"), 0u);
}

TEST_F(RobustnessTest, RePairFailureDegradesToFcBlock) {
  // A failed Re-Pair grammar build must land on blockwise front coding:
  // the next chain entry has no Re-Pair codec, so the fault cannot recur.
  failpoint::Enable("repair.build", Spec::Always());
  const std::vector<std::string> sorted = Strings();
  StatusOr<GuardedBuildResult> built =
      BuildDictionaryGuarded(DictFormat::kFcBlockRp12, sorted);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->format, DictFormat::kFcBlock);
  EXPECT_EQ(built->num_fallbacks, 1);
  EXPECT_EQ(CounterValue("dict.build.fallback"), 1u);
  EXPECT_GE(failpoint::HitCount("repair.build"), 1u);
  for (uint32_t id = 0; id < built->dict->size(); id += 29) {
    ASSERT_EQ(built->dict->Extract(id), sorted[id]);
  }
}

TEST_F(RobustnessTest, FrontCodingFailureDegradesToArray) {
  // With every front-coding-class build failing, both the chosen format and
  // the fc block fallback die; the chain must end at the uncompressed array.
  failpoint::Enable("fc.build", Spec::Always());
  const std::vector<std::string> sorted = Strings();
  StatusOr<GuardedBuildResult> built =
      BuildDictionaryGuarded(DictFormat::kFcBlockHu, sorted);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->format, DictFormat::kArray);
  EXPECT_EQ(built->num_fallbacks, 2);
  EXPECT_EQ(CounterValue("dict.build.fallback"), 2u);
}

TEST_F(RobustnessTest, ValidationFailureAlsoDegrades) {
  // The first build succeeds but fails post-build validation; the guard
  // must treat that exactly like a build failure.
  failpoint::Enable("dict.validate", Spec::First(1));
  const std::vector<std::string> sorted = Strings();
  StatusOr<GuardedBuildResult> built =
      BuildDictionaryGuarded(DictFormat::kArrayBc, sorted);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->format, DictFormat::kFcBlock);
  EXPECT_EQ(built->num_fallbacks, 1);
}

TEST_F(RobustnessTest, ExhaustedChainReturnsErrorNotAbort) {
  failpoint::Enable("dict.build", Spec::Always());
  const std::vector<std::string> sorted = Strings();
  const StatusOr<GuardedBuildResult> built =
      BuildDictionaryGuarded(DictFormat::kFcBlock, sorted);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInternal);
  EXPECT_EQ(CounterValue("dict.build.exhausted"), 1u);
  // chosen(kFcBlock) -> kArray: deduped chain of 2, so 1 fallback step.
  EXPECT_EQ(CounterValue("dict.build.fallback"), 1u);
}

TEST_F(RobustnessTest, UnsortedInputFailsPreconditionsEverywhere) {
  // Precondition violations hold for every format in the chain, so the
  // guard reports failure instead of building a dictionary over garbage.
  const std::vector<std::string> unsorted = {"b", "a", "c"};
  const StatusOr<GuardedBuildResult> built =
      BuildDictionaryGuarded(DictFormat::kArray, unsorted);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RobustnessTest, SizeMispredictionTriggersFallback) {
  // An absurdly small prediction with zero tolerance slack fails the size
  // check for the chosen format; fallbacks are exempt (the prediction was
  // never about them), so the build lands on the next format.
  const std::vector<std::string> sorted = Strings();
  GuardOptions options;
  options.predicted_dict_bytes = 1;
  options.size_tolerance = 1.0;
  options.size_slack_bytes = 0;
  StatusOr<GuardedBuildResult> built =
      BuildDictionaryGuarded(DictFormat::kArrayHu, sorted, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->format, DictFormat::kFcBlock);
  EXPECT_EQ(built->num_fallbacks, 1);
}

TEST_F(RobustnessTest, ValidateDictionaryCatchesWrongContent) {
  // Validation compares against the strings the dictionary is *supposed*
  // to hold; a dictionary built over different content must fail.
  // The last entry is always probed by the evenly-spread sample, and
  // extending it keeps `other` sorted and unique.
  const std::vector<std::string> sorted = Strings();
  std::vector<std::string> other = sorted;
  other.back() += "-tampered";
  auto dict = BuildDictionary(DictFormat::kFcBlock, other);
  const Status status = ValidateDictionary(
      *dict, sorted, GuardOptions{}, /*check_size_prediction=*/false);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Decision-log integration.

TEST_F(RobustnessTest, FallbackStepsAreRecordedInDecisionLog) {
  obs::DecisionRecord record;
  record.column_id = "orders.status";
  record.chosen_format_id = static_cast<int>(DictFormat::kFcBlockRp16);
  record.chosen_format_name = std::string(DictFormatName(DictFormat::kFcBlockRp16));
  const uint64_t sequence = obs::Decisions().Push(std::move(record));

  failpoint::Enable("repair.build", Spec::Always());
  GuardOptions options;
  options.log_sequence = sequence;
  const std::vector<std::string> sorted = Strings();
  StatusOr<GuardedBuildResult> built =
      BuildDictionaryGuarded(DictFormat::kFcBlockRp16, sorted, options);
  ASSERT_TRUE(built.ok());

  const std::vector<obs::DecisionRecord> snapshot =
      obs::Decisions().Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  ASSERT_EQ(snapshot[0].fallbacks.size(), 1u);
  const obs::FallbackEvent& event = snapshot[0].fallbacks[0];
  EXPECT_EQ(event.from_format_id, static_cast<int>(DictFormat::kFcBlockRp16));
  EXPECT_EQ(event.to_format_id, static_cast<int>(DictFormat::kFcBlock));
  EXPECT_NE(event.reason.find("repair.build"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MergeDeltaAdaptive under injected faults.

struct MergeFixture {
  std::vector<std::string> expected_rows;
  StringColumn main;
  DeltaColumn delta;

  static MergeFixture Make() {
    MergeFixture f;
    Rng rng(17);
    const std::vector<std::string> pool = GenerateSurveyDataset("url", 200, 5);
    for (int i = 0; i < 2000; ++i) {
      f.expected_rows.push_back(pool[rng.Uniform(pool.size())]);
    }
    f.main = StringColumn::FromValues(f.expected_rows);
    for (int i = 0; i < 100; ++i) {
      std::string value = "delta-" + std::to_string(rng.Uniform(50));
      f.expected_rows.push_back(value);
      f.delta.Append(std::move(value));
    }
    return f;
  }

  void CheckRows(const StringColumn& merged) const {
    ASSERT_EQ(merged.num_rows(), expected_rows.size());
    for (size_t row = 0; row < expected_rows.size(); row += 37) {
      ASSERT_EQ(merged.GetValue(row), expected_rows[row]) << "row " << row;
    }
  }
};

TEST_F(RobustnessTest, MergeSurvivesBuildFaultAndRecordsFallback) {
  MergeFixture f = MergeFixture::Make();
  CompressionManager manager;
  failpoint::Enable("dict.build", Spec::First(1));
  const StringColumn merged =
      MergeDeltaAdaptive(f.main, f.delta, manager, 60.0, "robust.merge");
  f.CheckRows(merged);
  EXPECT_EQ(CounterValue("dict.build.fallback"), 1u);

  // The decision record for this merge carries the degradation step.
  const std::vector<obs::DecisionRecord> snapshot =
      obs::Decisions().Snapshot();
  ASSERT_FALSE(snapshot.empty());
  const obs::DecisionRecord& record = snapshot.back();
  EXPECT_EQ(record.column_id, "robust.merge");
  ASSERT_EQ(record.fallbacks.size(), 1u);
  EXPECT_EQ(record.fallbacks[0].from_format_id, record.chosen_format_id);
  // The actual built size is still recorded against the prediction.
  EXPECT_TRUE(record.has_actual());
}

TEST_F(RobustnessTest, MergeSurvivesFormatDecisionFault) {
  MergeFixture f = MergeFixture::Make();
  CompressionManager manager;
  failpoint::Enable("merge.choose_format", Spec::Always());
  const StringColumn merged =
      MergeDeltaAdaptive(f.main, f.delta, manager, 60.0, "robust.decision");
  f.CheckRows(merged);
  // The merge fell back to the default mid-point format.
  EXPECT_EQ(merged.format(), DictFormat::kFcBlock);
  EXPECT_EQ(CounterValue("store.merge.decision_fallback"), 1u);
  // No decision was logged (the manager never ran).
  EXPECT_TRUE(obs::Decisions().Snapshot().empty());
}

TEST_F(RobustnessTest, MergeWithProbabilisticFaultsStaysConsistent) {
  // Chaos-style: every cold-path fault site fires with some probability
  // over repeated merges; row content must survive every combination.
  // (dict.validate is left out: it can fail the array fallback too, which
  // by design escalates past the chain.)
  failpoint::SetSeed(123);
  failpoint::Enable("repair.build", Spec::Prob(0.5));
  failpoint::Enable("fc.build", Spec::Prob(0.3));
  MergeFixture f = MergeFixture::Make();
  CompressionManager manager;
  // The fixture's initial delta is the first merge under fire.
  StringColumn column = MergeDeltaAdaptive(f.main, f.delta, manager, 60.0);
  for (int round = 0; round < 6; ++round) {
    DeltaColumn delta;
    for (int i = 0; i < 20; ++i) {
      std::string value = "chaos-" + std::to_string(round) + "-" +
                          std::to_string(i % 7);
      f.expected_rows.push_back(value);
      delta.Append(std::move(value));
    }
    column = MergeDeltaAdaptive(column, delta, manager, 60.0);
    ASSERT_EQ(column.num_rows(), f.expected_rows.size());
  }
  for (size_t row = 0; row < f.expected_rows.size(); row += 41) {
    ASSERT_EQ(column.GetValue(row), f.expected_rows[row]) << "row " << row;
  }
}

// ---------------------------------------------------------------------------
// Fail points on the persistence paths.

TEST_F(RobustnessTest, InjectedSaveFileFaultSurfacesAsIoError) {
  const std::vector<std::string> sorted = {"a", "b", "c"};
  auto dict = BuildDictionary(DictFormat::kArray, sorted);
  failpoint::Enable("dict.save.file", Spec::Always());
  const std::string path = ::testing::TempDir() + "/adict_failpoint.bin";
  const Status status = SaveDictionaryToFile(*dict, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(RobustnessTest, InjectedLoadFaultSurfacesAsCorruption) {
  const std::vector<std::string> sorted = {"a", "b", "c"};
  auto dict = BuildDictionary(DictFormat::kArray, sorted);
  std::vector<uint8_t> buffer;
  SaveDictionary(*dict, &buffer);
  failpoint::Enable("dict.load", Spec::Nth(1));
  StatusOr<std::unique_ptr<Dictionary>> first = LoadDictionary(buffer);
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(CounterValue("dict.load.corruption"), 1u);
  // The injected fault was transient; the next load succeeds.
  StatusOr<std::unique_ptr<Dictionary>> second = LoadDictionary(buffer);
  EXPECT_TRUE(second.ok());
}

}  // namespace
}  // namespace adict
