// Tests for dictionary and column persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "datasets/generators.h"
#include "dict/serialization.h"
#include "store/string_column.h"
#include "util/rng.h"

namespace adict {
namespace {

class SerializationFormatTest : public ::testing::TestWithParam<DictFormat> {};

TEST_P(SerializationFormatTest, RoundtripPreservesEverything) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("mat", 1500, 1);
  auto original = BuildDictionary(GetParam(), sorted);

  std::vector<uint8_t> buffer;
  SaveDictionary(*original, &buffer);
  auto loaded = LoadDictionary(buffer);
  ASSERT_NE(loaded, nullptr);

  EXPECT_EQ(loaded->format(), original->format());
  ASSERT_EQ(loaded->size(), original->size());
  for (uint32_t id = 0; id < loaded->size(); ++id) {
    ASSERT_EQ(loaded->Extract(id), sorted[id]);
  }
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const std::string& probe = sorted[rng.Uniform(sorted.size())];
    EXPECT_EQ(loaded->Locate(probe), original->Locate(probe));
  }
  EXPECT_EQ(loaded->Locate("~~~miss~~~"), original->Locate("~~~miss~~~"));
  // The reconstructed footprint matches the original (same payloads).
  EXPECT_EQ(loaded->MemoryBytes(), original->MemoryBytes());
}

TEST_P(SerializationFormatTest, RedundantTextRoundtrip) {
  // Exercises the codec table serialization (grammars, trees, n-grams).
  const std::vector<std::string> sorted = GenerateSurveyDataset("src", 1200, 3);
  auto original = BuildDictionary(GetParam(), sorted);
  std::vector<uint8_t> buffer;
  SaveDictionary(*original, &buffer);
  auto loaded = LoadDictionary(buffer);
  for (uint32_t id = 0; id < loaded->size(); id += 7) {
    ASSERT_EQ(loaded->Extract(id), sorted[id]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, SerializationFormatTest,
    ::testing::ValuesIn(AllDictFormats().begin(), AllDictFormats().end()),
    [](const ::testing::TestParamInfo<DictFormat>& info) {
      std::string name(DictFormatName(info.param));
      std::replace(name.begin(), name.end(), ' ', '_');
      return name;
    });

TEST(Serialization, SerializedFormIsCompact) {
  // The on-disk form must be close to the in-memory footprint (no
  // re-encoded or duplicated payloads).
  const std::vector<std::string> sorted = GenerateSurveyDataset("url", 5000, 4);
  auto dict = BuildDictionary(DictFormat::kFcBlockRp12, sorted);
  std::vector<uint8_t> buffer;
  SaveDictionary(*dict, &buffer);
  EXPECT_LT(buffer.size(), dict->MemoryBytes() * 5 / 4);
}

TEST(Serialization, FileRoundtrip) {
  const std::vector<std::string> sorted = {"alpha", "beta", "gamma"};
  auto dict = BuildDictionary(DictFormat::kFcBlock, sorted);
  const std::string path = ::testing::TempDir() + "/adict_dict.bin";
  ASSERT_TRUE(SaveDictionaryToFile(*dict, path));
  auto loaded = LoadDictionaryFromFile(path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->Extract(1), "beta");
  std::remove(path.c_str());
}

TEST(Serialization, MissingFileReturnsNull) {
  EXPECT_EQ(LoadDictionaryFromFile("/nonexistent/adict.bin"), nullptr);
}

TEST(Serialization, CorruptMagicAborts) {
  const std::vector<std::string> sorted = {"a", "b"};
  auto dict = BuildDictionary(DictFormat::kArray, sorted);
  std::vector<uint8_t> buffer;
  SaveDictionary(*dict, &buffer);
  buffer[0] ^= 0xff;
  EXPECT_DEATH(LoadDictionary(buffer), "bad dictionary magic");
}

TEST(Serialization, TruncatedBufferAborts) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("engl", 200, 5);
  auto dict = BuildDictionary(DictFormat::kArrayHu, sorted);
  std::vector<uint8_t> buffer;
  SaveDictionary(*dict, &buffer);
  buffer.resize(buffer.size() / 2);
  EXPECT_DEATH(LoadDictionary(buffer), "truncated");
}

TEST(StringColumnSerialization, RoundtripKeepsRowsAndFormat) {
  std::vector<std::string> values;
  Rng rng(6);
  const std::vector<std::string> pool = GenerateSurveyDataset("url", 300, 7);
  for (int i = 0; i < 5000; ++i) values.push_back(pool[rng.Uniform(pool.size())]);
  const StringColumn column =
      StringColumn::FromValues(values, DictFormat::kFcBlockBc);

  std::vector<uint8_t> buffer;
  ByteWriter writer(&buffer);
  column.Serialize(&writer);

  ByteReader reader(buffer.data(), buffer.size());
  const StringColumn loaded = StringColumn::Deserialize(&reader);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(loaded.format(), DictFormat::kFcBlockBc);
  ASSERT_EQ(loaded.num_rows(), values.size());
  for (size_t row = 0; row < values.size(); row += 17) {
    ASSERT_EQ(loaded.GetValue(row), values[row]);
  }
}

}  // namespace
}  // namespace adict
