// Tests for dictionary and column persistence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "datasets/generators.h"
#include "dict/serialization.h"
#include "store/string_column.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace adict {
namespace {

class SerializationFormatTest : public ::testing::TestWithParam<DictFormat> {};

TEST_P(SerializationFormatTest, RoundtripPreservesEverything) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("mat", 1500, 1);
  auto original = BuildDictionary(GetParam(), sorted);

  std::vector<uint8_t> buffer;
  SaveDictionary(*original, &buffer);
  StatusOr<std::unique_ptr<Dictionary>> loaded_or = LoadDictionary(buffer);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const std::unique_ptr<Dictionary>& loaded = *loaded_or;
  ASSERT_NE(loaded, nullptr);

  EXPECT_EQ(loaded->format(), original->format());
  ASSERT_EQ(loaded->size(), original->size());
  for (uint32_t id = 0; id < loaded->size(); ++id) {
    ASSERT_EQ(loaded->Extract(id), sorted[id]);
  }
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const std::string& probe = sorted[rng.Uniform(sorted.size())];
    EXPECT_EQ(loaded->Locate(probe), original->Locate(probe));
  }
  EXPECT_EQ(loaded->Locate("~~~miss~~~"), original->Locate("~~~miss~~~"));
  // The reconstructed footprint matches the original (same payloads).
  EXPECT_EQ(loaded->MemoryBytes(), original->MemoryBytes());
}

TEST_P(SerializationFormatTest, RedundantTextRoundtrip) {
  // Exercises the codec table serialization (grammars, trees, n-grams).
  const std::vector<std::string> sorted = GenerateSurveyDataset("src", 1200, 3);
  auto original = BuildDictionary(GetParam(), sorted);
  std::vector<uint8_t> buffer;
  SaveDictionary(*original, &buffer);
  StatusOr<std::unique_ptr<Dictionary>> loaded = LoadDictionary(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (uint32_t id = 0; id < (*loaded)->size(); id += 7) {
    ASSERT_EQ((*loaded)->Extract(id), sorted[id]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, SerializationFormatTest,
    ::testing::ValuesIn(AllDictFormats().begin(), AllDictFormats().end()),
    [](const ::testing::TestParamInfo<DictFormat>& info) {
      std::string name(DictFormatName(info.param));
      std::replace(name.begin(), name.end(), ' ', '_');
      return name;
    });

TEST(Serialization, SerializedFormIsCompact) {
  // The on-disk form must be close to the in-memory footprint (no
  // re-encoded or duplicated payloads).
  const std::vector<std::string> sorted = GenerateSurveyDataset("url", 5000, 4);
  auto dict = BuildDictionary(DictFormat::kFcBlockRp12, sorted);
  std::vector<uint8_t> buffer;
  SaveDictionary(*dict, &buffer);
  EXPECT_LT(buffer.size(), dict->MemoryBytes() * 5 / 4);
}

TEST(Serialization, FileRoundtrip) {
  const std::vector<std::string> sorted = {"alpha", "beta", "gamma"};
  auto dict = BuildDictionary(DictFormat::kFcBlock, sorted);
  const std::string path = ::testing::TempDir() + "/adict_dict.bin";
  ASSERT_TRUE(SaveDictionaryToFile(*dict, path).ok());
  StatusOr<std::unique_ptr<Dictionary>> loaded = LoadDictionaryFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->Extract(1), "beta");
  std::remove(path.c_str());
}

TEST(Serialization, MissingFileReportsIoError) {
  const StatusOr<std::unique_ptr<Dictionary>> loaded =
      LoadDictionaryFromFile("/nonexistent/adict.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(Serialization, SaveToUnwritablePathReportsIoError) {
  // Regression: fopen/fwrite/fclose failures must surface, not be dropped.
  const std::vector<std::string> sorted = {"a", "b"};
  auto dict = BuildDictionary(DictFormat::kArray, sorted);
  const Status status =
      SaveDictionaryToFile(*dict, "/nonexistent-dir/adict.bin");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(Serialization, CorruptMagicIsRejectedNotFatal) {
  const std::vector<std::string> sorted = {"a", "b"};
  auto dict = BuildDictionary(DictFormat::kArray, sorted);
  std::vector<uint8_t> buffer;
  SaveDictionary(*dict, &buffer);
  buffer[0] ^= 0xff;
  const StatusOr<std::unique_ptr<Dictionary>> loaded = LoadDictionary(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(Serialization, TruncatedBufferIsRejectedNotFatal) {
  // Replaces the former TruncatedBufferAborts death test: a truncated image
  // must produce a Status, never an abort.
  const std::vector<std::string> sorted = GenerateSurveyDataset("engl", 200, 5);
  auto dict = BuildDictionary(DictFormat::kArrayHu, sorted);
  std::vector<uint8_t> buffer;
  SaveDictionary(*dict, &buffer);
  buffer.resize(buffer.size() / 2);
  const StatusOr<std::unique_ptr<Dictionary>> loaded = LoadDictionary(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kTruncated);
}

TEST(Serialization, UnknownVersionIsRejected) {
  const std::vector<std::string> sorted = {"a", "b"};
  auto dict = BuildDictionary(DictFormat::kArray, sorted);
  std::vector<uint8_t> buffer;
  SaveDictionary(*dict, &buffer);
  buffer[4] = 0x7f;  // version field low byte
  const StatusOr<std::unique_ptr<Dictionary>> loaded = LoadDictionary(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnsupportedVersion);
}

TEST(Serialization, OutOfRangeFormatTagIsRejected) {
  // The tag must be range-validated before dispatch; with the checksum
  // recomputed, only the explicit tag check can reject this image.
  const std::vector<std::string> sorted = {"a", "b"};
  auto dict = BuildDictionary(DictFormat::kArray, sorted);

  // Rebuild the envelope by hand with a bogus tag (100) and a valid CRC.
  std::vector<uint8_t> payload;
  ByteWriter payload_writer(&payload);
  dict->Serialize(&payload_writer);
  std::vector<uint8_t> buffer;
  ByteWriter writer(&buffer);
  writer.Write<uint32_t>(0x43494441u);
  writer.Write<uint16_t>(2);
  const size_t checksummed_from = buffer.size();
  writer.Write<uint16_t>(100);
  writer.Write<uint64_t>(payload.size());
  Crc32 crc;
  crc.Update(buffer.data() + checksummed_from, buffer.size() - checksummed_from);
  crc.Update(payload.data(), payload.size());
  writer.Write<uint32_t>(crc.value());
  writer.WriteBytes(payload.data(), payload.size());

  const StatusOr<std::unique_ptr<Dictionary>> loaded = LoadDictionary(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(Serialization, LegacyV1ImageStillLoads) {
  // Backward compatibility: v1 images (no length / checksum) load with a
  // warning; see docs/robustness.md for the policy.
  const std::vector<std::string> sorted = GenerateSurveyDataset("mat", 500, 9);
  auto dict = BuildDictionary(DictFormat::kFcBlockHu, sorted);
  std::vector<uint8_t> buffer;
  ByteWriter writer(&buffer);
  writer.Write<uint32_t>(0x43494441u);
  writer.Write<uint16_t>(1);
  writer.Write<uint16_t>(static_cast<uint16_t>(dict->format()));
  dict->Serialize(&writer);

  StatusOr<std::unique_ptr<Dictionary>> loaded = LoadDictionary(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded)->size(), dict->size());
  for (uint32_t id = 0; id < dict->size(); id += 13) {
    ASSERT_EQ((*loaded)->Extract(id), sorted[id]);
  }
}

TEST(StringColumnSerialization, RoundtripKeepsRowsAndFormat) {
  std::vector<std::string> values;
  Rng rng(6);
  const std::vector<std::string> pool = GenerateSurveyDataset("url", 300, 7);
  for (int i = 0; i < 5000; ++i) values.push_back(pool[rng.Uniform(pool.size())]);
  const StringColumn column =
      StringColumn::FromValues(values, DictFormat::kFcBlockBc);

  std::vector<uint8_t> buffer;
  ByteWriter writer(&buffer);
  column.Serialize(&writer);

  ByteReader reader(buffer.data(), buffer.size());
  StatusOr<StringColumn> loaded_or = StringColumn::Deserialize(&reader);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const StringColumn loaded = std::move(loaded_or).value();
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(loaded.format(), DictFormat::kFcBlockBc);
  ASSERT_EQ(loaded.num_rows(), values.size());
  for (size_t row = 0; row < values.size(); row += 17) {
    ASSERT_EQ(loaded.GetValue(row), values[row]);
  }
}

TEST(StringColumnSerialization, CorruptDictionaryReportsStatus) {
  const StringColumn column = StringColumn::FromValues(
      std::vector<std::string>{"x", "y", "z"}, DictFormat::kArray);
  std::vector<uint8_t> buffer;
  ByteWriter writer(&buffer);
  column.Serialize(&writer);
  buffer[8 + 10] ^= 0xff;  // inside the nested dictionary envelope
  ByteReader reader(buffer.data(), buffer.size(),
                    ByteReader::OnError::kRecord);
  const StatusOr<StringColumn> loaded = StringColumn::Deserialize(&reader);
  ASSERT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace adict
