// Validation tests for the TPC-H query implementations: every checked
// aggregate is recomputed here independently with a straightforward
// row-at-a-time pass, so a bug in the dictionary-aware plans (ID ranges,
// dictionary mappings, join indexes) cannot hide.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "util/date.h"

namespace adict {
namespace {

const TpchDatabase& Db() {
  static const TpchDatabase* db = [] {
    TpchOptions options;
    options.scale_factor = 0.005;
    return new TpchDatabase(GenerateTpch(options));
  }();
  return *db;
}

double Parse(const std::string& cell) { return std::stod(cell); }

TEST(TpchValidation, Q1MatchesNaiveAggregation) {
  const QueryResult q1 = RunTpchQuery(Db(), 1);

  // Naive recomputation over raw values.
  const Table& l = Db().lineitem;
  const int32_t cutoff = ParseDate("1998-12-01") - 90;
  std::map<std::string, std::pair<double, uint64_t>> expected;  // key -> qty, n
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    if (l.dates("L_SHIPDATE")[row] > cutoff) continue;
    const std::string key = l.strings("L_RETURNFLAG").GetValue(row) + "|" +
                            l.strings("L_LINESTATUS").GetValue(row);
    auto& [qty, count] = expected[key];
    qty += l.doubles("L_QUANTITY")[row];
    ++count;
  }

  ASSERT_EQ(q1.rows.size(), expected.size());
  for (const auto& row : q1.rows) {
    const auto it = expected.find(row[0] + "|" + row[1]);
    ASSERT_NE(it, expected.end());
    EXPECT_NEAR(Parse(row[2]), it->second.first, 0.01);                // sum_qty
    EXPECT_EQ(std::stoull(row[9]), it->second.second);                 // count
    EXPECT_NEAR(Parse(row[6]), it->second.first / it->second.second,   // avg
                0.01);
  }
}

TEST(TpchValidation, Q6MatchesNaiveScan) {
  const QueryResult q6 = RunTpchQuery(Db(), 6);
  const Table& l = Db().lineitem;
  const int32_t lo = ParseDate("1994-01-01");
  const int32_t hi = ParseDate("1995-01-01");
  double expected = 0;
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    const double disc = l.doubles("L_DISCOUNT")[row];
    if (l.dates("L_SHIPDATE")[row] >= lo && l.dates("L_SHIPDATE")[row] < hi &&
        disc >= 0.05 - 1e-9 && disc <= 0.07 + 1e-9 &&
        l.doubles("L_QUANTITY")[row] < 24) {
      expected += l.doubles("L_EXTENDEDPRICE")[row] * disc;
    }
  }
  EXPECT_NEAR(Parse(q6.rows[0][0]), expected, 0.01);
}

TEST(TpchValidation, Q3TopRevenueMatchesNaiveJoin) {
  const QueryResult q3 = RunTpchQuery(Db(), 3);
  ASSERT_FALSE(q3.rows.empty());

  // Naive: nested maps over raw values.
  const Table& c = Db().customer;
  const Table& o = Db().orders;
  const Table& l = Db().lineitem;
  const int32_t date = ParseDate("1995-03-15");
  std::unordered_map<std::string, bool> customer_building;
  for (uint64_t row = 0; row < c.num_rows(); ++row) {
    customer_building[c.strings("C_CUSTKEY").GetValue(row)] =
        c.strings("C_MKTSEGMENT").GetValue(row) == "BUILDING";
  }
  std::unordered_map<std::string, bool> order_ok;
  for (uint64_t row = 0; row < o.num_rows(); ++row) {
    order_ok[o.strings("O_ORDERKEY").GetValue(row)] =
        o.dates("O_ORDERDATE")[row] < date &&
        customer_building[o.strings("O_CUSTKEY").GetValue(row)];
  }
  std::unordered_map<std::string, double> revenue;
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    if (l.dates("L_SHIPDATE")[row] <= date) continue;
    const std::string key = l.strings("L_ORDERKEY").GetValue(row);
    if (!order_ok[key]) continue;
    revenue[key] += l.doubles("L_EXTENDEDPRICE")[row] *
                    (1 - l.doubles("L_DISCOUNT")[row]);
  }
  double best = 0;
  for (const auto& [key, rev] : revenue) best = std::max(best, rev);

  EXPECT_EQ(Parse(q3.rows[0][1]), Parse(q3.rows[0][1]));  // well-formed
  EXPECT_NEAR(Parse(q3.rows[0][1]), best, 0.01);
  // Revenue column is non-increasing.
  for (size_t i = 1; i < q3.rows.size(); ++i) {
    EXPECT_LE(Parse(q3.rows[i][1]), Parse(q3.rows[i - 1][1]) + 1e-9);
  }
}

TEST(TpchValidation, Q4CountsAreBoundedByWindowOrders) {
  const QueryResult q4 = RunTpchQuery(Db(), 4);
  const Table& o = Db().orders;
  const int32_t lo = ParseDate("1993-07-01");
  const int32_t hi = AddMonths(lo, 3);
  uint64_t window_orders = 0;
  for (uint64_t row = 0; row < o.num_rows(); ++row) {
    window_orders +=
        o.dates("O_ORDERDATE")[row] >= lo && o.dates("O_ORDERDATE")[row] < hi;
  }
  uint64_t counted = 0;
  for (const auto& row : q4.rows) counted += std::stoull(row[1]);
  EXPECT_LE(counted, window_orders);
  EXPECT_GT(counted, 0u);
  // Priorities are sorted and unique.
  for (size_t i = 1; i < q4.rows.size(); ++i) {
    EXPECT_LT(q4.rows[i - 1][0], q4.rows[i][0]);
  }
}

TEST(TpchValidation, Q5NationsAreAsian) {
  const QueryResult q5 = RunTpchQuery(Db(), 5);
  const std::vector<std::string> asia = {"CHINA", "INDIA", "INDONESIA",
                                         "JAPAN", "VIETNAM"};
  for (const auto& row : q5.rows) {
    EXPECT_NE(std::find(asia.begin(), asia.end(), row[0]), asia.end())
        << row[0];
    EXPECT_GT(Parse(row[1]), 0.0);
  }
}

TEST(TpchValidation, Q7PairsOnlyFranceGermany) {
  const QueryResult q7 = RunTpchQuery(Db(), 7);
  for (const auto& row : q7.rows) {
    const bool fr_de = row[0] == "FRANCE" && row[1] == "GERMANY";
    const bool de_fr = row[0] == "GERMANY" && row[1] == "FRANCE";
    EXPECT_TRUE(fr_de || de_fr);
    const int year = std::stoi(row[2]);
    EXPECT_GE(year, 1995);
    EXPECT_LE(year, 1996);
  }
}

TEST(TpchValidation, Q8SharesAreProbabilities) {
  const QueryResult q8 = RunTpchQuery(Db(), 8);
  for (const auto& row : q8.rows) {
    const double share = Parse(row[1]);
    EXPECT_GE(share, 0.0);
    EXPECT_LE(share, 1.0);
  }
}

TEST(TpchValidation, Q10RevenueMatchesNaiveForTopCustomer) {
  const QueryResult q10 = RunTpchQuery(Db(), 10);
  if (q10.rows.empty()) GTEST_SKIP() << "no returned items in window";
  const std::string& top_customer = q10.rows[0][0];

  const Table& o = Db().orders;
  const Table& l = Db().lineitem;
  const int32_t lo = ParseDate("1993-10-01");
  const int32_t hi = AddMonths(lo, 3);
  std::unordered_map<std::string, std::string> order_customer;
  std::unordered_map<std::string, bool> order_in_window;
  for (uint64_t row = 0; row < o.num_rows(); ++row) {
    const std::string key = o.strings("O_ORDERKEY").GetValue(row);
    order_customer[key] = o.strings("O_CUSTKEY").GetValue(row);
    order_in_window[key] =
        o.dates("O_ORDERDATE")[row] >= lo && o.dates("O_ORDERDATE")[row] < hi;
  }
  double expected = 0;
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    if (l.strings("L_RETURNFLAG").GetValue(row) != "R") continue;
    const std::string key = l.strings("L_ORDERKEY").GetValue(row);
    if (!order_in_window[key] || order_customer[key] != top_customer) continue;
    expected += l.doubles("L_EXTENDEDPRICE")[row] *
                (1 - l.doubles("L_DISCOUNT")[row]);
  }
  EXPECT_NEAR(Parse(q10.rows[0][2]), expected, 0.01);
}

TEST(TpchValidation, Q12HighLowSplitCoversAllCountedLines) {
  const QueryResult q12 = RunTpchQuery(Db(), 12);
  for (const auto& row : q12.rows) {
    EXPECT_TRUE(row[0] == "MAIL" || row[0] == "SHIP") << row[0];
  }
}

TEST(TpchValidation, Q15TopSupplierRevenueMatchesNaive) {
  const QueryResult q15 = RunTpchQuery(Db(), 15);
  ASSERT_FALSE(q15.rows.empty());

  const Table& l = Db().lineitem;
  const int32_t lo = ParseDate("1996-01-01");
  const int32_t hi = AddMonths(lo, 3);
  std::unordered_map<std::string, double> revenue;
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    if (l.dates("L_SHIPDATE")[row] < lo || l.dates("L_SHIPDATE")[row] >= hi) {
      continue;
    }
    revenue[l.strings("L_SUPPKEY").GetValue(row)] +=
        l.doubles("L_EXTENDEDPRICE")[row] * (1 - l.doubles("L_DISCOUNT")[row]);
  }
  double best = 0;
  for (const auto& [supp, rev] : revenue) best = std::max(best, rev);
  EXPECT_NEAR(Parse(q15.rows[0][4]), best, 0.01);
}

TEST(TpchValidation, Q17MatchesNaiveTwoPass) {
  const QueryResult q17 = RunTpchQuery(Db(), 17);
  const Table& l = Db().lineitem;
  const Table& p = Db().part;
  std::unordered_map<std::string, bool> qualifying;
  for (uint64_t row = 0; row < p.num_rows(); ++row) {
    qualifying[p.strings("P_PARTKEY").GetValue(row)] =
        p.strings("P_BRAND").GetValue(row) == "Brand#23" &&
        p.strings("P_CONTAINER").GetValue(row) == "MED BOX";
  }
  std::unordered_map<std::string, std::pair<double, uint64_t>> stats;
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    const std::string key = l.strings("L_PARTKEY").GetValue(row);
    if (!qualifying[key]) continue;
    auto& [sum, count] = stats[key];
    sum += l.doubles("L_QUANTITY")[row];
    ++count;
  }
  double expected = 0;
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    const std::string key = l.strings("L_PARTKEY").GetValue(row);
    const auto it = stats.find(key);
    if (it == stats.end()) continue;
    if (l.doubles("L_QUANTITY")[row] <
        0.2 * it->second.first / it->second.second) {
      expected += l.doubles("L_EXTENDEDPRICE")[row];
    }
  }
  EXPECT_NEAR(Parse(q17.rows[0][0]), expected / 7.0, 0.01);
}

TEST(TpchValidation, Q18QuantitiesExceedThreshold) {
  const QueryResult q18 = RunTpchQuery(Db(), 18);
  for (const auto& row : q18.rows) {
    EXPECT_GT(Parse(row[5]), 300.0);
  }
}

TEST(TpchValidation, Q19MatchesNaiveDisjunction) {
  const QueryResult q19 = RunTpchQuery(Db(), 19);
  // Rather than replicate the three arms, verify the revenue is bounded by
  // the total of DELIVER IN PERSON + AIR lineitems (a strict superset).
  const Table& l = Db().lineitem;
  double upper = 0;
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    const std::string mode = l.strings("L_SHIPMODE").GetValue(row);
    if (mode != "AIR" && mode != "REG AIR") continue;
    if (l.strings("L_SHIPINSTRUCT").GetValue(row) != "DELIVER IN PERSON") {
      continue;
    }
    upper += l.doubles("L_EXTENDEDPRICE")[row];
  }
  EXPECT_GE(Parse(q19.rows[0][0]), 0.0);
  EXPECT_LE(Parse(q19.rows[0][0]), upper + 1e-6);
}

TEST(TpchValidation, Q22CustomersHaveNoOrders) {
  const QueryResult q22 = RunTpchQuery(Db(), 22);
  uint64_t total_custs = 0;
  for (const auto& row : q22.rows) {
    EXPECT_EQ(row[0].size(), 2u);  // two-digit country code
    total_custs += std::stoull(row[1]);
    EXPECT_GT(Parse(row[2]), 0.0);
  }
  // A third of customers have no orders; with 7 of ~15 country codes and
  // the above-average filter, the count must be well below that.
  EXPECT_LT(total_custs, Db().customer.num_rows() / 3);
}

TEST(TpchValidation, EveryQueryIsDeterministic) {
  for (int q = 1; q <= kNumTpchQueries; ++q) {
    const QueryResult a = RunTpchQuery(Db(), q);
    const QueryResult b = RunTpchQuery(Db(), q);
    ASSERT_EQ(a.rows, b.rows) << "Q" << q;
  }
}

}  // namespace
}  // namespace adict
