// Morsel-parallel engine tests: the determinism contract (parallel output
// bit-identical to serial at any thread count, across all 18 dictionary
// formats), the per-scan usage-accounting contract, the work-stealing pool
// itself, and the snapshot-read protocol racing delta merges. The tsan CI
// job runs this binary under ThreadSanitizer.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/compression_manager.h"
#include "engine/join.h"
#include "engine/parallel.h"
#include "engine/predicates.h"
#include "engine/scan.h"
#include "store/delta.h"
#include "store/string_column.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "util/thread_pool.h"

namespace adict {
namespace {

std::vector<std::string> MakeValues(int distinct, int rows) {
  std::vector<std::string> values;
  values.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    // Mix of lengths and shared prefixes so every format class has work.
    values.push_back("value_" + std::to_string((i * 37) % distinct) +
                     "_payload");
  }
  return values;
}

// -- ThreadPool ---------------------------------------------------------------

TEST(ThreadPoolTest, NumChunks) {
  EXPECT_EQ(ThreadPool::NumChunks(0, 10), 0u);
  EXPECT_EQ(ThreadPool::NumChunks(1, 10), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(10, 10), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(11, 10), 2u);
  EXPECT_EQ(ThreadPool::NumChunks(100, 10), 10u);
  EXPECT_EQ(ThreadPool::NumChunks(5, 0), 0u);  // degenerate grain
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr uint64_t kItems = 10007;  // prime: uneven final chunk
  std::vector<std::atomic<uint32_t>> hits(kItems);
  pool.ParallelFor(0, kItems, 64, [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (uint64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1u) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHonorsBeginAndGrainBoundaries) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::vector<std::pair<uint64_t, uint64_t>> chunks;
  pool.ParallelFor(100, 1000, 256, [&](uint64_t begin, uint64_t end) {
    std::lock_guard<std::mutex> lock(mutex);
    chunks.push_back({begin, end});
  });
  std::sort(chunks.begin(), chunks.end());
  const std::vector<std::pair<uint64_t, uint64_t>> expected = {
      {100, 356}, {356, 612}, {612, 868}, {868, 1000}};
  EXPECT_EQ(chunks, expected);
}

TEST(ThreadPoolTest, SerialPoolRunsEverythingInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.parallelism(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  bool submitted_inline = false;
  pool.Submit([&] { submitted_inline = std::this_thread::get_id() == caller; });
  EXPECT_TRUE(submitted_inline);
  std::set<std::thread::id> ids;
  std::mutex mutex;
  pool.ParallelFor(0, 1000, 10, [&](uint64_t, uint64_t) {
    std::lock_guard<std::mutex> lock(mutex);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(ids, std::set<std::thread::id>{caller});
}

TEST(ThreadPoolTest, SubmittedTaskRunsOnWorkerThread) {
  // With one worker and a caller that only waits (never drains), the worker
  // is the only thread that can run the task.
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  std::thread::id task_thread;
  pool.Submit([&] {
    task_thread = std::this_thread::get_id();
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
  EXPECT_NE(task_thread, std::this_thread::get_id());
}

TEST(ThreadPoolTest, DefaultPoolParallelismParsesAdictThreads) {
  const char* saved = std::getenv("ADICT_THREADS");
  const std::string saved_value = saved == nullptr ? "" : saved;

  unsetenv("ADICT_THREADS");
  const size_t hw = DefaultPoolParallelism();
  EXPECT_GE(hw, 1u);
  setenv("ADICT_THREADS", "0", 1);
  EXPECT_EQ(DefaultPoolParallelism(), hw);
  setenv("ADICT_THREADS", "", 1);
  EXPECT_EQ(DefaultPoolParallelism(), hw);
  setenv("ADICT_THREADS", "3", 1);
  EXPECT_EQ(DefaultPoolParallelism(), 3u);
  setenv("ADICT_THREADS", "1", 1);
  EXPECT_EQ(DefaultPoolParallelism(), 1u);
  setenv("ADICT_THREADS", "9999", 1);
  EXPECT_EQ(DefaultPoolParallelism(), 256u);  // clamp

  if (saved == nullptr) {
    unsetenv("ADICT_THREADS");
  } else {
    setenv("ADICT_THREADS", saved_value.c_str(), 1);
  }
}

// -- Parallel drivers vs serial, across every dictionary format ---------------

class ParallelFormatTest : public ::testing::TestWithParam<DictFormat> {};

TEST_P(ParallelFormatTest, DriversMatchSerialBitForBit) {
  constexpr int kDistinct = 400;
  constexpr int kRows = 20000;
  const std::vector<std::string> values = MakeValues(kDistinct, kRows);
  const StringColumn column = StringColumn::FromValues(values, GetParam());
  ThreadPool pool(4);

  const IdRange range{static_cast<uint32_t>(kDistinct / 4),
                      static_cast<uint32_t>(3 * kDistinct / 4)};

  // SelectRows (ID range).
  std::vector<uint32_t> serial_rows;
  SelectRowsInto(column, range, 0, column.num_rows(), &serial_rows);
  EXPECT_EQ(ParallelSelectRows(column, range, &pool), serial_rows);

  // SelectRows (flags).
  std::vector<bool> odd_flags(column.num_distinct(), false);
  for (uint32_t id = 1; id < column.num_distinct(); id += 2) {
    odd_flags[id] = true;
  }
  std::vector<uint32_t> serial_flag_rows;
  SelectRowsInto(column, odd_flags, 0, column.num_rows(), &serial_flag_rows);
  EXPECT_EQ(ParallelSelectRows(column, odd_flags, &pool), serial_flag_rows);

  // RefineRows over the selection just produced.
  const IdRange narrow{static_cast<uint32_t>(kDistinct / 3),
                       static_cast<uint32_t>(kDistinct / 2)};
  std::vector<uint32_t> serial_refined;
  RefineRowsInto(column, serial_rows, narrow, &serial_refined);
  EXPECT_EQ(ParallelRefineRows(column, serial_rows, narrow, &pool),
            serial_refined);

  // CountRows.
  EXPECT_EQ(ParallelCountRows(column, range, &pool),
            CountRowsIn(column, range, 0, column.num_rows()));

  // ContainsAllIds against a serial full-dictionary scan.
  const std::string_view needles[] = {"value_1", "payload"};
  std::vector<bool> serial_contains(column.num_distinct(), false);
  column.ScanDictionary(
      0, column.num_distinct(), [&](uint32_t id, std::string_view value) {
        size_t pos = 0;
        for (std::string_view needle : needles) {
          pos = value.find(needle, pos);
          if (pos == std::string_view::npos) return;
          pos += needle.size();
        }
        serial_contains[id] = true;
      });
  EXPECT_EQ(ParallelContainsAllIds(column, needles, &pool), serial_contains);

  // MapDictionary onto a column holding a subset of the values.
  const StringColumn subset = StringColumn::FromValues(
      MakeValues(kDistinct / 2, kRows / 4), GetParam());
  std::vector<uint32_t> serial_mapping(column.num_distinct(), kNoMatch);
  for (uint32_t id = 0; id < column.num_distinct(); ++id) {
    const LocateResult r = subset.Locate(column.ExtractId(id));
    if (r.found) serial_mapping[id] = r.id;
  }
  EXPECT_EQ(ParallelMapDictionary(column, subset, &pool), serial_mapping);

  // CountIds.
  std::vector<uint32_t> serial_counts(column.num_distinct(), 0);
  for (uint64_t row = 0; row < column.num_rows(); ++row) {
    ++serial_counts[column.GetValueId(row)];
  }
  EXPECT_EQ(ParallelCountIds(column, &pool), serial_counts);
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, ParallelFormatTest,
    ::testing::ValuesIn(AllDictFormats().begin(), AllDictFormats().end()),
    [](const ::testing::TestParamInfo<DictFormat>& info) {
      std::string name(DictFormatName(info.param));
      std::replace(name.begin(), name.end(), ' ', '_');
      return name;
    });

// -- Usage accounting is per scan, not per morsel -----------------------------

TEST(ParallelUsageTest, VectorScansTouchNoDictionaryAtAnyParallelism) {
  const std::vector<std::string> values = MakeValues(100, 50000);
  StringColumn column =
      StringColumn::FromValues(values, DictFormat::kFcInline);
  column.ResetUsage();
  ThreadPool pool(4);
  const IdRange range{10, 60};
  (void)ParallelSelectRows(column, range, &pool);
  (void)ParallelCountRows(column, range, &pool);
  const ColumnUsage usage = column.TracedUsage(1.0);
  EXPECT_EQ(usage.num_extracts, 0u);  // morsels compare bit-packed IDs only
  EXPECT_EQ(usage.num_locates, 0u);
}

TEST(ParallelUsageTest, DictionaryScansCountExactlyTheSerialAccesses) {
  const std::vector<std::string> values = MakeValues(3000, 6000);
  StringColumn serial_col =
      StringColumn::FromValues(values, DictFormat::kFcBlock);
  StringColumn parallel_col =
      StringColumn::FromValues(values, DictFormat::kFcBlock);
  ThreadPool pool(4);
  const std::string_view needles[] = {"value_2"};

  serial_col.ResetUsage();
  serial_col.ScanDictionary(0, serial_col.num_distinct(),
                            [](uint32_t, std::string_view) {});
  parallel_col.ResetUsage();
  (void)ParallelContainsAllIds(parallel_col, needles, &pool);

  EXPECT_EQ(parallel_col.TracedUsage(1.0).num_extracts,
            serial_col.TracedUsage(1.0).num_extracts);

  // MapDictionary: one extract on `from` and one locate on `to` per
  // distinct value, regardless of morsel count.
  StringColumn to =
      StringColumn::FromValues(MakeValues(1000, 2000), DictFormat::kArray);
  parallel_col.ResetUsage();
  to.ResetUsage();
  (void)ParallelMapDictionary(parallel_col, to, &pool);
  EXPECT_EQ(parallel_col.TracedUsage(1.0).num_extracts,
            parallel_col.num_distinct());
  EXPECT_EQ(to.TracedUsage(1.0).num_locates, parallel_col.num_distinct());
}

// -- Snapshot reads vs concurrent merges --------------------------------------

TEST(VersionedColumnTest, SnapshotPinsVersionAcrossPublish) {
  VersionedStringColumn versioned(StringColumn::FromValues(
      MakeValues(10, 100), DictFormat::kFcInline));
  EXPECT_EQ(versioned.epoch(), 0u);

  const std::shared_ptr<const StringColumn> before = versioned.Snapshot();
  EXPECT_EQ(before->num_rows(), 100u);

  versioned.Publish(
      StringColumn::FromValues(MakeValues(10, 250), DictFormat::kArray));
  EXPECT_EQ(versioned.epoch(), 1u);

  // The old snapshot is untouched; new snapshots see the new version.
  EXPECT_EQ(before->num_rows(), 100u);
  EXPECT_EQ(before->format(), DictFormat::kFcInline);
  EXPECT_EQ(versioned.Snapshot()->num_rows(), 250u);
  EXPECT_EQ(versioned.current().num_rows(), 250u);
}

// Readers scan while a writer repeatedly merges a delta into the column and
// publishes the result (the MergeDeltaAdaptive path). Every reader snapshot
// must be internally consistent: its row count is one of the published
// sizes, and scanning it twice gives identical answers even while the next
// version is being built and swapped in. Run under TSan in CI.
TEST(VersionedColumnTest, ScansRacingAdaptiveMergeSeeConsistentSnapshots) {
  constexpr int kDistinct = 50;
  constexpr int kBaseRows = 2000;
  constexpr int kDeltaRows = 100;
  constexpr int kMerges = 20;

  VersionedStringColumn versioned(StringColumn::FromValues(
      MakeValues(kDistinct, kBaseRows), DictFormat::kFcInline));
  CompressionManager manager;
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (int m = 0; m < kMerges; ++m) {
      const std::shared_ptr<const StringColumn> base = versioned.Snapshot();
      DeltaColumn delta;
      for (int i = 0; i < kDeltaRows; ++i) {
        delta.Append("delta_" + std::to_string(m) + "_" +
                     std::to_string(i % 10));
      }
      versioned.Publish(
          MergeDeltaAdaptive(*base, delta, manager, 60.0, "race.column"));
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      do {
        const std::shared_ptr<const StringColumn> snap = versioned.Snapshot();
        const uint64_t rows = snap->num_rows();
        // Published sizes are base + m * delta for some merge count m.
        ASSERT_EQ((rows - kBaseRows) % kDeltaRows, 0u);
        ASSERT_LE(rows, static_cast<uint64_t>(kBaseRows) +
                            static_cast<uint64_t>(kMerges) * kDeltaRows);
        // The snapshot is immutable: two scans agree exactly.
        const IdRange range{0, snap->num_distinct() / 2};
        std::vector<uint32_t> first, second;
        SelectRowsInto(*snap, range, 0, rows, &first);
        SelectRowsInto(*snap, range, 0, rows, &second);
        ASSERT_EQ(first, second);
        ASSERT_EQ(CountRowsIn(*snap, range, 0, rows), first.size());
      } while (!stop.load(std::memory_order_acquire));
    });
  }

  writer.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(versioned.epoch(), static_cast<uint64_t>(kMerges));
  EXPECT_EQ(versioned.Snapshot()->num_rows(),
            static_cast<uint64_t>(kBaseRows) +
                static_cast<uint64_t>(kMerges) * kDeltaRows);
}

// -- TPC-H Q1/Q6 results are identical at every pool width --------------------

TEST(ParallelQueryTest, Q1AndQ6IdenticalAcrossPoolSizes) {
  TpchOptions options;
  options.scale_factor = 0.002;
  const TpchDatabase db = GenerateTpch(options);

  SetPoolParallelism(1);
  const QueryResult q1_serial = RunTpchQuery(db, 1);
  const QueryResult q6_serial = RunTpchQuery(db, 6);

  for (size_t threads : {2, 4, 8}) {
    SetPoolParallelism(threads);
    EXPECT_EQ(RunTpchQuery(db, 1).rows, q1_serial.rows)
        << "Q1 diverged at parallelism " << threads;
    EXPECT_EQ(RunTpchQuery(db, 6).rows, q6_serial.rows)
        << "Q6 diverged at parallelism " << threads;
  }
  SetPoolParallelism(1);
}

}  // namespace
}  // namespace adict
