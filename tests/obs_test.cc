// Unit tests for the observability layer: metrics registry semantics,
// decision-log ring behaviour, exporters, and end-to-end prediction-error
// accounting through the compression manager.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/compression_manager.h"
#include "core/size_model.h"
#include "datasets/generators.h"
#include "obs/decision_log.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "store/delta.h"
#include "store/string_column.h"

namespace adict {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistry, CounterSemantics) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test.counter", "calls");
  EXPECT_EQ(counter->value(), 0u);
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42u);

  // Same name resolves to the same instance.
  EXPECT_EQ(registry.GetCounter("test.counter"), counter);
  EXPECT_EQ(counter->value(), 42u);
}

TEST(MetricsRegistry, GaugeLastWriteWins) {
  obs::MetricsRegistry registry;
  obs::Gauge* gauge = registry.GetGauge("test.gauge");
  gauge->Set(1.5);
  gauge->Set(-2.25);
  EXPECT_DOUBLE_EQ(gauge->value(), -2.25);
}

TEST(MetricsRegistry, HistogramBucketsSumCount) {
  obs::MetricsRegistry registry;
  const std::vector<double> bounds = {10, 100, 1000};
  obs::Histogram* histogram = registry.GetHistogram("test.hist", bounds);
  histogram->Observe(5);     // <= 10
  histogram->Observe(10);    // <= 10 (bounds are inclusive)
  histogram->Observe(50);    // <= 100
  histogram->Observe(5000);  // overflow

  EXPECT_EQ(histogram->count(), 4u);
  EXPECT_DOUBLE_EQ(histogram->sum(), 5065);
  const std::vector<uint64_t> counts = histogram->bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(MetricsRegistry, ConcurrentIncrementsDontLoseUpdates) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test.concurrent");
  obs::Histogram* histogram = registry.GetHistogram(
      "test.concurrent_hist", std::vector<double>{0.5});

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Observe(1.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(counter->value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(histogram->count(), uint64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(histogram->sum(), kThreads * kPerThread);
  EXPECT_EQ(histogram->bucket_counts()[1], uint64_t{kThreads} * kPerThread);
}

TEST(MetricsRegistry, ResetValuesKeepsRegistrations) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test.reset");
  counter->Increment(7);
  registry.ResetValues();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(registry.GetCounter("test.reset"), counter);
}

TEST(MetricsRegistry, EntriesSortedByName) {
  obs::MetricsRegistry registry;
  registry.GetCounter("b.metric");
  registry.GetGauge("a.metric");
  registry.GetHistogram("c.metric");
  const std::vector<const obs::MetricsRegistry::Entry*> entries =
      registry.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0]->name, "a.metric");
  EXPECT_EQ(entries[1]->name, "b.metric");
  EXPECT_EQ(entries[2]->name, "c.metric");
}

TEST(ScopedTimer, RecordsIntoHistogram) {
  obs::MetricsRegistry registry;
  obs::Histogram* histogram = registry.GetHistogram("test.timer");
  { obs::ScopedTimer timer(histogram); }
  { obs::ScopedTimer timer(nullptr); }  // disabled: must be a no-op
  EXPECT_EQ(histogram->count(), 1u);
  EXPECT_GE(histogram->sum(), 0.0);
}

// ---------------------------------------------------------------------------
// DecisionLog

obs::DecisionRecord MakeRecord(const std::string& column,
                               double predicted_bytes) {
  obs::DecisionRecord record;
  record.column_id = column;
  record.chosen_format_name = "array";
  record.predicted_dict_bytes = predicted_bytes;
  return record;
}

TEST(DecisionLog, SequencesAndSnapshotOrder) {
  obs::DecisionLog log(8);
  EXPECT_EQ(log.Push(MakeRecord("a", 100)), 1u);
  EXPECT_EQ(log.Push(MakeRecord("b", 200)), 2u);
  const std::vector<obs::DecisionRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].column_id, "a");
  EXPECT_EQ(records[1].column_id, "b");
  EXPECT_EQ(log.total_pushed(), 2u);
}

TEST(DecisionLog, RingWraparoundEvictsOldest) {
  obs::DecisionLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Push(MakeRecord("col" + std::to_string(i), 100));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_pushed(), 10u);
  EXPECT_EQ(log.evicted(), 6u);

  const std::vector<obs::DecisionRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().column_id, "col6");
  EXPECT_EQ(records.front().sequence, 7u);
  EXPECT_EQ(records.back().column_id, "col9");
  EXPECT_EQ(records.back().sequence, 10u);

  // Evicted sequences can no longer be patched; live ones can.
  EXPECT_FALSE(log.RecordActual(3, 100));
  EXPECT_TRUE(log.RecordActual(8, 100));
}

TEST(DecisionLog, RecordActualComputesError) {
  obs::DecisionLog log(8);
  const uint64_t seq = log.Push(MakeRecord("a", 90));
  EXPECT_TRUE(log.RecordActual(seq, 100));
  EXPECT_FALSE(log.RecordActual(seq, 100));  // only patchable once

  const obs::DecisionRecord record = log.Snapshot().front();
  EXPECT_TRUE(record.has_actual());
  EXPECT_DOUBLE_EQ(record.prediction_error(), 0.1);

  const obs::PredictionAccuracy accuracy = log.accuracy();
  EXPECT_EQ(accuracy.num_predictions, 1u);
  EXPECT_DOUBLE_EQ(accuracy.mean_abs_rel_error(), 0.1);
  EXPECT_DOUBLE_EQ(accuracy.max_abs_rel_error, 0.1);
  EXPECT_EQ(accuracy.within_8pct, 0u);
}

TEST(DecisionLog, RecordActualForColumnPatchesNewestUnbuilt) {
  obs::DecisionLog log(8);
  log.Push(MakeRecord("a", 100));
  const uint64_t second = log.Push(MakeRecord("a", 200));
  log.Push(MakeRecord("b", 300));

  EXPECT_TRUE(log.RecordActualForColumn("a", 210));
  const std::vector<obs::DecisionRecord> records = log.Snapshot();
  EXPECT_FALSE(records[0].has_actual());  // older "a" untouched
  EXPECT_EQ(records[1].sequence, second);
  EXPECT_TRUE(records[1].has_actual());
  EXPECT_FALSE(log.RecordActualForColumn("missing", 1));
}

TEST(DecisionLog, AccuracySurvivesEviction) {
  obs::DecisionLog log(2);
  const uint64_t seq = log.Push(MakeRecord("a", 95));
  EXPECT_TRUE(log.RecordActual(seq, 100));  // 5% error, within 8%
  log.Push(MakeRecord("b", 100));
  log.Push(MakeRecord("c", 100));  // evicts "a"

  const obs::PredictionAccuracy accuracy = log.accuracy();
  EXPECT_EQ(accuracy.num_predictions, 1u);
  EXPECT_DOUBLE_EQ(accuracy.mean_abs_rel_error(), 0.05);
  EXPECT_EQ(accuracy.within_8pct, 1u);
}

// ---------------------------------------------------------------------------
// Exporters

TEST(Exporters, MetricsTextAndJsonContainRegisteredMetrics) {
  obs::MetricsRegistry registry;
  registry.GetCounter("export.counter", "calls")->Increment(3);
  registry.GetGauge("export.gauge")->Set(1.25);
  registry.GetHistogram("export.hist")->Observe(42);

  const std::string text = obs::MetricsToText(registry);
  EXPECT_NE(text.find("export.counter"), std::string::npos);
  EXPECT_NE(text.find("export.gauge"), std::string::npos);
  EXPECT_NE(text.find("export.hist"), std::string::npos);

  const std::string json = obs::MetricsToJson(registry);
  EXPECT_NE(json.find("\"name\":\"export.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
}

// Prometheus exposition format 0.0.4 conformance: names restricted to
// [a-zA-Z0-9_:], # HELP / # TYPE headers, cumulative le buckets ending in
// +Inf, and matching _sum / _count series.
TEST(Exporters, PrometheusTextConformance) {
  obs::MetricsRegistry registry;
  registry.GetCounter("merge.total", "calls", "Total merges")->Increment(7);
  registry.GetGauge("controller.c")->Set(0.5);
  const std::vector<double> bounds = {10, 100};
  obs::Histogram* hist =
      registry.GetHistogram("build.latency-us", bounds, "us",
                            "Build latency\nwith a line break \\ slash");
  hist->Observe(5);
  hist->Observe(50);
  hist->Observe(5000);

  const std::string text = obs::ExportPrometheusText(registry);

  // Dots and dashes sanitize to underscores; TYPE precedes the sample.
  EXPECT_NE(text.find("# HELP merge_total Total merges\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE merge_total counter\nmerge_total 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE controller_c gauge\ncontroller_c 0.5\n"),
            std::string::npos);

  // HELP text escapes newline and backslash per the exposition format.
  EXPECT_NE(text.find("Build latency\\nwith a line break \\\\ slash"),
            std::string::npos);

  // Histogram: cumulative buckets, +Inf equals _count, and a _sum series.
  EXPECT_NE(text.find("# TYPE build_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("build_latency_us_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("build_latency_us_bucket{le=\"100\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("build_latency_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("build_latency_us_sum 5055\n"), std::string::npos);
  EXPECT_NE(text.find("build_latency_us_count 3\n"), std::string::npos);

  // Structural sweep: every line is a comment or "name[{labels}] value"
  // with a name matching [a-zA-Z_:][a-zA-Z0-9_:]*.
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "missing trailing newline";
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      continue;
    }
    ASSERT_FALSE(line.empty());
    const size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    const size_t brace = name.find('{');
    if (brace != std::string::npos) name = name.substr(0, brace);
    ASSERT_FALSE(name.empty()) << line;
    EXPECT_FALSE(name[0] >= '0' && name[0] <= '9') << line;
    for (char ch : name) {
      const bool valid = (ch >= 'a' && ch <= 'z') ||
                         (ch >= 'A' && ch <= 'Z') ||
                         (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
      EXPECT_TRUE(valid) << "invalid char '" << ch << "' in: " << line;
    }
  }
}

TEST(Exporters, PrometheusNameSanitizationPrefixesDigits) {
  obs::MetricsRegistry registry;
  registry.GetCounter("9lives.count")->Increment();
  const std::string text = obs::ExportPrometheusText(registry);
  EXPECT_NE(text.find("_9lives_count 1\n"), std::string::npos);
  EXPECT_EQ(text.find("9lives"), text.find("_9lives") + 1);
}

TEST(Exporters, DecisionLogTextAndJson) {
  obs::DecisionLog log(8);
  obs::DecisionRecord record = MakeRecord("l_shipmode", 1000);
  record.candidates.push_back({0, "array", 1500, 0.25});
  const uint64_t seq = log.Push(std::move(record));
  EXPECT_TRUE(log.RecordActual(seq, 1100));

  const std::string text = obs::DecisionLogToText(log);
  EXPECT_NE(text.find("l_shipmode"), std::string::npos);
  EXPECT_NE(text.find("prediction accuracy"), std::string::npos);

  const std::string json = obs::DecisionLogToJson(log);
  EXPECT_NE(json.find("\"column\":\"l_shipmode\""), std::string::npos);
  EXPECT_NE(json.find("\"candidates\":[{\"format\":\"array\""),
            std::string::npos);
  EXPECT_NE(json.find("\"accuracy\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end prediction accounting through the compression manager

class ObsEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::ResetForTest(); }
  void TearDown() override { obs::ResetForTest(); }
};

TEST_F(ObsEndToEndTest, BuildAdaptiveDictionaryRecordsPredictionVsActual) {
  const std::vector<std::string> values = GenerateSurveyDataset("url", 8000);
  CompressionManager manager;
  ColumnUsage usage;
  usage.num_extracts = 100000;
  usage.lifetime_seconds = 600;

  const auto dict =
      manager.BuildAdaptiveDictionary(values, usage, "test_column");
  ASSERT_NE(dict, nullptr);

  const std::vector<obs::DecisionRecord> records =
      obs::Decisions().Snapshot();
  ASSERT_EQ(records.size(), 1u);
  const obs::DecisionRecord& record = records.front();
  EXPECT_EQ(record.column_id, "test_column");
  EXPECT_EQ(record.chosen_format_id, static_cast<int>(dict->format()));
  EXPECT_EQ(record.chosen_format_name, DictFormatName(dict->format()));
  EXPECT_EQ(record.candidates.size(), size_t{kNumDictFormats});
  EXPECT_EQ(record.num_strings, values.size());

  // The logged prediction is exactly the size model's output for the chosen
  // format on the same sampled properties (sampling is deterministic).
  const DictionaryProperties props =
      SampleProperties(values, manager.options().sampling);
  EXPECT_DOUBLE_EQ(record.predicted_dict_bytes,
                   PredictDictionarySize(dict->format(), props));

  // The actual size is the built dictionary's footprint, and the recorded
  // error is the paper's |real - predicted| / real.
  ASSERT_TRUE(record.has_actual());
  EXPECT_DOUBLE_EQ(record.actual_dict_bytes,
                   static_cast<double>(dict->MemoryBytes()));
  EXPECT_DOUBLE_EQ(
      record.prediction_error(),
      PredictionError(static_cast<double>(dict->MemoryBytes()),
                      record.predicted_dict_bytes));

  EXPECT_EQ(obs::Decisions().accuracy().num_predictions, 1u);
  EXPECT_GE(obs::Metrics().GetCounter("manager.decisions")->value(), 1u);
}

TEST_F(ObsEndToEndTest, MergeDeltaAdaptiveLogsUnderColumnId) {
  StringColumn main = StringColumn::FromValues(
      GenerateSurveyDataset("mat", 3000), DictFormat::kFcInline);
  DeltaColumn delta;
  for (int i = 0; i < 100; ++i) delta.Append("new-" + std::to_string(i));

  CompressionManager manager;
  const StringColumn merged =
      MergeDeltaAdaptive(main, delta, manager, 60.0, "orders.status");

  const std::vector<obs::DecisionRecord> records =
      obs::Decisions().Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records.front().column_id, "orders.status");
  ASSERT_TRUE(records.front().has_actual());
  EXPECT_DOUBLE_EQ(records.front().actual_dict_bytes,
                   static_cast<double>(merged.DictionaryBytes()));
  EXPECT_EQ(obs::Metrics().GetCounter("store.merge.count")->value(), 1u);
}

TEST_F(ObsEndToEndTest, DisablingObservabilitySilencesInstrumentation) {
  obs::SetEnabled(false);
  const std::vector<std::string> values = GenerateSurveyDataset("src", 2000);
  CompressionManager manager;
  ColumnUsage usage;
  (void)manager.BuildAdaptiveDictionary(values, usage, "silent");
  obs::SetEnabled(true);

  EXPECT_EQ(obs::Decisions().size(), 0u);
  EXPECT_EQ(obs::Metrics().GetCounter("manager.decisions")->value(), 0u);
}

}  // namespace
}  // namespace adict
