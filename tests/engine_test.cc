// Tests for the query engine: dictionary-aware predicates, joins, indexes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/join.h"
#include "engine/predicates.h"
#include "engine/result.h"
#include "store/string_column.h"

namespace adict {
namespace {

StringColumn MakeColumn(std::vector<std::string> values,
                        DictFormat format = DictFormat::kFcInline) {
  return StringColumn::FromValues(values, format);
}

class PredicateFormatTest : public ::testing::TestWithParam<DictFormat> {};

TEST_P(PredicateFormatTest, EqIds) {
  const StringColumn col = MakeColumn(
      {"cherry", "apple", "banana", "apple", "fig"}, GetParam());
  // Dictionary: apple banana cherry fig.
  const IdRange apple = EqIds(col, "apple");
  EXPECT_EQ(apple.begin, 0u);
  EXPECT_EQ(apple.end, 1u);
  EXPECT_TRUE(EqIds(col, "grape").empty());
}

TEST_P(PredicateFormatTest, RangePredicates) {
  const StringColumn col =
      MakeColumn({"a", "b", "c", "d", "e"}, GetParam());
  EXPECT_EQ(GreaterIds(col, "c").begin, 2u);          // >= c
  EXPECT_EQ(GreaterIds(col, "c", false).begin, 3u);   // > c
  EXPECT_EQ(LessIds(col, "c").end, 3u);               // <= c
  EXPECT_EQ(LessIds(col, "c", false).end, 2u);        // < c
  const IdRange between = BetweenIds(col, "b", "d");
  EXPECT_EQ(between.begin, 1u);
  EXPECT_EQ(between.end, 4u);
  // Boundaries not in the dictionary.
  EXPECT_EQ(GreaterIds(col, "bb").begin, 2u);
  EXPECT_EQ(LessIds(col, "bb").end, 2u);
}

TEST_P(PredicateFormatTest, PrefixIds) {
  const StringColumn col = MakeColumn(
      {"car", "card", "care", "cat", "dog", "cab"}, GetParam());
  // Dictionary: cab car card care cat dog.
  const IdRange car = PrefixIds(col, "car");
  EXPECT_EQ(car.begin, 1u);
  EXPECT_EQ(car.end, 4u);
  const IdRange ca = PrefixIds(col, "ca");
  EXPECT_EQ(ca.begin, 0u);
  EXPECT_EQ(ca.end, 5u);
  EXPECT_TRUE(PrefixIds(col, "zebra").empty());
}

INSTANTIATE_TEST_SUITE_P(
    Formats, PredicateFormatTest,
    ::testing::Values(DictFormat::kArray, DictFormat::kFcBlockHu,
                      DictFormat::kColumnBc),
    [](const ::testing::TestParamInfo<DictFormat>& info) {
      std::string name(DictFormatName(info.param));
      std::replace(name.begin(), name.end(), ' ', '_');
      return name;
    });

TEST(Predicates, ContainsIds) {
  const StringColumn col =
      MakeColumn({"forest green", "dark green", "navy blue", "green"});
  const std::vector<bool> flags = ContainsIds(col, "green");
  // Dictionary: "dark green", "forest green", "green", "navy blue".
  EXPECT_EQ(flags, (std::vector<bool>{true, true, true, false}));
}

TEST(Predicates, ContainsAllIdsRespectsOrder) {
  const StringColumn col = MakeColumn(
      {"special handling requests", "requests special", "special requests"});
  const std::string_view needles[] = {"special", "requests"};
  const std::vector<bool> flags = ContainsAllIds(col, needles);
  // Dictionary order: "requests special", "special handling requests",
  // "special requests". Only the latter two have the needles in order.
  EXPECT_EQ(flags, (std::vector<bool>{false, true, true}));
}

TEST(Predicates, InIds) {
  const StringColumn col = MakeColumn({"MAIL", "SHIP", "RAIL", "AIR"});
  const std::string_view values[] = {"MAIL", "SHIP", "TRUCK"};
  const std::vector<bool> flags = InIds(col, values);
  // Dictionary: AIR MAIL RAIL SHIP.
  EXPECT_EQ(flags, (std::vector<bool>{false, true, false, true}));
}

TEST(Predicates, CountLocatesAndExtracts) {
  const StringColumn col = MakeColumn({"a", "b", "c"});
  const_cast<StringColumn&>(col).ResetUsage();
  (void)EqIds(col, "b");
  EXPECT_EQ(col.TracedUsage(1).num_locates, 1u);
  (void)ContainsIds(col, "a");
  EXPECT_EQ(col.TracedUsage(1).num_extracts, 3u);  // one per dictionary entry
}

TEST(Join, MapDictionaryFindsMatches) {
  const StringColumn fk = MakeColumn({"k2", "k1", "k9", "k1"});
  const StringColumn pk = MakeColumn({"k1", "k2", "k3"});
  const std::vector<uint32_t> map = MapDictionary(fk, pk);
  // fk dictionary: k1 k2 k9.
  ASSERT_EQ(map.size(), 3u);
  EXPECT_EQ(pk.ExtractId(map[0]), "k1");
  EXPECT_EQ(pk.ExtractId(map[1]), "k2");
  EXPECT_EQ(map[2], kNoMatch);
}

TEST(Join, IdIndexGroupsRows) {
  const StringColumn col = MakeColumn({"x", "y", "x", "x", "z"});
  const IdIndex index(col);
  // Dictionary: x y z.
  const auto x_rows = index.Rows(0);
  EXPECT_EQ(std::vector<uint32_t>(x_rows.begin(), x_rows.end()),
            (std::vector<uint32_t>{0, 2, 3}));
  EXPECT_EQ(index.Rows(1).size(), 1u);
  EXPECT_EQ(index.UniqueRow(2), 4u);
  EXPECT_EQ(index.Rows(99).size(), 0u);
  EXPECT_EQ(index.UniqueRow(99), kNoMatch);
}

TEST(Result, ToStringTruncates) {
  QueryResult result;
  result.column_names = {"a", "b"};
  for (int i = 0; i < 20; ++i) result.AddRow({Cell(i), Cell(i * 2)});
  const std::string s = result.ToString(3);
  EXPECT_NE(s.find("a | b"), std::string::npos);
  EXPECT_NE(s.find("(17 more rows)"), std::string::npos);
}

TEST(Result, CellFormatsMoney) {
  EXPECT_EQ(Cell(3.14159), "3.14");
  EXPECT_EQ(Cell(static_cast<int64_t>(42)), "42");
  EXPECT_EQ(Cell(std::string("abc")), "abc");
}

}  // namespace
}  // namespace adict
