// Unit and property tests for the string compression codecs.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "text/bit_compress.h"
#include "text/codec.h"
#include "text/ngram.h"
#include "text/prefix_code.h"
#include "text/repair.h"
#include "util/bit_stream.h"
#include "util/rng.h"

namespace adict {
namespace {

std::vector<std::string_view> Views(const std::vector<std::string>& strings) {
  return {strings.begin(), strings.end()};
}

/// Encodes all strings into one stream, then decodes each by its bit range.
void ExpectRoundtrip(const StringCodec& codec,
                     const std::vector<std::string>& strings) {
  BitWriter writer;
  std::vector<uint64_t> offsets{0};
  for (const std::string& s : strings) {
    codec.Encode(s, &writer);
    offsets.push_back(writer.bit_count());
  }
  for (size_t i = 0; i < strings.size(); ++i) {
    BitReader reader(writer.bytes().data(), offsets[i]);
    std::string decoded;
    codec.Decode(&reader, offsets[i + 1] - offsets[i], &decoded);
    ASSERT_EQ(decoded, strings[i]) << "string " << i;
  }
}

uint64_t EncodedBits(const StringCodec& codec,
                     const std::vector<std::string>& strings) {
  BitWriter writer;
  uint64_t bits = 0;
  for (const std::string& s : strings) bits += codec.Encode(s, &writer);
  return bits;
}

uint64_t RawBits(const std::vector<std::string>& strings) {
  uint64_t chars = 0;
  for (const std::string& s : strings) chars += s.size();
  return chars * 8;
}

std::vector<std::string> EnglishLikeCorpus(int n, uint64_t seed) {
  static const char* kWords[] = {"the",    "quick", "brown",  "fox",
                                 "jumps",  "over",  "lazy",   "dog",
                                 "stream", "table", "column", "store"};
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    std::string s;
    const int words = 1 + static_cast<int>(rng.Uniform(5));
    for (int w = 0; w < words; ++w) {
      if (w) s.push_back(' ');
      s += kWords[rng.Uniform(std::size(kWords))];
    }
    out.push_back(std::move(s));
  }
  return out;
}

// -- Parameterized roundtrip across every codec kind ------------------------

class CodecRoundtripTest : public ::testing::TestWithParam<CodecKind> {};

TEST_P(CodecRoundtripTest, EnglishLikeStrings) {
  const std::vector<std::string> strings = EnglishLikeCorpus(300, 1);
  auto codec = TrainCodec(GetParam(), Views(strings));
  ASSERT_NE(codec, nullptr);
  ExpectRoundtrip(*codec, strings);
}

TEST_P(CodecRoundtripTest, EmptyStringsAllowed) {
  const std::vector<std::string> strings = {"", "a", "", "bb", ""};
  auto codec = TrainCodec(GetParam(), Views(strings));
  ExpectRoundtrip(*codec, strings);
}

TEST_P(CodecRoundtripTest, SingleDistinctCharacter) {
  const std::vector<std::string> strings = {"a", "aa", "aaa", "aaaaaaaa"};
  auto codec = TrainCodec(GetParam(), Views(strings));
  ExpectRoundtrip(*codec, strings);
}

TEST_P(CodecRoundtripTest, FullByteAlphabet) {
  std::vector<std::string> strings;
  for (int c = 0; c < 256; ++c) {
    strings.push_back(std::string(3, static_cast<char>(c)));
  }
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    std::string s;
    for (int j = 0; j < 20; ++j) {
      s.push_back(static_cast<char>(rng.Uniform(256)));
    }
    strings.push_back(std::move(s));
  }
  auto codec = TrainCodec(GetParam(), Views(strings));
  ExpectRoundtrip(*codec, strings);
}

TEST_P(CodecRoundtripTest, RandomizedFuzz) {
  Rng rng(3);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::string> strings;
    const int alphabet = 1 + static_cast<int>(rng.Uniform(60));
    for (int i = 0; i < 120; ++i) {
      std::string s;
      const int len = static_cast<int>(rng.Uniform(40));
      for (int j = 0; j < len; ++j) {
        s.push_back(static_cast<char>('!' + rng.Uniform(alphabet)));
      }
      strings.push_back(std::move(s));
    }
    auto codec = TrainCodec(GetParam(), Views(strings));
    ExpectRoundtrip(*codec, strings);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecRoundtripTest,
    ::testing::Values(CodecKind::kBitCompress, CodecKind::kHuffman,
                      CodecKind::kHuTucker, CodecKind::kNgram2,
                      CodecKind::kNgram3, CodecKind::kRePair12,
                      CodecKind::kRePair16),
    [](const ::testing::TestParamInfo<CodecKind>& info) {
      std::string name(CodecKindName(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// -- Bit compression ---------------------------------------------------------

TEST(BitCompress, WidthIsLogOfAlphabet) {
  const std::vector<std::string> two = {"abab"};
  EXPECT_EQ(BitCompressCodec::Train(Views(two))->bits_per_char(), 1);

  const std::vector<std::string> five = {"abcde"};
  EXPECT_EQ(BitCompressCodec::Train(Views(five))->bits_per_char(), 3);

  const std::vector<std::string> sixteen = {"0123456789abcdef"};
  EXPECT_EQ(BitCompressCodec::Train(Views(sixteen))->bits_per_char(), 4);

  const std::vector<std::string> seventeen = {"0123456789abcdefg"};
  EXPECT_EQ(BitCompressCodec::Train(Views(seventeen))->bits_per_char(), 5);
}

TEST(BitCompress, CompressesDigitsToFourBits) {
  std::vector<std::string> strings;
  Rng rng(4);
  for (int i = 0; i < 100; ++i) strings.push_back(rng.RandomString(10, "0123456789"));
  auto codec = BitCompressCodec::Train(Views(strings));
  EXPECT_EQ(EncodedBits(*codec, strings), RawBits(strings) * 4 / 8);
}

TEST(BitCompress, CodesPreserveCharacterOrder) {
  const std::vector<std::string> strings = {"dcba"};
  auto codec = BitCompressCodec::Train(Views(strings));
  BitWriter wa, wb, wc;
  codec->Encode("a", &wa);
  codec->Encode("b", &wb);
  codec->Encode("c", &wc);
  EXPECT_LT(wa.bytes()[0], wb.bytes()[0]);
  EXPECT_LT(wb.bytes()[0], wc.bytes()[0]);
}

// -- Huffman ------------------------------------------------------------------

double Entropy0(const std::vector<std::string>& strings) {
  std::array<uint64_t, 256> freqs{};
  uint64_t total = 0;
  for (const std::string& s : strings) {
    for (unsigned char c : s) {
      ++freqs[c];
      ++total;
    }
  }
  double h = 0;
  for (uint64_t f : freqs) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / total;
    h -= p * std::log2(p);
  }
  return h;
}

TEST(Huffman, WithinOneBitOfEntropy) {
  const std::vector<std::string> strings = EnglishLikeCorpus(500, 5);
  auto codec = HuffmanCodec::Train(Views(strings));
  const double bits_per_char =
      static_cast<double>(EncodedBits(*codec, strings)) / (RawBits(strings) / 8);
  const double entropy = Entropy0(strings);
  EXPECT_GE(bits_per_char, entropy - 1e-9);
  EXPECT_LE(bits_per_char, entropy + 1.0);
}

TEST(Huffman, SkewedDistributionGetsShortCodeForFrequentChar) {
  std::vector<std::string> strings = {std::string(1000, 'a')};
  strings.push_back("bcdefgh");
  auto codec = HuffmanCodec::Train(Views(strings));
  EXPECT_EQ(codec->CodeLength('a'), 1);
  EXPECT_GT(codec->CodeLength('b'), 1);
}

// -- Hu-Tucker ----------------------------------------------------------------

TEST(HuTucker, MatchesKnownOptimalAlphabeticCode) {
  // Classic example: weights (1, 2, 3, 4) have an optimal alphabetic tree
  // with depths (3, 3, 2, 1): cost 1*3 + 2*3 + 3*2 + 4*1 = 19.
  const std::vector<int> levels = HuTuckerCodec::ComputeLevels({1, 2, 3, 4});
  ASSERT_EQ(levels.size(), 4u);
  const int cost = 1 * levels[0] + 2 * levels[1] + 3 * levels[2] + 4 * levels[3];
  EXPECT_EQ(cost, 19);
}

TEST(HuTucker, UniformWeightsGiveBalancedTree) {
  const std::vector<int> levels = HuTuckerCodec::ComputeLevels({5, 5, 5, 5});
  EXPECT_EQ(levels, std::vector<int>({2, 2, 2, 2}));
}

TEST(HuTucker, LevelsSatisfyKraftEquality) {
  Rng rng(6);
  for (int round = 0; round < 100; ++round) {
    const int n = 2 + static_cast<int>(rng.Uniform(40));
    std::vector<uint64_t> weights(n);
    for (auto& w : weights) w = 1 + rng.Uniform(1000);
    const std::vector<int> levels = HuTuckerCodec::ComputeLevels(weights);
    double kraft = 0;
    for (int level : levels) kraft += std::ldexp(1.0, -level);
    EXPECT_NEAR(kraft, 1.0, 1e-12) << "round " << round;
  }
}

TEST(HuTucker, CostAtLeastHuffmanAndWithinOneBit) {
  // Alphabetic codes can never beat Huffman, and Hu-Tucker is known to cost
  // at most one extra bit per symbol.
  Rng rng(7);
  for (int round = 0; round < 30; ++round) {
    std::vector<std::string> strings;
    for (int i = 0; i < 150; ++i) {
      strings.push_back(rng.RandomString(1 + rng.Uniform(20),
                                         "aabbbcdeeeeefghiijklmnop"));
    }
    auto huffman = HuffmanCodec::Train(Views(strings));
    auto hu_tucker = HuTuckerCodec::Train(Views(strings));
    const uint64_t huffman_bits = EncodedBits(*huffman, strings);
    const uint64_t hu_tucker_bits = EncodedBits(*hu_tucker, strings);
    EXPECT_GE(hu_tucker_bits, huffman_bits);
    EXPECT_LE(hu_tucker_bits, huffman_bits + RawBits(strings) / 8);
  }
}

TEST(HuTucker, EncodedStringsPreserveOrder) {
  Rng rng(8);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::string> strings;
    for (int i = 0; i < 100; ++i) {
      strings.push_back(rng.RandomString(1 + rng.Uniform(12), "abcdefgh"));
    }
    auto codec = HuTuckerCodec::Train(Views(strings));

    // Compare encodings of single characters: they must be bit-ordered.
    // (Prefix-freeness then extends the order to whole strings.)
    std::string prev_bits;
    for (char ch = 'a'; ch <= 'h'; ++ch) {
      BitWriter writer;
      codec->Encode(std::string_view(&ch, 1), &writer);
      std::string bits;
      BitReader reader(writer.bytes().data(), 0);
      for (uint64_t i = 0; i < writer.bit_count(); ++i) {
        bits.push_back(reader.ReadBit() ? '1' : '0');
      }
      if (!prev_bits.empty()) {
        EXPECT_LT(prev_bits, bits) << "char " << ch;
        // Prefix-freeness.
        EXPECT_NE(bits.substr(0, prev_bits.size()), prev_bits);
      }
      prev_bits = bits;
    }
  }
}

// -- N-gram -------------------------------------------------------------------

TEST(Ngram, CoveredTextUsesOneCodePerNgram) {
  // Text consisting of a single repeated 2-gram compresses to 12 bits per
  // 2 characters.
  std::vector<std::string> strings(50, "abababab");  // 4 grams each
  auto codec = NgramCodec::Train(2, Views(strings));
  EXPECT_EQ(EncodedBits(*codec, strings), 50u * 4 * 12);
}

TEST(Ngram, UncoveredTextFallsBackToSingleCharCodes) {
  // Train on one alphabet, encode a string of chars that never form covered
  // grams: every char costs 12 bits (negative compression, as the paper
  // notes for high-variety content).
  std::vector<std::string> training(20, "aaaa");
  auto codec = NgramCodec::Train(2, Views(training));
  BitWriter writer;
  EXPECT_EQ(codec->Encode("xyz", &writer), 3u * 12);
}

TEST(Ngram, KeepsAtMost3840Ngrams) {
  // 100 distinct chars -> 10000 distinct 2-grams, more than the code space.
  std::vector<std::string> strings;
  Rng rng(9);
  std::string alphabet;
  for (int i = 0; i < 100; ++i) alphabet.push_back(static_cast<char>(32 + i));
  for (int i = 0; i < 4000; ++i) strings.push_back(rng.RandomString(24, alphabet));
  auto codec = NgramCodec::Train(2, Views(strings));
  EXPECT_LE(codec->num_ngrams(), NgramCodec::kNumNgramCodes);
  EXPECT_GT(codec->num_ngrams(), 3000);
  ExpectRoundtrip(*codec, strings);
}

TEST(Ngram3, GroupsOfThree) {
  std::vector<std::string> strings(50, "abcabcabc");  // 3 covered 3-grams
  auto codec = NgramCodec::Train(3, Views(strings));
  EXPECT_EQ(EncodedBits(*codec, strings), 50u * 3 * 12);
}

// -- Re-Pair ------------------------------------------------------------------

TEST(RePair, CompressesRepetitiveText) {
  std::vector<std::string> strings(200, "abcabcabcabcabcabc");
  auto codec = RePairCodec::Train(16, Views(strings));
  EXPECT_GT(codec->num_rules(), 0u);
  // 18 chars -> few symbols; must beat 8 bits/char comfortably.
  EXPECT_LT(EncodedBits(*codec, strings), RawBits(strings) / 2);
  ExpectRoundtrip(*codec, strings);
}

TEST(RePair, RandomTextBarelyCompresses) {
  Rng rng(10);
  std::vector<std::string> strings;
  std::string alphabet;
  for (int i = 33; i < 127; ++i) alphabet.push_back(static_cast<char>(i));
  for (int i = 0; i < 500; ++i) strings.push_back(rng.RandomString(10, alphabet));
  auto codec = RePairCodec::Train(12, Views(strings));
  // 12-bit symbols on incompressible text: size must not drop below ~75% of
  // one symbol per char.
  EXPECT_GT(EncodedBits(*codec, strings), RawBits(strings) * 3 / 4);
  ExpectRoundtrip(*codec, strings);
}

TEST(RePair, SymbolSpaceRespected) {
  // Highly repetitive long strings would love many rules; 12-bit space must
  // cap at 3840.
  Rng rng(11);
  std::vector<std::string> strings;
  for (int i = 0; i < 2000; ++i) {
    std::string s;
    for (int w = 0; w < 10; ++w) s += rng.NextDouble() < 0.5 ? "foo" : "barbaz";
    strings.push_back(std::move(s));
  }
  auto rp12 = RePairCodec::Train(12, Views(strings));
  EXPECT_LE(rp12->num_rules(), 4096u - 256u);
  ExpectRoundtrip(*rp12, strings);
}

TEST(RePair, RulesNeverCrossStringBoundaries) {
  // "ab" appears only split across consecutive strings; no rule may exploit
  // that, so every one-char string encodes as one symbol.
  std::vector<std::string> strings;
  for (int i = 0; i < 100; ++i) {
    strings.push_back("a");
    strings.push_back("b");
  }
  auto codec = RePairCodec::Train(16, Views(strings));
  BitWriter writer;
  EXPECT_EQ(codec->Encode("a", &writer), 16u);
  EXPECT_EQ(codec->Encode("b", &writer), 16u);
}

TEST(RePair, ExpandSymbolMatchesRules) {
  std::vector<std::string> strings(100, "mississippi");
  auto codec = RePairCodec::Train(16, Views(strings));
  ASSERT_GT(codec->num_rules(), 0u);
  std::string expansion;
  codec->ExpandSymbol('m', &expansion);
  EXPECT_EQ(expansion, "m");
}

TEST(RePair, OverlappingPairsHandled) {
  // Runs of a single character: "aa" occurrences overlap; training and
  // replay must both stay consistent.
  std::vector<std::string> strings;
  for (int i = 1; i <= 40; ++i) strings.push_back(std::string(i, 'a'));
  for (int bits : {12, 16}) {
    auto codec = RePairCodec::Train(bits, Views(strings));
    ExpectRoundtrip(*codec, strings);
  }
}

// -- Codec factory -----------------------------------------------------------

TEST(CodecFactory, NoneReturnsNull) {
  EXPECT_EQ(TrainCodec(CodecKind::kNone, {}), nullptr);
}

TEST(CodecFactory, NamesMatchPaper) {
  EXPECT_EQ(CodecKindName(CodecKind::kBitCompress), "bc");
  EXPECT_EQ(CodecKindName(CodecKind::kHuTucker), "hu");
  EXPECT_EQ(CodecKindName(CodecKind::kNgram2), "ng2");
  EXPECT_EQ(CodecKindName(CodecKind::kNgram3), "ng3");
  EXPECT_EQ(CodecKindName(CodecKind::kRePair12), "rp12");
  EXPECT_EQ(CodecKindName(CodecKind::kRePair16), "rp16");
}

}  // namespace
}  // namespace adict
