// HTTP exposition server and workload profiler tests: a loopback client
// exercises every route, the Prometheus exposition is checked for
// conformance (every histogram's +Inf bucket equals its _count within one
// scrape, even while a writer races the scrape), the JSON endpoints are
// validated with a small recursive-descent parser, and shutdown is proved
// clean under in-flight requests. The race cases at the bottom exist for
// the tsan CI job, which builds this binary with -fsanitize=thread.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dict/dictionary.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "obs/workload_profiler.h"
#include "store/string_column.h"
#include "store/table.h"

namespace adict {
namespace {

class HttpExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    obs::ResetForTest();
  }
};

// ---------------------------------------------------------------------------
// Loopback HTTP/1.1 client (blocking, one request per connection — which is
// exactly the server's contract: Connection: close).

struct HttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;
};

HttpResponse Fetch(int port, const std::string& method,
                   const std::string& target) {
  HttpResponse response;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return response;  // status 0 = connection refused
  }
  const std::string request = method + " " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    raw.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return response;
  response.body = raw.substr(header_end + 4);
  const std::string head = raw.substr(0, header_end);
  size_t line_end = head.find("\r\n");
  const std::string status_line =
      head.substr(0, line_end == std::string::npos ? head.size() : line_end);
  // "HTTP/1.1 200 OK"
  const size_t space = status_line.find(' ');
  if (space != std::string::npos) {
    response.status = std::atoi(status_line.c_str() + space + 1);
  }
  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t next = head.find("\r\n", pos);
    if (next == std::string::npos) next = head.size();
    const std::string line = head.substr(pos, next - pos);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = line.substr(0, colon);
      for (char& ch : name) ch = static_cast<char>(std::tolower(ch));
      size_t value_begin = colon + 1;
      while (value_begin < line.size() && line[value_begin] == ' ') {
        ++value_begin;
      }
      response.headers[name] = line.substr(value_begin);
    }
    pos = next + 2;
  }
  return response;
}

// ---------------------------------------------------------------------------
// Minimal JSON validator: accepts exactly the RFC 8259 grammar (minus the
// full number/escape fine print) and rejects truncated or unbalanced
// output. Enough to prove the endpoints emit parseable JSON.

bool SkipJsonValue(const std::string& s, size_t* pos);

void SkipSpace(const std::string& s, size_t* pos) {
  while (*pos < s.size() && std::isspace(static_cast<unsigned char>(s[*pos]))) {
    ++*pos;
  }
}

bool SkipJsonString(const std::string& s, size_t* pos) {
  if (*pos >= s.size() || s[*pos] != '"') return false;
  ++*pos;
  while (*pos < s.size() && s[*pos] != '"') {
    if (s[*pos] == '\\') ++*pos;  // skip the escaped character
    ++*pos;
  }
  if (*pos >= s.size()) return false;
  ++*pos;  // closing quote
  return true;
}

bool SkipJsonValue(const std::string& s, size_t* pos) {
  SkipSpace(s, pos);
  if (*pos >= s.size()) return false;
  const char ch = s[*pos];
  if (ch == '"') return SkipJsonString(s, pos);
  if (ch == '{' || ch == '[') {
    const char close = ch == '{' ? '}' : ']';
    ++*pos;
    SkipSpace(s, pos);
    if (*pos < s.size() && s[*pos] == close) {
      ++*pos;
      return true;
    }
    while (true) {
      if (ch == '{') {
        SkipSpace(s, pos);
        if (!SkipJsonString(s, pos)) return false;
        SkipSpace(s, pos);
        if (*pos >= s.size() || s[*pos] != ':') return false;
        ++*pos;
      }
      if (!SkipJsonValue(s, pos)) return false;
      SkipSpace(s, pos);
      if (*pos >= s.size()) return false;
      if (s[*pos] == ',') {
        ++*pos;
        continue;
      }
      if (s[*pos] == close) {
        ++*pos;
        return true;
      }
      return false;
    }
  }
  // true / false / null / number: consume the token.
  const size_t begin = *pos;
  while (*pos < s.size() &&
         (std::isalnum(static_cast<unsigned char>(s[*pos])) || s[*pos] == '+' ||
          s[*pos] == '-' || s[*pos] == '.' || s[*pos] == 'e' ||
          s[*pos] == 'E')) {
    ++*pos;
  }
  return *pos > begin;
}

bool IsValidJson(const std::string& s) {
  size_t pos = 0;
  if (!SkipJsonValue(s, &pos)) return false;
  SkipSpace(s, &pos);
  return pos == s.size();
}

// ---------------------------------------------------------------------------
// Exposition conformance: within one scrape, every histogram's +Inf bucket
// must equal its _count (both derive from one snapshot).

void CheckHistogramConsistency(const std::string& exposition) {
  std::map<std::string, uint64_t> inf_buckets;
  std::map<std::string, uint64_t> counts;
  size_t pos = 0;
  while (pos < exposition.size()) {
    size_t end = exposition.find('\n', pos);
    if (end == std::string::npos) end = exposition.size();
    const std::string line = exposition.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t inf = line.find("_bucket{le=\"+Inf\"} ");
    if (inf != std::string::npos) {
      inf_buckets[line.substr(0, inf)] =
          std::strtoull(line.c_str() + inf + 19, nullptr, 10);
      continue;
    }
    const size_t count = line.find("_count ");
    if (count != std::string::npos) {
      counts[line.substr(0, count)] =
          std::strtoull(line.c_str() + count + 7, nullptr, 10);
    }
  }
  EXPECT_FALSE(inf_buckets.empty());
  for (const auto& [name, inf_value] : inf_buckets) {
    ASSERT_TRUE(counts.contains(name)) << name;
    EXPECT_EQ(inf_value, counts[name]) << name;
  }
}

// ---------------------------------------------------------------------------
// Routes.

TEST_F(HttpExporterTest, StartsOnEphemeralPortAndStops) {
  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start().ok());
  EXPECT_TRUE(exporter.running());
  EXPECT_GT(exporter.port(), 0);
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  exporter.Stop();  // idempotent
}

TEST_F(HttpExporterTest, HealthzServesOk) {
  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start().ok());
  const HttpResponse response = Fetch(exporter.port(), "GET", "/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok\n");
  exporter.Stop();
}

TEST_F(HttpExporterTest, MetricsServesConformantExposition) {
  obs::RegisterProcessMetrics(kNumDictFormats);
  obs::Metrics().GetCounter("test.http.counter", "calls")->Increment(7);
  const std::vector<double> bounds = {1, 10, 100};
  obs::Histogram* histogram =
      obs::Metrics().GetHistogram("test.http.hist", bounds);
  for (int i = 0; i < 50; ++i) histogram->Observe(i);

  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start().ok());
  const HttpResponse response = Fetch(exporter.port(), "GET", "/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.headers.at("content-type").find("version=0.0.4"),
            std::string::npos);

  EXPECT_NE(response.body.find("test_http_counter 7"), std::string::npos);
  EXPECT_NE(response.body.find("adict_build_info{version=\"" +
                               std::string(obs::kBuildVersion) + "\",formats=\"" +
                               std::to_string(kNumDictFormats) + "\"} 1"),
            std::string::npos);
  EXPECT_NE(response.body.find("process_start_time_seconds"),
            std::string::npos);
  CheckHistogramConsistency(response.body);
  exporter.Stop();
}

TEST_F(HttpExporterTest, MetricsStaysConsistentUnderConcurrentObserves) {
  const std::vector<double> bounds = {1, 10, 100};
  obs::Histogram* histogram =
      obs::Metrics().GetHistogram("test.http.race_hist", bounds);
  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start().ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      histogram->Observe(static_cast<double>(i++ % 200));
    }
  });
  for (int scrape = 0; scrape < 20; ++scrape) {
    const HttpResponse response = Fetch(exporter.port(), "GET", "/metrics");
    ASSERT_EQ(response.status, 200);
    CheckHistogramConsistency(response.body);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  exporter.Stop();
}

TEST_F(HttpExporterTest, MetricsRefreshesHeatGaugesAtScrapeTime) {
  obs::ColumnHeat* slot = obs::Profiler().GetColumn("scrape.heat_column");
  slot->RecordOp(obs::ColumnOp::kExtract, 640, 0);

  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start().ok());
  const HttpResponse response = Fetch(exporter.port(), "GET", "/metrics");
  EXPECT_EQ(response.status, 200);
  // The 640 ops recorded above were never folded explicitly; the scrape did.
  EXPECT_NE(response.body.find("profiler_heat_scrape_heat_column 640"),
            std::string::npos);
  exporter.Stop();
}

TEST_F(HttpExporterTest, JsonEndpointsServeValidJson) {
  // Put something into each source so the bodies are not trivially empty.
  Table table("http");
  std::vector<std::string> values;
  for (int i = 0; i < 200; ++i) values.push_back("v" + std::to_string(i % 50));
  table.AddStringColumn("col",
                        StringColumn::FromValues(values, DictFormat::kArray));
  {
    obs::ScopedQueryProfile profile("test.query");
    for (uint64_t row = 0; row < 100; ++row) {
      (void)table.strings("col").GetValue(row);
    }
  }
  obs::Profiler().RecordSchedulerRanking({{"http.col", 1.5, 2.0, 4096, 3.0}});

  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start().ok());
  for (const char* target : {"/decisions.json", "/profile.json", "/spans.json"}) {
    const HttpResponse response = Fetch(exporter.port(), "GET", target);
    EXPECT_EQ(response.status, 200) << target;
    EXPECT_NE(response.headers.at("content-type").find("application/json"),
              std::string::npos)
        << target;
    EXPECT_TRUE(IsValidJson(response.body)) << target << "\n" << response.body;
  }
  const HttpResponse profile = Fetch(exporter.port(), "GET", "/profile.json");
  EXPECT_NE(profile.body.find("\"http.col\""), std::string::npos);
  EXPECT_NE(profile.body.find("\"test.query\""), std::string::npos);
  EXPECT_NE(profile.body.find("\"scheduler_ranking\""), std::string::npos);
  exporter.Stop();
}

TEST_F(HttpExporterTest, UnknownTargetIs404UnsupportedMethodIs405) {
  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start().ok());
  EXPECT_EQ(Fetch(exporter.port(), "GET", "/nope").status, 404);
  const HttpResponse post_metrics = Fetch(exporter.port(), "POST", "/metrics");
  EXPECT_EQ(post_metrics.status, 405);
  EXPECT_EQ(post_metrics.headers.at("allow"), "GET");
  const HttpResponse get_trace = Fetch(exporter.port(), "GET", "/trace/start");
  EXPECT_EQ(get_trace.status, 405);
  EXPECT_EQ(get_trace.headers.at("allow"), "POST");
  exporter.Stop();
}

TEST_F(HttpExporterTest, TraceTogglesAtRuntime) {
  obs::SetTraceEnabled(false);
  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start().ok());

  const HttpResponse start = Fetch(exporter.port(), "POST", "/trace/start");
  EXPECT_EQ(start.status, 200);
  EXPECT_NE(start.body.find("\"tracing\":true"), std::string::npos);
  EXPECT_TRUE(obs::TraceEnabled());
  { ADICT_TRACE_SPAN("obs.http.request"); }  // record something

  const std::string out =
      ::testing::TempDir() + "/adict_http_exporter_trace.json";
  std::remove(out.c_str());
  const HttpResponse stop =
      Fetch(exporter.port(), "POST", "/trace/stop?out=" + out);
  EXPECT_EQ(stop.status, 200);
  EXPECT_FALSE(obs::TraceEnabled());
  std::FILE* f = std::fopen(out.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string written;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    written.append(buffer, n);
  }
  std::fclose(f);
  std::remove(out.c_str());
  EXPECT_TRUE(IsValidJson(written)) << written;
  EXPECT_NE(written.find("obs.http.request"), std::string::npos);

  // Without ?out=, the trace JSON is the response body.
  (void)Fetch(exporter.port(), "POST", "/trace/start");
  const HttpResponse inline_stop = Fetch(exporter.port(), "POST", "/trace/stop");
  EXPECT_EQ(inline_stop.status, 200);
  EXPECT_TRUE(IsValidJson(inline_stop.body));
  exporter.Stop();
}

TEST_F(HttpExporterTest, FixedPortIsHonoredAndCollisionFailsCleanly) {
  obs::HttpExporter first;
  ASSERT_TRUE(first.Start().ok());
  obs::HttpExporter::Options options;
  options.port = first.port();
  obs::HttpExporter second(options);
  const Status status = second.Start();
  EXPECT_FALSE(status.ok());  // port in use: an error, never an abort
  EXPECT_FALSE(second.running());
  first.Stop();
}

TEST_F(HttpExporterTest, StopDrainsInFlightRequests) {
  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start().ok());
  const int port = exporter.port();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const HttpResponse response = Fetch(port, "GET", "/metrics");
        // During shutdown the connection may be refused (status 0); any
        // response that did come back must be complete and well-formed.
        if (response.status != 0) {
          EXPECT_EQ(response.status, 200);
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Let the hammering overlap the shutdown window.
  while (completed.load(std::memory_order_relaxed) < 8) {
    std::this_thread::yield();
  }
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();
  EXPECT_GE(completed.load(), 8u);
}

// ---------------------------------------------------------------------------
// Workload profiler semantics.

TEST_F(HttpExporterTest, DecayedHeatHalvesPerHalfLife) {
  obs::Profiler().set_half_life_seconds(30.0);
  obs::ColumnHeat* slot = obs::Profiler().GetColumn("decay.column");
  slot->RecordOp(obs::ColumnOp::kExtract, 1000, 0);
  EXPECT_NEAR(slot->DecayedHeat(), 1000.0, 1.0);
  slot->DecayForTest(30.0);  // one half-life
  EXPECT_NEAR(slot->DecayedHeat(), 500.0, 1.0);
  slot->DecayForTest(60.0);  // two more
  EXPECT_NEAR(slot->DecayedHeat(), 125.0, 1.0);
  // New traffic folds in at full weight on top of the decayed base.
  slot->RecordOp(obs::ColumnOp::kLocate, 1000, 0);
  EXPECT_NEAR(slot->DecayedHeat(), 1125.0, 1.5);
}

TEST_F(HttpExporterTest, SingletonLatencySamplingRepresentsAllOps) {
  obs::ColumnHeat* slot = obs::Profiler().GetColumn("sampling.column");
  constexpr int kCalls = 128;  // two full sample periods
  for (int i = 0; i < kCalls; ++i) {
    obs::ScopedColumnOp op(slot, obs::ColumnOp::kExtract);
    op.AddBytes(10);
  }
  const obs::ColumnHeat::OpTotals totals =
      slot->Totals(obs::ColumnOp::kExtract);
  EXPECT_EQ(totals.count, static_cast<uint64_t>(kCalls));
  EXPECT_EQ(totals.bytes, static_cast<uint64_t>(kCalls) * 10);
  // Calls 0 and 64 were timed; each observation stands for 64 ops.
  EXPECT_EQ(slot->latency(obs::ColumnOp::kExtract).count(), 2u);
  EXPECT_GT(totals.total_us, 0.0);

  // Batches are always timed exactly.
  { obs::ScopedColumnOp batch(slot, obs::ColumnOp::kScan, 500); }
  EXPECT_EQ(slot->latency(obs::ColumnOp::kScan).count(), 1u);
  EXPECT_EQ(slot->Totals(obs::ColumnOp::kScan).count, 500u);
}

TEST_F(HttpExporterTest, ScopedQueryProfileAttributesOnlyScopedWork) {
  obs::ColumnHeat* touched = obs::Profiler().GetColumn("attr.touched");
  obs::ColumnHeat* untouched = obs::Profiler().GetColumn("attr.untouched");
  untouched->RecordOp(obs::ColumnOp::kExtract, 99, 0);  // before the query
  {
    obs::ScopedQueryProfile profile("attributed.query");
    touched->RecordOp(obs::ColumnOp::kExtract, 42, 84);
  }
  const std::vector<obs::QueryAttribution> queries =
      obs::Profiler().RecentQueries();
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_EQ(queries[0].query, "attributed.query");
  EXPECT_GT(queries[0].wall_us, 0.0);
  ASSERT_EQ(queries[0].columns.size(), 1u);  // untouched column: no diff
  EXPECT_EQ(queries[0].columns[0].column, "attr.touched");
  const auto extract_index = static_cast<size_t>(obs::ColumnOp::kExtract);
  EXPECT_EQ(queries[0].columns[0].ops[extract_index].count, 42u);
  EXPECT_EQ(queries[0].columns[0].ops[extract_index].bytes, 84u);
}

TEST_F(HttpExporterTest, QueryRingIsBounded) {
  obs::ColumnHeat* slot = obs::Profiler().GetColumn("ring.column");
  for (size_t i = 0; i < obs::WorkloadProfiler::kQueryRingCapacity + 10; ++i) {
    obs::ScopedQueryProfile profile("q" + std::to_string(i));
    slot->RecordOp(obs::ColumnOp::kExtract, 1, 0);
  }
  const std::vector<obs::QueryAttribution> queries =
      obs::Profiler().RecentQueries();
  EXPECT_EQ(queries.size(), obs::WorkloadProfiler::kQueryRingCapacity);
  EXPECT_EQ(obs::Profiler().total_queries(),
            obs::WorkloadProfiler::kQueryRingCapacity + 10);
  // Oldest entries were evicted; the newest survives.
  EXPECT_EQ(queries.back().query,
            "q" + std::to_string(obs::WorkloadProfiler::kQueryRingCapacity + 9));
}

TEST_F(HttpExporterTest, DisabledObservabilityMakesRecordingFree) {
  obs::ColumnHeat* slot = obs::Profiler().GetColumn("disabled.column");
  obs::SetEnabled(false);
  {
    obs::ScopedColumnOp op(slot, obs::ColumnOp::kExtract);
    op.AddBytes(100);
  }
  obs::SetEnabled(true);
  EXPECT_EQ(slot->Totals(obs::ColumnOp::kExtract).count, 0u);
  EXPECT_EQ(slot->TotalOps(), 0u);
}

// ---------------------------------------------------------------------------
// Races (the tsan CI job builds this binary with -fsanitize=thread).

TEST_F(HttpExporterTest, ProfilerUpdatesRaceScrapesCleanly) {
  obs::ColumnHeat* slot = obs::Profiler().GetColumn("race.column");
  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start().ok());
  const int port = exporter.port();

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        obs::ScopedColumnOp op(slot, obs::ColumnOp::kExtract);
        op.AddBytes(16);
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)slot->DecayedHeat();
      obs::ScopedQueryProfile profile("race.query");
      slot->RecordOp(obs::ColumnOp::kLocate, 1, 1);
    }
  });
  for (int scrape = 0; scrape < 10; ++scrape) {
    EXPECT_EQ(Fetch(port, "GET", "/metrics").status, 200);
    EXPECT_EQ(Fetch(port, "GET", "/profile.json").status, 200);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  exporter.Stop();
  EXPECT_GT(slot->TotalOps(), 0u);
}

}  // namespace
}  // namespace adict
