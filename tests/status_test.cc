// Tests for the Status/StatusOr error-propagation primitives and CRC-32.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "util/crc32.h"
#include "util/status.h"

namespace adict {
namespace {

TEST(Status, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_EQ(status, Status::Ok());
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    std::string_view name;
  };
  const Case cases[] = {
      {Status::Corruption("m"), StatusCode::kCorruption, "CORRUPTION"},
      {Status::Truncated("m"), StatusCode::kTruncated, "TRUNCATED"},
      {Status::UnsupportedVersion("m"), StatusCode::kUnsupportedVersion,
       "UNSUPPORTED_VERSION"},
      {Status::ResourceExhausted("m"), StatusCode::kResourceExhausted,
       "RESOURCE_EXHAUSTED"},
      {Status::FailedPrecondition("m"), StatusCode::kFailedPrecondition,
       "FAILED_PRECONDITION"},
      {Status::IoError("m"), StatusCode::kIoError, "IO_ERROR"},
      {Status::Internal("m"), StatusCode::kInternal, "INTERNAL"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "m");
    EXPECT_EQ(c.status.ToString(), std::string(c.name) + ": m");
    EXPECT_EQ(StatusCodeName(c.code), c.name);
  }
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.status().ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  result.value() = 7;
  EXPECT_EQ(*result, 7);
}

TEST(StatusOr, HoldsError) {
  const StatusOr<int> result = Status::Corruption("bad bytes");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(result.status().message(), "bad bytes");
}

TEST(StatusOr, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(**result, 5);
  std::unique_ptr<int> moved = std::move(result).value();
  EXPECT_EQ(*moved, 5);
}

TEST(StatusOr, ArrowReachesMembers) {
  StatusOr<std::string> result = std::string("hello");
  EXPECT_EQ(result->size(), 5u);
}

TEST(StatusOrDeathTest, AccessingErrorValueIsFatal) {
  const StatusOr<int> result = Status::Truncated("cut");
  EXPECT_DEATH((void)result.value(), "TRUNCATED");
}

TEST(StatusOrDeathTest, OkStatusIsNotAValue) {
  EXPECT_DEATH(StatusOr<int>{Status::Ok()}, "OK status");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::FailedPrecondition("negative");
  return Status::Ok();
}

Status Chain(int x, bool* reached_end) {
  ADICT_RETURN_IF_ERROR(FailIfNegative(x));
  *reached_end = true;
  return Status::Ok();
}

TEST(Status, ReturnIfErrorPropagates) {
  bool reached_end = false;
  EXPECT_EQ(Chain(-1, &reached_end).code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(reached_end);
  EXPECT_TRUE(Chain(1, &reached_end).ok());
  EXPECT_TRUE(reached_end);
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected) — the envelope checksum.

TEST(Crc32, KnownVectors) {
  // The standard check value for CRC-32/ISO-HDLC.
  EXPECT_EQ(Crc32Of("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32Of("", 0), 0x00000000u);
  EXPECT_EQ(Crc32Of("a", 1), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  Crc32 crc;
  for (char ch : data) crc.Update(&ch, 1);
  EXPECT_EQ(crc.value(), Crc32Of(data.data(), data.size()));
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  const uint32_t baseline = Crc32Of(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<uint8_t>(1 << bit);
      EXPECT_NE(Crc32Of(data.data(), data.size()), baseline)
          << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<uint8_t>(1 << bit);
    }
  }
}

}  // namespace
}  // namespace adict
