// Tests for the prediction framework (properties, size models, cost model)
// and the compression manager (trade-off strategies, feedback controller).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/compression_manager.h"
#include "core/controller.h"
#include "core/cost_model.h"
#include "core/properties.h"
#include "core/size_model.h"
#include "core/tradeoff.h"
#include "datasets/generators.h"
#include "dict/dictionary.h"

namespace adict {
namespace {

// -- Properties ---------------------------------------------------------------

TEST(Properties, ExactMeasurementOfKnownContent) {
  const std::vector<std::string> sorted = {"aa", "ab", "ba", "bb"};
  const DictionaryProperties props =
      SampleProperties(sorted, SamplingConfig::Exact());
  EXPECT_EQ(props.num_strings, 4u);
  EXPECT_DOUBLE_EQ(props.raw_chars, 8.0);
  EXPECT_EQ(props.distinct_chars, 2);
  // Uniform 'a'/'b' distribution: exactly one bit of order-0 entropy.
  EXPECT_NEAR(props.entropy0, 1.0, 1e-12);
  EXPECT_EQ(props.max_string_len, 2u);
  // Four distinct 2-grams, all covered by proper codes.
  EXPECT_DOUBLE_EQ(props.ng2_coverage, 1.0);
  EXPECT_EQ(props.ng2_table_grams, 4);
  EXPECT_DOUBLE_EQ(props.sampled_fraction, 1.0);
}

TEST(Properties, EmptyDictionary) {
  const std::vector<std::string> empty;
  const DictionaryProperties props =
      SampleProperties(empty, SamplingConfig::Default());
  EXPECT_EQ(props.num_strings, 0u);
  EXPECT_DOUBLE_EQ(props.raw_chars, 0.0);
}

TEST(Properties, SampleScalesRawChars) {
  // Fixed-length strings: any sample extrapolates raw_chars exactly.
  const std::vector<std::string> sorted = GenerateSurveyDataset("hash", 8000, 1);
  const DictionaryProperties props =
      SampleProperties(sorted, SamplingConfig{0.01, 500});
  EXPECT_NEAR(props.raw_chars, static_cast<double>(RawDataBytes(sorted)), 1.0);
  EXPECT_NEAR(props.sampled_fraction, 500.0 / 8000.0, 1e-9);
}

TEST(Properties, MinEntriesFloorApplies) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("mat", 3000, 2);
  // 1% of 3000 would be 30 entries; the floor raises it to 2000.
  const DictionaryProperties props =
      SampleProperties(sorted, SamplingConfig{0.01, 2000});
  EXPECT_NEAR(props.sampled_fraction, 2000.0 / 3000.0, 1e-9);
}

TEST(Properties, FrontCodingSeesSuffixSavings) {
  // URLs share long prefixes: the fc character count must be well below the
  // raw character count.
  const std::vector<std::string> sorted = GenerateSurveyDataset("url", 4000, 3);
  const DictionaryProperties props =
      SampleProperties(sorted, SamplingConfig::Exact());
  EXPECT_LT(props.fc_raw_chars, 0.5 * props.raw_chars);
  // Difference-to-first stores at least as many characters as chained
  // differences.
  EXPECT_GE(props.fc_df_raw_chars, props.fc_raw_chars);
}

// -- Size model ---------------------------------------------------------------

class SizeModelDatasetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SizeModelDatasetTest, ExactPropertiesPredictWithin20Percent) {
  const std::vector<std::string> sorted =
      GenerateSurveyDataset(GetParam(), 6000, 4);
  const DictionaryProperties props =
      SampleProperties(sorted, SamplingConfig::Exact());
  std::vector<double> errors;
  for (DictFormat format : AllDictFormats()) {
    auto dict = BuildDictionary(format, sorted);
    const double err = PredictionError(
        static_cast<double>(dict->MemoryBytes()),
        PredictDictionarySize(format, props));
    EXPECT_LT(err, 0.20) << DictFormatName(format);
    errors.push_back(err);
  }
  // Most predictions must be much tighter (paper: >75% below 2% at 100%).
  std::sort(errors.begin(), errors.end());
  EXPECT_LT(errors[errors.size() * 3 / 4], 0.05);
}

TEST_P(SizeModelDatasetTest, SampledPropertiesPredictWithin30Percent) {
  const std::vector<std::string> sorted =
      GenerateSurveyDataset(GetParam(), 12000, 5);
  const DictionaryProperties props =
      SampleProperties(sorted, SamplingConfig{0.01, 1000});
  std::vector<double> errors;
  for (DictFormat format : AllDictFormats()) {
    auto dict = BuildDictionary(format, sorted);
    const double err = PredictionError(
        static_cast<double>(dict->MemoryBytes()),
        PredictDictionarySize(format, props));
    EXPECT_LT(err, 0.30) << DictFormatName(format);
    errors.push_back(err);
  }
  std::sort(errors.begin(), errors.end());
  EXPECT_LT(errors[errors.size() * 3 / 4], 0.12);
}

INSTANTIATE_TEST_SUITE_P(Datasets, SizeModelDatasetTest,
                         ::testing::Values("mat", "url", "rand2"),
                         [](const auto& info) { return info.param; });

TEST(SizeModel, RanksColumnBcBestOnFixedLengthData) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("hash", 5000, 6);
  const DictionaryProperties props =
      SampleProperties(sorted, SamplingConfig::Exact());
  const double colbc = PredictDictionarySize(DictFormat::kColumnBc, props);
  const double array = PredictDictionarySize(DictFormat::kArray, props);
  EXPECT_LT(colbc, array);
}

TEST(SizeModel, RanksRePairBestOnRedundantText) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("src", 5000, 7);
  const DictionaryProperties props =
      SampleProperties(sorted, SamplingConfig::Exact());
  double best = 1e18;
  DictFormat best_format = DictFormat::kArray;
  for (DictFormat format : AllDictFormats()) {
    const double size = PredictDictionarySize(format, props);
    if (size < best) {
      best = size;
      best_format = format;
    }
  }
  EXPECT_TRUE(best_format == DictFormat::kFcBlockRp12 ||
              best_format == DictFormat::kFcBlockRp16 ||
              best_format == DictFormat::kArrayRp12 ||
              best_format == DictFormat::kArrayRp16)
      << DictFormatName(best_format);
}

TEST(SizeModel, PredictionErrorDefinition) {
  EXPECT_DOUBLE_EQ(PredictionError(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(PredictionError(100, 90), 0.1);
  EXPECT_DOUBLE_EQ(PredictionError(100, 110), 0.1);
}

// -- Cost model ---------------------------------------------------------------

TEST(CostModel, DefaultHasPositiveCostsForAllFormats) {
  const CostModel model = CostModel::Default();
  for (DictFormat format : AllDictFormats()) {
    const MethodCosts& costs = model.costs(format);
    EXPECT_GT(costs.extract_us, 0) << DictFormatName(format);
    EXPECT_GT(costs.locate_us, 0) << DictFormatName(format);
    EXPECT_GT(costs.construct_us, 0) << DictFormatName(format);
  }
}

TEST(CostModel, DefaultOrdersUncompressedFasterThanRePair) {
  const CostModel model = CostModel::Default();
  EXPECT_LT(model.costs(DictFormat::kArray).extract_us,
            model.costs(DictFormat::kArrayRp16).extract_us);
  EXPECT_LT(model.costs(DictFormat::kArray).construct_us,
            model.costs(DictFormat::kArrayRp16).construct_us);
}

TEST(CostModel, SetCostsOverrides) {
  CostModel model = CostModel::Default();
  model.set_costs(DictFormat::kArray, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(model.costs(DictFormat::kArray).extract_us, 1.0);
  EXPECT_DOUBLE_EQ(model.costs(DictFormat::kArray).locate_us, 2.0);
  EXPECT_DOUBLE_EQ(model.costs(DictFormat::kArray).construct_us, 3.0);
}

TEST(CostModel, CalibrationProducesPlausibleConstants) {
  // Tiny calibration run: magnitudes are machine dependent but must be
  // positive and roughly ordered.
  const CostModel model = CalibrateCostModel({500, 500, 1});
  for (DictFormat format : AllDictFormats()) {
    EXPECT_GT(model.costs(format).extract_us, 0) << DictFormatName(format);
  }
  EXPECT_LT(model.costs(DictFormat::kArray).extract_us,
            model.costs(DictFormat::kFcBlockRp16).extract_us);
}

// -- Trade-off evaluation and selection ----------------------------------------

DictionaryProperties TestProps() {
  const std::vector<std::string> sorted = GenerateSurveyDataset("mat", 4000, 8);
  return SampleProperties(sorted, SamplingConfig::Exact());
}

TEST(Tradeoff, EvaluateProducesAllCandidates) {
  ColumnUsage usage;
  usage.num_extracts = 10000;
  usage.num_locates = 100;
  usage.lifetime_seconds = 600;
  usage.column_vector_bytes = 50000;
  const std::vector<Candidate> candidates =
      EvaluateCandidates(TestProps(), usage, CostModel::Default());
  ASSERT_EQ(candidates.size(), static_cast<size_t>(kNumDictFormats));
  for (const Candidate& cand : candidates) {
    EXPECT_GT(cand.size_bytes, 50000.0) << DictFormatName(cand.format);
    EXPECT_GT(cand.rel_time, 0.0) << DictFormatName(cand.format);
  }
}

TEST(Tradeoff, RelTimeScalesWithAccessCounts) {
  const DictionaryProperties props = TestProps();
  ColumnUsage cold;
  cold.num_extracts = 10;
  cold.lifetime_seconds = 600;
  ColumnUsage hot = cold;
  hot.num_extracts = 10000000;
  const auto cold_cands = EvaluateCandidates(props, cold, CostModel::Default());
  const auto hot_cands = EvaluateCandidates(props, hot, CostModel::Default());
  for (size_t i = 0; i < cold_cands.size(); ++i) {
    EXPECT_GT(hot_cands[i].rel_time, cold_cands[i].rel_time);
    EXPECT_DOUBLE_EQ(hot_cands[i].size_bytes, cold_cands[i].size_bytes);
  }
}

class StrategyTest : public ::testing::TestWithParam<TradeoffStrategy> {};

TEST_P(StrategyTest, ZeroCSelectsNearSmallest) {
  ColumnUsage usage;
  usage.num_extracts = 1000;
  usage.lifetime_seconds = 600;
  const auto candidates =
      EvaluateCandidates(TestProps(), usage, CostModel::Default());
  const SelectionDetails details =
      SelectFormatDetailed(candidates, 0.0, GetParam());
  // With c = 0 only variants at most as large as the smallest are admitted,
  // so the selected size equals the minimum size.
  double min_size = 1e18, selected_size = 0;
  for (const Candidate& cand : candidates) {
    min_size = std::min(min_size, cand.size_bytes);
    if (cand.format == details.selected) selected_size = cand.size_bytes;
  }
  EXPECT_DOUBLE_EQ(selected_size, min_size);
}

TEST_P(StrategyTest, HugeCSelectsFastest) {
  ColumnUsage usage;
  usage.num_extracts = 1000;
  usage.lifetime_seconds = 600;
  const auto candidates =
      EvaluateCandidates(TestProps(), usage, CostModel::Default());
  const SelectionDetails details =
      SelectFormatDetailed(candidates, 1e6, GetParam());
  EXPECT_EQ(details.selected, details.fastest);
}

TEST_P(StrategyTest, SelectedTimeMonotoneInC) {
  ColumnUsage usage;
  usage.num_extracts = 50000;
  usage.num_locates = 500;
  usage.lifetime_seconds = 600;
  const auto candidates =
      EvaluateCandidates(TestProps(), usage, CostModel::Default());
  double prev_time = 1e18;
  for (double c : {0.0, 0.01, 0.1, 0.5, 1.0, 5.0, 50.0}) {
    const DictFormat selected = SelectFormat(candidates, c, GetParam());
    double time = 0;
    for (const Candidate& cand : candidates) {
      if (cand.format == selected) time = cand.rel_time;
    }
    EXPECT_LE(time, prev_time) << "c = " << c;
    prev_time = time;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyTest,
                         ::testing::Values(TradeoffStrategy::kConst,
                                           TradeoffStrategy::kRel,
                                           TradeoffStrategy::kTilt),
                         [](const auto& info) {
                           return std::string(
                               TradeoffStrategyName(info.param));
                         });

TEST(Tradeoff, TiltAdmitsFasterFormatsForHotColumns) {
  // The paper's motivation for tilt: with the same c, a hot column should
  // get a faster (bigger) dictionary than a cold one. f_const cannot do
  // that; f_tilt can.
  const DictionaryProperties props = TestProps();
  ColumnUsage cold;
  cold.num_extracts = 100;
  cold.lifetime_seconds = 600;
  ColumnUsage hot = cold;
  // Extract-dominated and lifetime-saturating: the smallest variant would
  // spend more than the whole merge interval answering extracts, which is
  // the boundary condition at which tilt must hand out the fastest format.
  // With the calibrated constants, the smallest candidate extracts in a few
  // hundred nanoseconds; 20e9 extracts over a 600 s lifetime puts its
  // rel_time well above 1 for any plausible calibration.
  hot.num_extracts = 20000000000ull;

  const CostModel costs = CostModel::Default();
  const double c = 0.05;
  const auto cold_sel = SelectFormatDetailed(
      EvaluateCandidates(props, cold, costs), c, TradeoffStrategy::kTilt);
  const auto hot_sel = SelectFormatDetailed(
      EvaluateCandidates(props, hot, costs), c, TradeoffStrategy::kTilt);
  const auto hot_const = SelectFormatDetailed(
      EvaluateCandidates(props, hot, costs), c, TradeoffStrategy::kConst);

  // Identical admission set regardless of heat for const...
  EXPECT_EQ(hot_const.selected, SelectFormatDetailed(
                                    EvaluateCandidates(props, cold, costs), c,
                                    TradeoffStrategy::kConst)
                                    .selected);
  // ...but tilt upgrades the hot column to the fastest format.
  EXPECT_EQ(hot_sel.selected, hot_sel.fastest);
  EXPECT_NE(cold_sel.selected, cold_sel.fastest);
}

TEST(Tradeoff, DetailsExposeDividingLine) {
  ColumnUsage usage;
  usage.num_extracts = 10000;
  usage.lifetime_seconds = 600;
  const auto candidates =
      EvaluateCandidates(TestProps(), usage, CostModel::Default());
  const SelectionDetails details =
      SelectFormatDetailed(candidates, 0.3, TradeoffStrategy::kTilt);
  ASSERT_EQ(details.threshold.size(), candidates.size());
  // The selected candidate must be admitted by its own threshold.
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].format == details.selected) {
      EXPECT_LE(candidates[i].size_bytes, details.threshold[i]);
    }
  }
}

// -- Feedback controller --------------------------------------------------------

TEST(Controller, MemoryPressureLowersC) {
  TradeoffController controller;
  const double initial = controller.c();
  for (int i = 0; i < 10; ++i) controller.Observe(0.0, 100.0);  // no free mem
  EXPECT_LT(controller.c(), initial);
}

TEST(Controller, HeadroomRaisesC) {
  TradeoffController controller;
  const double initial = controller.c();
  for (int i = 0; i < 10; ++i) controller.Observe(90.0, 100.0);
  EXPECT_GT(controller.c(), initial);
}

TEST(Controller, DeadBandHoldsCAtTarget) {
  TradeoffController::Options options;
  options.target_free_fraction = 0.25;
  TradeoffController controller(options);
  const double initial = controller.c();
  for (int i = 0; i < 20; ++i) controller.Observe(25.0, 100.0);
  EXPECT_DOUBLE_EQ(controller.c(), initial);
}

TEST(Controller, CStaysWithinBounds) {
  TradeoffController::Options options;
  options.min_c = 0.01;
  options.max_c = 1.0;
  TradeoffController controller(options);
  for (int i = 0; i < 100; ++i) controller.Observe(0.0, 100.0);
  EXPECT_GE(controller.c(), 0.01);
  for (int i = 0; i < 200; ++i) controller.Observe(100.0, 100.0);
  EXPECT_LE(controller.c(), 1.0);
}

TEST(Controller, SmoothingDampensSpikes) {
  TradeoffController::Options options;
  options.smoothing = 0.1;
  TradeoffController controller(options);
  controller.Observe(50.0, 100.0);
  EXPECT_NEAR(controller.smoothed_free_fraction(), 0.5, 1e-12);
  // A single spike to 100% moves the smoothed value only slightly.
  controller.Observe(100.0, 100.0);
  EXPECT_NEAR(controller.smoothed_free_fraction(), 0.55, 1e-12);
}

// -- Compression manager ---------------------------------------------------------

TEST(CompressionManager, LowCFavorsCompressionHighCFavorsSpeed) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("mat", 4000, 9);
  ColumnUsage usage;
  usage.num_extracts = 100000;
  usage.lifetime_seconds = 600;

  CompressionManager manager;
  manager.set_c(1e-3);
  const DictFormat small_format = manager.ChooseFormat(sorted, usage);
  manager.set_c(10.0);
  const DictFormat fast_format = manager.ChooseFormat(sorted, usage);

  auto small_dict = BuildDictionary(small_format, sorted);
  auto fast_dict = BuildDictionary(fast_format, sorted);
  EXPECT_LE(small_dict->MemoryBytes(), fast_dict->MemoryBytes());

  const CostModel costs = CostModel::Default();
  EXPECT_LE(costs.costs(fast_format).extract_us,
            costs.costs(small_format).extract_us);
}

TEST(CompressionManager, BuildAdaptiveDictionaryIsUsable) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("engl", 2000, 10);
  CompressionManager manager;
  ColumnUsage usage;
  usage.num_extracts = 1000;
  usage.lifetime_seconds = 600;
  auto dict = manager.BuildAdaptiveDictionary(sorted, usage);
  ASSERT_NE(dict, nullptr);
  EXPECT_EQ(dict->size(), sorted.size());
  EXPECT_EQ(dict->Extract(17), sorted[17]);
  EXPECT_TRUE(dict->Locate(sorted[42]).found);
}

TEST(CompressionManager, ControllerDrivesFormatChoice) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("url", 3000, 11);
  ColumnUsage usage;
  usage.num_extracts = 100000;
  usage.lifetime_seconds = 600;

  CompressionManager manager;
  // Sustained memory pressure...
  for (int i = 0; i < 30; ++i) manager.controller().Observe(0.0, 100.0);
  auto pressured = BuildDictionary(manager.ChooseFormat(sorted, usage), sorted);
  // ...vs sustained head-room.
  for (int i = 0; i < 60; ++i) manager.controller().Observe(100.0, 100.0);
  auto relaxed = BuildDictionary(manager.ChooseFormat(sorted, usage), sorted);
  EXPECT_LE(pressured->MemoryBytes(), relaxed->MemoryBytes());
}

}  // namespace
}  // namespace adict
