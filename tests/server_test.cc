// Query-server test battery: loopback protocol conformance for every query
// kind and every error path, result-cache semantics (hit/miss/LRU/epoch
// invalidation), admission control under saturation, clean shutdown drain,
// and N clients hammering the server while delta merges republish the
// column underneath them. The concurrency cases at the bottom exist for
// the tsan CI job, which builds this binary with -fsanitize=thread.
//
// The acceptance-critical property proved here: a cached result is never
// served across an epoch boundary. MergeInvalidatesCachedResult runs the
// identical query before and after a delta merge and shows the second
// answer is a fresh execution (no cache-hit flag, new counts), repeatedly.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/compression_manager.h"
#include "core/recompression_scheduler.h"
#include "engine/predicates.h"
#include "engine/scan.h"
#include "obs/obs.h"
#include "server/protocol.h"
#include "server/query_server.h"
#include "server/result_cache.h"
#include "store/delta.h"
#include "store/string_column.h"
#include "store/table.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "util/net.h"

namespace adict {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    obs::ResetForTest();
  }
};

/// Spins until `pred` holds (the server noticed something asynchronously)
/// or five seconds pass.
bool WaitFor(const std::function<bool()>& pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// ---------------------------------------------------------------------------
// Loopback binary-protocol client (blocking, multiple requests per
// connection — the server's protocol is persistent).

class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    // A test must fail, not hang, if the server never answers.
    timeval timeout{};
    timeout.tv_sec = 5;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() { Close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool SendBytes(const void* data, size_t size) {
    return SendAll(fd_, std::string_view(static_cast<const char*>(data),
                                         size));
  }
  bool SendFrame(const Request& request) {
    const std::vector<uint8_t> frame = EncodeRequest(request);
    return SendBytes(frame.data(), frame.size());
  }

  /// Reads one response frame; nullopt on EOF / timeout / undecodable.
  std::optional<Response> ReadResponse() {
    uint8_t prefix[sizeof(uint32_t)];
    if (!RecvAll(prefix, sizeof(prefix))) return std::nullopt;
    uint32_t length = 0;
    std::memcpy(&length, prefix, sizeof(length));
    if (length > kMaxFrameBytes) return std::nullopt;
    std::vector<uint8_t> body(length);
    if (length > 0 && !RecvAll(body.data(), body.size())) {
      return std::nullopt;
    }
    StatusOr<Response> decoded = DecodeResponseBody(body);
    EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
    if (!decoded.ok()) return std::nullopt;
    return *std::move(decoded);
  }

  std::optional<Response> Roundtrip(const Request& request) {
    if (!SendFrame(request)) return std::nullopt;
    return ReadResponse();
  }

  /// True when the peer has closed (next read sees EOF).
  bool AtEof() {
    char byte;
    const ssize_t n = ::recv(fd_, &byte, 1, 0);
    return n == 0;
  }

 private:
  bool RecvAll(void* buf, size_t size) {
    size_t got = 0;
    while (got < size) {
      const ssize_t n =
          ::recv(fd_, static_cast<char*>(buf) + got, size - got, 0);
      if (n <= 0) return false;
      got += static_cast<size_t>(n);
    }
    return true;
  }

  int fd_ = -1;
};

// ---------------------------------------------------------------------------
// Request builders and a small reference table.

Request Ping(uint64_t id = 1) {
  Request request;
  request.request_id = id;
  request.kind = QueryKind::kPing;
  return request;
}

Request Count(const std::string& table, const std::string& column,
              PredicateOp op, const std::string& value,
              const std::string& value2 = "", uint64_t id = 1) {
  Request request;
  request.request_id = id;
  request.kind = QueryKind::kCount;
  request.table = table;
  request.column = column;
  request.op = op;
  request.value = value;
  request.value2 = value2;
  return request;
}

Request Select(const std::string& table, const std::string& column,
               PredicateOp op, const std::string& value, uint64_t limit,
               uint64_t id = 1) {
  Request request;
  request.request_id = id;
  request.kind = QueryKind::kSelect;
  request.table = table;
  request.column = column;
  request.op = op;
  request.value = value;
  request.limit = limit;
  return request;
}

std::vector<std::string> TestValues() {
  std::vector<std::string> values;
  for (int i = 0; i < 40; ++i) {
    values.push_back("alpha");
    values.push_back("beta");
    values.push_back("gamma");
    values.push_back("delta_" + std::to_string(i % 7));
  }
  return values;
}

Table MakeTestTable() {
  Table table("t");
  table.AddStringColumn("word", StringColumn::FromValues(TestValues()));
  return table;
}

uint64_t CountOf(const std::vector<std::string>& values,
                 const std::string& value) {
  uint64_t count = 0;
  for (const std::string& v : values) count += v == value;
  return count;
}

/// The count cell of an OK single-row response.
uint64_t CountCell(const Response& response) {
  EXPECT_EQ(response.status, StatusCode::kOk);
  EXPECT_EQ(response.result.rows.size(), 1u);
  EXPECT_EQ(response.result.column_names, std::vector<std::string>{"count"});
  return std::stoull(response.result.rows.at(0).at(0));
}

// ---------------------------------------------------------------------------
// util/net.h helper error paths (the satellite fix: one shared socket
// setup for the HTTP exporter and the query server).

TEST(NetHelperTest, RejectsInvalidBindAddress) {
  ListenOptions options;
  options.bind_address = "not-an-address";
  const StatusOr<ListenSocket> socket = OpenListenSocket(options);
  ASSERT_FALSE(socket.ok());
  EXPECT_EQ(socket.status().code(), StatusCode::kIoError);
  EXPECT_NE(socket.status().message().find("invalid bind address"),
            std::string::npos);
}

TEST(NetHelperTest, ResolvesEphemeralPort) {
  const StatusOr<ListenSocket> socket = OpenListenSocket(ListenOptions{});
  ASSERT_TRUE(socket.ok()) << socket.status().ToString();
  EXPECT_GT(socket->port, 0);
  ::close(socket->fd);
}

TEST(NetHelperTest, FailsOnBusyPort) {
  const StatusOr<ListenSocket> first = OpenListenSocket(ListenOptions{});
  ASSERT_TRUE(first.ok());
  ListenOptions options;
  options.port = first->port;
  const StatusOr<ListenSocket> second = OpenListenSocket(options);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kIoError);
  EXPECT_NE(second.status().message().find("bind"), std::string::npos);
  ::close(first->fd);
}

TEST(NetHelperTest, SendAllToClosedFdFailsCleanly) {
  const StatusOr<ListenSocket> socket = OpenListenSocket(ListenOptions{});
  ASSERT_TRUE(socket.ok());
  const int fd = socket->fd;
  ::close(fd);
  EXPECT_FALSE(SendAll(fd, "data"));
}

TEST(NetHelperTest, RecvExactHonorsStopFlag) {
  const StatusOr<ListenSocket> listener = OpenListenSocket(ListenOptions{});
  ASSERT_TRUE(listener.ok());
  Client client(listener->port);
  const int server_fd = AcceptWithTimeout(listener->fd, 1000);
  ASSERT_GE(server_fd, 0);
  std::atomic<bool> stop{false};
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    stop.store(true, std::memory_order_release);
  });
  char buf[16];
  // The client never sends, so only the stop flag can end the wait.
  EXPECT_EQ(RecvExact(server_fd, buf, sizeof(buf), &stop, 0),
            RecvResult::kStopped);
  stopper.join();
  ::close(server_fd);
  ::close(listener->fd);
}

// ---------------------------------------------------------------------------
// Protocol codec round trips (the fuzz test covers the adversarial side).

TEST(ProtocolTest, RequestRoundTripsEveryKind) {
  std::vector<Request> requests;
  requests.push_back(Ping(7));
  requests.push_back(Count("t", "word", PredicateOp::kEq, "alpha", "", 8));
  requests.push_back(
      Count("t", "word", PredicateOp::kBetween, "a", "m", 9));
  requests.push_back(Select("t", "word", PredicateOp::kPrefix, "de", 5, 10));
  Request extract;
  extract.request_id = 11;
  extract.kind = QueryKind::kExtract;
  extract.table = "t";
  extract.column = "word";
  extract.row = 42;
  requests.push_back(extract);
  Request locate;
  locate.request_id = 12;
  locate.kind = QueryKind::kLocate;
  locate.table = "t";
  locate.column = "word";
  locate.value = "beta";
  requests.push_back(locate);
  Request stats;
  stats.request_id = 13;
  stats.kind = QueryKind::kTableStats;
  stats.table = "t";
  requests.push_back(stats);
  Request tpch;
  tpch.request_id = 14;
  tpch.kind = QueryKind::kTpch;
  tpch.tpch_query = 6;
  requests.push_back(tpch);

  for (const Request& request : requests) {
    const std::vector<uint8_t> frame = EncodeRequest(request);
    ASSERT_GE(frame.size(), sizeof(uint32_t));
    uint32_t length = 0;
    std::memcpy(&length, frame.data(), sizeof(length));
    ASSERT_EQ(length, frame.size() - sizeof(uint32_t));
    const StatusOr<Request> decoded = DecodeRequestBody(
        std::span<const uint8_t>(frame).subspan(sizeof(uint32_t)));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->request_id, request.request_id);
    EXPECT_EQ(decoded->kind, request.kind);
    EXPECT_EQ(decoded->table, request.table);
    EXPECT_EQ(decoded->column, request.column);
    EXPECT_EQ(decoded->value, request.value);
    EXPECT_EQ(decoded->value2, request.value2);
    EXPECT_EQ(decoded->row, request.row);
    EXPECT_EQ(decoded->limit, request.limit);
    EXPECT_EQ(decoded->tpch_query, request.tpch_query);
  }
}

TEST(ProtocolTest, DigestIgnoresRequestIdButNotParams) {
  const Request a = Count("t", "word", PredicateOp::kEq, "alpha", "", 1);
  const Request b = Count("t", "word", PredicateOp::kEq, "alpha", "", 999);
  const Request c = Count("t", "word", PredicateOp::kEq, "beta", "", 1);
  EXPECT_EQ(RequestDigest(a), RequestDigest(b));
  EXPECT_NE(RequestDigest(a), RequestDigest(c));
}

TEST(ProtocolTest, ResponseRoundTripsResultAndError) {
  Response ok;
  ok.request_id = 21;
  ok.cache_hit = true;
  ok.result.column_names = {"row", "value"};
  ok.result.AddRow({"3", "alpha"});
  ok.result.AddRow({"9", "beta"});
  const std::vector<uint8_t> ok_frame = EncodeResponse(ok);
  const StatusOr<Response> ok_decoded = DecodeResponseBody(
      std::span<const uint8_t>(ok_frame).subspan(sizeof(uint32_t)));
  ASSERT_TRUE(ok_decoded.ok());
  EXPECT_EQ(ok_decoded->request_id, 21u);
  EXPECT_TRUE(ok_decoded->cache_hit);
  EXPECT_EQ(ok_decoded->result.column_names, ok.result.column_names);
  EXPECT_EQ(ok_decoded->result.rows, ok.result.rows);

  Response error;
  error.request_id = 22;
  error.status = StatusCode::kFailedPrecondition;
  error.error_message = "unknown table: x";
  const std::vector<uint8_t> error_frame = EncodeResponse(error);
  const StatusOr<Response> error_decoded = DecodeResponseBody(
      std::span<const uint8_t>(error_frame).subspan(sizeof(uint32_t)));
  ASSERT_TRUE(error_decoded.ok());
  EXPECT_EQ(error_decoded->status, StatusCode::kFailedPrecondition);
  EXPECT_EQ(error_decoded->error_message, "unknown table: x");
}

// ---------------------------------------------------------------------------
// Lifecycle.

TEST_F(ServerTest, StartStopLifecycle) {
  Table table = MakeTestTable();
  QueryServer server;
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST_F(ServerTest, StartFailsOnBusyPort) {
  QueryServer first;
  ASSERT_TRUE(first.Start().ok());
  QueryServer::Options options;
  options.port = first.port();
  QueryServer second(options);
  const Status status = second.Start();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(ServerTest, OptionsFromEnvReadsKnobs) {
  ::setenv("ADICT_SERVE_PORT", "0", 1);
  ::setenv("ADICT_SERVE_MAX_INFLIGHT", "7", 1);
  ::setenv("ADICT_CACHE_BYTES", "12345", 1);
  const QueryServer::Options options = QueryServer::OptionsFromEnv();
  EXPECT_EQ(options.port, 0);
  EXPECT_EQ(options.max_inflight, 7);
  EXPECT_EQ(options.cache_bytes, 12345u);
  ::unsetenv("ADICT_SERVE_PORT");
  ::unsetenv("ADICT_SERVE_MAX_INFLIGHT");
  ::unsetenv("ADICT_CACHE_BYTES");
}

// ---------------------------------------------------------------------------
// Conformance: every query kind against a reference computation.

TEST_F(ServerTest, PingRoundTrip) {
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());
  ASSERT_TRUE(client.connected());
  const std::optional<Response> response = client.Roundtrip(Ping(42));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->request_id, 42u);
  EXPECT_EQ(response->status, StatusCode::kOk);
  ASSERT_EQ(response->result.rows.size(), 1u);
  EXPECT_EQ(response->result.rows[0][0], obs::kBuildVersion);
}

TEST_F(ServerTest, CountMatchesReferenceForEveryOp) {
  const std::vector<std::string> values = TestValues();
  Table table = MakeTestTable();
  QueryServer server;
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  const std::optional<Response> eq =
      client.Roundtrip(Count("t", "word", PredicateOp::kEq, "alpha"));
  ASSERT_TRUE(eq.has_value());
  EXPECT_EQ(CountCell(*eq), CountOf(values, "alpha"));

  const std::optional<Response> prefix =
      client.Roundtrip(Count("t", "word", PredicateOp::kPrefix, "delta_"));
  ASSERT_TRUE(prefix.has_value());
  uint64_t prefix_expected = 0;
  for (const std::string& v : values) {
    prefix_expected += v.rfind("delta_", 0) == 0;
  }
  EXPECT_EQ(CountCell(*prefix), prefix_expected);

  const std::optional<Response> between = client.Roundtrip(
      Count("t", "word", PredicateOp::kBetween, "alpha", "beta"));
  ASSERT_TRUE(between.has_value());
  uint64_t between_expected = 0;
  for (const std::string& v : values) {
    between_expected += v >= "alpha" && v <= "beta";
  }
  EXPECT_EQ(CountCell(*between), between_expected);

  const std::optional<Response> contains =
      client.Roundtrip(Count("t", "word", PredicateOp::kContains, "amm"));
  ASSERT_TRUE(contains.has_value());
  EXPECT_EQ(CountCell(*contains), CountOf(values, "gamma"));
}

TEST_F(ServerTest, SelectReturnsRowsAndValuesUpToLimit) {
  const std::vector<std::string> values = TestValues();
  Table table = MakeTestTable();
  QueryServer server;
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  const std::optional<Response> response =
      client.Roundtrip(Select("t", "word", PredicateOp::kEq, "beta", 5));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_EQ(response->result.column_names,
            (std::vector<std::string>{"row", "value"}));
  ASSERT_EQ(response->result.rows.size(), 5u);
  for (const std::vector<std::string>& row : response->result.rows) {
    const uint64_t row_index = std::stoull(row.at(0));
    EXPECT_EQ(values.at(row_index), "beta");
    EXPECT_EQ(row.at(1), "beta");
  }
}

TEST_F(ServerTest, ExtractReturnsRowValue) {
  const std::vector<std::string> values = TestValues();
  Table table = MakeTestTable();
  QueryServer server;
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  Request request;
  request.request_id = 5;
  request.kind = QueryKind::kExtract;
  request.table = "t";
  request.column = "word";
  request.row = 17;
  const std::optional<Response> response = client.Roundtrip(request);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  ASSERT_EQ(response->result.rows.size(), 1u);
  EXPECT_EQ(response->result.rows[0][0], values.at(17));
}

TEST_F(ServerTest, ExtractOutOfRangeFails) {
  Table table = MakeTestTable();
  QueryServer server;
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  Request request;
  request.kind = QueryKind::kExtract;
  request.table = "t";
  request.column = "word";
  request.row = 1u << 30;
  const std::optional<Response> response = client.Roundtrip(request);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kFailedPrecondition);
  EXPECT_NE(response->error_message.find("out of range"), std::string::npos);
  EXPECT_EQ(server.stats().error_responses, 1u);
}

TEST_F(ServerTest, LocateFindsAndMisses) {
  Table table = MakeTestTable();
  QueryServer server;
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  Request request;
  request.kind = QueryKind::kLocate;
  request.table = "t";
  request.column = "word";
  request.value = "beta";
  const std::optional<Response> found = client.Roundtrip(request);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->status, StatusCode::kOk);
  EXPECT_EQ(found->result.rows.at(0).at(1), "1");

  request.value = "zzz-not-present";
  const std::optional<Response> missing = client.Roundtrip(request);
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, StatusCode::kOk);
  EXPECT_EQ(missing->result.rows.at(0).at(1), "0");
}

TEST_F(ServerTest, TableStatsReportsShape) {
  Table table = MakeTestTable();
  QueryServer server;
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  Request request;
  request.kind = QueryKind::kTableStats;
  request.table = "t";
  const std::optional<Response> response = client.Roundtrip(request);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  ASSERT_EQ(response->result.rows.size(), 1u);
  EXPECT_EQ(response->result.rows[0][0], "t");
  EXPECT_EQ(std::stoull(response->result.rows[0][1]), table.num_rows());
  EXPECT_EQ(std::stoull(response->result.rows[0][2]), 1u);
  EXPECT_GT(std::stoull(response->result.rows[0][3]), 0u);
}

TEST_F(ServerTest, TpchMatchesDirectExecution) {
  TpchDatabase db = GenerateTpch(TpchOptions{});
  QueryServer server;
  server.ServeTpch(&db);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  Request request;
  request.kind = QueryKind::kTpch;
  request.tpch_query = 6;
  const std::optional<Response> response = client.Roundtrip(request);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->status, StatusCode::kOk);

  const QueryResult direct = RunTpchQuery(db, 6);
  EXPECT_EQ(response->result.column_names, direct.column_names);
  EXPECT_EQ(response->result.rows, direct.rows);
}

// ---------------------------------------------------------------------------
// Error paths.

TEST_F(ServerTest, TpchWithoutDatabaseFails) {
  Table table = MakeTestTable();
  QueryServer server;
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  Request request;
  request.kind = QueryKind::kTpch;
  request.tpch_query = 1;
  const std::optional<Response> response = client.Roundtrip(request);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kFailedPrecondition);
  EXPECT_NE(response->error_message.find("not enabled"), std::string::npos);
}

TEST_F(ServerTest, TpchQueryNumberOutOfRangeFails) {
  TpchDatabase db = GenerateTpch(TpchOptions{});
  QueryServer server;
  server.ServeTpch(&db);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  Request request;
  request.kind = QueryKind::kTpch;
  request.tpch_query = 23;
  const std::optional<Response> response = client.Roundtrip(request);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kFailedPrecondition);
  EXPECT_NE(response->error_message.find("out of range"), std::string::npos);
}

TEST_F(ServerTest, UnknownTableFails) {
  Table table = MakeTestTable();
  QueryServer server;
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());
  const std::optional<Response> response =
      client.Roundtrip(Count("nope", "word", PredicateOp::kEq, "alpha"));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kFailedPrecondition);
  EXPECT_NE(response->error_message.find("unknown table"), std::string::npos);
}

TEST_F(ServerTest, UnknownColumnFails) {
  Table table = MakeTestTable();
  QueryServer server;
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());
  const std::optional<Response> response =
      client.Roundtrip(Count("t", "nope", PredicateOp::kEq, "alpha"));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kFailedPrecondition);
  EXPECT_NE(response->error_message.find("unknown string column"),
            std::string::npos);
}

TEST_F(ServerTest, UnknownQueryKindFails) {
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  std::vector<uint8_t> frame = EncodeRequest(Ping(3));
  // The kind byte sits after the length prefix and the request id.
  frame[sizeof(uint32_t) + sizeof(uint64_t)] = 99;
  ASSERT_TRUE(client.SendBytes(frame.data(), frame.size()));
  const std::optional<Response> response = client.ReadResponse();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->request_id, 3u);
  EXPECT_EQ(response->status, StatusCode::kCorruption);
  EXPECT_NE(response->error_message.find("unknown query kind"),
            std::string::npos);
}

TEST_F(ServerTest, MalformedBodyKeepsConnectionUsable) {
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  // A well-framed body of garbage: framing stays trustworthy, so the
  // server answers with an error and keeps the connection.
  const std::vector<uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef};
  const uint32_t length = static_cast<uint32_t>(garbage.size());
  ASSERT_TRUE(client.SendBytes(&length, sizeof(length)));
  ASSERT_TRUE(client.SendBytes(garbage.data(), garbage.size()));
  const std::optional<Response> error = client.ReadResponse();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->status, StatusCode::kOk);

  const std::optional<Response> ping = client.Roundtrip(Ping(4));
  ASSERT_TRUE(ping.has_value());
  EXPECT_EQ(ping->status, StatusCode::kOk);
  EXPECT_EQ(server.stats().frame_errors, 1u);
}

TEST_F(ServerTest, OversizedLengthPrefixRejectedAndClosed) {
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  const uint32_t lying_length = kMaxFrameBytes + 1;
  ASSERT_TRUE(client.SendBytes(&lying_length, sizeof(lying_length)));
  const std::optional<Response> response = client.ReadResponse();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kResourceExhausted);
  EXPECT_NE(response->error_message.find("exceeds limit"), std::string::npos);
  EXPECT_TRUE(client.AtEof());
  EXPECT_EQ(server.stats().frame_errors, 1u);
}

TEST_F(ServerTest, TruncatedBodyDisconnectIsCounted) {
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());
  {
    Client client(server.port());
    const uint32_t promised = 100;
    ASSERT_TRUE(client.SendBytes(&promised, sizeof(promised)));
    const uint8_t partial[10] = {};
    ASSERT_TRUE(client.SendBytes(partial, sizeof(partial)));
    // Disconnect mid-request: the server must notice, count it, and move
    // on — never crash or leak the connection slot.
  }
  EXPECT_TRUE(WaitFor([&] { return server.stats().frame_errors == 1; }));
}

TEST_F(ServerTest, MidPrefixDisconnectIsCounted) {
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());
  {
    Client client(server.port());
    const uint8_t half_prefix[2] = {1, 0};
    ASSERT_TRUE(client.SendBytes(half_prefix, sizeof(half_prefix)));
  }
  EXPECT_TRUE(WaitFor([&] { return server.stats().frame_errors == 1; }));
}

TEST_F(ServerTest, CleanDisconnectWithoutRequestIsNotAnError) {
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());
  { Client client(server.port()); }
  EXPECT_TRUE(WaitFor([&] { return server.stats().connections == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(server.stats().frame_errors, 0u);
}

// ---------------------------------------------------------------------------
// Result cache semantics.

TEST_F(ServerTest, RepeatedQueryHitsCache) {
  Table table = MakeTestTable();
  QueryServer server;
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  const Request query = Count("t", "word", PredicateOp::kEq, "alpha", "", 1);
  const std::optional<Response> first = client.Roundtrip(query);
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->cache_hit);

  Request repeat = query;
  repeat.request_id = 2;  // different id, same query: digest must match
  const std::optional<Response> second = client.Roundtrip(repeat);
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->request_id, 2u);
  EXPECT_EQ(second->result.rows, first->result.rows);

  const ResultCache::Stats stats = server.cache().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  // A cache hit skips the engine: only the first query executed.
  EXPECT_EQ(server.stats().executed, 1u);
}

TEST_F(ServerTest, DistinctQueriesMissCache) {
  Table table = MakeTestTable();
  QueryServer server;
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  ASSERT_TRUE(
      client.Roundtrip(Count("t", "word", PredicateOp::kEq, "alpha"))
          .has_value());
  const std::optional<Response> other =
      client.Roundtrip(Count("t", "word", PredicateOp::kEq, "beta"));
  ASSERT_TRUE(other.has_value());
  EXPECT_FALSE(other->cache_hit);
  EXPECT_EQ(server.cache().stats().hits, 0u);
}

TEST_F(ServerTest, CacheDisabledWithZeroBudget) {
  Table table = MakeTestTable();
  QueryServer::Options options;
  options.cache_bytes = 0;
  QueryServer server(options);
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  const Request query = Count("t", "word", PredicateOp::kEq, "alpha");
  ASSERT_TRUE(client.Roundtrip(query).has_value());
  const std::optional<Response> repeat = client.Roundtrip(query);
  ASSERT_TRUE(repeat.has_value());
  EXPECT_FALSE(repeat->cache_hit);
  EXPECT_EQ(server.stats().executed, 2u);
}

TEST_F(ServerTest, LruEvictionUnderTinyBudget) {
  Table table = MakeTestTable();
  QueryServer::Options options;
  // Room for roughly one count entry (payload ~50 B + overhead).
  options.cache_bytes = 200;
  QueryServer server(options);
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  const Request a = Count("t", "word", PredicateOp::kEq, "alpha");
  const Request b = Count("t", "word", PredicateOp::kEq, "beta");
  ASSERT_TRUE(client.Roundtrip(a).has_value());
  ASSERT_TRUE(client.Roundtrip(b).has_value());  // evicts a
  const std::optional<Response> again = client.Roundtrip(a);
  ASSERT_TRUE(again.has_value());
  EXPECT_FALSE(again->cache_hit);
  EXPECT_GE(server.cache().stats().lru_evictions, 1u);
}

// The acceptance-critical case: a delta merge between two identical
// queries forces a re-execution; the pre-merge result is provably never
// served once the epoch advanced.
TEST_F(ServerTest, MergeInvalidatesCachedResult) {
  const std::vector<std::string> values = TestValues();
  Table table = MakeTestTable();
  QueryServer server;
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());
  CompressionManager manager;

  uint64_t expected = CountOf(values, "alpha");
  for (int round = 1; round <= 3; ++round) {
    // Warm the cache and prove a repeat read hits it. (From round 2 on the
    // first read may already hit the entry the previous round's post-merge
    // execution inserted — that entry is fresh, so a hit is correct.)
    const Request query =
        Count("t", "word", PredicateOp::kEq, "alpha", "",
              static_cast<uint64_t>(round) * 10);
    const std::optional<Response> warm = client.Roundtrip(query);
    ASSERT_TRUE(warm.has_value());
    EXPECT_EQ(CountCell(*warm), expected);
    const std::optional<Response> hit = client.Roundtrip(query);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->cache_hit);
    EXPECT_EQ(CountCell(*hit), expected);

    // Merge a delta that adds `round` more qualifying rows and publish:
    // the column's epoch advances.
    DeltaColumn delta;
    for (int i = 0; i < round; ++i) delta.Append("alpha");
    const std::shared_ptr<const StringColumn> base =
        table.SnapshotStrings("word");
    table.PublishStrings(
        "word", MergeDeltaAdaptive(*base, delta, manager, 60.0, "t.word"));
    expected += static_cast<uint64_t>(round);

    // The identical query must now re-execute and see the merged rows.
    const std::optional<Response> fresh = client.Roundtrip(query);
    ASSERT_TRUE(fresh.has_value());
    EXPECT_FALSE(fresh->cache_hit)
        << "stale result served across an epoch boundary";
    EXPECT_EQ(CountCell(*fresh), expected);
  }
  EXPECT_EQ(server.cache().stats().stale_evictions, 3u);
}

TEST_F(ServerTest, TpchCacheInvalidatedByAnyTableMerge) {
  TpchDatabase db = GenerateTpch(TpchOptions{});
  QueryServer server;
  server.ServeTpch(&db);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());
  CompressionManager manager;

  Request request;
  request.kind = QueryKind::kTpch;
  request.tpch_query = 6;
  ASSERT_TRUE(client.Roundtrip(request).has_value());
  const std::optional<Response> hit = client.Roundtrip(request);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->cache_hit);

  // Merge into one arbitrary string column of one table: the conservative
  // dependency set must invalidate the TPC-H entry.
  DeltaColumn delta;
  delta.Append("AFRICA2");
  const std::shared_ptr<const StringColumn> base =
      db.region.SnapshotStrings("R_NAME");
  db.region.PublishStrings(
      "R_NAME",
      MergeDeltaAdaptive(*base, delta, manager, 60.0, "region.R_NAME"));

  const std::optional<Response> fresh = client.Roundtrip(request);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_FALSE(fresh->cache_hit);
  EXPECT_EQ(server.cache().stats().stale_evictions, 1u);
}

TEST_F(ServerTest, PressureHookFlushesCache) {
  Table table = MakeTestTable();
  QueryServer server;
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  // Populate the cache.
  ASSERT_TRUE(
      client.Roundtrip(Count("t", "word", PredicateOp::kEq, "alpha"))
          .has_value());
  ASSERT_EQ(server.cache().stats().entries, 1u);

  // A synchronous scheduler fed urgent-pressure samples fires the hook.
  CompressionManager manager;
  RecompressionScheduler::Options options;
  options.synchronous = true;
  options.smoothing = 1.0;  // classify the first sample as-is
  RecompressionScheduler scheduler(&table, &manager, options);
  server.AttachPressureFlush(&scheduler);
  MemorySample sample;
  sample.used_bytes = 90;
  sample.total_bytes = 100;
  scheduler.OnSample(sample);
  EXPECT_EQ(scheduler.level(), PressureLevel::kUrgent);
  EXPECT_EQ(server.cache().stats().entries, 0u);
  EXPECT_GE(server.cache().stats().flushes, 1u);
  scheduler.Stop();
}

// ---------------------------------------------------------------------------
// Admission control.

TEST_F(ServerTest, InflightCapRejectsConcurrentRequest) {
  Table table = MakeTestTable();
  QueryServer::Options options;
  options.max_inflight = 1;
  options.execute_stall_ms = 500;
  options.cache_bytes = 0;  // every request must reach execution
  QueryServer server(options);
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());

  std::optional<Response> slow_response;
  std::thread slow([&] {
    Client client(server.port());
    slow_response =
        client.Roundtrip(Count("t", "word", PredicateOp::kEq, "alpha"));
  });
  // Give the first request time to occupy the in-flight slot.
  ASSERT_TRUE(WaitFor([&] { return server.stats().requests >= 1; }));
  Client client(server.port());
  const std::optional<Response> rejected =
      client.Roundtrip(Count("t", "word", PredicateOp::kEq, "beta"));
  slow.join();

  ASSERT_TRUE(slow_response.has_value());
  EXPECT_EQ(slow_response->status, StatusCode::kOk);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->status, StatusCode::kResourceExhausted);
  EXPECT_NE(rejected->error_message.find("in-flight"), std::string::npos);
  EXPECT_EQ(server.stats().rejected_requests, 1u);
}

TEST_F(ServerTest, PerConnectionRequestCapClosesAfterRejection) {
  QueryServer::Options options;
  options.max_requests_per_connection = 2;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());

  ASSERT_TRUE(client.Roundtrip(Ping(1)).has_value());
  ASSERT_TRUE(client.Roundtrip(Ping(2)).has_value());
  const std::optional<Response> rejected = client.Roundtrip(Ping(3));
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->status, StatusCode::kResourceExhausted);
  EXPECT_NE(rejected->error_message.find("request cap"), std::string::npos);
  EXPECT_TRUE(client.AtEof());
}

TEST_F(ServerTest, ConnectionCapRejectsExcessConnections) {
  QueryServer::Options options;
  options.max_connections = 1;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());

  Client first(server.port());
  // A round trip guarantees the accept loop registered the connection.
  ASSERT_TRUE(first.Roundtrip(Ping(1)).has_value());

  Client second(server.port());
  const std::optional<Response> rejected = second.ReadResponse();
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->request_id, 0u);
  EXPECT_EQ(rejected->status, StatusCode::kResourceExhausted);
  EXPECT_NE(rejected->error_message.find("connection limit"),
            std::string::npos);
  EXPECT_TRUE(second.AtEof());
  EXPECT_EQ(server.stats().rejected_connections, 1u);

  // The slot frees when the first connection closes.
  first.Close();
  ASSERT_TRUE(WaitFor([&] {
    Client retry(server.port());
    const std::optional<Response> response = retry.Roundtrip(Ping(2));
    return response.has_value() && response->status == StatusCode::kOk;
  }));
}

// ---------------------------------------------------------------------------
// Shutdown.

TEST_F(ServerTest, StopDrainsInFlightRequest) {
  Table table = MakeTestTable();
  QueryServer::Options options;
  options.execute_stall_ms = 300;
  QueryServer server(options);
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());

  std::optional<Response> response;
  std::thread client_thread([&] {
    Client client(server.port());
    response = client.Roundtrip(Count("t", "word", PredicateOp::kEq, "alpha"));
  });
  ASSERT_TRUE(WaitFor([&] { return server.stats().requests >= 1; }));
  server.Stop();  // must drain: the stalled execution finishes first
  client_thread.join();

  ASSERT_TRUE(response.has_value())
      << "in-flight request dropped during shutdown";
  EXPECT_EQ(response->status, StatusCode::kOk);
}

TEST_F(ServerTest, StopWakesIdleConnections) {
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());
  Client idle(server.port());
  ASSERT_TRUE(idle.Roundtrip(Ping(1)).has_value());
  // The connection sits in RecvExact with no frame in flight; Stop() must
  // not hang waiting for it.
  const auto start = std::chrono::steady_clock::now();
  server.Stop();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
}

// ---------------------------------------------------------------------------
// Concurrency (built with -fsanitize=thread in the tsan CI job).

// N clients hammer the same queries while a writer repeatedly merges
// qualifying rows into the column and publishes. Every response must be a
// count the store actually published — base + 5*m for some merge count m —
// and cached results must never lag behind an epoch the client could have
// observed the merge of.
TEST_F(ServerTest, ConcurrentClientsRacingMergesSeeOnlyPublishedCounts) {
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 40;
  constexpr int kMerges = 10;
  constexpr uint64_t kAlphaPerMerge = 5;

  const std::vector<std::string> values = TestValues();
  const uint64_t base = CountOf(values, "alpha");
  Table table = MakeTestTable();
  QueryServer server;
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  CompressionManager manager;

  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(server.port());
      if (!client.connected()) {
        failed.store(true);
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const std::optional<Response> response = client.Roundtrip(
            Count("t", "word", PredicateOp::kEq, "alpha", "",
                  static_cast<uint64_t>(c) * 1000 + i));
        if (!response.has_value() ||
            response->status != StatusCode::kOk) {
          failed.store(true);
          return;
        }
        const uint64_t count = std::stoull(response->result.rows[0][0]);
        // Only published states are visible: base + 5m, monotonically
        // bounded by the total number of merges.
        if (count < base || (count - base) % kAlphaPerMerge != 0 ||
            count > base + kMerges * kAlphaPerMerge) {
          failed.store(true);
          return;
        }
      }
    });
  }

  for (int m = 0; m < kMerges; ++m) {
    DeltaColumn delta;
    for (uint64_t i = 0; i < kAlphaPerMerge; ++i) delta.Append("alpha");
    delta.Append("noise_" + std::to_string(m));
    const std::shared_ptr<const StringColumn> snapshot =
        table.SnapshotStrings("word");
    table.PublishStrings(
        "word",
        MergeDeltaAdaptive(*snapshot, delta, manager, 60.0, "t.word"));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  for (std::thread& thread : clients) thread.join();
  EXPECT_FALSE(failed.load());

  // After the last merge settles, the next identical query must see the
  // final count (nothing stale survives).
  Client client(server.port());
  const std::optional<Response> final_response = client.Roundtrip(
      Count("t", "word", PredicateOp::kEq, "alpha", "", 999999));
  ASSERT_TRUE(final_response.has_value());
  EXPECT_EQ(CountCell(*final_response),
            base + kMerges * kAlphaPerMerge);
  server.Stop();
}

// Cache churn racing merges: many distinct digests under a small budget
// while the epoch advances — exercises Lookup/Insert/stale-eviction/LRU
// paths concurrently for TSan.
TEST_F(ServerTest, CacheChurnRacingMergesIsRaceFree) {
  Table table = MakeTestTable();
  QueryServer::Options options;
  options.cache_bytes = 4096;
  QueryServer server(options);
  server.RegisterTable(&table);
  ASSERT_TRUE(server.Start().ok());
  CompressionManager manager;

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      Client client(server.port());
      int i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::string needle = "delta_" + std::to_string((c + i) % 7);
        (void)client.Roundtrip(
            Count("t", "word", PredicateOp::kPrefix, needle));
        ++i;
      }
    });
  }
  for (int m = 0; m < 8; ++m) {
    DeltaColumn delta;
    delta.Append("delta_" + std::to_string(m % 7));
    const std::shared_ptr<const StringColumn> snapshot =
        table.SnapshotStrings("word");
    table.PublishStrings(
        "word",
        MergeDeltaAdaptive(*snapshot, delta, manager, 60.0, "t.word"));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& thread : clients) thread.join();
  server.Stop();
  // No assertion beyond survival: TSan is the oracle here.
  SUCCEED();
}

}  // namespace
}  // namespace adict
