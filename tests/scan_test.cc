// Tests for the sequential Scan API across all dictionary formats.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datasets/generators.h"
#include "dict/dictionary.h"
#include "util/rng.h"

namespace adict {
namespace {

class ScanFormatTest : public ::testing::TestWithParam<DictFormat> {};

TEST_P(ScanFormatTest, FullScanMatchesExtract) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("url", 700, 1);
  auto dict = BuildDictionary(GetParam(), sorted);
  uint32_t expected_id = 0;
  dict->Scan(0, dict->size(), [&](uint32_t id, std::string_view value) {
    ASSERT_EQ(id, expected_id++);
    ASSERT_EQ(value, sorted[id]);
  });
  EXPECT_EQ(expected_id, dict->size());
}

TEST_P(ScanFormatTest, PartialRangesMatchExtract) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("mat", 300, 2);
  auto dict = BuildDictionary(GetParam(), sorted);
  Rng rng(3);
  for (int round = 0; round < 30; ++round) {
    const uint32_t first = static_cast<uint32_t>(rng.Uniform(dict->size()));
    const uint32_t count =
        static_cast<uint32_t>(rng.Uniform(dict->size() - first + 1));
    uint32_t seen = 0;
    dict->Scan(first, count, [&](uint32_t id, std::string_view value) {
      ASSERT_GE(id, first);
      ASSERT_LT(id, first + count);
      ASSERT_EQ(value, sorted[id]);
      ++seen;
    });
    ASSERT_EQ(seen, count);
  }
}

TEST_P(ScanFormatTest, EmptyRangeCallsNothing) {
  const std::vector<std::string> sorted = {"a", "b", "c"};
  auto dict = BuildDictionary(GetParam(), sorted);
  dict->Scan(1, 0, [](uint32_t, std::string_view) { FAIL(); });
}

TEST_P(ScanFormatTest, MidBlockStartReconstructsCorrectly) {
  // Starting inside a front-coded block must still yield correct values
  // (predecessor chains have to be replayed internally).
  const std::vector<std::string> sorted = GenerateSurveyDataset("url", 100, 4);
  auto dict = BuildDictionary(GetParam(), sorted);
  for (uint32_t first : {1u, 7u, 15u, 17u, 33u}) {
    dict->Scan(first, 3, [&](uint32_t id, std::string_view value) {
      ASSERT_EQ(value, sorted[id]);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, ScanFormatTest,
    ::testing::ValuesIn(AllDictFormats().begin(), AllDictFormats().end()),
    [](const ::testing::TestParamInfo<DictFormat>& info) {
      std::string name(DictFormatName(info.param));
      std::replace(name.begin(), name.end(), ' ', '_');
      return name;
    });

}  // namespace
}  // namespace adict
