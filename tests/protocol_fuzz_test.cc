// Deterministic seeded fuzzing of the wire-protocol decoders. The decoders
// guard the server's front door: every byte here arrives from an untrusted
// socket, so DecodeRequestBody / DecodeResponseBody must return a Status —
// never crash, never over-read, never allocate proportionally to a lying
// length field. The corpus is built from valid frames for every query kind,
// then mutated: single-byte flips at every position, truncation at every
// prefix length, and random multi-byte garbage. Seeds are fixed, so a
// failure reproduces exactly.
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/protocol.h"
#include "util/rng.h"

namespace adict {
namespace {

/// Valid request frames covering every kind and every predicate op.
std::vector<std::vector<uint8_t>> RequestCorpus() {
  std::vector<Request> requests;
  {
    Request r;
    r.request_id = 1;
    r.kind = QueryKind::kPing;
    requests.push_back(r);
  }
  for (const PredicateOp op :
       {PredicateOp::kEq, PredicateOp::kPrefix, PredicateOp::kBetween,
        PredicateOp::kContains}) {
    Request r;
    r.request_id = 2;
    r.kind = QueryKind::kCount;
    r.table = "lineitem";
    r.column = "l_returnflag";
    r.op = op;
    r.value = "A";
    r.value2 = "R";
    requests.push_back(r);
    r.kind = QueryKind::kSelect;
    r.limit = 100;
    requests.push_back(r);
  }
  {
    Request r;
    r.request_id = 3;
    r.kind = QueryKind::kExtract;
    r.table = "orders";
    r.column = "o_orderpriority";
    r.row = 123456;
    requests.push_back(r);
  }
  {
    Request r;
    r.request_id = 4;
    r.kind = QueryKind::kLocate;
    r.table = "part";
    r.column = "p_brand";
    r.value = "Brand#13";
    requests.push_back(r);
  }
  {
    Request r;
    r.request_id = 5;
    r.kind = QueryKind::kTableStats;
    r.table = "customer";
    requests.push_back(r);
  }
  {
    Request r;
    r.request_id = 6;
    r.kind = QueryKind::kTpch;
    r.tpch_query = 17;
    requests.push_back(r);
  }

  std::vector<std::vector<uint8_t>> corpus;
  for (const Request& request : requests) {
    std::vector<uint8_t> frame = EncodeRequest(request);
    // Strip the length prefix: the decoder sees only the body (the server
    // validates the prefix separately against kMaxFrameBytes).
    corpus.emplace_back(frame.begin() + sizeof(uint32_t), frame.end());
  }
  return corpus;
}

/// Valid response frames: OK with rows, OK empty, and an error.
std::vector<std::vector<uint8_t>> ResponseCorpus() {
  std::vector<Response> responses;
  {
    Response r;
    r.request_id = 10;
    r.result.column_names = {"l_returnflag", "count", "sum"};
    r.result.AddRow({"A", "14876", "3.77e7"});
    r.result.AddRow({"N", "303", "7.6e5"});
    r.result.AddRow({"R", "14902", "3.78e7"});
    responses.push_back(r);
  }
  {
    Response r;
    r.request_id = 11;
    r.cache_hit = true;
    r.result.column_names = {"count"};
    r.result.AddRow({"0"});
    responses.push_back(r);
  }
  {
    Response r;
    r.request_id = 12;
    r.status = StatusCode::kFailedPrecondition;
    r.error_message = "unknown table: widgets";
    responses.push_back(r);
  }

  std::vector<std::vector<uint8_t>> corpus;
  for (const Response& response : responses) {
    std::vector<uint8_t> frame = EncodeResponse(response);
    corpus.emplace_back(frame.begin() + sizeof(uint32_t), frame.end());
  }
  return corpus;
}

/// Decoding must either succeed or fail with a Status — this call crashing
/// or sanitizer-tripping is the bug. The return value communicates whether
/// the mutant still decoded (callers use it for sanity counts).
bool DecodeRequestSurvives(std::span<const uint8_t> body) {
  const StatusOr<Request> decoded = DecodeRequestBody(body);
  return decoded.ok();
}

bool DecodeResponseSurvives(std::span<const uint8_t> body) {
  const StatusOr<Response> decoded = DecodeResponseBody(body);
  return decoded.ok();
}

TEST(ProtocolFuzzTest, RequestSingleByteFlipsNeverCrash) {
  for (const std::vector<uint8_t>& base : RequestCorpus()) {
    for (size_t pos = 0; pos < base.size(); ++pos) {
      for (const uint8_t flip :
           {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xff}}) {
        std::vector<uint8_t> mutant = base;
        mutant[pos] ^= flip;
        DecodeRequestSurvives(mutant);
      }
    }
  }
}

TEST(ProtocolFuzzTest, RequestTruncationAtEveryLengthFails) {
  for (const std::vector<uint8_t>& base : RequestCorpus()) {
    ASSERT_TRUE(DecodeRequestSurvives(base));
    for (size_t length = 0; length < base.size(); ++length) {
      // Every strict prefix is missing bytes; the decoder must report
      // truncation (or corruption), never succeed or over-read.
      const StatusOr<Request> decoded = DecodeRequestBody(
          std::span<const uint8_t>(base.data(), length));
      EXPECT_FALSE(decoded.ok())
          << "truncated request decoded at length " << length;
    }
  }
}

TEST(ProtocolFuzzTest, RequestTrailingGarbageIsCorruption) {
  for (const std::vector<uint8_t>& base : RequestCorpus()) {
    std::vector<uint8_t> padded = base;
    padded.push_back(0x00);
    const StatusOr<Request> decoded = DecodeRequestBody(padded);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
}

TEST(ProtocolFuzzTest, RequestLyingStringLengthsAreRejected) {
  // The first string length field sits right after request id + kind for
  // table-addressed kinds. Overwrite it with huge values: the decoder must
  // fail cleanly instead of allocating or reading out of bounds.
  Request request;
  request.request_id = 7;
  request.kind = QueryKind::kCount;
  request.table = "lineitem";
  request.column = "l_shipmode";
  request.op = PredicateOp::kEq;
  request.value = "TRUCK";
  std::vector<uint8_t> frame = EncodeRequest(request);
  std::vector<uint8_t> body(frame.begin() + sizeof(uint32_t), frame.end());
  const size_t table_length_offset = sizeof(uint64_t) + 1;
  for (const uint64_t lie :
       {uint64_t{1} << 20, uint64_t{1} << 40, ~uint64_t{0}}) {
    std::vector<uint8_t> mutant = body;
    std::memcpy(mutant.data() + table_length_offset, &lie, sizeof(lie));
    const StatusOr<Request> decoded = DecodeRequestBody(mutant);
    EXPECT_FALSE(decoded.ok());
  }
}

TEST(ProtocolFuzzTest, RequestRandomGarbageNeverCrashes) {
  Rng rng(0xf00dcafe);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const size_t size = rng.Uniform(128);
    std::vector<uint8_t> garbage(size);
    for (uint8_t& byte : garbage) {
      byte = static_cast<uint8_t>(rng.Uniform(256));
    }
    DecodeRequestSurvives(garbage);
  }
}

TEST(ProtocolFuzzTest, RequestSeededMultiByteMutationsNeverCrash) {
  const std::vector<std::vector<uint8_t>> corpus = RequestCorpus();
  Rng rng(0xdecade);
  for (int iteration = 0; iteration < 3000; ++iteration) {
    std::vector<uint8_t> mutant =
        corpus[rng.Uniform(static_cast<uint32_t>(corpus.size()))];
    const size_t mutations = 1 + rng.Uniform(8);
    for (size_t m = 0; m < mutations && !mutant.empty(); ++m) {
      mutant[rng.Uniform(static_cast<uint32_t>(mutant.size()))] =
          static_cast<uint8_t>(rng.Uniform(256));
    }
    // Occasionally also truncate or extend.
    if (rng.Uniform(4) == 0 && !mutant.empty()) {
      mutant.resize(rng.Uniform(static_cast<uint32_t>(mutant.size())));
    } else if (rng.Uniform(4) == 0) {
      mutant.push_back(static_cast<uint8_t>(rng.Uniform(256)));
    }
    DecodeRequestSurvives(mutant);
  }
}

TEST(ProtocolFuzzTest, ResponseSingleByteFlipsNeverCrash) {
  for (const std::vector<uint8_t>& base : ResponseCorpus()) {
    for (size_t pos = 0; pos < base.size(); ++pos) {
      std::vector<uint8_t> mutant = base;
      mutant[pos] ^= 0xff;
      DecodeResponseSurvives(mutant);
    }
  }
}

TEST(ProtocolFuzzTest, ResponseTruncationAtEveryLengthFails) {
  for (const std::vector<uint8_t>& base : ResponseCorpus()) {
    ASSERT_TRUE(DecodeResponseSurvives(base));
    for (size_t length = 0; length < base.size(); ++length) {
      const StatusOr<Response> decoded = DecodeResponseBody(
          std::span<const uint8_t>(base.data(), length));
      EXPECT_FALSE(decoded.ok())
          << "truncated response decoded at length " << length;
    }
  }
}

TEST(ProtocolFuzzTest, ResponseLyingRowCountIsRejectedWithoutAllocation) {
  // A response claiming 2^60 rows in a 100-byte body must fail fast on the
  // reserve-bomb guard, not attempt the allocation.
  Response response;
  response.request_id = 13;
  response.result.column_names = {"count"};
  response.result.AddRow({"1"});
  std::vector<uint8_t> frame = EncodeResponse(response);
  std::vector<uint8_t> body(frame.begin() + sizeof(uint32_t), frame.end());
  // num_rows (u64) follows request id (u64), status (u8), flags (u8),
  // num_columns (u32) and the one column name (u64 length + bytes).
  const size_t num_rows_offset = sizeof(uint64_t) + 1 + 1 + sizeof(uint32_t) +
                                 sizeof(uint64_t) + std::strlen("count");
  const uint64_t lie = uint64_t{1} << 60;
  std::memcpy(body.data() + num_rows_offset, &lie, sizeof(lie));
  const StatusOr<Response> decoded = DecodeResponseBody(body);
  EXPECT_FALSE(decoded.ok());
}

TEST(ProtocolFuzzTest, ResponseRandomGarbageNeverCrashes) {
  Rng rng(0xbadf00d);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const size_t size = rng.Uniform(160);
    std::vector<uint8_t> garbage(size);
    for (uint8_t& byte : garbage) {
      byte = static_cast<uint8_t>(rng.Uniform(256));
    }
    DecodeResponseSurvives(garbage);
  }
}

TEST(ProtocolFuzzTest, EmptyBodiesFailCleanly) {
  EXPECT_FALSE(DecodeRequestSurvives({}));
  EXPECT_FALSE(DecodeResponseSurvives({}));
}

}  // namespace
}  // namespace adict
