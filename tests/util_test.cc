// Unit tests for the utility layer: bit streams, varints, RNG, Zipf, SHA-256.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "util/bit_stream.h"
#include "util/rng.h"
#include "util/sha256.h"
#include "util/varint.h"
#include "util/zipf.h"

namespace adict {
namespace {

TEST(BitStream, SingleBitsRoundtrip) {
  BitWriter writer;
  const std::vector<unsigned> bits = {1, 0, 0, 1, 1, 1, 0, 1, 0, 1, 1};
  for (unsigned b : bits) writer.WriteBit(b);
  EXPECT_EQ(writer.bit_count(), bits.size());

  BitReader reader(writer.bytes().data(), 0);
  for (unsigned b : bits) EXPECT_EQ(reader.ReadBit(), b);
}

TEST(BitStream, MultiBitValuesRoundtrip) {
  BitWriter writer;
  writer.WriteBits(0x5, 3);
  writer.WriteBits(0x1234, 16);
  writer.WriteBits(0x1, 1);
  writer.WriteBits(0xdeadbeefcafebabeull, 64);

  BitReader reader(writer.bytes().data(), 0);
  EXPECT_EQ(reader.ReadBits(3), 0x5u);
  EXPECT_EQ(reader.ReadBits(16), 0x1234u);
  EXPECT_EQ(reader.ReadBits(1), 0x1u);
  EXPECT_EQ(reader.ReadBits(64), 0xdeadbeefcafebabeull);
}

TEST(BitStream, MsbFirstByteLayout) {
  BitWriter writer;
  writer.WriteBits(0b10110001, 8);
  EXPECT_EQ(writer.bytes()[0], 0b10110001);
}

TEST(BitStream, ReaderAtArbitraryOffset) {
  BitWriter writer;
  writer.WriteBits(0x00, 5);
  writer.WriteBits(0x2a, 7);

  BitReader reader(writer.bytes().data(), 5);
  EXPECT_EQ(reader.ReadBits(7), 0x2au);
  EXPECT_EQ(reader.position(), 12u);
}

TEST(BitStream, RandomizedRoundtrip) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    BitWriter writer;
    std::vector<std::pair<uint64_t, int>> values;
    for (int i = 0; i < 200; ++i) {
      const int nbits = 1 + static_cast<int>(rng.Uniform(64));
      const uint64_t value =
          nbits == 64 ? rng.Next() : rng.Next() & ((1ull << nbits) - 1);
      values.emplace_back(value, nbits);
      writer.WriteBits(value, nbits);
    }
    BitReader reader(writer.bytes().data(), 0);
    for (const auto& [value, nbits] : values) {
      ASSERT_EQ(reader.ReadBits(nbits), value);
    }
  }
}

TEST(Varint, Roundtrip) {
  const std::vector<uint64_t> values = {0,   1,    127,        128,
                                        300, 1234, 1ull << 35, ~0ull};
  std::vector<uint8_t> buf;
  for (uint64_t v : values) PutVarint(&buf, v);
  size_t pos = 0;
  for (uint64_t v : values) EXPECT_EQ(GetVarint(buf.data(), &pos), v);
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, LengthMatchesEncoding) {
  std::vector<uint8_t> buf;
  for (uint64_t v : {0ull, 127ull, 128ull, 16383ull, 16384ull, ~0ull}) {
    buf.clear();
    PutVarint(&buf, v);
    EXPECT_EQ(buf.size(), VarintLength(v)) << v;
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const int64_t v = rng.UniformRange(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RandomStringUsesAlphabet) {
  Rng rng(9);
  const std::string s = rng.RandomString(500, "abc");
  EXPECT_EQ(s.size(), 500u);
  for (char c : s) EXPECT_TRUE(c == 'a' || c == 'b' || c == 'c');
}

TEST(Zipf, RankZeroIsMostFrequent) {
  ZipfDistribution zipf(100, 1.0);
  Rng rng(11);
  std::map<uint64_t, int> histogram;
  for (int i = 0; i < 20000; ++i) ++histogram[zipf.Sample(&rng)];
  // Rank 0 should dominate rank 10 which should dominate rank 90.
  EXPECT_GT(histogram[0], histogram[10]);
  EXPECT_GT(histogram[10], histogram[90]);
}

TEST(Zipf, CoversFullRange) {
  ZipfDistribution zipf(4, 0.5);
  Rng rng(13);
  std::map<uint64_t, int> histogram;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t r = zipf.Sample(&rng);
    ASSERT_LT(r, 4u);
    ++histogram[r];
  }
  EXPECT_EQ(histogram.size(), 4u);
}

TEST(Sha256, KnownVectors) {
  // FIPS 180-4 test vectors.
  EXPECT_EQ(Sha256Hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256Hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, LongInputCrossesBlockBoundaries) {
  // One million 'a' characters (FIPS vector).
  const std::string input(1000000, 'a');
  EXPECT_EQ(Sha256Hex(input),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, PaddingBoundaryLengths) {
  // Lengths 55, 56, 63, 64, 65 exercise the one- vs two-block padding paths.
  for (size_t len : {55u, 56u, 63u, 64u, 65u}) {
    const std::string input(len, 'x');
    const std::string hex = Sha256Hex(input);
    EXPECT_EQ(hex.size(), 64u);
    // Digest must be stable.
    EXPECT_EQ(hex, Sha256Hex(input));
  }
}

}  // namespace
}  // namespace adict
