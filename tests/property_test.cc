// Property-based tests: randomized invariants across formats and codecs,
// and brute-force cross-checks for the optimization algorithms.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "core/controller.h"
#include "datasets/generators.h"
#include "dict/dictionary.h"
#include "text/prefix_code.h"
#include "text/repair.h"
#include "util/bit_stream.h"
#include "util/rng.h"

namespace adict {
namespace {

// ---------------------------------------------------------------------------
// Hu-Tucker vs. the Gilbert-Moore O(n^3) DP for optimal alphabetic trees.
// ---------------------------------------------------------------------------

/// Reference: minimal weighted depth of any alphabetic binary tree.
uint64_t OptimalAlphabeticCost(const std::vector<uint64_t>& weights) {
  const size_t n = weights.size();
  std::vector<uint64_t> prefix(n + 1, 0);
  for (size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + weights[i];

  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max() / 4;
  // cost[i][j]: optimal cost of the leaves i..j (inclusive).
  std::vector<std::vector<uint64_t>> cost(n, std::vector<uint64_t>(n, 0));
  for (size_t len = 2; len <= n; ++len) {
    for (size_t i = 0; i + len <= n; ++i) {
      const size_t j = i + len - 1;
      uint64_t best = kInf;
      for (size_t k = i; k < j; ++k) {
        best = std::min(best, cost[i][k] + cost[k + 1][j]);
      }
      cost[i][j] = best + (prefix[j + 1] - prefix[i]);
    }
  }
  return cost[0][n - 1];
}

uint64_t CostOfLevels(const std::vector<uint64_t>& weights,
                      const std::vector<int>& levels) {
  uint64_t cost = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cost += weights[i] * static_cast<uint64_t>(levels[i]);
  }
  return cost;
}

TEST(HuTuckerProperty, MatchesBruteForceOptimumOnRandomWeights) {
  Rng rng(1);
  for (int round = 0; round < 200; ++round) {
    const size_t n = 2 + rng.Uniform(14);
    std::vector<uint64_t> weights(n);
    for (auto& w : weights) w = 1 + rng.Uniform(100);
    const std::vector<int> levels = HuTuckerCodec::ComputeLevels(weights);
    ASSERT_EQ(CostOfLevels(weights, levels), OptimalAlphabeticCost(weights))
        << "round " << round;
  }
}

TEST(HuTuckerProperty, MatchesBruteForceOnAdversarialShapes) {
  // Monotone, alternating, single-heavy, and all-equal weight profiles.
  const std::vector<std::vector<uint64_t>> cases = {
      {1, 2, 3, 4, 5, 6, 7, 8},
      {8, 7, 6, 5, 4, 3, 2, 1},
      {100, 1, 100, 1, 100, 1},
      {1, 1, 1000, 1, 1},
      {5, 5, 5, 5, 5, 5, 5},
      {1, 1000},
      {1000, 1},
  };
  for (const auto& weights : cases) {
    const std::vector<int> levels = HuTuckerCodec::ComputeLevels(weights);
    EXPECT_EQ(CostOfLevels(weights, levels), OptimalAlphabeticCost(weights));
  }
}

// ---------------------------------------------------------------------------
// Randomized dictionary invariants across all formats.
// ---------------------------------------------------------------------------

std::vector<std::string> RandomDictionary(Rng* rng, bool allow_empty) {
  std::vector<std::string> values;
  const int n = 1 + static_cast<int>(rng->Uniform(300));
  const int alphabet = 1 + static_cast<int>(rng->Uniform(40));
  for (int i = 0; i < n; ++i) {
    const size_t len = rng->Uniform(25) + (allow_empty ? 0 : 1);
    std::string s;
    for (size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>('0' + rng->Uniform(alphabet)));
    }
    values.push_back(std::move(s));
  }
  return SortedUnique(std::move(values));
}

class DictionaryPropertyTest : public ::testing::TestWithParam<DictFormat> {};

TEST_P(DictionaryPropertyTest, ExtractIsMonotoneAndLocateIsInverse) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  for (int round = 0; round < 15; ++round) {
    const std::vector<std::string> sorted =
        RandomDictionary(&rng, /*allow_empty=*/round % 2 == 0);
    auto dict = BuildDictionary(GetParam(), sorted);
    std::string prev;
    for (uint32_t id = 0; id < dict->size(); ++id) {
      const std::string value = dict->Extract(id);
      if (id > 0) {
        ASSERT_LT(prev, value);  // order preservation
      }
      const LocateResult r = dict->Locate(value);  // locate inverts extract
      ASSERT_TRUE(r.found);
      ASSERT_EQ(r.id, id);
      prev = value;
    }
  }
}

TEST_P(DictionaryPropertyTest, LocateBoundaries) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 200);
  const std::vector<std::string> sorted = RandomDictionary(&rng, false);
  auto dict = BuildDictionary(GetParam(), sorted);
  // Below the first entry.
  EXPECT_EQ(dict->Locate(""), (LocateResult{0, false}));
  // Above the last entry.
  const std::string beyond = sorted.back() + "\x7f";
  EXPECT_EQ(dict->Locate(beyond), (LocateResult{dict->size(), false}));
}

TEST_P(DictionaryPropertyTest, EmptyStringEntrySupported) {
  // "" is a legal dictionary entry and must sort first.
  std::vector<std::string> sorted = {"", "a", "b"};
  if (GetParam() == DictFormat::kArrayFixed) {
    // array fixed represents "" as an all-padding slot; covered implicitly.
    return;
  }
  auto dict = BuildDictionary(GetParam(), sorted);
  EXPECT_EQ(dict->Extract(0), "");
  EXPECT_EQ(dict->Locate(""), (LocateResult{0, true}));
  EXPECT_EQ(dict->Extract(2), "b");
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, DictionaryPropertyTest,
    ::testing::ValuesIn(AllDictFormats().begin(), AllDictFormats().end()),
    [](const ::testing::TestParamInfo<DictFormat>& info) {
      std::string name(DictFormatName(info.param));
      std::replace(name.begin(), name.end(), ' ', '_');
      return name;
    });

// ---------------------------------------------------------------------------
// Codec determinism and stability.
// ---------------------------------------------------------------------------

TEST(RePairProperty, TrainingIsDeterministic) {
  const std::vector<std::string> strings = GenerateSurveyDataset("src", 2000, 3);
  const std::vector<std::string_view> views(strings.begin(), strings.end());
  auto a = RePairCodec::Train(12, views);
  auto b = RePairCodec::Train(12, views);
  ASSERT_EQ(a->num_rules(), b->num_rules());
  BitWriter wa, wb;
  for (const std::string& s : strings) {
    a->Encode(s, &wa);
    b->Encode(s, &wb);
  }
  EXPECT_EQ(wa.bytes(), wb.bytes());
}

TEST(RePairProperty, EncodeNeverExpandsBeyondOneSymbolPerChar) {
  Rng rng(4);
  const std::vector<std::string> strings = GenerateSurveyDataset("rand2", 500, 5);
  const std::vector<std::string_view> views(strings.begin(), strings.end());
  for (int bits : {12, 16}) {
    auto codec = RePairCodec::Train(bits, views);
    for (const std::string& s : strings) {
      BitWriter sink;
      const uint64_t encoded_bits = codec->Encode(s, &sink);
      EXPECT_LE(encoded_bits, s.size() * static_cast<uint64_t>(bits));
    }
  }
}

// ---------------------------------------------------------------------------
// Feedback controller convergence.
// ---------------------------------------------------------------------------

TEST(ControllerProperty, ConvergesToClampUnderConstantPressure) {
  TradeoffController controller;
  for (int i = 0; i < 500; ++i) controller.Observe(0, 100);
  EXPECT_DOUBLE_EQ(controller.c(), TradeoffController::Options{}.min_c);
  for (int i = 0; i < 1000; ++i) controller.Observe(100, 100);
  EXPECT_DOUBLE_EQ(controller.c(), TradeoffController::Options{}.max_c);
}

TEST(ControllerProperty, OscillatingLoadKeepsCBounded) {
  TradeoffController controller;
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    controller.Observe(rng.Uniform(100), 100);
    ASSERT_GE(controller.c(), TradeoffController::Options{}.min_c);
    ASSERT_LE(controller.c(), TradeoffController::Options{}.max_c);
    ASSERT_GE(controller.smoothed_free_fraction(), 0.0);
    ASSERT_LE(controller.smoothed_free_fraction(), 1.0);
  }
}

}  // namespace
}  // namespace adict
