// Unit tests for the span tracer: nesting and ordering, thread-local
// isolation, buffer bounding, the disabled-path no-op, Chrome trace JSON
// well-formedness (checked with a minimal parser), the summary's
// inclusive/exclusive accounting, and Histogram::Quantile edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace adict {
namespace {

// Serializes access to the process-wide tracer state (enabled flag + event
// buffers) across the tests in this binary, and restores a clean disabled
// state afterwards.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Trace().Clear();
    obs::SetTraceEnabled(true);
  }
  void TearDown() override {
    obs::SetTraceEnabled(false);
    obs::Trace().Clear();
  }
};

const obs::TraceEvent* FindEvent(const std::vector<obs::TraceEvent>& events,
                                 std::string_view name) {
  for (const obs::TraceEvent& event : events) {
    if (event.name != nullptr && name == event.name) return &event;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Recording

TEST_F(TraceTest, NestedSpansRecordDepthAndContainment) {
  {
    obs::ScopedSpan outer("test.outer");
    {
      obs::ScopedSpan middle("test.middle");
      obs::ScopedSpan inner("test.inner");
      (void)inner;
      (void)middle;
    }
    (void)outer;
  }
  const std::vector<obs::TraceEvent> events = obs::Trace().Snapshot();
  ASSERT_EQ(events.size(), 3u);

  const obs::TraceEvent* outer = FindEvent(events, "test.outer");
  const obs::TraceEvent* middle = FindEvent(events, "test.middle");
  const obs::TraceEvent* inner = FindEvent(events, "test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(middle, nullptr);
  ASSERT_NE(inner, nullptr);

  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(middle->depth, 1u);
  EXPECT_EQ(inner->depth, 2u);

  // Children complete before parents, and lie inside the parent interval.
  EXPECT_EQ(events[0].name, std::string("test.inner"));
  EXPECT_EQ(events[2].name, std::string("test.outer"));
  EXPECT_GE(inner->start_ns, middle->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns,
            middle->start_ns + middle->dur_ns);
  EXPECT_GE(middle->start_ns, outer->start_ns);
  EXPECT_LE(middle->start_ns + middle->dur_ns,
            outer->start_ns + outer->dur_ns);

  // Siblings recorded after a scope closed re-use the parent's depth.
  {
    obs::ScopedSpan sibling("test.sibling");
    (void)sibling;
  }
  const std::vector<obs::TraceEvent> more = obs::Trace().Snapshot();
  const obs::TraceEvent* sibling = FindEvent(more, "test.sibling");
  ASSERT_NE(sibling, nullptr);
  EXPECT_EQ(sibling->depth, 0u);
}

TEST_F(TraceTest, MacroExpandsToDistinctSpansPerLine) {
  {
    ADICT_TRACE_SPAN("test.macro_a");
    ADICT_TRACE_SPAN("test.macro_b");
  }
  const std::vector<obs::TraceEvent> events = obs::Trace().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(FindEvent(events, "test.macro_a"), nullptr);
  EXPECT_NE(FindEvent(events, "test.macro_b"), nullptr);
}

TEST_F(TraceTest, ThreadsRecordIntoIsolatedBuffersWithDistinctTids) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::ScopedSpan span("test.thread_span");
        obs::ScopedSpan nested("test.thread_nested");
        (void)span;
        (void)nested;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<obs::TraceEvent> events = obs::Trace().Snapshot();
  EXPECT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread * 2);

  // Every thread got its own tid, and nesting depth never leaked across
  // threads: each tid sees exactly half its events at depth 0.
  std::vector<uint32_t> tids;
  for (const obs::TraceEvent& event : events) {
    if (std::find(tids.begin(), tids.end(), event.tid) == tids.end()) {
      tids.push_back(event.tid);
    }
  }
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
  for (uint32_t tid : tids) {
    int depth0 = 0, depth1 = 0;
    for (const obs::TraceEvent& event : events) {
      if (event.tid != tid) continue;
      if (event.depth == 0) ++depth0;
      if (event.depth == 1) ++depth1;
    }
    EXPECT_EQ(depth0, kSpansPerThread);
    EXPECT_EQ(depth1, kSpansPerThread);
  }
}

TEST_F(TraceTest, FullBufferDropsAndCountsInsteadOfGrowing) {
  const size_t original_capacity = obs::Trace().per_thread_capacity();
  obs::Trace().set_per_thread_capacity(8);
  // A fresh thread registers its buffer at the reduced capacity.
  std::thread recorder([] {
    for (int i = 0; i < 20; ++i) {
      obs::ScopedSpan span("test.bounded");
      (void)span;
    }
  });
  recorder.join();
  obs::Trace().set_per_thread_capacity(original_capacity);

  const std::vector<obs::TraceEvent> events = obs::Trace().Snapshot();
  size_t recorded = 0;
  for (const obs::TraceEvent& event : events) {
    if (std::string_view(event.name) == "test.bounded") ++recorded;
  }
  EXPECT_EQ(recorded, 8u);
  EXPECT_EQ(obs::Trace().dropped(), 12u);
}

TEST_F(TraceTest, DisabledPathRecordsNothing) {
  obs::SetTraceEnabled(false);
  {
    ADICT_TRACE_SPAN("test.disabled");
    obs::ScopedSpan span("test.disabled_direct");
    (void)span;
  }
  EXPECT_TRUE(obs::Trace().Snapshot().empty());
  EXPECT_EQ(obs::Trace().dropped(), 0u);

  // A span opened while disabled stays silent even if tracing flips on
  // before it closes (the decision is taken at open time).
  obs::ScopedSpan* straddling = nullptr;
  {
    obs::ScopedSpan span("test.straddling");
    straddling = &span;
    (void)straddling;
    obs::SetTraceEnabled(true);
  }
  EXPECT_TRUE(obs::Trace().Snapshot().empty());
}

// ---------------------------------------------------------------------------
// Chrome trace JSON

// Minimal JSON well-formedness checker: objects, arrays, strings with
// escapes, numbers, true/false/null. Returns true iff the whole input is
// one valid value.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : p_(text.data()), end_(p_ + text.size()) {}

  bool Valid() {
    const bool ok = Value();
    SkipSpace();
    return ok && p_ == end_;
  }

 private:
  void SkipSpace() {
    while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }
  bool Literal(std::string_view word) {
    if (static_cast<size_t>(end_ - p_) < word.size()) return false;
    if (std::string_view(p_, word.size()) != word) return false;
    p_ += word.size();
    return true;
  }
  bool String() {
    if (p_ >= end_ || *p_ != '"') return false;
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ >= end_) return false;
      }
      ++p_;
    }
    if (p_ >= end_) return false;
    ++p_;
    return true;
  }
  bool Number() {
    const char* start = p_;
    if (p_ < end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ < end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                         *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                         *p_ == '-' || *p_ == '+')) {
      digits |= std::isdigit(static_cast<unsigned char>(*p_)) != 0;
      ++p_;
    }
    return digits && p_ != start;
  }
  bool Value() {
    SkipSpace();
    if (p_ >= end_) return false;
    switch (*p_) {
      case '{': {
        ++p_;
        SkipSpace();
        if (p_ < end_ && *p_ == '}') {
          ++p_;
          return true;
        }
        while (true) {
          SkipSpace();
          if (!String()) return false;
          SkipSpace();
          if (p_ >= end_ || *p_ != ':') return false;
          ++p_;
          if (!Value()) return false;
          SkipSpace();
          if (p_ < end_ && *p_ == ',') {
            ++p_;
            continue;
          }
          break;
        }
        if (p_ >= end_ || *p_ != '}') return false;
        ++p_;
        return true;
      }
      case '[': {
        ++p_;
        SkipSpace();
        if (p_ < end_ && *p_ == ']') {
          ++p_;
          return true;
        }
        while (true) {
          if (!Value()) return false;
          SkipSpace();
          if (p_ < end_ && *p_ == ',') {
            ++p_;
            continue;
          }
          break;
        }
        if (p_ >= end_ || *p_ != ']') return false;
        ++p_;
        return true;
      }
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  const char* p_;
  const char* end_;
};

TEST_F(TraceTest, ChromeJsonIsWellFormedAndCarriesRequiredFields) {
  {
    obs::ScopedSpan outer("test.json \"quoted\"\\name");
    obs::ScopedSpan inner("test.json_inner");
    (void)outer;
    (void)inner;
  }
  const std::string json = obs::TraceToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  // The quote and backslash in the span name were escaped.
  EXPECT_NE(json.find("test.json \\\"quoted\\\"\\\\name"), std::string::npos);
}

TEST_F(TraceTest, EmptyTraceStillExportsValidJson) {
  const std::string json = obs::TraceToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

// ---------------------------------------------------------------------------
// Summary

TEST_F(TraceTest, SummaryAttributesChildTimeToExclusiveBuckets) {
  std::vector<obs::TraceEvent> events;
  // Hand-built trace: parent [0, 1000], child [100, 400], child [500, 800],
  // plus an unrelated span on another thread [0, 50].
  events.push_back({"child", 100, 300, 1, 1});
  events.push_back({"child", 500, 300, 1, 1});
  events.push_back({"parent", 0, 1000, 1, 0});
  events.push_back({"other", 0, 50, 2, 0});

  const std::vector<obs::SpanStats> stats = obs::SummarizeTrace(events);
  ASSERT_EQ(stats.size(), 3u);

  const auto find = [&](std::string_view name) -> const obs::SpanStats* {
    for (const obs::SpanStats& s : stats) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  const obs::SpanStats* parent = find("parent");
  const obs::SpanStats* child = find("child");
  const obs::SpanStats* other = find("other");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  ASSERT_NE(other, nullptr);

  EXPECT_EQ(parent->count, 1u);
  EXPECT_EQ(parent->inclusive_ns, 1000u);
  EXPECT_EQ(parent->exclusive_ns, 400u);  // 1000 - 2 * 300
  EXPECT_EQ(child->count, 2u);
  EXPECT_EQ(child->inclusive_ns, 600u);
  EXPECT_EQ(child->exclusive_ns, 600u);
  EXPECT_EQ(other->inclusive_ns, 50u);
  EXPECT_EQ(other->exclusive_ns, 50u);

  const std::string text = obs::TraceSummaryToText(events, /*dropped=*/3);
  EXPECT_NE(text.find("parent"), std::string::npos);
  EXPECT_NE(text.find("3 dropped"), std::string::npos);
}

TEST_F(TraceTest, SummaryUsesDepthToKeepSameStartAncestorsOpen) {
  // With a coarse clock a parent span can be recorded with zero duration
  // sharing its start timestamp with a child. The recorded depth still
  // identifies it as an ancestor: the child must be attributed to it, not
  // popped past it to the grandparent.
  std::vector<obs::TraceEvent> events;
  events.push_back({"grand", 0, 1000, 1, 0});
  events.push_back({"parent", 100, 0, 1, 1});
  events.push_back({"child", 100, 200, 1, 2});

  const std::vector<obs::SpanStats> stats = obs::SummarizeTrace(events);
  const auto find = [&](std::string_view name) -> const obs::SpanStats* {
    for (const obs::SpanStats& s : stats) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  const obs::SpanStats* grand = find("grand");
  const obs::SpanStats* parent = find("parent");
  const obs::SpanStats* child = find("child");
  ASSERT_NE(grand, nullptr);
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);

  // The child's 200 ns land in the parent's child bucket; the grandparent's
  // only direct child is the zero-duration parent. Misattributing the child
  // to the grandparent would read 800 here.
  EXPECT_EQ(grand->exclusive_ns, 1000u);
  EXPECT_EQ(parent->inclusive_ns, 0u);
  EXPECT_EQ(child->exclusive_ns, 200u);

  // A zero-gap *sibling* (same depth) is still popped: back-to-back spans
  // both count as children of the enclosing one.
  std::vector<obs::TraceEvent> siblings;
  siblings.push_back({"root", 0, 200, 1, 0});
  siblings.push_back({"a", 0, 100, 1, 1});
  siblings.push_back({"b", 100, 100, 1, 1});
  const std::vector<obs::SpanStats> sibling_stats =
      obs::SummarizeTrace(siblings);
  for (const obs::SpanStats& s : sibling_stats) {
    if (s.name == "root") {
      EXPECT_EQ(s.exclusive_ns, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Histogram::Quantile

TEST(HistogramQuantile, EmptyHistogramReturnsZero) {
  const std::vector<double> bounds = {10, 100};
  obs::Histogram hist(bounds);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(1.0), 0.0);
}

TEST(HistogramQuantile, SingleBucketInterpolatesFromZero) {
  const std::vector<double> bounds = {100};
  obs::Histogram hist(bounds);
  hist.Observe(10);
  hist.Observe(20);
  hist.Observe(30);
  hist.Observe(40);
  // rank q*4 inside the [0, 100] bucket of 4 observations.
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(1.0), 100.0);
  // q = 0 clamps the rank to the first observation.
  EXPECT_DOUBLE_EQ(hist.Quantile(0.0), 25.0);
}

TEST(HistogramQuantile, InterpolatesAcrossBuckets) {
  const std::vector<double> bounds = {10, 20};
  obs::Histogram hist(bounds);
  for (int i = 0; i < 10; ++i) hist.Observe(5);   // first bucket
  for (int i = 0; i < 10; ++i) hist.Observe(15);  // second bucket
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 10.0);   // rank 10 = first bucket edge
  EXPECT_DOUBLE_EQ(hist.Quantile(0.75), 15.0);  // halfway into [10, 20]
}

TEST(HistogramQuantile, OverflowBucketClampsToLargestBound) {
  const std::vector<double> bounds = {10, 100};
  obs::Histogram hist(bounds);
  hist.Observe(5);
  hist.Observe(5000);  // overflow bucket
  hist.Observe(5000);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.99), 100.0);
  // Everything in overflow: still the largest bound, never an invented value.
  obs::Histogram overflow_only(bounds);
  overflow_only.Observe(1e9);
  EXPECT_DOUBLE_EQ(overflow_only.Quantile(0.5), 100.0);
}

TEST(HistogramQuantile, OutOfRangeQIsClamped) {
  const std::vector<double> bounds = {10};
  obs::Histogram hist(bounds);
  hist.Observe(5);
  EXPECT_DOUBLE_EQ(hist.Quantile(-0.5), hist.Quantile(0.0));
  EXPECT_DOUBLE_EQ(hist.Quantile(1.5), hist.Quantile(1.0));
}

}  // namespace
}  // namespace adict
