// Tests for the column-store substrate: column vectors, domain encoding,
// instrumented string columns, delta merge, tables, and date utilities.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datasets/generators.h"
#include "store/column_vector.h"
#include "store/delta.h"
#include "store/string_column.h"
#include "store/table.h"
#include "util/date.h"
#include "util/rng.h"

namespace adict {
namespace {

TEST(ColumnVector, PacksAtMinimalWidth) {
  const std::vector<uint32_t> ids = {0, 1, 2, 3};
  EXPECT_EQ(ColumnVector(ids, 4).bits_per_value(), 2);
  EXPECT_EQ(ColumnVector(ids, 5).bits_per_value(), 3);
  EXPECT_EQ(ColumnVector(ids, 2).bits_per_value(), 1);
  const std::vector<uint32_t> zero = {0, 0};
  EXPECT_EQ(ColumnVector(zero, 1).bits_per_value(), 1);
}

TEST(ColumnVector, RoundtripAcrossWordBoundaries) {
  Rng rng(1);
  for (uint32_t distinct : {2u, 3u, 31u, 33u, 1000u, 100000u, 1u << 20}) {
    std::vector<uint32_t> ids(999);
    for (auto& id : ids) id = static_cast<uint32_t>(rng.Uniform(distinct));
    const ColumnVector vec(ids, distinct);
    for (size_t row = 0; row < ids.size(); ++row) {
      ASSERT_EQ(vec.Get(row), ids[row]) << "distinct " << distinct;
    }
  }
}

TEST(ColumnVector, MemorySmallerThanPlainArray) {
  std::vector<uint32_t> ids(10000);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i % 16;  // 4 bits
  const ColumnVector vec(ids, 16);
  EXPECT_LT(vec.MemoryBytes(), ids.size() * sizeof(uint32_t) / 4);
}

TEST(DomainEncode, BuildsSortedDistinctDictionary) {
  const std::vector<std::string> values = {"b", "a", "c", "a", "b", "a"};
  const DomainEncoded encoded = DomainEncode(values);
  EXPECT_EQ(encoded.dictionary, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(encoded.ids, (std::vector<uint32_t>{1, 0, 2, 0, 1, 0}));
}

TEST(StringColumn, RoundtripsValues) {
  std::vector<std::string> values;
  Rng rng(2);
  const std::vector<std::string> pool = GenerateSurveyDataset("engl", 50, 3);
  for (int i = 0; i < 1000; ++i) values.push_back(pool[rng.Uniform(pool.size())]);

  for (DictFormat format : {DictFormat::kArray, DictFormat::kFcInline,
                            DictFormat::kFcBlockRp12, DictFormat::kColumnBc}) {
    const StringColumn column = StringColumn::FromValues(values, format);
    ASSERT_EQ(column.num_rows(), values.size());
    EXPECT_EQ(column.num_distinct(), 50u);
    for (size_t row = 0; row < values.size(); ++row) {
      ASSERT_EQ(column.GetValue(row), values[row]) << DictFormatName(format);
    }
  }
}

TEST(StringColumn, ValueIdsStableAcrossFormats) {
  // All formats are order-preserving, so a format change must not move IDs:
  // the column vector can be kept (this is what makes cheap re-deciding at
  // merge time possible).
  const std::vector<std::string> values = GenerateSurveyDataset("mat", 500, 4);
  StringColumn column = StringColumn::FromValues(values, DictFormat::kArray);
  std::vector<uint32_t> ids_before(column.num_rows());
  for (size_t row = 0; row < column.num_rows(); ++row) {
    ids_before[row] = column.GetValueId(row);
  }
  column.ChangeFormat(DictFormat::kFcBlockHu);
  EXPECT_EQ(column.format(), DictFormat::kFcBlockHu);
  for (size_t row = 0; row < column.num_rows(); ++row) {
    ASSERT_EQ(column.GetValueId(row), ids_before[row]);
    ASSERT_EQ(column.GetValue(row), values[row]);
  }
}

TEST(StringColumn, TracksUsage) {
  const std::vector<std::string> values = {"x", "y", "z", "x"};
  const StringColumn column = StringColumn::FromValues(values);
  (void)column.GetValue(0);
  (void)column.GetValue(1);
  (void)column.Locate("y");
  const ColumnUsage usage = column.TracedUsage(60.0);
  EXPECT_EQ(usage.num_extracts, 2u);
  EXPECT_EQ(usage.num_locates, 1u);
  EXPECT_DOUBLE_EQ(usage.lifetime_seconds, 60.0);
  EXPECT_EQ(usage.column_vector_bytes, column.VectorBytes());
}

TEST(StringColumn, ResetUsageClearsCounters) {
  const StringColumn column =
      StringColumn::FromValues(std::vector<std::string>{"a", "b"});
  (void)column.GetValue(0);
  const_cast<StringColumn&>(column).ResetUsage();
  EXPECT_EQ(column.TracedUsage(1.0).num_extracts, 0u);
}

TEST(StringColumn, MaterializeDictionaryReturnsSortedValues) {
  const std::vector<std::string> values = {"m", "a", "z", "a"};
  const StringColumn column = StringColumn::FromValues(values);
  EXPECT_EQ(column.MaterializeDictionary(),
            (std::vector<std::string>{"a", "m", "z"}));
}

TEST(DeltaColumn, DedupsValues) {
  DeltaColumn delta;
  delta.Append("apple");
  delta.Append("pear");
  delta.Append("apple");
  EXPECT_EQ(delta.num_rows(), 3u);
  EXPECT_EQ(delta.num_distinct(), 2u);
  EXPECT_EQ(delta.GetValue(0), "apple");
  EXPECT_EQ(delta.GetValue(1), "pear");
  EXPECT_EQ(delta.GetValue(2), "apple");
}

TEST(DeltaMerge, AppendsRowsAndMergesDictionaries) {
  const std::vector<std::string> main_values = {"b", "d", "b"};
  StringColumn main = StringColumn::FromValues(main_values, DictFormat::kArray);
  DeltaColumn delta;
  delta.Append("a");
  delta.Append("d");
  delta.Append("c");

  const StringColumn merged = MergeDelta(main, delta, DictFormat::kFcBlock);
  ASSERT_EQ(merged.num_rows(), 6u);
  EXPECT_EQ(merged.num_distinct(), 4u);  // a b c d
  const std::vector<std::string> expected = {"b", "d", "b", "a", "d", "c"};
  for (size_t row = 0; row < expected.size(); ++row) {
    EXPECT_EQ(merged.GetValue(row), expected[row]);
  }
}

TEST(DeltaMerge, EmptyDeltaIsFormatChangeOnly) {
  const std::vector<std::string> values = {"q", "r", "s"};
  StringColumn main = StringColumn::FromValues(values, DictFormat::kArray);
  const StringColumn merged =
      MergeDelta(main, DeltaColumn{}, DictFormat::kArrayFixed);
  EXPECT_EQ(merged.format(), DictFormat::kArrayFixed);
  EXPECT_EQ(merged.num_rows(), 3u);
  EXPECT_EQ(merged.GetValue(2), "s");
}

TEST(DeltaMerge, AdaptiveMergeUsesTracedWorkload) {
  const std::vector<std::string> values = GenerateSurveyDataset("url", 3000, 5);
  StringColumn main = StringColumn::FromValues(values, DictFormat::kArray);
  // Trace a read-heavy workload.
  for (int i = 0; i < 5000; ++i) (void)main.GetValue(i % main.num_rows());

  DeltaColumn delta;
  delta.Append("https://zzz.example.com/new");

  CompressionManager manager;
  manager.set_c(0.01);  // compression-leaning
  const StringColumn merged = MergeDeltaAdaptive(main, delta, manager, 600.0);
  ASSERT_EQ(merged.num_rows(), main.num_rows() + 1);
  // The traced workload and low c should not pick the plain array.
  EXPECT_NE(merged.format(), DictFormat::kArray);
  EXPECT_EQ(merged.GetValue(merged.num_rows() - 1),
            "https://zzz.example.com/new");
}

TEST(Table, ColumnAccessByName) {
  Table table("t");
  table.AddStringColumn(
      "name", StringColumn::FromValues(std::vector<std::string>{"x", "y"}));
  table.AddInt64Column("count", {1, 2});
  table.AddDoubleColumn("price", {0.5, 1.5});
  table.AddDateColumn("day", {ParseDate("2020-01-01"), ParseDate("2020-01-02")});

  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.strings("name").GetValue(1), "y");
  EXPECT_EQ(table.int64s("count")[0], 1);
  EXPECT_DOUBLE_EQ(table.doubles("price")[1], 1.5);
  EXPECT_EQ(FormatDate(table.dates("day")[0]), "2020-01-01");
  EXPECT_TRUE(table.has_string_column("name"));
  EXPECT_FALSE(table.has_string_column("count"));
  EXPECT_GT(table.MemoryBytes(), 0u);
}

TEST(Date, CivilConversionsRoundtrip) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(ParseDate("1998-12-01"), DaysFromCivil(1998, 12, 1));
  EXPECT_EQ(FormatDate(ParseDate("1995-06-17")), "1995-06-17");
  for (const char* date : {"1992-01-01", "1996-02-29", "1998-08-02"}) {
    EXPECT_EQ(FormatDate(ParseDate(date)), date);
  }
}

TEST(Date, AddMonthsHandlesYearWrapAndClamping) {
  EXPECT_EQ(FormatDate(AddMonths(ParseDate("1993-07-01"), 3)), "1993-10-01");
  EXPECT_EQ(FormatDate(AddMonths(ParseDate("1994-11-15"), 3)), "1995-02-15");
  EXPECT_EQ(FormatDate(AddMonths(ParseDate("1996-01-31"), 1)), "1996-02-29");
  EXPECT_EQ(FormatDate(AddMonths(ParseDate("1995-01-31"), 1)), "1995-02-28");
  EXPECT_EQ(FormatDate(AddMonths(ParseDate("1995-03-31"), -1)), "1995-02-28");
}

}  // namespace
}  // namespace adict
