// Edge-case tests for the prediction framework: tiny dictionaries, skewed
// content, and the consistency of predictions with the actual builders.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/properties.h"
#include "core/tradeoff.h"
#include "core/size_model.h"
#include "datasets/generators.h"
#include "dict/dictionary.h"

namespace adict {
namespace {

double ErrorFor(DictFormat format, const std::vector<std::string>& sorted,
                const SamplingConfig& config) {
  const DictionaryProperties props = SampleProperties(sorted, config);
  auto dict = BuildDictionary(format, sorted);
  return PredictionError(static_cast<double>(dict->MemoryBytes()),
                         PredictDictionarySize(format, props));
}

TEST(SizeModelEdge, TinyDictionaryExactFormats) {
  // The exact-by-construction models must be near-perfect even for a
  // five-entry dictionary.
  const std::vector<std::string> sorted = {"AUTOMOBILE", "BUILDING",
                                           "FURNITURE", "HOUSEHOLD",
                                           "MACHINERY"};
  for (DictFormat format :
       {DictFormat::kArray, DictFormat::kArrayFixed, DictFormat::kFcBlock,
        DictFormat::kFcBlockDf, DictFormat::kFcInline}) {
    EXPECT_LT(ErrorFor(format, sorted, SamplingConfig::Exact()), 0.02)
        << DictFormatName(format);
  }
}

TEST(SizeModelEdge, SingleEntryDictionary) {
  const std::vector<std::string> sorted = {"lonely"};
  for (DictFormat format : AllDictFormats()) {
    const DictionaryProperties props =
        SampleProperties(sorted, SamplingConfig::Exact());
    const double predicted = PredictDictionarySize(format, props);
    EXPECT_GT(predicted, 0) << DictFormatName(format);
    // Codec tables bound the error for tiny inputs; just require the
    // prediction to be within a small absolute budget.
    auto dict = BuildDictionary(format, sorted);
    EXPECT_LT(std::abs(predicted - static_cast<double>(dict->MemoryBytes())),
              4096.0)
        << DictFormatName(format);
  }
}

TEST(SizeModelEdge, LongSharedPrefixColumn) {
  // All entries share a 200-char prefix: fc models must see the savings.
  std::vector<std::string> sorted;
  const std::string prefix(200, 'p');
  for (int i = 100; i < 400; ++i) sorted.push_back(prefix + std::to_string(i));
  const DictionaryProperties props =
      SampleProperties(sorted, SamplingConfig::Exact());
  EXPECT_LT(props.fc_raw_chars, 0.2 * props.raw_chars);
  EXPECT_LT(PredictDictionarySize(DictFormat::kFcBlock, props),
            PredictDictionarySize(DictFormat::kArray, props) / 2);
  // And the prediction still matches the real builder.
  EXPECT_LT(ErrorFor(DictFormat::kFcBlock, sorted, SamplingConfig::Exact()),
            0.05);
}

TEST(SizeModelEdge, BinaryAlphabetUsesOneBit) {
  std::vector<std::string> sorted;
  for (int i = 0; i < 256; ++i) {
    std::string s;
    for (int b = 7; b >= 0; --b) s.push_back((i >> b) & 1 ? 'b' : 'a');
    sorted.push_back(std::move(s));
  }
  const DictionaryProperties props =
      SampleProperties(sorted, SamplingConfig::Exact());
  EXPECT_EQ(props.distinct_chars, 2);
  EXPECT_NEAR(props.entropy0, 1.0, 1e-9);
  // bc should predict raw/8 plus overheads.
  const double predicted = PredictDictionarySize(DictFormat::kArrayBc, props);
  const double data_part = 256 * 8 / 8.0;  // one bit per char
  EXPECT_NEAR(predicted, data_part + 4.0 * 257 + 768.0 + 80.0, 100.0);
  EXPECT_LT(ErrorFor(DictFormat::kArrayBc, sorted, SamplingConfig::Exact()),
            0.02);
}

TEST(SizeModelEdge, SamplingSmallerThanFloorIsExact) {
  // If the dictionary has fewer entries than the floor, sampling degrades
  // to exact measurement.
  const std::vector<std::string> sorted = GenerateSurveyDataset("engl", 800, 1);
  const DictionaryProperties exact =
      SampleProperties(sorted, SamplingConfig::Exact());
  const DictionaryProperties floored =
      SampleProperties(sorted, SamplingConfig::Default());  // floor 5000 > 800
  EXPECT_DOUBLE_EQ(floored.sampled_fraction, 1.0);
  EXPECT_DOUBLE_EQ(floored.raw_chars, exact.raw_chars);
  EXPECT_EQ(floored.distinct_chars, exact.distinct_chars);
}

TEST(SizeModelEdge, ColumnVectorSizeShiftsAllCandidatesEqually) {
  const std::vector<std::string> sorted = GenerateSurveyDataset("mat", 1000, 2);
  const DictionaryProperties props =
      SampleProperties(sorted, SamplingConfig::Exact());
  ColumnUsage small_vec, big_vec;
  small_vec.column_vector_bytes = 0;
  big_vec.column_vector_bytes = 1 << 20;
  const CostModel costs = CostModel::Default();
  const auto a = EvaluateCandidates(props, small_vec, costs);
  const auto b = EvaluateCandidates(props, big_vec, costs);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(b[i].size_bytes - a[i].size_bytes, 1 << 20);
  }
}

}  // namespace
}  // namespace adict
