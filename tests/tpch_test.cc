// Tests for the TPC-H substrate: generator invariants, query execution, and
// the key property that query results are independent of dictionary format.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "engine/join.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "util/date.h"

namespace adict {
namespace {

// One small database shared by all tests in this file (generation plus
// dictionary builds are the expensive part).
const TpchDatabase& Db() {
  static const TpchDatabase* db = [] {
    TpchOptions options;
    options.scale_factor = 0.002;
    return new TpchDatabase(GenerateTpch(options));
  }();
  return *db;
}

TEST(TpchGen, RowCountsScale) {
  const TpchDatabase& db = Db();
  EXPECT_EQ(db.region.num_rows(), 5u);
  EXPECT_EQ(db.nation.num_rows(), 25u);
  EXPECT_EQ(db.supplier.num_rows(), 20u);    // 10000 * 0.002
  EXPECT_EQ(db.customer.num_rows(), 300u);   // 150000 * 0.002
  EXPECT_EQ(db.part.num_rows(), 400u);       // 200000 * 0.002
  EXPECT_EQ(db.partsupp.num_rows(), 1600u);  // 4 per part
  EXPECT_EQ(db.orders.num_rows(), 3000u);    // 1500000 * 0.002
  // 1..7 lineitems per order.
  EXPECT_GE(db.lineitem.num_rows(), db.orders.num_rows());
  EXPECT_LE(db.lineitem.num_rows(), 7 * db.orders.num_rows());
}

TEST(TpchGen, KeysAreVarchar10) {
  EXPECT_EQ(KeyString(42), "0000000042");
  const TpchDatabase& db = Db();
  for (uint64_t row = 0; row < 20; ++row) {
    EXPECT_EQ(db.orders.strings("O_ORDERKEY").GetValue(row).size(), 10u);
    EXPECT_EQ(db.lineitem.strings("L_PARTKEY").GetValue(row).size(), 10u);
  }
}

TEST(TpchGen, ReferentialIntegrity) {
  const TpchDatabase& db = Db();
  // Every FK dictionary value must resolve in the PK dictionary.
  const auto check_all_match = [](const StringColumn& fk,
                                  const StringColumn& pk) {
    const std::vector<uint32_t> map = MapDictionary(fk, pk);
    for (uint32_t id : map) ASSERT_NE(id, kNoMatch);
  };
  check_all_match(db.lineitem.strings("L_ORDERKEY"),
                  db.orders.strings("O_ORDERKEY"));
  check_all_match(db.lineitem.strings("L_PARTKEY"),
                  db.part.strings("P_PARTKEY"));
  check_all_match(db.lineitem.strings("L_SUPPKEY"),
                  db.supplier.strings("S_SUPPKEY"));
  check_all_match(db.orders.strings("O_CUSTKEY"),
                  db.customer.strings("C_CUSTKEY"));
  check_all_match(db.customer.strings("C_NATIONKEY"),
                  db.nation.strings("N_NATIONKEY"));
  check_all_match(db.supplier.strings("S_NATIONKEY"),
                  db.nation.strings("N_NATIONKEY"));
  check_all_match(db.nation.strings("N_REGIONKEY"),
                  db.region.strings("R_REGIONKEY"));
}

TEST(TpchGen, DateCorrelationsHold) {
  const TpchDatabase& db = Db();
  const Table& l = db.lineitem;
  const auto& ship = l.dates("L_SHIPDATE");
  const auto& receipt = l.dates("L_RECEIPTDATE");
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    ASSERT_LT(ship[row], receipt[row]);
    ASSERT_LE(receipt[row], ship[row] + 31);
  }
}

TEST(TpchGen, StatusColumnsAreConsistent) {
  const TpchDatabase& db = Db();
  const StringColumn& status = db.orders.strings("O_ORDERSTATUS");
  std::set<std::string> seen;
  for (uint64_t row = 0; row < db.orders.num_rows(); ++row) {
    seen.insert(status.GetValue(row));
  }
  for (const std::string& s : seen) {
    EXPECT_TRUE(s == "F" || s == "O" || s == "P") << s;
  }
  EXPECT_GE(seen.size(), 2u);
}

TEST(TpchGen, DeterministicInSeed) {
  TpchOptions options;
  options.scale_factor = 0.001;
  const TpchDatabase a = GenerateTpch(options);
  const TpchDatabase b = GenerateTpch(options);
  ASSERT_EQ(a.lineitem.num_rows(), b.lineitem.num_rows());
  for (uint64_t row = 0; row < a.lineitem.num_rows(); row += 37) {
    EXPECT_EQ(a.lineitem.strings("L_COMMENT").GetValue(row),
              b.lineitem.strings("L_COMMENT").GetValue(row));
  }
}

TEST(TpchGen, ApplyFormatRebuildsEveryDictionary) {
  TpchOptions options;
  options.scale_factor = 0.001;
  TpchDatabase db = GenerateTpch(options);
  const size_t before = db.StringColumnBytes();
  db.ApplyFormat(DictFormat::kFcBlockRp12);
  for (Table* table : db.tables()) {
    for (size_t i = 0; i < table->num_string_columns(); ++i) {
      EXPECT_EQ(table->string_column(i).current().format(),
                DictFormat::kFcBlockRp12);
    }
  }
  EXPECT_LT(db.StringColumnBytes(), before);  // rp compresses the defaults
}

// -- Queries -------------------------------------------------------------------

class TpchQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchQueryTest, RunsAndProducesSaneShape) {
  const QueryResult result = RunTpchQuery(Db(), GetParam());
  EXPECT_FALSE(result.column_names.empty());
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.size(), result.column_names.size());
  }
}

INSTANTIATE_TEST_SUITE_P(All22, TpchQueryTest, ::testing::Range(1, 23),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST(TpchQueries, Q1AggregatesEveryFlagStatusPair) {
  const QueryResult q1 = RunTpchQuery(Db(), 1);
  // A/F, N/F, N/O, R/F as in the spec's qualification output.
  EXPECT_EQ(q1.rows.size(), 4u);
  // count_order column must sum to (almost) all lineitems.
  uint64_t total = 0;
  for (const auto& row : q1.rows) total += std::stoull(row.back());
  EXPECT_GT(total, Db().lineitem.num_rows() * 95 / 100);
  EXPECT_LE(total, Db().lineitem.num_rows());
}

TEST(TpchQueries, Q6RevenueIsPositive) {
  const QueryResult q6 = RunTpchQuery(Db(), 6);
  ASSERT_EQ(q6.rows.size(), 1u);
  EXPECT_GT(std::stod(q6.rows[0][0]), 0.0);
}

TEST(TpchQueries, Q13IncludesCustomersWithoutOrders) {
  const QueryResult q13 = RunTpchQuery(Db(), 13);
  uint64_t customers = 0;
  bool has_zero_bucket = false;
  for (const auto& row : q13.rows) {
    customers += std::stoull(row[1]);
    has_zero_bucket |= row[0] == "0";
  }
  EXPECT_EQ(customers, Db().customer.num_rows());
  EXPECT_TRUE(has_zero_bucket);
}

TEST(TpchQueries, Q14PercentageInRange) {
  const QueryResult q14 = RunTpchQuery(Db(), 14);
  ASSERT_EQ(q14.rows.size(), 1u);
  const double share = std::stod(q14.rows[0][0]);
  EXPECT_GE(share, 0.0);
  EXPECT_LE(share, 100.0);
}

TEST(TpchQueries, ResultsIndependentOfDictionaryFormat) {
  // The core correctness property of the whole system: swapping dictionary
  // formats is invisible to queries.
  TpchOptions options;
  options.scale_factor = 0.001;
  TpchDatabase db = GenerateTpch(options);

  std::vector<QueryResult> baseline;
  for (int q = 1; q <= kNumTpchQueries; ++q) {
    baseline.push_back(RunTpchQuery(db, q));
  }
  db.ApplyFormat(DictFormat::kFcBlockRp16);
  for (int q = 1; q <= kNumTpchQueries; ++q) {
    const QueryResult result = RunTpchQuery(db, q);
    ASSERT_EQ(result.rows, baseline[q - 1].rows) << "Q" << q;
  }
  db.ApplyFormat(DictFormat::kColumnBc);
  for (int q : {1, 3, 9, 13, 21}) {
    const QueryResult result = RunTpchQuery(db, q);
    ASSERT_EQ(result.rows, baseline[q - 1].rows) << "Q" << q;
  }
}

TEST(TpchQueries, WorkloadTracesDictionaryUsage) {
  TpchOptions options;
  options.scale_factor = 0.001;
  TpchDatabase db = GenerateTpch(options);
  db.ResetUsage();
  for (int q = 1; q <= kNumTpchQueries; ++q) (void)RunTpchQuery(db, q);

  uint64_t extracts = 0, locates = 0;
  for (Table* table : db.tables()) {
    for (size_t i = 0; i < table->num_string_columns(); ++i) {
      const ColumnUsage usage =
          table->string_column(i).current().TracedUsage(1.0);
      extracts += usage.num_extracts;
      locates += usage.num_locates;
    }
  }
  EXPECT_GT(extracts, 0u);
  EXPECT_GT(locates, 0u);
}

}  // namespace
}  // namespace adict
