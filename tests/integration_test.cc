// End-to-end integration: the store lifecycle across inserts, merges,
// manager-driven format changes, persistence, and query consistency.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/compression_manager.h"
#include "datasets/generators.h"
#include "engine/scan.h"
#include "store/delta.h"
#include "store/string_column.h"
#include "util/rng.h"

namespace adict {
namespace {

TEST(Integration, LifecycleAcrossMergesAndFormatChanges) {
  // A column lives through several generations: delta inserts, adaptive
  // merges under changing memory pressure, serialization in between. Row
  // content must survive everything.
  Rng rng(1);
  const std::vector<std::string> pool = GenerateSurveyDataset("mat", 400, 2);
  std::vector<std::string> expected_rows;
  for (int i = 0; i < 3000; ++i) {
    expected_rows.push_back(pool[rng.Uniform(pool.size())]);
  }
  StringColumn column = StringColumn::FromValues(expected_rows);

  CompressionManager manager;
  for (int generation = 0; generation < 5; ++generation) {
    // Read workload (traced).
    for (int i = 0; i < 500; ++i) {
      (void)column.GetValue(rng.Uniform(column.num_rows()));
    }
    (void)column.Locate(pool[rng.Uniform(pool.size())]);

    // Memory pressure alternates between generations.
    for (int i = 0; i < 10; ++i) {
      manager.controller().Observe(generation % 2 ? 90.0 : 5.0, 100.0);
    }

    // New rows arrive in the delta.
    DeltaColumn delta;
    for (int i = 0; i < 50; ++i) {
      std::string value = "GEN" + std::to_string(generation) + "-" +
                          std::to_string(rng.Uniform(100));
      expected_rows.push_back(value);
      delta.Append(std::move(value));
    }

    // Merge re-decides the format.
    column = MergeDeltaAdaptive(column, delta, manager, 60.0);

    // Persist and reload mid-life.
    std::vector<uint8_t> buffer;
    ByteWriter writer(&buffer);
    column.Serialize(&writer);
    ByteReader reader(buffer.data(), buffer.size());
    StatusOr<StringColumn> loaded = StringColumn::Deserialize(&reader);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    column = std::move(loaded).value();

    // Full consistency check.
    ASSERT_EQ(column.num_rows(), expected_rows.size());
    for (size_t row = 0; row < expected_rows.size(); row += 97) {
      ASSERT_EQ(column.GetValue(row), expected_rows[row])
          << "generation " << generation << " row " << row;
    }
  }
}

TEST(Integration, PredicateResultsStableAcrossFormatsAndSerialization) {
  Rng rng(3);
  const std::vector<std::string> pool = GenerateSurveyDataset("url", 300, 4);
  std::vector<std::string> values;
  for (int i = 0; i < 4000; ++i) values.push_back(pool[rng.Uniform(pool.size())]);
  StringColumn column = StringColumn::FromValues(values, DictFormat::kArray);

  const std::string probe = pool[123];
  const std::vector<uint32_t> baseline = SelectRows(column, EqIds(column, probe));
  const std::vector<bool> contains_baseline = ContainsIds(column, "example");
  ASSERT_FALSE(baseline.empty());

  for (DictFormat format :
       {DictFormat::kFcBlockRp12, DictFormat::kColumnBc, DictFormat::kFcInline,
        DictFormat::kArrayHu}) {
    column.ChangeFormat(format);
    ASSERT_EQ(SelectRows(column, EqIds(column, probe)), baseline)
        << DictFormatName(format);
    ASSERT_EQ(ContainsIds(column, "example"), contains_baseline)
        << DictFormatName(format);

    // And once more after a persistence roundtrip.
    std::vector<uint8_t> buffer;
    ByteWriter writer(&buffer);
    column.Serialize(&writer);
    ByteReader reader(buffer.data(), buffer.size());
    StatusOr<StringColumn> loaded_or = StringColumn::Deserialize(&reader);
    ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
    const StringColumn loaded = std::move(loaded_or).value();
    ASSERT_EQ(SelectRows(loaded, EqIds(loaded, probe)), baseline)
        << DictFormatName(format);
  }
}

TEST(Integration, ManagerKeepsHotColumnFastUnderMildPressure) {
  // A column serving millions of extracts per merge interval must not end
  // up in a grammar-compressed format even when memory is somewhat tight.
  const std::vector<std::string> sorted = GenerateSurveyDataset("mat", 5000, 5);
  CompressionManager manager;
  for (int i = 0; i < 5; ++i) manager.controller().Observe(15.0, 100.0);

  ColumnUsage hot;
  hot.num_extracts = 50000000;
  hot.lifetime_seconds = 60;
  const DictFormat hot_pick = manager.ChooseFormat(sorted, hot);
  const CostModel costs = CostModel::Default();
  EXPECT_LT(costs.costs(hot_pick).extract_us, 0.5)
      << DictFormatName(hot_pick);

  // The same column, cold, compresses.
  ColumnUsage cold;
  cold.num_extracts = 10;
  cold.lifetime_seconds = 3600;
  const DictFormat cold_pick = manager.ChooseFormat(sorted, cold);
  auto hot_dict = BuildDictionary(hot_pick, sorted);
  auto cold_dict = BuildDictionary(cold_pick, sorted);
  EXPECT_LE(cold_dict->MemoryBytes(), hot_dict->MemoryBytes());
}

}  // namespace
}  // namespace adict
