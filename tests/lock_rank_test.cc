// Tests for the lock-rank deadlock detector (util/lock_rank.h).
//
// The detector's *algorithm* is compiled in every build type — these tests
// drive lockdebug::OnAcquire/OnRelease directly, so they run (and the
// seeded-inversion test proves real cycles are reported with both stacks)
// even in RelWithDebInfo. Only the wiring into Mutex::Lock/Unlock is gated
// on ADICT_DEADLOCK_CHECK; the build-type-conditional tests at the bottom
// pin down both sides of that gate: Debug feeds the detector, Release is a
// true no-op.

#include "util/lock_rank.h"

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_annotations.h"

namespace adict {
namespace {

// Captures violation reports instead of aborting; restores the abort on
// teardown so a bug in one test cannot silently swallow violations in the
// binaries run after it.
class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lockdebug::ResetForTest();
    lockdebug::SetViolationHandlerForTest(
        [this](const std::string& report) { reports_.push_back(report); });
  }

  void TearDown() override {
    lockdebug::SetViolationHandlerForTest(nullptr);
    lockdebug::ResetForTest();
  }

  std::vector<std::string> reports_;
};

TEST_F(LockRankTest, StrictlyDecreasingAcquisitionPasses) {
  lockdebug::OnAcquire(LockRank::kServerDrain, "test.server");
  lockdebug::OnAcquire(LockRank::kSchedulerState, "test.core");
  lockdebug::OnAcquire(LockRank::kPoolWorker, "test.util");
  EXPECT_TRUE(reports_.empty()) << reports_.front();

  const std::vector<lockdebug::HeldLock> held = lockdebug::HeldByThisThread();
  ASSERT_EQ(held.size(), 3u);
  EXPECT_EQ(held[0].rank, LockRank::kServerDrain);  // outermost first
  EXPECT_EQ(held[2].rank, LockRank::kPoolWorker);

  lockdebug::OnRelease(LockRank::kPoolWorker, "test.util");
  lockdebug::OnRelease(LockRank::kSchedulerState, "test.core");
  lockdebug::OnRelease(LockRank::kServerDrain, "test.server");
  EXPECT_TRUE(lockdebug::HeldByThisThread().empty());
}

TEST_F(LockRankTest, ReacquireAfterReleaseIsLegal) {
  // Dropping back to no locks resets the ceiling: high-rank acquisitions
  // are fine again.
  lockdebug::OnAcquire(LockRank::kPoolWorker, "test.util");
  lockdebug::OnRelease(LockRank::kPoolWorker, "test.util");
  lockdebug::OnAcquire(LockRank::kServerDrain, "test.server");
  lockdebug::OnRelease(LockRank::kServerDrain, "test.server");
  EXPECT_TRUE(reports_.empty()) << reports_.front();
}

TEST_F(LockRankTest, AscendingAcquisitionIsAViolation) {
  lockdebug::OnAcquire(LockRank::kSchedulerState, "test.core");
  lockdebug::OnAcquire(LockRank::kResultCache, "test.server");
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("acquisition order violation"),
            std::string::npos)
      << reports_[0];
  EXPECT_NE(reports_[0].find("strictly decrease"), std::string::npos)
      << reports_[0];
  // The report names both locks and shows the held stack.
  EXPECT_NE(reports_[0].find("test.server"), std::string::npos);
  EXPECT_NE(reports_[0].find("test.core"), std::string::npos);
  EXPECT_NE(reports_[0].find("held by this thread"), std::string::npos);
  lockdebug::OnRelease(LockRank::kResultCache, "test.server");
  lockdebug::OnRelease(LockRank::kSchedulerState, "test.core");
}

TEST_F(LockRankTest, EqualRankIsAViolation) {
  // Two locks of the same rank can never be held together — "strictly
  // below" leaves no room for ties.
  lockdebug::OnAcquire(LockRank::kColumnVersion, "test.column.a");
  lockdebug::OnAcquire(LockRank::kColumnVersion, "test.column.b");
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("strictly decrease"), std::string::npos);
  lockdebug::OnRelease(LockRank::kColumnVersion, "test.column.b");
  lockdebug::OnRelease(LockRank::kColumnVersion, "test.column.a");
}

// The acceptance test for the detector: thread 1 establishes A -> B, thread
// 2 attempts B -> A. The report must show the cycle and *both* acquisition
// stacks — the one attempting the inversion and the first-seen stack that
// established the opposite order.
TEST_F(LockRankTest, SeededAbBaInversionReportsBothStacks) {
  std::thread t1([] {
    lockdebug::OnAcquire(LockRank::kSchedulerState, "test.ab.A");
    lockdebug::OnAcquire(LockRank::kSchedulerDrain, "test.ab.B");  // legal
    lockdebug::OnRelease(LockRank::kSchedulerDrain, "test.ab.B");
    lockdebug::OnRelease(LockRank::kSchedulerState, "test.ab.A");
  });
  t1.join();  // A -> B is now in the global lock-order graph

  std::vector<std::string> t2_reports;
  std::thread t2([&t2_reports] {
    // The handler is global; capture on this thread to be explicit about
    // where the violation fires.
    lockdebug::SetViolationHandlerForTest(
        [&t2_reports](const std::string& r) { t2_reports.push_back(r); });
    lockdebug::OnAcquire(LockRank::kSchedulerDrain, "test.ab.B");
    lockdebug::OnAcquire(LockRank::kSchedulerState, "test.ab.A");  // B -> A
    lockdebug::OnRelease(LockRank::kSchedulerState, "test.ab.A");
    lockdebug::OnRelease(LockRank::kSchedulerDrain, "test.ab.B");
  });
  t2.join();

  ASSERT_EQ(t2_reports.size(), 1u);
  const std::string& report = t2_reports[0];
  // The cycle, by rank name.
  EXPECT_NE(report.find("lock-order cycle"), std::string::npos) << report;
  EXPECT_NE(report.find("kSchedulerState"), std::string::npos) << report;
  EXPECT_NE(report.find("kSchedulerDrain"), std::string::npos) << report;
  // Stack 1: what this thread holds right now (B, acquiring A).
  EXPECT_NE(report.find("held by this thread"), std::string::npos) << report;
  EXPECT_NE(report.find("test.ab.B"), std::string::npos) << report;
  // Stack 2: the first-seen evidence for the opposite order (A, then B).
  EXPECT_NE(report.find("the opposite order was first established"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("test.ab.A"), std::string::npos) << report;
}

TEST_F(LockRankTest, HeldStacksArePerThread) {
  lockdebug::OnAcquire(LockRank::kServerDrain, "test.main");
  std::thread other([] {
    // A fresh thread holds nothing, so a high-rank acquisition is legal
    // regardless of what the main thread holds.
    EXPECT_TRUE(lockdebug::HeldByThisThread().empty());
    lockdebug::OnAcquire(LockRank::kResultCache, "test.other");
    EXPECT_EQ(lockdebug::HeldByThisThread().size(), 1u);
    lockdebug::OnRelease(LockRank::kResultCache, "test.other");
  });
  other.join();
  EXPECT_TRUE(reports_.empty()) << reports_.front();
  lockdebug::OnRelease(LockRank::kServerDrain, "test.main");
}

// Without a handler installed the detector aborts with the report on
// stderr — the production (CI deadlock-check job) behavior.
TEST(LockRankDeathTest, AscendingAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        lockdebug::OnAcquire(LockRank::kPoolWorker, "test.death.low");
        lockdebug::OnAcquire(LockRank::kController, "test.death.high");
      },
      "strictly decrease");
}

TEST(LockRankNamesTest, EveryRankHasANameAndAStratum) {
  // Spot checks on the name tables (the lint enforces full coverage).
  EXPECT_EQ(LockRankName(LockRank::kPoolForState), "kPoolForState");
  EXPECT_EQ(LockRankName(LockRank::kServerDrain), "kServerDrain");
  EXPECT_EQ(LockStratumName(LockStratum::kUtil), "util");
  EXPECT_EQ(LockStratumName(LockStratum::kServer), "server");
  static_assert(LockRankStratum(LockRank::kPoolWake) == LockStratum::kUtil);
  static_assert(LockRankStratum(LockRank::kColumnVersion) ==
                LockStratum::kStore);
  static_assert(LockRankStratum(LockRank::kSchedulerState) ==
                LockStratum::kCore);
  static_assert(LockRankStratum(LockRank::kMetricsRegistry) ==
                LockStratum::kObs);
  static_assert(LockRankStratum(LockRank::kResultCache) ==
                LockStratum::kServer);
}

// --- MutexCv: predicate-only waits (spurious-wakeup hardening) ----------

TEST(MutexCvTest, AwaitForTimesOutWhilePredicateFalse) {
  MutexCv mu(LockRank::kController, "test.cv.timeout");
  bool ready = false;
  // Notifies with the predicate still false must not satisfy the wait —
  // AwaitFor re-checks the predicate and keeps waiting (the regression a
  // bare cv.wait_for(lock, timeout) would reintroduce).
  std::thread nudger([&mu] {
    for (int i = 0; i < 5; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      mu.NotifyAll();
    }
  });
  bool satisfied;
  {
    MutexLock lock(&mu);
    satisfied = mu.AwaitFor(std::chrono::milliseconds(50),
                            [&ready]() ADICT_CV_PREDICATE { return ready; });
  }
  nudger.join();
  EXPECT_FALSE(satisfied);
}

TEST(MutexCvTest, AwaitReturnsOncePredicateHolds) {
  MutexCv mu(LockRank::kController, "test.cv.ready");
  bool ready = false;
  std::thread setter([&mu, &ready] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    {
      MutexLock lock(&mu);
      ready = true;
    }
    mu.NotifyAll();
  });
  {
    MutexLock lock(&mu);
    mu.Await([&ready]() ADICT_CV_PREDICATE { return ready; });
    EXPECT_TRUE(ready);
  }
  setter.join();
}

#if ADICT_DEADLOCK_CHECK

// With the detector on, a MutexLock is visible on the held stack, and a
// thread parked in Await still counts as holding the lock.
TEST(LockRankWiringTest, NestedMutexLocksTrackTheHeldStack) {
  lockdebug::ResetForTest();
  Mutex outer(LockRank::kSchedulerState, "test.wiring.outer");
  Mutex inner(LockRank::kSchedulerDrain, "test.wiring.inner");
  {
    MutexLock outer_lock(&outer);
    ASSERT_EQ(lockdebug::HeldByThisThread().size(), 1u);
    {
      MutexLock inner_lock(&inner);
      const auto held = lockdebug::HeldByThisThread();
      ASSERT_EQ(held.size(), 2u);
      EXPECT_EQ(held[0].rank, LockRank::kSchedulerState);
      EXPECT_EQ(held[1].rank, LockRank::kSchedulerDrain);
    }
    EXPECT_EQ(lockdebug::HeldByThisThread().size(), 1u);
  }
  EXPECT_TRUE(lockdebug::HeldByThisThread().empty());
}

#else  // !ADICT_DEADLOCK_CHECK

// Release builds: the hooks are compiled out of Mutex entirely. Locking a
// real Mutex leaves no trace in the detector — the zero-overhead claim.
TEST(LockRankWiringTest, ReleaseMutexIsDetectorInvisible) {
  EXPECT_FALSE(lockdebug::Enabled());
  Mutex mu(LockRank::kController, "test.wiring.release");
  mu.Lock();
  EXPECT_TRUE(lockdebug::HeldByThisThread().empty());
  mu.Unlock();
  EXPECT_TRUE(lockdebug::HeldByThisThread().empty());
}

#endif  // ADICT_DEADLOCK_CHECK

}  // namespace
}  // namespace adict
