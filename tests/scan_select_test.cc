// Tests for the selection-vector scan helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/scan.h"
#include "util/rng.h"

namespace adict {
namespace {

StringColumn SegmentColumn() {
  // Rows over a 5-value domain, fixed pattern.
  static const char* kValues[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                  "HOUSEHOLD", "MACHINERY"};
  std::vector<std::string> values;
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) values.emplace_back(kValues[rng.Uniform(5)]);
  return StringColumn::FromValues(values);
}

std::vector<uint32_t> NaiveSelect(const StringColumn& column,
                                  const std::string& value) {
  std::vector<uint32_t> rows;
  for (uint64_t row = 0; row < column.num_rows(); ++row) {
    if (column.GetValue(row) == value) rows.push_back(row);
  }
  return rows;
}

TEST(SelectRows, EqualityMatchesNaive) {
  const StringColumn column = SegmentColumn();
  const IdRange building = EqIds(column, "BUILDING");
  EXPECT_EQ(SelectRows(column, building), NaiveSelect(column, "BUILDING"));
}

TEST(SelectRows, EmptyRangeSelectsNothing) {
  const StringColumn column = SegmentColumn();
  EXPECT_TRUE(SelectRows(column, EqIds(column, "CLOTHING")).empty());
  EXPECT_TRUE(SelectRows(column, IdRange{}).empty());
}

TEST(SelectRows, RangePredicateSelectsUnion) {
  const StringColumn column = SegmentColumn();
  const IdRange ge = GreaterIds(column, "FURNITURE");  // FURNITURE..MACHINERY
  const std::vector<uint32_t> rows = SelectRows(column, ge);
  std::vector<uint32_t> expected;
  for (const char* v : {"FURNITURE", "HOUSEHOLD", "MACHINERY"}) {
    const std::vector<uint32_t> part = NaiveSelect(column, v);
    expected.insert(expected.end(), part.begin(), part.end());
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(rows, expected);
}

TEST(SelectRows, FlagVariantMatchesRangeVariant) {
  const StringColumn column = SegmentColumn();
  std::vector<bool> flags(column.num_distinct(), false);
  const IdRange le = LessIds(column, "BUILDING");
  for (uint32_t id = le.begin; id < le.end; ++id) flags[id] = true;
  EXPECT_EQ(SelectRows(column, flags), SelectRows(column, le));
}

TEST(RefineRows, IntersectsSelections) {
  const StringColumn column = SegmentColumn();
  const std::vector<uint32_t> all =
      SelectRows(column, IdRange{0, column.num_distinct()});
  EXPECT_EQ(all.size(), column.num_rows());
  const IdRange building = EqIds(column, "BUILDING");
  EXPECT_EQ(RefineRows(column, all, building), SelectRows(column, building));
  EXPECT_TRUE(RefineRows(column, all, IdRange{}).empty());
}

TEST(CountRows, MatchesSelectSize) {
  const StringColumn column = SegmentColumn();
  for (const char* value : {"AUTOMOBILE", "HOUSEHOLD", "ZZZ"}) {
    const IdRange range = EqIds(column, value);
    EXPECT_EQ(CountRows(column, range), SelectRows(column, range).size());
  }
}

TEST(CountRows, WholeDomainCountsAllRows) {
  const StringColumn column = SegmentColumn();
  EXPECT_EQ(CountRows(column, IdRange{0, column.num_distinct()}),
            column.num_rows());
}

}  // namespace
}  // namespace adict
