#include "core/size_model.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "dict/array_dict.h"
#include "dict/column_bc.h"
#include "dict/front_coding.h"
#include "text/ngram.h"
#include "util/check.h"

namespace adict {
namespace {

/// data = raw * ceil(log2 #chars) / 8.
double BitCompressData(double raw_chars, int distinct_chars) {
  const int width =
      distinct_chars <= 1
          ? 1
          : std::bit_width(static_cast<unsigned>(distinct_chars - 1));
  return raw_chars * width / 8.0;
}

/// data = 12/8 * (coverage/n + (1 - coverage)) * raw.
double NgramData(double raw_chars, double coverage, int n) {
  return 12.0 / 8.0 * (coverage / n + (1.0 - coverage)) * raw_chars;
}

/// Decode tables of the per-byte prefix codes: code and length arrays plus
/// ~2 * #chars tree nodes of 6 bytes (see PrefixCodeCodec::TableBytes).
double PrefixCodeTable(int distinct_chars) {
  return 1024.0 + 256.0 + 6.0 * (2.0 * distinct_chars);
}

/// Grammar table: rules grow sublinearly with the text (vocabulary growth),
/// capped by the symbol space. `sampled_fraction` extrapolates the rule
/// count observed on the sample.
double RePairTable(uint64_t sampled_rules, double sampled_fraction,
                   int symbol_bits) {
  const double cap = static_cast<double>((1u << symbol_bits) - 256);
  const double scale =
      sampled_fraction > 0 ? std::sqrt(1.0 / sampled_fraction) : 1.0;
  const double rules = std::min(cap, static_cast<double>(sampled_rules) * scale);
  return 4.0 * rules;  // two uint16 per rule
}

}  // namespace

double PredictDictionarySize(DictFormat format,
                             const DictionaryProperties& props) {
  const double n = static_cast<double>(props.num_strings);
  const double pointer = static_cast<double>(props.pointer_bytes);
  const double fc_blocks = std::ceil(n / FcBlockDict::kBlockSize);
  const double cb_blocks = std::ceil(n / ColumnBcDict::kBlockSize);
  // Per-string header of the fc block formats (prefix length + suffix size).
  const double fc_headers = n * FcBlockDict::kHeaderBytesPerString;

  switch (format) {
    // ----- array class: size = data + #strings * pointer ------------------
    case DictFormat::kArray:
      return props.raw_chars + pointer * (n + 1) + sizeof(RawArrayDict);
    case DictFormat::kArrayBc:
      return BitCompressData(props.raw_chars, props.distinct_chars) +
             pointer * (n + 1) + 768.0 + sizeof(CodedArrayDict);
    case DictFormat::kArrayHu:
      return props.raw_chars * props.entropy0 / 8.0 + pointer * (n + 1) +
             PrefixCodeTable(props.distinct_chars) + sizeof(CodedArrayDict);
    case DictFormat::kArrayNg2:
      return NgramData(props.raw_chars, props.ng2_coverage, 2) +
             pointer * (n + 1) + props.ng2_table_grams * 2.0 +
             sizeof(CodedArrayDict);
    case DictFormat::kArrayNg3:
      return NgramData(props.raw_chars, props.ng3_coverage, 3) +
             pointer * (n + 1) + props.ng3_table_grams * 3.0 +
             sizeof(CodedArrayDict);
    case DictFormat::kArrayRp12:
      return props.raw_chars * props.rp12_rate + pointer * (n + 1) +
             RePairTable(props.rp12_rules, props.sampled_fraction, 12) +
             sizeof(CodedArrayDict);
    case DictFormat::kArrayRp16:
      return props.raw_chars * props.rp16_rate + pointer * (n + 1) +
             RePairTable(props.rp16_rules, props.sampled_fraction, 16) +
             sizeof(CodedArrayDict);

    // ----- special: array fixed = #strings * max_string -------------------
    case DictFormat::kArrayFixed:
      return n * static_cast<double>(props.max_string_len) +
             sizeof(FixedArrayDict);

    // ----- fc class: size = data + #blocks * (pointer + block header) -----
    case DictFormat::kFcBlock:
      return props.fc_raw_chars + fc_headers + pointer * fc_blocks +
             sizeof(FcBlockDict);
    case DictFormat::kFcBlockBc:
      return BitCompressData(props.fc_raw_chars, props.fc_distinct_chars) +
             fc_headers + pointer * fc_blocks + 768.0 + sizeof(FcBlockDict);
    case DictFormat::kFcBlockHu:
      return props.fc_raw_chars * props.fc_entropy0 / 8.0 + fc_headers +
             pointer * fc_blocks + PrefixCodeTable(props.fc_distinct_chars) +
             sizeof(FcBlockDict);
    case DictFormat::kFcBlockNg2:
      return NgramData(props.fc_raw_chars, props.fc_ng2_coverage, 2) +
             fc_headers + pointer * fc_blocks + props.fc_ng2_table_grams * 2.0 +
             sizeof(FcBlockDict);
    case DictFormat::kFcBlockNg3:
      return NgramData(props.fc_raw_chars, props.fc_ng3_coverage, 3) +
             fc_headers + pointer * fc_blocks + props.fc_ng3_table_grams * 3.0 +
             sizeof(FcBlockDict);
    case DictFormat::kFcBlockRp12:
      return props.fc_raw_chars * props.fc_rp12_rate + fc_headers +
             pointer * fc_blocks +
             RePairTable(props.fc_rp12_rules, props.sampled_fraction, 12) +
             sizeof(FcBlockDict);
    case DictFormat::kFcBlockRp16:
      return props.fc_raw_chars * props.fc_rp16_rate + fc_headers +
             pointer * fc_blocks +
             RePairTable(props.fc_rp16_rules, props.sampled_fraction, 16) +
             sizeof(FcBlockDict);
    case DictFormat::kFcBlockDf:
      return props.fc_df_raw_chars + fc_headers + pointer * fc_blocks +
             sizeof(FcBlockDict);
    case DictFormat::kFcInline:
      return props.fc_raw_chars + props.fc_inline_header_chars +
             pointer * fc_blocks + sizeof(FcInlineDict);

    // ----- special: column bc = #blocks * avg block size -------------------
    case DictFormat::kColumnBc:
      return cb_blocks * props.colbc_avg_block_size + pointer * cb_blocks +
             sizeof(ColumnBcDict);
  }
  ADICT_CHECK_MSG(false, "unknown dictionary format");
  return 0;
}

double PredictionError(double real_size, double predicted_size) {
  if (real_size <= 0) return 0;
  return std::abs(real_size - predicted_size) / real_size;
}

}  // namespace adict
