#include "core/properties.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dict/column_bc.h"
#include "dict/front_coding.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "text/codec.h"
#include "text/ngram.h"
#include "text/repair.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/varint.h"

namespace adict {
namespace {

/// Picks `want` distinct indices out of [0, n) uniformly at random.
/// Returns them sorted (cheap cache-friendly iteration; uniformity of the
/// *set* is what matters).
std::vector<uint32_t> SampleIndices(uint64_t n, uint64_t want, Rng* rng) {
  ADICT_DCHECK(want <= n);
  std::vector<uint32_t> all(n);
  for (uint64_t i = 0; i < n; ++i) all[i] = static_cast<uint32_t>(i);
  for (uint64_t i = 0; i < want; ++i) {
    std::swap(all[i], all[i + rng->Uniform(n - i)]);
  }
  all.resize(want);
  std::sort(all.begin(), all.end());
  return all;
}

/// Character-level statistics of a set of string views.
struct CharStats {
  uint64_t total_chars = 0;
  std::array<uint64_t, 256> freqs{};

  void Add(std::string_view s) {
    total_chars += s.size();
    for (unsigned char c : s) ++freqs[c];
  }

  int DistinctChars() const {
    int distinct = 0;
    for (uint64_t f : freqs) distinct += f > 0;
    return distinct;
  }

  double Entropy0() const {
    if (total_chars == 0) return 0;
    double h = 0;
    for (uint64_t f : freqs) {
      if (f == 0) continue;
      const double p = static_cast<double>(f) / total_chars;
      h -= p * std::log2(p);
    }
    return h;
  }
};

/// Fraction of n-gram windows covered by the 3840 most frequent n-grams
/// (paper: coverage = #covered n-grams / (|raw data| - n + 1)), plus the
/// number of n-grams that receive proper codes.
struct CoverageResult {
  double coverage = 0;
  int table_grams = 0;
};

CoverageResult NgramCoverage(const std::vector<std::string_view>& views, int n) {
  std::unordered_map<uint32_t, uint64_t> counts;
  uint64_t windows = 0;
  for (std::string_view s : views) {
    if (s.size() < static_cast<size_t>(n)) continue;
    for (size_t i = 0; i + n <= s.size(); ++i) {
      uint32_t key = 0;
      for (int b = 0; b < n; ++b) {
        key = (key << 8) | static_cast<unsigned char>(s[i + b]);
      }
      ++counts[key];
      ++windows;
    }
  }
  if (windows == 0) return {};
  std::vector<uint64_t> occurrence_counts;
  occurrence_counts.reserve(counts.size());
  for (const auto& [key, count] : counts) occurrence_counts.push_back(count);
  const size_t kept =
      std::min<size_t>(occurrence_counts.size(), NgramCodec::kNumNgramCodes);
  std::partial_sort(occurrence_counts.begin(), occurrence_counts.begin() + kept,
                    occurrence_counts.end(), std::greater<uint64_t>());
  uint64_t covered = 0;
  for (size_t i = 0; i < kept; ++i) covered += occurrence_counts[i];
  return {static_cast<double>(covered) / windows, static_cast<int>(kept)};
}

/// Re-Pair payload compressed/raw ratio on the sample, plus the number of
/// grammar rules learned (the size model extrapolates the grammar table from
/// it separately).
struct RePairResult {
  double rate = 1.0;
  uint64_t rules = 0;
};

RePairResult RePairRate(const std::vector<std::string_view>& views,
                        int symbol_bits) {
  uint64_t raw = 0;
  for (std::string_view s : views) raw += s.size();
  if (raw == 0) return {};
  auto codec = RePairCodec::Train(symbol_bits, views);
  BitWriter sink;
  uint64_t bits = 0;
  for (std::string_view s : views) {
    bits += codec->Encode(s, &sink);
    sink.Clear();
  }
  return {static_cast<double>(bits) / 8 / static_cast<double>(raw),
          codec->num_rules()};
}

}  // namespace

DictionaryProperties SampleProperties(std::span<const std::string> sorted_unique,
                                      const SamplingConfig& config,
                                      uint64_t seed) {
  ADICT_TRACE_SPAN("props.sample_properties");
  obs::ScopedTimer timer(
      obs::Enabled()
          ? obs::Metrics().GetHistogram(
                "core.sample_properties_us", {}, "us",
                "property sampling incl. the Re-Pair trial on the sample")
          : nullptr);
  DictionaryProperties props;
  const uint64_t n = sorted_unique.size();
  props.num_strings = n;
  if (n == 0) return props;

  Rng rng(seed);
  const uint64_t want = std::min<uint64_t>(
      n, std::max<uint64_t>(static_cast<uint64_t>(std::ceil(config.ratio * n)),
                            config.min_entries));
  props.sampled_fraction = static_cast<double>(want) / n;

  // ------------------------------------------------------------------
  // String-granular sample (array-class properties).
  // ------------------------------------------------------------------
  std::vector<std::string_view> sample;
  CharStats chars;
  {
    ADICT_TRACE_SPAN("props.sample_strings");
    const std::vector<uint32_t> indices = SampleIndices(n, want, &rng);
    sample.reserve(indices.size());
    for (uint32_t i : indices) {
      const std::string_view s = sorted_unique[i];
      sample.push_back(s);
      chars.Add(s);
      props.max_string_len = std::max<uint64_t>(props.max_string_len, s.size());
    }
  }
  const double scale = static_cast<double>(n) / want;
  props.raw_chars = static_cast<double>(chars.total_chars) * scale;
  props.distinct_chars = chars.DistinctChars();
  props.entropy0 = chars.Entropy0();
  {
    ADICT_TRACE_SPAN("props.measure_strings");
    const CoverageResult ng2 = NgramCoverage(sample, 2);
    const CoverageResult ng3 = NgramCoverage(sample, 3);
    props.ng2_coverage = ng2.coverage;
    props.ng3_coverage = ng3.coverage;
    props.ng2_table_grams = ng2.table_grams;
    props.ng3_table_grams = ng3.table_grams;
    const RePairResult rp12 = RePairRate(sample, 12);
    const RePairResult rp16 = RePairRate(sample, 16);
    props.rp12_rate = rp12.rate;
    props.rp16_rate = rp16.rate;
    props.rp12_rules = rp12.rules;
    props.rp16_rules = rp16.rules;
  }

  // ------------------------------------------------------------------
  // Block-granular sample (front-coding properties). Blocks keep their
  // dictionary-order boundaries; we sample whole blocks.
  // ------------------------------------------------------------------
  std::optional<obs::ScopedSpan> fc_span("props.measure_fc_blocks");
  constexpr uint32_t kFcBlock = FcBlockDict::kBlockSize;
  const uint64_t num_fc_blocks = (n + kFcBlock - 1) / kFcBlock;
  const uint64_t want_fc_blocks =
      std::min<uint64_t>(num_fc_blocks, (want + kFcBlock - 1) / kFcBlock);
  const std::vector<uint32_t> fc_blocks =
      SampleIndices(num_fc_blocks, want_fc_blocks, &rng);

  CharStats fc_chars;
  std::vector<std::string_view> fc_suffixes;
  uint64_t fc_df_chars = 0;
  uint64_t fc_inline_header = 0;
  uint64_t fc_sampled_strings = 0;
  for (uint32_t b : fc_blocks) {
    const uint64_t first = static_cast<uint64_t>(b) * kFcBlock;
    const uint64_t count = std::min<uint64_t>(kFcBlock, n - first);
    fc_sampled_strings += count;
    for (uint64_t i = 0; i < count; ++i) {
      const std::string_view s = sorted_unique[first + i];
      uint32_t prefix = 0;
      uint32_t df_prefix = 0;
      if (i > 0) {
        prefix = std::min(CommonPrefixLength(sorted_unique[first + i - 1], s),
                          FcBlockDict::kMaxPrefixLength);
        df_prefix = std::min(CommonPrefixLength(sorted_unique[first], s),
                             FcBlockDict::kMaxPrefixLength);
      }
      const std::string_view suffix = s.substr(prefix);
      fc_suffixes.push_back(suffix);
      fc_chars.Add(suffix);
      fc_df_chars += s.size() - df_prefix;
      fc_inline_header += VarintLength(prefix) + VarintLength(suffix.size());
    }
  }
  const double fc_scale =
      fc_sampled_strings == 0 ? 0 : static_cast<double>(n) / fc_sampled_strings;
  props.fc_raw_chars = static_cast<double>(fc_chars.total_chars) * fc_scale;
  props.fc_df_raw_chars = static_cast<double>(fc_df_chars) * fc_scale;
  props.fc_distinct_chars = fc_chars.DistinctChars();
  props.fc_entropy0 = fc_chars.Entropy0();
  const CoverageResult fc_ng2 = NgramCoverage(fc_suffixes, 2);
  const CoverageResult fc_ng3 = NgramCoverage(fc_suffixes, 3);
  props.fc_ng2_coverage = fc_ng2.coverage;
  props.fc_ng3_coverage = fc_ng3.coverage;
  props.fc_ng2_table_grams = fc_ng2.table_grams;
  props.fc_ng3_table_grams = fc_ng3.table_grams;
  const RePairResult fc_rp12 = RePairRate(fc_suffixes, 12);
  const RePairResult fc_rp16 = RePairRate(fc_suffixes, 16);
  props.fc_rp12_rate = fc_rp12.rate;
  props.fc_rp16_rate = fc_rp16.rate;
  props.fc_rp12_rules = fc_rp12.rules;
  props.fc_rp16_rules = fc_rp16.rules;
  props.fc_inline_header_chars = static_cast<double>(fc_inline_header) * fc_scale;
  fc_span.reset();

  // ------------------------------------------------------------------
  // Column-bc blocks: encode sampled blocks, average their size.
  // ------------------------------------------------------------------
  ADICT_TRACE_SPAN("props.measure_colbc_blocks");
  constexpr uint32_t kCbBlock = ColumnBcDict::kBlockSize;
  const uint64_t num_cb_blocks = (n + kCbBlock - 1) / kCbBlock;
  const uint64_t want_cb_blocks =
      std::min<uint64_t>(num_cb_blocks, (want + kCbBlock - 1) / kCbBlock);
  const std::vector<uint32_t> cb_blocks =
      SampleIndices(num_cb_blocks, want_cb_blocks, &rng);
  std::vector<uint8_t> arena;
  uint64_t cb_bytes = 0;
  std::vector<std::string_view> rows;
  for (uint32_t b : cb_blocks) {
    const uint64_t first = static_cast<uint64_t>(b) * kCbBlock;
    const uint64_t count = std::min<uint64_t>(kCbBlock, n - first);
    rows.clear();
    for (uint64_t i = 0; i < count; ++i) {
      rows.push_back(sorted_unique[first + i]);
    }
    arena.clear();
    cb_bytes += ColumnBcDict::EncodeBlock(rows, &arena);
  }
  props.colbc_avg_block_size = cb_blocks.empty()
                                   ? 0
                                   : static_cast<double>(cb_bytes) /
                                         static_cast<double>(cb_blocks.size());
  return props;
}

}  // namespace adict
