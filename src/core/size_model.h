// Compression models: predicted dictionary sizes per format (paper §4.2).
//
// Every formula reduces the size of a dictionary format to the properties of
// DictionaryProperties, exactly as in the paper:
//   array class   size = data + #strings * pointer
//   fc class      size = data + #blocks * (pointer + block header)
//   none          data = raw
//   bc            data = raw * ceil(log2 #chars) / 8
//   hu            data = raw * entropy0 / 8
//   ng(n)         data = 12/8 * (coverage/n + (1 - coverage)) * raw
//   rp            data = raw * compr_rate
//   array fixed   size = #strings * max_string
//   column bc     size = #blocks * avg_block_size
// plus the small implementation-dependent constants the paper mentions as
// refinements (codec tables, per-object overhead), which are known a priori.
#ifndef ADICT_CORE_SIZE_MODEL_H_
#define ADICT_CORE_SIZE_MODEL_H_

#include "core/properties.h"
#include "dict/dictionary.h"

namespace adict {

/// Predicted total memory consumption (bytes) of `format` for a column with
/// the given properties. Comparable to Dictionary::MemoryBytes().
double PredictDictionarySize(DictFormat format,
                             const DictionaryProperties& props);

/// Convenience: the relative prediction error |real - predicted| / real used
/// throughout the paper's Figure 6.
double PredictionError(double real_size, double predicted_size);

}  // namespace adict

#endif  // ADICT_CORE_SIZE_MODEL_H_
