// Dictionary content properties (paper Table 1) and their sampling.
//
// The compression models of Section 4.2 reduce every dictionary format's
// size to properties of the column content. Some are known a priori
// (#strings, pointers, block geometry); the rest are estimated on a uniform
// random sample of entries or blocks. Front-coding formats depend on the
// *suffix* stream, so most properties exist twice: once over whole strings
// and once over front-coded suffixes.
#ifndef ADICT_CORE_PROPERTIES_H_
#define ADICT_CORE_PROPERTIES_H_

#include <cstdint>
#include <span>
#include <string>

namespace adict {

/// Sampling policy. The paper's recommended configuration is 1% with a floor
/// of 5000 entries ("max(1%, 5000)"), which keeps >75% of predictions within
/// 8% (Figure 6).
struct SamplingConfig {
  double ratio = 0.01;
  uint64_t min_entries = 5000;

  /// Exact measurement (sampling ratio 100%).
  static SamplingConfig Exact() { return {1.0, 0}; }
  /// The paper's default: max(1%, 5000 entries).
  static SamplingConfig Default() { return {0.01, 5000}; }
};

/// Properties of one column's dictionary content (paper Table 1). All
/// `double` fields are estimates extrapolated from the sample.
struct DictionaryProperties {
  // Known a priori.
  uint64_t num_strings = 0;
  uint64_t pointer_bytes = 4;

  // Sampled over whole strings (array-class formats).
  double raw_chars = 0;         // sum of string lengths
  int distinct_chars = 0;       // |alphabet|
  double entropy0 = 0;          // order-0 entropy, bits/char
  double ng2_coverage = 0;      // fraction of 2-grams with proper codes
  double ng3_coverage = 0;
  int ng2_table_grams = 0;      // n-grams that would receive proper codes
  int ng3_table_grams = 0;
  double rp12_rate = 0;         // Re-Pair compressed/raw payload ratio
  double rp16_rate = 0;
  uint64_t rp12_rules = 0;      // grammar rules learned on the sample
  uint64_t rp16_rules = 0;
  uint64_t max_string_len = 0;  // longest sampled string

  // Sampled over front-coded blocks (fc-class formats).
  double fc_raw_chars = 0;      // stored chars: first strings + suffixes
  double fc_df_raw_chars = 0;   // same with difference-to-first suffixes
  int fc_distinct_chars = 0;
  double fc_entropy0 = 0;
  double fc_ng2_coverage = 0;
  double fc_ng3_coverage = 0;
  int fc_ng2_table_grams = 0;
  int fc_ng3_table_grams = 0;
  double fc_rp12_rate = 0;
  double fc_rp16_rate = 0;
  uint64_t fc_rp12_rules = 0;
  uint64_t fc_rp16_rules = 0;
  double fc_inline_header_chars = 0;  // varint length bytes (whole column)

  // Sampled over column-bc blocks.
  double colbc_avg_block_size = 0;  // bytes per encoded block

  // Bookkeeping.
  double sampled_fraction = 1.0;  // entries actually inspected / num_strings
};

/// Estimates the properties of `sorted_unique` by sampling per `config`.
/// With SamplingConfig::Exact() every entry is inspected and the properties
/// are exact.
DictionaryProperties SampleProperties(std::span<const std::string> sorted_unique,
                                      const SamplingConfig& config,
                                      uint64_t seed = 42);

}  // namespace adict

#endif  // ADICT_CORE_PROPERTIES_H_
