// Runtime model (paper §4.1): constant time per extract / locate call and
// per tuple during construction, for every dictionary format.
//
// The paper determines these constants once at installation time with
// microbenchmarks averaged over the survey data sets, and found constant
// per-call costs to be as robust as more sophisticated models. Default()
// carries constants measured the same way; CalibrateCostModel() re-measures
// them on the current machine (see bench/calibrate_cost_model).
#ifndef ADICT_CORE_COST_MODEL_H_
#define ADICT_CORE_COST_MODEL_H_

#include <array>
#include <cstdint>

#include "dict/dictionary.h"

namespace adict {

/// Per-method cost constants of one dictionary format, in microseconds.
struct MethodCosts {
  double extract_us = 0;    // one extract(id) call
  double locate_us = 0;     // one locate(str) call
  double construct_us = 0;  // per string during construction
};

/// Cost constants for all formats.
class CostModel {
 public:
  /// Constants measured with bench/calibrate_cost_model on the reference
  /// machine. Magnitudes matter less than ratios between formats; the
  /// compression manager only compares candidate times.
  static CostModel Default();

  const MethodCosts& costs(DictFormat format) const {
    return costs_[static_cast<int>(format)];
  }
  void set_costs(DictFormat format, const MethodCosts& costs) {
    costs_[static_cast<int>(format)] = costs;
  }

 private:
  std::array<MethodCosts, kNumDictFormats> costs_{};
};

/// Options for CalibrateCostModel.
struct CalibrationOptions {
  uint64_t strings_per_dataset = 20000;  // dictionary size per data set
  uint64_t probes = 20000;               // extract/locate calls per format
  uint64_t seed = 42;
};

/// Measures the per-method constants on this machine by running the
/// microbenchmarks of §4.1 over the survey data sets. Expensive (seconds to
/// minutes); use CostModel::Default() unless measuring a new machine.
CostModel CalibrateCostModel(const CalibrationOptions& options);

}  // namespace adict

#endif  // ADICT_CORE_COST_MODEL_H_
