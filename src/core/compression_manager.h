// The compression manager (paper Section 5): decides, for every string
// column at dictionary-rebuild time, which dictionary format to use.
//
// Decision flow (paper Figure 7):
//   - local, per column: content properties (sampled), access counts, and
//     the column vector size are reduced to (size, rel_time) per candidate
//     format using the compression models and the runtime constants;
//   - global: one trade-off parameter c, kept up to date by the feedback
//     controller from memory pressure, picks the point on the space/time
//     trade-off via the selection strategy.
//
// Every decision is recorded in the process-wide obs::Decisions() log (see
// src/obs/): which column, every candidate's predicted point, the chosen
// format, and c at decision time. When BuildAdaptiveDictionary builds the
// chosen dictionary, the actual size is patched into the same record, so
// size-model accuracy is accounted continuously (docs/observability.md).
#ifndef ADICT_CORE_COMPRESSION_MANAGER_H_
#define ADICT_CORE_COMPRESSION_MANAGER_H_

#include <memory>
#include <string_view>

#include "core/controller.h"
#include "core/cost_model.h"
#include "core/properties.h"
#include "core/tradeoff.h"
#include "dict/dictionary.h"

namespace adict {

/// A format choice plus the handles needed to report the built outcome back
/// to the decision log and to validate the build against the prediction.
struct FormatDecision {
  DictFormat format;
  /// Sequence of the record in obs::Decisions(), or 0 if logging was off.
  uint64_t log_sequence = 0;
  /// Predicted size of the chosen dictionary alone (candidate size minus
  /// the column vector), comparable to Dictionary::MemoryBytes(). < 0 if
  /// the chosen format was not among the candidates.
  double predicted_dict_bytes = -1;
};

/// Appends one record to obs::Decisions() from the raw decision inputs and
/// outputs. Returns the record's sequence, or 0 when observability is
/// disabled. Exposed for callers that run the selection pipeline manually
/// with an explicit c (e.g. the TPC-H what-if harness).
uint64_t LogFormatDecision(std::string_view column_id,
                           const DictionaryProperties& props,
                           const ColumnUsage& usage,
                           std::span<const Candidate> candidates,
                           const SelectionDetails& details, double c,
                           TradeoffStrategy strategy);

class CompressionManager {
 public:
  struct Options {
    SamplingConfig sampling = SamplingConfig::Default();
    TradeoffStrategy strategy = TradeoffStrategy::kTilt;
    TradeoffController::Options controller;
  };

  CompressionManager()
      : CompressionManager(CostModel::Default(), Options{}) {}
  CompressionManager(const CostModel& cost_model, const Options& options)
      : cost_model_(cost_model), options_(options),
        controller_(options.controller) {}

  /// Chooses the dictionary format for a column that is about to be rebuilt
  /// (e.g. at delta merge), based on its content and traced usage. The
  /// decision is logged under `column_id` (may be empty).
  FormatDecision ChooseFormatLogged(std::span<const std::string> sorted_unique,
                                    const ColumnUsage& usage,
                                    std::string_view column_id) const;

  /// Same without a column identity, returning only the format.
  DictFormat ChooseFormat(std::span<const std::string> sorted_unique,
                          const ColumnUsage& usage) const {
    return ChooseFormatLogged(sorted_unique, usage, {}).format;
  }

  /// Chooses and builds in one step; records the built dictionary's actual
  /// size into the decision record.
  std::unique_ptr<Dictionary> BuildAdaptiveDictionary(
      std::span<const std::string> sorted_unique, const ColumnUsage& usage,
      std::string_view column_id = {}) const;

  /// Exposes the candidate evaluation, e.g. for offline what-if analysis.
  std::vector<Candidate> Evaluate(std::span<const std::string> sorted_unique,
                                  const ColumnUsage& usage) const {
    const DictionaryProperties props =
        SampleProperties(sorted_unique, options_.sampling);
    return EvaluateCandidates(props, usage, cost_model_);
  }

  /// The feedback loop driving c; feed it memory observations.
  TradeoffController& controller() { return controller_; }
  const TradeoffController& controller() const { return controller_; }

  double c() const { return controller_.c(); }
  void set_c(double c) { controller_.set_c(c); }

  const CostModel& cost_model() const { return cost_model_; }
  const Options& options() const { return options_; }

 private:
  CostModel cost_model_;
  Options options_;
  TradeoffController controller_;
};

}  // namespace adict

#endif  // ADICT_CORE_COMPRESSION_MANAGER_H_
