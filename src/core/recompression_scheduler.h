// Background recompression under real memory pressure.
//
// The paper's controller closes the loop on *new* dictionaries: memory
// pressure lowers c, and the next delta merge picks a cheaper format. A
// store whose columns merge rarely reacts far too slowly when the machine
// is genuinely running out of memory. The RecompressionScheduler closes the
// loop on *existing* dictionaries (ROADMAP item 2, self-driving style):
// fed with MemorySamples — from a util/memory_pressure.h MemorySampler or
// directly by tests — it
//
//   1. forwards every good sample to TradeoffController::Observe (the
//      paper's feedback loop now runs on real measurements),
//   2. smooths the used-memory fraction into a pressure level
//      (none → advisory → urgent → critical) with hysteresis so a reading
//      hovering at a boundary cannot oscillate,
//   3. under pressure, ranks columns by (dictionary bytes × staleness ÷
//      recent traced usage) and rebuilds the top-ranked ones to cheaper
//      formats on the shared ThreadPool, through the guarded build chain
//      (core/build_guard.h), publishing via the snapshot protocol so scans
//      never block and never see a torn column.
//
// Degradation ladder, in order of increasing pressure:
//   advisory  — rebuild at most one column every `advisory_period_ticks`,
//               only when the manager's decision differs from the current
//               format (cheap housekeeping);
//   urgent    — rebuild up to `max_rebuilds_per_tick` columns per sample;
//   critical  — force the *smallest predicted* candidate instead of the
//               c-driven pick, up to `critical_max_rebuilds_per_tick`; a
//               failed build still degrades chosen → fc block → array
//               rather than aborting (never worse than an uncompressed,
//               readable column).
//
// Graceful behavior under the failure modes chaos tests inject
// (docs/memory_pressure.md):
//   - sampler errors (`mem.sample.fail`) are counted and skipped — the
//     scheduler holds its last level and the EMA is not polluted;
//   - a rebuild failure (`sched.rebuild.fail`, or a real guarded-build
//     exhaustion) leaves the old column version untouched and readable,
//     and is recorded in the decision log;
//   - a rebuild that races a delta merge loses: the publish is epoch-
//     guarded (VersionedStringColumn::PublishIfEpoch) and a lost race is
//     counted, never committed;
//   - rebuilds that stop reclaiming bytes trigger a backoff for
//     `backoff_ticks` samples instead of burning CPU re-compressing
//     already-minimal columns;
//   - a column is never rebuilt twice within `cooldown_ticks` samples;
//   - Stop() is a stop token: no new rebuilds start, in-flight ones are
//     drained, and the destructor stops implicitly.
//
// Thread safety: OnSample is called from the sampler thread, rebuilds run
// on pool threads, stats/level readers on any thread; all mutable state is
// guarded by one annotated mutex (never held across a rebuild — only
// across bookkeeping). Both scheduler locks are ranked in the core stratum
// of docs/lock_hierarchy.md, which is *below* obs: no observability call
// (heat reads, metrics registration, profiler rankings) may happen while
// either is held — PlanTick stages its work around that rule.
#ifndef ADICT_CORE_RECOMPRESSION_SCHEDULER_H_
#define ADICT_CORE_RECOMPRESSION_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/compression_manager.h"
#include "store/table.h"
#include "util/memory_pressure.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace adict {

/// Tiered pressure classification of the smoothed used-memory fraction.
enum class PressureLevel : int {
  kNone = 0,
  kAdvisory = 1,
  kUrgent = 2,
  kCritical = 3,
};

std::string_view PressureLevelName(PressureLevel level);

class RecompressionScheduler {
 public:
  struct Options {
    /// Smoothed used-fraction thresholds of the three tiers. A level is
    /// entered at its threshold and only left again below
    /// `threshold - hysteresis` (no oscillation when a reading hovers at a
    /// boundary).
    double advisory_threshold = 0.70;
    double urgent_threshold = 0.85;
    double critical_threshold = 0.95;
    double hysteresis = 0.03;
    /// EMA weight of the newest used-fraction measurement in (0, 1].
    double smoothing = 0.3;
    /// Samples that must pass between two rebuilds of the same column.
    uint64_t cooldown_ticks = 4;
    /// Advisory pressure rebuilds at most one column every this many
    /// samples (>= 1).
    uint64_t advisory_period_ticks = 4;
    /// Rebuild budget per sample at urgent / critical pressure.
    int max_rebuilds_per_tick = 1;
    int critical_max_rebuilds_per_tick = 2;
    /// A rebuild must reclaim at least this fraction of the old dictionary
    /// to count as progress; `backoff_after_stalls` consecutive
    /// non-reclaiming rebuilds pause rebuilding for `backoff_ticks`
    /// samples.
    double min_reclaim_fraction = 0.01;
    int backoff_after_stalls = 2;
    uint64_t backoff_ticks = 8;
    /// Usage-trace lifetime handed to the compression manager (the traced
    /// counts of the column version being replaced cover roughly the time
    /// since it was published).
    double lifetime_seconds = 60.0;
    /// Run rebuilds inline inside OnSample instead of on the shared pool.
    /// Deterministic; for tests and the memory-pressure bench.
    bool synchronous = false;
    /// Forward good samples to TradeoffController::Observe.
    bool feed_controller = true;
  };

  /// Cumulative counters, readable any time (mirrored as
  /// `sched.recompress.*` metrics; see docs/observability.md).
  struct Stats {
    uint64_t ticks = 0;            // samples consumed (good or errored)
    uint64_t sample_errors = 0;    // errored samples skipped
    uint64_t rebuilds = 0;         // rebuilds committed (published)
    uint64_t noop_decisions = 0;   // decisions that kept the current format
    uint64_t failed_rebuilds = 0;  // injected or exhausted rebuild failures
    uint64_t lost_races = 0;       // publishes skipped (epoch moved on)
    uint64_t skipped_cooldown = 0; // candidate columns inside cooldown
    uint64_t backoffs = 0;         // backoff periods entered
    uint64_t reclaimed_bytes = 0;  // dictionary bytes freed by rebuilds
    PressureLevel level = PressureLevel::kNone;
    double smoothed_used_fraction = 0;  // 0 until the first good sample
  };

  /// The scheduler walks `table`'s string columns and decides formats with
  /// `manager`. Both must outlive the scheduler; the table's column set
  /// must not change while the scheduler runs (columns are indexed at
  /// construction).
  RecompressionScheduler(Table* table, CompressionManager* manager,
                         Options options);
  // Overload instead of a defaulted Options argument: GCC rejects an
  // in-class `= Options()` default before the nested struct's NSDMIs are
  // complete.
  RecompressionScheduler(Table* table, CompressionManager* manager)
      : RecompressionScheduler(table, manager, Options()) {}
  ~RecompressionScheduler();
  RecompressionScheduler(const RecompressionScheduler&) = delete;
  RecompressionScheduler& operator=(const RecompressionScheduler&) = delete;

  /// Consumes one memory measurement: the MemorySampler callback target,
  /// also callable directly (tests, benches, an external control plane).
  void OnSample(const StatusOr<MemorySample>& sample);

  /// Owns and starts a MemorySampler wired to OnSample. `period_millis` 0
  /// means ADICT_MEM_POLL_MS (util/memory_pressure.h). Stop() stops it.
  void AttachSampler(std::unique_ptr<MemoryProvider> provider,
                     uint64_t period_millis = 0);

  /// Stop token: no rebuild starts after this returns, in-flight rebuilds
  /// are drained, an attached sampler is stopped. Idempotent.
  void Stop();
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  /// Pauses / resumes rebuild scheduling. Samples keep flowing to the
  /// controller and the pressure level keeps tracking while paused.
  void Pause() { paused_.store(true, std::memory_order_release); }
  void Resume() { paused_.store(false, std::memory_order_release); }

  /// Registers a hook invoked (outside the scheduler's mutex, on the
  /// sampling thread) whenever a sample *changes* the pressure level. The
  /// serving layer uses it to flush its result cache once pressure reaches
  /// urgent — cached results are the cheapest bytes to give back. The hook
  /// must be fast and must not call back into the scheduler.
  void SetPressureHook(std::function<void(PressureLevel)> hook)
      ADICT_EXCLUDES(mutex_);

  PressureLevel level() const ADICT_EXCLUDES(mutex_);
  Stats stats() const ADICT_EXCLUDES(mutex_);
  const Options& options() const { return options_; }

  /// Blocks until no rebuild is in flight (for deterministic teardown and
  /// tests; Stop() calls it internally).
  void DrainForTest() ADICT_EXCLUDES(mutex_);

 private:
  struct ColumnState {
    std::string name;
    // Tick of the last rebuild attempt that reached a decision (including
    // no-ops), for cooldown and staleness; int64 so "never" can predate
    // tick 0 by a full cooldown.
    int64_t last_rebuild_tick;
    bool in_flight = false;
  };

  /// What OnSample decided to do while holding the mutex; executed after
  /// release.
  struct TickPlan {
    std::vector<size_t> rebuild_columns;
    PressureLevel level = PressureLevel::kNone;
    bool level_changed = false;  // this sample moved the tier
  };

  /// How one rebuild attempt ended, for stats and backoff accounting.
  enum class RebuildOutcome {
    kPublished,  // new version committed
    kNoop,       // decision kept the current format
    kFailed,     // injected failure or guarded build exhausted its chain
    kLostRace,   // another writer published first; nothing committed
    kAborted,    // stop token observed before the decision
  };

  PressureLevel Classify(double smoothed, PressureLevel previous) const;
  TickPlan PlanTick(const MemorySample& sample) ADICT_EXCLUDES(mutex_);
  void RebuildColumn(size_t index, PressureLevel level)
      ADICT_EXCLUDES(mutex_);
  void FinishRebuild(size_t index, RebuildOutcome outcome,
                     uint64_t reclaimed_bytes, bool progress)
      ADICT_EXCLUDES(mutex_);

  Table* table_;
  CompressionManager* manager_;
  const Options options_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};

  mutable Mutex mutex_{LockRank::kSchedulerState,
                       "RecompressionScheduler.mutex_"};
  std::vector<ColumnState> columns_ ADICT_GUARDED_BY(mutex_);
  Stats stats_ ADICT_GUARDED_BY(mutex_);
  int64_t tick_ ADICT_GUARDED_BY(mutex_) = 0;
  double smoothed_used_fraction_ ADICT_GUARDED_BY(mutex_) = -1.0;  // unset
  PressureLevel level_ ADICT_GUARDED_BY(mutex_) = PressureLevel::kNone;
  int consecutive_stalls_ ADICT_GUARDED_BY(mutex_) = 0;
  int64_t backoff_until_tick_ ADICT_GUARDED_BY(mutex_) = -1;
  std::function<void(PressureLevel)> pressure_hook_ ADICT_GUARDED_BY(mutex_);

  // Drain signalling. Ranked below mutex_ (PlanTick registers pending
  // rebuilds while still holding the state lock) and above nothing else.
  mutable MutexCv drain_mutex_{LockRank::kSchedulerDrain,
                               "RecompressionScheduler.drain_mutex_"};
  int pending_rebuilds_ ADICT_GUARDED_BY(drain_mutex_) = 0;

  std::unique_ptr<MemorySampler> sampler_;  // set by AttachSampler
};

}  // namespace adict

#endif  // ADICT_CORE_RECOMPRESSION_SCHEDULER_H_
