#include "core/controller.h"

#include <algorithm>

#include "util/check.h"

namespace adict {

TradeoffController::TradeoffController(const Options& options)
    : options_(options), c_(options.initial_c) {
  ADICT_CHECK(options_.smoothing > 0 && options_.smoothing <= 1);
  ADICT_CHECK(options_.adjust_factor > 1);
  ADICT_CHECK(options_.min_c > 0 && options_.min_c <= options_.max_c);
}

double TradeoffController::Observe(double free_bytes, double total_bytes) {
  ADICT_CHECK(total_bytes > 0);
  const double measured = std::clamp(free_bytes / total_bytes, 0.0, 1.0);
  if (smoothed_free_fraction_ < 0) {
    smoothed_free_fraction_ = measured;  // first sample primes the filter
  } else {
    smoothed_free_fraction_ = options_.smoothing * measured +
                              (1.0 - options_.smoothing) * smoothed_free_fraction_;
  }

  const double error = smoothed_free_fraction_ - options_.target_free_fraction;
  if (error < -options_.dead_band) {
    // Less free memory than desired: compress harder.
    c_ /= options_.adjust_factor;
  } else if (error > options_.dead_band) {
    // Head-room available: favor speed.
    c_ *= options_.adjust_factor;
  }
  c_ = std::clamp(c_, options_.min_c, options_.max_c);
  return c_;
}

}  // namespace adict
