#include "core/controller.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"
#include "util/check.h"

namespace adict {

TradeoffController::TradeoffController(const Options& options)
    : options_(options), c_(options.initial_c) {
  ADICT_CHECK(options_.smoothing > 0 && options_.smoothing <= 1);
  ADICT_CHECK(options_.adjust_factor > 1);
  ADICT_CHECK(options_.min_c > 0 && options_.min_c <= options_.max_c);
}

double TradeoffController::Observe(double free_bytes, double total_bytes) {
  // Reject malformed measurements instead of aborting or folding them into
  // the EMA: a provider read can produce garbage transiently and the
  // feedback loop must ride through it on its last good state.
  if (!std::isfinite(free_bytes) || !std::isfinite(total_bytes) ||
      total_bytes <= 0 || free_bytes < 0 || free_bytes > total_bytes) {
    if (obs::Enabled()) {
      static obs::Counter* rejected = obs::Metrics().GetCounter(
          "controller.observe.rejected", "calls",
          "malformed memory measurements rejected without touching c");
      rejected->Increment();
    }
    MutexLock lock(&mutex_);
    return c_;
  }
  const double measured = std::clamp(free_bytes / total_bytes, 0.0, 1.0);
  double new_c;
  double new_smoothed;
  const char* step = "hold";
  {
    MutexLock lock(&mutex_);
    if (smoothed_free_fraction_ < 0) {
      smoothed_free_fraction_ = measured;  // first sample primes the filter
    } else {
      smoothed_free_fraction_ =
          options_.smoothing * measured +
          (1.0 - options_.smoothing) * smoothed_free_fraction_;
    }

    const double error =
        smoothed_free_fraction_ - options_.target_free_fraction;
    if (error < -options_.dead_band) {
      // Less free memory than desired: compress harder.
      c_ /= options_.adjust_factor;
      step = "down";
    } else if (error > options_.dead_band) {
      // Head-room available: favor speed.
      c_ *= options_.adjust_factor;
      step = "up";
    }
    c_ = std::clamp(c_, options_.min_c, options_.max_c);
    new_c = c_;
    new_smoothed = smoothed_free_fraction_;
  }

  if (obs::Enabled()) {
    static obs::Counter* observations = obs::Metrics().GetCounter(
        "controller.observations", "calls", "memory measurements fed in");
    observations->Increment();
    static obs::Counter* down = obs::Metrics().GetCounter(
        "controller.step.down", "steps", "c lowered (memory pressure)");
    static obs::Counter* up = obs::Metrics().GetCounter(
        "controller.step.up", "steps", "c raised (head-room)");
    static obs::Counter* hold = obs::Metrics().GetCounter(
        "controller.step.hold", "steps", "c unchanged (inside dead band)");
    (step[0] == 'd' ? down : step[0] == 'u' ? up : hold)->Increment();
    static obs::Gauge* c_gauge = obs::Metrics().GetGauge(
        "controller.c", "", "trade-off parameter c after the last Observe");
    c_gauge->Set(new_c);
    static obs::Gauge* free_gauge = obs::Metrics().GetGauge(
        "controller.smoothed_free_fraction", "",
        "EMA-smoothed free-memory fraction");
    free_gauge->Set(new_smoothed);
  }
  return new_c;
}

}  // namespace adict
