// Closed-loop feedback controller for the global trade-off parameter c
// (paper §5.3, Figure 8).
//
// Reference input: desired amount of free memory. Measured output: current
// free memory, smoothed to avoid over-shooting. The controller compares the
// smoothed measurement with the target and adjusts c multiplicatively:
// memory pressure lowers c (new dictionaries compress harder), head-room
// raises it (new dictionaries favor speed).
//
// Thread safety: one controller is shared by every thread that merges or
// rebuilds (CompressionManager is passed around by const reference), while a
// background thread may feed Observe() concurrently. c_ and the smoothed
// measurement are therefore guarded by a mutex — Observe/c/set_c are cold
// (merge- and measurement-rate, not per-operation), so a lock is cheap.
#ifndef ADICT_CORE_CONTROLLER_H_
#define ADICT_CORE_CONTROLLER_H_

#include "util/thread_annotations.h"

namespace adict {

class TradeoffController {
 public:
  struct Options {
    /// Desired free memory as a fraction of total memory.
    double target_free_fraction = 0.25;
    /// EMA weight of the newest free-memory measurement in [0, 1].
    double smoothing = 0.3;
    /// Multiplicative step applied to c per adjustment ( > 1 ).
    double adjust_factor = 1.5;
    /// |smoothed - target| / total below which c is left unchanged.
    double dead_band = 0.02;
    double initial_c = 0.1;
    double min_c = 1e-3;
    double max_c = 10.0;
  };

  TradeoffController() : TradeoffController(Options{}) {}
  explicit TradeoffController(const Options& options);

  /// Feeds one measurement of (free, total) memory in bytes and returns the
  /// updated trade-off parameter c. A malformed measurement — NaN in either
  /// value, a non-positive total, or free exceeding total — is rejected
  /// without touching c or the EMA (counted by `controller.observe.rejected`):
  /// real providers can emit garbage transiently (a cgroup file mid-teardown)
  /// and one bad read must not pollute the feedback loop.
  double Observe(double free_bytes, double total_bytes)
      ADICT_EXCLUDES(mutex_);

  double c() const ADICT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return c_;
  }
  void set_c(double c) ADICT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    c_ = c;
  }

  /// Smoothed free-memory fraction after the last Observe() call.
  double smoothed_free_fraction() const ADICT_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return smoothed_free_fraction_;
  }

 private:
  Options options_;
  mutable Mutex mutex_{LockRank::kController, "TradeoffController.mutex_"};
  double c_ ADICT_GUARDED_BY(mutex_);
  double smoothed_free_fraction_ ADICT_GUARDED_BY(mutex_) =
      -1.0;  // -1: no measurement yet
};

}  // namespace adict

#endif  // ADICT_CORE_CONTROLLER_H_
