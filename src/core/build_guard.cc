#include "core/build_guard.h"

#include <algorithm>
#include <array>

#include "obs/obs.h"
#include "obs/trace.h"
#include "util/failpoint.h"

namespace adict {
namespace {

bool UsesRePairCodec(DictFormat format) {
  const CodecKind codec = DictFormatCodec(format);
  return codec == CodecKind::kRePair12 || codec == CodecKind::kRePair16;
}

Status TryBuildOne(DictFormat format,
                   std::span<const std::string> sorted_unique,
                   std::unique_ptr<Dictionary>* out) {
  if (ADICT_FAIL_POINT("dict.build")) {
    return Status::Internal("injected dict.build failure");
  }
  if (UsesRePairCodec(format) && ADICT_FAIL_POINT("repair.build")) {
    return Status::Internal("injected repair.build failure");
  }
  if (IsFrontCodingClass(format) && ADICT_FAIL_POINT("fc.build")) {
    return Status::Internal("injected fc.build failure");
  }
  ADICT_RETURN_IF_ERROR(CheckBuildPreconditions(format, sorted_unique));
  *out = BuildDictionary(format, sorted_unique);
  if (*out == nullptr) return Status::Internal("builder returned null");
  return Status::Ok();
}

void CountFallback() {
  if (!obs::Enabled()) return;
  static obs::Counter* fallbacks = obs::Metrics().GetCounter(
      "dict.build.fallback", "events",
      "dictionary builds degraded to the next format in the chain");
  fallbacks->Increment();
}

void CountExhausted() {
  if (!obs::Enabled()) return;
  static obs::Counter* exhausted = obs::Metrics().GetCounter(
      "dict.build.exhausted", "events",
      "dictionary builds that failed even the array fallback");
  exhausted->Increment();
}

}  // namespace

Status ValidateDictionary(const Dictionary& dict,
                          std::span<const std::string> sorted_unique,
                          const GuardOptions& options,
                          bool check_size_prediction) {
  ADICT_TRACE_SPAN("guard.validate");
  if (ADICT_FAIL_POINT("dict.validate")) {
    return Status::Corruption("injected dict.validate failure");
  }
  if (dict.size() != sorted_unique.size()) {
    return Status::Corruption("built dictionary entry count mismatch");
  }
  if (options.sample_probes > 0 && !sorted_unique.empty()) {
    const uint32_t n = dict.size();
    const uint32_t probes = std::min(options.sample_probes, n);
    // Evenly spread deterministic sample; i = probes-1 lands on the last
    // entry, i = 0 on the first.
    std::string scratch;
    for (uint32_t i = 0; i < probes; ++i) {
      const uint32_t id = static_cast<uint32_t>(
          (static_cast<uint64_t>(i) * (n - 1)) / (probes > 1 ? probes - 1 : 1));
      scratch.clear();
      dict.ExtractInto(id, &scratch);
      if (scratch != sorted_unique[id]) {
        return Status::Corruption("extract round-trip mismatch");
      }
      const LocateResult located = dict.Locate(sorted_unique[id]);
      if (!located.found || located.id != id) {
        return Status::Corruption("locate round-trip mismatch");
      }
    }
  }
  if (check_size_prediction && options.predicted_dict_bytes >= 0 &&
      options.size_tolerance > 0) {
    const double actual = static_cast<double>(dict.MemoryBytes());
    const double bound = options.predicted_dict_bytes * options.size_tolerance +
                         options.size_slack_bytes;
    if (actual > bound) {
      return Status::ResourceExhausted(
          "built dictionary exceeds size-model prediction tolerance");
    }
  }
  return Status::Ok();
}

StatusOr<GuardedBuildResult> BuildDictionaryGuarded(
    DictFormat format, std::span<const std::string> sorted_unique,
    const GuardOptions& options) {
  ADICT_TRACE_SPAN("guard.build");
  // Degradation chain (docs/robustness.md): the decided format, then the
  // paper's robust mid-point (blockwise front coding, raw suffixes), then
  // the format that cannot fail on valid input.
  std::array<DictFormat, 3> chain = {format, DictFormat::kFcBlock,
                                     DictFormat::kArray};
  size_t chain_len = 0;
  for (DictFormat candidate : chain) {
    bool seen = false;
    for (size_t i = 0; i < chain_len; ++i) seen |= chain[i] == candidate;
    if (!seen) chain[chain_len++] = candidate;
  }

  Status last = Status::Internal("empty degradation chain");
  for (size_t i = 0; i < chain_len; ++i) {
    const DictFormat attempt = chain[i];
    std::unique_ptr<Dictionary> dict;
    Status status = TryBuildOne(attempt, sorted_unique, &dict);
    if (status.ok()) {
      status = ValidateDictionary(*dict, sorted_unique, options,
                                  /*check_size_prediction=*/attempt == format);
    }
    if (status.ok()) {
      return GuardedBuildResult{std::move(dict), attempt,
                                static_cast<int>(i)};
    }
    last = status;
    if (i + 1 < chain_len) {
      CountFallback();
      if (options.log_sequence != 0) {
        obs::FallbackEvent event;
        event.from_format_id = static_cast<int>(attempt);
        event.from_format_name = std::string(DictFormatName(attempt));
        event.to_format_id = static_cast<int>(chain[i + 1]);
        event.to_format_name = std::string(DictFormatName(chain[i + 1]));
        event.reason = status.ToString();
        obs::Decisions().RecordFallback(options.log_sequence,
                                        std::move(event));
      }
    }
  }
  CountExhausted();
  return last;
}

}  // namespace adict
