// Reduction of all per-column factors to the (space, time) plane and the
// dividing-line selection strategies (paper §5.2, §5.4).
//
// Space:  size(d, c) = dict_size(d, c) + columnvector_size(c)
// Time:   time(d)    = #extracts * t_e(d) + #locates * t_l(d)
//                      + #strings * t_c(d)
//         rel_time(d) = time(d) / lifetime(d)
//
// A strategy admits the subset D_f = { d : size(d) <= f(rel_time(d)) } below
// a dividing function f and picks the fastest admitted variant. The global
// trade-off parameter c shifts f; the configuration parameter alpha is
// derived from the paper's boundary condition: in the hypothetical scaling
// where rel_time(d_min) = 1 (the smallest variant would consume the whole
// lifetime), the dividing line passes through the fastest variant.
#ifndef ADICT_CORE_TRADEOFF_H_
#define ADICT_CORE_TRADEOFF_H_

#include <span>
#include <vector>

#include "core/cost_model.h"
#include "core/properties.h"
#include "dict/dictionary.h"

namespace adict {

/// Usage pattern and environment of one column, as traced by the store
/// between two merges (paper Figure 7, "Column" box).
struct ColumnUsage {
  uint64_t num_extracts = 0;
  uint64_t num_locates = 0;
  /// Time between two merges of this column, i.e. the lifetime of one
  /// dictionary instance, in seconds.
  double lifetime_seconds = 3600.0;
  /// Size of the column's other data structure (the domain-encoded column
  /// vector), which the dictionary size is put in relation to.
  uint64_t column_vector_bytes = 0;
};

/// One dictionary format mapped onto the two decision dimensions.
struct Candidate {
  DictFormat format;
  double size_bytes;  // predicted dictionary size + column vector size
  double rel_time;    // lifetime-normalized runtime spent in the dictionary
};

/// Maps every dictionary format onto (size, rel_time) using the compression
/// models for the size axis and the cost model for the time axis.
std::vector<Candidate> EvaluateCandidates(const DictionaryProperties& props,
                                          const ColumnUsage& usage,
                                          const CostModel& cost_model);

/// The dividing-line families of §5.4.
enum class TradeoffStrategy {
  kConst,  ///< f(t) = (1 + c) * size_min
  kRel,    ///< constant line raised with rel_time(d_min)
  kTilt,   ///< line tilted in favor of faster but bigger variants
};

std::string_view TradeoffStrategyName(TradeoffStrategy strategy);

/// Outcome of one selection, with enough detail to reproduce the paper's
/// Figure 9 (dividing line, included set, smallest and selected variants).
struct SelectionDetails {
  DictFormat selected;
  DictFormat smallest;  // d_min
  DictFormat fastest;   // d_speed
  double alpha = 0;     // derived configuration parameter
  /// Dividing-line value f(rel_time(d)) per candidate, parallel to the
  /// input; candidate i is admitted iff size_bytes <= threshold[i].
  std::vector<double> threshold;
};

/// Applies `strategy` with trade-off parameter `c` to the candidates.
/// `candidates` must be non-empty.
SelectionDetails SelectFormatDetailed(std::span<const Candidate> candidates,
                                      double c, TradeoffStrategy strategy);

/// Convenience wrapper returning only the selected format.
DictFormat SelectFormat(std::span<const Candidate> candidates, double c,
                        TradeoffStrategy strategy);

}  // namespace adict

#endif  // ADICT_CORE_TRADEOFF_H_
