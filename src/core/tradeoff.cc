#include "core/tradeoff.h"

#include <cmath>

#include "core/size_model.h"
#include "util/check.h"

namespace adict {

std::vector<Candidate> EvaluateCandidates(const DictionaryProperties& props,
                                          const ColumnUsage& usage,
                                          const CostModel& cost_model) {
  std::vector<Candidate> candidates;
  candidates.reserve(kNumDictFormats);
  for (DictFormat format : AllDictFormats()) {
    const MethodCosts& costs = cost_model.costs(format);
    const double time_us =
        static_cast<double>(usage.num_extracts) * costs.extract_us +
        static_cast<double>(usage.num_locates) * costs.locate_us +
        static_cast<double>(props.num_strings) * costs.construct_us;
    const double lifetime = usage.lifetime_seconds > 0
                                ? usage.lifetime_seconds
                                : 1.0;  // degenerate, avoid division by zero
    candidates.push_back(
        {format,
         PredictDictionarySize(format, props) +
             static_cast<double>(usage.column_vector_bytes),
         time_us / 1e6 / lifetime});
  }
  return candidates;
}

std::string_view TradeoffStrategyName(TradeoffStrategy strategy) {
  switch (strategy) {
    case TradeoffStrategy::kConst:
      return "const";
    case TradeoffStrategy::kRel:
      return "rel";
    case TradeoffStrategy::kTilt:
      return "tilt";
  }
  return "?";
}

SelectionDetails SelectFormatDetailed(std::span<const Candidate> candidates,
                                      double c, TradeoffStrategy strategy) {
  ADICT_CHECK(!candidates.empty());
  ADICT_CHECK(c >= 0);

  // d_min: smallest size, ties towards faster. d_speed: fastest, ties
  // towards smaller.
  size_t min_index = 0, speed_index = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    const Candidate& d = candidates[i];
    const Candidate& dm = candidates[min_index];
    if (d.size_bytes < dm.size_bytes ||
        (d.size_bytes == dm.size_bytes && d.rel_time < dm.rel_time)) {
      min_index = i;
    }
    const Candidate& ds = candidates[speed_index];
    if (d.rel_time < ds.rel_time ||
        (d.rel_time == ds.rel_time && d.size_bytes < ds.size_bytes)) {
      speed_index = i;
    }
  }
  const double size_min = candidates[min_index].size_bytes;
  const double size_speed = candidates[speed_index].size_bytes;
  const double t_min = candidates[min_index].rel_time;
  const double t_speed = candidates[speed_index].rel_time;

  SelectionDetails details;
  details.smallest = candidates[min_index].format;
  details.fastest = candidates[speed_index].format;
  details.threshold.resize(candidates.size());

  // Derive alpha from the boundary condition (see header) and build the
  // dividing function for the *actual* rel_time scale.
  //
  // The paper's boundary condition anchors the line at rel_time(d_min) = 1:
  // "if the runtime of the smallest variant is greater than or equal to
  // 100% of the available time until the next merge, the fastest variant
  // should be chosen". Beyond that point the hypothetical-to-actual scaling
  // must saturate — otherwise the t_min^2 amplification flips the line far
  // below zero for super-hot columns and *excludes* every fast variant, the
  // opposite of the intent. We therefore clamp the heat factor at 1.
  const double heat = std::min(t_min, 1.0);
  double alpha = 0;
  double slope = 0;      // line slope in actual scale (tilt only)
  double intercept = (1.0 + c) * size_min;
  switch (strategy) {
    case TradeoffStrategy::kConst:
      break;
    case TradeoffStrategy::kRel: {
      // (1 + c(1 + alpha)) * size_min = size_speed, hypothetical
      // rel_time(d_min) = 1. Undefined for c = 0 (falls back to const).
      if (c > 0 && size_min > 0) {
        alpha = (size_speed / size_min - 1.0) / c - 1.0;
      }
      intercept = (1.0 + c * (1.0 + heat * alpha)) * size_min;
      break;
    }
    case TradeoffStrategy::kTilt: {
      // Hypothetical scaling tau = rel_time / rel_time(d_min):
      //   f'(tau) = alpha * tau + b',  f'(1) = (1+c) size_min,
      //   f'(tau_speed) = size_speed.
      const double tau_speed = t_min > 0 ? t_speed / t_min : 1.0;
      if (tau_speed != 1.0) {
        alpha = (size_speed - (1.0 + c) * size_min) / (tau_speed - 1.0);
      }
      // Back to the actual scale: f(t) = slope * t + b with
      // f(t_min) = (1+c) size_min. For t_min <= 1 this is the paper's
      // slope alpha * t_min; for hotter columns it saturates so that
      // f(t_speed) stays pinned at size_speed.
      slope = t_min > 0 ? alpha * heat * heat / t_min : 0.0;
      intercept = (1.0 + c) * size_min - slope * t_min;
      break;
    }
  }
  details.alpha = alpha;

  // Admit candidates below the line; among them pick the fastest, breaking
  // ties towards the smaller variant. The epsilon keeps candidates that sit
  // exactly on the line (d_speed at the saturation point) admitted despite
  // floating-point rounding.
  size_t best = min_index;  // d_min is admitted by construction
  bool have_best = false;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double threshold = intercept + slope * candidates[i].rel_time;
    details.threshold[i] = threshold;
    if (candidates[i].size_bytes > threshold + 1e-6 * (1.0 + std::abs(threshold))) {
      continue;
    }
    if (!have_best || candidates[i].rel_time < candidates[best].rel_time ||
        (candidates[i].rel_time == candidates[best].rel_time &&
         candidates[i].size_bytes < candidates[best].size_bytes)) {
      best = i;
      have_best = true;
    }
  }
  details.selected = candidates[best].format;
  return details;
}

DictFormat SelectFormat(std::span<const Candidate> candidates, double c,
                        TradeoffStrategy strategy) {
  return SelectFormatDetailed(candidates, c, strategy).selected;
}

}  // namespace adict
