#include "core/compression_manager.h"

#include <string>

#include "core/build_guard.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/check.h"

namespace adict {
namespace {

// Format names with spaces flattened for metric names, e.g. "array rp 12"
// -> "manager.chosen.array_rp_12".
std::string ChosenMetricName(DictFormat format) {
  std::string name = "manager.chosen.";
  for (char ch : DictFormatName(format)) {
    name.push_back(ch == ' ' ? '_' : ch);
  }
  return name;
}

}  // namespace

uint64_t LogFormatDecision(std::string_view column_id,
                           const DictionaryProperties& props,
                           const ColumnUsage& usage,
                           std::span<const Candidate> candidates,
                           const SelectionDetails& details, double c,
                           TradeoffStrategy strategy) {
  if (!obs::Enabled()) return 0;

  obs::DecisionRecord record;
  record.column_id = std::string(column_id);
  record.num_strings = props.num_strings;
  record.raw_chars = props.raw_chars;
  record.entropy0 = props.entropy0;
  record.sampled_fraction = props.sampled_fraction;
  record.num_extracts = usage.num_extracts;
  record.num_locates = usage.num_locates;
  record.lifetime_seconds = usage.lifetime_seconds;
  record.column_vector_bytes = usage.column_vector_bytes;
  record.candidates.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    record.candidates.push_back(
        {static_cast<int>(candidate.format),
         std::string(DictFormatName(candidate.format)), candidate.size_bytes,
         candidate.rel_time});
    if (candidate.format == details.selected) {
      // The candidate's size axis includes the column vector; the built
      // dictionary does not.
      record.predicted_dict_bytes =
          candidate.size_bytes -
          static_cast<double>(usage.column_vector_bytes);
    }
  }
  record.chosen_format_id = static_cast<int>(details.selected);
  record.chosen_format_name = std::string(DictFormatName(details.selected));
  record.c = c;
  record.strategy = std::string(TradeoffStrategyName(strategy));
  record.alpha = details.alpha;

  static obs::Counter* decisions = obs::Metrics().GetCounter(
      "manager.decisions", "calls", "format decisions made");
  decisions->Increment();
  static obs::Gauge* c_gauge = obs::Metrics().GetGauge(
      "manager.c", "", "trade-off parameter c at the last decision");
  c_gauge->Set(c);
  obs::Metrics()
      .GetCounter(ChosenMetricName(details.selected), "decisions",
                  "decisions that chose this format")
      ->Increment();

  return obs::Decisions().Push(std::move(record));
}

FormatDecision CompressionManager::ChooseFormatLogged(
    std::span<const std::string> sorted_unique, const ColumnUsage& usage,
    std::string_view column_id) const {
  ADICT_TRACE_SPAN("manager.choose_format");
  obs::ScopedTimer timer(
      obs::Enabled() ? obs::Metrics().GetHistogram(
                           "manager.choose_format_us", {}, "us",
                           "sampling + model evaluation + selection")
                     : nullptr);
  const DictionaryProperties props =
      SampleProperties(sorted_unique, options_.sampling);
  std::vector<Candidate> candidates;
  {
    ADICT_TRACE_SPAN("manager.evaluate_candidates");
    candidates = EvaluateCandidates(props, usage, cost_model_);
  }
  SelectionDetails details;
  {
    ADICT_TRACE_SPAN("manager.select_format");
    details = SelectFormatDetailed(candidates, controller_.c(),
                                   options_.strategy);
  }
  const uint64_t sequence =
      LogFormatDecision(column_id, props, usage, candidates, details,
                        controller_.c(), options_.strategy);
  double predicted_dict_bytes = -1;
  for (const Candidate& candidate : candidates) {
    if (candidate.format == details.selected) {
      // The candidate's size axis includes the column vector; the built
      // dictionary does not.
      predicted_dict_bytes = candidate.size_bytes -
                             static_cast<double>(usage.column_vector_bytes);
      break;
    }
  }
  return {details.selected, sequence, predicted_dict_bytes};
}

std::unique_ptr<Dictionary> CompressionManager::BuildAdaptiveDictionary(
    std::span<const std::string> sorted_unique, const ColumnUsage& usage,
    std::string_view column_id) const {
  const FormatDecision decision =
      ChooseFormatLogged(sorted_unique, usage, column_id);
  GuardOptions guard;
  guard.predicted_dict_bytes = decision.predicted_dict_bytes;
  guard.log_sequence = decision.log_sequence;
  StatusOr<GuardedBuildResult> built =
      BuildDictionaryGuarded(decision.format, sorted_unique, guard);
  ADICT_CHECK_MSG(built.ok(),
                  "dictionary rebuild failed beyond the array fallback");
  if (decision.log_sequence != 0) {
    obs::Decisions().RecordActual(
        decision.log_sequence,
        static_cast<double>(built->dict->MemoryBytes()));
  }
  return std::move(built->dict);
}

}  // namespace adict
