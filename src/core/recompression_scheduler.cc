#include "core/recompression_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "core/build_guard.h"
#include "obs/decision_log.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "obs/workload_profiler.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace adict {

std::string_view PressureLevelName(PressureLevel level) {
  switch (level) {
    case PressureLevel::kNone:
      return "none";
    case PressureLevel::kAdvisory:
      return "advisory";
    case PressureLevel::kUrgent:
      return "urgent";
    case PressureLevel::kCritical:
      return "critical";
  }
  return "unknown";
}

namespace {

/// Level implied by `fraction` against the raw (entry) thresholds.
PressureLevel RawLevel(double fraction, double advisory, double urgent,
                       double critical) {
  if (fraction >= critical) return PressureLevel::kCritical;
  if (fraction >= urgent) return PressureLevel::kUrgent;
  if (fraction >= advisory) return PressureLevel::kAdvisory;
  return PressureLevel::kNone;
}

}  // namespace

RecompressionScheduler::RecompressionScheduler(Table* table,
                                               CompressionManager* manager,
                                               Options options)
    : table_(table), manager_(manager), options_(std::move(options)) {
  MutexLock lock(&mutex_);
  columns_.reserve(table_->num_string_columns());
  for (size_t i = 0; i < table_->num_string_columns(); ++i) {
    ColumnState state;
    state.name = table_->string_column_name(i);
    // Eligible from the first tick: "never rebuilt" predates tick 0 by a
    // full cooldown.
    state.last_rebuild_tick = -static_cast<int64_t>(options_.cooldown_ticks);
    columns_.push_back(std::move(state));
  }
}

RecompressionScheduler::~RecompressionScheduler() { Stop(); }

void RecompressionScheduler::Stop() {
  stop_.store(true, std::memory_order_release);
  if (sampler_) sampler_->Stop();
  DrainForTest();
}

void RecompressionScheduler::DrainForTest() {
  MutexLock lock(&drain_mutex_);
  drain_mutex_.Await([this]() ADICT_CV_PREDICATE {
    // pending_rebuilds_ is guarded by drain_mutex_, held via Await.
    return pending_rebuilds_ == 0;
  });
}

void RecompressionScheduler::AttachSampler(
    std::unique_ptr<MemoryProvider> provider, uint64_t period_millis) {
  MemorySampler::Options sampler_options;
  sampler_options.period_millis = period_millis;
  sampler_ = std::make_unique<MemorySampler>(
      std::move(provider),
      [this](const StatusOr<MemorySample>& sample) { OnSample(sample); },
      sampler_options);
  sampler_->Start();
}

void RecompressionScheduler::SetPressureHook(
    std::function<void(PressureLevel)> hook) {
  MutexLock lock(&mutex_);
  pressure_hook_ = std::move(hook);
}

PressureLevel RecompressionScheduler::level() const {
  MutexLock lock(&mutex_);
  return level_;
}

RecompressionScheduler::Stats RecompressionScheduler::stats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

PressureLevel RecompressionScheduler::Classify(double smoothed,
                                               PressureLevel previous) const {
  const PressureLevel up =
      RawLevel(smoothed, options_.advisory_threshold,
               options_.urgent_threshold, options_.critical_threshold);
  // Going up is immediate; going down requires clearing the old level's
  // threshold by the hysteresis margin, so a reading hovering at a boundary
  // settles on the higher level instead of oscillating.
  if (up >= previous) return up;
  const double h = options_.hysteresis;
  const PressureLevel down =
      RawLevel(smoothed, options_.advisory_threshold - h,
               options_.urgent_threshold - h, options_.critical_threshold - h);
  return std::min(previous, down);
}

void RecompressionScheduler::OnSample(const StatusOr<MemorySample>& sample) {
  if (stopped()) return;

  if (obs::Enabled()) {
    static obs::Counter* samples = obs::Metrics().GetCounter(
        "mem.samples", "samples", "memory samples consumed by the scheduler");
    samples->Increment();
  }

  if (!sample.ok()) {
    // A failed read (sandboxed /proc, torn-down cgroup, injected
    // mem.sample.fail) is counted and otherwise ignored: the EMA and the
    // pressure level hold their last good state.
    {
      MutexLock lock(&mutex_);
      ++tick_;
      ++stats_.ticks;
      ++stats_.sample_errors;
    }
    if (obs::Enabled()) {
      static obs::Counter* errors = obs::Metrics().GetCounter(
          "mem.sample.errors", "samples",
          "memory samples discarded because the provider read failed");
      errors->Increment();
    }
    return;
  }

  if (options_.feed_controller) {
    // The paper's feedback loop, now fed by real measurements: Observe
    // adjusts the global trade-off parameter c toward the free-memory
    // target, which shifts every later format decision (including the
    // rebuilds this scheduler triggers).
    manager_->controller().Observe(
        static_cast<double>(sample->free_bytes()),
        static_cast<double>(sample->total_bytes));
  }

  const TickPlan plan = PlanTick(*sample);

  if (plan.level_changed) {
    // Copy the hook out under the lock, invoke it outside: a hook that
    // flushes a large result cache must not serialize against stats readers.
    std::function<void(PressureLevel)> hook;
    {
      MutexLock lock(&mutex_);
      hook = pressure_hook_;
    }
    if (hook) hook(plan.level);
  }

  if (obs::Enabled()) {
    static obs::Gauge* used = obs::Metrics().GetGauge(
        "mem.used_bytes", "bytes", "last sampled memory usage");
    static obs::Gauge* total = obs::Metrics().GetGauge(
        "mem.total_bytes", "bytes", "last sampled memory budget");
    static obs::Gauge* fraction = obs::Metrics().GetGauge(
        "mem.used_fraction", "fraction", "last sampled used / total");
    static obs::Gauge* smoothed = obs::Metrics().GetGauge(
        "mem.smoothed_used_fraction", "fraction",
        "EMA-smoothed used fraction the pressure tiers classify");
    static obs::Gauge* level_gauge = obs::Metrics().GetGauge(
        "mem.pressure_level", "level",
        "current pressure tier (0 none, 1 advisory, 2 urgent, 3 critical)");
    used->Set(static_cast<double>(sample->used_bytes));
    total->Set(static_cast<double>(sample->total_bytes));
    fraction->Set(sample->used_fraction());
    double smoothed_value;
    {
      MutexLock lock(&mutex_);
      smoothed_value = smoothed_used_fraction_;
    }
    smoothed->Set(smoothed_value);
    level_gauge->Set(static_cast<double>(plan.level));
  }

  for (size_t index : plan.rebuild_columns) {
    if (options_.synchronous) {
      RebuildColumn(index, plan.level);
    } else {
      Pool().Submit([this, index, level = plan.level] {
        RebuildColumn(index, level);
      });
    }
  }
}

RecompressionScheduler::TickPlan RecompressionScheduler::PlanTick(
    const MemorySample& sample) {
  // Three phases around the lock hierarchy: the scheduler's state lock sits
  // in the core stratum, *below* obs, so the heat reads, metric
  // registrations, and profiler ranking in the middle must run unlocked.
  // Phase 1 (locked): advance the tick, classify pressure, collect eligible
  // candidates. Phase 2 (unlocked): snapshot the candidates' columns, read
  // their decayed heat, score, sort, publish the ranking. Phase 3 (locked):
  // commit the top-ranked candidates that are still eligible.
  TickPlan plan;
  struct Candidate {
    size_t index;
    std::string name;
    double staleness;
  };
  std::vector<Candidate> candidates;
  size_t budget = 0;
  uint64_t newly_skipped = 0;
  {
    MutexLock lock(&mutex_);
    ++tick_;
    ++stats_.ticks;

    const double fraction = std::clamp(sample.used_fraction(), 0.0, 1.0);
    smoothed_used_fraction_ =
        smoothed_used_fraction_ < 0
            ? fraction
            : options_.smoothing * fraction +
                  (1.0 - options_.smoothing) * smoothed_used_fraction_;
    const PressureLevel previous_level = level_;
    level_ = Classify(smoothed_used_fraction_, level_);
    plan.level_changed = level_ != previous_level;
    stats_.level = level_;
    stats_.smoothed_used_fraction = smoothed_used_fraction_;
    plan.level = level_;

    if (paused_.load(std::memory_order_acquire) ||
        stop_.load(std::memory_order_acquire)) {
      return plan;
    }
    if (backoff_until_tick_ >= tick_) return plan;

    switch (level_) {
      case PressureLevel::kNone:
        break;
      case PressureLevel::kAdvisory: {
        const uint64_t period =
            std::max<uint64_t>(options_.advisory_period_ticks, 1);
        if (static_cast<uint64_t>(tick_) % period == 0) budget = 1;
        break;
      }
      case PressureLevel::kUrgent:
        budget =
            static_cast<size_t>(std::max(options_.max_rebuilds_per_tick, 0));
        break;
      case PressureLevel::kCritical:
        budget = static_cast<size_t>(
            std::max(options_.critical_max_rebuilds_per_tick, 0));
        break;
    }
    if (budget == 0) return plan;

    candidates.reserve(columns_.size());
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].in_flight) continue;
      const int64_t since = tick_ - columns_[i].last_rebuild_tick;
      if (since < static_cast<int64_t>(options_.cooldown_ticks)) {
        ++stats_.skipped_cooldown;
        ++newly_skipped;
        continue;
      }
      candidates.push_back(
          {i, columns_[i].name, static_cast<double>(since)});
    }
  }

  if (newly_skipped > 0 && obs::Enabled()) {
    static obs::Counter* skipped = obs::Metrics().GetCounter(
        "sched.recompress.skipped_cooldown", "columns",
        "rebuild candidates skipped because the column was rebuilt "
        "within the cooldown window");
    skipped->Increment(newly_skipped);
  }
  if (candidates.empty()) return plan;

  // Rank eligible columns by expected payoff: big dictionaries that have
  // not been rebuilt for a while and see little traffic reclaim the most
  // bytes for the least interference. Traffic is the workload profiler's
  // *decayed* heat when the column has a slot — a column that was hot an
  // hour ago but idle now ranks as cold and is evicted first; lifetime
  // counters (the fallback for unbound columns) cannot tell the two apart.
  struct Ranked {
    size_t index;
    std::string name;
    double score;
    double heat;
    uint64_t dict_bytes;
    double staleness;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(candidates.size());
  for (Candidate& candidate : candidates) {
    const std::shared_ptr<const StringColumn> snapshot =
        table_->string_column(candidate.index).Snapshot();
    double traffic_signal;
    if (snapshot->heat() != nullptr) {
      traffic_signal = snapshot->heat()->DecayedHeat();
    } else {
      const ColumnUsage usage =
          snapshot->TracedUsage(options_.lifetime_seconds);
      traffic_signal =
          static_cast<double>(usage.num_extracts + usage.num_locates);
    }
    const double score = static_cast<double>(snapshot->DictionaryBytes()) *
                         candidate.staleness / (1.0 + traffic_signal);
    ranked.push_back({candidate.index, std::move(candidate.name), score,
                      traffic_signal, snapshot->DictionaryBytes(),
                      candidate.staleness});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    return a.score > b.score || (a.score == b.score && a.index < b.index);
  });
  if (obs::Enabled() && !ranked.empty()) {
    std::vector<obs::SchedulerRankEntry> entries;
    entries.reserve(ranked.size());
    for (const Ranked& r : ranked) {
      entries.push_back({r.name, r.score, r.heat, r.dict_bytes, r.staleness});
    }
    obs::Profiler().RecordSchedulerRanking(std::move(entries));
  }

  {
    MutexLock lock(&mutex_);
    for (const Ranked& r : ranked) {
      if (plan.rebuild_columns.size() >= budget) break;
      // Re-check under the lock: a synchronous FinishRebuild or a racing
      // tick could have marked the column in flight between the phases.
      if (columns_[r.index].in_flight) continue;
      columns_[r.index].in_flight = true;
      plan.rebuild_columns.push_back(r.index);
    }
    if (!plan.rebuild_columns.empty()) {
      MutexLock drain_lock(&drain_mutex_);
      pending_rebuilds_ += static_cast<int>(plan.rebuild_columns.size());
    }
  }
  return plan;
}

void RecompressionScheduler::RebuildColumn(size_t index, PressureLevel level) {
  ADICT_TRACE_SPAN("sched.rebuild");
  const auto start = std::chrono::steady_clock::now();

  if (stopped()) {
    FinishRebuild(index, RebuildOutcome::kAborted, 0, true);
    return;
  }

  std::string name;
  {
    MutexLock lock(&mutex_);
    name = columns_[index].name;
  }
  VersionedStringColumn& column = table_->string_column(index);

  // Epoch before snapshot: if a merge publishes in between, the guarded
  // publish below fails (conservative) instead of committing a column built
  // from a superseded snapshot.
  const uint64_t epoch = column.epoch();
  const std::shared_ptr<const StringColumn> snapshot = column.Snapshot();
  const uint64_t bytes_before = snapshot->DictionaryBytes();
  const DictFormat current_format = snapshot->format();
  const ColumnUsage usage = snapshot->TracedUsage(options_.lifetime_seconds);
  const std::vector<std::string> values = snapshot->MaterializeDictionary();

  DictFormat target;
  uint64_t log_sequence = 0;
  double predicted_dict_bytes = -1;
  if (level == PressureLevel::kCritical) {
    // Critical pressure overrides the c-driven pick: take the smallest
    // predicted candidate outright, logged like any other decision so the
    // override is visible in the decision log.
    const DictionaryProperties props =
        SampleProperties(values, manager_->options().sampling);
    const std::vector<Candidate> candidates =
        EvaluateCandidates(props, usage, manager_->cost_model());
    SelectionDetails details = SelectFormatDetailed(
        candidates, manager_->c(), manager_->options().strategy);
    details.selected = details.smallest;
    target = details.smallest;
    for (const Candidate& candidate : candidates) {
      if (candidate.format == target) {
        predicted_dict_bytes =
            candidate.size_bytes -
            static_cast<double>(usage.column_vector_bytes);
      }
    }
    log_sequence =
        LogFormatDecision(name, props, usage, candidates, details,
                          manager_->c(), manager_->options().strategy);
  } else {
    const FormatDecision decision =
        manager_->ChooseFormatLogged(values, usage, name);
    target = decision.format;
    log_sequence = decision.log_sequence;
    predicted_dict_bytes = decision.predicted_dict_bytes;
  }

  if (target == current_format) {
    if (obs::Enabled()) {
      static obs::Counter* noops = obs::Metrics().GetCounter(
          "sched.recompress.noop", "decisions",
          "pressure-triggered decisions that kept the current format");
      noops->Increment();
    }
    // A no-op decision reclaims nothing: it feeds the stall/backoff
    // accounting so the scheduler stops hammering already-minimal columns.
    FinishRebuild(index, RebuildOutcome::kNoop, 0, false);
    return;
  }

  if (ADICT_FAIL_POINT("sched.rebuild.fail")) {
    // Injected after the decision is logged so the abort is attributable:
    // the decision record carries a fallback entry naming the failure.
    if (log_sequence != 0) {
      obs::FallbackEvent event;
      event.from_format_id = static_cast<int>(target);
      event.from_format_name = std::string(DictFormatName(target));
      event.to_format_id = -1;
      event.to_format_name = "(aborted)";
      event.reason = "injected sched.rebuild.fail failure";
      obs::Decisions().RecordFallback(log_sequence, std::move(event));
    }
    if (obs::Enabled()) {
      static obs::Counter* failed = obs::Metrics().GetCounter(
          "sched.recompress.failed", "rebuilds",
          "pressure-triggered rebuilds that failed (injected or exhausted)");
      failed->Increment();
    }
    FinishRebuild(index, RebuildOutcome::kFailed, 0, false);
    return;
  }

  GuardOptions guard;
  guard.predicted_dict_bytes = predicted_dict_bytes;
  guard.log_sequence = log_sequence;
  StatusOr<GuardedBuildResult> built =
      BuildDictionaryGuarded(target, values, guard);
  if (!built.ok()) {
    // Even the array fallback failed. The old version stays published and
    // readable; the decision log carries the full degradation chain.
    if (obs::Enabled()) {
      static obs::Counter* failed = obs::Metrics().GetCounter(
          "sched.recompress.failed", "rebuilds",
          "pressure-triggered rebuilds that failed (injected or exhausted)");
      failed->Increment();
    }
    FinishRebuild(index, RebuildOutcome::kFailed, 0, false);
    return;
  }
  if (log_sequence != 0) {
    obs::Decisions().RecordActual(
        log_sequence, static_cast<double>(built->dict->MemoryBytes()));
  }

  // Dictionary-only rebuild: all formats are order-preserving, so the
  // packed column vector is reused bit-identically.
  const uint64_t bytes_after = built->dict->MemoryBytes();
  StringColumn next = StringColumn::FromParts(std::move(built->dict),
                                              ColumnVector(snapshot->vector()));
  if (!column.PublishIfEpoch(std::move(next), epoch)) {
    if (obs::Enabled()) {
      static obs::Counter* lost = obs::Metrics().GetCounter(
          "sched.recompress.lost_race", "rebuilds",
          "pressure rebuilds discarded because another writer published "
          "a newer version first");
      lost->Increment();
    }
    FinishRebuild(index, RebuildOutcome::kLostRace, 0, false);
    return;
  }

  const uint64_t reclaimed =
      bytes_after < bytes_before ? bytes_before - bytes_after : 0;
  const bool progress =
      static_cast<double>(reclaimed) >=
      options_.min_reclaim_fraction * static_cast<double>(bytes_before);
  if (obs::Enabled()) {
    static obs::Counter* rebuilds = obs::Metrics().GetCounter(
        "sched.recompress.rebuilds", "rebuilds",
        "pressure-triggered rebuilds committed via conditional publish");
    static obs::Counter* reclaimed_counter = obs::Metrics().GetCounter(
        "sched.recompress.reclaimed_bytes", "bytes",
        "dictionary bytes freed by pressure-triggered rebuilds");
    static obs::Histogram* latency = obs::Metrics().GetHistogram(
        "sched.recompress.us", {}, "us",
        "wall time of one pressure-triggered rebuild");
    rebuilds->Increment();
    reclaimed_counter->Increment(reclaimed);
    latency->Observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  FinishRebuild(index, RebuildOutcome::kPublished, reclaimed, progress);
}

void RecompressionScheduler::FinishRebuild(size_t index,
                                           RebuildOutcome outcome,
                                           uint64_t reclaimed_bytes,
                                           bool progress) {
  bool entered_backoff = false;
  {
    MutexLock lock(&mutex_);
    columns_[index].in_flight = false;
    switch (outcome) {
      case RebuildOutcome::kPublished:
        ++stats_.rebuilds;
        stats_.reclaimed_bytes += reclaimed_bytes;
        break;
      case RebuildOutcome::kNoop:
        ++stats_.noop_decisions;
        break;
      case RebuildOutcome::kFailed:
        ++stats_.failed_rebuilds;
        break;
      case RebuildOutcome::kLostRace:
        ++stats_.lost_races;
        break;
      case RebuildOutcome::kAborted:
        break;
    }
    if (outcome != RebuildOutcome::kAborted) {
      // The attempt reached a decision: start the cooldown clock even for
      // failures, so a persistently failing column cannot be retried every
      // tick.
      columns_[index].last_rebuild_tick = tick_;
      if (progress) {
        consecutive_stalls_ = 0;
      } else if (++consecutive_stalls_ >= options_.backoff_after_stalls) {
        backoff_until_tick_ =
            tick_ + static_cast<int64_t>(options_.backoff_ticks);
        consecutive_stalls_ = 0;
        ++stats_.backoffs;
        entered_backoff = true;
      }
    }
  }
  // Metric emission after release: the state lock (core stratum) is below
  // the metrics registry (obs) in the lock hierarchy.
  if (entered_backoff && obs::Enabled()) {
    static obs::Counter* backoffs = obs::Metrics().GetCounter(
        "sched.recompress.backoff", "periods",
        "backoff periods entered after rebuilds stopped reclaiming");
    backoffs->Increment();
  }
  {
    MutexLock drain_lock(&drain_mutex_);
    --pending_rebuilds_;
  }
  drain_mutex_.NotifyAll();
}

}  // namespace adict
