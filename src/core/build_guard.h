// Guarded dictionary construction: build, validate, and degrade.
//
// The compression manager re-decides a column's dictionary format at every
// delta merge. In a store serving live traffic that rebuild must never take
// the process down, and a mispredicted or misbuilt dictionary must never be
// committed. BuildDictionaryGuarded therefore wraps BuildDictionary with
// three layers (docs/robustness.md):
//
//   1. preconditions — the input is checked against the format's
//      representational limits (CheckBuildPreconditions) before the builder
//      runs, so inputs a format cannot hold degrade instead of aborting;
//   2. validation — the freshly built dictionary round-trips a sample of
//      extracts and locates against the source strings, and its actual size
//      is compared with the size model's prediction within a tolerance;
//   3. degradation — on any failure (injected via fail points or real) the
//      build walks chosen format -> fc block -> array, recording each step
//      in the DecisionLog and the `dict.build.fallback` counter. Only if
//      even `array` fails does the caller see an error.
//
// Fail points honored: `dict.build` (any format), `repair.build` (formats
// with a Re-Pair codec), `fc.build` (front-coding-class formats),
// `dict.validate` (post-build validation).
#ifndef ADICT_CORE_BUILD_GUARD_H_
#define ADICT_CORE_BUILD_GUARD_H_

#include <memory>
#include <string>
#include <string_view>

#include "dict/dictionary.h"
#include "util/status.h"

namespace adict {

struct GuardOptions {
  /// Entries round-tripped (extract + locate) by validation; spread evenly,
  /// always including the first and last entry. 0 disables round-trip
  /// validation.
  uint32_t sample_probes = 32;
  /// Reject a build whose MemoryBytes() exceeds `size_tolerance *
  /// predicted_dict_bytes + size_slack_bytes`. The slack absorbs fixed
  /// overheads on tiny dictionaries. Only applied to the originally chosen
  /// format (the prediction is for it, not for the fallbacks).
  double size_tolerance = 4.0;
  double size_slack_bytes = 64 * 1024;
  /// Size model prediction for the chosen format's dictionary, in bytes.
  /// < 0 disables the size check.
  double predicted_dict_bytes = -1;
  /// Decision-log record to annotate with fallback steps (0: none).
  uint64_t log_sequence = 0;
};

struct GuardedBuildResult {
  std::unique_ptr<Dictionary> dict;
  /// Format actually built; differs from the requested format after a
  /// fallback.
  DictFormat format;
  /// Degradation steps taken (0 in the normal case).
  int num_fallbacks = 0;
};

/// Round-trips a sample of the dictionary against its source strings plus
/// the size-vs-prediction check. Exposed for tests and offline audits.
Status ValidateDictionary(const Dictionary& dict,
                          std::span<const std::string> sorted_unique,
                          const GuardOptions& options,
                          bool check_size_prediction);

/// Builds `format` over `sorted_unique` with validation and the
/// degradation chain described above. Returns the last failure only if
/// every format in the chain (including `array`) failed.
StatusOr<GuardedBuildResult> BuildDictionaryGuarded(
    DictFormat format, std::span<const std::string> sorted_unique,
    const GuardOptions& options = {});

}  // namespace adict

#endif  // ADICT_CORE_BUILD_GUARD_H_
