#include "core/cost_model.h"

#include <string>
#include <vector>

#include "datasets/generators.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace adict {

CostModel CostModel::Default() {
  // Measured with bench/calibrate_cost_model (20k strings per survey data
  // set, 20k probes) on the reference machine; see EXPERIMENTS.md. Values in
  // microseconds.
  CostModel model;
  const struct {
    DictFormat format;
    MethodCosts costs;
  } kDefaults[] = {
      {DictFormat::kArray, {0.059, 0.468, 0.054}},
      {DictFormat::kArrayBc, {0.215, 3.107, 0.864}},
      {DictFormat::kArrayHu, {0.406, 4.756, 0.656}},
      {DictFormat::kArrayNg2, {0.229, 3.427, 1.185}},
      {DictFormat::kArrayNg3, {0.192, 2.683, 1.949}},
      {DictFormat::kArrayRp12, {0.414, 6.041, 26.578}},
      {DictFormat::kArrayRp16, {0.421, 5.827, 30.109}},
      {DictFormat::kArrayFixed, {0.029, 0.367, 0.026}},
      {DictFormat::kFcBlock, {0.080, 0.392, 0.049}},
      {DictFormat::kFcBlockBc, {0.944, 2.728, 0.486}},
      {DictFormat::kFcBlockHu, {2.176, 4.898, 0.517}},
      {DictFormat::kFcBlockNg2, {1.290, 3.553, 0.899}},
      {DictFormat::kFcBlockNg3, {1.032, 3.147, 1.624}},
      {DictFormat::kFcBlockRp12, {2.722, 6.666, 16.412}},
      {DictFormat::kFcBlockRp16, {2.672, 6.762, 19.074}},
      {DictFormat::kFcBlockDf, {0.031, 0.401, 0.051}},
      {DictFormat::kFcInline, {0.084, 0.408, 0.043}},
      {DictFormat::kColumnBc, {0.254, 9.517, 0.762}},
  };
  for (const auto& entry : kDefaults) {
    model.set_costs(entry.format, entry.costs);
  }
  return model;
}

CostModel CalibrateCostModel(const CalibrationOptions& options) {
  CostModel model;
  std::vector<std::vector<std::string>> datasets;
  for (std::string_view name : SurveyDatasetNames()) {
    datasets.push_back(GenerateSurveyDataset(name, options.strings_per_dataset,
                                             options.seed));
  }

  for (DictFormat format : AllDictFormats()) {
    double extract_us = 0, locate_us = 0, construct_us = 0;
    for (const std::vector<std::string>& sorted : datasets) {
      Rng rng(options.seed);
      Stopwatch watch;
      auto dict = BuildDictionary(format, sorted);
      construct_us += watch.ElapsedMicros() / sorted.size();

      const uint32_t n = dict->size();
      std::string scratch;
      watch.Restart();
      for (uint64_t i = 0; i < options.probes; ++i) {
        scratch.clear();
        dict->ExtractInto(static_cast<uint32_t>(rng.Uniform(n)), &scratch);
      }
      extract_us += watch.ElapsedMicros() / options.probes;

      watch.Restart();
      for (uint64_t i = 0; i < options.probes; ++i) {
        dict->Locate(sorted[rng.Uniform(n)]);
      }
      locate_us += watch.ElapsedMicros() / options.probes;
    }
    const double d = static_cast<double>(datasets.size());
    model.set_costs(format,
                    {extract_us / d, locate_us / d, construct_us / d});
  }
  return model;
}

}  // namespace adict
