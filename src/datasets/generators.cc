#include "datasets/generators.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "util/check.h"
#include "util/rng.h"
#include "util/sha256.h"
#include "util/zipf.h"

namespace adict {
namespace {

constexpr std::array<std::string_view, 9> kDatasetNames = {
    "asc", "engl", "1gram", "hash", "mat", "rand1", "rand2", "src", "url"};

// Base vocabulary for the English-like generators.
constexpr std::string_view kWords[] = {
    "able",    "about",   "account", "action",  "active",  "address",
    "advance", "after",   "again",   "agent",   "agree",   "allow",
    "amount",  "analysis","annual",  "answer",  "apply",   "area",
    "argue",   "around",  "arrive",  "article", "assume",  "attack",
    "author",  "balance", "bank",    "base",    "basic",   "battle",
    "become",  "before",  "begin",   "believe", "benefit", "better",
    "between", "billion", "board",   "border",  "branch",  "bridge",
    "bring",   "budget",  "build",   "business","buyer",   "camera",
    "campaign","cancel",  "capital", "care",    "carry",   "cause",
    "center",  "central", "century", "certain", "chance",  "change",
    "channel", "charge",  "check",   "choice",  "circle",  "claim",
    "class",   "clear",   "client",  "close",   "code",    "collect",
    "college", "column",  "combine", "common",  "company", "compare",
    "complete","computer","concern", "condition","consider","contain",
    "continue","contract","control", "convert", "corner",  "correct",
    "cost",    "count",   "country", "course",  "cover",   "create",
    "credit",  "culture", "current", "customer","damage",  "data",
    "debate",  "decade",  "decide",  "declare", "deep",    "defense",
    "degree",  "deliver", "demand",  "depend",  "describe","design",
    "detail",  "develop", "device",  "differ",  "direct",  "discuss",
    "distance","document","double",  "dream",   "drive",   "during",
    "early",   "earn",    "east",    "economy", "effect",  "effort",
    "eight",   "either",  "electric","element", "emerge",  "employ",
    "energy",  "engine",  "enough",  "enter",   "entire",  "equal",
    "escape",  "estimate","evening", "event",   "every",   "evidence",
    "exact",   "example", "exchange","exist",   "expect",  "expense",
    "explain", "express", "extend",  "factor",  "fail",    "fall",
    "family",  "feature", "federal", "field",   "figure",  "filter",
    "final",   "finance", "finish",  "first",   "fiscal",  "focus",
    "follow",  "force",   "foreign", "forget",  "formal",  "forward",
    "frame",   "front",   "function","future",  "garden",  "general",
    "global",  "govern",  "great",   "ground",  "group",   "growth",
    "handle",  "happen",  "health",  "hearing", "history", "hold",
    "hotel",   "house",   "human",   "image",   "impact",  "import",
    "improve", "include", "income",  "increase","index",   "industry",
    "inform",  "inside",  "install", "instead", "intend",  "interest",
    "invest",  "involve", "island",  "issue",   "itself",  "join",
    "journal", "judge",   "kitchen", "knowledge","labor",  "language",
    "large",   "later",   "leader",  "learn",   "leave",   "legal",
    "letter",  "level",   "light",   "limit",   "listen",  "little",
    "local",   "logic",   "machine", "magazine","maintain","major",
    "manage",  "margin",  "market",  "master",  "material","matter",
    "measure", "media",   "medical", "member",  "memory",  "mention",
    "message", "method",  "middle",  "might",   "military","million",
    "minute",  "mission", "model",   "modern",  "moment",  "money",
    "monitor", "month",   "morning", "mother",  "motion",  "move",
    "music",   "nation",  "nature",  "network", "never",   "night",
    "north",   "notice",  "number",  "object",  "obtain",  "occur",
    "offer",   "office",  "often",   "operate", "option",  "order",
    "organ",   "other",   "output",  "outside", "owner",   "packet",
    "paper",   "parent",  "partner", "party",   "patient", "pattern",
    "people",  "percent", "perform", "period",  "person",  "phase",
    "phone",   "picture", "piece",   "place",   "plan",    "plant",
    "player",  "point",   "policy",  "popular", "position","power",
    "prepare", "present", "press",   "price",   "print",   "private",
    "problem", "process", "produce", "product", "profit",  "program",
    "project", "protect", "provide", "public",  "purpose", "quality",
    "question","quick",   "radio",   "raise",   "range",   "rate",
    "reach",   "reason",  "receive", "recent",  "record",  "reduce",
    "reflect", "reform",  "region",  "relate",  "release", "remain",
    "remember","remove",  "repeat",  "replace", "report",  "require",
    "research","resource","respond", "result",  "return",  "reveal",
    "review",  "right",   "rule",    "sample",  "scale",   "scene",
    "schedule","school",  "science", "screen",  "search",  "season",
    "second",  "section", "sector",  "secure",  "select",  "sense",
    "series",  "serve",   "service", "session", "settle",  "seven",
    "share",   "short",   "should",  "signal",  "simple",  "since",
    "single",  "small",   "social",  "source",  "south",   "space",
    "speak",   "special", "spend",   "sport",   "spread",  "spring",
    "square",  "staff",   "stage",   "standard","start",   "state",
    "station", "status",  "still",   "stock",   "store",   "story",
    "street",  "strong",  "student", "study",   "stuff",   "style",
    "subject", "submit",  "success", "suffer",  "suggest", "summer",
    "supply",  "support", "surface", "survey",  "system",  "table",
    "target",  "teach",   "technology","term",  "theory",  "thing",
    "think",   "third",   "thought", "thousand","through", "ticket",
    "today",   "together","tonight", "total",   "toward",  "trade",
    "train",   "transfer","travel",  "treat",   "trend",   "trial",
    "trouble", "truck",   "trust",   "under",   "union",   "unique",
    "update",  "upgrade", "usual",   "value",   "various", "vendor",
    "version", "video",   "visit",   "voice",   "volume",  "wait",
    "watch",   "water",   "weight",  "west",    "whole",   "window",
    "winter",  "within",  "without", "worker",  "world",   "write",
    "yellow",  "young",
};
constexpr size_t kNumWords = std::size(kWords);

constexpr std::string_view kWordSuffixes[] = {"", "s", "ed", "ing", "er",
                                              "est", "ly", "ness", "ment"};

/// Generates distinct strings until `n` are collected (or the generator is
/// exhausted), using `make(i)` for attempt i.
template <typename MakeFn>
std::vector<std::string> CollectDistinct(size_t n, const MakeFn& make) {
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  out.reserve(n);
  // Allow a generous number of attempts; generators below have large enough
  // output spaces that collisions stay rare.
  const size_t max_attempts = 20 * n + 1000;
  for (size_t attempt = 0; attempt < max_attempts && out.size() < n;
       ++attempt) {
    std::string s = make(attempt);
    if (seen.insert(s).second) out.push_back(std::move(s));
  }
  ADICT_CHECK_MSG(out.size() == n, "dataset generator exhausted");
  return out;
}

std::vector<std::string> GenAsc(size_t n, uint64_t seed) {
  // Ascending decimals with small random gaps so the set is not perfectly
  // dense (matching e.g. document numbers).
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(n);
  uint64_t value = 100000000000ull;
  char buf[32];
  for (size_t i = 0; i < n; ++i) {
    value += 1 + rng.Uniform(3);
    std::snprintf(buf, sizeof(buf), "%018llu",
                  static_cast<unsigned long long>(value));
    out.emplace_back(buf);
  }
  return out;
}

std::vector<std::string> GenEngl(size_t n, uint64_t seed) {
  Rng rng(seed);
  return CollectDistinct(n, [&](size_t) {
    std::string s(kWords[rng.Uniform(kNumWords)]);
    s += kWordSuffixes[rng.Uniform(std::size(kWordSuffixes))];
    // Occasionally form a compound, as the word list contains derived forms.
    if (rng.NextDouble() < 0.35) {
      s += kWords[rng.Uniform(kNumWords)];
    }
    return s;
  });
}

std::vector<std::string> Gen1Gram(size_t n, uint64_t seed) {
  // Book tokens: Zipf-weighted syllable composition, occasional
  // capitalization, rare digit tokens.
  static constexpr std::string_view kSyllables[] = {
      "a",   "an",  "ar",  "as",  "at",  "be",  "ca",  "ce",  "co",  "de",
      "di",  "do",  "e",   "ed",  "en",  "er",  "es",  "ex",  "fa",  "fi",
      "ga",  "ge",  "ha",  "he",  "hi",  "ho",  "i",   "in",  "is",  "it",
      "la",  "le",  "li",  "lo",  "ma",  "me",  "mi",  "mo",  "na",  "ne",
      "ni",  "no",  "o",   "on",  "or",  "ou",  "pa",  "pe",  "po",  "ra",
      "re",  "ri",  "ro",  "sa",  "se",  "si",  "so",  "st",  "ta",  "te",
      "ti",  "to",  "tra", "tri", "u",   "un",  "ur",  "us",  "va",  "ve",
      "vi",  "vo",  "wa",  "we",  "wi",  "wo",  "y",
  };
  Rng rng(seed);
  ZipfDistribution zipf(std::size(kSyllables), 0.8);
  return CollectDistinct(n, [&](size_t) {
    std::string s;
    const int syllables = 1 + static_cast<int>(rng.Uniform(5));
    for (int k = 0; k < syllables; ++k) s += kSyllables[zipf.Sample(&rng)];
    if (rng.NextDouble() < 0.12) s[0] = static_cast<char>(s[0] - 'a' + 'A');
    if (rng.NextDouble() < 0.02) {
      s = std::to_string(1500 + rng.Uniform(600));  // year-like token
    }
    return s;
  });
}

std::vector<std::string> GenHash(size_t n, uint64_t seed) {
  // Salted password hashes; the scheme prefix is shared by every entry.
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const std::string password =
        "user" + std::to_string(seed) + "-" + std::to_string(i);
    out.push_back("{SSHA256}" + Sha256Hex(password));
  }
  return out;
}

std::vector<std::string> GenMat(size_t n, uint64_t seed) {
  // ERP material numbers: a handful of structured layouts with a small
  // alphabet and constant length, as extracted from customer systems.
  Rng rng(seed);
  static constexpr std::string_view kPlants[] = {"DE", "US", "FR", "CN", "JP"};
  return CollectDistinct(n, [&](size_t) {
    char buf[32];
    const unsigned group = 100 + static_cast<unsigned>(rng.Uniform(40));
    const unsigned item = static_cast<unsigned>(rng.Uniform(10000000));
    std::snprintf(buf, sizeof(buf), "%s-%03u-%07u",
                  kPlants[rng.Uniform(std::size(kPlants))].data(), group,
                  item);
    return std::string(buf);
  });
}

std::vector<std::string> GenRand(size_t n, uint64_t seed, bool fixed_length) {
  Rng rng(seed);
  std::string alphabet;
  for (int c = 33; c < 127; ++c) alphabet.push_back(static_cast<char>(c));
  return CollectDistinct(n, [&](size_t) {
    const size_t len = fixed_length ? 10 : 1 + rng.Uniform(30);
    return rng.RandomString(len, alphabet);
  });
}

std::vector<std::string> GenSrc(size_t n, uint64_t seed) {
  // Source code lines: statement templates instantiated with identifiers and
  // literals. Highly redundant, variable length, large-ish alphabet.
  static constexpr std::string_view kTypes[] = {"int",    "double", "auto",
                                                "size_t", "bool",   "char"};
  static constexpr std::string_view kIndent[] = {"", "  ", "    ", "      "};
  Rng rng(seed);
  return CollectDistinct(n, [&](size_t) {
    const std::string var =
        std::string(kWords[rng.Uniform(kNumWords)]) + "_" +
        std::string(kWords[rng.Uniform(kNumWords)]);
    const std::string other(kWords[rng.Uniform(kNumWords)]);
    const std::string indent(kIndent[rng.Uniform(std::size(kIndent))]);
    const unsigned num = static_cast<unsigned>(rng.Uniform(1000));
    std::string line;
    switch (rng.Uniform(10)) {
      case 0:
        line = indent + std::string(kTypes[rng.Uniform(std::size(kTypes))]) +
               " " + var + " = " + std::to_string(num) + ";";
        break;
      case 1:
        line = indent + "if (" + var + " < " + std::to_string(num) +
               ") return " + other + ";";
        break;
      case 2:
        line = indent + "for (int i = 0; i < " + var + ".size(); ++i) {";
        break;
      case 3:
        line = indent + var + "->" + other + "(" + std::to_string(num) + ");";
        break;
      case 4:
        line = indent + "return " + var + " + " + other + ";";
        break;
      case 5:
        line = indent + "// TODO(" + other + "): handle " + var + " overflow";
        break;
      case 6:
        line = indent + "std::vector<" +
               std::string(kTypes[rng.Uniform(std::size(kTypes))]) + "> " +
               var + "(" + std::to_string(num) + ");";
        break;
      case 7:
        line = indent + "ASSERT_EQ(" + var + ", " + other + "." + var + ");";
        break;
      case 8: {
        // Long prose comment, as real code bases have; the occasional very
        // long line is what makes padding-based formats explode on source
        // code (paper Figure 3).
        line = indent + "// ";
        const int words = 6 + static_cast<int>(rng.Uniform(60));
        for (int w = 0; w < words; ++w) {
          if (w) line += " ";
          line += kWords[rng.Uniform(kNumWords)];
        }
        break;
      }
      default: {
        // Long function signature.
        line = indent + "void " + var + "(const std::string& " + other;
        const int params = static_cast<int>(rng.Uniform(4));
        for (int k = 0; k < params; ++k) {
          line += ", ";
          line += kTypes[rng.Uniform(std::size(kTypes))];
          line += " ";
          line += kWords[rng.Uniform(kNumWords)];
        }
        line += ") override;";
        break;
      }
    }
    return line;
  });
}

std::vector<std::string> GenUrl(size_t n, uint64_t seed) {
  static constexpr std::string_view kHosts[] = {
      "https://www.example.com", "https://shop.example.com",
      "https://api.example.org", "http://test.example.net"};
  static constexpr std::string_view kSections[] = {
      "products", "category", "articles", "users", "search", "static/img"};
  Rng rng(seed);
  return CollectDistinct(n, [&](size_t) {
    std::string url(kHosts[rng.Uniform(std::size(kHosts))]);
    url += "/";
    url += kSections[rng.Uniform(std::size(kSections))];
    url += "/";
    url += kWords[rng.Uniform(kNumWords)];
    if (rng.NextDouble() < 0.7) {
      url += "?id=" + std::to_string(rng.Uniform(1000000));
      if (rng.NextDouble() < 0.5) {
        url += "&page=" + std::to_string(rng.Uniform(50));
      }
    }
    return url;
  });
}

}  // namespace

std::span<const std::string_view> SurveyDatasetNames() { return kDatasetNames; }

std::vector<std::string> GenerateSurveyDataset(std::string_view name, size_t n,
                                               uint64_t seed) {
  std::vector<std::string> values;
  if (name == "asc") {
    values = GenAsc(n, seed);
  } else if (name == "engl") {
    values = GenEngl(n, seed);
  } else if (name == "1gram") {
    values = Gen1Gram(n, seed);
  } else if (name == "hash") {
    values = GenHash(n, seed);
  } else if (name == "mat") {
    values = GenMat(n, seed);
  } else if (name == "rand1") {
    values = GenRand(n, seed, /*fixed_length=*/true);
  } else if (name == "rand2") {
    values = GenRand(n, seed, /*fixed_length=*/false);
  } else if (name == "src") {
    values = GenSrc(n, seed);
  } else if (name == "url") {
    values = GenUrl(n, seed);
  } else {
    ADICT_CHECK_MSG(false, "unknown survey dataset");
  }
  return SortedUnique(std::move(values));
}

std::vector<std::string> SortedUnique(std::vector<std::string> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

std::vector<ColumnProfile> GenerateSystemPopulation(SystemKind kind,
                                                    size_t num_columns,
                                                    uint64_t seed) {
  // Dictionary sizes follow a power law over decades: each decade of size
  // has roughly half an order of magnitude fewer columns (paper Figure 1).
  // The maximum decade and the tail weight differ per system.
  // Tuned so the share of columns above 1e5 entries and their memory share
  // land near the paper's numbers: ERP 1 ~0.1% of columns / ~87% of memory,
  // ERP 2 even more extreme (a few giant dictionaries), BW much flatter
  // (~3% of columns).
  double tail = 0.5;  // Zipf-like exponent over the size decades
  int max_decade = 6; // largest 10^decade of distinct values
  switch (kind) {
    case SystemKind::kErp1:
      tail = 0.55;
      max_decade = 6;
      break;
    case SystemKind::kErp2:
      tail = 0.62;
      max_decade = 7;
      break;
    case SystemKind::kBw:
      tail = 0.30;
      max_decade = 5;
      break;
  }
  Rng rng(seed);
  std::vector<ColumnProfile> columns;
  columns.reserve(num_columns);
  // P(decade d) ~ 10^(-tail * d).
  std::vector<double> decade_weight(max_decade + 1);
  double sum = 0;
  for (int d = 0; d <= max_decade; ++d) {
    decade_weight[d] = std::pow(10.0, -tail * d);
    sum += decade_weight[d];
  }
  for (size_t i = 0; i < num_columns; ++i) {
    double u = rng.NextDouble() * sum;
    int decade = 0;
    while (decade < max_decade && u > decade_weight[decade]) {
      u -= decade_weight[decade];
      ++decade;
    }
    // Uniform within the decade, at least 1 distinct value.
    const double lo = std::pow(10.0, decade);
    const double hi = std::pow(10.0, decade + 1);
    const uint64_t distinct =
        std::max<uint64_t>(1, static_cast<uint64_t>(lo + rng.NextDouble() * (hi - lo)));
    // Larger dictionaries tend to hold longer values (documents, URLs, keys)
    // while tiny ones hold short enumeration literals.
    const double avg_len = 4.0 + 2.5 * decade + rng.NextDouble() * 8.0;
    columns.push_back({distinct, avg_len});
  }
  return columns;
}

}  // namespace adict
