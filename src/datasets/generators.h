// Synthetic generators for the paper's nine survey data sets (Section 3.4).
//
// The originals (Google Books 1-grams, customer material numbers, customer
// source lines, password hashes, a URL test set, an English word list) are
// not redistributable; these generators reproduce the *structural* properties
// each dictionary format exploits:
//   asc    ascending 18-digit decimals, zero padded (fixed length, digits)
//   engl   English-like words (small alphabet, moderate redundancy)
//   1gram  book tokens (Zipf-ish syllables, mixed case)
//   hash   salted SHA-256 password hashes with one shared prefix
//          (fixed length, hex alphabet)
//   mat    material numbers from an ERP system (structured, fixed length)
//   rand1  fixed-length random strings (incompressible)
//   rand2  variable-length random strings (incompressible)
//   src    source code lines (long, highly redundant)
//   url    URL templates (long shared prefixes, restricted alphabet)
#ifndef ADICT_DATASETS_GENERATORS_H_
#define ADICT_DATASETS_GENERATORS_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace adict {

/// Names of the nine data sets, in the paper's order.
std::span<const std::string_view> SurveyDatasetNames();

/// Generates `n` distinct strings of the named data set, sorted ascending
/// (ready to be used as dictionary input). Deterministic in `seed`.
std::vector<std::string> GenerateSurveyDataset(std::string_view name, size_t n,
                                               uint64_t seed = 42);

/// Sorts and deduplicates in place, returning the vector.
std::vector<std::string> SortedUnique(std::vector<std::string> values);

/// One string column of a simulated enterprise system: only the aggregate
/// properties that Figures 1 and 2 need.
struct ColumnProfile {
  uint64_t distinct_values;  // dictionary entry count
  double avg_string_length;  // average entry length in bytes
};

/// The three systems of the paper's motivation section.
enum class SystemKind { kErp1, kErp2, kBw };

/// Simulates the string-column population of an enterprise system. The
/// cardinality distribution follows the paper's observation: dictionary
/// sizes are roughly Zipf distributed ("for every order of magnitude of
/// smaller size, half an order of magnitude less dictionaries"), with the
/// ERP systems skewed harder than the BW system.
std::vector<ColumnProfile> GenerateSystemPopulation(SystemKind kind,
                                                    size_t num_columns,
                                                    uint64_t seed = 42);

}  // namespace adict

#endif  // ADICT_DATASETS_GENERATORS_H_
