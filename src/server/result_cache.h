// Epoch-invalidated, byte-bounded LRU result cache.
//
// The serving layer keys cached serialized results on a 64-bit FNV-1a
// digest of the query (protocol.h, RequestDigest) — the proxysql
// `umap_query_digest` idea. Correctness across delta merges comes from the
// snapshot protocol's epochs: each entry records the (column, epoch) pairs
// the producing execution read, and a lookup revalidates every dependency
// against the column's current epoch (one relaxed-cost atomic load each).
// Any PublishStrings — a delta merge, a format change under pressure —
// bumps the epoch and thereby evicts all dependent entries at their next
// lookup, so a stale result is never served across an epoch boundary
// (tests/server_test.cc proves it; docs/serving.md#result-cache).
//
// Capacity is bounded in bytes with least-recently-used eviction, and the
// whole cache can be flushed by the recompression scheduler's pressure hook
// — cached results are the cheapest memory in the store to give back.
#ifndef ADICT_SERVER_RESULT_CACHE_H_
#define ADICT_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/thread_annotations.h"

namespace adict {

class VersionedStringColumn;

/// One column version a cached result was computed against. The column
/// pointer is only ever compared and dereferenced for its atomic epoch;
/// registered tables must outlive the cache (the server guarantees this).
struct CacheDependency {
  const VersionedStringColumn* column = nullptr;
  uint64_t epoch = 0;
};

class ResultCache {
 public:
  struct Options {
    /// Total payload budget; 0 disables the cache entirely (every Lookup
    /// misses, every Insert is dropped).
    size_t max_bytes = 8u << 20;
  };

  /// Monotonic counters plus current occupancy, all under one snapshot.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t lru_evictions = 0;
    uint64_t stale_evictions = 0;  ///< dropped on epoch mismatch at lookup
    uint64_t flushes = 0;          ///< entries dropped by Flush()
    size_t bytes = 0;
    size_t entries = 0;
  };

  explicit ResultCache(Options options);

  /// The cached payload for `digest`, revalidating its epoch dependencies.
  /// A stale entry is erased (counted as a stale eviction) and reported as
  /// a miss. A hit refreshes recency.
  std::optional<std::vector<uint8_t>> Lookup(uint64_t digest)
      ADICT_EXCLUDES(mutex_);

  /// Inserts (or replaces) the payload for `digest`. Entries larger than
  /// the whole budget are dropped; otherwise LRU entries are evicted until
  /// the new entry fits.
  void Insert(uint64_t digest, std::vector<uint8_t> payload,
              std::vector<CacheDependency> deps) ADICT_EXCLUDES(mutex_);

  /// Drops every entry (the memory-pressure hook).
  void Flush() ADICT_EXCLUDES(mutex_);

  Stats stats() const ADICT_EXCLUDES(mutex_);
  size_t max_bytes() const { return options_.max_bytes; }
  bool enabled() const { return options_.max_bytes > 0; }

 private:
  struct Entry {
    uint64_t digest = 0;
    std::vector<uint8_t> payload;
    std::vector<CacheDependency> deps;
    size_t cost = 0;
  };

  static size_t EntryCost(const Entry& entry);
  /// True when every dependency's column is still at the recorded epoch.
  static bool Fresh(const Entry& entry);
  void EraseLocked(std::list<Entry>::iterator it) ADICT_REQUIRES(mutex_);
  void PublishOccupancyMetrics() ADICT_REQUIRES(mutex_);

  const Options options_;
  mutable Mutex mutex_{LockRank::kResultCache, "ResultCache.mutex_"};
  /// Front = most recently used.
  std::list<Entry> lru_ ADICT_GUARDED_BY(mutex_);
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_
      ADICT_GUARDED_BY(mutex_);
  size_t bytes_ ADICT_GUARDED_BY(mutex_) = 0;
  Stats stats_ ADICT_GUARDED_BY(mutex_);
};

}  // namespace adict

#endif  // ADICT_SERVER_RESULT_CACHE_H_
