#include "server/protocol.h"

#include <cstring>

#include "util/serde.h"

namespace adict {
namespace {

/// Appends the query portion of a request body (everything after the
/// request id). This is both the wire encoding and the digest input, so the
/// two can never drift.
void WriteQueryPortion(const Request& request, ByteWriter* writer) {
  writer->Write<uint8_t>(static_cast<uint8_t>(request.kind));
  switch (request.kind) {
    case QueryKind::kPing:
      break;
    case QueryKind::kCount:
    case QueryKind::kSelect:
      writer->WriteString(request.table);
      writer->WriteString(request.column);
      writer->Write<uint8_t>(static_cast<uint8_t>(request.op));
      writer->WriteString(request.value);
      if (request.op == PredicateOp::kBetween) {
        writer->WriteString(request.value2);
      }
      if (request.kind == QueryKind::kSelect) {
        writer->Write<uint64_t>(request.limit);
      }
      break;
    case QueryKind::kExtract:
      writer->WriteString(request.table);
      writer->WriteString(request.column);
      writer->Write<uint64_t>(request.row);
      break;
    case QueryKind::kLocate:
      writer->WriteString(request.table);
      writer->WriteString(request.column);
      writer->WriteString(request.value);
      break;
    case QueryKind::kTableStats:
      writer->WriteString(request.table);
      break;
    case QueryKind::kTpch:
      writer->Write<uint32_t>(request.tpch_query);
      break;
  }
}

void WriteFramePrefix(std::vector<uint8_t>* frame) {
  const uint32_t body_length =
      static_cast<uint32_t>(frame->size() - sizeof(uint32_t));
  std::memcpy(frame->data(), &body_length, sizeof(body_length));
}

}  // namespace

std::vector<uint8_t> EncodeRequest(const Request& request) {
  std::vector<uint8_t> frame;
  ByteWriter writer(&frame);
  writer.Write<uint32_t>(0);  // placeholder length prefix
  writer.Write<uint64_t>(request.request_id);
  WriteQueryPortion(request, &writer);
  WriteFramePrefix(&frame);
  return frame;
}

uint64_t RequestDigest(const Request& request) {
  std::vector<uint8_t> bytes;
  ByteWriter writer(&bytes);
  WriteQueryPortion(request, &writer);
  return Fnv1a64(bytes.data(), bytes.size());
}

StatusOr<Request> DecodeRequestBody(std::span<const uint8_t> body) {
  ByteReader reader(body.data(), body.size(), ByteReader::OnError::kRecord);
  Request request;
  request.request_id = reader.Read<uint64_t>();
  const uint8_t kind_byte = reader.Read<uint8_t>();
  if (!reader.ok()) {
    return Status::Truncated("request body ends before the query kind");
  }
  if (kind_byte > kMaxQueryKind) {
    return Status::Corruption("unknown query kind " +
                              std::to_string(kind_byte));
  }
  request.kind = static_cast<QueryKind>(kind_byte);
  switch (request.kind) {
    case QueryKind::kPing:
      break;
    case QueryKind::kCount:
    case QueryKind::kSelect: {
      request.table = reader.ReadString();
      request.column = reader.ReadString();
      const uint8_t op_byte = reader.Read<uint8_t>();
      if (reader.ok() && op_byte > kMaxPredicateOp) {
        return Status::Corruption("unknown predicate op " +
                                  std::to_string(op_byte));
      }
      request.op = static_cast<PredicateOp>(op_byte);
      request.value = reader.ReadString();
      if (request.op == PredicateOp::kBetween) {
        request.value2 = reader.ReadString();
      }
      if (request.kind == QueryKind::kSelect) {
        request.limit = reader.Read<uint64_t>();
      }
      break;
    }
    case QueryKind::kExtract:
      request.table = reader.ReadString();
      request.column = reader.ReadString();
      request.row = reader.Read<uint64_t>();
      break;
    case QueryKind::kLocate:
      request.table = reader.ReadString();
      request.column = reader.ReadString();
      request.value = reader.ReadString();
      break;
    case QueryKind::kTableStats:
      request.table = reader.ReadString();
      break;
    case QueryKind::kTpch:
      request.tpch_query = reader.Read<uint32_t>();
      break;
  }
  if (!reader.ok()) {
    return Status::Truncated("request body truncated");
  }
  if (!reader.exhausted()) {
    return Status::Corruption("request body has trailing bytes");
  }
  return request;
}

std::vector<uint8_t> EncodeQueryResult(const QueryResult& result) {
  std::vector<uint8_t> payload;
  ByteWriter writer(&payload);
  writer.Write<uint32_t>(static_cast<uint32_t>(result.column_names.size()));
  for (const std::string& name : result.column_names) {
    writer.WriteString(name);
  }
  writer.Write<uint64_t>(result.rows.size());
  for (const std::vector<std::string>& row : result.rows) {
    for (const std::string& cell : row) writer.WriteString(cell);
  }
  return payload;
}

std::vector<uint8_t> EncodeResponseFromPayload(
    uint64_t request_id, bool cache_hit, std::span<const uint8_t> payload) {
  std::vector<uint8_t> frame;
  ByteWriter writer(&frame);
  writer.Write<uint32_t>(0);  // placeholder length prefix
  writer.Write<uint64_t>(request_id);
  writer.Write<uint8_t>(static_cast<uint8_t>(StatusCode::kOk));
  writer.Write<uint8_t>(cache_hit ? kResponseFlagCacheHit : 0);
  writer.WriteBytes(payload.data(), payload.size());
  WriteFramePrefix(&frame);
  return frame;
}

std::vector<uint8_t> EncodeResponse(const Response& response) {
  if (response.status == StatusCode::kOk) {
    const std::vector<uint8_t> payload = EncodeQueryResult(response.result);
    return EncodeResponseFromPayload(response.request_id, response.cache_hit,
                                     payload);
  }
  std::vector<uint8_t> frame;
  ByteWriter writer(&frame);
  writer.Write<uint32_t>(0);  // placeholder length prefix
  writer.Write<uint64_t>(response.request_id);
  writer.Write<uint8_t>(static_cast<uint8_t>(response.status));
  writer.Write<uint8_t>(0);
  writer.WriteString(response.error_message);
  WriteFramePrefix(&frame);
  return frame;
}

StatusOr<Response> DecodeResponseBody(std::span<const uint8_t> body) {
  ByteReader reader(body.data(), body.size(), ByteReader::OnError::kRecord);
  Response response;
  response.request_id = reader.Read<uint64_t>();
  const uint8_t status_byte = reader.Read<uint8_t>();
  const uint8_t flags = reader.Read<uint8_t>();
  if (!reader.ok()) {
    return Status::Truncated("response body ends before the status");
  }
  if (status_byte > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Status::Corruption("unknown status code " +
                              std::to_string(status_byte));
  }
  response.status = static_cast<StatusCode>(status_byte);
  response.cache_hit = (flags & kResponseFlagCacheHit) != 0;
  if (response.status != StatusCode::kOk) {
    response.error_message = reader.ReadString();
  } else {
    const uint32_t num_columns = reader.Read<uint32_t>();
    // Every column name costs at least its u64 length prefix, so a lying
    // column count cannot provoke a huge reserve.
    if (!reader.ok() ||
        num_columns > reader.remaining() / sizeof(uint64_t)) {
      return Status::Truncated("response column names truncated");
    }
    response.result.column_names.reserve(num_columns);
    for (uint32_t i = 0; i < num_columns; ++i) {
      response.result.column_names.push_back(reader.ReadString());
    }
    const uint64_t num_rows = reader.Read<uint64_t>();
    if (!reader.ok() ||
        num_rows > reader.remaining() /
                       (num_columns == 0 ? 1 : num_columns * sizeof(uint64_t))) {
      return Status::Truncated("response rows truncated");
    }
    response.result.rows.reserve(num_rows);
    for (uint64_t r = 0; r < num_rows && reader.ok(); ++r) {
      std::vector<std::string> row;
      row.reserve(num_columns);
      for (uint32_t c = 0; c < num_columns; ++c) {
        row.push_back(reader.ReadString());
      }
      response.result.rows.push_back(std::move(row));
    }
  }
  if (!reader.ok()) {
    return Status::Truncated("response body truncated");
  }
  if (!reader.exhausted()) {
    return Status::Corruption("response body has trailing bytes");
  }
  return response;
}

}  // namespace adict
