// Long-lived TCP query server: the network serving front-end of the store.
//
// Speaks the length-prefixed binary protocol of server/protocol.h. One
// dedicated thread accepts (util/net.h, bounded backlog); each accepted
// connection gets its own handler thread that decodes frames and executes
// requests against pinned column snapshots (Table::SnapshotStrings), so
// serving never blocks a delta merge and a merge never blocks serving. The
// heavy lifting inside a request — predicate scans, TPC-H plans — fans out
// onto the shared ThreadPool through the engine's morsel-parallel drivers
// (engine/parallel.h); connection threads are deliberately *not* pool
// lanes, because a persistent connection would pin a lane and request
// execution itself needs the pool (nested ParallelFor from a lane is
// outside the pool's contract).
//
// In front of execution sits the epoch-invalidated ResultCache
// (server/result_cache.h): a request's FNV-1a digest is looked up first,
// and a hit returns the cached serialized result without touching the
// engine. Executions record the (column, epoch) set they read; any publish
// invalidates dependent entries, so a cached result is never served across
// an epoch boundary.
//
// Admission control, all with clean RESOURCE_EXHAUSTED (429-style)
// rejections rather than dropped connections mid-frame:
//   - listen backlog caps the kernel-side accept queue,
//   - max_connections caps handler threads (excess connections get one
//     rejection response, then close),
//   - max_inflight caps concurrently executing queries,
//   - max_requests_per_connection caps how long one client can hold a
//     handler thread.
//
// Observability: server.* metrics (docs/serving.md#metrics), a span per
// request, and per-query attribution via obs::ScopedQueryProfile so
// /profile.json shows network traffic next to in-process drivers.
#ifndef ADICT_SERVER_QUERY_SERVER_H_
#define ADICT_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/protocol.h"
#include "server/result_cache.h"
#include "util/lock_rank.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace adict {

class Table;
struct TpchDatabase;
class RecompressionScheduler;

class QueryServer {
 public:
  struct Options {
    /// TCP port; 0 picks an ephemeral port (read it back with port()).
    int port = 0;
    /// Bind address; loopback by default (see util/net.h).
    std::string bind_address = "127.0.0.1";
    /// Kernel accept backlog (admission control, outermost ring).
    int backlog = 64;
    /// Handler threads; excess connections are rejected with one
    /// RESOURCE_EXHAUSTED response.
    int max_connections = 64;
    /// Queries executing concurrently; excess requests are rejected with
    /// RESOURCE_EXHAUSTED instead of queueing unboundedly.
    int max_inflight = 32;
    /// Requests one connection may issue before being rejected + closed;
    /// 0 means unlimited.
    uint64_t max_requests_per_connection = 0;
    /// Result cache budget in bytes; 0 disables caching.
    size_t cache_bytes = 8u << 20;
    /// Test hook: holds each execution inside its in-flight slot for this
    /// long, so admission and drain tests are deterministic.
    uint64_t execute_stall_ms = 0;
  };

  /// Options with the environment knobs applied: ADICT_SERVE_PORT,
  /// ADICT_SERVE_MAX_INFLIGHT, ADICT_CACHE_BYTES (docs/serving.md#knobs).
  static Options OptionsFromEnv();

  /// Monotonic counters, readable any time (tests assert on these even
  /// with obs disabled).
  struct Stats {
    uint64_t connections = 0;           ///< accepted and served
    uint64_t rejected_connections = 0;  ///< over max_connections
    uint64_t requests = 0;              ///< well-formed frames decoded
    uint64_t executed = 0;              ///< requests that ran the engine
    uint64_t rejected_requests = 0;     ///< admission-control rejections
    uint64_t error_responses = 0;       ///< non-OK responses sent
    uint64_t frame_errors = 0;          ///< malformed/oversized/truncated
  };

  explicit QueryServer(Options options);
  QueryServer() : QueryServer(Options()) {}
  /// Stops the server if still running.
  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Exposes a table to kCount/kSelect/kExtract/kLocate/kTableStats
  /// requests under its own name. The table must outlive the server.
  /// Register before Start().
  void RegisterTable(Table* table);

  /// Registers all eight TPC-H tables and enables kTpch requests against
  /// `db`. The database must outlive the server. Register before Start().
  void ServeTpch(const TpchDatabase* db);

  /// Binds, listens, starts the accept thread. Fails (never aborts) on
  /// socket errors — a busy port must not take the store down.
  Status Start();

  /// Stops accepting, wakes every connection handler, drains in-flight
  /// requests (a request being executed finishes and its response is sent),
  /// joins all threads. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolved after Start() when Options::port was 0).
  int port() const { return port_.load(std::memory_order_acquire); }

  Stats stats() const;
  ResultCache& cache() { return cache_; }
  const Options& options() const { return options_; }

  /// Wires the scheduler's pressure hook to flush the result cache when
  /// pressure reaches urgent (docs/serving.md#memory-pressure). The server
  /// must outlive the scheduler's sample stream.
  void AttachPressureFlush(RecompressionScheduler* scheduler);

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Decodes and answers one frame; returns false when the connection is
  /// done (clean close, frame error, or request cap).
  bool HandleFrame(int fd, uint64_t* requests_served);
  Response Execute(const Request& request,
                   std::vector<CacheDependency>* deps);
  Response ExecuteTableQuery(const Request& request,
                             std::vector<CacheDependency>* deps);

  const Options options_;
  ResultCache cache_;
  std::unordered_map<std::string, Table*> tables_;
  const TpchDatabase* tpch_db_ = nullptr;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<int> port_{0};
  int listen_fd_ = -1;
  std::thread accept_thread_;

  std::atomic<int> inflight_{0};

  // Counters behind stats(); relaxed — they only feed assertions and
  // metrics, never control flow across threads.
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> rejected_connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> rejected_requests_{0};
  std::atomic<uint64_t> error_responses_{0};
  std::atomic<uint64_t> frame_errors_{0};

  // Connection-handler drain (same discipline as the HTTP exporter):
  // handler threads are detached, and Stop() waits for the count to reach
  // zero after setting the stop flag (which every handler's RecvExact
  // polls).
  MutexCv drain_mutex_{LockRank::kServerDrain, "QueryServer.drain_mutex_"};
  int active_connections_ ADICT_GUARDED_BY(drain_mutex_) = 0;
};

}  // namespace adict

#endif  // ADICT_SERVER_QUERY_SERVER_H_
