#include "server/result_cache.h"

#include <utility>

#include "obs/obs.h"
#include "store/string_column.h"

namespace adict {
namespace {

/// Fixed bookkeeping charged per entry on top of the payload, so a flood of
/// tiny results still respects the byte budget.
constexpr size_t kEntryOverheadBytes = 64;

void CountCacheEvent(const char* name, const char* help, uint64_t n = 1) {
  if (!obs::Enabled() || n == 0) return;
  obs::Metrics().GetCounter(name, "events", help)->Increment(n);
}

}  // namespace

ResultCache::ResultCache(Options options) : options_(options) {}

size_t ResultCache::EntryCost(const Entry& entry) {
  return entry.payload.size() +
         entry.deps.size() * sizeof(CacheDependency) + kEntryOverheadBytes;
}

bool ResultCache::Fresh(const Entry& entry) {
  for (const CacheDependency& dep : entry.deps) {
    if (dep.column->epoch() != dep.epoch) return false;
  }
  return true;
}

void ResultCache::EraseLocked(std::list<Entry>::iterator it) {
  bytes_ -= it->cost;
  index_.erase(it->digest);
  lru_.erase(it);
}

void ResultCache::PublishOccupancyMetrics() {
  if (!obs::Enabled()) return;
  static obs::Gauge* bytes = obs::Metrics().GetGauge(
      "server.cache.bytes", "bytes", "result cache occupancy in bytes");
  static obs::Gauge* entries = obs::Metrics().GetGauge(
      "server.cache.entries", "entries", "result cache entry count");
  bytes->Set(static_cast<double>(bytes_));
  entries->Set(static_cast<double>(lru_.size()));
}

std::optional<std::vector<uint8_t>> ResultCache::Lookup(uint64_t digest) {
  MutexLock lock(&mutex_);
  const auto it = index_.find(digest);
  if (it == index_.end()) {
    ++stats_.misses;
    CountCacheEvent("server.cache.miss", "result cache misses");
    return std::nullopt;
  }
  if (!Fresh(*it->second)) {
    // A dependency's column was republished since this result was computed
    // (delta merge or format change): the entry is stale, drop it. This is
    // the invalidation-on-epoch-advance guarantee.
    EraseLocked(it->second);
    ++stats_.stale_evictions;
    ++stats_.misses;
    CountCacheEvent("server.cache.evict.stale",
                    "result cache entries dropped on epoch mismatch");
    CountCacheEvent("server.cache.miss", "result cache misses");
    PublishOccupancyMetrics();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++stats_.hits;
  CountCacheEvent("server.cache.hit", "result cache hits");
  return it->second->payload;
}

void ResultCache::Insert(uint64_t digest, std::vector<uint8_t> payload,
                         std::vector<CacheDependency> deps) {
  if (!enabled()) return;
  Entry entry;
  entry.digest = digest;
  entry.payload = std::move(payload);
  entry.deps = std::move(deps);
  entry.cost = EntryCost(entry);
  if (entry.cost > options_.max_bytes) return;  // would never fit

  MutexLock lock(&mutex_);
  const auto it = index_.find(digest);
  if (it != index_.end()) EraseLocked(it->second);
  uint64_t evicted = 0;
  while (!lru_.empty() && bytes_ + entry.cost > options_.max_bytes) {
    EraseLocked(std::prev(lru_.end()));
    ++stats_.lru_evictions;
    ++evicted;
  }
  bytes_ += entry.cost;
  lru_.push_front(std::move(entry));
  index_[digest] = lru_.begin();
  ++stats_.inserts;
  CountCacheEvent("server.cache.evict.lru",
                  "result cache entries evicted to fit the byte budget",
                  evicted);
  CountCacheEvent("server.cache.insert", "result cache insertions");
  PublishOccupancyMetrics();
}

void ResultCache::Flush() {
  MutexLock lock(&mutex_);
  const uint64_t dropped = lru_.size();
  stats_.flushes += dropped;
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  CountCacheEvent("server.cache.flush",
                  "result cache entries dropped by pressure flushes",
                  dropped);
  PublishOccupancyMetrics();
}

ResultCache::Stats ResultCache::stats() const {
  MutexLock lock(&mutex_);
  Stats stats = stats_;
  stats.bytes = bytes_;
  stats.entries = lru_.size();
  return stats;
}

}  // namespace adict
