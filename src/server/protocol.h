// Wire protocol of the binary query server: length-prefixed frames, a
// Status-based decoder, and the FNV-1a query digest the result cache keys
// on.
//
// Frame layout (all integers little-endian, docs/serving.md#frame-layout):
//
//   uint32 body_length                  <= kMaxFrameBytes
//   body:
//     uint64 request_id                 echoed verbatim in the response
//     uint8  query_kind                 QueryKind below
//     params                            kind-specific, see EncodeRequest
//
// Responses mirror the shape:
//
//   uint32 body_length
//   body:
//     uint64 request_id
//     uint8  status_code                StatusCode; 0 = OK
//     uint8  flags                      bit 0: served from the result cache
//     if status != OK: string error_message
//     else:            serialized QueryResult (column names + rows)
//
// Strings use the u64-length-prefix convention of util/serde.h so the
// decoder is the hardened ByteReader in kRecord mode: a lying length
// prefix, a truncated body, or a flipped byte marks the reader failed and
// surfaces as a Status — never a crash or an over-read
// (tests/protocol_fuzz_test.cc).
#ifndef ADICT_SERVER_PROTOCOL_H_
#define ADICT_SERVER_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/result.h"
#include "util/status.h"

namespace adict {

/// Frames whose length prefix exceeds this are rejected before any
/// allocation — a four-byte lie must not provoke a 4 GiB resize.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

/// What a request asks the server to run (docs/serving.md#query-kinds).
enum class QueryKind : uint8_t {
  kPing = 0,        ///< liveness + build version; no params
  kCount = 1,       ///< predicate count: table, column, predicate
  kSelect = 2,      ///< predicate select: table, column, predicate, limit
  kExtract = 3,     ///< one row's value: table, column, row
  kLocate = 4,      ///< dictionary locate: table, column, value
  kTableStats = 5,  ///< row/column/byte counts: table
  kTpch = 6,        ///< full TPC-H query 1..22: tpch_query
};
inline constexpr uint8_t kMaxQueryKind = 6;

/// Predicate operator for kCount / kSelect.
enum class PredicateOp : uint8_t {
  kEq = 0,       ///< column = value
  kPrefix = 1,   ///< column LIKE 'value%'
  kBetween = 2,  ///< value <= column <= value2
  kContains = 3, ///< column LIKE '%value%' (full dictionary scan)
};
inline constexpr uint8_t kMaxPredicateOp = 3;

/// A decoded request. Fields beyond what the kind uses stay defaulted and
/// are not encoded on the wire.
struct Request {
  uint64_t request_id = 0;
  QueryKind kind = QueryKind::kPing;
  std::string table;
  std::string column;
  PredicateOp op = PredicateOp::kEq;
  std::string value;
  std::string value2;   // kBetween upper bound
  uint64_t row = 0;     // kExtract
  uint64_t limit = 0;   // kSelect; 0 = count only
  uint32_t tpch_query = 0;  // kTpch, 1..22
};

/// Response flag bits.
inline constexpr uint8_t kResponseFlagCacheHit = 1u << 0;

struct Response {
  uint64_t request_id = 0;
  StatusCode status = StatusCode::kOk;
  bool cache_hit = false;
  std::string error_message;  // non-OK only
  QueryResult result;         // OK only
};

/// 64-bit FNV-1a, the result cache's query digest (keyed like proxysql's
/// `umap_query_digest`: digest -> cached result).
inline uint64_t Fnv1a64(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// Encodes a full request frame (length prefix + body).
std::vector<uint8_t> EncodeRequest(const Request& request);

/// Decodes a request frame body (the bytes after the length prefix).
/// Returns a Status on any structural problem: truncation, trailing
/// garbage, unknown query kind or predicate op.
StatusOr<Request> DecodeRequestBody(std::span<const uint8_t> body);

/// Digest over the body's query portion — everything after the request id —
/// so retries and distinct clients issuing the identical query share one
/// cache entry while their request ids differ.
uint64_t RequestDigest(const Request& request);

/// Encodes a full response frame (length prefix + body). For OK responses
/// the result payload may be pre-serialized (cache path); use
/// EncodeQueryResult + EncodeResponsePayload for that split.
std::vector<uint8_t> EncodeResponse(const Response& response);

/// Serializes just the QueryResult payload — the unit the result cache
/// stores, independent of request id and flags.
std::vector<uint8_t> EncodeQueryResult(const QueryResult& result);

/// Wraps an already-serialized OK payload in a response frame with this
/// request's id and flags (the cache-hit path: no re-serialization).
std::vector<uint8_t> EncodeResponseFromPayload(
    uint64_t request_id, bool cache_hit, std::span<const uint8_t> payload);

/// Decodes a response frame body. Tolerates nothing: same hardening as
/// DecodeRequestBody.
StatusOr<Response> DecodeResponseBody(std::span<const uint8_t> body);

}  // namespace adict

#endif  // ADICT_SERVER_PROTOCOL_H_
