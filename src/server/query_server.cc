#include "server/query_server.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "core/recompression_scheduler.h"
#include "engine/predicates.h"
#include "engine/scan.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "obs/workload_profiler.h"
#include "store/table.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "util/net.h"
#include "util/thread_pool.h"

namespace adict {
namespace {

std::string_view QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPing:
      return "ping";
    case QueryKind::kCount:
      return "count";
    case QueryKind::kSelect:
      return "select";
    case QueryKind::kExtract:
      return "extract";
    case QueryKind::kLocate:
      return "locate";
    case QueryKind::kTableStats:
      return "table_stats";
    case QueryKind::kTpch:
      return "tpch";
  }
  return "unknown";
}

Response ErrorResponse(uint64_t request_id, StatusCode code,
                       std::string message) {
  Response response;
  response.request_id = request_id;
  response.status = code;
  response.error_message = std::move(message);
  return response;
}

/// Parses a non-negative integer environment variable; `fallback` when
/// unset, empty, or unparsable.
uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<uint64_t>(value);
}

void CountServerEvent(const char* name, const char* help, uint64_t n = 1) {
  if (!obs::Enabled() || n == 0) return;
  obs::Metrics().GetCounter(name, "events", help)->Increment(n);
}

}  // namespace

QueryServer::Options QueryServer::OptionsFromEnv() {
  Options options;
  options.port = static_cast<int>(EnvU64("ADICT_SERVE_PORT", 0));
  options.max_inflight = static_cast<int>(
      EnvU64("ADICT_SERVE_MAX_INFLIGHT",
             static_cast<uint64_t>(options.max_inflight)));
  options.cache_bytes = static_cast<size_t>(
      EnvU64("ADICT_CACHE_BYTES", options.cache_bytes));
  return options;
}

QueryServer::QueryServer(Options options)
    : options_(std::move(options)),
      cache_(ResultCache::Options{options_.cache_bytes}) {}

QueryServer::~QueryServer() { Stop(); }

void QueryServer::RegisterTable(Table* table) {
  tables_[table->name()] = table;
}

void QueryServer::ServeTpch(const TpchDatabase* db) {
  tpch_db_ = db;
  // const_cast-free registration: the database owns its tables mutably in
  // every real deployment; serving only reads snapshots.
  auto* mutable_db = const_cast<TpchDatabase*>(db);
  for (Table* table : mutable_db->tables()) RegisterTable(table);
}

Status QueryServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("query server already running");
  }
  ListenOptions listen_options;
  listen_options.port = options_.port;
  listen_options.bind_address = options_.bind_address;
  listen_options.backlog = options_.backlog;
  StatusOr<ListenSocket> socket = OpenListenSocket(listen_options);
  if (!socket.ok()) return socket.status();
  port_.store(socket->port, std::memory_order_release);

  listen_fd_ = socket->fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void QueryServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Drain: every handler's RecvExact polls the stop flag; a request that
    // is already executing finishes and its response is sent before the
    // handler exits (the shutdown test proves the client still gets it).
    MutexLock lock(&drain_mutex_);
    drain_mutex_.Await([this]() ADICT_CV_PREDICATE {
      // active_connections_ is guarded by drain_mutex_, held via Await.
      return active_connections_ == 0;
    });
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

QueryServer::Stats QueryServer::stats() const {
  Stats stats;
  stats.connections = connections_.load(std::memory_order_relaxed);
  stats.rejected_connections =
      rejected_connections_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.rejected_requests =
      rejected_requests_.load(std::memory_order_relaxed);
  stats.error_responses = error_responses_.load(std::memory_order_relaxed);
  stats.frame_errors = frame_errors_.load(std::memory_order_relaxed);
  return stats;
}

void QueryServer::AttachPressureFlush(RecompressionScheduler* scheduler) {
  scheduler->SetPressureHook([this](PressureLevel level) {
    if (level >= PressureLevel::kUrgent) cache_.Flush();
  });
}

void QueryServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    // Bounded wait so the stop flag is re-checked every slice.
    const int client = AcceptWithTimeout(listen_fd_, /*timeout_ms=*/100);
    if (client < 0) continue;
    bool admitted = false;
    {
      MutexLock lock(&drain_mutex_);
      if (active_connections_ < options_.max_connections) {
        ++active_connections_;
        admitted = true;
      }
    }
    if (!admitted) {
      // Clean 429-style rejection: one response frame, then close, so the
      // client sees "overloaded" instead of a reset mid-handshake.
      rejected_connections_.fetch_add(1, std::memory_order_relaxed);
      CountServerEvent("server.connections.rejected",
                       "connections rejected over the connection cap");
      const std::vector<uint8_t> frame = EncodeResponse(ErrorResponse(
          0, StatusCode::kResourceExhausted, "connection limit reached"));
      SendAll(client, std::string_view(
                          reinterpret_cast<const char*>(frame.data()),
                          frame.size()));
      ::close(client);
      continue;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    CountServerEvent("server.connections.accepted",
                     "connections accepted and served");
    std::thread([this, client] {
      HandleConnection(client);
      MutexLock lock(&drain_mutex_);
      if (--active_connections_ == 0) drain_mutex_.NotifyAll();
    }).detach();
  }
}

void QueryServer::HandleConnection(int fd) {
  if (obs::Enabled()) {
    static obs::Gauge* active = obs::Metrics().GetGauge(
        "server.connections.active", "connections",
        "query-server connections currently open");
    MutexLock lock(&drain_mutex_);
    active->Set(static_cast<double>(active_connections_));
  }
  uint64_t requests_served = 0;
  while (HandleFrame(fd, &requests_served)) {
  }
  ::close(fd);
}

bool QueryServer::HandleFrame(int fd, uint64_t* requests_served) {
  // --- Framing: 4-byte length prefix, then exactly that many body bytes.
  uint8_t prefix[sizeof(uint32_t)];
  const RecvResult prefix_result =
      RecvExact(fd, prefix, sizeof(prefix), &stop_, /*idle_timeout_ms=*/0);
  if (prefix_result == RecvResult::kClosed ||
      prefix_result == RecvResult::kStopped) {
    return false;  // clean end of connection / shutdown
  }
  if (prefix_result != RecvResult::kOk) {
    // Disconnect mid-prefix: the frame is broken, nothing to answer.
    frame_errors_.fetch_add(1, std::memory_order_relaxed);
    CountServerEvent("server.frame.errors",
                     "malformed, oversized, or truncated request frames");
    return false;
  }
  uint32_t body_length = 0;
  std::memcpy(&body_length, prefix, sizeof(body_length));
  if (body_length > kMaxFrameBytes) {
    // A lying length prefix must not provoke a giant allocation; answer
    // once, then close (the stream cannot be re-synchronized).
    frame_errors_.fetch_add(1, std::memory_order_relaxed);
    CountServerEvent("server.frame.errors",
                     "malformed, oversized, or truncated request frames");
    const std::vector<uint8_t> frame = EncodeResponse(ErrorResponse(
        0, StatusCode::kResourceExhausted,
        "frame length " + std::to_string(body_length) + " exceeds limit " +
            std::to_string(kMaxFrameBytes)));
    SendAll(fd, std::string_view(reinterpret_cast<const char*>(frame.data()),
                                 frame.size()));
    return false;
  }
  std::vector<uint8_t> body(body_length);
  if (body_length > 0) {
    const RecvResult body_result = RecvExact(fd, body.data(), body.size(),
                                             &stop_, /*idle_timeout_ms=*/10000);
    if (body_result == RecvResult::kStopped) return false;
    if (body_result != RecvResult::kOk) {
      // Truncated body / disconnect mid-request: the peer is gone or lying.
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      CountServerEvent("server.frame.errors",
                       "malformed, oversized, or truncated request frames");
      return false;
    }
  }

  ADICT_TRACE_SPAN("server.request");
  obs::Histogram* latency = nullptr;
  if (obs::Enabled()) {
    static obs::Counter* request_count = obs::Metrics().GetCounter(
        "server.requests", "requests", "query-server frames decoded");
    request_count->Increment();
    static obs::Histogram* histogram = obs::Metrics().GetHistogram(
        "server.request.us", {}, "us",
        "query-server request latency (decode through response)");
    latency = histogram;
    static obs::Gauge* queue_depth = obs::Metrics().GetGauge(
        "server.queue_depth", "tasks",
        "shared thread-pool queue depth sampled per server request");
    queue_depth->Set(static_cast<double>(Pool().queued()));
  }
  obs::ScopedTimer timer(latency);
  requests_.fetch_add(1, std::memory_order_relaxed);

  // --- Decode. A well-framed body that fails to parse gets an error
  // response but keeps the connection (framing is still trustworthy).
  StatusOr<Request> decoded = DecodeRequestBody(body);
  if (!decoded.ok()) {
    uint64_t request_id = 0;
    if (body.size() >= sizeof(request_id)) {
      std::memcpy(&request_id, body.data(), sizeof(request_id));
    }
    frame_errors_.fetch_add(1, std::memory_order_relaxed);
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    CountServerEvent("server.frame.errors",
                     "malformed, oversized, or truncated request frames");
    CountServerEvent("server.requests.error",
                     "query-server non-OK responses");
    const std::vector<uint8_t> frame = EncodeResponse(ErrorResponse(
        request_id, decoded.status().code(), decoded.status().message()));
    SendAll(fd, std::string_view(reinterpret_cast<const char*>(frame.data()),
                                 frame.size()));
    return true;
  }
  const Request& request = *decoded;

  // --- Admission: per-connection request cap.
  if (options_.max_requests_per_connection > 0 &&
      *requests_served >= options_.max_requests_per_connection) {
    rejected_requests_.fetch_add(1, std::memory_order_relaxed);
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    CountServerEvent("server.requests.rejected",
                     "requests rejected by admission control");
    const std::vector<uint8_t> frame = EncodeResponse(ErrorResponse(
        request.request_id, StatusCode::kResourceExhausted,
        "per-connection request cap reached"));
    SendAll(fd, std::string_view(reinterpret_cast<const char*>(frame.data()),
                                 frame.size()));
    return false;
  }
  ++*requests_served;

  // --- Result cache lookup: a hit skips admission and execution entirely
  // (it holds no snapshot and runs no engine work).
  const uint64_t digest = RequestDigest(request);
  const bool cacheable = cache_.enabled() && request.kind != QueryKind::kPing;
  if (cacheable) {
    if (std::optional<std::vector<uint8_t>> payload = cache_.Lookup(digest)) {
      const std::vector<uint8_t> frame = EncodeResponseFromPayload(
          request.request_id, /*cache_hit=*/true, *payload);
      SendAll(fd, std::string_view(
                      reinterpret_cast<const char*>(frame.data()),
                      frame.size()));
      return true;
    }
  }

  // --- Admission: in-flight query cap.
  const int inflight = inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (obs::Enabled()) {
    static obs::Gauge* inflight_gauge = obs::Metrics().GetGauge(
        "server.inflight", "queries", "queries currently executing");
    inflight_gauge->Set(static_cast<double>(inflight));
  }
  if (inflight > options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_requests_.fetch_add(1, std::memory_order_relaxed);
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    CountServerEvent("server.requests.rejected",
                     "requests rejected by admission control");
    const std::vector<uint8_t> frame = EncodeResponse(ErrorResponse(
        request.request_id, StatusCode::kResourceExhausted,
        "too many in-flight queries (" +
            std::to_string(options_.max_inflight) + ")"));
    SendAll(fd, std::string_view(reinterpret_cast<const char*>(frame.data()),
                                 frame.size()));
    return true;
  }

  // --- Execute against pinned snapshots, recording epoch dependencies.
  if (options_.execute_stall_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.execute_stall_ms));
  }
  std::vector<CacheDependency> deps;
  const Response response = Execute(request, &deps);
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  executed_.fetch_add(1, std::memory_order_relaxed);

  std::vector<uint8_t> frame;
  if (response.status == StatusCode::kOk) {
    std::vector<uint8_t> payload = EncodeQueryResult(response.result);
    frame = EncodeResponseFromPayload(request.request_id,
                                      /*cache_hit=*/false, payload);
    if (cacheable) cache_.Insert(digest, std::move(payload), std::move(deps));
  } else {
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    CountServerEvent("server.requests.error",
                     "query-server non-OK responses");
    frame = EncodeResponse(response);
  }
  SendAll(fd, std::string_view(reinterpret_cast<const char*>(frame.data()),
                               frame.size()));
  if (obs::Enabled()) {
    static obs::Counter* bytes_out = obs::Metrics().GetCounter(
        "server.bytes.out", "bytes", "response bytes sent");
    bytes_out->Increment(frame.size());
    static obs::Counter* bytes_in = obs::Metrics().GetCounter(
        "server.bytes.in", "bytes", "request bytes received");
    bytes_in->Increment(sizeof(uint32_t) + body.size());
  }
  return true;
}

Response QueryServer::Execute(const Request& request,
                              std::vector<CacheDependency>* deps) {
  ADICT_TRACE_SPAN("server.execute");
  // Per-query attribution: /profile.json shows network traffic by kind
  // next to in-process drivers.
  obs::ScopedQueryProfile profile(std::string("server.") +
                                  std::string(QueryKindName(request.kind)));
  switch (request.kind) {
    case QueryKind::kPing: {
      Response response;
      response.request_id = request.request_id;
      response.result.column_names = {"pong"};
      response.result.AddRow({obs::kBuildVersion});
      return response;
    }
    case QueryKind::kTpch: {
      if (tpch_db_ == nullptr) {
        return ErrorResponse(request.request_id,
                             StatusCode::kFailedPrecondition,
                             "TPC-H serving not enabled on this server");
      }
      if (request.tpch_query < 1 ||
          request.tpch_query > static_cast<uint32_t>(kNumTpchQueries)) {
        return ErrorResponse(
            request.request_id, StatusCode::kFailedPrecondition,
            "TPC-H query " + std::to_string(request.tpch_query) +
                " out of range 1..22");
      }
      // A TPC-H plan may touch any string column of any table, so the
      // cached result conservatively depends on all of them. Epochs are
      // read before execution: a merge racing the query at worst makes the
      // entry stale immediately — never lets a stale result survive.
      for (const Table* table : tpch_db_->tables()) {
        for (size_t i = 0; i < table->num_string_columns(); ++i) {
          const VersionedStringColumn& column = table->string_column(i);
          deps->push_back({&column, column.epoch()});
        }
      }
      Response response;
      response.request_id = request.request_id;
      response.result =
          RunTpchQuery(*tpch_db_, static_cast<int>(request.tpch_query));
      return response;
    }
    default:
      return ExecuteTableQuery(request, deps);
  }
}

Response QueryServer::ExecuteTableQuery(const Request& request,
                                        std::vector<CacheDependency>* deps) {
  const auto table_it = tables_.find(request.table);
  if (table_it == tables_.end()) {
    return ErrorResponse(request.request_id, StatusCode::kFailedPrecondition,
                         "unknown table: " + request.table);
  }
  Table* table = table_it->second;

  if (request.kind == QueryKind::kTableStats) {
    for (size_t i = 0; i < table->num_string_columns(); ++i) {
      const VersionedStringColumn& column = table->string_column(i);
      deps->push_back({&column, column.epoch()});
    }
    Response response;
    response.request_id = request.request_id;
    response.result.column_names = {"table", "rows", "string_columns",
                                    "memory_bytes"};
    response.result.AddRow({table->name(), Cell(table->num_rows()),
                            Cell(static_cast<uint64_t>(
                                table->num_string_columns())),
                            Cell(static_cast<uint64_t>(table->MemoryBytes()))});
    return response;
  }

  if (!table->has_string_column(request.column)) {
    return ErrorResponse(request.request_id, StatusCode::kFailedPrecondition,
                         "unknown string column: " + request.table + "." +
                             request.column);
  }
  // Epoch before snapshot: if a publish lands in between, the recorded
  // epoch mismatches immediately and the cache entry can only be *more*
  // conservative, never stale.
  const VersionedStringColumn& versioned =
      table->versioned_strings(request.column);
  deps->push_back({&versioned, versioned.epoch()});
  const std::shared_ptr<const StringColumn> snapshot =
      table->SnapshotStrings(request.column);
  const StringColumn& column = *snapshot;

  Response response;
  response.request_id = request.request_id;
  switch (request.kind) {
    case QueryKind::kCount:
    case QueryKind::kSelect: {
      std::vector<uint32_t> rows;
      uint64_t count = 0;
      if (request.op == PredicateOp::kContains) {
        rows = SelectRows(column, ContainsIds(column, request.value));
        count = rows.size();
      } else {
        IdRange range;
        switch (request.op) {
          case PredicateOp::kEq:
            range = EqIds(column, request.value);
            break;
          case PredicateOp::kPrefix:
            range = PrefixIds(column, request.value);
            break;
          case PredicateOp::kBetween:
            range = BetweenIds(column, request.value, request.value2);
            break;
          case PredicateOp::kContains:
            break;  // handled above
        }
        if (request.kind == QueryKind::kCount) {
          count = CountRows(column, range);
        } else {
          rows = SelectRows(column, range);
          count = rows.size();
        }
      }
      if (request.kind == QueryKind::kCount) {
        response.result.column_names = {"count"};
        response.result.AddRow({Cell(count)});
      } else {
        response.result.column_names = {"row", "value"};
        const uint64_t limit =
            std::min<uint64_t>(request.limit, rows.size());
        for (uint64_t i = 0; i < limit; ++i) {
          response.result.AddRow({Cell(static_cast<uint64_t>(rows[i])),
                                  column.GetValue(rows[i])});
        }
      }
      return response;
    }
    case QueryKind::kExtract: {
      if (request.row >= column.num_rows()) {
        return ErrorResponse(
            request.request_id, StatusCode::kFailedPrecondition,
            "row " + std::to_string(request.row) + " out of range (" +
                std::to_string(column.num_rows()) + " rows)");
      }
      response.result.column_names = {"value"};
      response.result.AddRow({column.GetValue(request.row)});
      return response;
    }
    case QueryKind::kLocate: {
      const LocateResult located = column.Locate(request.value);
      response.result.column_names = {"id", "found"};
      response.result.AddRow({Cell(static_cast<uint64_t>(located.id)),
                              located.found ? "1" : "0"});
      return response;
    }
    default:
      return ErrorResponse(request.request_id, StatusCode::kInternal,
                           "unhandled query kind");
  }
}

}  // namespace adict
