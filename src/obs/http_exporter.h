// Dependency-free HTTP/1.1 stats server: the live exposition plane.
//
// Everything the obs layer collects — the Prometheus text exposition, the
// decision log, recent trace spans, and the workload profiler's per-column
// heat and per-query attribution — was previously report-at-shutdown only.
// The exporter serves it live so a Prometheus scraper (or a plain curl) can
// watch the adaptive loop run:
//
//   GET  /metrics         0.0.4 text exposition (export.h), heat gauges
//                         refreshed before each scrape
//   GET  /decisions.json  DecisionLog ring + predicted-vs-actual accuracy
//   GET  /spans.json      bounded snapshot of recent completed spans
//                         (Chrome trace_event JSON)
//   GET  /profile.json    workload profiler: per-column heat + latency
//                         quantiles, per-query attribution, the
//                         recompression scheduler's latest ranking
//   GET  /healthz         liveness probe, "ok"
//   POST /trace/start     clears the tracer and enables span recording
//   POST /trace/stop      disables recording; ?out=FILE writes Chrome
//                         trace JSON to FILE, otherwise the JSON is the
//                         response body
//
// Design constraints, in order:
//   1. No third-party dependency: raw POSIX sockets, a minimal request
//      parser (method + target + headers, bounded at 8 KiB), one response
//      per connection (Connection: close).
//   2. The accept loop runs on a dedicated thread; each accepted
//      connection is handled on the shared ThreadPool (util/thread_pool.h)
//      so a slow client never blocks accepting, and a pool of parallelism
//      1 degrades to serving inline.
//   3. Stop() is clean under load: the accept loop polls a stop flag, no
//      new connections are taken, and in-flight handlers are drained
//      before Stop returns (the shutdown test exercises this with
//      concurrent requests).
//
// docs/observability.md#http-endpoints documents every route; the
// endpoint<->docs sync is linted (tools/adict_lint.py, check `endpoints`).
#ifndef ADICT_OBS_HTTP_EXPORTER_H_
#define ADICT_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "util/lock_rank.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace adict {
namespace obs {

class HttpExporter {
 public:
  struct Options {
    /// TCP port to listen on; 0 picks an ephemeral port (read it back with
    /// port() — tests use this to avoid collisions).
    int port = 0;
    /// Bind address. The default only accepts loopback connections; bind
    /// "0.0.0.0" deliberately to expose the stats to the network.
    std::string bind_address = "127.0.0.1";
    int backlog = 16;
  };

  explicit HttpExporter(Options options);
  HttpExporter() : HttpExporter(Options()) {}
  /// Stops the server if still running.
  ~HttpExporter();
  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds, listens, and starts the accept thread. Fails (never aborts) on
  /// socket errors — a busy port must not take the store down.
  Status Start();

  /// Stops accepting, drains in-flight request handlers, joins the accept
  /// thread. Idempotent; safe to call while requests are being served.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolved after Start() when Options::port was 0).
  int port() const { return port_.load(std::memory_order_acquire); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  const Options options_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<int> port_{0};
  int listen_fd_ = -1;
  std::thread accept_thread_;

  // In-flight handler drain (same discipline as the recompression
  // scheduler).
  MutexCv drain_mutex_{LockRank::kExporterDrain, "HttpExporter.drain_mutex_"};
  int active_handlers_ ADICT_GUARDED_BY(drain_mutex_) = 0;
};

}  // namespace obs
}  // namespace adict

#endif  // ADICT_OBS_HTTP_EXPORTER_H_
