#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace adict {
namespace obs {
namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char ch : s) {
    switch (ch) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          Appendf(out, "\\u%04x", ch);
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string MetricsToText(const MetricsRegistry& registry) {
  std::string out;
  out.append("metrics:\n");
  for (const MetricsRegistry::Entry* entry : registry.Entries()) {
    switch (entry->type) {
      case MetricType::kCounter:
        Appendf(&out, "  %-32s counter    %12" PRIu64 " %s\n",
                entry->name.c_str(), entry->counter->value(),
                entry->unit.c_str());
        break;
      case MetricType::kGauge:
        Appendf(&out, "  %-32s gauge      %12.4f %s\n", entry->name.c_str(),
                entry->gauge->value(), entry->unit.c_str());
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *entry->histogram;
        Appendf(&out,
                "  %-32s histogram  %12" PRIu64 " obs, mean %.1f %s:",
                entry->name.c_str(), h.count(), h.mean(), entry->unit.c_str());
        const std::vector<uint64_t> counts = h.bucket_counts();
        for (size_t i = 0; i < counts.size(); ++i) {
          if (counts[i] == 0) continue;
          if (i < h.bounds().size()) {
            Appendf(&out, " <=%g:%" PRIu64, h.bounds()[i], counts[i]);
          } else {
            Appendf(&out, " inf:%" PRIu64, counts[i]);
          }
        }
        out.push_back('\n');
        break;
      }
    }
  }
  return out;
}

std::string MetricsToJson(const MetricsRegistry& registry) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricsRegistry::Entry* entry : registry.Entries()) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, entry->name);
    out.append(",\"type\":");
    AppendJsonString(&out, MetricTypeName(entry->type));
    out.append(",\"unit\":");
    AppendJsonString(&out, entry->unit);
    switch (entry->type) {
      case MetricType::kCounter:
        Appendf(&out, ",\"value\":%" PRIu64, entry->counter->value());
        break;
      case MetricType::kGauge:
        Appendf(&out, ",\"value\":%.17g", entry->gauge->value());
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *entry->histogram;
        Appendf(&out, ",\"count\":%" PRIu64 ",\"sum\":%.17g,\"buckets\":[",
                h.count(), h.sum());
        const std::vector<uint64_t> counts = h.bucket_counts();
        for (size_t i = 0; i < counts.size(); ++i) {
          if (i > 0) out.push_back(',');
          Appendf(&out, "%" PRIu64, counts[i]);
        }
        out.append("],\"bounds\":[");
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          if (i > 0) out.push_back(',');
          Appendf(&out, "%g", h.bounds()[i]);
        }
        out.push_back(']');
        break;
      }
    }
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:] with a non-digit first char.
std::string SanitizePrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char ch : name) {
    const bool valid = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                       (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    out.push_back(valid ? ch : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

// HELP text: the exposition format escapes backslash and newline.
void AppendPrometheusHelp(std::string* out, std::string_view help) {
  for (char ch : help) {
    if (ch == '\\') {
      out->append("\\\\");
    } else if (ch == '\n') {
      out->append("\\n");
    } else {
      out->push_back(ch);
    }
  }
}

}  // namespace

std::string ExportPrometheusText(const MetricsRegistry& registry) {
  std::string out;
  for (const MetricsRegistry::Entry* entry : registry.Entries()) {
    const std::string name = SanitizePrometheusName(entry->name);
    if (!entry->help.empty()) {
      Appendf(&out, "# HELP %s ", name.c_str());
      AppendPrometheusHelp(&out, entry->help);
      out.push_back('\n');
    }
    // Constant labels are fixed at registration (Entry::labels) and apply
    // to scalar samples; histogram series already carry their `le` label.
    std::string labeled = name;
    if (!entry->labels.empty() && entry->type != MetricType::kHistogram) {
      labeled += "{" + entry->labels + "}";
    }
    switch (entry->type) {
      case MetricType::kCounter:
        Appendf(&out, "# TYPE %s counter\n", name.c_str());
        Appendf(&out, "%s %" PRIu64 "\n", labeled.c_str(),
                entry->counter->value());
        break;
      case MetricType::kGauge:
        Appendf(&out, "# TYPE %s gauge\n", name.c_str());
        Appendf(&out, "%s %.17g\n", labeled.c_str(), entry->gauge->value());
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *entry->histogram;
        Appendf(&out, "# TYPE %s histogram\n", name.c_str());
        const std::vector<uint64_t> counts = h.bucket_counts();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += counts[i];
          Appendf(&out, "%s_bucket{le=\"%g\"} %" PRIu64 "\n", name.c_str(),
                  h.bounds()[i], cumulative);
        }
        cumulative += counts.empty() ? 0 : counts.back();
        Appendf(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(),
                cumulative);
        // _count comes from the same counts snapshot as the buckets so one
        // scrape always satisfies the +Inf bucket == _count invariant even
        // under concurrent Observe(); h.count() would be a separate atomic
        // read that can lag or lead. _sum is still its own read and may be
        // slightly skewed relative to the counts — Prometheus tolerates
        // that, but not an inconsistent +Inf/_count pair.
        Appendf(&out, "%s_sum %.17g\n", name.c_str(), h.sum());
        Appendf(&out, "%s_count %" PRIu64 "\n", name.c_str(), cumulative);
        break;
      }
    }
  }
  return out;
}

std::string PredictionAccuracyToText(const PredictionAccuracy& accuracy) {
  std::string out;
  Appendf(&out,
          "prediction accuracy: %" PRIu64
          " predictions, mean rel error %.1f%%, max %.1f%%, within 8%%: "
          "%.0f%%\n",
          accuracy.num_predictions, 100.0 * accuracy.mean_abs_rel_error(),
          100.0 * accuracy.max_abs_rel_error,
          100.0 * accuracy.within_8pct_fraction());
  return out;
}

std::string DecisionLogToText(const DecisionLog& log, size_t max_entries) {
  const std::vector<DecisionRecord> records = log.Snapshot();
  const size_t begin =
      records.size() > max_entries ? records.size() - max_entries : 0;
  std::string out;
  Appendf(&out, "decision log (%zu of %" PRIu64 " decisions):\n",
          records.size() - begin, log.total_pushed());
  for (size_t i = begin; i < records.size(); ++i) {
    const DecisionRecord& r = records[i];
    Appendf(&out,
            "  #%-4" PRIu64 " %-12s chose %-14s c=%-8.4f strategy=%s\n",
            r.sequence, r.column_id.empty() ? "?" : r.column_id.c_str(),
            r.chosen_format_name.c_str(), r.c, r.strategy.c_str());
    Appendf(&out,
            "        %" PRIu64 " strings (%.1f%% sampled), %" PRIu64
            " extracts, %" PRIu64 " locates, lifetime %.0fs\n",
            r.num_strings, 100.0 * r.sampled_fraction, r.num_extracts,
            r.num_locates, r.lifetime_seconds);
    if (r.has_actual()) {
      Appendf(&out,
              "        predicted %.0f B, actual %.0f B, rel error %.1f%%\n",
              r.predicted_dict_bytes, r.actual_dict_bytes,
              100.0 * r.prediction_error());
    } else {
      Appendf(&out, "        predicted %.0f B, not built\n",
              r.predicted_dict_bytes);
    }
    for (const FallbackEvent& fb : r.fallbacks) {
      Appendf(&out, "        FELL BACK %s -> %s (%s)\n",
              fb.from_format_name.c_str(), fb.to_format_name.c_str(),
              fb.reason.c_str());
    }
  }
  out.append(PredictionAccuracyToText(log.accuracy()));
  return out;
}

std::string DecisionLogToJson(const DecisionLog& log) {
  std::string out = "{\"decisions\":[";
  bool first = true;
  for (const DecisionRecord& r : log.Snapshot()) {
    if (!first) out.push_back(',');
    first = false;
    Appendf(&out, "{\"sequence\":%" PRIu64 ",\"column\":", r.sequence);
    AppendJsonString(&out, r.column_id);
    Appendf(&out,
            ",\"num_strings\":%" PRIu64
            ",\"sampled_fraction\":%.6g,\"entropy0\":%.6g"
            ",\"num_extracts\":%" PRIu64 ",\"num_locates\":%" PRIu64
            ",\"lifetime_seconds\":%.6g,\"column_vector_bytes\":%" PRIu64,
            r.num_strings, r.sampled_fraction, r.entropy0, r.num_extracts,
            r.num_locates, r.lifetime_seconds, r.column_vector_bytes);
    out.append(",\"chosen\":");
    AppendJsonString(&out, r.chosen_format_name);
    Appendf(&out, ",\"c\":%.6g,\"strategy\":", r.c);
    AppendJsonString(&out, r.strategy);
    Appendf(&out, ",\"alpha\":%.6g,\"predicted_dict_bytes\":%.6g", r.alpha,
            r.predicted_dict_bytes);
    if (r.has_actual()) {
      Appendf(&out, ",\"actual_dict_bytes\":%.6g,\"rel_error\":%.6g",
              r.actual_dict_bytes, r.prediction_error());
    }
    if (!r.fallbacks.empty()) {
      out.append(",\"fallbacks\":[");
      for (size_t i = 0; i < r.fallbacks.size(); ++i) {
        if (i > 0) out.push_back(',');
        out.append("{\"from\":");
        AppendJsonString(&out, r.fallbacks[i].from_format_name);
        out.append(",\"to\":");
        AppendJsonString(&out, r.fallbacks[i].to_format_name);
        out.append(",\"reason\":");
        AppendJsonString(&out, r.fallbacks[i].reason);
        out.push_back('}');
      }
      out.push_back(']');
    }
    out.append(",\"candidates\":[");
    for (size_t i = 0; i < r.candidates.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.append("{\"format\":");
      AppendJsonString(&out, r.candidates[i].format_name);
      Appendf(&out, ",\"size_bytes\":%.6g,\"rel_time\":%.6g}",
              r.candidates[i].predicted_size_bytes, r.candidates[i].rel_time);
    }
    out.append("]}");
  }
  const PredictionAccuracy accuracy = log.accuracy();
  Appendf(&out,
          "],\"accuracy\":{\"num_predictions\":%" PRIu64
          ",\"mean_abs_rel_error\":%.6g,\"max_abs_rel_error\":%.6g"
          ",\"within_8pct_fraction\":%.6g}}",
          accuracy.num_predictions, accuracy.mean_abs_rel_error(),
          accuracy.max_abs_rel_error, accuracy.within_8pct_fraction());
  return out;
}

}  // namespace obs
}  // namespace adict
