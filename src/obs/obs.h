// Process-wide observability context: one metrics registry and one decision
// log shared by every instrumented component.
//
// Instrumentation sites follow one pattern:
//
//   if (obs::Enabled()) {
//     static obs::Counter* counter =
//         obs::Metrics().GetCounter("dict.extract.count", "calls", "...");
//     counter->Increment();
//   }
//
// The function-local static resolves the metric once (registry mutex taken
// exactly once per site); afterwards the cost is one relaxed load of the
// enabled flag plus one relaxed increment. SetEnabled(false) turns every
// site into a single branch. Tests reset values with ResetForTest(), which
// keeps registrations (and thus cached pointers) intact.
#ifndef ADICT_OBS_OBS_H_
#define ADICT_OBS_OBS_H_

#include "obs/decision_log.h"
#include "obs/metrics.h"

namespace adict {
namespace obs {

/// The process-wide metrics registry. Never destroyed.
MetricsRegistry& Metrics();

/// The process-wide decision log. Never destroyed.
DecisionLog& Decisions();

/// Global on/off switch, default on. Disabling skips metric recording and
/// decision logging at every built-in instrumentation site.
bool Enabled();
void SetEnabled(bool enabled);

/// Registers the process-identity metrics scrapes use to compute uptime
/// and detect restarts: `adict_build_info` (value 1, with version and
/// format-count labels) and `process_start_time_seconds` (unix time,
/// captured once at the first call). The dictionary format count is a
/// parameter so the obs layer stays independent of the dict layer; callers
/// pass kNumDictFormats. Idempotent.
void RegisterProcessMetrics(int num_dict_formats);

/// Version string baked into adict_build_info.
inline constexpr const char* kBuildVersion = "0.8.0";

/// Zeroes all metric values, clears the decision log, and resets the
/// workload profiler without invalidating metric or heat-slot pointers
/// cached at instrumentation sites.
void ResetForTest();

}  // namespace obs
}  // namespace adict

#endif  // ADICT_OBS_OBS_H_
