// Process-wide observability context: one metrics registry and one decision
// log shared by every instrumented component.
//
// Instrumentation sites follow one pattern:
//
//   if (obs::Enabled()) {
//     static obs::Counter* counter =
//         obs::Metrics().GetCounter("dict.extract.count", "calls", "...");
//     counter->Increment();
//   }
//
// The function-local static resolves the metric once (registry mutex taken
// exactly once per site); afterwards the cost is one relaxed load of the
// enabled flag plus one relaxed increment. SetEnabled(false) turns every
// site into a single branch. Tests reset values with ResetForTest(), which
// keeps registrations (and thus cached pointers) intact.
#ifndef ADICT_OBS_OBS_H_
#define ADICT_OBS_OBS_H_

#include "obs/decision_log.h"
#include "obs/metrics.h"

namespace adict {
namespace obs {

/// The process-wide metrics registry. Never destroyed.
MetricsRegistry& Metrics();

/// The process-wide decision log. Never destroyed.
DecisionLog& Decisions();

/// Global on/off switch, default on. Disabling skips metric recording and
/// decision logging at every built-in instrumentation site.
bool Enabled();
void SetEnabled(bool enabled);

/// Zeroes all metric values and clears the decision log without
/// invalidating metric pointers cached at instrumentation sites.
void ResetForTest();

}  // namespace obs
}  // namespace adict

#endif  // ADICT_OBS_OBS_H_
