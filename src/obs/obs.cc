#include "obs/obs.h"

#include <atomic>
#include <chrono>
#include <string>

#include "obs/workload_profiler.h"

namespace adict {
namespace obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

MetricsRegistry& Metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

DecisionLog& Decisions() {
  static DecisionLog* log = new DecisionLog();
  return *log;
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void RegisterProcessMetrics(int num_dict_formats) {
  // Close enough to the true process start for restart detection; a fixed
  // value per process is what Prometheus' resets() needs.
  static const double start_seconds =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  const std::string labels = std::string("version=\"") + kBuildVersion +
                             "\",formats=\"" +
                             std::to_string(num_dict_formats) + "\"";
  Metrics()
      .GetGauge("adict_build_info", "info",
                "build metadata as labels; the value is always 1", labels)
      ->Set(1);
  Metrics()
      .GetGauge("process_start_time_seconds", "seconds",
                "unix time this process started")
      ->Set(start_seconds);
}

void ResetForTest() {
  Metrics().ResetValues();
  Decisions().Clear();
  Profiler().ResetValues();
}

}  // namespace obs
}  // namespace adict
