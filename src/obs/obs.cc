#include "obs/obs.h"

#include <atomic>

namespace adict {
namespace obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

MetricsRegistry& Metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

DecisionLog& Decisions() {
  static DecisionLog* log = new DecisionLog();
  return *log;
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void ResetForTest() {
  Metrics().ResetValues();
  Decisions().Clear();
}

}  // namespace obs
}  // namespace adict
