#include "obs/metrics.h"

#include <algorithm>
#include <array>

#include "util/check.h"

namespace adict {
namespace obs {

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(new std::atomic<uint64_t>[bounds.size() + 1]) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    ADICT_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                    "histogram bounds must be strictly ascending");
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // lower_bound makes the bounds inclusive: bucket i counts <= bounds[i].
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20 but not yet universal; CAS instead.
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Quantile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  const std::vector<uint64_t> counts = bucket_counts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  // Rank of the quantile observation, 1-based; q = 0 maps to the first.
  const double rank = std::max(1.0, q * static_cast<double>(total));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(cumulative + counts[i]) >= rank) {
      if (i >= bounds_.size()) {
        // Overflow bucket: no upper edge, clamp to the largest bound (or 0
        // for a bounds-less histogram, which holds no value information).
        return bounds_.empty() ? 0.0 : bounds_.back();
      }
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double fraction = (rank - static_cast<double>(cumulative)) /
                              static_cast<double>(counts[i]);
      return lower + fraction * (upper - lower);
    }
    cumulative += counts[i];
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::span<const double> DefaultLatencyBucketsUs() {
  static constexpr std::array<double, 19> kBounds = {
      1,    2,    5,    10,   20,   50,   100,  200,  500, 1e3,
      2e3,  5e3,  1e4,  2e4,  5e4,  1e5,  2e5,  5e5,  1e6};
  return kBounds;
}

std::string_view MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

MetricsRegistry::Entry* MetricsRegistry::GetOrCreate(
    std::string_view name, MetricType type, std::string_view unit,
    std::string_view help, std::string_view labels,
    std::span<const double> bounds) {
  MutexLock lock(&mutex_);
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    ADICT_CHECK_MSG(it->second.type == type,
                    "metric re-registered with a different type");
    return &it->second;
  }
  Entry entry;
  entry.name = std::string(name);
  entry.unit = std::string(unit);
  entry.help = std::string(help);
  entry.labels = std::string(labels);
  entry.type = type;
  switch (type) {
    case MetricType::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      entry.histogram = std::make_unique<Histogram>(
          bounds.empty() ? DefaultLatencyBucketsUs() : bounds);
      break;
  }
  return &entries_.emplace(entry.name, std::move(entry)).first->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view unit,
                                     std::string_view help,
                                     std::string_view labels) {
  return GetOrCreate(name, MetricType::kCounter, unit, help, labels, {})
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view unit,
                                 std::string_view help,
                                 std::string_view labels) {
  return GetOrCreate(name, MetricType::kGauge, unit, help, labels, {})
      ->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::span<const double> bounds,
                                         std::string_view unit,
                                         std::string_view help) {
  return GetOrCreate(name, MetricType::kHistogram, unit, help, "", bounds)
      ->histogram.get();
}

std::vector<const MetricsRegistry::Entry*> MetricsRegistry::Entries() const {
  MutexLock lock(&mutex_);
  std::vector<const Entry*> entries;
  entries.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) entries.push_back(&entry);
  return entries;  // std::map iterates in name order
}

void MetricsRegistry::ResetValues() {
  MutexLock lock(&mutex_);
  for (auto& [name, entry] : entries_) {
    switch (entry.type) {
      case MetricType::kCounter:
        entry.counter->Reset();
        break;
      case MetricType::kGauge:
        entry.gauge->Reset();
        break;
      case MetricType::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

}  // namespace obs
}  // namespace adict
