// Lock-cheap metrics primitives: counters, gauges, and fixed-bucket
// histograms, owned by a MetricsRegistry.
//
// Design constraints, in order:
//   1. The hot paths that emit metrics (dictionary extract/locate, scans)
//      run millions of times per second, so recording must be a handful of
//      relaxed atomic operations — no locks, no allocation, no formatting.
//   2. Metric objects are created once and never destroyed or moved, so an
//      instrumentation site may resolve its metric a single time (e.g. into
//      a function-local static pointer) and increment through the pointer
//      forever. The registry's mutex is only taken at resolution time.
//   3. Readers (exporters, tests) may snapshot concurrently with writers;
//      values are monotone per writer but a snapshot is not an atomic cut
//      across metrics — fine for observability, not for accounting.
#ifndef ADICT_OBS_METRICS_H_
#define ADICT_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace adict {
namespace obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. the current trade-off c).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest. Bounds are fixed at creation
/// so Observe() is two relaxed increments plus a CAS-loop add to the sum.
class Histogram {
 public:
  /// `bounds` must be strictly ascending; it is copied.
  explicit Histogram(std::span<const double> bounds);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  std::vector<uint64_t> bucket_counts() const;
  /// Quantile estimate for q in [0, 1] (clamped), linearly interpolated
  /// inside the containing bucket (Prometheus histogram_quantile
  /// semantics). Returns 0 when empty; quantiles landing in the overflow
  /// bucket clamp to the largest bound, since that bucket has no upper
  /// edge to interpolate toward.
  double Quantile(double q) const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Bucket bounds for microsecond-scale latencies: 1us .. 1s, roughly
/// 1-2-5 per decade.
std::span<const double> DefaultLatencyBucketsUs();

enum class MetricType { kCounter, kGauge, kHistogram };

std::string_view MetricTypeName(MetricType type);

/// Named, typed collection of metrics. Get* registers on first use and
/// returns the same stable pointer on every later call; a name maps to
/// exactly one type (a type mismatch is a programming error and aborts).
class MetricsRegistry {
 public:
  /// One registered metric, for exporters. Exactly one of the typed
  /// pointers is non-null, matching `type`.
  struct Entry {
    std::string name;
    std::string unit;  // e.g. "us", "bytes", "calls"; informational
    std::string help;
    // Constant label set in Prometheus syntax, e.g. `version="1",x="y"`;
    // fixed at first registration (later Get* calls never change it), so
    // exporters may read it without the registry mutex. Empty for most
    // metrics; info-style gauges (adict_build_info) use it.
    std::string labels;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Counter* GetCounter(std::string_view name, std::string_view unit = "",
                      std::string_view help = "",
                      std::string_view labels = "");
  Gauge* GetGauge(std::string_view name, std::string_view unit = "",
                  std::string_view help = "", std::string_view labels = "");
  /// Default bounds: DefaultLatencyBucketsUs().
  Histogram* GetHistogram(std::string_view name,
                          std::span<const double> bounds = {},
                          std::string_view unit = "us",
                          std::string_view help = "");

  /// Stable pointers to all registered entries, sorted by name.
  std::vector<const Entry*> Entries() const ADICT_EXCLUDES(mutex_);

  /// Zeroes every value but keeps all registrations (so cached metric
  /// pointers at instrumentation sites stay valid). For tests.
  void ResetValues() ADICT_EXCLUDES(mutex_);

 private:
  Entry* GetOrCreate(std::string_view name, MetricType type,
                     std::string_view unit, std::string_view help,
                     std::string_view labels,
                     std::span<const double> bounds) ADICT_EXCLUDES(mutex_);

  mutable Mutex mutex_{LockRank::kMetricsRegistry,
                       "MetricsRegistry.mutex_"};
  // Node-based map: Entry addresses are stable across insertions. The map
  // is guarded; the Counter/Gauge/Histogram values inside an Entry are
  // lock-free atomics and are deliberately read/written without the mutex.
  std::map<std::string, Entry, std::less<>> entries_ ADICT_GUARDED_BY(mutex_);
};

/// RAII timer recording its lifetime into a histogram, in microseconds.
/// A null histogram disables the timer (used when observability is off);
/// the disabled path never touches the clock — instrumentation sites on
/// hot paths construct a ScopedTimer unconditionally and pass nullptr when
/// observability is off, so a disabled timer must cost one branch, not a
/// clock_gettime.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = Clock::now();
  }
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(
          std::chrono::duration<double, std::micro>(Clock::now() - start_)
              .count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* histogram_;
  Clock::time_point start_;
};

}  // namespace obs
}  // namespace adict

#endif  // ADICT_OBS_METRICS_H_
