#include "obs/http_exporter.h"

#include <sys/socket.h>
#include <unistd.h>

#include <fstream>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "obs/workload_profiler.h"
#include "util/net.h"
#include "util/thread_pool.h"

namespace adict {
namespace obs {
namespace {

// The served routes. Paths listed here, the handler dispatch below, and the
// "HTTP endpoints" table in docs/observability.md are kept in sync by
// tools/adict_lint.py (check `endpoints`), which reads the path literals
// between these markers.
// adict-lint: http-routes-begin
struct Route {
  std::string_view path;
  std::string_view method;
};
constexpr Route kRoutes[] = {
    {"/metrics", "GET"},        {"/decisions.json", "GET"},
    {"/spans.json", "GET"},     {"/profile.json", "GET"},
    {"/healthz", "GET"},        {"/trace/start", "POST"},
    {"/trace/stop", "POST"},
};
// adict-lint: http-routes-end

/// /spans.json returns at most this many events (the newest), so a scrape
/// of a long-running trace stays bounded.
constexpr size_t kMaxSpanEvents = 4096;

/// Request heads larger than this are rejected with 400.
constexpr size_t kMaxRequestBytes = 8192;

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::string allow;  // for 405
};

std::string_view ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

std::string PercentDecode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '%' && i + 2 < in.size()) {
      const auto hex = [](char ch) -> int {
        if (ch >= '0' && ch <= '9') return ch - '0';
        if (ch >= 'a' && ch <= 'f') return ch - 'a' + 10;
        if (ch >= 'A' && ch <= 'F') return ch - 'A' + 10;
        return -1;
      };
      const int hi = hex(in[i + 1]), lo = hex(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(in[i] == '+' ? ' ' : in[i]);
  }
  return out;
}

/// Value of `key` in a query string ("a=1&b=2"), percent-decoded; empty
/// when absent.
std::string QueryParam(std::string_view query, std::string_view key) {
  while (!query.empty()) {
    const size_t amp = query.find('&');
    const std::string_view pair = query.substr(0, amp);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return PercentDecode(pair.substr(eq + 1));
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return "";
}

std::string SpansJson() {
  std::vector<TraceEvent> events = Trace().Snapshot();
  if (events.size() > kMaxSpanEvents) {
    events.erase(events.begin(),
                 events.end() - static_cast<ptrdiff_t>(kMaxSpanEvents));
  }
  return TraceToChromeJson(events);
}

HttpResponse HandleRequest(std::string_view method, std::string_view path,
                           std::string_view query) {
  HttpResponse response;
  const Route* route = nullptr;
  for (const Route& candidate : kRoutes) {
    if (candidate.path == path) {
      route = &candidate;
      break;
    }
  }
  if (route == nullptr) {
    response.status = 404;
    response.body = "not found\n";
    return response;
  }
  if (method != route->method) {
    response.status = 405;
    response.allow = std::string(route->method);
    response.body = "method not allowed\n";
    return response;
  }

  if (path == "/metrics") {
    // Fold every column's decayed heat into its gauge so the scrape sees
    // current values, not the last reader's.
    Profiler().RefreshHeatGauges();
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = ExportPrometheusText(Metrics());
  } else if (path == "/decisions.json") {
    response.content_type = "application/json";
    response.body = DecisionLogToJson(Decisions());
  } else if (path == "/spans.json") {
    response.content_type = "application/json";
    response.body = SpansJson();
  } else if (path == "/profile.json") {
    response.content_type = "application/json";
    response.body = ProfileToJson(Profiler());
  } else if (path == "/healthz") {
    response.body = "ok\n";
  } else if (path == "/trace/start") {
    Trace().Clear();
    SetTraceEnabled(true);
    response.content_type = "application/json";
    response.body = "{\"tracing\":true}";
  } else if (path == "/trace/stop") {
    SetTraceEnabled(false);
    const std::string out_file = QueryParam(query, "out");
    if (out_file.empty()) {
      response.content_type = "application/json";
      response.body = SpansJson();
    } else {
      const std::string json = TraceToChromeJson();
      std::ofstream out(out_file, std::ios::binary | std::ios::trunc);
      out.write(json.data(), static_cast<std::streamsize>(json.size()));
      out.flush();
      if (out.good()) {
        response.content_type = "application/json";
        response.body = "{\"tracing\":false,\"out\":\"" + out_file + "\"}";
      } else {
        response.status = 500;
        response.body = "cannot write " + out_file + "\n";
      }
    }
  }
  return response;
}

void SendResponse(int fd, const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     std::string(ReasonPhrase(response.status)) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  if (!response.allow.empty()) head += "Allow: " + response.allow + "\r\n";
  head += "Connection: close\r\n\r\n";
  SendAll(fd, head);
  SendAll(fd, response.body);
}

}  // namespace

HttpExporter::HttpExporter(Options options) : options_(std::move(options)) {}

HttpExporter::~HttpExporter() { Stop(); }

Status HttpExporter::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("http exporter already running");
  }
  ListenOptions listen_options;
  listen_options.port = options_.port;
  listen_options.bind_address = options_.bind_address;
  listen_options.backlog = options_.backlog;
  StatusOr<ListenSocket> socket = OpenListenSocket(listen_options);
  if (!socket.ok()) return socket.status();
  port_.store(socket->port, std::memory_order_release);

  listen_fd_ = socket->fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpExporter::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Drain in-flight handlers so a caller tearing down right after Stop
    // cannot yank state out from under a request that is still rendering.
    MutexLock lock(&drain_mutex_);
    drain_mutex_.Await([this]() ADICT_CV_PREDICATE {
      // active_handlers_ is guarded by drain_mutex_, held via Await.
      return active_handlers_ == 0;
    });
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExporter::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    // Bounded wait so the stop flag is re-checked every slice.
    const int client = AcceptWithTimeout(listen_fd_, /*timeout_ms=*/100);
    if (client < 0) continue;
    {
      MutexLock lock(&drain_mutex_);
      ++active_handlers_;
    }
    Pool().Submit([this, client] {
      HandleConnection(client);
      MutexLock lock(&drain_mutex_);
      if (--active_handlers_ == 0) drain_mutex_.NotifyAll();
    });
  }
}

void HttpExporter::HandleConnection(int fd) {
  ADICT_TRACE_SPAN("obs.http.request");
  Histogram* latency = nullptr;
  if (Enabled()) {
    static Counter* requests = Metrics().GetCounter(
        "obs.http.requests", "requests", "HTTP requests accepted");
    requests->Increment();
    static Histogram* histogram = Metrics().GetHistogram(
        "obs.http.request.us", {}, "us",
        "HTTP request handling latency (parse through response)");
    latency = histogram;
  }
  ScopedTimer timer(latency);

  // A stalled client must not pin a pool lane forever.
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string request;
  bool complete = false;
  char buf[2048];
  while (request.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos) {
      complete = true;
      break;
    }
  }

  HttpResponse response;
  if (!complete) {
    response.status = 400;
    response.body = "bad request\n";
  } else {
    const size_t line_end = request.find("\r\n");
    const std::string_view line = std::string_view(request).substr(0, line_end);
    const size_t method_end = line.find(' ');
    const size_t target_end =
        method_end == std::string_view::npos
            ? std::string_view::npos
            : line.find(' ', method_end + 1);
    if (target_end == std::string_view::npos) {
      response.status = 400;
      response.body = "bad request\n";
    } else {
      const std::string_view method = line.substr(0, method_end);
      std::string_view target =
          line.substr(method_end + 1, target_end - method_end - 1);
      std::string_view query;
      const size_t question = target.find('?');
      if (question != std::string_view::npos) {
        query = target.substr(question + 1);
        target = target.substr(0, question);
      }
      response = HandleRequest(method, target, query);
    }
  }
  if (response.status >= 400 && Enabled()) {
    static Counter* errors = Metrics().GetCounter(
        "obs.http.errors", "responses",
        "HTTP responses with a 4xx or 5xx status");
    errors->Increment();
  }
  SendResponse(fd, response);
  ::close(fd);
}

}  // namespace obs
}  // namespace adict
