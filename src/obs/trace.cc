#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string_view>

namespace adict {
namespace obs {
namespace {

/// Nanoseconds on the monotonic clock since the process's tracer epoch
/// (first call). Thread-safe via the static-local guarantee.
uint64_t NowNs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

// Tri-state so the ADICT_TRACE environment variable is consulted exactly
// once, on the first TraceEnabled()/SetTraceEnabled() call.
constexpr int kUninitialized = -1;
std::atomic<int> g_trace_state{kUninitialized};

int InitTraceStateFromEnv() {
  const char* env = std::getenv("ADICT_TRACE");
  const int enabled = (env != nullptr && std::strcmp(env, "0") != 0) ? 1 : 0;
  int expected = kUninitialized;
  g_trace_state.compare_exchange_strong(expected, enabled,
                                        std::memory_order_relaxed);
  return g_trace_state.load(std::memory_order_relaxed);
}

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char ch : s) {
    switch (ch) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          Appendf(out, "\\u%04x", ch);
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

bool TraceEnabled() {
  const int state = g_trace_state.load(std::memory_order_relaxed);
  if (state != kUninitialized) return state != 0;
  return InitTraceStateFromEnv() != 0;
}

void SetTraceEnabled(bool enabled) {
  if (g_trace_state.load(std::memory_order_relaxed) == kUninitialized) {
    InitTraceStateFromEnv();  // resolve the env var so it never overwrites us
  }
  g_trace_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

Tracer& Trace() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

namespace {
std::atomic<uint64_t> g_next_tracer_id{1};
}  // namespace

Tracer::Tracer()
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::ThreadBuffer* Tracer::LocalBuffer() {
  // Fast path: one comparison for a thread sticking to a single tracer (in
  // production that is the global Trace(), the only tracer ScopedSpan uses).
  // The cache is keyed on the tracer's never-reused id, not its address: a
  // test-owned Tracer that is destroyed and another allocated at the same
  // address cannot revive a stale buffer pointer.
  thread_local uint64_t cached_id = 0;  // real ids start at 1
  thread_local ThreadBuffer* cached_buffer = nullptr;
  if (cached_id == id_) return cached_buffer;
  // Slow path: per-tracer registry so a thread alternating between tracers
  // reuses the buffer (and tid) it registered the first time instead of
  // leaking a fresh one per switch. Entries for destroyed tracers linger but
  // are unreachable — their ids are never handed out again.
  thread_local std::map<uint64_t, ThreadBuffer*> buffers_by_tracer;
  auto [it, inserted] = buffers_by_tracer.try_emplace(id_, nullptr);
  if (inserted) {
    auto fresh = std::make_unique<ThreadBuffer>();
    fresh->events.resize(per_thread_capacity());
    MutexLock lock(&mutex_);
    fresh->tid = static_cast<uint32_t>(buffers_.size() + 1);
    it->second = fresh.get();
    buffers_.push_back(std::move(fresh));
  }
  cached_id = id_;
  cached_buffer = it->second;
  return cached_buffer;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  MutexLock lock(&mutex_);
  std::vector<TraceEvent> events;
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    const size_t n = std::min(
        buffer->committed.load(std::memory_order_acquire),
        buffer->events.size());
    events.insert(events.end(), buffer->events.begin(),
                  buffer->events.begin() + n);
  }
  return events;
}

void Tracer::Clear() {
  MutexLock lock(&mutex_);
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    buffer->committed.store(0, std::memory_order_release);
  }
  dropped_.store(0, std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(const char* name) : name_(nullptr) {
  if (!TraceEnabled()) return;  // the entire disabled-path cost
  buffer_ = Trace().LocalBuffer();
  name_ = name;
  depth_ = buffer_->depth++;
  start_ns_ = NowNs();
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  const uint64_t end_ns = NowNs();
  --buffer_->depth;
  const size_t index = buffer_->committed.load(std::memory_order_relaxed);
  if (index >= buffer_->events.size()) {
    Trace().RecordDropped();
    return;
  }
  buffer_->events[index] =
      TraceEvent{name_, start_ns_, end_ns - start_ns_, buffer_->tid, depth_};
  buffer_->committed.store(index + 1, std::memory_order_release);
}

std::string TraceToChromeJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, event.name == nullptr ? "?" : event.name);
    Appendf(&out,
            ",\"cat\":\"adict\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
            "\"pid\":1,\"tid\":%" PRIu32 "}",
            static_cast<double>(event.start_ns) / 1e3,
            static_cast<double>(event.dur_ns) / 1e3, event.tid);
  }
  out.append("],\"displayTimeUnit\":\"ms\"}");
  return out;
}

std::string TraceToChromeJson() { return TraceToChromeJson(Trace().Snapshot()); }

std::vector<SpanStats> SummarizeTrace(const std::vector<TraceEvent>& events) {
  // Reconstruct nesting per thread from the interval structure: sorted by
  // start time, a span is the child of the nearest still-open span. The
  // stack attributes each popped span's duration to its parent, which turns
  // inclusive times into exclusive ones.
  std::vector<TraceEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     return a.depth < b.depth;  // parent before same-start child
                   });

  std::map<std::string, SpanStats> by_name;
  struct Open {
    const TraceEvent* event;
    uint64_t child_ns = 0;
  };
  std::vector<Open> stack;

  const auto finalize = [&](const Open& open) {
    SpanStats& stats = by_name[open.event->name == nullptr ? "?"
                                                           : open.event->name];
    if (stats.name.empty()) {
      stats.name = open.event->name == nullptr ? "?" : open.event->name;
    }
    stats.count += 1;
    stats.inclusive_ns += open.event->dur_ns;
    stats.exclusive_ns += open.event->dur_ns -
                          std::min(open.event->dur_ns, open.child_ns);
    if (!stack.empty()) stack.back().child_ns += open.event->dur_ns;
  };

  uint32_t current_tid = 0;
  for (const TraceEvent& event : sorted) {
    if (event.tid != current_tid) {
      while (!stack.empty()) {
        const Open open = stack.back();
        stack.pop_back();
        finalize(open);
      }
      current_tid = event.tid;
    }
    while (!stack.empty()) {
      const TraceEvent& top = *stack.back().event;
      // A span ending exactly where this one starts is a completed sibling,
      // not an ancestor — unless its recorded depth says otherwise: with a
      // coarse clock a zero-duration parent can share its start (and end)
      // timestamp with its child, and must stay open so the child is not
      // attributed to the grandparent.
      const uint64_t top_end = top.start_ns + top.dur_ns;
      if (top_end > event.start_ns ||
          (top_end == event.start_ns && top.depth < event.depth)) {
        break;
      }
      const Open open = stack.back();
      stack.pop_back();
      finalize(open);
    }
    stack.push_back(Open{&event});
  }
  while (!stack.empty()) {
    const Open open = stack.back();
    stack.pop_back();
    finalize(open);
  }

  std::vector<SpanStats> stats;
  stats.reserve(by_name.size());
  for (auto& [name, s] : by_name) stats.push_back(std::move(s));
  std::sort(stats.begin(), stats.end(),
            [](const SpanStats& a, const SpanStats& b) {
              if (a.exclusive_ns != b.exclusive_ns) {
                return a.exclusive_ns > b.exclusive_ns;
              }
              return a.name < b.name;
            });
  return stats;
}

std::string TraceSummaryToText(const std::vector<TraceEvent>& events,
                               uint64_t dropped) {
  const std::vector<SpanStats> stats = SummarizeTrace(events);
  std::string out;
  Appendf(&out, "trace summary (%zu spans", events.size());
  if (dropped > 0) Appendf(&out, ", %" PRIu64 " dropped", dropped);
  out.append("):\n");
  Appendf(&out, "  %-36s %10s %14s %14s\n", "span", "count", "inclusive ms",
          "exclusive ms");
  for (const SpanStats& s : stats) {
    Appendf(&out, "  %-36s %10" PRIu64 " %14.3f %14.3f\n", s.name.c_str(),
            s.count, static_cast<double>(s.inclusive_ns) / 1e6,
            static_cast<double>(s.exclusive_ns) / 1e6);
  }
  return out;
}

}  // namespace obs
}  // namespace adict
