#include "obs/decision_log.h"

#include <algorithm>

#include "util/check.h"

namespace adict {
namespace obs {

DecisionLog::DecisionLog(size_t capacity) : capacity_(capacity) {
  ADICT_CHECK(capacity_ > 0);
}

uint64_t DecisionLog::Push(DecisionRecord record) {
  MutexLock lock(&mutex_);
  record.sequence = next_sequence_++;
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++evicted_;
  }
  ring_.push_back(std::move(record));
  return ring_.back().sequence;
}

bool DecisionLog::RecordActual(uint64_t sequence, double actual_dict_bytes) {
  MutexLock lock(&mutex_);
  // Sequences are dense and ascending: the record's position, if still in
  // the ring, is its distance from the front entry's sequence.
  if (ring_.empty() || sequence < ring_.front().sequence ||
      sequence > ring_.back().sequence) {
    return false;
  }
  DecisionRecord& record = ring_[sequence - ring_.front().sequence];
  if (record.has_actual()) return false;
  record.actual_dict_bytes = actual_dict_bytes;
  const double error = record.prediction_error();
  ++accuracy_.num_predictions;
  accuracy_.sum_abs_rel_error += error;
  accuracy_.max_abs_rel_error = std::max(accuracy_.max_abs_rel_error, error);
  if (error <= 0.08) ++accuracy_.within_8pct;
  return true;
}

bool DecisionLog::RecordFallback(uint64_t sequence, FallbackEvent event) {
  MutexLock lock(&mutex_);
  if (ring_.empty() || sequence < ring_.front().sequence ||
      sequence > ring_.back().sequence) {
    return false;
  }
  ring_[sequence - ring_.front().sequence].fallbacks.push_back(
      std::move(event));
  return true;
}

bool DecisionLog::RecordActualForColumn(std::string_view column_id,
                                        double actual_dict_bytes) {
  uint64_t sequence = 0;
  {
    MutexLock lock(&mutex_);
    for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
      if (it->column_id == column_id && !it->has_actual()) {
        sequence = it->sequence;
        break;
      }
    }
  }
  return sequence != 0 && RecordActual(sequence, actual_dict_bytes);
}

std::vector<DecisionRecord> DecisionLog::Snapshot() const {
  MutexLock lock(&mutex_);
  return {ring_.begin(), ring_.end()};
}

PredictionAccuracy DecisionLog::accuracy() const {
  MutexLock lock(&mutex_);
  return accuracy_;
}

size_t DecisionLog::size() const {
  MutexLock lock(&mutex_);
  return ring_.size();
}

uint64_t DecisionLog::total_pushed() const {
  MutexLock lock(&mutex_);
  return next_sequence_ - 1;
}

uint64_t DecisionLog::evicted() const {
  MutexLock lock(&mutex_);
  return evicted_;
}

void DecisionLog::Clear() {
  MutexLock lock(&mutex_);
  ring_.clear();
  next_sequence_ = 1;
  evicted_ = 0;
  accuracy_ = PredictionAccuracy{};
}

}  // namespace obs
}  // namespace adict
