// Structured trace of the compression manager's format decisions, plus
// cumulative prediction-accuracy accounting.
//
// Every ChooseFormat call appends one DecisionRecord: which column, what the
// sampled properties looked like, every candidate's predicted (size,
// rel_time) point, which format won, and the global trade-off parameter c at
// that moment. When the dictionary is actually built, the real size is
// patched into the record, so the paper's size-model accuracy claim (<8%
// relative error for most predictions, Figure 6) is measured continuously in
// production paths, not only in the offline benchmark.
//
// The log is a bounded ring: old entries are evicted, but the accuracy
// accounting is cumulative and survives eviction. Formats are stored as
// (id, name) pairs resolved by the caller, which keeps this layer free of
// any dependency above util.
#ifndef ADICT_OBS_DECISION_LOG_H_
#define ADICT_OBS_DECISION_LOG_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.h"

namespace adict {
namespace obs {

/// One dictionary format's predicted position on the decision plane.
struct DecisionCandidate {
  int format_id = -1;       // DictFormat enum value
  std::string format_name;  // paper-style name, e.g. "fc block rp 12"
  /// Predicted dictionary size + column vector size (the size axis the
  /// selection strategies compare against the dividing line).
  double predicted_size_bytes = 0;
  /// Lifetime-normalized runtime spent in the dictionary (the time axis).
  double rel_time = 0;
};

/// One step of the guarded build's degradation chain: the decided (or
/// previous fallback) format failed to build or validate, and the rebuild
/// moved on to the next, safer format (docs/robustness.md).
struct FallbackEvent {
  int from_format_id = -1;
  std::string from_format_name;
  int to_format_id = -1;
  std::string to_format_name;
  std::string reason;  // Status::ToString() of the failure
};

/// One ChooseFormat call, from sampled input to (eventually) built output.
struct DecisionRecord {
  uint64_t sequence = 0;  // assigned by DecisionLog::Push, starts at 1
  std::string column_id;  // caller-supplied; may be empty

  // Digest of the sampled properties the models consumed.
  uint64_t num_strings = 0;
  double raw_chars = 0;
  double entropy0 = 0;        // order-0 entropy of the sample, bits/char
  double sampled_fraction = 1.0;

  // Traced usage fed into the time model.
  uint64_t num_extracts = 0;
  uint64_t num_locates = 0;
  double lifetime_seconds = 0;
  uint64_t column_vector_bytes = 0;

  // The decision.
  std::vector<DecisionCandidate> candidates;
  int chosen_format_id = -1;
  std::string chosen_format_name;
  /// Predicted size of the chosen *dictionary alone* (candidate size minus
  /// the column vector), comparable to Dictionary::MemoryBytes().
  double predicted_dict_bytes = 0;
  double c = 0;          // global trade-off parameter at decision time
  std::string strategy;  // selection strategy name ("const"/"rel"/"tilt")
  double alpha = 0;      // derived configuration parameter of the strategy

  // The outcome, patched in by RecordActual* once the dictionary is built.
  double actual_dict_bytes = -1;  // < 0: not (yet) built

  // Degradation steps taken before the build committed (empty in the normal
  // case where the chosen format built and validated first try). The format
  // actually built is the last event's to_format_id, or the chosen format
  // when no fallback happened.
  std::vector<FallbackEvent> fallbacks;

  bool has_actual() const { return actual_dict_bytes >= 0; }
  /// The paper's relative prediction error |real - predicted| / real
  /// (Figure 6). Only meaningful when has_actual().
  double prediction_error() const {
    if (!has_actual() || actual_dict_bytes <= 0) return 0;
    const double diff = actual_dict_bytes - predicted_dict_bytes;
    return (diff < 0 ? -diff : diff) / actual_dict_bytes;
  }
};

/// Cumulative predicted-vs-actual accounting over all decisions whose
/// dictionary was built, independent of ring eviction.
struct PredictionAccuracy {
  uint64_t num_predictions = 0;  // decisions with a recorded actual size
  double sum_abs_rel_error = 0;
  double max_abs_rel_error = 0;
  uint64_t within_8pct = 0;  // the paper's Figure-6 yardstick

  double mean_abs_rel_error() const {
    return num_predictions == 0
               ? 0.0
               : sum_abs_rel_error / static_cast<double>(num_predictions);
  }
  double within_8pct_fraction() const {
    return num_predictions == 0
               ? 0.0
               : static_cast<double>(within_8pct) /
                     static_cast<double>(num_predictions);
  }
};

/// Bounded, thread-safe ring buffer of decision records.
class DecisionLog {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit DecisionLog(size_t capacity = kDefaultCapacity);

  /// Appends `record`, assigning and returning its sequence number. Evicts
  /// the oldest entry when full.
  uint64_t Push(DecisionRecord record) ADICT_EXCLUDES(mutex_);

  /// Patches the actual built size into the record with `sequence` and
  /// updates the accuracy accounting. Returns false if the record was
  /// already evicted or already has an actual size.
  bool RecordActual(uint64_t sequence, double actual_dict_bytes)
      ADICT_EXCLUDES(mutex_);

  /// Same, addressing the *newest* record for `column_id` that has no
  /// actual size yet (for callers that rebuild by name, not by sequence).
  bool RecordActualForColumn(std::string_view column_id,
                             double actual_dict_bytes) ADICT_EXCLUDES(mutex_);

  /// Appends a degradation step to the record with `sequence`. Returns
  /// false if the record was already evicted.
  bool RecordFallback(uint64_t sequence, FallbackEvent event)
      ADICT_EXCLUDES(mutex_);

  /// Copies the current contents, oldest first.
  std::vector<DecisionRecord> Snapshot() const ADICT_EXCLUDES(mutex_);

  PredictionAccuracy accuracy() const ADICT_EXCLUDES(mutex_);

  size_t capacity() const { return capacity_; }
  size_t size() const ADICT_EXCLUDES(mutex_);
  uint64_t total_pushed() const ADICT_EXCLUDES(mutex_);
  uint64_t evicted() const ADICT_EXCLUDES(mutex_);

  /// Drops all records and zeroes the accounting. For tests.
  void Clear() ADICT_EXCLUDES(mutex_);

 private:
  const size_t capacity_;
  mutable Mutex mutex_{LockRank::kDecisionLog, "DecisionLog.mutex_"};
  std::deque<DecisionRecord> ring_ ADICT_GUARDED_BY(mutex_);  // oldest first
  uint64_t next_sequence_ ADICT_GUARDED_BY(mutex_) = 1;
  uint64_t evicted_ ADICT_GUARDED_BY(mutex_) = 0;
  PredictionAccuracy accuracy_ ADICT_GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace adict

#endif  // ADICT_OBS_DECISION_LOG_H_
