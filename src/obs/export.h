// Renders metrics and decision logs as human-readable text or JSON.
//
// The text forms are what the examples and benchmarks print; the JSON forms
// are line-oriented machine food (one object for metrics, one array for the
// decision log) for scraping into external dashboards.
#ifndef ADICT_OBS_EXPORT_H_
#define ADICT_OBS_EXPORT_H_

#include <cstddef>
#include <limits>
#include <string>

#include "obs/decision_log.h"
#include "obs/metrics.h"

namespace adict {
namespace obs {

/// Aligned name/type/value table, histograms with count/mean and the
/// occupied buckets.
std::string MetricsToText(const MetricsRegistry& registry);

/// {"metrics":[{"name":...,"type":...,"unit":...,"value"|"count"...}, ...]}
std::string MetricsToJson(const MetricsRegistry& registry);

/// One block per decision, newest last: column, chosen format, predicted vs
/// actual dictionary bytes, relative error, c, strategy. At most
/// `max_entries` newest entries, then the cumulative accuracy summary.
std::string DecisionLogToText(
    const DecisionLog& log,
    size_t max_entries = std::numeric_limits<size_t>::max());

/// {"decisions":[...],"accuracy":{...}} with the full candidate lists.
std::string DecisionLogToJson(const DecisionLog& log);

/// One line: N predictions, mean/max relative error, within-8% fraction.
std::string PredictionAccuracyToText(const PredictionAccuracy& accuracy);

/// Prometheus text exposition format (version 0.0.4): one `# HELP` and
/// `# TYPE` line per metric followed by its samples. Histograms expose the
/// conventional `<name>_bucket{le="..."}` cumulative series (ending in
/// le="+Inf") plus `<name>_sum` and `<name>_count`. Metric names are
/// sanitized to [a-zA-Z0-9_:] — the registry's dotted names ("dict.build.us")
/// become underscored ("dict_build_us") — with a leading '_' prepended if
/// the sanitized name would start with a digit.
std::string ExportPrometheusText(const MetricsRegistry& registry);

}  // namespace obs
}  // namespace adict

#endif  // ADICT_OBS_EXPORT_H_
