// Continuous workload-heat profiler: per-column, per-operation usage with
// time decay, the live signal behind the adaptive loop.
//
// The paper's offline prototype traces lifetime extract/locate counts and
// feeds them into the next format decision. Lifetime counts cannot tell a
// column that was hot an hour ago from one that is hot now, which is
// exactly the distinction the recompression scheduler needs under memory
// pressure: evict the *currently* cold dictionary first. The profiler keeps
// one heat slot per column with
//
//   - relaxed-atomic counts and bytes per operation (extract / locate /
//     scan / merge) — the hot path is a handful of relaxed adds, same
//     budget as the metrics layer (metrics.h);
//   - a latency histogram per operation (Histogram::Quantile gives
//     p50/p95/p99). Batch operations (dictionary scans, merges, morsel
//     scans) time themselves exactly; singleton extracts/locates sample
//     every kLatencySamplePeriod-th call so the common case never reads
//     the clock;
//   - an exponentially time-decayed operation rate ("heat"), folded lazily:
//     readers pay the decay math, writers never do.
//
// Slots are created once (Table::AddStringColumn binds them by
// "table.column" name) and never destroyed, so instrumentation sites cache
// the raw pointer; a null slot disables every helper at the cost of one
// branch. ScopedQueryProfile snapshots all slots around a query and pushes
// the diff into a bounded ring — the per-query attribution served by
// /profile.json (http_exporter.h).
#ifndef ADICT_OBS_WORKLOAD_PROFILER_H_
#define ADICT_OBS_WORKLOAD_PROFILER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/thread_annotations.h"

namespace adict {
namespace obs {

/// The dictionary operations the profiler distinguishes.
enum class ColumnOp : int { kExtract = 0, kLocate = 1, kScan = 2, kMerge = 3 };
inline constexpr int kNumColumnOps = 4;

std::string_view ColumnOpName(ColumnOp op);

/// One column's heat slot. Created by WorkloadProfiler::GetColumn, stable
/// for the life of the process (never moved or destroyed).
class ColumnHeat {
 public:
  /// Singleton extracts/locates time themselves once per this many calls;
  /// the sampled latency is scaled back up for the per-op time totals.
  static constexpr uint64_t kLatencySamplePeriod = 64;

  /// Cumulative totals of one operation on one column.
  struct OpTotals {
    uint64_t count = 0;
    uint64_t bytes = 0;
    double total_us = 0;  // sampled ops contribute latency * sample period
  };

  explicit ColumnHeat(std::string name);
  ColumnHeat(const ColumnHeat&) = delete;
  ColumnHeat& operator=(const ColumnHeat&) = delete;

  const std::string& name() const { return name_; }

  /// Hot path: two relaxed adds. Returns the pre-add cumulative count of
  /// `op` (the latency-sampling clock for singleton operations).
  uint64_t RecordOp(ColumnOp op, uint64_t count, uint64_t bytes) {
    const auto i = static_cast<size_t>(op);
    if (bytes != 0) bytes_[i].fetch_add(bytes, std::memory_order_relaxed);
    return counts_[i].fetch_add(count, std::memory_order_relaxed);
  }

  /// Records one latency observation. `represented_ops` scales the
  /// contribution to total_us (kLatencySamplePeriod for a sampled
  /// singleton, 1 for an exactly-timed batch); the histogram always
  /// receives the raw observation.
  void RecordLatency(ColumnOp op, double us, uint64_t represented_ops);

  OpTotals Totals(ColumnOp op) const;
  uint64_t TotalOps() const;
  const Histogram& latency(ColumnOp op) const {
    return latency_[static_cast<size_t>(op)];
  }

  /// Exponentially decayed operation count: folds the ops recorded since
  /// the last fold into `heat * 2^(-dt / half_life)` and returns the
  /// result. Readers pay the fold; the record path never does.
  double DecayedHeat() const ADICT_EXCLUDES(decay_mutex_);

  /// Deterministic decay for tests: folds pending ops, then ages the heat
  /// by `seconds` without waiting. Later folds do not re-apply the wall
  /// time skipped here.
  void DecayForTest(double seconds) ADICT_EXCLUDES(decay_mutex_);

  /// Zeroes counters, histograms, and heat; keeps the slot and its gauge.
  void ResetValues() ADICT_EXCLUDES(decay_mutex_);

 private:
  friend class WorkloadProfiler;

  double FoldLocked(double now_seconds, double extra_age_seconds) const
      ADICT_REQUIRES(decay_mutex_);

  const std::string name_;
  Gauge* heat_gauge_;  // "profiler.heat.<column>", refreshed on fold

  std::array<std::atomic<uint64_t>, kNumColumnOps> counts_{};
  std::array<std::atomic<uint64_t>, kNumColumnOps> bytes_{};
  std::array<std::atomic<double>, kNumColumnOps> total_us_{};
  std::array<Histogram, kNumColumnOps> latency_;

  mutable Mutex decay_mutex_{LockRank::kColumnHeatDecay,
                             "ColumnHeat.decay_mutex_"};
  mutable double heat_ ADICT_GUARDED_BY(decay_mutex_) = 0;
  mutable uint64_t folded_ops_ ADICT_GUARDED_BY(decay_mutex_) = 0;
  mutable double last_fold_seconds_ ADICT_GUARDED_BY(decay_mutex_) = 0;
};

/// Whether a ScopedColumnOp decides for itself when to read the clock.
enum class OpTiming {
  kAuto,    // batches (count > 1) always, singletons sampled
  kAlways,  // rare-but-important operations (merges)
};

/// Times one column operation and records it into a heat slot on scope
/// exit. A null slot (column not bound, or observability off) reduces the
/// whole helper to two branches — no clock read, no atomics.
class ScopedColumnOp {
 public:
  /// `count` > 1 marks a batch operation, which is always timed exactly;
  /// `count` == 1 is a singleton, timed every kLatencySamplePeriod-th call
  /// (unless `timing` forces the clock).
  ScopedColumnOp(ColumnHeat* heat, ColumnOp op, uint64_t count = 1,
                 OpTiming timing = OpTiming::kAuto)
      : heat_(heat != nullptr && Enabled() ? heat : nullptr),
        op_(op),
        count_(count) {
    if (heat_ == nullptr) return;
    const uint64_t before = heat_->RecordOp(op_, count_, 0);
    if (timing == OpTiming::kAlways || count_ > 1) {
      represented_ = 1;
    } else if (before % ColumnHeat::kLatencySamplePeriod == 0) {
      represented_ = ColumnHeat::kLatencySamplePeriod;
    }
    if (represented_ != 0) start_ = Clock::now();
  }
  ~ScopedColumnOp() {
    if (heat_ == nullptr) return;
    if (bytes_ != 0) heat_->RecordOp(op_, 0, bytes_);
    if (represented_ != 0) {
      heat_->RecordLatency(
          op_,
          std::chrono::duration<double, std::micro>(Clock::now() - start_)
              .count(),
          represented_);
    }
  }
  ScopedColumnOp(const ScopedColumnOp&) = delete;
  ScopedColumnOp& operator=(const ScopedColumnOp&) = delete;

  void AddBytes(uint64_t n) { bytes_ += n; }

 private:
  using Clock = std::chrono::steady_clock;
  ColumnHeat* heat_;
  ColumnOp op_;
  uint64_t count_;
  uint64_t bytes_ = 0;
  uint64_t represented_ = 0;  // ops this timing stands for; 0 = not timed
  Clock::time_point start_;
};

/// Per-query attribution: which columns one query touched, and how much.
struct QueryColumnUsage {
  std::string column;
  std::array<ColumnHeat::OpTotals, kNumColumnOps> ops;
};

struct QueryAttribution {
  std::string query;
  double wall_us = 0;
  std::vector<QueryColumnUsage> columns;  // only columns with activity
};

/// One row of the recompression scheduler's latest pressure ranking, for
/// /profile.json (the "why was this column evicted" answer).
struct SchedulerRankEntry {
  std::string column;
  double score = 0;         // dict_bytes * staleness / (1 + heat)
  double decayed_heat = 0;  // traffic signal the score divided by
  uint64_t dict_bytes = 0;
  double staleness = 0;  // ticks since the column's last rebuild
};

/// Process-wide registry of heat slots plus the query-attribution ring and
/// the scheduler's latest ranking. Access through Profiler().
class WorkloadProfiler {
 public:
  static constexpr size_t kQueryRingCapacity = 64;

  WorkloadProfiler() = default;
  WorkloadProfiler(const WorkloadProfiler&) = delete;
  WorkloadProfiler& operator=(const WorkloadProfiler&) = delete;

  /// The slot for `name` ("table.column"), created on first use. The
  /// returned pointer is stable forever — cache it.
  ColumnHeat* GetColumn(std::string_view name) ADICT_EXCLUDES(mutex_);

  /// Stable pointers to all slots, sorted by name.
  std::vector<const ColumnHeat*> Columns() const ADICT_EXCLUDES(mutex_);
  std::vector<ColumnHeat*> MutableColumns() ADICT_EXCLUDES(mutex_);

  /// Folds every slot's decayed heat into its "profiler.heat.<column>"
  /// gauge (called by the HTTP exporter before a /metrics scrape).
  void RefreshHeatGauges() ADICT_EXCLUDES(mutex_);

  /// Half-life of the decayed heat, seconds. Applies on the next fold.
  double half_life_seconds() const {
    return half_life_seconds_.load(std::memory_order_relaxed);
  }
  void set_half_life_seconds(double seconds) {
    half_life_seconds_.store(seconds, std::memory_order_relaxed);
  }

  void RecordQuery(QueryAttribution record) ADICT_EXCLUDES(mutex_);
  std::vector<QueryAttribution> RecentQueries() const ADICT_EXCLUDES(mutex_);
  uint64_t total_queries() const ADICT_EXCLUDES(mutex_);

  void RecordSchedulerRanking(std::vector<SchedulerRankEntry> ranking)
      ADICT_EXCLUDES(mutex_);
  std::vector<SchedulerRankEntry> LatestSchedulerRanking() const
      ADICT_EXCLUDES(mutex_);

  /// Zeroes every slot and clears the rings; slots (and cached pointers)
  /// survive, mirroring MetricsRegistry::ResetValues.
  void ResetValues() ADICT_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_{LockRank::kProfilerState,
                       "WorkloadProfiler.mutex_"};
  // Node-based map: ColumnHeat addresses are stable across insertions.
  std::map<std::string, ColumnHeat, std::less<>> columns_
      ADICT_GUARDED_BY(mutex_);
  std::deque<QueryAttribution> queries_ ADICT_GUARDED_BY(mutex_);
  uint64_t total_queries_ ADICT_GUARDED_BY(mutex_) = 0;
  std::vector<SchedulerRankEntry> ranking_ ADICT_GUARDED_BY(mutex_);
  std::atomic<double> half_life_seconds_{30.0};
};

/// The process-wide profiler. Never destroyed.
WorkloadProfiler& Profiler();

/// RAII per-query attribution: snapshots every slot's totals at
/// construction, diffs at destruction, and pushes the result into the
/// profiler's query ring. Exact for serial queries; concurrent queries on
/// the same columns blend into each other's diffs (documented in
/// docs/observability.md). Inactive when observability is off.
class ScopedQueryProfile {
 public:
  explicit ScopedQueryProfile(std::string_view query);
  ~ScopedQueryProfile();
  ScopedQueryProfile(const ScopedQueryProfile&) = delete;
  ScopedQueryProfile& operator=(const ScopedQueryProfile&) = delete;

 private:
  struct SlotSnapshot {
    ColumnHeat* slot;
    std::array<ColumnHeat::OpTotals, kNumColumnOps> ops;
  };

  std::string query_;
  bool active_ = false;
  std::chrono::steady_clock::time_point start_;
  std::vector<SlotSnapshot> before_;
};

/// {"half_life_seconds":...,"columns":[...],"queries":[...],
///  "scheduler_ranking":[...]} — the /profile.json body.
std::string ProfileToJson(const WorkloadProfiler& profiler);

}  // namespace obs
}  // namespace adict

#endif  // ADICT_OBS_WORKLOAD_PROFILER_H_
