// Low-overhead span tracing: where the time goes *inside* one operation.
//
// The metrics layer (metrics.h) answers "how often and how long in
// aggregate"; spans answer "which phase of this merge was slow". A span is a
// named, nested interval on one thread, opened and closed by a ScopedSpan.
// Completed spans land in bounded per-thread buffers that an exporter can
// snapshot as Chrome trace_event JSON (loadable in Perfetto or
// chrome://tracing) or fold into a per-name inclusive/exclusive summary.
//
// Design constraints, in order:
//   1. Tracing is off in production by default. The disabled path must be a
//      single relaxed atomic load per ScopedSpan — no clock read, no TLS
//      buffer lookup, no branch beyond the flag test.
//   2. Span names must be string literals (or otherwise outlive the
//      tracer): events store the pointer, never a copy, so opening a span
//      costs no allocation.
//   3. Buffers are bounded. When a thread's buffer is full, new spans are
//      dropped and counted (dropped()); tracing never grows without limit.
//   4. Threads never contend: each thread writes its own buffer, registered
//      once under the tracer mutex. Snapshot() takes the mutex and copies.
//
// Enabling: programmatically via SetTraceEnabled(true), or by setting the
// ADICT_TRACE environment variable to anything but "0" before the first
// span (checked once).
#ifndef ADICT_OBS_TRACE_H_
#define ADICT_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace adict {
namespace obs {

/// One completed span. `name` is the caller's string literal, not owned.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;  // monotonic, relative to the tracer epoch
  uint64_t dur_ns = 0;
  uint32_t tid = 0;    // dense tracer-assigned thread index, starts at 1
  uint32_t depth = 0;  // nesting depth at open time, outermost = 0
};

/// True when spans are being recorded. One relaxed load.
bool TraceEnabled();

/// Turns recording on or off. The first call (and the first TraceEnabled())
/// folds in the ADICT_TRACE environment variable; SetTraceEnabled always
/// wins afterwards.
void SetTraceEnabled(bool enabled);

/// Collects completed spans from every thread. One process-wide instance
/// (Trace()); the class is exposed for tests.
class Tracer {
 public:
  /// Default bound per thread; ~4 MB of events across 16 threads.
  static constexpr size_t kDefaultPerThreadCapacity = 8192;

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// All completed spans, every thread, in per-thread completion order.
  /// Safe against concurrent recording (writers publish each event with a
  /// release store); a snapshot is a consistent prefix per thread.
  std::vector<TraceEvent> Snapshot() const ADICT_EXCLUDES(mutex_);

  /// Spans dropped because a thread's buffer was full.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Drops all recorded events (registrations and capacity stay). Call when
  /// no thread is mid-span; clearing concurrently with recording may tear
  /// the events recorded during the call.
  void Clear() ADICT_EXCLUDES(mutex_);

  /// Applies to buffers of threads that first record *after* the call;
  /// existing per-thread buffers keep their capacity. Call before tracing.
  void set_per_thread_capacity(size_t capacity) {
    per_thread_capacity_.store(capacity, std::memory_order_relaxed);
  }
  size_t per_thread_capacity() const {
    return per_thread_capacity_.load(std::memory_order_relaxed);
  }

 private:
  friend class ScopedSpan;

  /// One thread's bounded event buffer. The owning thread is the only
  /// writer; it publishes events[i] with a release store of `committed`,
  /// which Snapshot() pairs with an acquire load — no lock on the record
  /// path. `events` is sized to capacity at registration and never grows.
  struct ThreadBuffer {
    uint32_t tid = 0;
    uint32_t depth = 0;  // live nesting depth, maintained by ScopedSpan
    std::vector<TraceEvent> events;
    std::atomic<size_t> committed{0};
  };

  /// The calling thread's buffer, registering it on first use.
  ThreadBuffer* LocalBuffer() ADICT_EXCLUDES(mutex_);

  void RecordDropped() { dropped_.fetch_add(1, std::memory_order_relaxed); }

  /// Process-unique, never reused. Thread-local buffer caches are keyed on
  /// this rather than the Tracer's address so a destroyed test Tracer can
  /// never be confused with a later one allocated at the same address.
  const uint64_t id_;

  mutable Mutex mutex_{LockRank::kTraceBuffers, "Tracer.mutex_"};
  // The vector of registrations is guarded; each ThreadBuffer's contents
  // are written lock-free by the owning thread and published through
  // `committed` (release/acquire), so they are deliberately unguarded.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      ADICT_GUARDED_BY(mutex_);
  std::atomic<size_t> per_thread_capacity_{kDefaultPerThreadCapacity};
  std::atomic<uint64_t> dropped_{0};
};

/// The process-wide tracer. Never destroyed.
Tracer& Trace();

/// RAII span: records [construction, destruction) on the calling thread.
/// `name` must outlive the tracer (use a string literal).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;        // nullptr when tracing was off at open
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
  Tracer::ThreadBuffer* buffer_ = nullptr;
};

#define ADICT_TRACE_CONCAT_IMPL(a, b) a##b
#define ADICT_TRACE_CONCAT(a, b) ADICT_TRACE_CONCAT_IMPL(a, b)

/// Opens a span for the rest of the enclosing scope.
#define ADICT_TRACE_SPAN(name) \
  ::adict::obs::ScopedSpan ADICT_TRACE_CONCAT(adict_span_, __LINE__)(name)

/// Chrome trace_event JSON ("X" complete events) for the given events:
/// {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,"pid":1,
/// "tid":...},...]}. Loadable in Perfetto / chrome://tracing. Timestamps
/// are microseconds (fractional) since the tracer epoch.
std::string TraceToChromeJson(const std::vector<TraceEvent>& events);

/// Convenience: exporter over Trace().Snapshot().
std::string TraceToChromeJson();

/// Per-name aggregate of one trace run, for the text summary.
struct SpanStats {
  std::string name;
  uint64_t count = 0;
  uint64_t inclusive_ns = 0;  // sum of span durations
  uint64_t exclusive_ns = 0;  // inclusive minus time in direct children
};

/// Aggregates events per span name: count, inclusive time, and exclusive
/// time (inclusive minus the time spent in direct child spans). Sorted by
/// descending exclusive time.
std::vector<SpanStats> SummarizeTrace(const std::vector<TraceEvent>& events);

/// Aligned text table of SummarizeTrace, plus the dropped-span count.
std::string TraceSummaryToText(const std::vector<TraceEvent>& events,
                               uint64_t dropped = 0);

}  // namespace obs
}  // namespace adict

#endif  // ADICT_OBS_TRACE_H_
