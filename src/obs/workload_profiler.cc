#include "obs/workload_profiler.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <utility>

namespace adict {
namespace obs {
namespace {

// Seconds on the steady clock since the first call (the profiler epoch);
// decay math works on this scale, never on wall time.
double SteadySeconds() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

// fetch_add on atomic<double> is C++20 but not yet universal; CAS instead
// (same pattern as Histogram::Observe).
void AtomicAddDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + value,
                                        std::memory_order_relaxed)) {
  }
}

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char ch : s) {
    switch (ch) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          Appendf(out, "\\u%04x", ch);
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string_view ColumnOpName(ColumnOp op) {
  switch (op) {
    case ColumnOp::kExtract:
      return "extract";
    case ColumnOp::kLocate:
      return "locate";
    case ColumnOp::kScan:
      return "scan";
    case ColumnOp::kMerge:
      return "merge";
  }
  return "?";
}

ColumnHeat::ColumnHeat(std::string name)
    : name_(std::move(name)),
      // Dynamic gauge name: the "profiler.heat." literal prefix is the
      // registration the docs' parameterized `profiler.heat.<column>` row
      // refers to.
      heat_gauge_(Metrics().GetGauge(std::string("profiler.heat.") + name_,
                                     "ops",
                                     "time-decayed operation heat of one "
                                     "column (refreshed at scrape time)")),
      latency_{Histogram(DefaultLatencyBucketsUs()),
               Histogram(DefaultLatencyBucketsUs()),
               Histogram(DefaultLatencyBucketsUs()),
               Histogram(DefaultLatencyBucketsUs())} {
  MutexLock lock(&decay_mutex_);
  last_fold_seconds_ = SteadySeconds();
}

void ColumnHeat::RecordLatency(ColumnOp op, double us,
                               uint64_t represented_ops) {
  const auto i = static_cast<size_t>(op);
  latency_[i].Observe(us);
  AtomicAddDouble(&total_us_[i], us * static_cast<double>(represented_ops));
}

ColumnHeat::OpTotals ColumnHeat::Totals(ColumnOp op) const {
  const auto i = static_cast<size_t>(op);
  OpTotals totals;
  totals.count = counts_[i].load(std::memory_order_relaxed);
  totals.bytes = bytes_[i].load(std::memory_order_relaxed);
  totals.total_us = total_us_[i].load(std::memory_order_relaxed);
  return totals;
}

uint64_t ColumnHeat::TotalOps() const {
  uint64_t total = 0;
  for (const auto& count : counts_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

double ColumnHeat::FoldLocked(double now_seconds,
                              double extra_age_seconds) const {
  const double half_life = Profiler().half_life_seconds();
  const double dt =
      std::max(0.0, now_seconds - last_fold_seconds_) + extra_age_seconds;
  if (dt > 0 && half_life > 0) {
    heat_ *= std::exp2(-dt / half_life);
  }
  const uint64_t total = TotalOps();
  heat_ += static_cast<double>(total - folded_ops_);
  folded_ops_ = total;
  last_fold_seconds_ = now_seconds;
  heat_gauge_->Set(heat_);
  return heat_;
}

double ColumnHeat::DecayedHeat() const {
  MutexLock lock(&decay_mutex_);
  return FoldLocked(SteadySeconds(), 0.0);
}

void ColumnHeat::DecayForTest(double seconds) {
  MutexLock lock(&decay_mutex_);
  // Fold pending ops at full weight first, then age the folded heat: the
  // documented "as if `seconds` passed from now on" semantics. A single
  // fold would decay only previously-folded heat and let pending ops ride
  // through untouched.
  FoldLocked(SteadySeconds(), 0.0);
  FoldLocked(SteadySeconds(), seconds);
}

void ColumnHeat::ResetValues() {
  for (auto& count : counts_) count.store(0, std::memory_order_relaxed);
  for (auto& bytes : bytes_) bytes.store(0, std::memory_order_relaxed);
  for (auto& us : total_us_) us.store(0, std::memory_order_relaxed);
  for (auto& histogram : latency_) histogram.Reset();
  MutexLock lock(&decay_mutex_);
  heat_ = 0;
  folded_ops_ = 0;
  last_fold_seconds_ = SteadySeconds();
  heat_gauge_->Set(0);
}

ColumnHeat* WorkloadProfiler::GetColumn(std::string_view name) {
  MutexLock lock(&mutex_);
  const auto it = columns_.find(name);
  if (it != columns_.end()) return &it->second;
  return &columns_
              .emplace(std::piecewise_construct,
                       std::forward_as_tuple(std::string(name)),
                       std::forward_as_tuple(std::string(name)))
              .first->second;
}

std::vector<const ColumnHeat*> WorkloadProfiler::Columns() const {
  MutexLock lock(&mutex_);
  std::vector<const ColumnHeat*> columns;
  columns.reserve(columns_.size());
  for (const auto& [name, slot] : columns_) columns.push_back(&slot);
  return columns;  // std::map iterates in name order
}

std::vector<ColumnHeat*> WorkloadProfiler::MutableColumns() {
  MutexLock lock(&mutex_);
  std::vector<ColumnHeat*> columns;
  columns.reserve(columns_.size());
  for (auto& [name, slot] : columns_) columns.push_back(&slot);
  return columns;
}

void WorkloadProfiler::RefreshHeatGauges() {
  // DecayedHeat folds and publishes each slot's gauge.
  for (ColumnHeat* slot : MutableColumns()) (void)slot->DecayedHeat();
}

void WorkloadProfiler::RecordQuery(QueryAttribution record) {
  MutexLock lock(&mutex_);
  ++total_queries_;
  queries_.push_back(std::move(record));
  while (queries_.size() > kQueryRingCapacity) queries_.pop_front();
}

std::vector<QueryAttribution> WorkloadProfiler::RecentQueries() const {
  MutexLock lock(&mutex_);
  return {queries_.begin(), queries_.end()};
}

uint64_t WorkloadProfiler::total_queries() const {
  MutexLock lock(&mutex_);
  return total_queries_;
}

void WorkloadProfiler::RecordSchedulerRanking(
    std::vector<SchedulerRankEntry> ranking) {
  MutexLock lock(&mutex_);
  ranking_ = std::move(ranking);
}

std::vector<SchedulerRankEntry> WorkloadProfiler::LatestSchedulerRanking()
    const {
  MutexLock lock(&mutex_);
  return ranking_;
}

void WorkloadProfiler::ResetValues() {
  for (ColumnHeat* slot : MutableColumns()) slot->ResetValues();
  MutexLock lock(&mutex_);
  queries_.clear();
  total_queries_ = 0;
  ranking_.clear();
}

WorkloadProfiler& Profiler() {
  static WorkloadProfiler* profiler = new WorkloadProfiler();
  return *profiler;
}

ScopedQueryProfile::ScopedQueryProfile(std::string_view query)
    : query_(query) {
  if (!Enabled()) return;
  active_ = true;
  for (ColumnHeat* slot : Profiler().MutableColumns()) {
    SlotSnapshot snapshot;
    snapshot.slot = slot;
    for (int op = 0; op < kNumColumnOps; ++op) {
      snapshot.ops[op] = slot->Totals(static_cast<ColumnOp>(op));
    }
    before_.push_back(snapshot);
  }
  start_ = std::chrono::steady_clock::now();
}

ScopedQueryProfile::~ScopedQueryProfile() {
  if (!active_) return;
  QueryAttribution record;
  record.query = query_;
  record.wall_us = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  // Slots created after the constructor ran have a zero baseline; walk the
  // current slot list and look each one up in the snapshot.
  for (ColumnHeat* slot : Profiler().MutableColumns()) {
    const SlotSnapshot* base = nullptr;
    for (const SlotSnapshot& snapshot : before_) {
      if (snapshot.slot == slot) {
        base = &snapshot;
        break;
      }
    }
    QueryColumnUsage usage;
    usage.column = slot->name();
    bool touched = false;
    for (int op = 0; op < kNumColumnOps; ++op) {
      ColumnHeat::OpTotals now = slot->Totals(static_cast<ColumnOp>(op));
      if (base != nullptr) {
        now.count -= base->ops[op].count;
        now.bytes -= base->ops[op].bytes;
        now.total_us -= base->ops[op].total_us;
      }
      usage.ops[op] = now;
      touched = touched || now.count != 0;
    }
    if (touched) record.columns.push_back(std::move(usage));
  }
  if (Enabled()) {
    static Counter* queries = Metrics().GetCounter(
        "profiler.queries.count", "queries",
        "queries attributed by the workload profiler");
    queries->Increment();
  }
  Profiler().RecordQuery(std::move(record));
}

std::string ProfileToJson(const WorkloadProfiler& profiler) {
  std::string out;
  Appendf(&out, "{\"half_life_seconds\":%.6g,\"columns\":[",
          profiler.half_life_seconds());
  bool first = true;
  for (const ColumnHeat* slot : profiler.Columns()) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, slot->name());
    Appendf(&out, ",\"heat\":%.6g,\"ops\":{", slot->DecayedHeat());
    for (int op = 0; op < kNumColumnOps; ++op) {
      if (op > 0) out.push_back(',');
      const auto which = static_cast<ColumnOp>(op);
      const ColumnHeat::OpTotals totals = slot->Totals(which);
      const Histogram& latency = slot->latency(which);
      AppendJsonString(&out, ColumnOpName(which));
      Appendf(&out,
              ":{\"count\":%" PRIu64 ",\"bytes\":%" PRIu64
              ",\"total_us\":%.6g,\"p50_us\":%.6g,\"p95_us\":%.6g"
              ",\"p99_us\":%.6g}",
              totals.count, totals.bytes, totals.total_us,
              latency.Quantile(0.50), latency.Quantile(0.95),
              latency.Quantile(0.99));
    }
    out.append("}}");
  }
  Appendf(&out, "],\"total_queries\":%" PRIu64 ",\"queries\":[",
          profiler.total_queries());
  first = true;
  for (const QueryAttribution& query : profiler.RecentQueries()) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"query\":");
    AppendJsonString(&out, query.query);
    Appendf(&out, ",\"wall_us\":%.6g,\"columns\":[", query.wall_us);
    for (size_t i = 0; i < query.columns.size(); ++i) {
      if (i > 0) out.push_back(',');
      const QueryColumnUsage& usage = query.columns[i];
      out.append("{\"name\":");
      AppendJsonString(&out, usage.column);
      for (int op = 0; op < kNumColumnOps; ++op) {
        const auto which = static_cast<ColumnOp>(op);
        if (usage.ops[op].count == 0) continue;
        Appendf(&out, ",\"%s\":{\"count\":%" PRIu64 ",\"bytes\":%" PRIu64
                      ",\"total_us\":%.6g}",
                std::string(ColumnOpName(which)).c_str(), usage.ops[op].count,
                usage.ops[op].bytes, usage.ops[op].total_us);
      }
      out.push_back('}');
    }
    out.append("]}");
  }
  out.append("],\"scheduler_ranking\":[");
  first = true;
  for (const SchedulerRankEntry& entry : profiler.LatestSchedulerRanking()) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"column\":");
    AppendJsonString(&out, entry.column);
    Appendf(&out,
            ",\"score\":%.6g,\"decayed_heat\":%.6g,\"dict_bytes\":%" PRIu64
            ",\"staleness\":%.6g}",
            entry.score, entry.decayed_heat, entry.dict_bytes,
            entry.staleness);
  }
  out.append("]}");
  return out;
}

}  // namespace obs
}  // namespace adict
