#include "dict/front_coding.h"

#include <algorithm>

#include "util/bit_stream.h"
#include "util/check.h"
#include "util/varint.h"

namespace adict {

uint32_t CommonPrefixLength(std::string_view a, std::string_view b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return static_cast<uint32_t>(i);
}

namespace {

/// Finds the last block whose first string is <= str. Returns false if str
/// precedes the very first string. `first_of` extracts a block's first
/// string into the scratch buffer and returns a view of it.
template <typename FirstOfFn>
bool FindCandidateBlock(uint32_t num_blocks, std::string_view str,
                        const FirstOfFn& first_of, uint32_t* block) {
  uint32_t lo = 0, hi = num_blocks;  // first block with first string > str
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (first_of(mid) <= str) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return false;
  *block = lo - 1;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// FcBlockDict
// ---------------------------------------------------------------------------

std::unique_ptr<FcBlockDict> FcBlockDict::Build(
    DictFormat format, std::span<const std::string> sorted_unique) {
  ADICT_DCHECK(IsSortedUnique(sorted_unique));
  ADICT_CHECK(format == DictFormat::kFcBlockDf ||
              (IsFrontCodingClass(format) && format != DictFormat::kFcInline));

  auto dict = std::unique_ptr<FcBlockDict>(new FcBlockDict());
  dict->format_ = format;
  dict->diff_to_first_ = format == DictFormat::kFcBlockDf;
  dict->num_strings_ = static_cast<uint32_t>(sorted_unique.size());

  // Pass 1: front-code into (prefix length, suffix) pairs.
  const uint32_t n = dict->num_strings_;
  std::vector<uint32_t> prefix_lens(n, 0);
  std::vector<std::string_view> suffixes(n);
  for (uint32_t i = 0; i < n; ++i) {
    const std::string_view s = sorted_unique[i];
    uint32_t p = 0;
    if (i % kBlockSize != 0) {
      const std::string_view reference =
          dict->diff_to_first_ ? std::string_view(sorted_unique[i - i % kBlockSize])
                               : std::string_view(sorted_unique[i - 1]);
      p = std::min(CommonPrefixLength(reference, s), kMaxPrefixLength);
    }
    prefix_lens[i] = p;
    suffixes[i] = s.substr(p);
  }

  // Train the codec on exactly the parts that get stored.
  const CodecKind codec_kind = DictFormatCodec(format);
  if (codec_kind != CodecKind::kNone) {
    dict->codec_ = TrainCodec(codec_kind, suffixes);
  }

  // Pass 2: emit payload and headers.
  dict->headers_.reserve(static_cast<size_t>(n) * kHeaderBytesPerString);
  dict->offsets_.reserve(dict->NumBlocks());
  BitWriter bit_writer;
  std::vector<uint8_t> raw_data;
  for (uint32_t i = 0; i < n; ++i) {
    if (i % kBlockSize == 0) {
      const uint64_t offset =
          dict->codec_ ? bit_writer.bit_count() : raw_data.size();
      ADICT_CHECK_MSG(offset < (1ull << 32), "fc dictionary payload too large");
      dict->offsets_.push_back(static_cast<uint32_t>(offset));
    }
    uint64_t suffix_size;
    if (dict->codec_) {
      suffix_size = dict->codec_->Encode(suffixes[i], &bit_writer);
    } else {
      raw_data.insert(raw_data.end(), suffixes[i].begin(), suffixes[i].end());
      suffix_size = suffixes[i].size();
    }
    ADICT_CHECK_MSG(suffix_size < (1u << 24), "fc suffix too large for header");
    const uint32_t packed =
        (prefix_lens[i] << 24) | static_cast<uint32_t>(suffix_size);
    dict->headers_.push_back(static_cast<uint8_t>(packed));
    dict->headers_.push_back(static_cast<uint8_t>(packed >> 8));
    dict->headers_.push_back(static_cast<uint8_t>(packed >> 16));
    dict->headers_.push_back(static_cast<uint8_t>(packed >> 24));
  }
  dict->data_ = dict->codec_ ? bit_writer.TakeBytes() : std::move(raw_data);
  dict->data_.shrink_to_fit();
  return dict;
}

void FcBlockDict::ReadSuffix(uint64_t* pos, uint32_t suffix_size,
                             std::string* out) const {
  if (codec_) {
    BitReader reader(data_.data(), *pos);
    codec_->Decode(&reader, suffix_size, out);
  } else {
    out->append(reinterpret_cast<const char*>(data_.data()) + *pos,
                suffix_size);
  }
  *pos += suffix_size;
}

void FcBlockDict::ExtractWithinBlock(uint32_t block, uint32_t index_in_block,
                                     std::string* out) const {
  const size_t base = out->size();
  const uint32_t first = block * kBlockSize;
  uint64_t pos = offsets_[block];

  // First string is always materialized.
  ReadSuffix(&pos, HeaderAt(first).suffix_size, out);
  if (index_in_block == 0) return;

  if (diff_to_first_) {
    // Suffixes differ from the first string: skip the siblings' payload
    // without decoding, then rebuild from the first string's prefix.
    for (uint32_t i = 1; i < index_in_block; ++i) {
      pos += HeaderAt(first + i).suffix_size;
    }
    const Header h = HeaderAt(first + index_in_block);
    out->resize(base + h.prefix_len);
    uint64_t final_pos = pos;
    ReadSuffix(&final_pos, h.suffix_size, out);
    return;
  }

  // Chained differences: materialize every predecessor.
  for (uint32_t i = 1; i <= index_in_block; ++i) {
    const Header h = HeaderAt(first + i);
    out->resize(base + h.prefix_len);
    ReadSuffix(&pos, h.suffix_size, out);
  }
}

void FcBlockDict::ExtractInto(uint32_t id, std::string* out) const {
  ADICT_DCHECK(id < num_strings_);
  ExtractWithinBlock(id / kBlockSize, id % kBlockSize, out);
}

LocateResult FcBlockDict::Locate(std::string_view str) const {
  if (num_strings_ == 0) return {0, false};

  std::string scratch;
  const auto first_of = [this, &scratch](uint32_t block) {
    scratch.clear();
    uint64_t pos = offsets_[block];
    ReadSuffix(&pos, HeaderAt(block * kBlockSize).suffix_size, &scratch);
    return std::string_view(scratch);
  };
  uint32_t block;
  if (!FindCandidateBlock(NumBlocks(), str, first_of, &block)) {
    return {0, false};
  }

  // Sequential scan inside the candidate block. The incremental rebuild is
  // valid for both modes: with diff-to-first, prefix lengths are
  // non-increasing in sorted order, so the running string always agrees with
  // the first string on the required prefix.
  const uint32_t first = block * kBlockSize;
  const uint32_t count = std::min(kBlockSize, num_strings_ - first);
  scratch.clear();
  uint64_t pos = offsets_[block];
  for (uint32_t i = 0; i < count; ++i) {
    const Header h = HeaderAt(first + i);
    scratch.resize(h.prefix_len);  // prefix_len is 0 for i == 0
    ReadSuffix(&pos, h.suffix_size, &scratch);
    if (scratch == str) return {first + i, true};
    if (scratch > str) return {first + i, false};
  }
  return {std::min(first + kBlockSize, num_strings_), false};
}

void FcBlockDict::Scan(
    uint32_t first, uint32_t count,
    const std::function<void(uint32_t, std::string_view)>& fn) const {
  ADICT_DCHECK(static_cast<uint64_t>(first) + count <= num_strings_);
  // Reconstruct each touched block once, walking its chain sequentially
  // (valid for both modes; see Locate).
  std::string scratch;
  uint32_t id = first;
  const uint32_t last = first + count;
  while (id < last) {
    const uint32_t block = id / kBlockSize;
    const uint32_t block_first = block * kBlockSize;
    const uint32_t block_count = std::min(kBlockSize, num_strings_ - block_first);
    scratch.clear();
    uint64_t pos = offsets_[block];
    for (uint32_t i = 0; i < block_count && block_first + i < last; ++i) {
      const Header h = HeaderAt(block_first + i);
      scratch.resize(h.prefix_len);
      ReadSuffix(&pos, h.suffix_size, &scratch);
      if (block_first + i >= first) fn(block_first + i, scratch);
    }
    id = block_first + block_count;
  }
}

size_t FcBlockDict::MemoryBytes() const {
  return sizeof(*this) + data_.size() + headers_.size() +
         offsets_.size() * sizeof(uint32_t) +
         (codec_ ? codec_->TableBytes() : 0);
}

void FcBlockDict::Serialize(ByteWriter* out) const {
  out->Write<uint16_t>(static_cast<uint16_t>(format_));
  out->Write<uint32_t>(num_strings_);
  SerializeCodec(codec_.get(), out);
  out->WriteVector(data_);
  out->WriteVector(headers_);
  out->WriteVector(offsets_);
}

std::unique_ptr<FcBlockDict> FcBlockDict::Deserialize(ByteReader* in) {
  auto dict = std::unique_ptr<FcBlockDict>(new FcBlockDict());
  const uint16_t raw_tag = in->Read<uint16_t>();
  if (raw_tag >= kNumDictFormats) {
    in->Fail("fc block dictionary format tag corrupt");
    return nullptr;
  }
  dict->format_ = static_cast<DictFormat>(raw_tag);
  dict->diff_to_first_ = dict->format_ == DictFormat::kFcBlockDf;
  dict->num_strings_ = in->Read<uint32_t>();
  dict->codec_ = DeserializeCodec(in);
  dict->data_ = in->ReadVector<uint8_t>();
  dict->headers_ = in->ReadVector<uint8_t>();
  dict->offsets_ = in->ReadVector<uint32_t>();
  if (!IsFrontCodingClass(dict->format_) ||
      (dict->codec_ == nullptr) !=
          (DictFormatCodec(dict->format_) == CodecKind::kNone) ||
      dict->headers_.size() !=
          static_cast<size_t>(dict->num_strings_) * kHeaderBytesPerString) {
    in->Fail("fc block dictionary structure corrupt");
    return nullptr;
  }
  return dict;
}

// ---------------------------------------------------------------------------
// FcInlineDict
// ---------------------------------------------------------------------------

std::unique_ptr<FcInlineDict> FcInlineDict::Build(
    std::span<const std::string> sorted_unique) {
  ADICT_DCHECK(IsSortedUnique(sorted_unique));
  auto dict = std::unique_ptr<FcInlineDict>(new FcInlineDict());
  dict->num_strings_ = static_cast<uint32_t>(sorted_unique.size());
  for (uint32_t i = 0; i < dict->num_strings_; ++i) {
    const std::string_view s = sorted_unique[i];
    uint32_t p = 0;
    if (i % kBlockSize == 0) {
      ADICT_CHECK_MSG(dict->data_.size() < (1ull << 32),
                      "fc inline payload too large");
      dict->offsets_.push_back(static_cast<uint32_t>(dict->data_.size()));
    } else {
      p = CommonPrefixLength(sorted_unique[i - 1], s);
    }
    PutVarint(&dict->data_, p);
    PutVarint(&dict->data_, s.size() - p);
    dict->data_.insert(dict->data_.end(), s.begin() + p, s.end());
  }
  dict->data_.shrink_to_fit();
  return dict;
}

void FcInlineDict::ExtractWithinBlock(uint32_t block, uint32_t index_in_block,
                                      std::string* out) const {
  const size_t base = out->size();
  size_t pos = offsets_[block];
  for (uint32_t i = 0; i <= index_in_block; ++i) {
    const uint64_t prefix_len = GetVarint(data_.data(), &pos);
    const uint64_t suffix_len = GetVarint(data_.data(), &pos);
    out->resize(base + prefix_len);
    out->append(reinterpret_cast<const char*>(data_.data()) + pos, suffix_len);
    pos += suffix_len;
  }
}

void FcInlineDict::ExtractInto(uint32_t id, std::string* out) const {
  ADICT_DCHECK(id < num_strings_);
  ExtractWithinBlock(id / kBlockSize, id % kBlockSize, out);
}

LocateResult FcInlineDict::Locate(std::string_view str) const {
  if (num_strings_ == 0) return {0, false};

  const uint32_t num_blocks = (num_strings_ + kBlockSize - 1) / kBlockSize;
  std::string scratch;
  const auto first_of = [this, &scratch](uint32_t block) {
    scratch.clear();
    ExtractWithinBlock(block, 0, &scratch);
    return std::string_view(scratch);
  };
  uint32_t block;
  if (!FindCandidateBlock(num_blocks, str, first_of, &block)) {
    return {0, false};
  }

  const uint32_t first = block * kBlockSize;
  const uint32_t count = std::min(kBlockSize, num_strings_ - first);
  scratch.clear();
  size_t pos = offsets_[block];
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t prefix_len = GetVarint(data_.data(), &pos);
    const uint64_t suffix_len = GetVarint(data_.data(), &pos);
    scratch.resize(prefix_len);
    scratch.append(reinterpret_cast<const char*>(data_.data()) + pos,
                   suffix_len);
    pos += suffix_len;
    if (scratch == str) return {first + i, true};
    if (scratch > str) return {first + i, false};
  }
  return {std::min(first + kBlockSize, num_strings_), false};
}

void FcInlineDict::Scan(
    uint32_t first, uint32_t count,
    const std::function<void(uint32_t, std::string_view)>& fn) const {
  ADICT_DCHECK(static_cast<uint64_t>(first) + count <= num_strings_);
  // One forward pass over the interleaved stream: this is the layout's
  // purpose (paper: "in order to improve sequential access").
  std::string scratch;
  uint32_t id = first;
  const uint32_t last = first + count;
  while (id < last) {
    const uint32_t block = id / kBlockSize;
    const uint32_t block_first = block * kBlockSize;
    const uint32_t block_count = std::min(kBlockSize, num_strings_ - block_first);
    scratch.clear();
    size_t pos = offsets_[block];
    for (uint32_t i = 0; i < block_count && block_first + i < last; ++i) {
      const uint64_t prefix_len = GetVarint(data_.data(), &pos);
      const uint64_t suffix_len = GetVarint(data_.data(), &pos);
      scratch.resize(prefix_len);
      scratch.append(reinterpret_cast<const char*>(data_.data()) + pos,
                     suffix_len);
      pos += suffix_len;
      if (block_first + i >= first) fn(block_first + i, scratch);
    }
    id = block_first + block_count;
  }
}

size_t FcInlineDict::MemoryBytes() const {
  return sizeof(*this) + data_.size() + offsets_.size() * sizeof(uint32_t);
}

void FcInlineDict::Serialize(ByteWriter* out) const {
  out->Write<uint32_t>(num_strings_);
  out->WriteVector(data_);
  out->WriteVector(offsets_);
}

std::unique_ptr<FcInlineDict> FcInlineDict::Deserialize(ByteReader* in) {
  auto dict = std::unique_ptr<FcInlineDict>(new FcInlineDict());
  dict->num_strings_ = in->Read<uint32_t>();
  dict->data_ = in->ReadVector<uint8_t>();
  dict->offsets_ = in->ReadVector<uint32_t>();
  const size_t expected_blocks =
      (static_cast<size_t>(dict->num_strings_) + kBlockSize - 1) / kBlockSize;
  if (dict->offsets_.size() != expected_blocks ||
      !std::is_sorted(dict->offsets_.begin(), dict->offsets_.end()) ||
      (!dict->offsets_.empty() &&
       dict->offsets_.back() >= dict->data_.size())) {
    in->Fail("fc inline dictionary structure corrupt");
    return nullptr;
  }
  return dict;
}

}  // namespace adict
