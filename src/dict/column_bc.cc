#include "dict/column_bc.h"

#include <algorithm>
#include <array>
#include <bit>

#include "util/bit_stream.h"
#include "util/check.h"

namespace adict {
namespace {

// Block layout (byte-aligned header, then one bit-packed payload):
//   u16 num_rows, u16 max_len, u8 len_width
//   per character position j < max_len:
//     u8 alpha_size - 1, then alpha_size sorted alphabet bytes
//   payload bits:
//     lengths   num_rows * len_width
//     column j  num_rows * width_j          (width_j = bits for alpha_size_j)

inline int WidthForAlphabet(int alpha_size) {
  return alpha_size <= 1 ? 0 : std::bit_width(static_cast<unsigned>(alpha_size - 1));
}

inline uint16_t ReadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

}  // namespace

size_t ColumnBcDict::EncodeBlock(std::span<const std::string_view> rows,
                                 std::vector<uint8_t>* arena) {
  ADICT_CHECK(!rows.empty() && rows.size() < (1u << 16));
  const size_t start = arena->size();
  const uint32_t num_rows = static_cast<uint32_t>(rows.size());
  size_t max_len = 0;
  for (std::string_view r : rows) max_len = std::max(max_len, r.size());
  ADICT_CHECK_MSG(max_len < (1u << 16), "column bc string too long");

  const int len_width =
      max_len == 0 ? 0 : std::bit_width(static_cast<unsigned>(max_len));
  arena->push_back(static_cast<uint8_t>(num_rows));
  arena->push_back(static_cast<uint8_t>(num_rows >> 8));
  arena->push_back(static_cast<uint8_t>(max_len));
  arena->push_back(static_cast<uint8_t>(max_len >> 8));
  arena->push_back(static_cast<uint8_t>(len_width));

  // Per-position alphabets (pad byte 0 for rows shorter than the position).
  std::vector<std::array<uint8_t, 256>> char_to_code(max_len);
  std::vector<int> widths(max_len);
  for (size_t j = 0; j < max_len; ++j) {
    std::array<bool, 256> seen{};
    for (std::string_view r : rows) {
      seen[j < r.size() ? static_cast<unsigned char>(r[j]) : 0] = true;
    }
    int alpha_size = 0;
    std::array<uint8_t, 256>& mapping = char_to_code[j];
    const size_t alpha_size_pos = arena->size();
    arena->push_back(0);  // patched below
    for (int c = 0; c < 256; ++c) {
      if (!seen[c]) continue;
      mapping[c] = static_cast<uint8_t>(alpha_size++);
      arena->push_back(static_cast<uint8_t>(c));
    }
    (*arena)[alpha_size_pos] = static_cast<uint8_t>(alpha_size - 1);
    widths[j] = WidthForAlphabet(alpha_size);
  }

  // Payload.
  BitWriter payload;
  for (std::string_view r : rows) {
    payload.WriteBits(r.size(), len_width);
  }
  for (size_t j = 0; j < max_len; ++j) {
    if (widths[j] == 0) continue;
    for (std::string_view r : rows) {
      const unsigned char ch = j < r.size() ? static_cast<unsigned char>(r[j]) : 0;
      payload.WriteBits(char_to_code[j][ch], widths[j]);
    }
  }
  const std::vector<uint8_t> payload_bytes = payload.TakeBytes();
  arena->insert(arena->end(), payload_bytes.begin(), payload_bytes.end());
  return arena->size() - start;
}

std::unique_ptr<ColumnBcDict> ColumnBcDict::Build(
    std::span<const std::string> sorted_unique) {
  ADICT_DCHECK(IsSortedUnique(sorted_unique));
  auto dict = std::unique_ptr<ColumnBcDict>(new ColumnBcDict());
  dict->num_strings_ = static_cast<uint32_t>(sorted_unique.size());
  std::vector<std::string_view> rows;
  for (uint32_t first = 0; first < dict->num_strings_; first += kBlockSize) {
    const uint32_t count = std::min(kBlockSize, dict->num_strings_ - first);
    rows.assign(sorted_unique.begin() + first,
                sorted_unique.begin() + first + count);
    ADICT_CHECK_MSG(dict->arena_.size() < (1ull << 32),
                    "column bc payload too large");
    dict->offsets_.push_back(static_cast<uint32_t>(dict->arena_.size()));
    EncodeBlock(rows, &dict->arena_);
  }
  dict->arena_.shrink_to_fit();
  return dict;
}

void ColumnBcDict::DecodeRow(size_t offset, uint32_t row,
                             std::string* out) const {
  const uint8_t* block = arena_.data() + offset;
  const uint32_t num_rows = ReadU16(block);
  const uint32_t max_len = ReadU16(block + 2);
  const int len_width = block[4];
  ADICT_DCHECK(row < num_rows);

  // Pass 1: total header size (to find the payload).
  size_t header_pos = 5;
  for (uint32_t j = 0; j < max_len; ++j) {
    header_pos += 2 + block[header_pos];  // size byte + (alpha_size-1)+1 chars
  }
  const uint64_t payload_bit = (offset + header_pos) * 8;

  BitReader len_reader(arena_.data(), payload_bit + row * len_width);
  const uint32_t len = static_cast<uint32_t>(len_reader.ReadBits(len_width));

  // Pass 2: walk the alphabets again, reading this row's code per column.
  size_t alpha_pos = 5;
  uint64_t column_bit = payload_bit + static_cast<uint64_t>(num_rows) * len_width;
  for (uint32_t j = 0; j < len; ++j) {
    const int alpha_size = block[alpha_pos] + 1;
    const int width = WidthForAlphabet(alpha_size);
    if (width == 0) {
      out->push_back(static_cast<char>(block[alpha_pos + 1]));
    } else {
      BitReader reader(arena_.data(), column_bit + row * width);
      const uint64_t code = reader.ReadBits(width);
      out->push_back(static_cast<char>(block[alpha_pos + 1 + code]));
    }
    alpha_pos += 2 + block[alpha_pos];
    column_bit += static_cast<uint64_t>(num_rows) * width;
  }
}

void ColumnBcDict::ExtractInto(uint32_t id, std::string* out) const {
  ADICT_DCHECK(id < num_strings_);
  DecodeRow(offsets_[id / kBlockSize], id % kBlockSize, out);
}

LocateResult ColumnBcDict::Locate(std::string_view str) const {
  if (num_strings_ == 0) return {0, false};

  // Binary search for the last block whose first row is <= str.
  const uint32_t num_blocks = static_cast<uint32_t>(offsets_.size());
  std::string scratch;
  uint32_t lo = 0, hi = num_blocks;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    scratch.clear();
    DecodeRow(offsets_[mid], 0, &scratch);
    if (scratch <= str) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return {0, false};
  const uint32_t block = lo - 1;

  const uint32_t first = block * kBlockSize;
  const uint32_t count = std::min(kBlockSize, num_strings_ - first);
  for (uint32_t i = 0; i < count; ++i) {
    scratch.clear();
    DecodeRow(offsets_[block], i, &scratch);
    if (scratch == str) return {first + i, true};
    if (scratch > str) return {first + i, false};
  }
  return {std::min(first + kBlockSize, num_strings_), false};
}

size_t ColumnBcDict::MemoryBytes() const {
  return sizeof(*this) + arena_.size() + offsets_.size() * sizeof(uint32_t);
}

void ColumnBcDict::Serialize(ByteWriter* out) const {
  out->Write<uint32_t>(num_strings_);
  out->WriteVector(arena_);
  out->WriteVector(offsets_);
}

std::unique_ptr<ColumnBcDict> ColumnBcDict::Deserialize(ByteReader* in) {
  auto dict = std::unique_ptr<ColumnBcDict>(new ColumnBcDict());
  dict->num_strings_ = in->Read<uint32_t>();
  dict->arena_ = in->ReadVector<uint8_t>();
  dict->offsets_ = in->ReadVector<uint32_t>();
  const size_t expected_blocks =
      (static_cast<size_t>(dict->num_strings_) + kBlockSize - 1) / kBlockSize;
  if (dict->offsets_.size() != expected_blocks ||
      !std::is_sorted(dict->offsets_.begin(), dict->offsets_.end()) ||
      (!dict->offsets_.empty() &&
       dict->offsets_.back() >= dict->arena_.size())) {
    in->Fail("column bc dictionary structure corrupt");
    return nullptr;
  }
  return dict;
}

}  // namespace adict
