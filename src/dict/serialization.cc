#include "dict/serialization.h"

#include <cstdio>

#include "dict/array_dict.h"
#include "dict/column_bc.h"
#include "dict/front_coding.h"
#include "obs/obs.h"
#include "util/crc32.h"
#include "util/failpoint.h"

namespace adict {
namespace {

constexpr uint32_t kMagic = 0x43494441;  // "ADIC", little endian
constexpr uint16_t kVersion = 2;
// v1: magic | version | format | payload — no length, no checksum.
constexpr uint16_t kLegacyVersion = 1;

// magic + version + format.
constexpr size_t kCommonHeaderBytes = 4 + 2 + 2;
// v2 adds payload length + CRC-32.
constexpr size_t kV2TrailerBytes = 8 + 4;

void CountCorruption() {
  if (obs::Enabled()) {
    static obs::Counter* corrupt = obs::Metrics().GetCounter(
        "dict.load.corruption", "errors",
        "dictionary loads rejected as corrupt or truncated");
    corrupt->Increment();
  }
}

Status Corrupt(const char* msg) {
  CountCorruption();
  return Status::Corruption(msg);
}

Status Truncated(const char* msg) {
  CountCorruption();
  return Status::Truncated(msg);
}

/// Dispatches the checksummed (or, for v1, best-effort) payload to the
/// format's deserializer. `format` has been range-validated; `payload` is a
/// kRecord-mode reader bounded to the payload bytes, so neither an overrun
/// nor an invariant violation can abort.
std::unique_ptr<Dictionary> DeserializePayload(DictFormat format,
                                               ByteReader* payload) {
  switch (format) {
    case DictFormat::kArray:
      return RawArrayDict::Deserialize(payload);
    case DictFormat::kArrayBc:
    case DictFormat::kArrayHu:
    case DictFormat::kArrayNg2:
    case DictFormat::kArrayNg3:
    case DictFormat::kArrayRp12:
    case DictFormat::kArrayRp16:
      return CodedArrayDict::Deserialize(payload);
    case DictFormat::kArrayFixed:
      return FixedArrayDict::Deserialize(payload);
    case DictFormat::kFcBlock:
    case DictFormat::kFcBlockBc:
    case DictFormat::kFcBlockHu:
    case DictFormat::kFcBlockNg2:
    case DictFormat::kFcBlockNg3:
    case DictFormat::kFcBlockRp12:
    case DictFormat::kFcBlockRp16:
    case DictFormat::kFcBlockDf:
      return FcBlockDict::Deserialize(payload);
    case DictFormat::kFcInline:
      return FcInlineDict::Deserialize(payload);
    case DictFormat::kColumnBc:
      return ColumnBcDict::Deserialize(payload);
  }
  return nullptr;  // unreachable: tag validated before the switch
}

}  // namespace

void SaveDictionary(const Dictionary& dict, std::vector<uint8_t>* out) {
  ByteWriter writer(out);
  writer.Write<uint32_t>(kMagic);
  writer.Write<uint16_t>(kVersion);
  const size_t checksummed_from = out->size();  // format tag onwards
  writer.Write<uint16_t>(static_cast<uint16_t>(dict.format()));

  std::vector<uint8_t> payload;
  ByteWriter payload_writer(&payload);
  dict.Serialize(&payload_writer);
  writer.Write<uint64_t>(payload.size());

  Crc32 crc;  // format tag + length field + payload
  crc.Update(out->data() + checksummed_from, out->size() - checksummed_from);
  crc.Update(payload.data(), payload.size());
  writer.Write<uint32_t>(crc.value());
  writer.WriteBytes(payload.data(), payload.size());

  if (obs::Enabled()) {
    static obs::Counter* saves = obs::Metrics().GetCounter(
        "dict.save.count", "calls", "dictionaries serialized");
    saves->Increment();
  }
}

StatusOr<std::unique_ptr<Dictionary>> LoadDictionary(ByteReader* in) {
  if (obs::Enabled()) {
    static obs::Counter* loads = obs::Metrics().GetCounter(
        "dict.load.count", "calls", "dictionaries deserialized");
    loads->Increment();
  }
  if (ADICT_FAIL_POINT("dict.load")) {
    return Corrupt("injected dict.load failure");
  }

  // Header fields are read only after an explicit remaining() check, so this
  // path is overrun-free even on an abort-mode reader.
  if (in->remaining() < kCommonHeaderBytes) {
    return Truncated("envelope header truncated");
  }
  if (in->Read<uint32_t>() != kMagic) return Corrupt("bad dictionary magic");
  const uint16_t version = in->Read<uint16_t>();
  if (version != kVersion && version != kLegacyVersion) {
    CountCorruption();
    return Status::UnsupportedVersion("unknown dictionary envelope version");
  }

  const uint8_t* checksummed_from = in->cursor();  // format tag onwards
  const uint16_t raw_tag = in->Read<uint16_t>();

  size_t payload_len = 0;
  if (version == kVersion) {
    if (in->remaining() < kV2TrailerBytes) {
      return Truncated("envelope trailer truncated");
    }
    const uint64_t stored_len = in->Read<uint64_t>();
    const size_t checksummed_header =
        static_cast<size_t>(in->cursor() - checksummed_from);
    const uint32_t stored_crc = in->Read<uint32_t>();
    if (stored_len > in->remaining()) return Truncated("payload truncated");
    payload_len = static_cast<size_t>(stored_len);

    Crc32 crc;
    crc.Update(checksummed_from, checksummed_header);
    crc.Update(in->cursor(), payload_len);
    if (crc.value() != stored_crc) return Corrupt("checksum mismatch");
  } else {
    // v1 compatibility: accepted with a logged warning, but the image
    // carries no length or checksum, so corruption detection is best-effort
    // (structural checks in the deserializers only).
    if (obs::Enabled()) {
      static obs::Counter* legacy = obs::Metrics().GetCounter(
          "dict.load.v1_compat", "loads",
          "v1 (unchecksummed) dictionary images accepted");
      legacy->Increment();
    }
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "adict: loading v1 dictionary image without checksum; "
                   "re-save to upgrade to the v2 envelope\n");
    }
    payload_len = in->remaining();
  }

  // Satellite of the robustness work: validate the tag range *before* any
  // dispatch, so an enum value added later can never fall through a switch.
  if (raw_tag >= kNumDictFormats) return Corrupt("format tag out of range");
  const DictFormat format = static_cast<DictFormat>(raw_tag);

  // Parse the payload through a recording reader bounded to the payload
  // slice: a deserializer can neither abort nor read past the envelope.
  ByteReader payload(in->cursor(), payload_len, ByteReader::OnError::kRecord);
  std::unique_ptr<Dictionary> dict = DeserializePayload(format, &payload);
  in->Skip(version == kVersion ? payload_len : payload.position());
  if (payload.failed() || dict == nullptr) {
    return Corrupt("corrupt dictionary payload");
  }
  if (version == kVersion && !payload.exhausted()) {
    return Corrupt("payload length mismatch");
  }
  return dict;
}

StatusOr<std::unique_ptr<Dictionary>> LoadDictionary(
    const std::vector<uint8_t>& data) {
  ByteReader reader(data.data(), data.size(), ByteReader::OnError::kRecord);
  return LoadDictionary(&reader);
}

Status SaveDictionaryToFile(const Dictionary& dict, const std::string& path) {
  std::vector<uint8_t> buffer;
  SaveDictionary(dict, &buffer);
  if (ADICT_FAIL_POINT("dict.save.file")) {
    return Status::IoError("injected dict.save.file failure");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  const size_t written = std::fwrite(buffer.data(), 1, buffer.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != buffer.size() || !closed) {
    std::remove(path.c_str());  // don't leave a torn image behind
    return Status::IoError("short write or close failure: " + path);
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<Dictionary>> LoadDictionaryFromFile(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open file for reading: " + path);
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<uint8_t> buffer(size > 0 ? static_cast<size_t>(size) : 0);
  const size_t read = std::fread(buffer.data(), 1, buffer.size(), file);
  std::fclose(file);
  if (read != buffer.size()) {
    return Status::IoError("short read: " + path);
  }
  return LoadDictionary(buffer);
}

}  // namespace adict
