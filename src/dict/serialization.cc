#include "dict/serialization.h"

#include <cstdio>

#include "dict/array_dict.h"
#include "dict/column_bc.h"
#include "dict/front_coding.h"
#include "obs/obs.h"
#include "util/check.h"

namespace adict {
namespace {

constexpr uint32_t kMagic = 0x43494441;  // "ADIC", little endian
constexpr uint16_t kVersion = 1;

}  // namespace

void SaveDictionary(const Dictionary& dict, std::vector<uint8_t>* out) {
  ByteWriter writer(out);
  writer.Write<uint32_t>(kMagic);
  writer.Write<uint16_t>(kVersion);
  writer.Write<uint16_t>(static_cast<uint16_t>(dict.format()));
  dict.Serialize(&writer);
  if (obs::Enabled()) {
    static obs::Counter* saves = obs::Metrics().GetCounter(
        "dict.save.count", "calls", "dictionaries serialized");
    saves->Increment();
  }
}

std::unique_ptr<Dictionary> LoadDictionary(ByteReader* in) {
  if (obs::Enabled()) {
    static obs::Counter* loads = obs::Metrics().GetCounter(
        "dict.load.count", "calls", "dictionaries deserialized");
    loads->Increment();
  }
  ADICT_CHECK_MSG(in->Read<uint32_t>() == kMagic, "bad dictionary magic");
  ADICT_CHECK_MSG(in->Read<uint16_t>() == kVersion,
                  "unsupported dictionary version");
  const DictFormat format = static_cast<DictFormat>(in->Read<uint16_t>());
  switch (format) {
    case DictFormat::kArray:
      return RawArrayDict::Deserialize(in);
    case DictFormat::kArrayBc:
    case DictFormat::kArrayHu:
    case DictFormat::kArrayNg2:
    case DictFormat::kArrayNg3:
    case DictFormat::kArrayRp12:
    case DictFormat::kArrayRp16:
      return CodedArrayDict::Deserialize(in);
    case DictFormat::kArrayFixed:
      return FixedArrayDict::Deserialize(in);
    case DictFormat::kFcBlock:
    case DictFormat::kFcBlockBc:
    case DictFormat::kFcBlockHu:
    case DictFormat::kFcBlockNg2:
    case DictFormat::kFcBlockNg3:
    case DictFormat::kFcBlockRp12:
    case DictFormat::kFcBlockRp16:
    case DictFormat::kFcBlockDf:
      return FcBlockDict::Deserialize(in);
    case DictFormat::kFcInline:
      return FcInlineDict::Deserialize(in);
    case DictFormat::kColumnBc:
      return ColumnBcDict::Deserialize(in);
  }
  ADICT_CHECK_MSG(false, "corrupt dictionary format tag");
  return nullptr;
}

std::unique_ptr<Dictionary> LoadDictionary(const std::vector<uint8_t>& data) {
  ByteReader reader(data.data(), data.size());
  return LoadDictionary(&reader);
}

bool SaveDictionaryToFile(const Dictionary& dict, const std::string& path) {
  std::vector<uint8_t> buffer;
  SaveDictionary(dict, &buffer);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const size_t written = std::fwrite(buffer.data(), 1, buffer.size(), file);
  const bool ok = std::fclose(file) == 0 && written == buffer.size();
  return ok;
}

std::unique_ptr<Dictionary> LoadDictionaryFromFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return nullptr;
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<uint8_t> buffer(size > 0 ? static_cast<size_t>(size) : 0);
  const size_t read = std::fread(buffer.data(), 1, buffer.size(), file);
  std::fclose(file);
  if (read != buffer.size()) return nullptr;
  return LoadDictionary(buffer);
}

}  // namespace adict
