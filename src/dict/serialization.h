// Dictionary persistence: a versioned binary envelope around the per-format
// state, so read-optimized dictionaries can be written to disk at merge time
// and mapped back without re-encoding.
//
// Layout: magic "ADIC" (u32) | version (u16) | DictFormat (u16) | payload.
#ifndef ADICT_DICT_SERIALIZATION_H_
#define ADICT_DICT_SERIALIZATION_H_

#include <memory>
#include <string>
#include <vector>

#include "dict/dictionary.h"

namespace adict {

/// Appends the serialized dictionary to `out`.
void SaveDictionary(const Dictionary& dict, std::vector<uint8_t>* out);

/// Reconstructs a dictionary from `data`, advancing past it. Aborts on a
/// corrupt envelope (wrong magic / version / format tag).
std::unique_ptr<Dictionary> LoadDictionary(ByteReader* in);

/// Convenience: whole-buffer load.
std::unique_ptr<Dictionary> LoadDictionary(const std::vector<uint8_t>& data);

/// File helpers. Return false / nullptr on I/O failure.
bool SaveDictionaryToFile(const Dictionary& dict, const std::string& path);
std::unique_ptr<Dictionary> LoadDictionaryFromFile(const std::string& path);

}  // namespace adict

#endif  // ADICT_DICT_SERIALIZATION_H_
