// Dictionary persistence: a versioned, checksummed binary envelope around
// the per-format state, so read-optimized dictionaries can be written to
// disk at merge time and mapped back without re-encoding.
//
// Envelope v2 layout (all fields little endian):
//
//   magic "ADIC" (u32) | version (u16) | DictFormat (u16) |
//   payload length (u64) | CRC-32 (u32) | payload
//
// The CRC covers the format tag, the length field, and the payload, so a
// bit flip anywhere in the image — including a flipped format tag that
// would route the payload to the wrong deserializer — is detected
// deterministically before any payload byte is interpreted. Loading never
// aborts: every failure (bad magic, unsupported version, truncation,
// checksum mismatch, payload that fails structural validation) is reported
// as a non-OK Status. v1 images (no length/CRC) are still loadable; they
// are parsed defensively and counted under `dict.load.v1_compat`, but carry
// no integrity protection (docs/robustness.md).
#ifndef ADICT_DICT_SERIALIZATION_H_
#define ADICT_DICT_SERIALIZATION_H_

#include <memory>
#include <string>
#include <vector>

#include "dict/dictionary.h"
#include "util/status.h"

namespace adict {

/// Appends the serialized dictionary (envelope v2) to `out`.
void SaveDictionary(const Dictionary& dict, std::vector<uint8_t>* out);

/// Reconstructs a dictionary from `in`, advancing past it. Never aborts on
/// corrupt input: returns kTruncated / kCorruption / kUnsupportedVersion
/// instead. On error the reader position is unspecified.
StatusOr<std::unique_ptr<Dictionary>> LoadDictionary(ByteReader* in);

/// Convenience: whole-buffer load.
StatusOr<std::unique_ptr<Dictionary>> LoadDictionary(
    const std::vector<uint8_t>& data);

/// Writes the envelope to `path`. Reports short writes and close failures
/// as kIoError; the partial file is removed on failure.
Status SaveDictionaryToFile(const Dictionary& dict, const std::string& path);

/// Reads and loads an envelope from `path` (kIoError on file problems,
/// otherwise as LoadDictionary).
StatusOr<std::unique_ptr<Dictionary>> LoadDictionaryFromFile(
    const std::string& path);

}  // namespace adict

#endif  // ADICT_DICT_SERIALIZATION_H_
