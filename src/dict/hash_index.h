// Equality-locate accelerator over any dictionary.
//
// The paper's survey (§3.2, citing Brisaboa et al.) notes that hashing has
// very good locate performance but is dominated in extract speed and
// compression as a standalone dictionary, so it is not one of the 18
// formats. As a *side index* over an existing dictionary it still buys O(1)
// equality probes — useful for locate-heavy columns (join keys) whose
// dictionary format was chosen for size. Range predicates keep using
// Dictionary::Locate, which this index does not replace.
#ifndef ADICT_DICT_HASH_INDEX_H_
#define ADICT_DICT_HASH_INDEX_H_

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "dict/dictionary.h"

namespace adict {

class HashLocateIndex {
 public:
  static constexpr uint32_t kNotFound = std::numeric_limits<uint32_t>::max();

  /// Builds the index with one sequential scan of `dict`. The dictionary
  /// must outlive the index.
  explicit HashLocateIndex(const Dictionary& dict);

  /// Value ID of `value`, or kNotFound. Exact-match semantics only.
  uint32_t Lookup(std::string_view value) const;

  size_t MemoryBytes() const {
    return sizeof(*this) + slots_.size() * sizeof(Slot);
  }

 private:
  struct Slot {
    uint32_t id = kNotFound;  // kNotFound marks an empty slot
    uint32_t fingerprint = 0;
  };

  static uint64_t Hash(std::string_view value);

  const Dictionary* dict_;
  std::vector<Slot> slots_;  // open addressing, power-of-two size
  uint64_t mask_ = 0;
};

}  // namespace adict

#endif  // ADICT_DICT_HASH_INDEX_H_
