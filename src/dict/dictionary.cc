#include "dict/dictionary.h"

#include <algorithm>
#include <array>

#include "dict/array_dict.h"
#include "dict/column_bc.h"
#include "dict/front_coding.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/check.h"

namespace adict {
namespace {

constexpr std::array<DictFormat, kNumDictFormats> kAllFormats = {
    DictFormat::kArray,       DictFormat::kArrayBc,
    DictFormat::kArrayHu,     DictFormat::kArrayNg2,
    DictFormat::kArrayNg3,    DictFormat::kArrayRp12,
    DictFormat::kArrayRp16,   DictFormat::kArrayFixed,
    DictFormat::kFcBlock,     DictFormat::kFcBlockBc,
    DictFormat::kFcBlockHu,   DictFormat::kFcBlockNg2,
    DictFormat::kFcBlockNg3,  DictFormat::kFcBlockRp12,
    DictFormat::kFcBlockRp16, DictFormat::kFcBlockDf,
    DictFormat::kFcInline,    DictFormat::kColumnBc,
};

}  // namespace

std::span<const DictFormat> AllDictFormats() { return kAllFormats; }

void Dictionary::Scan(
    uint32_t first, uint32_t count,
    const std::function<void(uint32_t, std::string_view)>& fn) const {
  ADICT_DCHECK(static_cast<uint64_t>(first) + count <= size());
  std::string scratch;
  for (uint32_t id = first; id < first + count; ++id) {
    scratch.clear();
    ExtractInto(id, &scratch);
    fn(id, scratch);
  }
}

std::string_view DictFormatName(DictFormat format) {
  switch (format) {
    case DictFormat::kArray:
      return "array";
    case DictFormat::kArrayBc:
      return "array bc";
    case DictFormat::kArrayHu:
      return "array hu";
    case DictFormat::kArrayNg2:
      return "array ng2";
    case DictFormat::kArrayNg3:
      return "array ng3";
    case DictFormat::kArrayRp12:
      return "array rp 12";
    case DictFormat::kArrayRp16:
      return "array rp 16";
    case DictFormat::kArrayFixed:
      return "array fixed";
    case DictFormat::kFcBlock:
      return "fc block";
    case DictFormat::kFcBlockBc:
      return "fc block bc";
    case DictFormat::kFcBlockHu:
      return "fc block hu";
    case DictFormat::kFcBlockNg2:
      return "fc block ng2";
    case DictFormat::kFcBlockNg3:
      return "fc block ng3";
    case DictFormat::kFcBlockRp12:
      return "fc block rp 12";
    case DictFormat::kFcBlockRp16:
      return "fc block rp 16";
    case DictFormat::kFcBlockDf:
      return "fc block df";
    case DictFormat::kFcInline:
      return "fc inline";
    case DictFormat::kColumnBc:
      return "column bc";
  }
  return "?";
}

CodecKind DictFormatCodec(DictFormat format) {
  switch (format) {
    case DictFormat::kArrayBc:
    case DictFormat::kFcBlockBc:
      return CodecKind::kBitCompress;
    case DictFormat::kArrayHu:
    case DictFormat::kFcBlockHu:
      // Order preservation is required by every dictionary, so "hu" means
      // Hu-Tucker here (the paper uses Hu-Tucker whenever order matters).
      return CodecKind::kHuTucker;
    case DictFormat::kArrayNg2:
    case DictFormat::kFcBlockNg2:
      return CodecKind::kNgram2;
    case DictFormat::kArrayNg3:
    case DictFormat::kFcBlockNg3:
      return CodecKind::kNgram3;
    case DictFormat::kArrayRp12:
    case DictFormat::kFcBlockRp12:
      return CodecKind::kRePair12;
    case DictFormat::kArrayRp16:
    case DictFormat::kFcBlockRp16:
      return CodecKind::kRePair16;
    default:
      return CodecKind::kNone;
  }
}

bool IsArrayClass(DictFormat format) {
  switch (format) {
    case DictFormat::kArray:
    case DictFormat::kArrayBc:
    case DictFormat::kArrayHu:
    case DictFormat::kArrayNg2:
    case DictFormat::kArrayNg3:
    case DictFormat::kArrayRp12:
    case DictFormat::kArrayRp16:
    case DictFormat::kArrayFixed:
      return true;
    default:
      return false;
  }
}

bool IsFrontCodingClass(DictFormat format) {
  switch (format) {
    case DictFormat::kFcBlock:
    case DictFormat::kFcBlockBc:
    case DictFormat::kFcBlockHu:
    case DictFormat::kFcBlockNg2:
    case DictFormat::kFcBlockNg3:
    case DictFormat::kFcBlockRp12:
    case DictFormat::kFcBlockRp16:
    case DictFormat::kFcBlockDf:
    case DictFormat::kFcInline:
      return true;
    default:
      return false;
  }
}

namespace {

std::unique_ptr<Dictionary> BuildDictionaryImpl(
    DictFormat format, std::span<const std::string> sorted_unique) {
  switch (format) {
    case DictFormat::kArray:
      return RawArrayDict::Build(sorted_unique);
    case DictFormat::kArrayBc:
    case DictFormat::kArrayHu:
    case DictFormat::kArrayNg2:
    case DictFormat::kArrayNg3:
    case DictFormat::kArrayRp12:
    case DictFormat::kArrayRp16:
      return CodedArrayDict::Build(format, sorted_unique);
    case DictFormat::kArrayFixed:
      return FixedArrayDict::Build(sorted_unique);
    case DictFormat::kFcBlock:
    case DictFormat::kFcBlockBc:
    case DictFormat::kFcBlockHu:
    case DictFormat::kFcBlockNg2:
    case DictFormat::kFcBlockNg3:
    case DictFormat::kFcBlockRp12:
    case DictFormat::kFcBlockRp16:
    case DictFormat::kFcBlockDf:
      return FcBlockDict::Build(format, sorted_unique);
    case DictFormat::kFcInline:
      return FcInlineDict::Build(sorted_unique);
    case DictFormat::kColumnBc:
      return ColumnBcDict::Build(sorted_unique);
  }
  ADICT_CHECK_MSG(false, "unknown dictionary format");
  return nullptr;
}

}  // namespace

Status CheckBuildPreconditions(DictFormat format,
                               std::span<const std::string> sorted_unique) {
  if (!IsSortedUnique(sorted_unique)) {
    return Status::FailedPrecondition("input not sorted strictly ascending");
  }
  if (sorted_unique.size() >= 0xFFFFFFFFull) {
    return Status::ResourceExhausted("too many entries for 32-bit value IDs");
  }
  const uint64_t raw_bytes = RawDataBytes(sorted_unique);
  uint64_t max_len = 0;
  for (const std::string& s : sorted_unique) {
    max_len = std::max<uint64_t>(max_len, s.size());
  }
  constexpr uint64_t kPayloadLimit = 1ull << 32;  // 32-bit offsets everywhere

  if (format == DictFormat::kArray && raw_bytes >= kPayloadLimit) {
    return Status::ResourceExhausted("array payload exceeds 32-bit offsets");
  }
  if (IsArrayClass(format) && DictFormatCodec(format) != CodecKind::kNone &&
      raw_bytes * 2 >= kPayloadLimit) {
    // Conservative proxy: no codec in the survey expands beyond 2x, and bit
    // offsets must stay below 2^32.
    return Status::ResourceExhausted("coded array payload may exceed limits");
  }
  if (format == DictFormat::kArrayFixed) {
    if (max_len * sorted_unique.size() >= kPayloadLimit) {
      return Status::ResourceExhausted("fixed array slots exceed size limit");
    }
    for (const std::string& s : sorted_unique) {
      if (s.find('\0') != std::string::npos) {
        return Status::FailedPrecondition(
            "array fixed requires NUL-free strings");
      }
    }
  }
  if (IsFrontCodingClass(format)) {
    if (max_len >= (1u << 24)) {
      return Status::FailedPrecondition(
          "front coding headers limit strings to 16 MiB");
    }
    if (raw_bytes + 10 * sorted_unique.size() >= kPayloadLimit) {
      return Status::ResourceExhausted("fc payload exceeds 32-bit offsets");
    }
  }
  if (format == DictFormat::kColumnBc) {
    if (max_len >= (1u << 16)) {
      return Status::FailedPrecondition(
          "column bc limits strings to 64 KiB");
    }
    if (raw_bytes * 2 >= kPayloadLimit) {
      return Status::ResourceExhausted("column bc arena may exceed limits");
    }
  }
  return Status::Ok();
}

std::unique_ptr<Dictionary> BuildDictionary(
    DictFormat format, std::span<const std::string> sorted_unique) {
  ADICT_TRACE_SPAN("dict.build");
  if (!obs::Enabled()) return BuildDictionaryImpl(format, sorted_unique);

  static obs::Counter* builds = obs::Metrics().GetCounter(
      "dict.build.count", "builds", "dictionaries constructed");
  static obs::Counter* strings = obs::Metrics().GetCounter(
      "dict.build.strings", "strings", "entries across all builds");
  static obs::Counter* bytes = obs::Metrics().GetCounter(
      "dict.build.bytes", "bytes", "total footprint of built dictionaries");
  static obs::Histogram* build_us = obs::Metrics().GetHistogram(
      "dict.build.us", {}, "us", "per-dictionary construction time");

  std::unique_ptr<Dictionary> dict;
  {
    obs::ScopedTimer timer(build_us);
    dict = BuildDictionaryImpl(format, sorted_unique);
  }
  builds->Increment();
  strings->Increment(sorted_unique.size());
  bytes->Increment(dict->MemoryBytes());
  return dict;
}

bool IsSortedUnique(std::span<const std::string> strings) {
  for (size_t i = 1; i < strings.size(); ++i) {
    if (strings[i - 1] >= strings[i]) return false;
  }
  return true;
}

uint64_t RawDataBytes(std::span<const std::string> strings) {
  uint64_t total = 0;
  for (const std::string& s : strings) total += s.size();
  return total;
}

}  // namespace adict
