// Array-class dictionaries: one consecutive payload area plus an offset
// ("pointer") per string (paper Section 3.3).
//
// Two implementations share this header: RawArrayDict stores plain bytes and
// byte offsets; CodedArrayDict stores codec output and bit offsets, so
// bit-granular codes pack without padding.
#ifndef ADICT_DICT_ARRAY_DICT_H_
#define ADICT_DICT_ARRAY_DICT_H_

#include <memory>
#include <vector>

#include "dict/dictionary.h"

namespace adict {

/// `array`: uncompressed strings, byte offsets. The fastest general format.
class RawArrayDict final : public Dictionary {
 public:
  static std::unique_ptr<RawArrayDict> Build(
      std::span<const std::string> sorted_unique);

  uint32_t size() const override {
    return static_cast<uint32_t>(offsets_.size()) - 1;
  }
  void ExtractInto(uint32_t id, std::string* out) const override;
  LocateResult Locate(std::string_view str) const override;
  void Scan(uint32_t first, uint32_t count,
            const std::function<void(uint32_t, std::string_view)>& fn)
      const override;
  size_t MemoryBytes() const override;
  DictFormat format() const override { return DictFormat::kArray; }
  void Serialize(ByteWriter* out) const override;

  /// Reconstructs a dictionary written by Serialize.
  static std::unique_ptr<RawArrayDict> Deserialize(ByteReader* in);

  /// Zero-copy view of entry `id` (specific to the raw format).
  std::string_view View(uint32_t id) const {
    return std::string_view(data_.data() + offsets_[id],
                            offsets_[id + 1] - offsets_[id]);
  }

 private:
  RawArrayDict() = default;

  std::string data_;
  std::vector<uint32_t> offsets_;  // n + 1 byte offsets
};

/// `array <codec>`: codec-compressed strings, bit offsets.
class CodedArrayDict final : public Dictionary {
 public:
  /// Trains `codec_kind` on the full input and encodes every string.
  static std::unique_ptr<CodedArrayDict> Build(
      DictFormat format, std::span<const std::string> sorted_unique);

  uint32_t size() const override {
    return static_cast<uint32_t>(offsets_.size()) - 1;
  }
  void ExtractInto(uint32_t id, std::string* out) const override;
  LocateResult Locate(std::string_view str) const override;
  size_t MemoryBytes() const override;
  DictFormat format() const override { return format_; }
  void Serialize(ByteWriter* out) const override;

  /// Reconstructs a dictionary written by Serialize.
  static std::unique_ptr<CodedArrayDict> Deserialize(ByteReader* in);

  const StringCodec& codec() const { return *codec_; }

 private:
  CodedArrayDict() = default;

  DictFormat format_ = DictFormat::kArray;
  std::unique_ptr<StringCodec> codec_;
  std::vector<uint8_t> data_;
  std::vector<uint32_t> offsets_;  // n + 1 bit offsets
};

/// `array fixed`: every entry occupies max-string-length bytes; no pointers.
/// Entries are NUL-padded, so input strings must not contain NUL bytes.
class FixedArrayDict final : public Dictionary {
 public:
  static std::unique_ptr<FixedArrayDict> Build(
      std::span<const std::string> sorted_unique);

  uint32_t size() const override { return num_strings_; }
  void ExtractInto(uint32_t id, std::string* out) const override;
  LocateResult Locate(std::string_view str) const override;
  size_t MemoryBytes() const override;
  DictFormat format() const override { return DictFormat::kArrayFixed; }
  void Serialize(ByteWriter* out) const override;

  /// Reconstructs a dictionary written by Serialize.
  static std::unique_ptr<FixedArrayDict> Deserialize(ByteReader* in);

  /// Slot width in bytes (= longest string).
  uint32_t slot_width() const { return width_; }

 private:
  FixedArrayDict() = default;

  std::string_view View(uint32_t id) const;

  std::string data_;
  uint32_t num_strings_ = 0;
  uint32_t width_ = 0;
};

}  // namespace adict

#endif  // ADICT_DICT_ARRAY_DICT_H_
