// String dictionary interface and the 18 dictionary formats of the paper's
// survey (Section 3.3).
//
// A string dictionary is a read-only, order-preserving mapping between dense
// value IDs [0, n) and the sorted distinct strings of one column. It supports
// single-tuple access: extract(id) and locate(str) never decompress other
// entries wholesale.
#ifndef ADICT_DICT_DICTIONARY_H_
#define ADICT_DICT_DICTIONARY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "text/codec.h"
#include "util/serde.h"
#include "util/status.h"

namespace adict {

/// The dictionary formats surveyed by the paper: two base classes (array and
/// blockwise front coding) crossed with the string compression schemes, plus
/// four special-purpose variants.
enum class DictFormat {
  kArray,        ///< pointer array + raw strings
  kArrayBc,      ///< array + bit compression
  kArrayHu,      ///< array + Hu-Tucker
  kArrayNg2,     ///< array + 2-gram codes
  kArrayNg3,     ///< array + 3-gram codes
  kArrayRp12,    ///< array + Re-Pair, 12-bit symbols
  kArrayRp16,    ///< array + Re-Pair, 16-bit symbols
  kArrayFixed,   ///< pointer-free array of fixed-size slots
  kFcBlock,      ///< blockwise front coding, raw suffixes
  kFcBlockBc,    ///< front coding + bit compression
  kFcBlockHu,    ///< front coding + Hu-Tucker
  kFcBlockNg2,   ///< front coding + 2-gram codes
  kFcBlockNg3,   ///< front coding + 3-gram codes
  kFcBlockRp12,  ///< front coding + Re-Pair, 12-bit symbols
  kFcBlockRp16,  ///< front coding + Re-Pair, 16-bit symbols
  kFcBlockDf,    ///< front coding with difference to the block's first string
  kFcInline,     ///< front coding with interleaved prefix lengths
  kColumnBc,     ///< blockwise column-wise bit compression
};

/// Number of dictionary formats.
inline constexpr int kNumDictFormats = 18;

/// All formats, in enum order.
std::span<const DictFormat> AllDictFormats();

/// Paper-style name, e.g. "array rp 12" or "fc block hu".
std::string_view DictFormatName(DictFormat format);

/// The string compression scheme a format applies to its stored string parts
/// (CodecKind::kNone for raw and for the special-purpose variants).
CodecKind DictFormatCodec(DictFormat format);

/// True for the array-class formats (including array fixed).
bool IsArrayClass(DictFormat format);

/// True for the front-coding-class formats (fc block*, fc inline).
bool IsFrontCodingClass(DictFormat format);

/// Result of Dictionary::Locate.
struct LocateResult {
  /// ID of `str` if found, otherwise the ID of the first string greater than
  /// `str` (== size() if no such string exists).
  uint32_t id;
  bool found;

  bool operator==(const LocateResult&) const = default;
};

/// Read-only compressed string dictionary (paper Definition 1).
class Dictionary {
 public:
  virtual ~Dictionary() = default;

  /// Number of entries.
  virtual uint32_t size() const = 0;

  /// Appends the string with the given value ID to `out`.
  virtual void ExtractInto(uint32_t id, std::string* out) const = 0;

  /// Returns the string with the given value ID.
  std::string Extract(uint32_t id) const {
    std::string s;
    ExtractInto(id, &s);
    return s;
  }

  /// Finds `str`; see LocateResult for the exact semantics.
  virtual LocateResult Locate(std::string_view str) const = 0;

  /// Calls `fn(id, value)` for every ID in [first, first + count), in order.
  /// The base implementation extracts entry by entry; block-based formats
  /// override it with a sequential decode that reconstructs each block only
  /// once (sequential access is the design goal of fc inline, paper §3.3).
  /// The string_view is only valid during the callback.
  virtual void Scan(uint32_t first, uint32_t count,
                    const std::function<void(uint32_t, std::string_view)>& fn)
      const;

  /// Total memory consumption of the data structure in bytes, including
  /// offset arrays, headers, and codec tables.
  virtual size_t MemoryBytes() const = 0;

  virtual DictFormat format() const = 0;

  /// Writes the dictionary's complete state to `out` (excluding the format
  /// tag, which SaveDictionary in dict/serialization.h prepends).
  virtual void Serialize(ByteWriter* out) const = 0;
};

/// Builds a dictionary of `format` over `sorted_unique` (must be sorted
/// strictly ascending in byte-lexicographic order). The strings are copied;
/// the input may be discarded afterwards.
std::unique_ptr<Dictionary> BuildDictionary(
    DictFormat format, std::span<const std::string> sorted_unique);

/// Checks the input against `format`'s representational limits *before*
/// building: BuildDictionary treats a violation as a programming error and
/// aborts, while production rebuild paths (core/build_guard.h) call this
/// first and degrade to a safer format on kFailedPrecondition /
/// kResourceExhausted instead of crashing.
Status CheckBuildPreconditions(DictFormat format,
                               std::span<const std::string> sorted_unique);

/// Returns true if `strings` is strictly ascending (valid dictionary input).
bool IsSortedUnique(std::span<const std::string> strings);

/// Sum of the lengths of all strings: the uncompressed payload the paper's
/// compression rate definition divides by (Definition 2).
uint64_t RawDataBytes(std::span<const std::string> strings);

}  // namespace adict

#endif  // ADICT_DICT_DICTIONARY_H_
