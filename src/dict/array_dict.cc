#include "dict/array_dict.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace adict {
namespace {

/// Generic binary search returning LocateResult; `extract(i)` must yield the
/// i-th string.
template <typename ExtractFn>
LocateResult BinarySearch(uint32_t n, std::string_view str,
                          const ExtractFn& extract) {
  uint32_t lo = 0, hi = n;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (extract(mid) < str) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const bool found = lo < n && extract(lo) == str;
  return {lo, found};
}

}  // namespace

// ---------------------------------------------------------------------------
// RawArrayDict
// ---------------------------------------------------------------------------

std::unique_ptr<RawArrayDict> RawArrayDict::Build(
    std::span<const std::string> sorted_unique) {
  ADICT_DCHECK(IsSortedUnique(sorted_unique));
  auto dict = std::unique_ptr<RawArrayDict>(new RawArrayDict());
  const uint64_t total = RawDataBytes(sorted_unique);
  ADICT_CHECK_MSG(total < (1ull << 32), "array dictionary payload too large");
  dict->data_.reserve(total);
  dict->offsets_.reserve(sorted_unique.size() + 1);
  dict->offsets_.push_back(0);
  for (const std::string& s : sorted_unique) {
    dict->data_ += s;
    dict->offsets_.push_back(static_cast<uint32_t>(dict->data_.size()));
  }
  return dict;
}

void RawArrayDict::ExtractInto(uint32_t id, std::string* out) const {
  ADICT_DCHECK(id < size());
  out->append(View(id));
}

LocateResult RawArrayDict::Locate(std::string_view str) const {
  return BinarySearch(size(), str, [this](uint32_t i) { return View(i); });
}

void RawArrayDict::Scan(
    uint32_t first, uint32_t count,
    const std::function<void(uint32_t, std::string_view)>& fn) const {
  ADICT_DCHECK(static_cast<uint64_t>(first) + count <= size());
  for (uint32_t id = first; id < first + count; ++id) {
    fn(id, View(id));  // zero copy
  }
}

size_t RawArrayDict::MemoryBytes() const {
  return sizeof(*this) + data_.size() + offsets_.size() * sizeof(uint32_t);
}

void RawArrayDict::Serialize(ByteWriter* out) const {
  out->WriteString(data_);
  out->WriteVector(offsets_);
}

std::unique_ptr<RawArrayDict> RawArrayDict::Deserialize(ByteReader* in) {
  auto dict = std::unique_ptr<RawArrayDict>(new RawArrayDict());
  dict->data_ = in->ReadString();
  dict->offsets_ = in->ReadVector<uint32_t>();
  if (dict->offsets_.empty() || dict->offsets_.front() != 0 ||
      dict->offsets_.back() != dict->data_.size() ||
      !std::is_sorted(dict->offsets_.begin(), dict->offsets_.end())) {
    in->Fail("raw array dictionary offsets corrupt");
    return nullptr;
  }
  return dict;
}

// ---------------------------------------------------------------------------
// CodedArrayDict
// ---------------------------------------------------------------------------

std::unique_ptr<CodedArrayDict> CodedArrayDict::Build(
    DictFormat format, std::span<const std::string> sorted_unique) {
  ADICT_DCHECK(IsSortedUnique(sorted_unique));
  const CodecKind codec_kind = DictFormatCodec(format);
  ADICT_CHECK(codec_kind != CodecKind::kNone);

  auto dict = std::unique_ptr<CodedArrayDict>(new CodedArrayDict());
  dict->format_ = format;
  std::vector<std::string_view> views(sorted_unique.begin(),
                                      sorted_unique.end());
  dict->codec_ = TrainCodec(codec_kind, views);

  BitWriter writer;
  dict->offsets_.reserve(sorted_unique.size() + 1);
  dict->offsets_.push_back(0);
  for (const std::string& s : sorted_unique) {
    dict->codec_->Encode(s, &writer);
    ADICT_CHECK_MSG(writer.bit_count() < (1ull << 32),
                    "array dictionary payload too large");
    dict->offsets_.push_back(static_cast<uint32_t>(writer.bit_count()));
  }
  dict->data_ = writer.TakeBytes();
  dict->data_.shrink_to_fit();
  return dict;
}

void CodedArrayDict::ExtractInto(uint32_t id, std::string* out) const {
  ADICT_DCHECK(id < size());
  BitReader reader(data_.data(), offsets_[id]);
  codec_->Decode(&reader, offsets_[id + 1] - offsets_[id], out);
}

LocateResult CodedArrayDict::Locate(std::string_view str) const {
  std::string scratch;
  return BinarySearch(size(), str, [this, &scratch](uint32_t i) {
    scratch.clear();
    ExtractInto(i, &scratch);
    return std::string_view(scratch);
  });
}

size_t CodedArrayDict::MemoryBytes() const {
  return sizeof(*this) + data_.size() + offsets_.size() * sizeof(uint32_t) +
         codec_->TableBytes();
}

void CodedArrayDict::Serialize(ByteWriter* out) const {
  out->Write<uint16_t>(static_cast<uint16_t>(format_));
  SerializeCodec(codec_.get(), out);
  out->WriteVector(data_);
  out->WriteVector(offsets_);
}

std::unique_ptr<CodedArrayDict> CodedArrayDict::Deserialize(ByteReader* in) {
  auto dict = std::unique_ptr<CodedArrayDict>(new CodedArrayDict());
  dict->format_ = static_cast<DictFormat>(in->Read<uint16_t>());
  dict->codec_ = DeserializeCodec(in);
  if (dict->codec_ == nullptr) {
    in->Fail("coded array dictionary without codec");
    return nullptr;
  }
  dict->data_ = in->ReadVector<uint8_t>();
  dict->offsets_ = in->ReadVector<uint32_t>();
  if (dict->offsets_.empty() || dict->offsets_.front() != 0 ||
      dict->offsets_.back() > dict->data_.size() * 8 ||
      !std::is_sorted(dict->offsets_.begin(), dict->offsets_.end())) {
    in->Fail("coded array dictionary offsets corrupt");
    return nullptr;
  }
  return dict;
}

// ---------------------------------------------------------------------------
// FixedArrayDict
// ---------------------------------------------------------------------------

std::unique_ptr<FixedArrayDict> FixedArrayDict::Build(
    std::span<const std::string> sorted_unique) {
  ADICT_DCHECK(IsSortedUnique(sorted_unique));
  auto dict = std::unique_ptr<FixedArrayDict>(new FixedArrayDict());
  dict->num_strings_ = static_cast<uint32_t>(sorted_unique.size());
  size_t width = 0;
  for (const std::string& s : sorted_unique) {
    ADICT_CHECK_MSG(s.find('\0') == std::string::npos,
                    "array fixed requires NUL-free strings");
    width = std::max(width, s.size());
  }
  dict->width_ = static_cast<uint32_t>(width);
  dict->data_.assign(width * sorted_unique.size(), '\0');
  for (size_t i = 0; i < sorted_unique.size(); ++i) {
    std::memcpy(dict->data_.data() + i * width, sorted_unique[i].data(),
                sorted_unique[i].size());
  }
  return dict;
}

std::string_view FixedArrayDict::View(uint32_t id) const {
  const char* slot = data_.data() + static_cast<size_t>(id) * width_;
  // Trailing NULs are padding; strings themselves are NUL-free.
  size_t len = width_;
  while (len > 0 && slot[len - 1] == '\0') --len;
  return std::string_view(slot, len);
}

void FixedArrayDict::ExtractInto(uint32_t id, std::string* out) const {
  ADICT_DCHECK(id < size());
  out->append(View(id));
}

LocateResult FixedArrayDict::Locate(std::string_view str) const {
  return BinarySearch(size(), str, [this](uint32_t i) { return View(i); });
}

size_t FixedArrayDict::MemoryBytes() const {
  return sizeof(*this) + data_.size();
}

void FixedArrayDict::Serialize(ByteWriter* out) const {
  out->Write<uint32_t>(num_strings_);
  out->Write<uint32_t>(width_);
  out->WriteString(data_);
}

std::unique_ptr<FixedArrayDict> FixedArrayDict::Deserialize(ByteReader* in) {
  auto dict = std::unique_ptr<FixedArrayDict>(new FixedArrayDict());
  dict->num_strings_ = in->Read<uint32_t>();
  dict->width_ = in->Read<uint32_t>();
  dict->data_ = in->ReadString();
  if (dict->data_.size() !=
      static_cast<size_t>(dict->num_strings_) * dict->width_) {
    in->Fail("fixed array dictionary size mismatch");
    return nullptr;
  }
  return dict;
}

}  // namespace adict
