// Blockwise front coding dictionaries (paper Section 3.3).
//
// Strings are grouped into blocks of kBlockSize. The first string of a block
// is stored in full; every other string stores only the suffix that differs
// from its predecessor (fc block) or from the block's first string
// (fc block df). Prefix lengths and suffix sizes live in a fixed-size block
// header; one pointer per block addresses the payload. Suffixes (and first
// strings) can additionally be compressed with any string codec.
#ifndef ADICT_DICT_FRONT_CODING_H_
#define ADICT_DICT_FRONT_CODING_H_

#include <memory>
#include <vector>

#include "dict/dictionary.h"

namespace adict {

/// Length of the common prefix of `a` and `b`.
uint32_t CommonPrefixLength(std::string_view a, std::string_view b);

/// `fc block [codec]` and `fc block df`.
class FcBlockDict final : public Dictionary {
 public:
  /// Strings per block.
  static constexpr uint32_t kBlockSize = 16;
  /// Header bytes per string: packed (prefix_len : 8, suffix_size : 24).
  static constexpr uint32_t kHeaderBytesPerString = 4;
  /// Longest representable prefix; longer shared prefixes are truncated
  /// (lossless: the suffix simply starts earlier).
  static constexpr uint32_t kMaxPrefixLength = 255;

  /// Builds any of the fc block formats: kFcBlock, kFcBlock{Bc,Hu,Ng2,Ng3,
  /// Rp12,Rp16}, kFcBlockDf.
  static std::unique_ptr<FcBlockDict> Build(
      DictFormat format, std::span<const std::string> sorted_unique);

  uint32_t size() const override { return num_strings_; }
  void ExtractInto(uint32_t id, std::string* out) const override;
  LocateResult Locate(std::string_view str) const override;
  void Scan(uint32_t first, uint32_t count,
            const std::function<void(uint32_t, std::string_view)>& fn)
      const override;
  size_t MemoryBytes() const override;
  DictFormat format() const override { return format_; }
  void Serialize(ByteWriter* out) const override;

  /// Reconstructs a dictionary written by Serialize.
  static std::unique_ptr<FcBlockDict> Deserialize(ByteReader* in);

 private:
  FcBlockDict() = default;

  struct Header {
    uint32_t prefix_len;
    uint32_t suffix_size;  // bits with a codec, bytes without
  };

  Header HeaderAt(uint32_t string_index) const {
    const uint8_t* p = headers_.data() +
                       static_cast<size_t>(string_index) * kHeaderBytesPerString;
    const uint32_t packed = static_cast<uint32_t>(p[0]) |
                            (static_cast<uint32_t>(p[1]) << 8) |
                            (static_cast<uint32_t>(p[2]) << 16) |
                            (static_cast<uint32_t>(p[3]) << 24);
    return {packed >> 24, packed & 0xffffffu};
  }

  uint32_t NumBlocks() const {
    return (num_strings_ + kBlockSize - 1) / kBlockSize;
  }

  /// Appends the suffix stored at payload position `pos` (bits or bytes) to
  /// `out` and advances `*pos` past it.
  void ReadSuffix(uint64_t* pos, uint32_t suffix_size, std::string* out) const;

  /// Extracts the first string of `block` into `out` (replacing content
  /// after `base`).
  void ExtractWithinBlock(uint32_t block, uint32_t index_in_block,
                          std::string* out) const;

  DictFormat format_ = DictFormat::kFcBlock;
  bool diff_to_first_ = false;
  uint32_t num_strings_ = 0;
  std::unique_ptr<StringCodec> codec_;  // nullptr: raw suffixes
  std::vector<uint8_t> data_;
  std::vector<uint8_t> headers_;   // kHeaderBytesPerString per string
  std::vector<uint32_t> offsets_;  // per block: bit (codec) or byte offset
};

/// `fc inline`: front coding with prefix and suffix lengths stored as varints
/// interleaved with the (uncompressed) suffix data, favoring sequential
/// scans. One pointer per block for random access.
class FcInlineDict final : public Dictionary {
 public:
  static constexpr uint32_t kBlockSize = 16;

  static std::unique_ptr<FcInlineDict> Build(
      std::span<const std::string> sorted_unique);

  uint32_t size() const override { return num_strings_; }
  void ExtractInto(uint32_t id, std::string* out) const override;
  LocateResult Locate(std::string_view str) const override;
  void Scan(uint32_t first, uint32_t count,
            const std::function<void(uint32_t, std::string_view)>& fn)
      const override;
  size_t MemoryBytes() const override;
  DictFormat format() const override { return DictFormat::kFcInline; }
  void Serialize(ByteWriter* out) const override;

  /// Reconstructs a dictionary written by Serialize.
  static std::unique_ptr<FcInlineDict> Deserialize(ByteReader* in);

 private:
  FcInlineDict() = default;

  void ExtractWithinBlock(uint32_t block, uint32_t index_in_block,
                          std::string* out) const;

  uint32_t num_strings_ = 0;
  std::vector<uint8_t> data_;
  std::vector<uint32_t> offsets_;  // byte offset per block
};

}  // namespace adict

#endif  // ADICT_DICT_FRONT_CODING_H_
