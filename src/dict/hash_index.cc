#include "dict/hash_index.h"

#include <bit>
#include <string>

#include "util/check.h"

namespace adict {

uint64_t HashLocateIndex::Hash(std::string_view value) {
  // FNV-1a, finalized with a splitmix-style mix for better bit diffusion.
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : value) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

HashLocateIndex::HashLocateIndex(const Dictionary& dict) : dict_(&dict) {
  // Load factor <= 0.5 keeps probe sequences short.
  const uint64_t wanted = std::max<uint64_t>(8, 2 * uint64_t{dict.size()});
  const uint64_t capacity = std::bit_ceil(wanted);
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;

  dict.Scan(0, dict.size(), [this](uint32_t id, std::string_view value) {
    const uint64_t h = Hash(value);
    uint64_t slot = h & mask_;
    while (slots_[slot].id != kNotFound) {
      slot = (slot + 1) & mask_;
    }
    slots_[slot] = {id, static_cast<uint32_t>(h >> 32)};
  });
}

uint32_t HashLocateIndex::Lookup(std::string_view value) const {
  const uint64_t h = Hash(value);
  const uint32_t fingerprint = static_cast<uint32_t>(h >> 32);
  uint64_t slot = h & mask_;
  std::string scratch;
  while (slots_[slot].id != kNotFound) {
    if (slots_[slot].fingerprint == fingerprint) {
      scratch.clear();
      dict_->ExtractInto(slots_[slot].id, &scratch);
      if (scratch == value) return slots_[slot].id;
    }
    slot = (slot + 1) & mask_;
  }
  return kNotFound;
}

}  // namespace adict
