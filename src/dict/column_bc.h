// Column-wise bit compression (paper Section 3.3, `column bc`).
//
// The dictionary is split into blocks; each block is vertically partitioned
// into character columns (all characters at position j across the block's
// strings). Every character column gets its own alphabet and fixed-width
// bit codes. The format shines on columns whose strings share one length and
// structure (hashes, padded numbers, material codes) and degenerates badly
// otherwise — exactly the behaviour the paper reports.
#ifndef ADICT_DICT_COLUMN_BC_H_
#define ADICT_DICT_COLUMN_BC_H_

#include <memory>
#include <vector>

#include "dict/dictionary.h"

namespace adict {

class ColumnBcDict final : public Dictionary {
 public:
  /// Strings per block. Larger blocks amortize the per-position alphabet
  /// headers, which dominate on hex/digit content; 128 keeps single-tuple
  /// access cheap while making the format clearly the smallest on the
  /// constant-length data sets (paper Figure 4).
  static constexpr uint32_t kBlockSize = 128;

  static std::unique_ptr<ColumnBcDict> Build(
      std::span<const std::string> sorted_unique);

  uint32_t size() const override { return num_strings_; }
  void ExtractInto(uint32_t id, std::string* out) const override;
  LocateResult Locate(std::string_view str) const override;
  size_t MemoryBytes() const override;
  DictFormat format() const override { return DictFormat::kColumnBc; }
  void Serialize(ByteWriter* out) const override;

  /// Reconstructs a dictionary written by Serialize.
  static std::unique_ptr<ColumnBcDict> Deserialize(ByteReader* in);

  /// Encodes one block of rows into `arena`, returning the encoded size in
  /// bytes. Exposed so the size-prediction sampler can measure representative
  /// blocks without building a whole dictionary.
  static size_t EncodeBlock(std::span<const std::string_view> rows,
                            std::vector<uint8_t>* arena);

 private:
  ColumnBcDict() = default;

  /// Decodes row `row` of the block starting at `arena` offset `offset`.
  void DecodeRow(size_t offset, uint32_t row, std::string* out) const;

  uint32_t num_strings_ = 0;
  std::vector<uint8_t> arena_;
  std::vector<uint32_t> offsets_;  // byte offset per block
};

}  // namespace adict

#endif  // ADICT_DICT_COLUMN_BC_H_
