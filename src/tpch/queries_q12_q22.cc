// TPC-H queries 12-22 (standard substitution parameters) and the dispatcher.
#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "obs/trace.h"
#include "obs/workload_profiler.h"
#include "tpch/queries.h"
#include "tpch/query_helpers.h"
#include "util/check.h"

namespace adict {
namespace tpch_internal {

// Implemented in queries_q01_q11.cc.
QueryResult Q1(const TpchDatabase& db);
QueryResult Q2(const TpchDatabase& db);
QueryResult Q3(const TpchDatabase& db);
QueryResult Q4(const TpchDatabase& db);
QueryResult Q5(const TpchDatabase& db);
QueryResult Q6(const TpchDatabase& db);
QueryResult Q7(const TpchDatabase& db);
QueryResult Q8(const TpchDatabase& db);
QueryResult Q9(const TpchDatabase& db);
QueryResult Q10(const TpchDatabase& db);
QueryResult Q11(const TpchDatabase& db);

// Q12: shipping modes and order priority. MAIL/SHIP, 1994.
QueryResult Q12(const TpchDatabase& db) {
  const Table& l = db.lineitem;
  const Table& o = db.orders;
  const int32_t lo = ParseDate("1994-01-01");
  const int32_t hi = AddMonths(lo, 12);

  const std::string_view modes[] = {"MAIL", "SHIP"};
  const std::vector<bool> mode_ok = InIds(l.strings("L_SHIPMODE"), modes);
  const FkJoin l_to_o(l.strings("L_ORDERKEY"), o.strings("O_ORDERKEY"));
  const StringColumn& priority = o.strings("O_ORDERPRIORITY");
  const LocateResult urgent = priority.Locate("1-URGENT");
  const LocateResult high = priority.Locate("2-HIGH");

  const auto& ship = l.dates("L_SHIPDATE");
  const auto& commit = l.dates("L_COMMITDATE");
  const auto& receipt = l.dates("L_RECEIPTDATE");

  std::map<uint32_t, std::pair<uint64_t, uint64_t>> counts;  // mode id
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    const uint32_t mode_id = l.strings("L_SHIPMODE").GetValueId(row);
    if (!mode_ok[mode_id]) continue;
    if (receipt[row] < lo || receipt[row] >= hi) continue;
    if (commit[row] >= receipt[row] || ship[row] >= commit[row]) continue;
    const uint32_t o_row = l_to_o.Row(l.strings("L_ORDERKEY"), row);
    if (o_row == kNoMatch) continue;
    const uint32_t prio = priority.GetValueId(o_row);
    const bool is_high =
        (urgent.found && prio == urgent.id) || (high.found && prio == high.id);
    auto& [high_count, low_count] = counts[mode_id];
    (is_high ? high_count : low_count) += 1;
  }

  QueryResult result;
  result.column_names = {"l_shipmode", "high_line_count", "low_line_count"};
  for (const auto& [mode_id, c] : counts) {
    result.AddRow({l.strings("L_SHIPMODE").ExtractId(mode_id), Cell(c.first),
                   Cell(c.second)});
  }
  return result;
}

// Q13: customer distribution. o_comment NOT LIKE '%special%requests%'.
QueryResult Q13(const TpchDatabase& db) {
  const Table& o = db.orders;
  const Table& c = db.customer;

  const std::string_view needles[] = {"special", "requests"};
  const std::vector<bool> excluded =
      ContainsAllIds(o.strings("O_COMMENT"), needles);

  // Orders per customer key (in the orders dictionary's ID space).
  std::vector<uint64_t> orders_per_cust(o.strings("O_CUSTKEY").num_distinct(),
                                        0);
  for (uint64_t row = 0; row < o.num_rows(); ++row) {
    if (excluded[o.strings("O_COMMENT").GetValueId(row)]) continue;
    ++orders_per_cust[o.strings("O_CUSTKEY").GetValueId(row)];
  }

  // Every customer contributes, including those without orders.
  const std::vector<uint32_t> c_to_o =
      MapDictionary(c.strings("C_CUSTKEY"), o.strings("O_CUSTKEY"));
  std::map<uint64_t, uint64_t> dist;  // c_count -> customers
  for (uint64_t row = 0; row < c.num_rows(); ++row) {
    const uint32_t o_cust_id = c_to_o[c.strings("C_CUSTKEY").GetValueId(row)];
    const uint64_t count = o_cust_id == kNoMatch ? 0 : orders_per_cust[o_cust_id];
    ++dist[count];
  }

  std::vector<std::pair<uint64_t, uint64_t>> rows(dist.begin(), dist.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first > b.first;
  });

  QueryResult result;
  result.column_names = {"c_count", "custdist"};
  for (const auto& [count, custdist] : rows) {
    result.AddRow({Cell(count), Cell(custdist)});
  }
  return result;
}

// Q14: promotion effect. September 1995.
QueryResult Q14(const TpchDatabase& db) {
  const Table& l = db.lineitem;
  const Table& p = db.part;
  const int32_t lo = ParseDate("1995-09-01");
  const int32_t hi = AddMonths(lo, 1);

  const IdRange promo = PrefixIds(p.strings("P_TYPE"), "PROMO");
  const FkJoin l_to_p(l.strings("L_PARTKEY"), p.strings("P_PARTKEY"));
  const auto& shipdate = l.dates("L_SHIPDATE");
  const auto& price = l.doubles("L_EXTENDEDPRICE");
  const auto& disc = l.doubles("L_DISCOUNT");

  double promo_revenue = 0, total_revenue = 0;
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    if (shipdate[row] < lo || shipdate[row] >= hi) continue;
    const uint32_t p_row = l_to_p.Row(l.strings("L_PARTKEY"), row);
    if (p_row == kNoMatch) continue;
    const double revenue = price[row] * (1 - disc[row]);
    total_revenue += revenue;
    if (promo.Contains(p.strings("P_TYPE").GetValueId(p_row))) {
      promo_revenue += revenue;
    }
  }

  QueryResult result;
  result.column_names = {"promo_revenue"};
  result.AddRow(
      {Cell(total_revenue > 0 ? 100.0 * promo_revenue / total_revenue : 0.0)});
  return result;
}

// Q15: top supplier. Quarter starting 1996-01-01.
QueryResult Q15(const TpchDatabase& db) {
  const Table& l = db.lineitem;
  const Table& s = db.supplier;
  const int32_t lo = ParseDate("1996-01-01");
  const int32_t hi = AddMonths(lo, 3);

  const FkJoin l_to_s(l.strings("L_SUPPKEY"), s.strings("S_SUPPKEY"));
  const auto& shipdate = l.dates("L_SHIPDATE");
  const auto& price = l.doubles("L_EXTENDEDPRICE");
  const auto& disc = l.doubles("L_DISCOUNT");

  std::unordered_map<uint32_t, double> revenue;  // supplier row
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    if (shipdate[row] < lo || shipdate[row] >= hi) continue;
    const uint32_t s_row = l_to_s.Row(l.strings("L_SUPPKEY"), row);
    if (s_row != kNoMatch) revenue[s_row] += price[row] * (1 - disc[row]);
  }
  double max_revenue = 0;
  for (const auto& [s_row, rev] : revenue) {
    max_revenue = std::max(max_revenue, rev);
  }

  std::vector<uint32_t> top;
  for (const auto& [s_row, rev] : revenue) {
    if (rev == max_revenue) top.push_back(s_row);
  }
  std::sort(top.begin(), top.end(), [&](uint32_t a, uint32_t b) {
    return s.strings("S_SUPPKEY").GetValue(a) < s.strings("S_SUPPKEY").GetValue(b);
  });

  QueryResult result;
  result.column_names = {"s_suppkey", "s_name", "s_address", "s_phone",
                         "total_revenue"};
  for (uint32_t s_row : top) {
    result.AddRow({s.strings("S_SUPPKEY").GetValue(s_row),
                   s.strings("S_NAME").GetValue(s_row),
                   s.strings("S_ADDRESS").GetValue(s_row),
                   s.strings("S_PHONE").GetValue(s_row), Cell(max_revenue)});
  }
  return result;
}

// Q16: parts/supplier relationship. Brand#45 excluded, MEDIUM POLISHED
// excluded, 8 sizes, complaint suppliers excluded.
QueryResult Q16(const TpchDatabase& db) {
  const Table& ps = db.partsupp;
  const Table& p = db.part;
  const Table& s = db.supplier;

  const IdRange bad_brand = EqIds(p.strings("P_BRAND"), "Brand#45");
  const IdRange bad_type = PrefixIds(p.strings("P_TYPE"), "MEDIUM POLISHED");
  const std::unordered_set<int64_t> sizes = {49, 14, 23, 45, 19, 3, 36, 9};

  const std::string_view complaint_needles[] = {"Customer", "Complaints"};
  const std::vector<bool> complained =
      ContainsAllIds(s.strings("S_COMMENT"), complaint_needles);

  const FkJoin ps_to_p(ps.strings("PS_PARTKEY"), p.strings("P_PARTKEY"));
  const FkJoin ps_to_s(ps.strings("PS_SUPPKEY"), s.strings("S_SUPPKEY"));
  const auto& p_size = p.int64s("P_SIZE");

  struct GroupHash {
    size_t operator()(const std::tuple<uint32_t, uint32_t, int64_t>& k) const {
      return std::get<0>(k) * 1000003u + std::get<1>(k) * 10007u +
             static_cast<size_t>(std::get<2>(k));
    }
  };
  std::unordered_map<std::tuple<uint32_t, uint32_t, int64_t>,
                     std::unordered_set<uint32_t>, GroupHash>
      suppliers;  // (brand id, type id, size) -> supplier key ids
  for (uint64_t row = 0; row < ps.num_rows(); ++row) {
    const uint32_t p_row = ps_to_p.Row(ps.strings("PS_PARTKEY"), row);
    if (p_row == kNoMatch) continue;
    const uint32_t brand_id = p.strings("P_BRAND").GetValueId(p_row);
    const uint32_t type_id = p.strings("P_TYPE").GetValueId(p_row);
    if (bad_brand.Contains(brand_id) || bad_type.Contains(type_id)) continue;
    if (!sizes.contains(p_size[p_row])) continue;
    const uint32_t s_row = ps_to_s.Row(ps.strings("PS_SUPPKEY"), row);
    if (s_row == kNoMatch ||
        complained[s.strings("S_COMMENT").GetValueId(s_row)]) {
      continue;
    }
    suppliers[{brand_id, type_id, p_size[p_row]}].insert(
        ps.strings("PS_SUPPKEY").GetValueId(row));
  }

  std::vector<std::tuple<uint64_t, std::string, std::string, int64_t>> rows;
  for (const auto& [key, supps] : suppliers) {
    rows.push_back({supps.size(), p.strings("P_BRAND").ExtractId(std::get<0>(key)),
                    p.strings("P_TYPE").ExtractId(std::get<1>(key)),
                    std::get<2>(key)});
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) > std::get<0>(b);
    if (std::get<1>(a) != std::get<1>(b)) return std::get<1>(a) < std::get<1>(b);
    if (std::get<2>(a) != std::get<2>(b)) return std::get<2>(a) < std::get<2>(b);
    return std::get<3>(a) < std::get<3>(b);
  });

  QueryResult result;
  result.column_names = {"p_brand", "p_type", "p_size", "supplier_cnt"};
  for (const auto& [count, brand, type, size] : rows) {
    result.AddRow({brand, type, Cell(size), Cell(count)});
  }
  return result;
}

// Q17: small-quantity-order revenue. Brand#23, MED BOX.
QueryResult Q17(const TpchDatabase& db) {
  const Table& l = db.lineitem;
  const Table& p = db.part;

  const IdRange brand = EqIds(p.strings("P_BRAND"), "Brand#23");
  const IdRange container = EqIds(p.strings("P_CONTAINER"), "MED BOX");
  const FkJoin l_to_p(l.strings("L_PARTKEY"), p.strings("P_PARTKEY"));
  const auto& qty = l.doubles("L_QUANTITY");
  const auto& price = l.doubles("L_EXTENDEDPRICE");

  // Pass 1: average quantity per qualifying part.
  std::unordered_map<uint32_t, std::pair<double, uint64_t>> qty_stats;
  std::vector<uint32_t> part_row_of(l.num_rows(), kNoMatch);
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    const uint32_t p_row = l_to_p.Row(l.strings("L_PARTKEY"), row);
    if (p_row == kNoMatch ||
        !brand.Contains(p.strings("P_BRAND").GetValueId(p_row)) ||
        !container.Contains(p.strings("P_CONTAINER").GetValueId(p_row))) {
      continue;
    }
    part_row_of[row] = p_row;
    auto& [sum, count] = qty_stats[p_row];
    sum += qty[row];
    ++count;
  }

  // Pass 2: lineitems below 20% of their part's average quantity.
  double revenue = 0;
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    const uint32_t p_row = part_row_of[row];
    if (p_row == kNoMatch) continue;
    const auto& [sum, count] = qty_stats[p_row];
    if (qty[row] < 0.2 * sum / static_cast<double>(count)) {
      revenue += price[row];
    }
  }

  QueryResult result;
  result.column_names = {"avg_yearly"};
  result.AddRow({Cell(revenue / 7.0)});
  return result;
}

// Q18: large volume customers. sum(l_quantity) > 300.
QueryResult Q18(const TpchDatabase& db) {
  const Table& l = db.lineitem;
  const Table& o = db.orders;
  const Table& c = db.customer;

  const FkJoin l_to_o(l.strings("L_ORDERKEY"), o.strings("O_ORDERKEY"));
  const auto& qty = l.doubles("L_QUANTITY");
  std::unordered_map<uint32_t, double> order_qty;  // order row -> sum(qty)
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    const uint32_t o_row = l_to_o.Row(l.strings("L_ORDERKEY"), row);
    if (o_row != kNoMatch) order_qty[o_row] += qty[row];
  }

  const FkJoin o_to_c(o.strings("O_CUSTKEY"), c.strings("C_CUSTKEY"));
  const auto& totalprice = o.doubles("O_TOTALPRICE");
  const auto& orderdate = o.dates("O_ORDERDATE");
  std::vector<std::pair<uint32_t, double>> rows;  // (order row, qty sum)
  for (const auto& [o_row, sum] : order_qty) {
    if (sum > 300.0) rows.push_back({o_row, sum});
  }
  std::sort(rows.begin(), rows.end(), [&](const auto& a, const auto& b) {
    if (totalprice[a.first] != totalprice[b.first]) {
      return totalprice[a.first] > totalprice[b.first];
    }
    return orderdate[a.first] < orderdate[b.first];
  });
  if (rows.size() > 100) rows.resize(100);

  QueryResult result;
  result.column_names = {"c_name",     "c_custkey",   "o_orderkey",
                         "o_orderdate", "o_totalprice", "sum_qty"};
  for (const auto& [o_row, sum] : rows) {
    const uint32_t c_row = o_to_c.Row(o.strings("O_CUSTKEY"), o_row);
    result.AddRow({c_row == kNoMatch ? "" : c.strings("C_NAME").GetValue(c_row),
                   c_row == kNoMatch ? ""
                                     : c.strings("C_CUSTKEY").GetValue(c_row),
                   o.strings("O_ORDERKEY").GetValue(o_row),
                   FormatDate(orderdate[o_row]), Cell(totalprice[o_row]),
                   Cell(sum)});
  }
  return result;
}

// Q19: discounted revenue, three disjunctive brand/container/quantity arms.
QueryResult Q19(const TpchDatabase& db) {
  const Table& l = db.lineitem;
  const Table& p = db.part;

  const FkJoin l_to_p(l.strings("L_PARTKEY"), p.strings("P_PARTKEY"));
  const IdRange brand12 = EqIds(p.strings("P_BRAND"), "Brand#12");
  const IdRange brand23 = EqIds(p.strings("P_BRAND"), "Brand#23");
  const IdRange brand34 = EqIds(p.strings("P_BRAND"), "Brand#34");
  const std::string_view small_containers[] = {"SM CASE", "SM BOX", "SM PACK",
                                               "SM PKG"};
  const std::string_view med_containers[] = {"MED BAG", "MED BOX", "MED PKG",
                                             "MED PACK"};
  const std::string_view large_containers[] = {"LG CASE", "LG BOX", "LG PACK",
                                               "LG PKG"};
  const std::vector<bool> sm = InIds(p.strings("P_CONTAINER"), small_containers);
  const std::vector<bool> med = InIds(p.strings("P_CONTAINER"), med_containers);
  const std::vector<bool> lg = InIds(p.strings("P_CONTAINER"), large_containers);

  const std::string_view modes[] = {"AIR", "REG AIR"};
  const std::vector<bool> air = InIds(l.strings("L_SHIPMODE"), modes);
  const IdRange in_person =
      EqIds(l.strings("L_SHIPINSTRUCT"), "DELIVER IN PERSON");

  const auto& qty = l.doubles("L_QUANTITY");
  const auto& price = l.doubles("L_EXTENDEDPRICE");
  const auto& disc = l.doubles("L_DISCOUNT");
  const auto& p_size = p.int64s("P_SIZE");

  double revenue = 0;
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    if (!air[l.strings("L_SHIPMODE").GetValueId(row)]) continue;
    if (!in_person.Contains(l.strings("L_SHIPINSTRUCT").GetValueId(row))) {
      continue;
    }
    const uint32_t p_row = l_to_p.Row(l.strings("L_PARTKEY"), row);
    if (p_row == kNoMatch) continue;
    const uint32_t brand_id = p.strings("P_BRAND").GetValueId(p_row);
    const uint32_t cont_id = p.strings("P_CONTAINER").GetValueId(p_row);
    const int64_t size = p_size[p_row];
    const double q = qty[row];
    const bool arm1 = brand12.Contains(brand_id) && sm[cont_id] && q >= 1 &&
                      q <= 11 && size >= 1 && size <= 5;
    const bool arm2 = brand23.Contains(brand_id) && med[cont_id] && q >= 10 &&
                      q <= 20 && size >= 1 && size <= 10;
    const bool arm3 = brand34.Contains(brand_id) && lg[cont_id] && q >= 20 &&
                      q <= 30 && size >= 1 && size <= 15;
    if (arm1 || arm2 || arm3) revenue += price[row] * (1 - disc[row]);
  }

  QueryResult result;
  result.column_names = {"revenue"};
  result.AddRow({Cell(revenue)});
  return result;
}

// Q20: potential part promotion. forest%, CANADA, 1994.
QueryResult Q20(const TpchDatabase& db) {
  const Table& l = db.lineitem;
  const Table& p = db.part;
  const Table& ps = db.partsupp;
  const Table& s = db.supplier;
  const Table& n = db.nation;
  const int32_t lo = ParseDate("1994-01-01");
  const int32_t hi = AddMonths(lo, 12);

  const IdRange forest = PrefixIds(p.strings("P_NAME"), "forest");
  const FkJoin l_to_p(l.strings("L_PARTKEY"), p.strings("P_PARTKEY"));
  const std::vector<uint32_t> l_part_to_ps =
      MapDictionary(l.strings("L_PARTKEY"), ps.strings("PS_PARTKEY"));
  const std::vector<uint32_t> l_supp_to_ps =
      MapDictionary(l.strings("L_SUPPKEY"), ps.strings("PS_SUPPKEY"));

  // Quantity shipped in 1994 per (ps part id, ps supp id), forest parts only.
  const auto& shipdate = l.dates("L_SHIPDATE");
  const auto& qty = l.doubles("L_QUANTITY");
  std::unordered_map<uint64_t, double> shipped;
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    if (shipdate[row] < lo || shipdate[row] >= hi) continue;
    const uint32_t p_row = l_to_p.Row(l.strings("L_PARTKEY"), row);
    if (p_row == kNoMatch ||
        !forest.Contains(p.strings("P_NAME").GetValueId(p_row))) {
      continue;
    }
    const uint32_t ps_part = l_part_to_ps[l.strings("L_PARTKEY").GetValueId(row)];
    const uint32_t ps_supp = l_supp_to_ps[l.strings("L_SUPPKEY").GetValueId(row)];
    if (ps_part == kNoMatch || ps_supp == kNoMatch) continue;
    shipped[(static_cast<uint64_t>(ps_part) << 32) | ps_supp] += qty[row];
  }

  // Suppliers with availqty > 0.5 * shipped, in CANADA.
  const IdRange canada = EqIds(n.strings("N_NAME"), "CANADA");
  const IdIndex nation_by_name(n.strings("N_NAME"));
  const uint32_t canada_row =
      canada.empty() ? kNoMatch : nation_by_name.UniqueRow(canada.begin);
  const FkJoin ps_to_s(ps.strings("PS_SUPPKEY"), s.strings("S_SUPPKEY"));
  const FkJoin s_to_n(s.strings("S_NATIONKEY"), n.strings("N_NATIONKEY"));

  const auto& avail = ps.int64s("PS_AVAILQTY");
  std::unordered_set<uint32_t> supplier_rows;
  for (uint64_t row = 0; row < ps.num_rows(); ++row) {
    const uint64_t key =
        (static_cast<uint64_t>(ps.strings("PS_PARTKEY").GetValueId(row)) << 32) |
        ps.strings("PS_SUPPKEY").GetValueId(row);
    const auto it = shipped.find(key);
    if (it == shipped.end()) continue;
    if (static_cast<double>(avail[row]) <= 0.5 * it->second) continue;
    const uint32_t s_row = ps_to_s.Row(ps.strings("PS_SUPPKEY"), row);
    if (s_row == kNoMatch) continue;
    if (s_to_n.Row(s.strings("S_NATIONKEY"), s_row) != canada_row) continue;
    supplier_rows.insert(s_row);
  }

  std::vector<std::pair<std::string, std::string>> rows;
  for (uint32_t s_row : supplier_rows) {
    rows.push_back({s.strings("S_NAME").GetValue(s_row),
                    s.strings("S_ADDRESS").GetValue(s_row)});
  }
  std::sort(rows.begin(), rows.end());

  QueryResult result;
  result.column_names = {"s_name", "s_address"};
  for (const auto& [name, address] : rows) result.AddRow({name, address});
  return result;
}

// Q21: suppliers who kept orders waiting. SAUDI ARABIA.
QueryResult Q21(const TpchDatabase& db) {
  const Table& l = db.lineitem;
  const Table& o = db.orders;
  const Table& s = db.supplier;
  const Table& n = db.nation;

  const IdRange failed = EqIds(o.strings("O_ORDERSTATUS"), "F");
  const FkJoin l_to_o(l.strings("L_ORDERKEY"), o.strings("O_ORDERKEY"));
  const FkJoin l_to_s(l.strings("L_SUPPKEY"), s.strings("S_SUPPKEY"));
  const FkJoin s_to_n(s.strings("S_NATIONKEY"), n.strings("N_NATIONKEY"));

  const IdRange saudi = EqIds(n.strings("N_NAME"), "SAUDI ARABIA");
  const IdIndex nation_by_name(n.strings("N_NAME"));
  const uint32_t saudi_row =
      saudi.empty() ? kNoMatch : nation_by_name.UniqueRow(saudi.begin);

  // Per order (value id of L_ORDERKEY): distinct-supplier bookkeeping with
  // O(1) state, enough to evaluate the exists / not-exists pair.
  const uint32_t num_orders = l.strings("L_ORDERKEY").num_distinct();
  constexpr uint32_t kNone = kNoMatch;
  constexpr uint32_t kMany = kNoMatch - 1;
  std::vector<uint32_t> any_supp(num_orders, kNone);   // kMany: >= 2 distinct
  std::vector<uint32_t> late_supp(num_orders, kNone);  // kMany: >= 2 distinct

  const auto& commit = l.dates("L_COMMITDATE");
  const auto& receipt = l.dates("L_RECEIPTDATE");
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    const uint32_t order = l.strings("L_ORDERKEY").GetValueId(row);
    const uint32_t supp = l.strings("L_SUPPKEY").GetValueId(row);
    auto note = [supp](uint32_t& slot) {
      if (slot == kNone) {
        slot = supp;
      } else if (slot != supp) {
        slot = kMany;
      }
    };
    note(any_supp[order]);
    if (receipt[row] > commit[row]) note(late_supp[order]);
  }

  // A supplier qualifies in an order iff it is the *only* late supplier and
  // at least one other supplier participated; count per supplier.
  std::unordered_map<uint32_t, uint64_t> waiting;  // supplier row -> count
  const IdIndex order_index(o.strings("O_ORDERKEY"));
  const IdIndex supp_index(s.strings("S_SUPPKEY"));
  const std::vector<uint32_t> l_order_to_o =
      MapDictionary(l.strings("L_ORDERKEY"), o.strings("O_ORDERKEY"));
  const std::vector<uint32_t> l_supp_to_s =
      MapDictionary(l.strings("L_SUPPKEY"), s.strings("S_SUPPKEY"));
  for (uint32_t order = 0; order < num_orders; ++order) {
    const uint32_t late = late_supp[order];
    if (late == kNone || late == kMany) continue;
    if (any_supp[order] != kMany) continue;  // needs another supplier
    // Order status must be 'F'.
    const uint32_t o_id = l_order_to_o[order];
    if (o_id == kNoMatch) continue;
    const uint32_t o_row = order_index.UniqueRow(o_id);
    if (o_row == kNoMatch ||
        !failed.Contains(o.strings("O_ORDERSTATUS").GetValueId(o_row))) {
      continue;
    }
    // Supplier must be Saudi.
    const uint32_t s_id = l_supp_to_s[late];
    if (s_id == kNoMatch) continue;
    const uint32_t s_row = supp_index.UniqueRow(s_id);
    if (s_row == kNoMatch ||
        s_to_n.Row(s.strings("S_NATIONKEY"), s_row) != saudi_row) {
      continue;
    }
    ++waiting[s_row];
  }

  std::vector<std::pair<uint32_t, uint64_t>> rows(waiting.begin(),
                                                  waiting.end());
  std::sort(rows.begin(), rows.end(), [&](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return s.strings("S_NAME").GetValue(a.first) <
           s.strings("S_NAME").GetValue(b.first);
  });
  if (rows.size() > 100) rows.resize(100);

  QueryResult result;
  result.column_names = {"s_name", "numwait"};
  for (const auto& [s_row, count] : rows) {
    result.AddRow({s.strings("S_NAME").GetValue(s_row), Cell(count)});
  }
  return result;
}

// Q22: global sales opportunity. Country codes 13,31,23,29,30,18,17.
QueryResult Q22(const TpchDatabase& db) {
  const Table& c = db.customer;
  const Table& o = db.orders;
  const std::string_view codes[] = {"13", "31", "23", "29", "30", "18", "17"};

  // Customers whose phone starts with one of the codes, via dictionary
  // prefix ranges on C_PHONE.
  const StringColumn& phone = c.strings("C_PHONE");
  std::vector<IdRange> ranges;
  for (std::string_view code : codes) ranges.push_back(PrefixIds(phone, code));
  const auto code_of = [&ranges, &codes](uint32_t phone_id) -> int {
    for (size_t i = 0; i < ranges.size(); ++i) {
      if (ranges[i].Contains(phone_id)) return static_cast<int>(i);
    }
    return -1;
  };

  // Average positive account balance over the code set.
  const auto& acctbal = c.doubles("C_ACCTBAL");
  double sum = 0;
  uint64_t count = 0;
  for (uint64_t row = 0; row < c.num_rows(); ++row) {
    if (acctbal[row] <= 0.0) continue;
    if (code_of(phone.GetValueId(row)) < 0) continue;
    sum += acctbal[row];
    ++count;
  }
  const double avg = count > 0 ? sum / count : 0.0;

  // Customers above average without orders.
  const std::vector<uint32_t> c_to_o =
      MapDictionary(c.strings("C_CUSTKEY"), o.strings("O_CUSTKEY"));
  std::map<int, std::pair<uint64_t, double>> groups;  // code idx
  for (uint64_t row = 0; row < c.num_rows(); ++row) {
    if (acctbal[row] <= avg) continue;
    const int code = code_of(phone.GetValueId(row));
    if (code < 0) continue;
    if (c_to_o[c.strings("C_CUSTKEY").GetValueId(row)] != kNoMatch) continue;
    auto& [numcust, total] = groups[code];
    ++numcust;
    total += acctbal[row];
  }

  QueryResult result;
  result.column_names = {"cntrycode", "numcust", "totacctbal"};
  std::vector<std::pair<std::string, std::pair<uint64_t, double>>> rows;
  for (const auto& [code, g] : groups) {
    rows.push_back({std::string(codes[code]), g});
  }
  std::sort(rows.begin(), rows.end());
  for (const auto& [code, g] : rows) {
    result.AddRow({code, Cell(g.first), Cell(g.second)});
  }
  return result;
}

}  // namespace tpch_internal

QueryResult RunTpchQuery(const TpchDatabase& db, int query) {
  using namespace tpch_internal;
  // Span names are string literals because TraceEvent stores the pointer.
  // The marker comments register the whole array with tools/adict_lint.py,
  // which cross-checks every name against the span catalog in
  // docs/observability.md (spans opened through a variable are invisible
  // to its ADICT_TRACE_SPAN / ScopedSpan literal extraction).
  // adict-lint: span-names-begin
  static constexpr const char* kQuerySpans[kNumTpchQueries] = {
      "tpch.q01", "tpch.q02", "tpch.q03", "tpch.q04", "tpch.q05", "tpch.q06",
      "tpch.q07", "tpch.q08", "tpch.q09", "tpch.q10", "tpch.q11", "tpch.q12",
      "tpch.q13", "tpch.q14", "tpch.q15", "tpch.q16", "tpch.q17", "tpch.q18",
      "tpch.q19", "tpch.q20", "tpch.q21", "tpch.q22"};
  // adict-lint: span-names-end
  const char* span_name = query >= 1 && query <= kNumTpchQueries
                              ? kQuerySpans[query - 1]
                              : "tpch.q??";
  obs::ScopedSpan span(span_name);
  // Per-query latency attribution: diff every column's heat slot across the
  // query and push the result into the profiler ring (/profile.json).
  obs::ScopedQueryProfile profile(span_name);
  switch (query) {
    case 1: return Q1(db);
    case 2: return Q2(db);
    case 3: return Q3(db);
    case 4: return Q4(db);
    case 5: return Q5(db);
    case 6: return Q6(db);
    case 7: return Q7(db);
    case 8: return Q8(db);
    case 9: return Q9(db);
    case 10: return Q10(db);
    case 11: return Q11(db);
    case 12: return Q12(db);
    case 13: return Q13(db);
    case 14: return Q14(db);
    case 15: return Q15(db);
    case 16: return Q16(db);
    case 17: return Q17(db);
    case 18: return Q18(db);
    case 19: return Q19(db);
    case 20: return Q20(db);
    case 21: return Q21(db);
    case 22: return Q22(db);
    default:
      ADICT_CHECK_MSG(false, "TPC-H query number must be 1..22");
      return {};
  }
}

}  // namespace adict
