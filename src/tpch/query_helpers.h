// Internal helpers shared by the TPC-H query implementations.
#ifndef ADICT_TPCH_QUERY_HELPERS_H_
#define ADICT_TPCH_QUERY_HELPERS_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "engine/join.h"
#include "engine/predicates.h"
#include "engine/result.h"
#include "store/table.h"
#include "util/date.h"

namespace adict {
namespace tpch_internal {

/// Foreign-key join accessor: maps a FK column's value IDs to rows of the
/// primary-key table in two precomputed steps.
struct FkJoin {
  std::vector<uint32_t> id_map;  // fk value id -> pk value id (or kNoMatch)
  IdIndex pk_index;

  FkJoin(const StringColumn& fk, const StringColumn& pk)
      : id_map(MapDictionary(fk, pk)), pk_index(pk) {}

  /// Row in the PK table for FK row `fk_row`, or kNoMatch.
  uint32_t Row(const StringColumn& fk, uint64_t fk_row) const {
    const uint32_t pk_id = id_map[fk.GetValueId(fk_row)];
    return pk_id == kNoMatch ? kNoMatch : pk_index.UniqueRow(pk_id);
  }
};

inline int YearOf(int32_t days) { return CivilFromDays(days).year; }

/// Packs up to three 21-bit IDs into one group-by key.
inline uint64_t GroupKey(uint32_t a, uint32_t b = 0, uint32_t c = 0) {
  return (static_cast<uint64_t>(a) << 42) | (static_cast<uint64_t>(b) << 21) |
         static_cast<uint64_t>(c);
}

}  // namespace tpch_internal
}  // namespace adict

#endif  // ADICT_TPCH_QUERY_HELPERS_H_
