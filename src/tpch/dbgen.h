// dbgen-style TPC-H data generator with the paper's schema modification:
// every *KEY column is a VARCHAR(10) string column (paper §6.1), reflecting
// the observation that real business applications keep keys in strings.
//
// The generator reproduces the TPC-H distributions the 22 queries depend on
// (value lists, date ranges and correlations, pseudo-text grammar for
// comments) at any scale factor. It is deterministic in the seed.
#ifndef ADICT_TPCH_DBGEN_H_
#define ADICT_TPCH_DBGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "store/table.h"

namespace adict {

struct TpchOptions {
  /// TPC-H scale factor; 1.0 is the paper's setting (~8.6M rows total).
  double scale_factor = 0.01;
  uint64_t seed = 42;
  /// Dictionary format used for every string column initially.
  DictFormat format = DictFormat::kFcInline;
};

struct TpchDatabase {
  Table region{"region"};
  Table nation{"nation"};
  Table supplier{"supplier"};
  Table customer{"customer"};
  Table part{"part"};
  Table partsupp{"partsupp"};
  Table orders{"orders"};
  Table lineitem{"lineitem"};

  std::vector<Table*> tables() {
    return {&region,   &nation, &supplier, &customer,
            &part,     &partsupp, &orders, &lineitem};
  }
  std::vector<const Table*> tables() const {
    return {&region,   &nation, &supplier, &customer,
            &part,     &partsupp, &orders, &lineitem};
  }

  /// Total memory of all tables (column vectors + dictionaries + numerics).
  size_t MemoryBytes() const;
  /// Memory of the string columns only (dictionaries + their vectors).
  size_t StringColumnBytes() const;
  /// Rebuilds every string dictionary in `format` (a fixed-format
  /// configuration in the paper's sense).
  void ApplyFormat(DictFormat format);
  /// Resets the traced usage counters of every string column.
  void ResetUsage();
};

/// Generates a database. Cost is roughly linear in the scale factor;
/// SF 0.01 takes well under a second.
TpchDatabase GenerateTpch(const TpchOptions& options);

/// The VARCHAR(10) rendering of an integer key, e.g. 42 -> "0000000042".
std::string KeyString(uint64_t key);

}  // namespace adict

#endif  // ADICT_TPCH_DBGEN_H_
