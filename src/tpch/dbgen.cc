#include "tpch/dbgen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"
#include "util/date.h"
#include "util/rng.h"

namespace adict {
namespace {

// ---------------------------------------------------------------------------
// TPC-H value lists (per the specification).
// ---------------------------------------------------------------------------

constexpr std::string_view kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                         "MIDDLE EAST"};

struct NationSpec {
  std::string_view name;
  int region;
};
constexpr NationSpec kNations[] = {
    {"ALGERIA", 0},  {"ARGENTINA", 1}, {"BRAZIL", 1},        {"CANADA", 1},
    {"EGYPT", 4},    {"ETHIOPIA", 0},  {"FRANCE", 3},        {"GERMANY", 3},
    {"INDIA", 2},    {"INDONESIA", 2}, {"IRAN", 4},          {"IRAQ", 4},
    {"JAPAN", 2},    {"JORDAN", 4},    {"KENYA", 0},         {"MOROCCO", 0},
    {"MOZAMBIQUE", 0},{"PERU", 1},     {"CHINA", 2},         {"ROMANIA", 3},
    {"SAUDI ARABIA", 4},{"VIETNAM", 2},{"RUSSIA", 3},        {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1},
};
constexpr int kNumNations = 25;

// The 92 color words of P_NAME.
constexpr std::string_view kColors[] = {
    "almond",     "antique",   "aquamarine", "azure",     "beige",
    "bisque",     "black",     "blanched",   "blue",      "blush",
    "brown",      "burlywood", "burnished",  "chartreuse","chiffon",
    "chocolate",  "coral",     "cornflower", "cornsilk",  "cream",
    "cyan",       "dark",      "deep",       "dim",       "dodger",
    "drab",       "firebrick", "floral",     "forest",    "frosted",
    "gainsboro",  "ghost",     "goldenrod",  "green",     "grey",
    "honeydew",   "hot",       "indian",     "ivory",     "khaki",
    "lace",       "lavender",  "lawn",       "lemon",     "light",
    "lime",       "linen",     "magenta",    "maroon",    "medium",
    "metallic",   "midnight",  "mint",       "misty",     "moccasin",
    "navajo",     "navy",      "olive",      "orange",    "orchid",
    "pale",       "papaya",    "peach",      "peru",      "pink",
    "plum",       "powder",    "puff",       "purple",    "red",
    "rose",       "rosy",      "royal",      "saddle",    "salmon",
    "sandy",      "seashell",  "sienna",     "sky",       "slate",
    "smoke",      "snow",      "spring",     "steel",     "tan",
    "thistle",    "tomato",    "turquoise",  "violet",    "wheat",
    "white",      "yellow",
};

constexpr std::string_view kTypeSyllable1[] = {"STANDARD", "SMALL",   "MEDIUM",
                                               "LARGE",    "ECONOMY", "PROMO"};
constexpr std::string_view kTypeSyllable2[] = {"ANODIZED", "BURNISHED",
                                               "PLATED", "POLISHED", "BRUSHED"};
constexpr std::string_view kTypeSyllable3[] = {"TIN", "NICKEL", "BRASS",
                                               "STEEL", "COPPER"};
constexpr std::string_view kContainerSyllable1[] = {"SM", "LG", "MED", "JUMBO",
                                                    "WRAP"};
constexpr std::string_view kContainerSyllable2[] = {"CASE", "BOX", "BAG", "JAR",
                                                    "PKG", "PACK", "CAN", "DRUM"};
constexpr std::string_view kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                          "MACHINERY", "HOUSEHOLD"};
constexpr std::string_view kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                            "4-NOT SPECIFIED", "5-LOW"};
constexpr std::string_view kShipModes[] = {"REG AIR", "AIR",   "RAIL", "SHIP",
                                           "TRUCK",   "MAIL", "FOB"};
constexpr std::string_view kShipInstructs[] = {"DELIVER IN PERSON", "COLLECT COD",
                                               "NONE", "TAKE BACK RETURN"};

// Pseudo-text vocabulary for comments (includes the words the query
// predicates of Q13 et al. look for).
constexpr std::string_view kTextWords[] = {
    "carefully",  "quickly",   "blithely",  "furiously", "slyly",
    "final",      "special",   "pending",   "express",   "regular",
    "ironic",     "even",      "bold",      "silent",    "daring",
    "requests",   "accounts",  "packages",  "deposits",  "instructions",
    "theodolites","pinto",     "beans",     "foxes",     "dependencies",
    "platelets",  "ideas",     "excuses",   "asymptotes","dolphins",
    "sleep",      "haggle",    "nag",       "wake",      "cajole",
    "integrate",  "detect",    "boost",     "breach",    "among",
    "across",     "above",     "against",   "along",     "the",
};

constexpr int32_t kStartDate = DaysFromCivil(1992, 1, 1);
constexpr int32_t kEndDate = DaysFromCivil(1998, 12, 31);
constexpr int32_t kCurrentDate = DaysFromCivil(1995, 6, 17);
// Orders span [1992-01-01, 1998-08-02] so all lineitem dates fit.
constexpr int32_t kLastOrderDate = DaysFromCivil(1998, 8, 2);

std::string PseudoText(Rng* rng, int min_words, int max_words) {
  std::string text;
  const int words =
      min_words + static_cast<int>(rng->Uniform(max_words - min_words + 1));
  for (int w = 0; w < words; ++w) {
    if (w) text += ' ';
    text += kTextWords[rng->Uniform(std::size(kTextWords))];
  }
  return text;
}

std::string Address(Rng* rng) {
  static constexpr std::string_view kChars =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,";
  const size_t len = 10 + rng->Uniform(31);
  std::string address;
  address.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    address.push_back(kChars[rng->Uniform(kChars.size())]);
  }
  return address;
}

std::string Phone(Rng* rng, int nation) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d", 10 + nation,
                100 + static_cast<int>(rng->Uniform(900)),
                100 + static_cast<int>(rng->Uniform(900)),
                1000 + static_cast<int>(rng->Uniform(9000)));
  return buf;
}

double Money(Rng* rng, double lo, double hi) {
  return std::round((lo + rng->NextDouble() * (hi - lo)) * 100.0) / 100.0;
}

/// Part retail price per the spec formula.
double RetailPrice(uint64_t partkey) {
  return (90000.0 + (partkey / 10) % 20001 + 100.0 * (partkey % 1000)) / 100.0;
}

}  // namespace

std::string KeyString(uint64_t key) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%010llu",
                static_cast<unsigned long long>(key));
  return buf;
}

size_t TpchDatabase::MemoryBytes() const {
  size_t bytes = 0;
  for (const Table* table : tables()) bytes += table->MemoryBytes();
  return bytes;
}

size_t TpchDatabase::StringColumnBytes() const {
  size_t bytes = 0;
  for (const Table* table : tables()) {
    for (size_t i = 0; i < table->num_string_columns(); ++i) {
      bytes += table->string_column(i).current().MemoryBytes();
    }
  }
  return bytes;
}

void TpchDatabase::ApplyFormat(DictFormat format) {
  for (Table* table : tables()) {
    for (size_t i = 0; i < table->num_string_columns(); ++i) {
      table->string_column(i).current().ChangeFormat(format);
    }
  }
}

void TpchDatabase::ResetUsage() {
  for (Table* table : tables()) {
    for (size_t i = 0; i < table->num_string_columns(); ++i) {
      table->string_column(i).current().ResetUsage();
    }
  }
}

TpchDatabase GenerateTpch(const TpchOptions& options) {
  ADICT_CHECK(options.scale_factor > 0);
  const double sf = options.scale_factor;
  const uint64_t num_suppliers = std::max<uint64_t>(10, 10000 * sf);
  const uint64_t num_customers = std::max<uint64_t>(15, 150000 * sf);
  const uint64_t num_parts = std::max<uint64_t>(20, 200000 * sf);
  const uint64_t num_orders = std::max<uint64_t>(150, 1500000 * sf);

  TpchDatabase db;
  Rng rng(options.seed);
  const DictFormat fmt = options.format;

  // ----- region ----------------------------------------------------------
  {
    std::vector<std::string> key, name, comment;
    for (int r = 0; r < 5; ++r) {
      key.push_back(KeyString(r));
      name.emplace_back(kRegions[r]);
      comment.push_back(PseudoText(&rng, 4, 12));
    }
    db.region.AddStringColumn("R_REGIONKEY", StringColumn::FromValues(key, fmt));
    db.region.AddStringColumn("R_NAME", StringColumn::FromValues(name, fmt));
    db.region.AddStringColumn("R_COMMENT", StringColumn::FromValues(comment, fmt));
  }

  // ----- nation ----------------------------------------------------------
  {
    std::vector<std::string> key, name, regionkey, comment;
    for (int n = 0; n < kNumNations; ++n) {
      key.push_back(KeyString(n));
      name.emplace_back(kNations[n].name);
      regionkey.push_back(KeyString(kNations[n].region));
      comment.push_back(PseudoText(&rng, 4, 12));
    }
    db.nation.AddStringColumn("N_NATIONKEY", StringColumn::FromValues(key, fmt));
    db.nation.AddStringColumn("N_NAME", StringColumn::FromValues(name, fmt));
    db.nation.AddStringColumn("N_REGIONKEY",
                              StringColumn::FromValues(regionkey, fmt));
    db.nation.AddStringColumn("N_COMMENT", StringColumn::FromValues(comment, fmt));
  }

  // ----- supplier ---------------------------------------------------------
  std::vector<int> supplier_nation(num_suppliers);
  {
    std::vector<std::string> key, name, address, nationkey, phone, comment;
    std::vector<double> acctbal;
    for (uint64_t s = 1; s <= num_suppliers; ++s) {
      const int nation = static_cast<int>(rng.Uniform(kNumNations));
      supplier_nation[s - 1] = nation;
      key.push_back(KeyString(s));
      char buf[32];
      std::snprintf(buf, sizeof(buf), "Supplier#%09llu",
                    static_cast<unsigned long long>(s));
      name.emplace_back(buf);
      address.push_back(Address(&rng));
      nationkey.push_back(KeyString(nation));
      phone.push_back(Phone(&rng, nation));
      acctbal.push_back(Money(&rng, -999.99, 9999.99));
      // A small fraction of supplier comments mention customer complaints
      // (Q16's exclusion predicate), mirroring dbgen's injection.
      std::string text = PseudoText(&rng, 6, 20);
      if (rng.NextDouble() < 0.01) text += " Customer Complaints";
      comment.push_back(std::move(text));
    }
    db.supplier.AddStringColumn("S_SUPPKEY", StringColumn::FromValues(key, fmt));
    db.supplier.AddStringColumn("S_NAME", StringColumn::FromValues(name, fmt));
    db.supplier.AddStringColumn("S_ADDRESS", StringColumn::FromValues(address, fmt));
    db.supplier.AddStringColumn("S_NATIONKEY",
                                StringColumn::FromValues(nationkey, fmt));
    db.supplier.AddStringColumn("S_PHONE", StringColumn::FromValues(phone, fmt));
    db.supplier.AddDoubleColumn("S_ACCTBAL", std::move(acctbal));
    db.supplier.AddStringColumn("S_COMMENT", StringColumn::FromValues(comment, fmt));
  }

  // ----- customer ---------------------------------------------------------
  {
    std::vector<std::string> key, name, address, nationkey, phone, segment,
        comment;
    std::vector<double> acctbal;
    for (uint64_t c = 1; c <= num_customers; ++c) {
      const int nation = static_cast<int>(rng.Uniform(kNumNations));
      key.push_back(KeyString(c));
      char buf[32];
      std::snprintf(buf, sizeof(buf), "Customer#%09llu",
                    static_cast<unsigned long long>(c));
      name.emplace_back(buf);
      address.push_back(Address(&rng));
      nationkey.push_back(KeyString(nation));
      phone.push_back(Phone(&rng, nation));
      acctbal.push_back(Money(&rng, -999.99, 9999.99));
      segment.emplace_back(kSegments[rng.Uniform(std::size(kSegments))]);
      comment.push_back(PseudoText(&rng, 6, 20));
    }
    db.customer.AddStringColumn("C_CUSTKEY", StringColumn::FromValues(key, fmt));
    db.customer.AddStringColumn("C_NAME", StringColumn::FromValues(name, fmt));
    db.customer.AddStringColumn("C_ADDRESS", StringColumn::FromValues(address, fmt));
    db.customer.AddStringColumn("C_NATIONKEY",
                                StringColumn::FromValues(nationkey, fmt));
    db.customer.AddStringColumn("C_PHONE", StringColumn::FromValues(phone, fmt));
    db.customer.AddDoubleColumn("C_ACCTBAL", std::move(acctbal));
    db.customer.AddStringColumn("C_MKTSEGMENT",
                                StringColumn::FromValues(segment, fmt));
    db.customer.AddStringColumn("C_COMMENT", StringColumn::FromValues(comment, fmt));
  }

  // ----- part -------------------------------------------------------------
  {
    std::vector<std::string> key, name, mfgr, brand, type, container, comment;
    std::vector<int64_t> size;
    std::vector<double> price;
    for (uint64_t p = 1; p <= num_parts; ++p) {
      key.push_back(KeyString(p));
      // P_NAME: five distinct color words.
      std::string part_name;
      uint64_t picked[5];
      for (int w = 0; w < 5; ++w) {
        bool fresh;
        do {
          picked[w] = rng.Uniform(std::size(kColors));
          fresh = true;
          for (int v = 0; v < w; ++v) fresh &= picked[v] != picked[w];
        } while (!fresh);
        if (w) part_name += ' ';
        part_name += kColors[picked[w]];
      }
      name.push_back(std::move(part_name));
      const int m = 1 + static_cast<int>(rng.Uniform(5));
      mfgr.push_back("Manufacturer#" + std::to_string(m));
      brand.push_back("Brand#" + std::to_string(m) +
                      std::to_string(1 + rng.Uniform(5)));
      type.push_back(std::string(kTypeSyllable1[rng.Uniform(6)]) + " " +
                     std::string(kTypeSyllable2[rng.Uniform(5)]) + " " +
                     std::string(kTypeSyllable3[rng.Uniform(5)]));
      size.push_back(1 + static_cast<int64_t>(rng.Uniform(50)));
      container.push_back(std::string(kContainerSyllable1[rng.Uniform(5)]) + " " +
                          std::string(kContainerSyllable2[rng.Uniform(8)]));
      price.push_back(RetailPrice(p));
      comment.push_back(PseudoText(&rng, 2, 8));
    }
    db.part.AddStringColumn("P_PARTKEY", StringColumn::FromValues(key, fmt));
    db.part.AddStringColumn("P_NAME", StringColumn::FromValues(name, fmt));
    db.part.AddStringColumn("P_MFGR", StringColumn::FromValues(mfgr, fmt));
    db.part.AddStringColumn("P_BRAND", StringColumn::FromValues(brand, fmt));
    db.part.AddStringColumn("P_TYPE", StringColumn::FromValues(type, fmt));
    db.part.AddInt64Column("P_SIZE", std::move(size));
    db.part.AddStringColumn("P_CONTAINER",
                            StringColumn::FromValues(container, fmt));
    db.part.AddDoubleColumn("P_RETAILPRICE", std::move(price));
    db.part.AddStringColumn("P_COMMENT", StringColumn::FromValues(comment, fmt));
  }

  // ----- partsupp: 4 suppliers per part ------------------------------------
  // ps_supplycost is remembered for the lineitem generator (Q9 consistency
  // does not require it, but extendedprice should correlate with the part).
  {
    std::vector<std::string> partkey, suppkey, comment;
    std::vector<int64_t> availqty;
    std::vector<double> supplycost;
    for (uint64_t p = 1; p <= num_parts; ++p) {
      for (int s = 0; s < 4; ++s) {
        // Spread the 4 suppliers over the supplier space (spec formula).
        const uint64_t supp =
            (p + s * (num_suppliers / 4 + (p - 1) / num_suppliers)) %
                num_suppliers +
            1;
        partkey.push_back(KeyString(p));
        suppkey.push_back(KeyString(supp));
        availqty.push_back(1 + static_cast<int64_t>(rng.Uniform(9999)));
        supplycost.push_back(Money(&rng, 1.0, 1000.0));
        comment.push_back(PseudoText(&rng, 8, 30));
      }
    }
    db.partsupp.AddStringColumn("PS_PARTKEY",
                                StringColumn::FromValues(partkey, fmt));
    db.partsupp.AddStringColumn("PS_SUPPKEY",
                                StringColumn::FromValues(suppkey, fmt));
    db.partsupp.AddInt64Column("PS_AVAILQTY", std::move(availqty));
    db.partsupp.AddDoubleColumn("PS_SUPPLYCOST", std::move(supplycost));
    db.partsupp.AddStringColumn("PS_COMMENT",
                                StringColumn::FromValues(comment, fmt));
  }

  // ----- orders + lineitem --------------------------------------------------
  {
    std::vector<std::string> o_key, o_cust, o_status, o_priority, o_clerk,
        o_comment;
    std::vector<double> o_total;
    std::vector<int32_t> o_date;
    std::vector<int64_t> o_shippriority;

    std::vector<std::string> l_okey, l_part, l_supp, l_returnflag, l_linestatus,
        l_shipinstruct, l_shipmode, l_comment;
    std::vector<int64_t> l_linenumber;
    std::vector<double> l_quantity, l_extendedprice, l_discount, l_tax;
    std::vector<int32_t> l_ship, l_commit, l_receipt;

    const uint64_t num_clerks = std::max<uint64_t>(1, num_orders / 1000);
    for (uint64_t o = 1; o <= num_orders; ++o) {
      // dbgen never assigns orders to custkeys divisible by 3, leaving a
      // third of the customers without orders (relevant for Q13 and Q22).
      uint64_t cust;
      do {
        cust = 1 + rng.Uniform(num_customers);
      } while (cust % 3 == 0);
      const int32_t orderdate =
          kStartDate + static_cast<int32_t>(rng.Uniform(kLastOrderDate - kStartDate + 1));
      const int lines = 1 + static_cast<int>(rng.Uniform(7));
      double total = 0;
      int f_count = 0;
      for (int l = 1; l <= lines; ++l) {
        const uint64_t p = 1 + rng.Uniform(num_parts);
        const uint64_t supp = 1 + rng.Uniform(num_suppliers);
        const double quantity = 1 + static_cast<double>(rng.Uniform(50));
        const double extended = quantity * RetailPrice(p);
        const double discount = rng.Uniform(11) / 100.0;  // 0.00 .. 0.10
        const double tax = rng.Uniform(9) / 100.0;        // 0.00 .. 0.08
        const int32_t ship = orderdate + 1 + static_cast<int32_t>(rng.Uniform(121));
        const int32_t commit = orderdate + 30 + static_cast<int32_t>(rng.Uniform(61));
        const int32_t receipt = ship + 1 + static_cast<int32_t>(rng.Uniform(30));

        l_okey.push_back(KeyString(o));
        l_part.push_back(KeyString(p));
        l_supp.push_back(KeyString(supp));
        l_linenumber.push_back(l);
        l_quantity.push_back(quantity);
        l_extendedprice.push_back(extended);
        l_discount.push_back(discount);
        l_tax.push_back(tax);
        if (receipt <= kCurrentDate) {
          l_returnflag.emplace_back(rng.NextDouble() < 0.5 ? "R" : "A");
        } else {
          l_returnflag.emplace_back("N");
        }
        const bool filled = ship <= kCurrentDate;
        f_count += filled;
        l_linestatus.emplace_back(filled ? "F" : "O");
        l_ship.push_back(ship);
        l_commit.push_back(commit);
        l_receipt.push_back(receipt);
        l_shipinstruct.emplace_back(
            kShipInstructs[rng.Uniform(std::size(kShipInstructs))]);
        l_shipmode.emplace_back(kShipModes[rng.Uniform(std::size(kShipModes))]);
        l_comment.push_back(PseudoText(&rng, 2, 8));
        total += extended * (1.0 + tax) * (1.0 - discount);
      }
      o_key.push_back(KeyString(o));
      o_cust.push_back(KeyString(cust));
      o_status.emplace_back(f_count == lines ? "F"
                            : f_count == 0   ? "O"
                                             : "P");
      o_total.push_back(total);
      o_date.push_back(orderdate);
      o_priority.emplace_back(kPriorities[rng.Uniform(std::size(kPriorities))]);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "Clerk#%09llu",
                    static_cast<unsigned long long>(1 + rng.Uniform(num_clerks)));
      o_clerk.emplace_back(buf);
      o_shippriority.push_back(0);
      o_comment.push_back(PseudoText(&rng, 6, 20));
    }

    db.orders.AddStringColumn("O_ORDERKEY", StringColumn::FromValues(o_key, fmt));
    db.orders.AddStringColumn("O_CUSTKEY", StringColumn::FromValues(o_cust, fmt));
    db.orders.AddStringColumn("O_ORDERSTATUS",
                              StringColumn::FromValues(o_status, fmt));
    db.orders.AddDoubleColumn("O_TOTALPRICE", std::move(o_total));
    db.orders.AddDateColumn("O_ORDERDATE", std::move(o_date));
    db.orders.AddStringColumn("O_ORDERPRIORITY",
                              StringColumn::FromValues(o_priority, fmt));
    db.orders.AddStringColumn("O_CLERK", StringColumn::FromValues(o_clerk, fmt));
    db.orders.AddInt64Column("O_SHIPPRIORITY", std::move(o_shippriority));
    db.orders.AddStringColumn("O_COMMENT",
                              StringColumn::FromValues(o_comment, fmt));

    db.lineitem.AddStringColumn("L_ORDERKEY",
                                StringColumn::FromValues(l_okey, fmt));
    db.lineitem.AddStringColumn("L_PARTKEY",
                                StringColumn::FromValues(l_part, fmt));
    db.lineitem.AddStringColumn("L_SUPPKEY",
                                StringColumn::FromValues(l_supp, fmt));
    db.lineitem.AddInt64Column("L_LINENUMBER", std::move(l_linenumber));
    db.lineitem.AddDoubleColumn("L_QUANTITY", std::move(l_quantity));
    db.lineitem.AddDoubleColumn("L_EXTENDEDPRICE", std::move(l_extendedprice));
    db.lineitem.AddDoubleColumn("L_DISCOUNT", std::move(l_discount));
    db.lineitem.AddDoubleColumn("L_TAX", std::move(l_tax));
    db.lineitem.AddStringColumn("L_RETURNFLAG",
                                StringColumn::FromValues(l_returnflag, fmt));
    db.lineitem.AddStringColumn("L_LINESTATUS",
                                StringColumn::FromValues(l_linestatus, fmt));
    db.lineitem.AddDateColumn("L_SHIPDATE", std::move(l_ship));
    db.lineitem.AddDateColumn("L_COMMITDATE", std::move(l_commit));
    db.lineitem.AddDateColumn("L_RECEIPTDATE", std::move(l_receipt));
    db.lineitem.AddStringColumn("L_SHIPINSTRUCT",
                                StringColumn::FromValues(l_shipinstruct, fmt));
    db.lineitem.AddStringColumn("L_SHIPMODE",
                                StringColumn::FromValues(l_shipmode, fmt));
    db.lineitem.AddStringColumn("L_COMMENT",
                                StringColumn::FromValues(l_comment, fmt));
  }
  (void)kEndDate;
  return db;
}

}  // namespace adict
