// TPC-H queries 1-11 (standard substitution parameters).
//
// Q1 and Q6 (the scan-heavy queries the paper's workload leans on) run
// morsel-parallel on the process-wide pool. Both use the same decomposition
// at every parallelism — per-morsel partial aggregates combined in morsel
// order — so their results are bit-identical whether ADICT_THREADS is 1 or
// 64 (morsel boundaries depend only on the row count and the grain).
#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "engine/parallel.h"
#include "tpch/queries.h"
#include "tpch/query_helpers.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace adict {
namespace tpch_internal {

// Q1: pricing summary report.
// Filter: l_shipdate <= '1998-12-01' - 90 days. Group: returnflag, linestatus.
QueryResult Q1(const TpchDatabase& db) {
  const Table& l = db.lineitem;
  // Pinned snapshots, not current() references: Q1 may race a concurrent
  // pressure-triggered format rebuild (core/recompression_scheduler.h), and
  // a reference into the current version dangles at the next publish. The
  // snapshot keeps the whole query on one bit-identical version.
  const std::shared_ptr<const StringColumn> flag_snapshot =
      l.SnapshotStrings("L_RETURNFLAG");
  const std::shared_ptr<const StringColumn> status_snapshot =
      l.SnapshotStrings("L_LINESTATUS");
  const StringColumn& flag = *flag_snapshot;
  const StringColumn& status = *status_snapshot;
  const auto& shipdate = l.dates("L_SHIPDATE");
  const auto& qty = l.doubles("L_QUANTITY");
  const auto& price = l.doubles("L_EXTENDEDPRICE");
  const auto& disc = l.doubles("L_DISCOUNT");
  const auto& tax = l.doubles("L_TAX");
  const int32_t cutoff = ParseDate("1998-12-01") - 90;

  struct Agg {
    double sum_qty = 0, sum_base = 0, sum_disc_price = 0, sum_charge = 0;
    double sum_disc = 0;
    uint64_t count = 0;
  };
  // Per-morsel partial aggregates, combined in morsel order below: the same
  // decomposition at every thread count, so the sums (and their rounding)
  // never depend on ADICT_THREADS.
  std::vector<std::map<uint64_t, Agg>> partials(
      ThreadPool::NumChunks(l.num_rows(), kMorselRows));
  Pool().ParallelFor(
      0, l.num_rows(), kMorselRows, [&](uint64_t begin, uint64_t end) {
        std::map<uint64_t, Agg>& local = partials[begin / kMorselRows];
        for (uint64_t row = begin; row < end; ++row) {
          if (shipdate[row] > cutoff) continue;
          Agg& g =
              local[GroupKey(flag.GetValueId(row), status.GetValueId(row))];
          g.sum_qty += qty[row];
          g.sum_base += price[row];
          g.sum_disc_price += price[row] * (1 - disc[row]);
          g.sum_charge += price[row] * (1 - disc[row]) * (1 + tax[row]);
          g.sum_disc += disc[row];
          ++g.count;
        }
      });
  std::map<uint64_t, Agg> groups;  // ordered by (flag id, status id)
  for (const auto& partial : partials) {
    for (const auto& [key, p] : partial) {
      Agg& g = groups[key];
      g.sum_qty += p.sum_qty;
      g.sum_base += p.sum_base;
      g.sum_disc_price += p.sum_disc_price;
      g.sum_charge += p.sum_charge;
      g.sum_disc += p.sum_disc;
      g.count += p.count;
    }
  }

  QueryResult result;
  result.column_names = {"l_returnflag", "l_linestatus", "sum_qty",
                         "sum_base_price", "sum_disc_price", "sum_charge",
                         "avg_qty", "avg_price", "avg_disc", "count_order"};
  for (const auto& [key, g] : groups) {
    const uint32_t flag_id = static_cast<uint32_t>(key >> 42);
    const uint32_t status_id = static_cast<uint32_t>((key >> 21) & 0x1fffff);
    result.AddRow({flag.ExtractId(flag_id), status.ExtractId(status_id),
                   Cell(g.sum_qty), Cell(g.sum_base), Cell(g.sum_disc_price),
                   Cell(g.sum_charge), Cell(g.sum_qty / g.count),
                   Cell(g.sum_base / g.count), Cell(g.sum_disc / g.count),
                   Cell(g.count)});
  }
  return result;
}

// Q2: minimum cost supplier. size = 15, type LIKE '%BRASS', region EUROPE.
QueryResult Q2(const TpchDatabase& db) {
  const Table& ps = db.partsupp;
  const StringColumn& ps_part = ps.strings("PS_PARTKEY");
  const StringColumn& ps_supp = ps.strings("PS_SUPPKEY");
  const auto& ps_cost = ps.doubles("PS_SUPPLYCOST");

  // European nations: nation rows whose region key is EUROPE's key.
  const Table& nation = db.nation;
  const IdRange europe = EqIds(db.region.strings("R_NAME"), "EUROPE");
  std::vector<uint32_t> europe_key_id(1, kNoMatch);
  std::string europe_region_key;
  if (!europe.empty()) {
    const IdIndex region_index(db.region.strings("R_NAME"));
    const uint32_t region_row = region_index.UniqueRow(europe.begin);
    europe_region_key = db.region.strings("R_REGIONKEY").GetValue(region_row);
  }
  const IdRange europe_nk =
      EqIds(nation.strings("N_REGIONKEY"), europe_region_key);
  std::vector<bool> nation_in_europe(nation.num_rows(), false);
  for (uint64_t row = 0; row < nation.num_rows(); ++row) {
    nation_in_europe[row] =
        europe_nk.Contains(nation.strings("N_REGIONKEY").GetValueId(row));
  }

  const Table& part = db.part;
  const auto& p_size = part.int64s("P_SIZE");
  const std::vector<bool> brass = ContainsIds(part.strings("P_TYPE"), "BRASS");

  const Table& supp = db.supplier;
  const FkJoin ps_to_part(ps_part, part.strings("P_PARTKEY"));
  const FkJoin ps_to_supp(ps_supp, supp.strings("S_SUPPKEY"));
  const FkJoin supp_to_nation(supp.strings("S_NATIONKEY"),
                              nation.strings("N_NATIONKEY"));

  // Pass 1: min supply cost per part (European suppliers only).
  std::unordered_map<uint32_t, double> min_cost;  // part row -> min cost
  std::vector<uint32_t> part_row_of(ps.num_rows(), kNoMatch);
  std::vector<uint32_t> supp_row_of(ps.num_rows(), kNoMatch);
  std::vector<uint32_t> nation_row_of(ps.num_rows(), kNoMatch);
  for (uint64_t row = 0; row < ps.num_rows(); ++row) {
    const uint32_t part_row = ps_to_part.Row(ps_part, row);
    if (part_row == kNoMatch || p_size[part_row] != 15 ||
        !brass[part.strings("P_TYPE").GetValueId(part_row)]) {
      continue;
    }
    const uint32_t supp_row = ps_to_supp.Row(ps_supp, row);
    if (supp_row == kNoMatch) continue;
    const uint32_t nation_row = supp_to_nation.Row(supp.strings("S_NATIONKEY"),
                                                   supp_row);
    if (nation_row == kNoMatch || !nation_in_europe[nation_row]) continue;
    part_row_of[row] = part_row;
    supp_row_of[row] = supp_row;
    nation_row_of[row] = nation_row;
    const auto [it, inserted] = min_cost.try_emplace(part_row, ps_cost[row]);
    if (!inserted) it->second = std::min(it->second, ps_cost[row]);
  }

  // Pass 2: emit rows matching the minimum.
  struct OutRow {
    double acctbal;
    std::string name, nation, partkey, mfgr, address, phone, comment;
  };
  std::vector<OutRow> out;
  const auto& s_acctbal = supp.doubles("S_ACCTBAL");
  for (uint64_t row = 0; row < ps.num_rows(); ++row) {
    const uint32_t part_row = part_row_of[row];
    if (part_row == kNoMatch || ps_cost[row] != min_cost[part_row]) continue;
    const uint32_t supp_row = supp_row_of[row];
    out.push_back({s_acctbal[supp_row],
                   supp.strings("S_NAME").GetValue(supp_row),
                   nation.strings("N_NAME").GetValue(nation_row_of[row]),
                   part.strings("P_PARTKEY").GetValue(part_row),
                   part.strings("P_MFGR").GetValue(part_row),
                   supp.strings("S_ADDRESS").GetValue(supp_row),
                   supp.strings("S_PHONE").GetValue(supp_row),
                   supp.strings("S_COMMENT").GetValue(supp_row)});
  }
  std::sort(out.begin(), out.end(), [](const OutRow& a, const OutRow& b) {
    if (a.acctbal != b.acctbal) return a.acctbal > b.acctbal;
    if (a.nation != b.nation) return a.nation < b.nation;
    if (a.name != b.name) return a.name < b.name;
    return a.partkey < b.partkey;
  });
  if (out.size() > 100) out.resize(100);

  QueryResult result;
  result.column_names = {"s_acctbal", "s_name",  "n_name", "p_partkey",
                         "p_mfgr",    "s_address", "s_phone", "s_comment"};
  for (const OutRow& r : out) {
    result.AddRow({Cell(r.acctbal), r.name, r.nation, r.partkey, r.mfgr,
                   r.address, r.phone, r.comment});
  }
  return result;
}

// Q3: shipping priority. segment BUILDING, date 1995-03-15.
QueryResult Q3(const TpchDatabase& db) {
  const int32_t date = ParseDate("1995-03-15");
  const Table& c = db.customer;
  const Table& o = db.orders;
  const Table& l = db.lineitem;

  const IdRange building = EqIds(c.strings("C_MKTSEGMENT"), "BUILDING");
  const FkJoin o_to_c(o.strings("O_CUSTKEY"), c.strings("C_CUSTKEY"));
  const auto& orderdate = o.dates("O_ORDERDATE");
  std::vector<bool> order_ok(o.num_rows(), false);
  for (uint64_t row = 0; row < o.num_rows(); ++row) {
    if (orderdate[row] >= date) continue;
    const uint32_t c_row = o_to_c.Row(o.strings("O_CUSTKEY"), row);
    order_ok[row] =
        c_row != kNoMatch &&
        building.Contains(c.strings("C_MKTSEGMENT").GetValueId(c_row));
  }

  const FkJoin l_to_o(l.strings("L_ORDERKEY"), o.strings("O_ORDERKEY"));
  const auto& shipdate = l.dates("L_SHIPDATE");
  const auto& price = l.doubles("L_EXTENDEDPRICE");
  const auto& disc = l.doubles("L_DISCOUNT");
  std::unordered_map<uint32_t, double> revenue;  // order row -> revenue
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    if (shipdate[row] <= date) continue;
    const uint32_t o_row = l_to_o.Row(l.strings("L_ORDERKEY"), row);
    if (o_row == kNoMatch || !order_ok[o_row]) continue;
    revenue[o_row] += price[row] * (1 - disc[row]);
  }

  std::vector<std::pair<uint32_t, double>> top(revenue.begin(), revenue.end());
  std::sort(top.begin(), top.end(), [&](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return orderdate[a.first] < orderdate[b.first];
  });
  if (top.size() > 10) top.resize(10);

  QueryResult result;
  result.column_names = {"l_orderkey", "revenue", "o_orderdate",
                         "o_shippriority"};
  for (const auto& [o_row, rev] : top) {
    result.AddRow({o.strings("O_ORDERKEY").GetValue(o_row), Cell(rev),
                   FormatDate(orderdate[o_row]),
                   Cell(o.int64s("O_SHIPPRIORITY")[o_row])});
  }
  return result;
}

// Q4: order priority checking. Quarter starting 1993-07-01.
QueryResult Q4(const TpchDatabase& db) {
  const Table& o = db.orders;
  const Table& l = db.lineitem;
  const int32_t lo = ParseDate("1993-07-01");
  const int32_t hi = AddMonths(lo, 3);

  // Orders with at least one late lineitem (commit < receipt).
  const FkJoin l_to_o(l.strings("L_ORDERKEY"), o.strings("O_ORDERKEY"));
  const auto& commitdate = l.dates("L_COMMITDATE");
  const auto& receiptdate = l.dates("L_RECEIPTDATE");
  std::vector<bool> has_late(o.num_rows(), false);
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    if (commitdate[row] >= receiptdate[row]) continue;
    const uint32_t o_row = l_to_o.Row(l.strings("L_ORDERKEY"), row);
    if (o_row != kNoMatch) has_late[o_row] = true;
  }

  const auto& orderdate = o.dates("O_ORDERDATE");
  const StringColumn& priority = o.strings("O_ORDERPRIORITY");
  std::map<uint32_t, uint64_t> counts;  // priority id -> count (ordered)
  for (uint64_t row = 0; row < o.num_rows(); ++row) {
    if (orderdate[row] < lo || orderdate[row] >= hi || !has_late[row]) continue;
    ++counts[priority.GetValueId(row)];
  }

  QueryResult result;
  result.column_names = {"o_orderpriority", "order_count"};
  for (const auto& [id, count] : counts) {
    result.AddRow({priority.ExtractId(id), Cell(count)});
  }
  return result;
}

// Q5: local supplier volume. Region ASIA, orders in 1994.
QueryResult Q5(const TpchDatabase& db) {
  const Table& l = db.lineitem;
  const Table& o = db.orders;
  const Table& c = db.customer;
  const Table& s = db.supplier;
  const Table& n = db.nation;
  const int32_t lo = ParseDate("1994-01-01");
  const int32_t hi = AddMonths(lo, 12);

  // Asian nation rows.
  const IdRange asia = EqIds(db.region.strings("R_NAME"), "ASIA");
  std::string asia_key;
  if (!asia.empty()) {
    const IdIndex region_index(db.region.strings("R_NAME"));
    asia_key = db.region.strings("R_REGIONKEY")
                   .GetValue(region_index.UniqueRow(asia.begin));
  }
  const IdRange asia_nk = EqIds(n.strings("N_REGIONKEY"), asia_key);
  std::vector<bool> nation_in_asia(n.num_rows(), false);
  for (uint64_t row = 0; row < n.num_rows(); ++row) {
    nation_in_asia[row] =
        asia_nk.Contains(n.strings("N_REGIONKEY").GetValueId(row));
  }

  const FkJoin l_to_o(l.strings("L_ORDERKEY"), o.strings("O_ORDERKEY"));
  const FkJoin l_to_s(l.strings("L_SUPPKEY"), s.strings("S_SUPPKEY"));
  const FkJoin o_to_c(o.strings("O_CUSTKEY"), c.strings("C_CUSTKEY"));
  const FkJoin s_to_n(s.strings("S_NATIONKEY"), n.strings("N_NATIONKEY"));
  // Customer and supplier nation keys live in different dictionaries; map
  // both into the nation table's ID space for the equality check.
  const std::vector<uint32_t> c_nation_map =
      MapDictionary(c.strings("C_NATIONKEY"), n.strings("N_NATIONKEY"));

  const auto& orderdate = o.dates("O_ORDERDATE");
  const auto& price = l.doubles("L_EXTENDEDPRICE");
  const auto& disc = l.doubles("L_DISCOUNT");
  std::unordered_map<uint32_t, double> revenue;  // nation row -> revenue
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    const uint32_t o_row = l_to_o.Row(l.strings("L_ORDERKEY"), row);
    if (o_row == kNoMatch || orderdate[o_row] < lo || orderdate[o_row] >= hi) {
      continue;
    }
    const uint32_t s_row = l_to_s.Row(l.strings("L_SUPPKEY"), row);
    if (s_row == kNoMatch) continue;
    const uint32_t n_row = s_to_n.Row(s.strings("S_NATIONKEY"), s_row);
    if (n_row == kNoMatch || !nation_in_asia[n_row]) continue;
    const uint32_t c_row = o_to_c.Row(o.strings("O_CUSTKEY"), o_row);
    if (c_row == kNoMatch) continue;
    // Local supplier: customer and supplier share the nation.
    const uint32_t c_nation_id =
        c_nation_map[c.strings("C_NATIONKEY").GetValueId(c_row)];
    if (c_nation_id != n.strings("N_NATIONKEY").GetValueId(n_row)) continue;
    revenue[n_row] += price[row] * (1 - disc[row]);
  }

  std::vector<std::pair<uint32_t, double>> rows(revenue.begin(), revenue.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  QueryResult result;
  result.column_names = {"n_name", "revenue"};
  for (const auto& [n_row, rev] : rows) {
    result.AddRow({n.strings("N_NAME").GetValue(n_row), Cell(rev)});
  }
  return result;
}

// Q6: forecasting revenue change. 1994, discount 0.06 +/- 0.01, qty < 24.
QueryResult Q6(const TpchDatabase& db) {
  const Table& l = db.lineitem;
  const auto& shipdate = l.dates("L_SHIPDATE");
  const auto& qty = l.doubles("L_QUANTITY");
  const auto& price = l.doubles("L_EXTENDEDPRICE");
  const auto& disc = l.doubles("L_DISCOUNT");
  const int32_t lo = ParseDate("1994-01-01");
  const int32_t hi = AddMonths(lo, 12);

  // Per-morsel partial sums combined in morsel order: bit-identical revenue
  // at every ADICT_THREADS (see the file comment).
  std::vector<double> partials(
      ThreadPool::NumChunks(l.num_rows(), kMorselRows), 0.0);
  Pool().ParallelFor(
      0, l.num_rows(), kMorselRows, [&](uint64_t begin, uint64_t end) {
        double local = 0;
        for (uint64_t row = begin; row < end; ++row) {
          if (shipdate[row] >= lo && shipdate[row] < hi &&
              disc[row] >= 0.05 - 1e-9 && disc[row] <= 0.07 + 1e-9 &&
              qty[row] < 24) {
            local += price[row] * disc[row];
          }
        }
        partials[begin / kMorselRows] = local;
      });
  double revenue = 0;
  for (double partial : partials) revenue += partial;
  QueryResult result;
  result.column_names = {"revenue"};
  result.AddRow({Cell(revenue)});
  return result;
}

// Q7: volume shipping between FRANCE and GERMANY, 1995-1996.
QueryResult Q7(const TpchDatabase& db) {
  const Table& l = db.lineitem;
  const Table& o = db.orders;
  const Table& c = db.customer;
  const Table& s = db.supplier;
  const Table& n = db.nation;

  const IdRange france = EqIds(n.strings("N_NAME"), "FRANCE");
  const IdRange germany = EqIds(n.strings("N_NAME"), "GERMANY");
  const IdIndex nation_by_name(n.strings("N_NAME"));
  const uint32_t france_row =
      france.empty() ? kNoMatch : nation_by_name.UniqueRow(france.begin);
  const uint32_t germany_row =
      germany.empty() ? kNoMatch : nation_by_name.UniqueRow(germany.begin);

  const FkJoin l_to_o(l.strings("L_ORDERKEY"), o.strings("O_ORDERKEY"));
  const FkJoin l_to_s(l.strings("L_SUPPKEY"), s.strings("S_SUPPKEY"));
  const FkJoin o_to_c(o.strings("O_CUSTKEY"), c.strings("C_CUSTKEY"));
  const FkJoin s_to_n(s.strings("S_NATIONKEY"), n.strings("N_NATIONKEY"));
  const FkJoin c_to_n(c.strings("C_NATIONKEY"), n.strings("N_NATIONKEY"));

  const auto& shipdate = l.dates("L_SHIPDATE");
  const auto& price = l.doubles("L_EXTENDEDPRICE");
  const auto& disc = l.doubles("L_DISCOUNT");
  const int32_t lo = ParseDate("1995-01-01");
  const int32_t hi = ParseDate("1996-12-31");

  // Group: (supp nation row, cust nation row, year).
  std::map<std::tuple<uint32_t, uint32_t, int>, double> volume;
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    if (shipdate[row] < lo || shipdate[row] > hi) continue;
    const uint32_t s_row = l_to_s.Row(l.strings("L_SUPPKEY"), row);
    if (s_row == kNoMatch) continue;
    const uint32_t sn = s_to_n.Row(s.strings("S_NATIONKEY"), s_row);
    if (sn != france_row && sn != germany_row) continue;
    const uint32_t o_row = l_to_o.Row(l.strings("L_ORDERKEY"), row);
    if (o_row == kNoMatch) continue;
    const uint32_t c_row = o_to_c.Row(o.strings("O_CUSTKEY"), o_row);
    if (c_row == kNoMatch) continue;
    const uint32_t cn = c_to_n.Row(c.strings("C_NATIONKEY"), c_row);
    const bool pair = (sn == france_row && cn == germany_row) ||
                      (sn == germany_row && cn == france_row);
    if (!pair) continue;
    volume[{sn, cn, YearOf(shipdate[row])}] += price[row] * (1 - disc[row]);
  }

  QueryResult result;
  result.column_names = {"supp_nation", "cust_nation", "l_year", "revenue"};
  std::vector<std::pair<std::tuple<std::string, std::string, int>, double>> rows;
  for (const auto& [key, rev] : volume) {
    rows.push_back({{n.strings("N_NAME").GetValue(std::get<0>(key)),
                     n.strings("N_NAME").GetValue(std::get<1>(key)),
                     std::get<2>(key)},
                    rev});
  }
  std::sort(rows.begin(), rows.end());
  for (const auto& [key, rev] : rows) {
    result.AddRow({std::get<0>(key), std::get<1>(key), Cell(std::get<2>(key)),
                   Cell(rev)});
  }
  return result;
}

// Q8: national market share. BRAZIL, AMERICA, ECONOMY ANODIZED STEEL.
QueryResult Q8(const TpchDatabase& db) {
  const Table& l = db.lineitem;
  const Table& o = db.orders;
  const Table& c = db.customer;
  const Table& s = db.supplier;
  const Table& n = db.nation;
  const Table& p = db.part;

  const IdRange steel = EqIds(p.strings("P_TYPE"), "ECONOMY ANODIZED STEEL");
  const IdRange brazil = EqIds(n.strings("N_NAME"), "BRAZIL");
  const IdIndex nation_by_name(n.strings("N_NAME"));
  const uint32_t brazil_row =
      brazil.empty() ? kNoMatch : nation_by_name.UniqueRow(brazil.begin);

  const IdRange america = EqIds(db.region.strings("R_NAME"), "AMERICA");
  std::string america_key;
  if (!america.empty()) {
    const IdIndex region_index(db.region.strings("R_NAME"));
    america_key = db.region.strings("R_REGIONKEY")
                      .GetValue(region_index.UniqueRow(america.begin));
  }
  const IdRange america_nk = EqIds(n.strings("N_REGIONKEY"), america_key);
  std::vector<bool> nation_in_america(n.num_rows(), false);
  for (uint64_t row = 0; row < n.num_rows(); ++row) {
    nation_in_america[row] =
        america_nk.Contains(n.strings("N_REGIONKEY").GetValueId(row));
  }

  const FkJoin l_to_o(l.strings("L_ORDERKEY"), o.strings("O_ORDERKEY"));
  const FkJoin l_to_s(l.strings("L_SUPPKEY"), s.strings("S_SUPPKEY"));
  const FkJoin l_to_p(l.strings("L_PARTKEY"), p.strings("P_PARTKEY"));
  const FkJoin o_to_c(o.strings("O_CUSTKEY"), c.strings("C_CUSTKEY"));
  const FkJoin s_to_n(s.strings("S_NATIONKEY"), n.strings("N_NATIONKEY"));
  const FkJoin c_to_n(c.strings("C_NATIONKEY"), n.strings("N_NATIONKEY"));

  const auto& orderdate = o.dates("O_ORDERDATE");
  const auto& price = l.doubles("L_EXTENDEDPRICE");
  const auto& disc = l.doubles("L_DISCOUNT");
  const int32_t lo = ParseDate("1995-01-01");
  const int32_t hi = ParseDate("1996-12-31");

  std::map<int, std::pair<double, double>> by_year;  // year -> (brazil, total)
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    const uint32_t p_row = l_to_p.Row(l.strings("L_PARTKEY"), row);
    if (p_row == kNoMatch ||
        !steel.Contains(p.strings("P_TYPE").GetValueId(p_row))) {
      continue;
    }
    const uint32_t o_row = l_to_o.Row(l.strings("L_ORDERKEY"), row);
    if (o_row == kNoMatch || orderdate[o_row] < lo || orderdate[o_row] > hi) {
      continue;
    }
    const uint32_t c_row = o_to_c.Row(o.strings("O_CUSTKEY"), o_row);
    if (c_row == kNoMatch) continue;
    const uint32_t cn = c_to_n.Row(c.strings("C_NATIONKEY"), c_row);
    if (cn == kNoMatch || !nation_in_america[cn]) continue;
    const uint32_t s_row = l_to_s.Row(l.strings("L_SUPPKEY"), row);
    if (s_row == kNoMatch) continue;
    const uint32_t sn = s_to_n.Row(s.strings("S_NATIONKEY"), s_row);
    const double volume = price[row] * (1 - disc[row]);
    auto& [brazil_vol, total] = by_year[YearOf(orderdate[o_row])];
    total += volume;
    if (sn == brazil_row) brazil_vol += volume;
  }

  QueryResult result;
  result.column_names = {"o_year", "mkt_share"};
  for (const auto& [year, vols] : by_year) {
    result.AddRow(
        {Cell(year), Cell(vols.second > 0 ? vols.first / vols.second : 0.0)});
  }
  return result;
}

// Q9: product type profit measure. Parts LIKE '%green%'.
QueryResult Q9(const TpchDatabase& db) {
  const Table& l = db.lineitem;
  const Table& o = db.orders;
  const Table& s = db.supplier;
  const Table& n = db.nation;
  const Table& p = db.part;
  const Table& ps = db.partsupp;

  const std::vector<bool> green = ContainsIds(p.strings("P_NAME"), "green");

  const FkJoin l_to_o(l.strings("L_ORDERKEY"), o.strings("O_ORDERKEY"));
  const FkJoin l_to_s(l.strings("L_SUPPKEY"), s.strings("S_SUPPKEY"));
  const FkJoin l_to_p(l.strings("L_PARTKEY"), p.strings("P_PARTKEY"));
  const FkJoin s_to_n(s.strings("S_NATIONKEY"), n.strings("N_NATIONKEY"));

  // (ps part id, ps supp id) -> partsupp row, with lineitem keys mapped into
  // partsupp's dictionaries.
  const std::vector<uint32_t> l_part_to_ps =
      MapDictionary(l.strings("L_PARTKEY"), ps.strings("PS_PARTKEY"));
  const std::vector<uint32_t> l_supp_to_ps =
      MapDictionary(l.strings("L_SUPPKEY"), ps.strings("PS_SUPPKEY"));
  std::unordered_map<uint64_t, uint32_t> ps_row_by_keys;
  ps_row_by_keys.reserve(ps.num_rows());
  for (uint64_t row = 0; row < ps.num_rows(); ++row) {
    const uint64_t key =
        (static_cast<uint64_t>(ps.strings("PS_PARTKEY").GetValueId(row)) << 32) |
        ps.strings("PS_SUPPKEY").GetValueId(row);
    ps_row_by_keys.emplace(key, static_cast<uint32_t>(row));
  }

  const auto& orderdate = o.dates("O_ORDERDATE");
  const auto& price = l.doubles("L_EXTENDEDPRICE");
  const auto& disc = l.doubles("L_DISCOUNT");
  const auto& qty = l.doubles("L_QUANTITY");
  const auto& supplycost = ps.doubles("PS_SUPPLYCOST");

  std::map<std::pair<uint32_t, int>, double> profit;  // (nation row, year)
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    const uint32_t p_row = l_to_p.Row(l.strings("L_PARTKEY"), row);
    if (p_row == kNoMatch || !green[p.strings("P_NAME").GetValueId(p_row)]) {
      continue;
    }
    const uint32_t ps_part = l_part_to_ps[l.strings("L_PARTKEY").GetValueId(row)];
    const uint32_t ps_supp = l_supp_to_ps[l.strings("L_SUPPKEY").GetValueId(row)];
    if (ps_part == kNoMatch || ps_supp == kNoMatch) continue;
    const auto it = ps_row_by_keys.find((static_cast<uint64_t>(ps_part) << 32) |
                                        ps_supp);
    if (it == ps_row_by_keys.end()) continue;
    const uint32_t s_row = l_to_s.Row(l.strings("L_SUPPKEY"), row);
    const uint32_t o_row = l_to_o.Row(l.strings("L_ORDERKEY"), row);
    if (s_row == kNoMatch || o_row == kNoMatch) continue;
    const uint32_t n_row = s_to_n.Row(s.strings("S_NATIONKEY"), s_row);
    if (n_row == kNoMatch) continue;
    const double amount =
        price[row] * (1 - disc[row]) - supplycost[it->second] * qty[row];
    profit[{n_row, YearOf(orderdate[o_row])}] += amount;
  }

  // Order by nation name asc, year desc.
  std::vector<std::tuple<std::string, int, double>> rows;
  for (const auto& [key, amount] : profit) {
    rows.push_back(
        {n.strings("N_NAME").GetValue(key.first), key.second, amount});
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
    return std::get<1>(a) > std::get<1>(b);
  });

  QueryResult result;
  result.column_names = {"nation", "o_year", "sum_profit"};
  for (const auto& [nation, year, amount] : rows) {
    result.AddRow({nation, Cell(year), Cell(amount)});
  }
  return result;
}

// Q10: returned item reporting. Quarter starting 1993-10-01.
QueryResult Q10(const TpchDatabase& db) {
  const Table& l = db.lineitem;
  const Table& o = db.orders;
  const Table& c = db.customer;
  const Table& n = db.nation;
  const int32_t lo = ParseDate("1993-10-01");
  const int32_t hi = AddMonths(lo, 3);

  const IdRange returned = EqIds(l.strings("L_RETURNFLAG"), "R");
  const FkJoin l_to_o(l.strings("L_ORDERKEY"), o.strings("O_ORDERKEY"));
  const FkJoin o_to_c(o.strings("O_CUSTKEY"), c.strings("C_CUSTKEY"));
  const FkJoin c_to_n(c.strings("C_NATIONKEY"), n.strings("N_NATIONKEY"));

  const auto& orderdate = o.dates("O_ORDERDATE");
  const auto& price = l.doubles("L_EXTENDEDPRICE");
  const auto& disc = l.doubles("L_DISCOUNT");
  std::unordered_map<uint32_t, double> revenue;  // customer row
  for (uint64_t row = 0; row < l.num_rows(); ++row) {
    if (!returned.Contains(l.strings("L_RETURNFLAG").GetValueId(row))) continue;
    const uint32_t o_row = l_to_o.Row(l.strings("L_ORDERKEY"), row);
    if (o_row == kNoMatch || orderdate[o_row] < lo || orderdate[o_row] >= hi) {
      continue;
    }
    const uint32_t c_row = o_to_c.Row(o.strings("O_CUSTKEY"), o_row);
    if (c_row == kNoMatch) continue;
    revenue[c_row] += price[row] * (1 - disc[row]);
  }

  std::vector<std::pair<uint32_t, double>> top(revenue.begin(), revenue.end());
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (top.size() > 20) top.resize(20);

  QueryResult result;
  result.column_names = {"c_custkey", "c_name",   "revenue", "c_acctbal",
                         "n_name",    "c_address", "c_phone", "c_comment"};
  const auto& acctbal = c.doubles("C_ACCTBAL");
  for (const auto& [c_row, rev] : top) {
    const uint32_t n_row = c_to_n.Row(c.strings("C_NATIONKEY"), c_row);
    result.AddRow({c.strings("C_CUSTKEY").GetValue(c_row),
                   c.strings("C_NAME").GetValue(c_row), Cell(rev),
                   Cell(acctbal[c_row]),
                   n_row == kNoMatch ? "" : n.strings("N_NAME").GetValue(n_row),
                   c.strings("C_ADDRESS").GetValue(c_row),
                   c.strings("C_PHONE").GetValue(c_row),
                   c.strings("C_COMMENT").GetValue(c_row)});
  }
  return result;
}

// Q11: important stock identification. GERMANY, scaled fraction.
QueryResult Q11(const TpchDatabase& db) {
  const Table& ps = db.partsupp;
  const Table& s = db.supplier;
  const Table& n = db.nation;

  const IdRange germany = EqIds(n.strings("N_NAME"), "GERMANY");
  const IdIndex nation_by_name(n.strings("N_NAME"));
  const uint32_t germany_row =
      germany.empty() ? kNoMatch : nation_by_name.UniqueRow(germany.begin);

  const FkJoin ps_to_s(ps.strings("PS_SUPPKEY"), s.strings("S_SUPPKEY"));
  const FkJoin s_to_n(s.strings("S_NATIONKEY"), n.strings("N_NATIONKEY"));

  const auto& cost = ps.doubles("PS_SUPPLYCOST");
  const auto& avail = ps.int64s("PS_AVAILQTY");
  std::unordered_map<uint32_t, double> value;  // ps part value id -> value
  double total = 0;
  for (uint64_t row = 0; row < ps.num_rows(); ++row) {
    const uint32_t s_row = ps_to_s.Row(ps.strings("PS_SUPPKEY"), row);
    if (s_row == kNoMatch) continue;
    if (s_to_n.Row(s.strings("S_NATIONKEY"), s_row) != germany_row) continue;
    const double v = cost[row] * static_cast<double>(avail[row]);
    value[ps.strings("PS_PARTKEY").GetValueId(row)] += v;
    total += v;
  }
  // The spec's fraction is 0.0001 at SF 1 and scales inversely with SF;
  // estimate SF from the supplier count (10000 per unit).
  const double sf = static_cast<double>(s.num_rows()) / 10000.0;
  const double threshold = total * 0.0001 / std::max(sf, 1e-9);

  std::vector<std::pair<uint32_t, double>> rows;
  for (const auto& [part_id, v] : value) {
    if (v > threshold) rows.push_back({part_id, v});
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  QueryResult result;
  result.column_names = {"ps_partkey", "value"};
  for (const auto& [part_id, v] : rows) {
    result.AddRow({ps.strings("PS_PARTKEY").ExtractId(part_id), Cell(v)});
  }
  return result;
}

}  // namespace tpch_internal
}  // namespace adict
