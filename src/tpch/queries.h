// The 22 TPC-H queries as hand-built plans over the column-store engine.
//
// Every query follows the execution style of a dictionary-encoded column
// store: predicates on string columns become value-ID ranges (locate),
// LIKE predicates scan the dictionary once (extract per entry), joins map
// dictionaries onto each other and then work on integer IDs, and output
// strings are materialized late. The dictionary usage this generates is the
// workload trace the compression manager consumes (paper §6).
#ifndef ADICT_TPCH_QUERIES_H_
#define ADICT_TPCH_QUERIES_H_

#include "engine/result.h"
#include "tpch/dbgen.h"

namespace adict {

inline constexpr int kNumTpchQueries = 22;

/// Runs TPC-H query `query` (1-based, standard substitution parameters).
QueryResult RunTpchQuery(const TpchDatabase& db, int query);

}  // namespace adict

#endif  // ADICT_TPCH_QUERIES_H_
