// Join primitives for domain-encoded columns.
//
// Equi-joins on string columns never compare strings row by row: the probe
// side's dictionary is mapped onto the build side's dictionary once
// (extract + locate per distinct value), after which the join works purely
// on integer IDs. An IdIndex provides the id -> rows lookup on the build
// side (counting-sort layout, dense in the dictionary's ID space).
#ifndef ADICT_ENGINE_JOIN_H_
#define ADICT_ENGINE_JOIN_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "store/string_column.h"

namespace adict {

/// Marker for "probe value not present in build dictionary".
inline constexpr uint32_t kNoMatch = std::numeric_limits<uint32_t>::max();

/// For every value ID of `from`'s dictionary, the ID of the same string in
/// `to`'s dictionary, or kNoMatch. Costs one extract on `from` and one
/// locate on `to` per distinct value.
std::vector<uint32_t> MapDictionary(const StringColumn& from,
                                    const StringColumn& to);

/// id -> rows index over a domain-encoded column (build side of a join).
class IdIndex {
 public:
  explicit IdIndex(const StringColumn& column);

  /// Rows whose value has the given ID.
  std::span<const uint32_t> Rows(uint32_t id) const {
    if (id >= num_ids_) return {};
    return std::span<const uint32_t>(rows_.data() + offsets_[id],
                                     offsets_[id + 1] - offsets_[id]);
  }

  /// The single row for a unique (key) column; kNoMatch if absent.
  uint32_t UniqueRow(uint32_t id) const {
    const std::span<const uint32_t> rows = Rows(id);
    return rows.empty() ? kNoMatch : rows[0];
  }

 private:
  uint32_t num_ids_;
  std::vector<uint32_t> offsets_;  // num_ids_ + 1
  std::vector<uint32_t> rows_;
};

}  // namespace adict

#endif  // ADICT_ENGINE_JOIN_H_
