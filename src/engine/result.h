// Tabular query results: ordered rows of formatted cells, convenient for
// verification and for printing paper-style output.
#ifndef ADICT_ENGINE_RESULT_H_
#define ADICT_ENGINE_RESULT_H_

#include <cstdio>
#include <string>
#include <vector>

namespace adict {

struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<std::vector<std::string>> rows;

  /// Appends one row from heterogeneous cells.
  void AddRow(std::vector<std::string> cells) { rows.push_back(std::move(cells)); }

  std::string ToString(size_t max_rows = 10) const;
};

/// Formats a numeric cell with two decimals (money/aggregate style).
inline std::string Cell(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  return buf;
}
inline std::string Cell(int64_t value) { return std::to_string(value); }
inline std::string Cell(uint64_t value) { return std::to_string(value); }
inline std::string Cell(int value) { return std::to_string(value); }
inline std::string Cell(std::string value) { return value; }

}  // namespace adict

#endif  // ADICT_ENGINE_RESULT_H_
