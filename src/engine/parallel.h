// Morsel-parallel drivers for the scan/selection/join primitives.
//
// The execution model is morsel-driven parallelism (Hyrise/HyPer style): a
// column is split into fixed-size morsels, worker lanes of the process-wide
// pool (util/thread_pool.h) drain a shared morsel cursor, and per-morsel
// results are combined **in morsel order** — which makes every driver's
// output bit-identical to the serial implementation at any thread count,
// including 1. Morsel boundaries depend only on the row count and the
// grain, never on the number of threads.
//
// Usage accounting is per scan, not per morsel: predicates are reduced to
// value-ID ranges once by the caller (one or two Locate calls), and the
// morsels then compare bit-packed IDs without touching the dictionary, so
// a parallel scan traces exactly the dictionary accesses the serial scan
// does. Dictionary-scan drivers (ParallelContainsAllIds) split the entry
// range, so their per-morsel extract counts sum to the serial count.
// docs/parallelism.md states the full contract.
//
// The serial entry points in scan.h / predicates.h / join.h dispatch here
// automatically when the process-wide pool is parallel (ADICT_THREADS > 1)
// and the input is large enough to cover more than one morsel; callers that
// need an explicit pool (tests, benchmarks) pass one.
#ifndef ADICT_ENGINE_PARALLEL_H_
#define ADICT_ENGINE_PARALLEL_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "engine/predicates.h"
#include "store/string_column.h"
#include "util/thread_pool.h"

namespace adict {

/// Rows per morsel for column-vector scans. Large enough that the per-morsel
/// dispatch overhead (one relaxed fetch_add on the cursor) is noise against
/// ~64K bit-unpack + compare operations, small enough that a TPC-H lineitem
/// column at SF 0.1 (~600K rows) splits into ~10 morsels — work for every
/// lane of an 8-way pool with head-room for stealing.
inline constexpr uint64_t kMorselRows = 64 * 1024;

/// Entries per morsel for dictionary scans and dictionary mapping. Extract
/// and locate cost tens to hundreds of nanoseconds per entry — two orders
/// of magnitude more than a vector scan touch — so morsels are smaller to
/// keep lanes balanced on skewed dictionaries.
inline constexpr uint64_t kMorselDictEntries = 8 * 1024;

/// The pool the drivers use: `pool` if given, else the process-wide Pool().
ThreadPool& EffectivePool(ThreadPool* pool);

/// True when `items` split at `grain` into more than one morsel AND the
/// pool has more than one lane — the dispatch test of the serial entry
/// points. With ADICT_THREADS=1 this is always false.
bool ShouldParallelize(uint64_t items, uint64_t grain,
                       ThreadPool* pool = nullptr);

/// Parallel SelectRows (ID range). Identical output to the serial version.
std::vector<uint32_t> ParallelSelectRows(const StringColumn& column,
                                         const IdRange& range,
                                         ThreadPool* pool = nullptr);

/// Parallel SelectRows (per-ID flags). Identical output.
std::vector<uint32_t> ParallelSelectRows(const StringColumn& column,
                                         const std::vector<bool>& id_flags,
                                         ThreadPool* pool = nullptr);

/// Parallel RefineRows. Identical output.
std::vector<uint32_t> ParallelRefineRows(const StringColumn& column,
                                         std::span<const uint32_t> rows,
                                         const IdRange& range,
                                         ThreadPool* pool = nullptr);

/// Parallel CountRows. Per-morsel counts are summed in morsel order.
uint64_t ParallelCountRows(const StringColumn& column, const IdRange& range,
                           ThreadPool* pool = nullptr);

/// Parallel ContainsAllIds: the dictionary entry range is split into
/// morsels, each decoded independently (block formats decode each block in
/// exactly one morsel), flags spliced back in morsel order.
std::vector<bool> ParallelContainsAllIds(
    const StringColumn& column, std::span<const std::string_view> needles,
    ThreadPool* pool = nullptr);

/// Parallel MapDictionary (join build side): each morsel of `from`'s ID
/// space extracts and locates its entries, writing disjoint slots of the
/// mapping. Extract/locate usage counts equal the serial pass.
std::vector<uint32_t> ParallelMapDictionary(const StringColumn& from,
                                            const StringColumn& to,
                                            ThreadPool* pool = nullptr);

/// Parallel per-ID row counting (the first pass of IdIndex construction):
/// morsels accumulate into shared atomic slots. The counts are exact; only
/// the accumulation order differs from the serial pass.
std::vector<uint32_t> ParallelCountIds(const StringColumn& column,
                                       ThreadPool* pool = nullptr);

}  // namespace adict

#endif  // ADICT_ENGINE_PARALLEL_H_
