// Dictionary-aware predicate evaluation.
//
// Because dictionaries are order-preserving, comparison predicates on string
// columns translate into value-ID ranges with one or two locate calls; the
// scan itself then works on the bit-packed IDs without touching the
// dictionary (the "process on the codes" property of domain encoding).
// Substring predicates (LIKE '%x%') cannot use the order and instead
// extract every dictionary entry once, marking qualifying IDs.
#ifndef ADICT_ENGINE_PREDICATES_H_
#define ADICT_ENGINE_PREDICATES_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "store/string_column.h"

namespace adict {

/// Half-open range of qualifying value IDs [begin, end).
struct IdRange {
  uint32_t begin = 0;
  uint32_t end = 0;

  bool Contains(uint32_t id) const { return id >= begin && id < end; }
  bool empty() const { return begin >= end; }
};

/// column = value. Empty range if the value is absent.
IdRange EqIds(const StringColumn& column, std::string_view value);

/// column >= value (set `inclusive` false for >).
IdRange GreaterIds(const StringColumn& column, std::string_view value,
                   bool inclusive = true);

/// column <= value (set `inclusive` false for <).
IdRange LessIds(const StringColumn& column, std::string_view value,
                bool inclusive = true);

/// lo <= column <= hi (both inclusive).
IdRange BetweenIds(const StringColumn& column, std::string_view lo,
                   std::string_view hi);

/// column LIKE 'prefix%'.
IdRange PrefixIds(const StringColumn& column, std::string_view prefix);

/// Per-value-ID flags for column LIKE '%needle%' (one extract per entry).
std::vector<bool> ContainsIds(const StringColumn& column,
                              std::string_view needle);

/// Per-value-ID flags for LIKE '%a%b%' (needles in order, non-overlapping).
std::vector<bool> ContainsAllIds(const StringColumn& column,
                                 std::span<const std::string_view> needles);

/// Per-value-ID flags for column IN (values...).
std::vector<bool> InIds(const StringColumn& column,
                        std::span<const std::string_view> values);

}  // namespace adict

#endif  // ADICT_ENGINE_PREDICATES_H_
