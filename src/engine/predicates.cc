#include "engine/predicates.h"

#include "engine/parallel.h"

namespace adict {

IdRange EqIds(const StringColumn& column, std::string_view value) {
  const LocateResult r = column.Locate(value);
  return r.found ? IdRange{r.id, r.id + 1} : IdRange{};
}

IdRange GreaterIds(const StringColumn& column, std::string_view value,
                   bool inclusive) {
  const LocateResult r = column.Locate(value);
  const uint32_t begin = (r.found && !inclusive) ? r.id + 1 : r.id;
  return {begin, column.num_distinct()};
}

IdRange LessIds(const StringColumn& column, std::string_view value,
                bool inclusive) {
  const LocateResult r = column.Locate(value);
  const uint32_t end = (r.found && inclusive) ? r.id + 1 : r.id;
  return {0, end};
}

IdRange BetweenIds(const StringColumn& column, std::string_view lo,
                   std::string_view hi) {
  const IdRange ge = GreaterIds(column, lo);
  const IdRange le = LessIds(column, hi);
  return {ge.begin, le.end};
}

IdRange PrefixIds(const StringColumn& column, std::string_view prefix) {
  const LocateResult lo = column.Locate(prefix);
  // The end of the prefix run: the first string >= prefix with its last
  // character incremented. A prefix ending in 0xff would need widening; the
  // workloads here never produce one.
  std::string upper(prefix);
  while (!upper.empty() && static_cast<unsigned char>(upper.back()) == 0xff) {
    upper.pop_back();
  }
  if (upper.empty()) return {lo.id, column.num_distinct()};
  upper.back() = static_cast<char>(static_cast<unsigned char>(upper.back()) + 1);
  const LocateResult hi = column.Locate(upper);
  return {lo.id, hi.id};
}

std::vector<bool> ContainsIds(const StringColumn& column,
                              std::string_view needle) {
  const std::string_view needles[] = {needle};
  return ContainsAllIds(column, needles);
}

std::vector<bool> ContainsAllIds(const StringColumn& column,
                                 std::span<const std::string_view> needles) {
  if (ShouldParallelize(column.num_distinct(), kMorselDictEntries)) {
    return ParallelContainsAllIds(column, needles);
  }
  std::vector<bool> flags(column.num_distinct(), false);
  // Sequential dictionary scan: block-based formats decode each block once.
  column.ScanDictionary(
      0, column.num_distinct(), [&flags, needles](uint32_t id,
                                                  std::string_view value) {
        size_t pos = 0;
        for (std::string_view needle : needles) {
          pos = value.find(needle, pos);
          if (pos == std::string_view::npos) return;
          pos += needle.size();
        }
        flags[id] = true;
      });
  return flags;
}

std::vector<bool> InIds(const StringColumn& column,
                        std::span<const std::string_view> values) {
  std::vector<bool> flags(column.num_distinct(), false);
  for (std::string_view value : values) {
    const LocateResult r = column.Locate(value);
    if (r.found) flags[r.id] = true;
  }
  return flags;
}

}  // namespace adict
