#include "engine/join.h"

#include "engine/parallel.h"

namespace adict {

std::vector<uint32_t> MapDictionary(const StringColumn& from,
                                    const StringColumn& to) {
  if (ShouldParallelize(from.num_distinct(), kMorselDictEntries)) {
    return ParallelMapDictionary(from, to);
  }
  std::vector<uint32_t> mapping(from.num_distinct(), kNoMatch);
  for (uint32_t id = 0; id < from.num_distinct(); ++id) {
    const LocateResult r = to.Locate(from.ExtractId(id));
    if (r.found) mapping[id] = r.id;
  }
  return mapping;
}

IdIndex::IdIndex(const StringColumn& column)
    : num_ids_(column.num_distinct()) {
  const uint64_t n = column.num_rows();
  offsets_.assign(num_ids_ + 1, 0);
  if (ShouldParallelize(n, kMorselRows)) {
    // Parallel counting pass; the per-ID counts are exact regardless of
    // morsel interleaving (relaxed increments commute).
    const std::vector<uint32_t> counts = ParallelCountIds(column);
    for (uint32_t id = 0; id < num_ids_; ++id) {
      offsets_[id + 1] = counts[id];
    }
  } else {
    for (uint64_t row = 0; row < n; ++row) {
      ++offsets_[column.GetValueId(row) + 1];
    }
  }
  for (uint32_t id = 0; id < num_ids_; ++id) {
    offsets_[id + 1] += offsets_[id];
  }
  rows_.resize(n);
  // The scatter stays serial: rows must land in ascending row order within
  // each ID bucket, which the shared cursor vector only guarantees when
  // rows are visited in order by one thread.
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (uint64_t row = 0; row < n; ++row) {
    rows_[cursor[column.GetValueId(row)]++] = static_cast<uint32_t>(row);
  }
}

}  // namespace adict
