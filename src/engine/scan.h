// Selection-vector scans over domain-encoded columns.
//
// Once a predicate is reduced to qualifying value IDs (engine/predicates.h),
// the scan itself never touches the dictionary: it compares bit-packed codes
// — the "process on the codes directly" property that makes domain encoding
// fast (paper §1).
#ifndef ADICT_ENGINE_SCAN_H_
#define ADICT_ENGINE_SCAN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "engine/predicates.h"
#include "store/string_column.h"

namespace adict {

/// Rows whose value ID lies in `range`, ascending.
std::vector<uint32_t> SelectRows(const StringColumn& column,
                                 const IdRange& range);

/// Rows whose value ID is flagged in `id_flags` (size = num_distinct).
std::vector<uint32_t> SelectRows(const StringColumn& column,
                                 const std::vector<bool>& id_flags);

/// Intersection of an existing selection with an ID range.
std::vector<uint32_t> RefineRows(const StringColumn& column,
                                 const std::vector<uint32_t>& rows,
                                 const IdRange& range);

/// Number of rows whose value ID lies in `range` (no materialization).
uint64_t CountRows(const StringColumn& column, const IdRange& range);

// Morsel cores: the per-range loops behind the entry points above, shared
// with the morsel-parallel drivers (engine/parallel.h). Each appends (or
// counts) the qualifying rows of [row_begin, row_end) only, touching no
// state outside `out` — which is what lets morsels run concurrently and
// still concatenate into exactly the serial result (docs/parallelism.md).

/// Appends rows of [row_begin, row_end) whose value ID lies in `range`.
void SelectRowsInto(const StringColumn& column, const IdRange& range,
                    uint64_t row_begin, uint64_t row_end,
                    std::vector<uint32_t>* out);

/// Appends rows of [row_begin, row_end) whose value ID is flagged.
void SelectRowsInto(const StringColumn& column,
                    const std::vector<bool>& id_flags, uint64_t row_begin,
                    uint64_t row_end, std::vector<uint32_t>* out);

/// Appends the subset of `rows` (one morsel of an existing selection)
/// whose value ID lies in `range`.
void RefineRowsInto(const StringColumn& column,
                    std::span<const uint32_t> rows, const IdRange& range,
                    std::vector<uint32_t>* out);

/// Number of rows in [row_begin, row_end) whose value ID lies in `range`.
uint64_t CountRowsIn(const StringColumn& column, const IdRange& range,
                     uint64_t row_begin, uint64_t row_end);

}  // namespace adict

#endif  // ADICT_ENGINE_SCAN_H_
