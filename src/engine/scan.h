// Selection-vector scans over domain-encoded columns.
//
// Once a predicate is reduced to qualifying value IDs (engine/predicates.h),
// the scan itself never touches the dictionary: it compares bit-packed codes
// — the "process on the codes directly" property that makes domain encoding
// fast (paper §1).
#ifndef ADICT_ENGINE_SCAN_H_
#define ADICT_ENGINE_SCAN_H_

#include <cstdint>
#include <vector>

#include "engine/predicates.h"
#include "store/string_column.h"

namespace adict {

/// Rows whose value ID lies in `range`, ascending.
std::vector<uint32_t> SelectRows(const StringColumn& column,
                                 const IdRange& range);

/// Rows whose value ID is flagged in `id_flags` (size = num_distinct).
std::vector<uint32_t> SelectRows(const StringColumn& column,
                                 const std::vector<bool>& id_flags);

/// Intersection of an existing selection with an ID range.
std::vector<uint32_t> RefineRows(const StringColumn& column,
                                 const std::vector<uint32_t>& rows,
                                 const IdRange& range);

/// Number of rows whose value ID lies in `range` (no materialization).
uint64_t CountRows(const StringColumn& column, const IdRange& range);

}  // namespace adict

#endif  // ADICT_ENGINE_SCAN_H_
