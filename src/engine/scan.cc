#include "engine/scan.h"

#include "obs/trace.h"

namespace adict {

std::vector<uint32_t> SelectRows(const StringColumn& column,
                                 const IdRange& range) {
  ADICT_TRACE_SPAN("engine.select_rows");
  std::vector<uint32_t> rows;
  if (range.empty()) return rows;
  const uint64_t n = column.num_rows();
  for (uint64_t row = 0; row < n; ++row) {
    if (range.Contains(column.GetValueId(row))) {
      rows.push_back(static_cast<uint32_t>(row));
    }
  }
  return rows;
}

std::vector<uint32_t> SelectRows(const StringColumn& column,
                                 const std::vector<bool>& id_flags) {
  ADICT_TRACE_SPAN("engine.select_rows");
  std::vector<uint32_t> rows;
  const uint64_t n = column.num_rows();
  for (uint64_t row = 0; row < n; ++row) {
    if (id_flags[column.GetValueId(row)]) {
      rows.push_back(static_cast<uint32_t>(row));
    }
  }
  return rows;
}

std::vector<uint32_t> RefineRows(const StringColumn& column,
                                 const std::vector<uint32_t>& rows,
                                 const IdRange& range) {
  ADICT_TRACE_SPAN("engine.refine_rows");
  std::vector<uint32_t> refined;
  if (range.empty()) return refined;
  for (uint32_t row : rows) {
    if (range.Contains(column.GetValueId(row))) {
      refined.push_back(row);
    }
  }
  return refined;
}

uint64_t CountRows(const StringColumn& column, const IdRange& range) {
  if (range.empty()) return 0;
  uint64_t count = 0;
  const uint64_t n = column.num_rows();
  for (uint64_t row = 0; row < n; ++row) {
    count += range.Contains(column.GetValueId(row));
  }
  return count;
}

}  // namespace adict
