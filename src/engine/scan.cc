#include "engine/scan.h"

#include "engine/parallel.h"
#include "obs/trace.h"

namespace adict {

// -- Morsel cores -------------------------------------------------------------

void SelectRowsInto(const StringColumn& column, const IdRange& range,
                    uint64_t row_begin, uint64_t row_end,
                    std::vector<uint32_t>* out) {
  for (uint64_t row = row_begin; row < row_end; ++row) {
    if (range.Contains(column.GetValueId(row))) {
      out->push_back(static_cast<uint32_t>(row));
    }
  }
}

void SelectRowsInto(const StringColumn& column,
                    const std::vector<bool>& id_flags, uint64_t row_begin,
                    uint64_t row_end, std::vector<uint32_t>* out) {
  for (uint64_t row = row_begin; row < row_end; ++row) {
    if (id_flags[column.GetValueId(row)]) {
      out->push_back(static_cast<uint32_t>(row));
    }
  }
}

void RefineRowsInto(const StringColumn& column,
                    std::span<const uint32_t> rows, const IdRange& range,
                    std::vector<uint32_t>* out) {
  for (uint32_t row : rows) {
    if (range.Contains(column.GetValueId(row))) {
      out->push_back(row);
    }
  }
}

uint64_t CountRowsIn(const StringColumn& column, const IdRange& range,
                     uint64_t row_begin, uint64_t row_end) {
  uint64_t count = 0;
  for (uint64_t row = row_begin; row < row_end; ++row) {
    count += range.Contains(column.GetValueId(row));
  }
  return count;
}

// -- Entry points -------------------------------------------------------------
//
// Each entry point hands large columns to the morsel-parallel driver when
// the process-wide pool is parallel; the serial path and the parallel path
// produce identical row vectors (morsels concatenate in morsel order).

std::vector<uint32_t> SelectRows(const StringColumn& column,
                                 const IdRange& range) {
  if (range.empty()) return {};
  if (ShouldParallelize(column.num_rows(), kMorselRows)) {
    return ParallelSelectRows(column, range);
  }
  ADICT_TRACE_SPAN("engine.select_rows");
  std::vector<uint32_t> rows;
  SelectRowsInto(column, range, 0, column.num_rows(), &rows);
  return rows;
}

std::vector<uint32_t> SelectRows(const StringColumn& column,
                                 const std::vector<bool>& id_flags) {
  if (ShouldParallelize(column.num_rows(), kMorselRows)) {
    return ParallelSelectRows(column, id_flags);
  }
  ADICT_TRACE_SPAN("engine.select_rows");
  std::vector<uint32_t> rows;
  SelectRowsInto(column, id_flags, 0, column.num_rows(), &rows);
  return rows;
}

std::vector<uint32_t> RefineRows(const StringColumn& column,
                                 const std::vector<uint32_t>& rows,
                                 const IdRange& range) {
  if (range.empty()) return {};
  if (ShouldParallelize(rows.size(), kMorselRows)) {
    return ParallelRefineRows(column, rows, range);
  }
  ADICT_TRACE_SPAN("engine.refine_rows");
  std::vector<uint32_t> refined;
  RefineRowsInto(column, rows, range, &refined);
  return refined;
}

uint64_t CountRows(const StringColumn& column, const IdRange& range) {
  if (range.empty()) return 0;
  if (ShouldParallelize(column.num_rows(), kMorselRows)) {
    return ParallelCountRows(column, range);
  }
  return CountRowsIn(column, range, 0, column.num_rows());
}

}  // namespace adict
