#include "engine/result.h"

namespace adict {

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < column_names.size(); ++i) {
    if (i) out += " | ";
    out += column_names[i];
  }
  out += "\n";
  const size_t shown = rows.size() < max_rows ? rows.size() : max_rows;
  for (size_t r = 0; r < shown; ++r) {
    for (size_t i = 0; i < rows[r].size(); ++i) {
      if (i) out += " | ";
      out += rows[r][i];
    }
    out += "\n";
  }
  if (shown < rows.size()) {
    out += "... (" + std::to_string(rows.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace adict
