#include "engine/parallel.h"

#include <atomic>
#include <memory>

#include "engine/join.h"
#include "engine/scan.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "obs/workload_profiler.h"

namespace adict {

namespace {

// Driver span names, passed to ScopedSpan through a variable (one shared
// driver opens the span), so the lint cannot see them at a construction
// site and they are registered here instead.
// adict-lint: span-names-begin
//   "engine.parallel.select", "engine.parallel.refine",
//   "engine.parallel.count", "engine.parallel.contains",
//   "engine.parallel.map_dict", "engine.parallel.count_ids"
// adict-lint: span-names-end

/// Per-scan pool/driver telemetry: one `engine.parallel.scans` tick per
/// driver invocation (the accounting unit — never per morsel), the morsel
/// count, and a mirror of the pool's counters into gauges. The pool itself
/// lives in util/, below obs/, so its stats are exported here, the lowest
/// layer that links obs (see docs/parallelism.md).
void RecordParallelScan(ThreadPool& pool, uint64_t num_morsels) {
  if (!obs::Enabled()) return;
  static obs::Counter* scans = obs::Metrics().GetCounter(
      "engine.parallel.scans", "scans",
      "parallel driver invocations (the per-scan accounting unit)");
  static obs::Counter* morsels = obs::Metrics().GetCounter(
      "engine.parallel.morsels", "morsels",
      "morsels dispatched by the parallel drivers");
  static obs::Gauge* threads = obs::Metrics().GetGauge(
      "pool.threads", "threads",
      "parallelism of the pool serving the most recent parallel scan");
  static obs::Gauge* steals = obs::Metrics().GetGauge(
      "pool.steals", "tasks",
      "cumulative tasks stolen from another worker's deque");
  static obs::Gauge* queue_depth = obs::Metrics().GetGauge(
      "pool.queue_depth", "tasks",
      "queued-but-unstarted pool tasks, sampled at scan admission");
  scans->Increment();
  morsels->Increment(num_morsels);
  threads->Set(static_cast<double>(pool.parallelism()));
  steals->Set(static_cast<double>(pool.steals()));
  queue_depth->Set(static_cast<double>(pool.queued()));
}

/// Shared driver: records the per-scan telemetry, opens the driver span,
/// and runs `fn` over morsels of [0, items).
template <typename Fn>
void RunMorsels(const char* span_name, ThreadPool& pool, uint64_t items,
                uint64_t grain, const Fn& fn) {
  obs::ScopedSpan span(span_name);
  RecordParallelScan(pool, ThreadPool::NumChunks(items, grain));
  pool.ParallelFor(0, items, grain, fn);
}

/// Bytes one vector-scanning driver touches when it visits `rows` rows:
/// the proportional share of the bit-packed column vector. Feeds the
/// per-scan kScan heat record the vector drivers make — they compare
/// packed IDs without touching the dictionary and would otherwise be
/// invisible to the workload profiler. The dictionary drivers (contains,
/// map_dict) make no driver-level record: their ScanDictionary / Locate /
/// ExtractId calls already record through the column.
uint64_t ScanBytes(const StringColumn& column, uint64_t rows) {
  return column.num_rows() == 0
             ? 0
             : column.VectorBytes() * rows / column.num_rows();
}

/// Concatenates per-morsel row vectors in morsel order: the step that makes
/// parallel output identical to the serial scan.
std::vector<uint32_t> ConcatInOrder(std::vector<std::vector<uint32_t>> parts) {
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  std::vector<uint32_t> out;
  out.reserve(total);
  for (const auto& part : parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace

ThreadPool& EffectivePool(ThreadPool* pool) {
  return pool != nullptr ? *pool : Pool();
}

bool ShouldParallelize(uint64_t items, uint64_t grain, ThreadPool* pool) {
  if (items <= grain) return false;  // one morsel: serial is strictly better
  return EffectivePool(pool).parallelism() > 1;
}

std::vector<uint32_t> ParallelSelectRows(const StringColumn& column,
                                         const IdRange& range,
                                         ThreadPool* pool) {
  if (range.empty()) return {};
  ThreadPool& p = EffectivePool(pool);
  const uint64_t n = column.num_rows();
  std::vector<std::vector<uint32_t>> parts(
      ThreadPool::NumChunks(n, kMorselRows));
  obs::ScopedColumnOp heat_op(n == 0 ? nullptr : column.heat(),
                              obs::ColumnOp::kScan, n);
  heat_op.AddBytes(ScanBytes(column, n));
  RunMorsels("engine.parallel.select", p, n, kMorselRows,
             [&](uint64_t begin, uint64_t end) {
               SelectRowsInto(column, range, begin, end,
                              &parts[begin / kMorselRows]);
             });
  return ConcatInOrder(std::move(parts));
}

std::vector<uint32_t> ParallelSelectRows(const StringColumn& column,
                                         const std::vector<bool>& id_flags,
                                         ThreadPool* pool) {
  ThreadPool& p = EffectivePool(pool);
  const uint64_t n = column.num_rows();
  std::vector<std::vector<uint32_t>> parts(
      ThreadPool::NumChunks(n, kMorselRows));
  obs::ScopedColumnOp heat_op(n == 0 ? nullptr : column.heat(),
                              obs::ColumnOp::kScan, n);
  heat_op.AddBytes(ScanBytes(column, n));
  RunMorsels("engine.parallel.select", p, n, kMorselRows,
             [&](uint64_t begin, uint64_t end) {
               SelectRowsInto(column, id_flags, begin, end,
                              &parts[begin / kMorselRows]);
             });
  return ConcatInOrder(std::move(parts));
}

std::vector<uint32_t> ParallelRefineRows(const StringColumn& column,
                                         std::span<const uint32_t> rows,
                                         const IdRange& range,
                                         ThreadPool* pool) {
  if (range.empty()) return {};
  ThreadPool& p = EffectivePool(pool);
  const uint64_t n = rows.size();
  std::vector<std::vector<uint32_t>> parts(
      ThreadPool::NumChunks(n, kMorselRows));
  obs::ScopedColumnOp heat_op(n == 0 ? nullptr : column.heat(),
                              obs::ColumnOp::kScan, n);
  heat_op.AddBytes(ScanBytes(column, n));
  RunMorsels("engine.parallel.refine", p, n, kMorselRows,
             [&](uint64_t begin, uint64_t end) {
               RefineRowsInto(column, rows.subspan(begin, end - begin), range,
                              &parts[begin / kMorselRows]);
             });
  return ConcatInOrder(std::move(parts));
}

uint64_t ParallelCountRows(const StringColumn& column, const IdRange& range,
                           ThreadPool* pool) {
  if (range.empty()) return 0;
  ThreadPool& p = EffectivePool(pool);
  const uint64_t n = column.num_rows();
  std::vector<uint64_t> partial(ThreadPool::NumChunks(n, kMorselRows), 0);
  obs::ScopedColumnOp heat_op(n == 0 ? nullptr : column.heat(),
                              obs::ColumnOp::kScan, n);
  heat_op.AddBytes(ScanBytes(column, n));
  RunMorsels("engine.parallel.count", p, n, kMorselRows,
             [&](uint64_t begin, uint64_t end) {
               partial[begin / kMorselRows] =
                   CountRowsIn(column, range, begin, end);
             });
  uint64_t count = 0;
  for (uint64_t c : partial) count += c;  // morsel order (integers: any order)
  return count;
}

std::vector<bool> ParallelContainsAllIds(
    const StringColumn& column, std::span<const std::string_view> needles,
    ThreadPool* pool) {
  ThreadPool& p = EffectivePool(pool);
  const uint64_t n = column.num_distinct();
  // Each morsel matches into its own local flag vector; morsels are spliced
  // serially afterwards because std::vector<bool> packs 64 flags per word —
  // concurrent writes to adjacent ids at a morsel boundary would race.
  std::vector<std::vector<bool>> parts(
      ThreadPool::NumChunks(n, kMorselDictEntries));
  RunMorsels(
      "engine.parallel.contains", p, n, kMorselDictEntries,
      [&](uint64_t begin, uint64_t end) {
        std::vector<bool>& local = parts[begin / kMorselDictEntries];
        local.assign(end - begin, false);
        column.ScanDictionary(
            static_cast<uint32_t>(begin), static_cast<uint32_t>(end - begin),
            [&local, needles, begin](uint32_t id, std::string_view value) {
              size_t pos = 0;
              for (std::string_view needle : needles) {
                pos = value.find(needle, pos);
                if (pos == std::string_view::npos) return;
                pos += needle.size();
              }
              local[id - begin] = true;
            });
      });
  std::vector<bool> flags;
  flags.reserve(n);
  for (const auto& part : parts) {
    flags.insert(flags.end(), part.begin(), part.end());
  }
  return flags;
}

std::vector<uint32_t> ParallelMapDictionary(const StringColumn& from,
                                            const StringColumn& to,
                                            ThreadPool* pool) {
  ThreadPool& p = EffectivePool(pool);
  const uint64_t n = from.num_distinct();
  // Morsels write disjoint uint32_t slots of the shared mapping: no two
  // morsels touch the same element, so no synchronization is needed.
  std::vector<uint32_t> mapping(n, kNoMatch);
  RunMorsels("engine.parallel.map_dict", p, n, kMorselDictEntries,
             [&](uint64_t begin, uint64_t end) {
               for (uint64_t id = begin; id < end; ++id) {
                 const LocateResult r =
                     to.Locate(from.ExtractId(static_cast<uint32_t>(id)));
                 if (r.found) mapping[id] = r.id;
               }
             });
  return mapping;
}

std::vector<uint32_t> ParallelCountIds(const StringColumn& column,
                                       ThreadPool* pool) {
  ThreadPool& p = EffectivePool(pool);
  const uint64_t n = column.num_rows();
  const uint32_t num_ids = column.num_distinct();
  // Shared atomic histogram: relaxed increments commute, so the final
  // counts are exact regardless of morsel interleaving.
  auto counts = std::make_unique<std::atomic<uint32_t>[]>(num_ids);
  for (uint32_t id = 0; id < num_ids; ++id) {
    counts[id].store(0, std::memory_order_relaxed);
  }
  obs::ScopedColumnOp heat_op(n == 0 ? nullptr : column.heat(),
                              obs::ColumnOp::kScan, n);
  heat_op.AddBytes(ScanBytes(column, n));
  RunMorsels("engine.parallel.count_ids", p, n, kMorselRows,
             [&](uint64_t begin, uint64_t end) {
               for (uint64_t row = begin; row < end; ++row) {
                 counts[column.GetValueId(row)].fetch_add(
                     1, std::memory_order_relaxed);
               }
             });
  std::vector<uint32_t> result(num_ids);
  for (uint32_t id = 0; id < num_ids; ++id) {
    result[id] = counts[id].load(std::memory_order_relaxed);
  }
  return result;
}

}  // namespace adict
