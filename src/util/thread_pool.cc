#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace adict {

namespace {

// Shared state of one ParallelFor call. Heap-allocated and shared with the
// drain tasks because a drain task may start (and immediately exit) after
// the call has already returned.
struct ForState {
  uint64_t begin = 0;
  uint64_t end = 0;
  uint64_t grain = 0;
  uint64_t num_chunks = 0;
  const std::function<void(uint64_t, uint64_t)>* fn = nullptr;

  std::atomic<uint64_t> next{0};  // morsel cursor
  std::atomic<uint64_t> done{0};  // completed chunks
  MutexCv mutex{LockRank::kPoolForState, "ThreadPool.ForState.mutex"};

  // Drains the shared cursor: the morsel-at-a-time load balancing. Chunk
  // boundaries are a pure function of (begin, end, grain), so results
  // combined in chunk order are independent of who ran which chunk.
  void Drain() {
    uint64_t chunk;
    while ((chunk = next.fetch_add(1, std::memory_order_relaxed)) <
           num_chunks) {
      const uint64_t b = begin + chunk * grain;
      const uint64_t e = std::min(end, b + grain);
      (*fn)(b, e);
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_chunks) {
        // Empty critical section: pairs with the waiter's predicate check
        // under the same mutex so the final notify cannot be missed.
        { MutexLock lock(&mutex); }
        mutex.NotifyAll();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t parallelism) {
  const size_t num_workers = parallelism <= 1 ? 0 : parallelism - 1;
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Empty critical section: a worker that checked stop_ and is about to
    // wait must observe the notify.
    MutexLock lock(&wake_mutex_);
  }
  wake_mutex_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  const size_t index =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    MutexLock lock(&workers_[index]->mutex);
    workers_[index]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  wake_mutex_.NotifyOne();
}

bool ThreadPool::PopTask(size_t index, std::function<void()>* task,
                         bool* stolen) {
  // Own deque first, newest task first (cache-warm LIFO).
  {
    Worker& own = *workers_[index];
    MutexLock lock(&own.mutex);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());
      own.tasks.pop_back();
      *stolen = false;
      return true;
    }
  }
  // Steal the oldest task from the first non-empty victim (FIFO end: the
  // task the owner is least likely to touch soon).
  for (size_t offset = 1; offset < workers_.size(); ++offset) {
    Worker& victim = *workers_[(index + offset) % workers_.size()];
    MutexLock lock(&victim.mutex);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      *stolen = true;
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t index) {
  for (;;) {
    std::function<void()> task;
    bool stolen = false;
    if (PopTask(index, &task, &stolen)) {
      queued_.fetch_sub(1, std::memory_order_relaxed);
      if (stolen) steals_.fetch_add(1, std::memory_order_relaxed);
      task();
      continue;
    }
    MutexLock lock(&wake_mutex_);
    if (stop_.load(std::memory_order_acquire)) return;
    wake_mutex_.Await([this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

void ThreadPool::ParallelFor(uint64_t begin, uint64_t end, uint64_t grain,
                             const std::function<void(uint64_t, uint64_t)>&
                                 fn) {
  if (end <= begin || grain == 0) return;
  const uint64_t num_chunks = NumChunks(end - begin, grain);
  if (workers_.empty() || num_chunks <= 1) {
    for (uint64_t b = begin; b < end; b += grain) {
      fn(b, std::min(end, b + grain));
    }
    return;
  }

  auto state = std::make_shared<ForState>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->num_chunks = num_chunks;
  state->fn = &fn;

  // One drain task per worker lane that could usefully help; the caller is
  // the remaining lane. A drain task that runs after the loop finished
  // exits immediately (cursor exhausted), keeping `state` alive via the
  // shared_ptr until the last straggler is gone.
  const uint64_t helpers =
      std::min<uint64_t>(workers_.size(), num_chunks - 1);
  for (uint64_t i = 0; i < helpers; ++i) {
    Submit([state] { state->Drain(); });
  }
  state->Drain();
  MutexLock lock(&state->mutex);
  state->mutex.Await([&state] {
    return state->done.load(std::memory_order_acquire) == state->num_chunks;
  });
}

namespace {

// The process-wide pool: a pointer swapped under a mutex. Pool() reads the
// pointer without the lock on its fast path; SetPoolParallelism requires
// the pool to be quiescent (no thread inside it, none about to enter), so
// every allowed schedule orders the swap before the next lock-free read.
std::atomic<ThreadPool*> g_pool{nullptr};
// Ranked above kPoolWake: SetPoolParallelism deletes the old pool while
// holding this lock, and ~ThreadPool takes the wake mutex to stop workers.
Mutex g_pool_mutex{LockRank::kPoolRegistry, "thread_pool.g_pool_mutex"};

}  // namespace

size_t DefaultPoolParallelism() {
  const char* env = std::getenv("ADICT_THREADS");
  if (env == nullptr || *env == '\0') {
    return std::max(1u, std::thread::hardware_concurrency());
  }
  const long value = std::strtol(env, nullptr, 10);
  if (value <= 0) return std::max(1u, std::thread::hardware_concurrency());
  return static_cast<size_t>(std::min<long>(value, 256));
}

ThreadPool& Pool() {
  ThreadPool* pool = g_pool.load(std::memory_order_acquire);
  if (pool != nullptr) return *pool;
  MutexLock lock(&g_pool_mutex);
  pool = g_pool.load(std::memory_order_relaxed);
  if (pool == nullptr) {
    pool = new ThreadPool(DefaultPoolParallelism());  // never destroyed
    g_pool.store(pool, std::memory_order_release);
  }
  return *pool;
}

size_t PoolParallelism() { return Pool().parallelism(); }

void SetPoolParallelism(size_t parallelism) {
  MutexLock lock(&g_pool_mutex);
  ThreadPool* old = g_pool.load(std::memory_order_relaxed);
  g_pool.store(new ThreadPool(parallelism == 0 ? DefaultPoolParallelism()
                                               : parallelism),
               std::memory_order_release);
  delete old;  // quiescence is the caller's contract (see thread_pool.h)
}

}  // namespace adict
