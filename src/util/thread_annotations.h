// Clang Thread Safety Analysis annotations and an annotated mutex.
//
// The annotations turn lock discipline into a compile-time proof: a member
// declared ADICT_GUARDED_BY(mutex_) can only be touched while `mutex_` is
// held, a function declared ADICT_REQUIRES(mutex_) can only be called with
// the lock held, and a violation is a hard error under
// `clang++ -Wthread-safety -Werror` (the `thread-safety` CI job). Compilers
// without the attributes (GCC) see empty macros, so the annotations cost
// nothing outside the analysis.
//
// Use the ADICT_-prefixed macros, the `Mutex` wrapper, and `MutexLock`
// instead of raw std::mutex / std::lock_guard in any class with shared
// mutable state; docs/static_analysis.md walks through annotating a new
// mutex. Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// (the macro set mirrors Abseil's thread_annotations.h).
#ifndef ADICT_UTIL_THREAD_ANNOTATIONS_H_
#define ADICT_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define ADICT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ADICT_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability (lockable). Applied to Mutex below;
/// user code rarely needs it directly.
#define ADICT_CAPABILITY(x) ADICT_THREAD_ANNOTATION(capability(x))

/// A RAII type that acquires a capability in its constructor and releases it
/// in its destructor (MutexLock below).
#define ADICT_SCOPED_CAPABILITY ADICT_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while the given mutex is held.
#define ADICT_GUARDED_BY(x) ADICT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex (the
/// pointer itself may be read freely).
#define ADICT_PT_GUARDED_BY(x) ADICT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function callable only while holding the given mutex(es); the caller
/// still holds them on return.
#define ADICT_REQUIRES(...) \
  ADICT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function callable only while NOT holding the given mutex(es) — the
/// annotation that proves freedom from self-deadlock on a non-reentrant
/// mutex.
#define ADICT_EXCLUDES(...) \
  ADICT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the given mutex(es) and does not release them.
#define ADICT_ACQUIRE(...) \
  ADICT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the given mutex(es), which must be held on entry.
#define ADICT_RELEASE(...) \
  ADICT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that returns a reference to the given mutex (lets the analysis
/// see through accessors).
#define ADICT_RETURN_CAPABILITY(x) ADICT_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs a
/// comment explaining why the discipline holds anyway.
#define ADICT_NO_THREAD_SAFETY_ANALYSIS \
  ADICT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace adict {

/// std::mutex with capability annotations, so members can be declared
/// ADICT_GUARDED_BY(mutex_) and functions ADICT_REQUIRES(mutex_). Same
/// cost and semantics as std::mutex; Lock/Unlock exist for the rare manual
/// path, MutexLock is the normal way to hold it.
class ADICT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ADICT_ACQUIRE() { mutex_.lock(); }
  void Unlock() ADICT_RELEASE() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
};

/// RAII lock over Mutex (the annotated std::lock_guard).
class ADICT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mutex) ADICT_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_->Lock();
  }
  ~MutexLock() ADICT_RELEASE() { mutex_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mutex_;
};

}  // namespace adict

#endif  // ADICT_UTIL_THREAD_ANNOTATIONS_H_
